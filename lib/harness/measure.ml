type batch = {
  queries : int;
  total_results : int;
  total_io : int;
  total_reads : int;
  avg_io : float;
  total_seconds : float;
  avg_seconds : float;
}

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let io catalog f =
  Relation.Catalog.flush catalog;
  Relation.Catalog.reset_io_stats catalog;
  let r = f () in
  let stats = Relation.Catalog.io_stats catalog in
  (r, stats.Storage.Block_device.Stats.reads + stats.Storage.Block_device.Stats.writes)

let timed_io catalog f =
  let s0 = Relation.Catalog.io_stats catalog in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let elapsed = Unix.gettimeofday () -. t0 in
  let s1 = Relation.Catalog.io_stats catalog in
  let delta =
    s1.Storage.Block_device.Stats.reads + s1.Storage.Block_device.Stats.writes
    - s0.Storage.Block_device.Stats.reads
    - s0.Storage.Block_device.Stats.writes
  in
  (r, elapsed, delta)

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Measure.percentile: empty sample";
  if p < 0.0 || p > 1.0 then invalid_arg "Measure.percentile: p outside [0, 1]";
  let s = Array.copy xs in
  Array.sort Float.compare s;
  let rank = int_of_float (Float.ceil (p *. float_of_int n)) in
  s.(max 0 (min (n - 1) (rank - 1)))

let query_batch catalog count_query queries =
  Relation.Catalog.flush catalog;
  Relation.Catalog.reset_io_stats catalog;
  let t0 = Sys.time () in
  let total_results =
    Array.fold_left (fun acc q -> acc + count_query q) 0 queries
  in
  let elapsed = Sys.time () -. t0 in
  let stats = Relation.Catalog.io_stats catalog in
  let total_io =
    stats.Storage.Block_device.Stats.reads
    + stats.Storage.Block_device.Stats.writes
  in
  let n = max 1 (Array.length queries) in
  { queries = Array.length queries; total_results; total_io;
    total_reads = stats.Storage.Block_device.Stats.reads;
    avg_io = float_of_int total_io /. float_of_int n;
    total_seconds = elapsed; avg_seconds = elapsed /. float_of_int n }

let pp_batch ppf b =
  Format.fprintf ppf
    "%d queries, %d results, %.1f I/O per query, %.4f s per query"
    b.queries b.total_results b.avg_io b.avg_seconds
