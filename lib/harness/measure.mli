(** Measurement helpers for the experiment harness.

    Physical I/O comes from the simulated device's counters; response
    time is the wall-clock time of running the operation on the
    simulator. The paper reports both (e.g. Figs. 13 and 14); absolute
    times are not comparable to the 1996 testbed but relative shapes
    are. *)

type batch = {
  queries : int;
  total_results : int;
  total_io : int;      (** physical blocks read + written *)
  total_reads : int;
  avg_io : float;      (** per query *)
  total_seconds : float;
  avg_seconds : float;
}

val wall : (unit -> 'a) -> 'a * float
(** Result and elapsed wall-clock seconds. *)

val io : Relation.Catalog.t -> (unit -> 'a) -> 'a * int
(** Result and physical I/Os (reads + writes) during the call; resets the
    device counters around the call. *)

val timed_io : Relation.Catalog.t -> (unit -> 'a) -> 'a * float * int
(** [timed_io db f] is [(f (), wall seconds, physical I/Os)]. Unlike
    {!io} the device counters are read as before/after deltas, not
    reset, and the cache is left warm — the per-request accounting the
    server dispatcher wraps around every statement. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the nearest-rank [p]-percentile ([0 <= p <= 1])
    of the sample; [xs] need not be sorted.
    @raise Invalid_argument on an empty sample or [p] outside [0, 1]. *)

val query_batch :
  Relation.Catalog.t ->
  (Interval.Ivl.t -> int) ->
  Interval.Ivl.t array ->
  batch
(** Run a batch of queries through a counting query function, tallying
    physical I/O and wall time. The buffer cache is {e not} flushed
    between queries — the warm-cache regime of the paper's repeated-query
    experiments. *)

val pp_batch : Format.formatter -> batch -> unit
