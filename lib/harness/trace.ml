(* Re-export: the span machinery lives in the zero-dependency [obs]
   library so the storage/btree/relation layers below us can emit spans;
   [Harness.Trace] is the name the harness and tools program against. *)
include Obs.Trace
