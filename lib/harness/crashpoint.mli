(** Exhaustive crash-schedule recovery testing.

    Runs a seeded insert/delete/commit workload once to count its
    physical device writes, then replays it once per write index with a
    {!Storage.Faulty_device} crash point armed there. Each replay dies
    mid-write, runs journal recovery, and is checked against an
    in-memory oracle: every row of the last completed commit is present,
    nothing uncommitted survived, RI-tree invariants hold, and seeded
    intersection queries match the oracle exactly.

    The workload runs over a durable, checksummed catalog with a small
    block size and cache, so evictions — the moments the steal policy
    puts uncommitted pages on disk — happen constantly. *)

type spec = {
  seed : int;
  ops : int;  (** workload operations (commits excluded) *)
  universe : int;  (** interval coordinates drawn from [0, universe) *)
  block_size : int;  (** device block size; small → many writes *)
  cache_blocks : int;  (** pool capacity; small → constant eviction *)
  commit_every : int;  (** a commit marker every this many operations *)
  torn : bool;  (** the fatal write persists a random prefix *)
}

val default_spec : spec
(** seed 42, 120 ops, universe 1000, 256-byte blocks, 8-block cache,
    commit every 13 ops, clean (untorn) crashes. *)

type failure = { crash_at : int; reason : string }

type report = {
  writes : int;  (** workload writes = crash schedules exercised *)
  failures : failure list;  (** empty = every schedule recovered *)
}

val run : ?progress:(int -> int -> unit) -> spec -> report
(** The full schedule: one replay per workload write index.
    [progress i n] is called before replay [i] of [n]. *)

val replay : spec -> crash_at:int -> unit
(** One schedule: crash at physical write [crash_at] (absolute index,
    setup writes included), recover, verify.
    @raise Failure describing the first violated invariant. *)

val count_writes : spec -> int * int * (int * Interval.Ivl.t) list
(** Fault-free pass: [(first, count, committed)] — the first workload
    write index, the number of workload writes, and the oracle rows at
    the final commit. *)

val pp_report : Format.formatter -> report -> unit
