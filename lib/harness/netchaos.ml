(* Seeded in-process network chaos proxy.

   Sits between a client and one server endpoint and forwards traffic
   both ways, except at explicitly scheduled points: every client ->
   server protocol frame (u32-BE length prefix + payload, the wire
   format of [Server.Protocol]) is counted, and when the running frame
   index hits an entry of the schedule the attached fault fires —
   delay, drop, duplication, truncation, a timed partition, or killing
   the backend via a caller-supplied thunk. Frame alignment is what
   makes injections deterministic and reproducible: "drop op 7" means
   exactly the 8th request frame of the run, every run.

   The proxy deliberately knows nothing about the protocol beyond the
   length prefix (this library sits BELOW the server in the build
   graph), so it can never mask a framing bug by "helpfully" repairing
   one: a truncated frame goes out truncated, byte for byte.

   Single select(2) loop, no threads of its own — callers run [run] in
   a thread and [stop] wakes it through a self-pipe. *)

type fault =
  | Delay of float
  | Drop
  | Duplicate
  | Truncate of int
  | Partition of float
  | Kill

let fault_name = function
  | Delay _ -> "delay"
  | Drop -> "drop"
  | Duplicate -> "duplicate"
  | Truncate _ -> "truncate"
  | Partition _ -> "partition"
  | Kill -> "kill"

type link = {
  cfd : Unix.file_descr;  (* client side *)
  sfd : Unix.file_descr;  (* server side *)
  acc : Buffer.t;  (* client->server bytes pending frame extraction *)
  mutable pending : (float * string) list;  (* due-at, frame; FIFO *)
  mutable live : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  port : int;
  target : string * int;
  schedule : (int, fault) Hashtbl.t;
  on_kill : unit -> unit;
  mutable links : link list;
  mutable frames : int;  (* client->server frames seen = next op index *)
  mutable fired : (int * fault) list;  (* injections that ran, newest first *)
  mutable refuse_until : float;  (* partition: no conns before this *)
  mutable stopping : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let create ~target ~schedule ?(on_kill = fun () -> ()) () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 16;
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let tbl = Hashtbl.create 8 in
  List.iter (fun (i, f) -> Hashtbl.replace tbl i f) schedule;
  let wake_r, wake_w = Unix.pipe () in
  {
    listen_fd;
    port;
    target;
    schedule = tbl;
    on_kill;
    links = [];
    frames = 0;
    fired = [];
    refuse_until = 0.;
    stopping = false;
    wake_r;
    wake_w;
  }

let port t = t.port
let frames_seen t = t.frames
let fired t = List.rev t.fired

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let close_link t link =
  if link.live then begin
    link.live <- false;
    close_quiet link.cfd;
    close_quiet link.sfd
  end;
  t.links <- List.filter (fun l -> l != link) t.links

let close_all_links t = List.iter (close_link t) t.links

(* Blocking write of a whole buffer; a peer that vanished mid-write
   just ends the link (exactly what a dying TCP connection does). *)
let write_all t link fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let sent = ref 0 in
  try
    while !sent < len do
      match Unix.write fd b !sent (len - !sent) with
      | 0 -> raise Exit
      | n -> sent := !sent + n
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with Exit | Unix.Unix_error _ -> close_link t link

let flush_pending t link now =
  let rec go () =
    match link.pending with
    | (due, frame) :: rest when due <= now && link.live ->
        link.pending <- rest;
        write_all t link link.sfd frame;
        go ()
    | _ -> ()
  in
  go ()

(* One complete client->server frame: consult the schedule at the
   current op index and forward, mangle or suppress accordingly. *)
let handle_frame t link frame =
  let idx = t.frames in
  t.frames <- t.frames + 1;
  let now = Unix.gettimeofday () in
  let forward () =
    (* Queue behind any delayed frames so per-link order never
       inverts; the flusher stops at the first not-yet-due frame. *)
    match link.pending with
    | [] -> write_all t link link.sfd frame
    | _ -> link.pending <- link.pending @ [ (now, frame) ]
  in
  match Hashtbl.find_opt t.schedule idx with
  | None -> forward ()
  | Some fault ->
      t.fired <- (idx, fault) :: t.fired;
      (match fault with
      | Delay s -> link.pending <- link.pending @ [ (now +. s, frame) ]
      | Drop -> ()
      | Duplicate ->
          forward ();
          forward ()
      | Truncate n ->
          let cut = min n (String.length frame) in
          write_all t link link.sfd (String.sub frame 0 cut);
          close_link t link
      | Partition s ->
          t.refuse_until <- now +. s;
          close_all_links t
      | Kill ->
          t.on_kill ();
          close_link t link)

(* Client bytes: accumulate, then peel off every complete frame. *)
let pump_client t link =
  let buf = Bytes.create 8192 in
  match Unix.read link.cfd buf 0 8192 with
  | 0 -> close_link t link
  | n ->
      Buffer.add_subbytes link.acc buf 0 n;
      let continue = ref true in
      while !continue && link.live do
        let len = Buffer.length link.acc in
        if len < 4 then continue := false
        else begin
          let hdr = Buffer.sub link.acc 0 4 in
          let flen = Int32.to_int (Bytes.get_int32_be (Bytes.of_string hdr) 0)
          in
          if flen < 0 then (* garbage; sever like a real middlebox *)
            close_link t link
          else if len < 4 + flen then continue := false
          else begin
            let frame = Buffer.sub link.acc 0 (4 + flen) in
            let rest = Buffer.sub link.acc (4 + flen) (len - 4 - flen) in
            Buffer.clear link.acc;
            Buffer.add_string link.acc rest;
            handle_frame t link frame
          end
        end
      done
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_link t link

(* Server bytes go back verbatim: faults model the network the CLIENT
   traverses; response-side chaos is already covered by the request
   side severing links mid-exchange. *)
let pump_server t link =
  let buf = Bytes.create 8192 in
  match Unix.read link.sfd buf 0 8192 with
  | 0 -> close_link t link
  | n -> write_all t link link.cfd (Bytes.sub_string buf 0 n)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> close_link t link

let accept t now =
  match Unix.accept t.listen_fd with
  | cfd, _ ->
      if now < t.refuse_until then close_quiet cfd
      else begin
        let host, port = t.target in
        match
          let sfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect sfd
               (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
           with e ->
             close_quiet sfd;
             raise e);
          sfd
        with
        | sfd ->
            t.links <-
              { cfd; sfd; acc = Buffer.create 256; pending = []; live = true }
              :: t.links
        | exception _ ->
            (* Backend unreachable (killed primary): refuse the client
               the way a dead host would — immediate close. *)
            close_quiet cfd
      end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> ()

let run t =
  while not t.stopping do
    let now = Unix.gettimeofday () in
    let reads =
      t.wake_r
      :: (if now >= t.refuse_until then [ t.listen_fd ] else [])
      @ List.concat_map (fun l -> [ l.cfd; l.sfd ]) t.links
    in
    (match Unix.select reads [] [] 0.02 with
    | ready, _, _ ->
        if List.mem t.wake_r ready then begin
          let b = Bytes.create 16 in
          ignore (try Unix.read t.wake_r b 0 16 with Unix.Unix_error _ -> 0)
        end;
        if List.mem t.listen_fd ready then accept t now;
        List.iter
          (fun l ->
            if l.live && List.mem l.cfd ready then pump_client t l;
            if l.live && List.mem l.sfd ready then pump_server t l)
          t.links
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    let now = Unix.gettimeofday () in
    List.iter (fun l -> flush_pending t l now) t.links
  done;
  close_all_links t;
  close_quiet t.listen_fd;
  close_quiet t.wake_r;
  close_quiet t.wake_w

let stop t =
  t.stopping <- true;
  try ignore (Unix.write t.wake_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()
