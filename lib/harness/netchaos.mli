(** In-process network chaos proxy with frame-aligned fault injection.

    Listens on an ephemeral loopback port and forwards traffic to one
    target endpoint. Client-to-server bytes are split on the wire
    protocol's u32-BE length-prefixed frame boundaries and counted;
    when the running frame index matches an entry of the schedule, that
    entry's fault fires instead of plain forwarding. Counting frames —
    not bytes or packets — makes every injection deterministic:
    "fault at op 7" hits exactly the 8th request of the run, every run.

    The proxy is protocol-blind beyond the length prefix (it lives
    below the server library in the build graph), so injected damage
    reaches the peer unrepaired. *)

type fault =
  | Delay of float  (** hold the frame for this many seconds *)
  | Drop  (** swallow the frame; the client's deadline will expire *)
  | Duplicate  (** forward the frame twice *)
  | Truncate of int
      (** forward only the first [n] bytes, then sever the link — a
          torn frame followed by a dead connection *)
  | Partition of float
      (** sever every link and refuse new connections for this many
          seconds *)
  | Kill
      (** invoke the [on_kill] callback (e.g. stop the primary), then
          sever the link *)

val fault_name : fault -> string

type t

val create :
  target:string * int ->
  schedule:(int * fault) list ->
  ?on_kill:(unit -> unit) ->
  unit ->
  t
(** Proxy for [target], firing [fault] when the client->server frame
    counter reaches each scheduled index (0-based, duplicate indices
    keep the last entry). [on_kill] (default no-op) runs when a {!Kill}
    fires. The listener is bound immediately; {!port} is valid before
    {!run}. *)

val port : t -> int
(** The ephemeral loopback port clients should dial. *)

val run : t -> unit
(** Serve until {!stop}: a single select loop, meant for a dedicated
    thread. Closes every socket before returning. *)

val stop : t -> unit
(** Ask {!run} to exit; safe from any thread, idempotent. *)

val frames_seen : t -> int
(** Client->server frames counted so far — the next op index. *)

val fired : t -> (int * fault) list
(** Injections that actually ran, in firing order. *)
