(* Exhaustive crash-schedule testing.

   One seeded insert/delete/commit workload is run twice over:
   - a counting pass, fault-free, to learn how many physical device
     writes the workload performs;
   - one replay per write index, with a Faulty_device crash point armed
     at that index. The replay dies mid-write, journal recovery runs,
     and the recovered database is checked against an in-memory oracle:
     everything in the last completed commit is present, nothing
     uncommitted survived, and seeded RI-tree intersection queries match
     the oracle exactly.

   Commits in this engine perform no device writes (the journal force is
   not a block write), so every crash point lands inside an insert or
   delete — precisely the moments a stolen page may reach the device
   with its undo image required to be on the log first. *)

type op =
  | Insert of int * Interval.Ivl.t
  | Delete of int * Interval.Ivl.t
  | Commit

type spec = {
  seed : int;
  ops : int;
  universe : int;
  block_size : int;
  cache_blocks : int;
  commit_every : int;
  torn : bool;
}

let default_spec =
  { seed = 42; ops = 120; universe = 1000; block_size = 256;
    cache_blocks = 8; commit_every = 13; torn = false }

(* The deterministic op list: delete targets are chosen against a
   simulated live set, so generation is pure and every replay sees the
   same sequence. *)
let build_ops spec =
  let rng = Workload.Prng.create ~seed:spec.seed in
  let live = ref [] in
  let next_id = ref 0 in
  let ops = ref [] in
  for i = 1 to spec.ops do
    (if !live <> [] && Workload.Prng.int rng 100 < 25 then begin
       let n = List.length !live in
       let victim = List.nth !live (Workload.Prng.int rng n) in
       live := List.filter (fun (id, _) -> id <> fst victim) !live;
       ops := Delete (fst victim, snd victim) :: !ops
     end
     else begin
       let lo = Workload.Prng.int rng spec.universe in
       let len = 1 + Workload.Prng.int rng (spec.universe / 10) in
       let ivl = Interval.Ivl.make lo (min (spec.universe - 1) (lo + len)) in
       let id = !next_id in
       incr next_id;
       live := (id, ivl) :: !live;
       ops := Insert (id, ivl) :: !ops
     end);
    if i mod spec.commit_every = 0 then ops := Commit :: !ops
  done;
  List.rev !ops

let queries spec =
  let rng = Workload.Prng.create ~seed:(spec.seed + 1) in
  List.init 8 (fun _ ->
      let lo = Workload.Prng.int rng spec.universe in
      let len = 1 + Workload.Prng.int rng (spec.universe / 5) in
      Interval.Ivl.make lo (min (spec.universe - 1) (lo + len)))

(* Fresh catalog + RI-tree over a fault-injection wrapper. Setup (table,
   indexes, initial commit) runs before the caller arms the crash point,
   so crash indexes cover only workload writes — a crash before the
   database even exists has nothing to recover to. *)
let build spec =
  let base = Storage.Block_device.create ~block_size:spec.block_size () in
  let fd = Storage.Faulty_device.create ~seed:spec.seed base in
  let cat =
    Relation.Catalog.create ~device:(Storage.Faulty_device.device fd)
      ~durable:true ~cache_blocks:spec.cache_blocks ()
  in
  let tree = Ritree.Ri_tree.create cat in
  Relation.Catalog.commit cat;
  Relation.Catalog.flush cat;
  (fd, cat, tree)

let sorted_ids pairs = List.sort_uniq Int.compare (List.map snd pairs)

let oracle_intersecting committed q =
  List.filter (fun (_, ivl) -> Interval.Ivl.intersects ivl q) committed
  |> List.map (fun (id, _) -> id)
  |> List.sort_uniq Int.compare

(* Run the workload. Returns the committed-state oracle as of the last
   completed commit, and whether (and where) the device crashed. *)
let run_workload spec fd cat tree =
  let ops = build_ops spec in
  let live = ref [] in
  let committed = ref [] in
  let cat = ref cat and tree = ref tree in
  let crashed = ref None in
  (try
     List.iter
       (fun op ->
         match op with
         | Insert (id, ivl) ->
             ignore (Ritree.Ri_tree.insert ~id !tree ivl);
             live := (id, ivl) :: !live
         | Delete (id, ivl) ->
             ignore (Ritree.Ri_tree.delete !tree ~id ivl);
             live := List.filter (fun (i, _) -> i <> id) !live
         | Commit ->
             Relation.Catalog.commit !cat;
             committed := !live)
       ops
   with Storage.Block_device.Crash n -> crashed := Some n);
  ignore fd;
  (!committed, !crashed, !cat, !tree)

(* Count the physical writes the fault-free workload performs past
   setup; crash schedules cover [first, first + count). *)
let count_writes spec =
  let fd, cat, tree = build spec in
  let first = Storage.Faulty_device.writes_done fd in
  let committed, crashed, _, _ = run_workload spec fd cat tree in
  assert (crashed = None);
  (first, Storage.Faulty_device.writes_done fd - first, committed)

type failure = { crash_at : int; reason : string }

type report = {
  writes : int;  (** workload writes = crash schedules exercised *)
  failures : failure list;
}

let check_recovered spec committed cat =
  let tree = Ritree.Ri_tree.open_existing cat in
  Ritree.Ri_tree.check_invariants tree;
  let everything = Interval.Ivl.make 0 spec.universe in
  let got = sorted_ids (Ritree.Ri_tree.intersecting tree everything) in
  let want = List.sort_uniq Int.compare (List.map fst committed) in
  if got <> want then
    failwith
      (Printf.sprintf
         "recovered ids differ from oracle: got %d ids, want %d \
          (lost committed rows or kept uncommitted ones)"
         (List.length got) (List.length want));
  List.iter
    (fun q ->
      let got = sorted_ids (Ritree.Ri_tree.intersecting tree q) in
      let want = oracle_intersecting committed q in
      if got <> want then
        failwith
          (Printf.sprintf "intersection [%d, %d] differs from oracle"
             (Interval.Ivl.lower q) (Interval.Ivl.upper q)))
    (queries spec)

let replay spec ~crash_at =
  let fd, cat, tree = build spec in
  Storage.Faulty_device.set_crash_point ~torn:spec.torn fd
    ~after_writes:crash_at;
  let committed, crashed, cat, _tree = run_workload spec fd cat tree in
  match crashed with
  | None ->
      failwith
        (Printf.sprintf "crash point %d never fired (workload shrank?)"
           crash_at)
  | Some _ ->
      Storage.Faulty_device.disarm fd;
      Storage.Faulty_device.clear_crash_point fd;
      let cat = Relation.Catalog.simulate_crash ~force:true cat in
      check_recovered spec committed cat

let run ?progress spec =
  let first, writes, _ = count_writes spec in
  let failures = ref [] in
  for i = 0 to writes - 1 do
    (match progress with Some f -> f i writes | None -> ());
    let crash_at = first + i in
    try replay spec ~crash_at
    with e ->
      failures :=
        { crash_at; reason = Printexc.to_string e } :: !failures
  done;
  { writes; failures = List.rev !failures }

let pp_report ppf r =
  Format.fprintf ppf "crash-schedule: %d write indexes, %d failures"
    r.writes (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.  crash at write %d: %s" f.crash_at f.reason)
    r.failures
