type t = {
  label : string;
  catalog : Relation.Catalog.t;
  insert : Interval.Ivl.t -> int -> unit;
  count_query : Interval.Ivl.t -> int;
  query_ids : Interval.Ivl.t -> int list;
  index_entries : unit -> int;
}

let fresh_catalog ?block_size ?cache_blocks () =
  Relation.Catalog.create ?block_size ?cache_blocks ()

(* Queries go through the shared execution layer (Exec.Planner compiles
   the Fig. 9/10 plan onto the same IR the SQL front end uses), so the
   harness measures the code path production queries take. The covering
   Ids plan reads exactly the index pages count_intersecting would. *)
let planner_queries tree =
  ( (fun q ->
      List.length (Exec.Planner.intersecting_ids ~path:Exec.Planner.Two_branch
                     tree q)),
    fun q ->
      Exec.Planner.intersecting_ids ~path:Exec.Planner.Two_branch tree q )

let ri_tree ?block_size ?cache_blocks () =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let tree = Ritree.Ri_tree.create catalog in
  let count_query, query_ids = planner_queries tree in
  { label = "RI-tree"; catalog;
    insert = (fun ivl id -> ignore (Ritree.Ri_tree.insert ~id tree ivl));
    count_query; query_ids;
    index_entries = (fun () -> Ritree.Ri_tree.index_entries tree) }

let ist ?block_size ?cache_blocks ?(order = Baselines.Ist.D_order) () =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Ist.create ~order catalog in
  let label =
    match order with
    | Baselines.Ist.D_order -> "IST"
    | Baselines.Ist.V_order -> "IST-V"
  in
  { label; catalog;
    insert = (fun ivl id -> ignore (Baselines.Ist.insert ~id t ivl));
    count_query = (fun q -> Baselines.Ist.count_intersecting t q);
    query_ids = (fun q -> Baselines.Ist.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Ist.index_entries t) }

let tile ?block_size ?cache_blocks ~level () =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Tile_index.create ~level catalog in
  { label = Printf.sprintf "T-index(l=%d)" level; catalog;
    insert = (fun ivl id -> ignore (Baselines.Tile_index.insert ~id t ivl));
    count_query = (fun q -> Baselines.Tile_index.count_intersecting t q);
    query_ids = (fun q -> Baselines.Tile_index.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Tile_index.index_entries t) }

let map21 ?block_size ?cache_blocks () =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Map21.create catalog in
  { label = "MAP21"; catalog;
    insert = (fun ivl id -> ignore (Baselines.Map21.insert ~id t ivl));
    count_query = (fun q -> Baselines.Map21.count_intersecting t q);
    query_ids = (fun q -> Baselines.Map21.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Map21.index_entries t) }

let window_list ?block_size ?cache_blocks data =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Window_list.build catalog data in
  { label = "Window-List"; catalog;
    insert =
      (fun _ _ -> failwith "Window-List is static: bulk build it instead");
    count_query =
      (fun q -> List.length (Baselines.Window_list.intersecting_ids t q));
    query_ids = (fun q -> Baselines.Window_list.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Window_list.index_entries t) }

let with_ids data = Array.mapi (fun id ivl -> (ivl, id)) data

let ri_tree_bulk ?block_size ?cache_blocks data =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let tree = Ritree.Ri_tree.bulk_load catalog (with_ids data) in
  let count_query, query_ids = planner_queries tree in
  { label = "RI-tree (bulk)"; catalog;
    insert = (fun ivl id -> ignore (Ritree.Ri_tree.insert ~id tree ivl));
    count_query; query_ids;
    index_entries = (fun () -> Ritree.Ri_tree.index_entries tree) }

let ist_bulk ?block_size ?cache_blocks ?(order = Baselines.Ist.D_order) data =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Ist.bulk_load ~order catalog (with_ids data) in
  { label = "IST (bulk)"; catalog;
    insert = (fun ivl id -> ignore (Baselines.Ist.insert ~id t ivl));
    count_query = (fun q -> Baselines.Ist.count_intersecting t q);
    query_ids = (fun q -> Baselines.Ist.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Ist.index_entries t) }

let tile_bulk ?block_size ?cache_blocks ~level data =
  let catalog = fresh_catalog ?block_size ?cache_blocks () in
  let t = Baselines.Tile_index.bulk_load ~level catalog (with_ids data) in
  { label = Printf.sprintf "T-index (bulk, l=%d)" level; catalog;
    insert = (fun ivl id -> ignore (Baselines.Tile_index.insert ~id t ivl));
    count_query = (fun q -> Baselines.Tile_index.count_intersecting t q);
    query_ids = (fun q -> Baselines.Tile_index.intersecting_ids t q);
    index_entries = (fun () -> Baselines.Tile_index.index_entries t) }

let load t data = Array.iteri (fun id ivl -> t.insert ivl id) data

let calibrated_tile_level data ~queries =
  let sample =
    if Array.length data <= 1000 then data
    else Array.init 1000 (fun i -> data.(i * (Array.length data / 1000)))
  in
  Baselines.Tile_index.recommended_level ~sample ~queries ()
