(** Hierarchical timer wheel: 1 ms ticks, four levels of 256 slots
    (≈49 days of span; later deadlines are clamped and re-placed as
    the wheel cascades). Insertion and cancellation are O(1); each
    elapsed millisecond costs O(expired + cascaded).

    All deadlines, idle timeouts, group-commit windows and redial
    backoffs in the server are timers on one of these wheels, so the
    event loop's sleep is always [next_deadline]-bounded instead of a
    fixed polling interval. *)

type t
type timer

val create : now:float -> t

(** [add t ~now ~at f] schedules [f] to run when [advance] first
    crosses [at] (absolute seconds, same clock as [now]). Deadlines
    in the past fire on the next [advance]. The callback runs on the
    thread calling [advance]. *)
val add : t -> now:float -> at:float -> (unit -> unit) -> timer

(** Cancel a pending timer; firing and double-cancel are no-ops. *)
val cancel : t -> timer -> unit

(** Number of scheduled, uncancelled timers. *)
val pending : t -> int

(** Earliest instant at which a timer may be due. Conservative: may
    be earlier than the true next deadline (a cascade boundary) but
    never later, so sleeping until it cannot miss a timer. *)
val next_deadline : t -> float option

(** Fire every timer due at or before [now]; returns the count
    fired. Callbacks may add or cancel timers. *)
val advance : t -> now:float -> int
