(** The event core: one readiness engine shared by the dispatcher,
    the router, replication fan-out, metrics endpoints, and client
    deadline waits.

    A reactor owns a set of registered fds with read/write interest
    and callbacks, plus a hierarchical timer wheel. [run_once] blocks
    in the backend ([poll(2)] stub or [Unix.select] fallback) until
    readiness or the earliest timer, fires due timers, then fires
    ready-fd callbacks. Single-threaded: all callbacks run on the
    thread calling [run_once]; nothing here takes locks. *)

module Backend = Backend
module Timer_wheel = Timer_wheel
module Writer = Writer

type t
type timer

(** [create ?backend ()] — default backend per {!Backend.default}. *)
val create : ?backend:Backend.kind -> unit -> t

val backend : t -> Backend.kind

(** Register callbacks for an fd. Interest in a direction starts on
    iff that callback is supplied; adjust later with the interest
    setters. Registering an already-registered fd replaces the
    previous entry. *)
val register :
  t ->
  Unix.file_descr ->
  ?readable:(unit -> unit) ->
  ?writable:(unit -> unit) ->
  unit ->
  unit

val deregister : t -> Unix.file_descr -> unit
val is_registered : t -> Unix.file_descr -> bool
val fd_count : t -> int

(** Toggle poll interest without replacing callbacks. Write interest
    must track "has pending output" exactly: leaving it on with
    nothing to write spins the loop. No-ops on unregistered fds. *)
val set_read_interest : t -> Unix.file_descr -> bool -> unit
val set_write_interest : t -> Unix.file_descr -> bool -> unit

(** [after t delay f] / [at t when_ f]: schedule [f] on the loop
    thread. Timers are one-shot; [cancel] is O(1) and idempotent. *)
val after : t -> float -> (unit -> unit) -> timer
val at : t -> float -> (unit -> unit) -> timer
val cancel : t -> timer -> unit
val timer_count : t -> int

(** One loop turn: sleep in the backend until readiness, the earliest
    timer deadline, or [max_timeout] (whichever is soonest; default
    1 s), then fire due timers and ready callbacks. Callbacks may
    freely register/deregister fds and timers, including their
    own. *)
val run_once : ?max_timeout:float -> t -> unit
