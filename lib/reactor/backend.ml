type kind = Poll | Select

let kind_to_string = function Poll -> "poll" | Select -> "select"

let kind_of_string = function
  | "poll" -> Some Poll
  | "select" -> Some Select
  | _ -> None

external fd_int : Unix.file_descr -> int = "%identity"

let select_fd_limit = 1020

external poll_raw :
  int array -> int array -> int array -> int -> int -> int = "rikit_poll_stub"

let poll_works =
  lazy (match poll_raw [||] [||] [||] 0 0 with 0 -> true | _ | (exception _) -> false)

let default () =
  match Option.bind (Sys.getenv_opt "RIKIT_REACTOR_BACKEND") kind_of_string with
  | Some k -> k
  | None -> if Lazy.force poll_works then Poll else Select

let timeout_ms timeout =
  if timeout < 0. then -1
  else if timeout = 0. then 0
  else max 1 (int_of_float (ceil (timeout *. 1000.)))

let wait_poll entries ~timeout =
  let n = Array.length entries in
  let fds = Array.make (max n 1) 0
  and events = Array.make (max n 1) 0
  and revents = Array.make (max n 1) 0 in
  for i = 0 to n - 1 do
    let fd, r, w = entries.(i) in
    fds.(i) <- fd_int fd;
    events.(i) <- (if r then 1 else 0) lor (if w then 2 else 0)
  done;
  let ready = poll_raw fds events revents n (timeout_ms timeout) in
  if ready = 0 then []
  else begin
    let out = ref [] in
    for i = n - 1 downto 0 do
      let got = revents.(i) in
      if got <> 0 then begin
        let fd, want_r, want_w = entries.(i) in
        let r = want_r && got land 1 <> 0 and w = want_w && got land 2 <> 0 in
        (* An error-only wakeup on an entry is reported through every
           direction of interest so the owner notices the condition. *)
        let r, w = if r || w then (r, w) else (want_r, want_w) in
        out := (fd, r, w) :: !out
      end
    done;
    !out
  end

let wait_select entries ~timeout =
  let rd =
    Array.to_list entries
    |> List.filter_map (fun (fd, r, _) -> if r then Some fd else None)
  and wr =
    Array.to_list entries
    |> List.filter_map (fun (fd, _, w) -> if w then Some fd else None)
  in
  match Unix.select rd wr [] timeout with
  | ready_r, ready_w, _ ->
      Array.to_list entries
      |> List.filter_map (fun (fd, want_r, want_w) ->
             let r = want_r && List.mem fd ready_r
             and w = want_w && List.mem fd ready_w in
             if r || w then Some (fd, r, w) else None)
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

let wait kind entries ~timeout =
  if Array.length entries = 0 && timeout >= 0. then begin
    (* Nothing to watch: just sleep out the timeout. *)
    (if timeout > 0. then
       try ignore (Unix.select [] [] [] timeout)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    []
  end
  else match kind with
    | Poll -> wait_poll entries ~timeout
    | Select -> wait_select entries ~timeout

let wait_fd ?kind fd dir ~timeout =
  let k = match kind with Some k -> k | None -> default () in
  let entry =
    match dir with `Read -> (fd, true, false) | `Write -> (fd, false, true)
  in
  match wait k [| entry |] ~timeout with [] -> false | _ -> true
