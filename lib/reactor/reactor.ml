module Backend = Backend
module Timer_wheel = Timer_wheel
module Writer = Writer

type entry = {
  mutable want_r : bool;
  mutable want_w : bool;
  on_r : unit -> unit;
  on_w : unit -> unit;
}

type t = {
  bk : Backend.kind;
  tbl : (Unix.file_descr, entry) Hashtbl.t;
  wheel : Timer_wheel.t;
}

type timer = Timer_wheel.timer

let create ?backend () =
  let bk = match backend with Some k -> k | None -> Backend.default () in
  {
    bk;
    tbl = Hashtbl.create 64;
    wheel = Timer_wheel.create ~now:(Unix.gettimeofday ());
  }

let backend t = t.bk
let nop () = ()

let register t fd ?readable ?writable () =
  Hashtbl.replace t.tbl fd
    {
      want_r = readable <> None;
      want_w = writable <> None;
      on_r = Option.value readable ~default:nop;
      on_w = Option.value writable ~default:nop;
    }

let deregister t fd = Hashtbl.remove t.tbl fd
let is_registered t fd = Hashtbl.mem t.tbl fd
let fd_count t = Hashtbl.length t.tbl

let set_read_interest t fd v =
  match Hashtbl.find_opt t.tbl fd with
  | Some e -> e.want_r <- v
  | None -> ()

let set_write_interest t fd v =
  match Hashtbl.find_opt t.tbl fd with
  | Some e -> e.want_w <- v
  | None -> ()

let after t delay f =
  let now = Unix.gettimeofday () in
  Timer_wheel.add t.wheel ~now ~at:(now +. max 0. delay) f

let at t when_ f =
  Timer_wheel.add t.wheel ~now:(Unix.gettimeofday ()) ~at:when_ f

let cancel t tm = Timer_wheel.cancel t.wheel tm
let timer_count t = Timer_wheel.pending t.wheel

let run_once ?(max_timeout = 1.0) t =
  let now = Unix.gettimeofday () in
  let timeout =
    match Timer_wheel.next_deadline t.wheel with
    | None -> max_timeout
    | Some dl -> max 0. (min max_timeout (dl -. now))
  in
  let entries =
    let n = Hashtbl.length t.tbl in
    let buf = Array.make (max n 1) (Unix.stdin, false, false) in
    let i = ref 0 in
    Hashtbl.iter
      (fun fd e ->
        if (e.want_r || e.want_w) && !i < n then begin
          buf.(!i) <- (fd, e.want_r, e.want_w);
          incr i
        end)
      t.tbl;
    Array.sub buf 0 !i
  in
  let ready = Backend.wait t.bk entries ~timeout in
  ignore (Timer_wheel.advance t.wheel ~now:(Unix.gettimeofday ()));
  List.iter
    (fun (fd, r, w) ->
      match Hashtbl.find_opt t.tbl fd with
      | None -> () (* deregistered by a timer or earlier callback *)
      | Some e ->
          if r && e.want_r then e.on_r ();
          if w then begin
            (* Re-check: on_r may have deregistered this fd, or even
               closed it and had the number reused by a fresh
               registration — only fire on the same entry. *)
            match Hashtbl.find_opt t.tbl fd with
            | Some e2 when e2 == e && e2.want_w -> e2.on_w ()
            | _ -> ()
          end)
    ready
