type chunk = { data : bytes; mutable off : int }

type flush = Drained | Pending | Peer_gone

type t = {
  w_fd : Unix.file_descr;
  hw : int;
  q : chunk Queue.t;
  mutable buffered : int;
  mutable progress_at : float; (* last successful write / drain instant *)
  mutable max_buffered : int;
}

let default_high_water = 4 * 1024 * 1024

let create ?(high_water = default_high_water) ~now fd =
  {
    w_fd = fd;
    hw = high_water;
    q = Queue.create ();
    buffered = 0;
    progress_at = now;
    max_buffered = 0;
  }

let fd t = t.w_fd
let high_water t = t.hw
let pending_bytes t = t.buffered
let has_pending t = t.buffered > 0
let max_buffered t = t.max_buffered

let push t frame =
  Queue.add { data = frame; off = 0 } t.q;
  t.buffered <- t.buffered + Bytes.length frame;
  if t.buffered > t.max_buffered then t.max_buffered <- t.buffered;
  t.buffered <= t.hw

let rec flush t ~now =
  match Queue.peek_opt t.q with
  | None ->
      t.progress_at <- now;
      Drained
  | Some c -> (
      let len = Bytes.length c.data - c.off in
      match Unix.write t.w_fd c.data c.off len with
      | 0 -> Pending
      | n ->
          t.buffered <- t.buffered - n;
          t.progress_at <- now;
          if n = len then begin
            ignore (Queue.pop t.q);
            flush t ~now
          end
          else begin
            c.off <- c.off + n;
            Pending
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Pending
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush t ~now
      | exception Unix.Unix_error _ -> Peer_gone)

let stalled_for t ~now =
  if t.buffered = 0 then 0. else max 0. (now -. t.progress_at)
