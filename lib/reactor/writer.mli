(** Bounded, non-blocking output buffer for one connection.

    Frames are queued whole and flushed opportunistically with
    non-blocking writes; partial writes keep a cursor into the head
    chunk, so flushing is O(bytes written), not O(bytes buffered).
    The high-water mark is the backpressure trigger: [push] reports
    when the buffer has crossed it and the owner decides the policy —
    protocol connections get a typed [Overloaded] and are closed,
    replication subscribers have shipping paused until they drain. *)

type t

type flush = Drained  (** buffer empty *)
  | Pending  (** bytes remain; poll for writability *)
  | Peer_gone  (** connection reset/closed under us *)

val create : ?high_water:int -> now:float -> Unix.file_descr -> t

val fd : t -> Unix.file_descr
val high_water : t -> int

(** Queue a whole frame. Returns [false] when the buffer is above the
    high-water mark after the push — the frame is still queued (a
    final typed frame may ride out past the mark); the caller must
    apply its backpressure policy. *)
val push : t -> bytes -> bool

(** Write as much as the socket accepts without blocking. *)
val flush : t -> now:float -> flush

val pending_bytes : t -> int
val has_pending : t -> bool

(** Seconds since the last successful write progress, when bytes are
    pending ([0.] when drained). Drives stalled-consumer reaping. *)
val stalled_for : t -> now:float -> float

(** Largest [pending_bytes] ever observed — test/metrics hook for
    checking the high-water mark is honored. *)
val max_buffered : t -> int
