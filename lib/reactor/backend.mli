(** Readiness backends: the poll(2) C stub and the portable
    [Unix.select] fallback.

    The poll backend has no fd-number ceiling and is the default. The
    select fallback exists for platforms without the stub and for
    forcing in tests ([RIKIT_REACTOR_BACKEND=select]); it inherits
    select's [FD_SETSIZE] (~1024) limit — waiting on an fd numbered
    beyond that raises, which is exactly the limitation the reactor
    was built to escape. *)

type kind = Poll | Select

val kind_to_string : kind -> string
val kind_of_string : string -> kind option

(** Backend forced by [RIKIT_REACTOR_BACKEND] ([poll]/[select]) if
    set, otherwise [Poll] when the stub is functional, else
    [Select]. *)
val default : unit -> kind

(** The raw fd number (identity on Unix). Exposed so callers can
    detect fds beyond the select fallback's ceiling. *)
val fd_int : Unix.file_descr -> int

(** Largest fd number the select fallback can wait on. *)
val select_fd_limit : int

(** [wait k entries ~timeout] blocks until at least one entry is
    ready or [timeout] (seconds; negative = forever) elapses. Each
    entry is [(fd, want_read, want_write)]; the result lists ready
    entries as [(fd, readable, writable)] — error/hangup conditions
    are reported as ready in every direction of interest. Interrupted
    waits ([EINTR]) return []. *)
val wait :
  kind ->
  (Unix.file_descr * bool * bool) array ->
  timeout:float ->
  (Unix.file_descr * bool * bool) list

(** [wait_fd ?kind fd dir ~timeout] waits for a single fd; [true] if
    it became ready within [timeout] seconds. Used for client-side
    deadline waits (connect completion, response deadlines). *)
val wait_fd :
  ?kind:kind -> Unix.file_descr -> [ `Read | `Write ] -> timeout:float -> bool
