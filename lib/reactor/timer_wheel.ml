let slot_bits = 8
let slots = 1 lsl slot_bits (* 256 *)
let levels = 4
let capacity = 1 lsl (slot_bits * levels) (* ticks; ≈ 49.7 days at 1 ms *)
let tick_ms = 1. /. 1000.

type timer = {
  mutable t_active : bool;
  mutable t_tick : int; (* absolute due tick *)
  t_f : unit -> unit;
}

type t = {
  epoch : float;
  mutable cur : int; (* last fully-processed tick *)
  wheel : timer list array array; (* levels x slots *)
  mutable active : int;
}

let create ~now =
  {
    epoch = now;
    cur = 0;
    wheel = Array.init levels (fun _ -> Array.make slots []);
    active = 0;
  }

let tick_of t time =
  let d = (time -. t.epoch) /. tick_ms in
  if d <= 0. then 0 else int_of_float d

let time_of t tick = t.epoch +. (float_of_int tick *. tick_ms)

(* Place [tm] by its distance from the cursor: level k holds timers
   due within 256^(k+1) ticks, slotted by bits [8k, 8k+8) of the due
   tick. Too-distant timers are clamped into the top level and get
   re-placed as cascades bring them closer. *)
let place t tm =
  let delta = max 1 (min (tm.t_tick - t.cur) (capacity - 1)) in
  let due = t.cur + delta in
  let level =
    if delta < slots then 0
    else if delta < slots * slots then 1
    else if delta < slots * slots * slots then 2
    else 3
  in
  let slot = (due lsr (slot_bits * level)) land (slots - 1) in
  t.wheel.(level).(slot) <- tm :: t.wheel.(level).(slot)

let add t ~now ~at f =
  if t.active = 0 then t.cur <- max t.cur (tick_of t now);
  let tm = { t_active = true; t_tick = tick_of t at; t_f = f } in
  place t tm;
  t.active <- t.active + 1;
  tm

let cancel t tm =
  if tm.t_active then begin
    tm.t_active <- false;
    t.active <- t.active - 1
  end

let pending t = t.active

let next_deadline t =
  if t.active = 0 then None
  else begin
    let found = ref None in
    let k = ref (t.cur + 1) in
    while !found = None && !k <= t.cur + slots do
      let slot = t.wheel.(0).(!k land (slots - 1)) in
      if List.exists (fun tm -> tm.t_active && tm.t_tick <= !k) slot then
        found := Some (time_of t !k);
      incr k
    done;
    match !found with
    | Some _ as s -> s
    | None ->
        (* Level 0 is empty out to its horizon: the next interesting
           instant is the next level-1 cascade boundary. *)
        Some (time_of t (((t.cur lsr slot_bits) + 1) lsl slot_bits))
  end

let fire t fired tm =
  if tm.t_active then begin
    tm.t_active <- false;
    t.active <- t.active - 1;
    incr fired;
    tm.t_f ()
  end

(* Move every timer out of a higher-level slot: due ones fire, the
   rest drop into a lower level (or fire immediately if their clamped
   placement has caught up with them). *)
let cascade t fired level slot =
  let batch = t.wheel.(level).(slot) in
  t.wheel.(level).(slot) <- [];
  List.iter
    (fun tm ->
      if not tm.t_active then ()
      else if tm.t_tick <= t.cur then fire t fired tm
      else place t tm)
    batch

let advance t ~now =
  let target = tick_of t now in
  let fired = ref 0 in
  while t.cur < target do
    if t.active = 0 then t.cur <- target
    else begin
      t.cur <- t.cur + 1;
      let c = t.cur in
      if c land (slots - 1) = 0 then begin
        cascade t fired 1 ((c lsr slot_bits) land (slots - 1));
        if c land ((slots * slots) - 1) = 0 then begin
          cascade t fired 2 ((c lsr (2 * slot_bits)) land (slots - 1));
          if c land ((slots * slots * slots) - 1) = 0 then
            cascade t fired 3 ((c lsr (3 * slot_bits)) land (slots - 1))
        end
      end;
      let slot = c land (slots - 1) in
      let batch = t.wheel.(0).(slot) in
      if batch <> [] then begin
        t.wheel.(0).(slot) <- [];
        List.iter
          (fun tm ->
            if not tm.t_active then ()
            else if tm.t_tick <= c then fire t fired tm
            else place t tm)
          batch
      end
    end
  done;
  !fired
