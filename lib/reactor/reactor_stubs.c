/* poll(2) binding for the reactor's primary backend.
 *
 * Calling convention (see Backend.poll_raw):
 *   fds     : int array   — file descriptor numbers
 *   events  : int array   — interest bits: 1 = readable, 2 = writable
 *   revents : int array   — written with readiness bits (same encoding);
 *                           POLLERR/POLLHUP/POLLNVAL are folded into both
 *                           directions the caller asked about, so error
 *                           conditions surface through whichever callback
 *                           is registered instead of being silently lost
 *   n       : int         — number of live entries (arrays may be longer)
 *   timeout : int         — milliseconds, -1 = block indefinitely
 *
 * Returns the number of ready entries. EINTR is reported as 0 ready
 * (the caller's loop recomputes deadlines and re-enters); any other
 * errno raises Failure. The OCaml runtime lock is released around the
 * syscall so other domains/threads keep running while we block.
 */

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

CAMLprim value rikit_poll_stub(value vfds, value vevents, value vrevents,
                               value vn, value vtimeout)
{
  CAMLparam5(vfds, vevents, vrevents, vn, vtimeout);
  int n = Int_val(vn);
  int timeout = Int_val(vtimeout);
  struct pollfd *pfd;
  int i, ret, saved_errno;

  if (n < 0) caml_invalid_argument("rikit_poll: negative count");
  pfd = (struct pollfd *)malloc(sizeof(struct pollfd) * (size_t)(n > 0 ? n : 1));
  if (pfd == NULL) caml_failwith("rikit_poll: out of memory");

  for (i = 0; i < n; i++) {
    int want = Int_val(Field(vevents, i));
    short ev = 0;
    if (want & 1) ev |= POLLIN;
    if (want & 2) ev |= POLLOUT;
    pfd[i].fd = Int_val(Field(vfds, i));
    pfd[i].events = ev;
    pfd[i].revents = 0;
  }

  caml_release_runtime_system();
  ret = poll(pfd, (nfds_t)n, timeout);
  saved_errno = errno;
  caml_acquire_runtime_system();

  if (ret < 0) {
    free(pfd);
    if (saved_errno == EINTR) {
      for (i = 0; i < n; i++) Store_field(vrevents, i, Val_int(0));
      CAMLreturn(Val_int(0));
    }
    caml_failwith("rikit_poll: poll(2) failed");
  }

  for (i = 0; i < n; i++) {
    short re = pfd[i].revents;
    int got = 0;
    /* Errors and hangups are folded into both directions; the OCaml
       dispatch layer gates callbacks on the registered interest set. */
    if (re & (POLLIN | POLLERR | POLLHUP | POLLNVAL)) got |= 1;
    if (re & (POLLOUT | POLLERR | POLLHUP | POLLNVAL)) got |= 2;
    Store_field(vrevents, i, Val_int(got));
  }
  free(pfd);
  CAMLreturn(Val_int(ret));
}
