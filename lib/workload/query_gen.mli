(** Query workloads with calibrated selectivity.

    The paper's figures fix the query selectivity (e.g. "query
    selectivity = 0.6 %" in Fig. 14): query intervals follow a
    distribution "compatible to the respective interval database" while
    their length is chosen so that the average fraction of reported
    intervals matches the target. We calibrate the query length by
    bisection against the exact counting {!Oracle}. *)

val queries :
  ?seed:int ->
  data:Interval.Ivl.t array ->
  count:int ->
  float ->
  Interval.Ivl.t array
(** [queries ~data ~count sel]: [count] query intervals with uniformly
    distributed starting points whose measured average selectivity over
    the dataset approximates [sel] (a fraction, e.g. [0.005]). A zero selectivity yields
    point queries. *)

val queries_within :
  ?seed:int ->
  range:int * int ->
  count:int ->
  len:int ->
  unit ->
  Interval.Ivl.t array
(** [count] fixed-length query intervals confined to the inclusive
    [range] (clamped to the domain): starts are uniform in the range
    and extents never cross its upper bound. The shard-locality
    workload — routed through a shard map, every query fans to exactly
    the one shard owning its range.
    @raise Invalid_argument when the clamped range is empty. *)

val point_queries :
  ?seed:int -> count:int -> unit -> Interval.Ivl.t array
(** Degenerate query intervals uniform over the domain. *)

val sweep_points : count:int -> Interval.Ivl.t array
(** Point queries sweeping the domain from its upper bound downwards —
    the "sweeping point query" of Fig. 17. Evenly spaced, descending. *)

val measured_selectivity :
  data:Interval.Ivl.t array -> Interval.Ivl.t array -> float
(** Average selectivity of a query batch over a dataset. *)
