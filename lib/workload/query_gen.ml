module Ivl = Interval.Ivl

let domain_max = Distribution.domain_max
let clamp v = max 0 (min domain_max v)

let make_query start len = Ivl.make start (clamp (start + len))

let measured_selectivity ~data queries =
  if Array.length queries = 0 then 0.0
  else
    let oracle = Oracle.build data in
    let total =
      Array.fold_left (fun acc q -> acc +. Oracle.selectivity oracle q) 0.0
        queries
    in
    total /. float_of_int (Array.length queries)

let queries ?(seed = 123) ~data ~count selectivity =
  if count <= 0 then [||]
  else begin
    let oracle = Oracle.build data in
    let rng = Prng.create ~seed in
    let starts = Array.init count (fun _ -> Prng.int rng (domain_max + 1)) in
    let avg_sel len =
      let total =
        Array.fold_left
          (fun acc s -> acc +. Oracle.selectivity oracle (make_query s len))
          0.0 starts
      in
      total /. float_of_int count
    in
    (* Average selectivity grows monotonically with the query length:
       bisect for the smallest length reaching the target. *)
    let len =
      if selectivity <= 0.0 then 0
      else if avg_sel 0 >= selectivity then 0
      else if avg_sel domain_max < selectivity then domain_max
      else begin
        let lo = ref 0 and hi = ref domain_max in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if avg_sel mid >= selectivity then hi := mid else lo := mid
        done;
        !hi
      end
    in
    Array.map (fun s -> make_query s len) starts
  end

let queries_within ?(seed = 123) ~range:(lo, hi) ~count ~len () =
  if count <= 0 then [||]
  else begin
    let lo = clamp lo and hi = clamp hi in
    if lo > hi then invalid_arg "Query_gen.queries_within: empty range";
    let len = max 0 len in
    let rng = Prng.create ~seed in
    Array.init count (fun _ ->
        let start = lo + Prng.int rng (hi - lo + 1) in
        Ivl.make start (clamp (min (start + len) hi)))
  end

let point_queries ?(seed = 123) ~count () =
  let rng = Prng.create ~seed in
  Array.init count (fun _ -> Ivl.point (Prng.int rng (domain_max + 1)))

let sweep_points ~count =
  if count <= 0 then [||]
  else
    Array.init count (fun i ->
        let p = domain_max - (i * domain_max / max 1 (count - 1)) in
        Ivl.point (clamp p))
