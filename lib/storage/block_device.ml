exception Io_error of { op : string; block : int }
exception Crash of int

type t = {
  block_size : int;
  impl_read : int -> Bytes.t -> unit;
  impl_write : int -> Bytes.t -> unit;
  impl_alloc : unit -> int;
  impl_allocated : unit -> int;
  mutable reads : int;
  mutable writes : int;
}

let of_impl ~block_size ~read ~write ~alloc ~allocated =
  if block_size < 64 then
    invalid_arg
      (Printf.sprintf "Block_device.of_impl: block size %d too small"
         block_size);
  { block_size; impl_read = read; impl_write = write; impl_alloc = alloc;
    impl_allocated = allocated; reads = 0; writes = 0 }

(* Default in-memory backend: an array of fixed-size blocks, as in the
   paper's simulated U-SCSI disk. *)
let create ?(block_size = 2048) () =
  if block_size < 64 then
    invalid_arg
      (Printf.sprintf "Block_device.create: block size %d too small"
         block_size);
  let blocks = ref (Array.make 64 Bytes.empty) in
  let allocated = ref 0 in
  let check id buf op =
    if id < 0 || id >= !allocated then
      invalid_arg (Printf.sprintf "Block_device.%s: bad block id %d" op id);
    if Bytes.length buf <> block_size then
      invalid_arg
        (Printf.sprintf "Block_device.%s: buffer size %d, expected %d" op
           (Bytes.length buf) block_size)
  in
  let read id buf =
    check id buf "read";
    Bytes.blit !blocks.(id) 0 buf 0 block_size
  in
  let write id buf =
    check id buf "write";
    Bytes.blit buf 0 !blocks.(id) 0 block_size
  in
  let alloc () =
    let cap = Array.length !blocks in
    if !allocated >= cap then begin
      let grown = Array.make (2 * cap) Bytes.empty in
      Array.blit !blocks 0 grown 0 cap;
      blocks := grown
    end;
    let id = !allocated in
    !blocks.(id) <- Bytes.make block_size '\000';
    allocated := id + 1;
    id
  in
  of_impl ~block_size ~read ~write ~alloc ~allocated:(fun () -> !allocated)

let block_size t = t.block_size
let allocated t = t.impl_allocated ()
let alloc t = t.impl_alloc ()

let read t id buf =
  t.impl_read id buf;
  t.reads <- t.reads + 1;
  Obs.Counters.incr_read ()

let write t id buf =
  t.impl_write id buf;
  t.writes <- t.writes + 1;
  Obs.Counters.incr_write ()

module Stats = struct
  type device = t
  type t = { reads : int; writes : int }

  let total s = s.reads + s.writes
  let get (d : device) = { reads = d.reads; writes = d.writes }

  let reset (d : device) =
    d.reads <- 0;
    d.writes <- 0

  let pp ppf s =
    Format.fprintf ppf "reads=%d writes=%d total=%d" s.reads s.writes
      (total s)
end
