(** Write-ahead journal for crash recovery.

    The paper sells the RI-tree on inheriting the host RDBMS's
    "industrial strength" recovery services for free; this journal is
    that service in our bundled engine. It is a physical full-page-image
    log: every write-back of a dirty page appends its before- and
    after-image, {!Buffer_pool.commit} force-logs all dirty pages
    followed by a commit marker (log-force, lazy data pages), and
    {!recover} reconstructs the last committed image of every page:

    - a page whose last pre-commit record exists gets that record's
      after-image (redo);
    - a page touched only after the last commit gets its first
      post-commit before-image (undo of stolen, uncommitted writes);
    - untouched pages keep their device content.

    Everything uncommitted at the crash vanishes atomically.

    The log is held serialized, each record ending in a CRC-32 of its
    bytes, split into a {e durable} (forced) prefix and a {e pending}
    unforced tail. Recovery parses the durable bytes and treats an
    invalid tail — torn final record, bit-flipped record — as a torn
    log: it replays the longest valid prefix and never raises. *)

type t

type record =
  | Write of { page : int; before : Bytes.t; after : Bytes.t }
  | Commit

val create : unit -> t

val append : t -> record -> unit
(** Serialize the record (with its CRC) into the pending tail. *)

val records : t -> record list
(** All parseable records, durable then pending, oldest first. *)

val record_count : t -> int
val byte_size : t -> int
(** Payload (image) bytes logged — diagnostic, excludes framing. *)

val force : t -> unit
(** Make everything appended so far durable — the simulated log force
    (fsync) whose count is what group commit amortizes. A force with
    nothing new appended is not counted. *)

val force_count : t -> int
(** Number of (counted) forces so far. *)

val commit_count : t -> int
(** Number of commit markers appended so far; with group commit this is
    one per batch, not one per commit request. *)

val drop_unforced : t -> unit
(** Discard the pending tail — what a crash does to log bytes that were
    never forced. Called by {!Buffer_pool.crash}. *)

val durable_bytes : t -> int
(** Size of the forced log in serialized bytes (framing included). *)

val unforced_bytes : t -> int

(** {2 LSN addressing and streaming}

    The durable log is an append-only byte stream, so an LSN is simply a
    byte offset into the all-time durable stream — exactly what
    journal-shipping replication needs. A checkpoint ({!truncate})
    discards retained bytes but advances {!base_lsn}, keeping LSNs
    monotone for the life of the process. *)

val base_lsn : t -> int
(** LSN of the first durable byte still retained (grows at every
    {!truncate}). A subscriber whose resume LSN is below this must full
    resync. *)

val durable_lsn : t -> int
(** LSN one past the last durable byte — the total number of bytes ever
    forced. Grows exactly at {!force}; the commit marker for a batch is
    always the last record below the post-force [durable_lsn], so
    streaming to this offset ships whole committed batches. *)

val stream_from : ?max_bytes:int -> t -> int -> Bytes.t
(** [stream_from t lsn] reads the durable bytes from byte-offset LSN
    [lsn] to {!durable_lsn} (or at most [max_bytes] of them) — the
    replication feed. Never includes unforced pending bytes.
    @raise Invalid_argument if [lsn] is below {!base_lsn} (truncated
    away) or beyond {!durable_lsn}. *)

val parse : Bytes.t -> len:int -> (record * int) list
(** Parse the longest valid prefix of a serialized record stream (the
    format {!stream_from} ships): each complete, CRC-valid record paired
    with the byte offset one past its serialized end. Stops at the first
    torn or corrupt record; never raises. The replica apply path uses the
    offsets to consume exactly the applied prefix and resume cleanly. *)

val durable_torn : t -> bool
(** Whether the durable log ends in an invalid (torn or corrupt)
    record — i.e. whether recovery would truncate a suffix. *)

val truncate : t -> unit
(** Drop all records (after a checkpoint made the device current). *)

val recover : t -> Block_device.t -> int
(** Restore every page of the device to its last committed image and
    truncate the journal; returns the number of pages restored. The
    device writes performed here are counted I/O. Pending records are
    forced first (an explicit recover replays everything appended); an
    invalid durable tail is truncated at the last valid record, never an
    exception. *)

val recovery_images : t -> (int, Bytes.t) Hashtbl.t
(** The page images {!recover} would install, without applying or
    truncating anything — the repair source for [rikit scrub]. Only
    records with a valid checksum contribute. *)

(** {2 Test hooks}

    Damage the durable log the way a lying disk would. *)

val tear : t -> keep:int -> unit
(** Truncate the durable log to its first [keep] serialized bytes,
    modelling a torn final log write. *)

val corrupt_byte : t -> off:int -> unit
(** Flip a bit in the durable log at byte offset [off], modelling log
    bit rot.
    @raise Invalid_argument if [off] is outside the durable bytes. *)
