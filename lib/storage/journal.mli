(** Write-ahead journal for crash recovery.

    The paper sells the RI-tree on inheriting the host RDBMS's
    "industrial strength" recovery services for free; this journal is
    that service in our bundled engine. It is a physical full-page-image
    log: every write-back of a dirty page appends its before- and
    after-image, {!Buffer_pool.commit} force-logs all dirty pages
    followed by a commit marker (log-force, lazy data pages), and
    {!recover} reconstructs the last committed image of every page:

    - a page whose last pre-commit record exists gets that record's
      after-image (redo);
    - a page touched only after the last commit gets its first
      post-commit before-image (undo of stolen, uncommitted writes);
    - untouched pages keep their device content.

    Everything uncommitted at the crash vanishes atomically. *)

type t

type record =
  | Write of { page : int; before : Bytes.t; after : Bytes.t }
  | Commit

val create : unit -> t
val append : t -> record -> unit
val records : t -> record list
(** Oldest first. *)

val record_count : t -> int
val byte_size : t -> int
(** Payload bytes logged (diagnostic). *)

val force : t -> unit
(** Make everything appended so far durable — the simulated log force
    (fsync) whose count is what group commit amortizes. A force with
    nothing new appended is not counted. *)

val force_count : t -> int
(** Number of (counted) forces so far. *)

val commit_count : t -> int
(** Number of commit markers appended so far; with group commit this is
    one per batch, not one per commit request. *)

val truncate : t -> unit
(** Drop all records (after a checkpoint made the device current). *)

val recover : t -> Block_device.t -> int
(** Restore every page of the device to its last committed image and
    truncate the journal; returns the number of pages restored. The
    device writes performed here are counted I/O. *)
