type report = {
  blocks : int;
  clean : int;
  zero : int;
  corrupt : int list;
  repaired : int list;
  unrepairable : int list;
  journal_records : int;
  journal_torn : bool;
}

let all_zero data =
  let n = Bytes.length data in
  let rec go i = i >= n || (Bytes.get_uint8 data i = 0 && go (i + 1)) in
  go 0

let verify_block data =
  let payload = Bytes.length data - 4 in
  let stored = Bytes.get_int32_le data payload in
  stored = Checksum.bytes data ~pos:0 ~len:payload

let run ?(repair = false) ?journal ~checksums device =
  if not checksums then
    invalid_arg "Scrub.run: device has no checksum trailers to verify";
  let bs = Block_device.block_size device in
  let n = Block_device.allocated device in
  let images =
    match journal with
    | Some j when repair -> Journal.recovery_images j
    | _ -> Hashtbl.create 0
  in
  let jrecords, jtorn =
    match journal with
    | Some j -> (List.length (Journal.records j), Journal.durable_torn j)
    | None -> (0, false)
  in
  let clean = ref 0 and zero = ref 0 in
  let corrupt = ref [] and repaired = ref [] and unrepairable = ref [] in
  let buf = Bytes.create bs in
  for id = 0 to n - 1 do
    Block_device.read device id buf;
    if verify_block buf then incr clean
    else if all_zero buf then incr zero
    else begin
      corrupt := id :: !corrupt;
      if repair then
        match Hashtbl.find_opt images id with
        | Some image when Bytes.length image = bs && verify_block image ->
            Block_device.write device id image;
            repaired := id :: !repaired
        | _ -> unrepairable := id :: !unrepairable
    end
  done;
  { blocks = n; clean = !clean; zero = !zero; corrupt = List.rev !corrupt;
    repaired = List.rev !repaired; unrepairable = List.rev !unrepairable;
    journal_records = jrecords; journal_torn = jtorn }

let render ppf r =
  Format.fprintf ppf "scrub: %d blocks, %d clean, %d zero, %d corrupt"
    r.blocks r.clean r.zero (List.length r.corrupt);
  if r.corrupt <> [] then begin
    Format.fprintf ppf "@.  corrupt blocks: %s"
      (String.concat ", " (List.map string_of_int r.corrupt));
    Format.fprintf ppf "@.  repaired: %s"
      (if r.repaired = [] then "none"
       else String.concat ", " (List.map string_of_int r.repaired));
    if r.unrepairable <> [] then
      Format.fprintf ppf "@.  unrepairable: %s"
        (String.concat ", " (List.map string_of_int r.unrepairable))
  end;
  Format.fprintf ppf "@.  journal: %d records%s" r.journal_records
    (if r.journal_torn then " (torn tail)" else "")
