type record =
  | Write of { page : int; before : Bytes.t; after : Bytes.t }
  | Commit

type t = {
  mutable rev_records : record list;
  mutable count : int;
  mutable bytes : int;
  mutable commits : int;
  mutable forces : int;
  mutable unforced : int; (* records appended since the last force *)
}

let create () =
  { rev_records = []; count = 0; bytes = 0; commits = 0; forces = 0;
    unforced = 0 }

let append t r =
  t.rev_records <- r :: t.rev_records;
  t.count <- t.count + 1;
  t.unforced <- t.unforced + 1;
  match r with
  | Write { before; after; _ } ->
      t.bytes <- t.bytes + Bytes.length before + Bytes.length after
  | Commit -> t.commits <- t.commits + 1

let force t =
  if t.unforced > 0 then begin
    t.forces <- t.forces + 1;
    t.unforced <- 0
  end

let records t = List.rev t.rev_records
let record_count t = t.count
let byte_size t = t.bytes
let commit_count t = t.commits
let force_count t = t.forces

let truncate t =
  t.rev_records <- [];
  t.count <- 0;
  t.bytes <- 0;
  t.unforced <- 0

let recover t device =
  let rs = Array.of_list (records t) in
  let last_commit = ref (-1) in
  Array.iteri (fun i r -> if r = Commit then last_commit := i) rs;
  (* For each page: the last committed after-image, or — if the page was
     only written after the last commit — its first before-image. *)
  let target : (int, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      match r with
      | Commit -> ()
      | Write { page; before; after } ->
          if i <= !last_commit then Hashtbl.replace target page after
          else if not (Hashtbl.mem target page) then
            Hashtbl.replace target page before)
    rs;
  let restored = ref 0 in
  Hashtbl.iter
    (fun page image ->
      Block_device.write device page image;
      incr restored)
    target;
  truncate t;
  !restored
