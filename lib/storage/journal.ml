type record =
  | Write of { page : int; before : Bytes.t; after : Bytes.t }
  | Commit

(* The log is held as serialized bytes, exactly as it would sit on a log
   device, so recovery really parses what a crash would leave behind:

     record := tag:u8 body crc32:u32le      (crc over tag+body)
     body   := page:u32le blen:u32le alen:u32le before after   (tag 1)
             | empty                                            (tag 2)

   [durable] is the forced prefix; [pending] holds records appended
   since the last force. A crash (Buffer_pool.crash) drops [pending];
   test hooks can tear or corrupt [durable] to model torn writes and bit
   rot on the log itself. *)
type t = {
  durable : Buffer.t;
  pending : Buffer.t;
  mutable base_lsn : int;
  mutable d_count : int;
  mutable d_bytes : int;
  mutable p_count : int;
  mutable p_bytes : int;
  mutable p_commits : int;
  mutable commits : int;
  mutable forces : int;
}

let create () =
  { durable = Buffer.create 4096; pending = Buffer.create 1024;
    base_lsn = 0;
    d_count = 0; d_bytes = 0; p_count = 0; p_bytes = 0; p_commits = 0;
    commits = 0; forces = 0 }

let put_u32 b v = Buffer.add_int32_le b (Int32.of_int v)

let serialize buf r =
  let start = Buffer.length buf in
  (match r with
   | Write { page; before; after } ->
       Buffer.add_char buf '\001';
       put_u32 buf page;
       put_u32 buf (Bytes.length before);
       put_u32 buf (Bytes.length after);
       Buffer.add_bytes buf before;
       Buffer.add_bytes buf after
   | Commit -> Buffer.add_char buf '\002');
  let body = Buffer.length buf - start in
  (* CRC over tag+body; Buffer gives no random access, so re-read the
     tail we just wrote. *)
  let tail = Bytes.unsafe_of_string (Buffer.sub buf start body) in
  Buffer.add_int32_le buf (Checksum.all tail)

let append t r =
  serialize t.pending r;
  t.p_count <- t.p_count + 1;
  (match r with
   | Write { before; after; _ } ->
       let payload = Bytes.length before + Bytes.length after in
       t.p_bytes <- t.p_bytes + payload;
       Obs.Counters.add_journal_bytes payload
   | Commit ->
       t.p_commits <- t.p_commits + 1;
       t.commits <- t.commits + 1)

let do_force t =
  t.forces <- t.forces + 1;
  Obs.Counters.incr_journal_force ();
  Buffer.add_buffer t.durable t.pending;
  t.d_count <- t.d_count + t.p_count;
  t.d_bytes <- t.d_bytes + t.p_bytes;
  Buffer.clear t.pending;
  t.p_count <- 0;
  t.p_bytes <- 0;
  t.p_commits <- 0

let force t =
  if t.p_count > 0 then
    (* Commit-path hot spot: never pay the sprintf (or a closure) for
       the span unless tracing is actually on. *)
    if Obs.Trace.enabled () then
      Obs.Trace.with_span "journal.force"
        ~info:(Printf.sprintf "%d records" t.p_count)
        (fun () -> do_force t)
    else do_force t

let drop_unforced t =
  t.commits <- t.commits - t.p_commits;
  Buffer.clear t.pending;
  t.p_count <- 0;
  t.p_bytes <- 0;
  t.p_commits <- 0

let record_count t = t.d_count + t.p_count
let byte_size t = t.d_bytes + t.p_bytes
let commit_count t = t.commits
let force_count t = t.forces
let durable_bytes t = Buffer.length t.durable
let unforced_bytes t = Buffer.length t.pending

(* {2 LSN addressing}

   The durable log is a byte stream; an LSN is simply a byte offset into
   the all-time durable stream. [base_lsn] is the LSN of the first byte
   still held in [durable] — a truncate (checkpoint) discards the bytes
   but advances the base, so LSNs stay monotone across checkpoints and a
   replication subscriber can detect that its resume point fell off the
   retained log. *)

let base_lsn t = t.base_lsn
let durable_lsn t = t.base_lsn + Buffer.length t.durable

let stream_from ?max_bytes t lsn =
  if lsn < t.base_lsn then
    invalid_arg
      (Printf.sprintf
         "Journal.stream_from: lsn %d before retained base %d (truncated)"
         lsn t.base_lsn);
  let dur = durable_lsn t in
  if lsn > dur then
    invalid_arg
      (Printf.sprintf "Journal.stream_from: lsn %d beyond durable end %d"
         lsn dur);
  let off = lsn - t.base_lsn in
  let avail = Buffer.length t.durable - off in
  let len = match max_bytes with
    | Some m when m < avail -> max 0 m
    | _ -> avail
  in
  Bytes.unsafe_of_string (Buffer.sub t.durable off len)

let truncate t =
  t.base_lsn <- t.base_lsn + Buffer.length t.durable;
  Buffer.clear t.durable;
  Buffer.clear t.pending;
  t.d_count <- 0;
  t.d_bytes <- 0;
  t.p_count <- 0;
  t.p_bytes <- 0;
  t.p_commits <- 0

(* {2 Parsing} *)

type scan = { records : record list; valid_bytes : int; torn : bool }

let get_u32 data pos =
  Int32.to_int (Int32.logand (Bytes.get_int32_le data pos) 0xFFFFFFFFl)

let scan_bytes data len =
  let pos = ref 0 in
  let out = ref [] in
  let torn = ref false in
  (try
     while !pos < len do
       let start = !pos in
       if start + 1 > len then raise Exit;
       let tag = Bytes.get_uint8 data start in
       let body_len =
         match tag with
         | 1 ->
             if start + 13 > len then raise Exit;
             let blen = get_u32 data (start + 5) in
             let alen = get_u32 data (start + 9) in
             if blen < 0 || alen < 0 || blen > len || alen > len then
               raise Exit;
             13 + blen + alen
         | 2 -> 1
         | _ -> raise Exit
       in
       if start + body_len + 4 > len then raise Exit;
       let crc = Bytes.get_int32_le data (start + body_len) in
       if crc <> Checksum.bytes data ~pos:start ~len:body_len then raise Exit;
       let r =
         match tag with
         | 1 ->
             let page = get_u32 data (start + 1) in
             let blen = get_u32 data (start + 5) in
             let alen = get_u32 data (start + 9) in
             Write
               { page;
                 before = Bytes.sub data (start + 13) blen;
                 after = Bytes.sub data (start + 13 + blen) alen }
         | _ -> Commit
       in
       out := r :: !out;
       pos := start + body_len + 4
     done
   with Exit -> torn := true);
  { records = List.rev !out; valid_bytes = !pos; torn = !torn }

let parse data ~len =
  let scan = scan_bytes data len in
  (* Re-walk to attach each record's end offset: the serialized sizes
     are recomputable from the records themselves. *)
  let pos = ref 0 in
  List.map
    (fun r ->
      let body =
        match r with
        | Write { before; after; _ } ->
            13 + Bytes.length before + Bytes.length after
        | Commit -> 1
      in
      pos := !pos + body + 4;
      (r, !pos))
    scan.records

let scan_durable t =
  scan_bytes (Buffer.to_bytes t.durable) (Buffer.length t.durable)

let durable_torn t = (scan_durable t).torn

let records t =
  let d = scan_durable t in
  let p = scan_bytes (Buffer.to_bytes t.pending) (Buffer.length t.pending) in
  d.records @ p.records

(* {2 Recovery} *)

(* For each page: the last committed after-image, or — if the page was
   only written after the last commit — its first before-image. *)
let target_map records =
  let rs = Array.of_list records in
  let last_commit = ref (-1) in
  Array.iteri (fun i r -> if r = Commit then last_commit := i) rs;
  let target : (int, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i r ->
      match r with
      | Commit -> ()
      | Write { page; before; after } ->
          if i <= !last_commit then Hashtbl.replace target page after
          else if not (Hashtbl.mem target page) then
            Hashtbl.replace target page before)
    rs;
  target

let recovery_images t =
  let d = scan_durable t in
  let p = scan_bytes (Buffer.to_bytes t.pending) (Buffer.length t.pending) in
  target_map (d.records @ p.records)

let recover t device =
  (* An explicit recover call treats everything appended so far as the
     log to replay; pending bytes are forced first. (After a real crash,
     Buffer_pool.crash has already dropped the unforced tail, so this is
     a no-op there.) *)
  force t;
  let scan = scan_durable t in
  (* An invalid tail is a torn log: replay the valid prefix, drop the
     rest. Never raise. *)
  let target = target_map scan.records in
  let restored = ref 0 in
  Hashtbl.iter
    (fun page image ->
      Block_device.write device page image;
      incr restored)
    target;
  truncate t;
  !restored

(* {2 Test hooks: damage the durable log} *)

let tear t ~keep =
  let keep = max 0 (min keep (Buffer.length t.durable)) in
  Buffer.truncate t.durable keep

let corrupt_byte t ~off =
  if off < 0 || off >= Buffer.length t.durable then
    invalid_arg "Journal.corrupt_byte: offset outside durable log";
  let data = Buffer.to_bytes t.durable in
  Bytes.set_uint8 data off (Bytes.get_uint8 data off lxor 0x40);
  Buffer.clear t.durable;
  Buffer.add_bytes t.durable data
