(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Pure OCaml so the storage layer stays dependency-free. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Checksum.update: range outside buffer";
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int
        (Int32.logand
           (Int32.logxor !c (Int32.of_int (Bytes.get_uint8 buf i)))
           0xffl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let bytes ?(crc = 0l) buf ~pos ~len = update crc buf ~pos ~len
let all buf = bytes buf ~pos:0 ~len:(Bytes.length buf)
let string s = all (Bytes.unsafe_of_string s)
