(** Simulated block device.

    The paper's primary experimental metric is the number of physical
    disk block accesses (Figs. 13, 14). This module stands in for the
    U-SCSI disk of the paper's testbed: an array of fixed-size blocks
    with explicit read/write counters. Every transfer between the buffer
    pool and the device is counted as one physical I/O.

    A device is a block-size plus four operations, so alternative
    backends — notably the fault-injecting {!Faulty_device} — plug in
    through {!of_impl} while the layers above keep a single concrete
    [t]. *)

exception Io_error of { op : string; block : int }
(** A transient I/O failure on [op] ("read" or "write") of [block].
    The mem backend never raises it; fault-injecting wrappers do.
    Retrying the operation may succeed. *)

exception Crash of int
(** Raised by a fault-injecting backend when a programmed crash point is
    hit; the payload is the index of the physical write that "killed the
    machine". Everything written before it persists; the in-flight write
    and all later state is lost. *)

type t

val create : ?block_size:int -> unit -> t
(** [create ~block_size ()] makes an empty in-memory device. The default
    block size is 2048 bytes — the 2 KB blocks of the paper's Oracle
    setup.
    @raise Invalid_argument if [block_size < 64]. *)

val of_impl :
  block_size:int ->
  read:(int -> Bytes.t -> unit) ->
  write:(int -> Bytes.t -> unit) ->
  alloc:(unit -> int) ->
  allocated:(unit -> int) ->
  t
(** Wrap arbitrary backend operations as a device. The wrapper owns the
    I/O counters: a [read]/[write] that raises is {e not} counted, so
    the counters report successful physical transfers only.
    @raise Invalid_argument if [block_size < 64]. *)

val block_size : t -> int

val allocated : t -> int
(** Number of blocks allocated so far. Block ids are [0 ..
    allocated - 1]. *)

val alloc : t -> int
(** Allocate a fresh zero-filled block and return its id. Allocation is
    not counted as an I/O; the subsequent write-back is. *)

val read : t -> int -> Bytes.t -> unit
(** [read t id buf] copies block [id] into [buf] and counts one physical
    read. [buf] must be exactly [block_size t] long.
    @raise Invalid_argument on a bad id or buffer size.
    @raise Io_error on an injected transient read failure. *)

val write : t -> int -> Bytes.t -> unit
(** [write t id buf] stores [buf] as block [id] and counts one physical
    write. Same size discipline as {!read}.
    @raise Io_error on an injected transient write failure.
    @raise Crash when a programmed crash point is reached. *)

(** Physical I/O counters. *)
module Stats : sig
  type device = t

  type t = { reads : int; writes : int }

  val total : t -> int

  val get : device -> t
  val reset : device -> unit

  val pp : Format.formatter -> t -> unit
end
