exception Corrupt_page of int

type frame = {
  page_id : int;
  data : Bytes.t;
  mutable dirty : bool;
  mutable logged : bool;    (* current content already imaged in the journal *)
  mutable pins : int;
  mutable last_use : int;   (* recency stamp; victim selection under Scan *)
  mutable prev : frame;     (* intrusive LRU ring; self-linked = off-ring *)
  mutable next : frame;
}

type policy = Ring | Scan

type t = {
  dev : Block_device.t;
  capacity : int;
  policy : policy;
  checksums : bool;
  frames : (int, frame) Hashtbl.t; (* page id -> frame *)
  lru : frame; (* ring sentinel: [lru.next] is MRU, [lru.prev] is LRU *)
  mutable pinned : int; (* frames with pins > 0 *)
  mutable journal : Journal.t option;
  mutable staged_commits : int; (* commit requests awaiting a marker *)
  mutable commit_batches : int;
  mutable clock : int;
  mutable logical_reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

(* ---- intrusive ring ---- *)

let ring_sentinel () =
  let rec s =
    { page_id = -1; data = Bytes.empty; dirty = false; logged = false;
      pins = 0; last_use = 0; prev = s; next = s }
  in
  s

let on_ring f = f.next != f || f.prev != f

let ring_remove f =
  if on_ring f then begin
    f.prev.next <- f.next;
    f.next.prev <- f.prev;
    f.prev <- f;
    f.next <- f
  end

(* Insert at the MRU end (right after the sentinel). *)
let ring_push_mru t f =
  ring_remove f;
  f.next <- t.lru.next;
  f.prev <- t.lru;
  t.lru.next.prev <- f;
  t.lru.next <- f

let create ?(capacity = 200) ?(policy = Ring) ?(checksums = false) dev =
  if capacity < 1 then
    invalid_arg "Buffer_pool.create: capacity must be positive";
  { dev; capacity; policy; checksums; frames = Hashtbl.create (2 * capacity);
    lru = ring_sentinel (); pinned = 0; journal = None; staged_commits = 0;
    commit_batches = 0; clock = 0; logical_reads = 0; hits = 0; misses = 0;
    evictions = 0 }

let attach_journal t j = t.journal <- Some j
let journal t = t.journal

let device t = t.dev
let checksums t = t.checksums

(* Physical size of a frame buffer = the device's block size. *)
let dev_size t = Block_device.block_size t.dev

(* Logical page size seen by heap/btree geometry: checksummed pools
   reserve the last 4 bytes of every block for a CRC-32 trailer over the
   payload. Callers never touch the trailer because every offset they
   compute stays below this size. *)
let block_size t = if t.checksums then dev_size t - 4 else dev_size t

(* Stamp the CRC trailer so the image about to be persisted (to the
   device or into the journal) verifies on its next read. *)
let stamp t data =
  if t.checksums then
    let payload = dev_size t - 4 in
    Bytes.set_int32_le data payload (Checksum.bytes data ~pos:0 ~len:payload)

let all_zero data =
  let n = Bytes.length data in
  let rec go i = i >= n || (Bytes.get_uint8 data i = 0 && go (i + 1)) in
  go 0

(* A freshly allocated block is all zeroes and has never been stamped;
   by convention it verifies (cf. Postgres treating zero pages as
   valid). Anything else must match its trailer. *)
let verify t page_id data =
  if t.checksums then begin
    let payload = dev_size t - 4 in
    let stored = Bytes.get_int32_le data payload in
    let actual = Checksum.bytes data ~pos:0 ~len:payload in
    if stored <> actual && not (all_zero data) then
      raise (Corrupt_page page_id)
  end

let capacity t = t.capacity
let cached t = Hashtbl.length t.frames
let pinned_frames t = t.pinned

let touch t frame =
  t.clock <- t.clock + 1;
  frame.last_use <- t.clock

(* Journal the before- and after-image of a page about to be written
   back (steal policy: uncommitted pages may reach the device, and
   recovery undoes them from the before-image). *)
let log_write t frame =
  match t.journal with
  | None -> ()
  | Some j ->
      (* Stamp first so the after-image carries a valid trailer — the
         journal is the scrub repair source, and recovery writes these
         images straight to the device. *)
      stamp t frame.data;
      let before = Bytes.create (dev_size t) in
      Block_device.read t.dev frame.page_id before;
      Journal.append j
        (Journal.Write
           { page = frame.page_id; before; after = Bytes.copy frame.data });
      frame.logged <- true

let write_back t frame =
  if frame.dirty then begin
    stamp t frame.data;
    (* [logged] means the journal already holds this exact content: the
       recovery scan would reconstruct the same image, so appending it
       again buys nothing. *)
    if not frame.logged then begin
      log_write t frame;
      (* WAL rule: the undo image must be durable before the page can be
         stolen to the device, or a crash right after this write-back
         leaves uncommitted bytes with no way to roll them back. *)
      match t.journal with Some j -> Journal.force j | None -> ()
    end;
    Block_device.write t.dev frame.page_id frame.data;
    frame.dirty <- false
  end

let all_pinned () = failwith "Buffer_pool: all frames pinned, cannot evict"

(* Evict the least-recently-used unpinned frame to make room. Under Ring
   the victim is the tail of the ring, O(1); the pinned-frame count makes
   "every frame is pinned" a comparison, not a scan. Scan is the
   pre-overhaul O(capacity) fold, retained as the baseline that
   `rikit bench-storage` measures the ring against. *)
let evict_one t =
  let victim =
    match t.policy with
    | Ring ->
        let f = t.lru.prev in
        if f == t.lru then all_pinned () else f
    | Scan ->
        if t.pinned >= Hashtbl.length t.frames then all_pinned ();
        let best =
          Hashtbl.fold
            (fun _ f acc ->
              if f.pins > 0 then acc
              else
                match acc with
                | Some best when best.last_use <= f.last_use -> acc
                | _ -> Some f)
            t.frames None
        in
        (match best with Some f -> f | None -> all_pinned ())
  in
  write_back t victim;
  ring_remove victim;
  Hashtbl.remove t.frames victim.page_id;
  t.evictions <- t.evictions + 1;
  Obs.Counters.incr_pool_eviction ()

let install t page_id data dirty ~pins =
  if Hashtbl.length t.frames >= t.capacity then evict_one t;
  let rec frame =
    { page_id; data; dirty; logged = false; pins; last_use = 0;
      prev = frame; next = frame }
  in
  touch t frame;
  if pins > 0 then t.pinned <- t.pinned + 1 else ring_push_mru t frame;
  Hashtbl.replace t.frames page_id frame;
  frame

let alloc t =
  let id = Block_device.alloc t.dev in
  let frame = install t id (Bytes.make (dev_size t) '\000') true ~pins:0 in
  ignore frame;
  id

let fault_in t page_id =
  let data = Bytes.create (dev_size t) in
  Block_device.read t.dev page_id data;
  (* Verify before installing: a corrupt block must never enter the
     cache as if it were valid data. *)
  verify t page_id data;
  let frame = install t page_id data false ~pins:1 in
  frame.data

let pin t page_id =
  t.logical_reads <- t.logical_reads + 1;
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
      t.hits <- t.hits + 1;
      Obs.Counters.incr_pool_hit ();
      if frame.pins = 0 then begin
        (* Pinned frames live off the ring: they can never be reached by
           the eviction path, whatever the replacement pressure. *)
        ring_remove frame;
        t.pinned <- t.pinned + 1
      end;
      frame.pins <- frame.pins + 1;
      touch t frame;
      frame.data
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counters.incr_pool_miss ();
      (* The span (and its info string) must cost nothing when tracing
         is off: faults dominate cold scans, so even one allocation per
         miss shows up in bench-storage. *)
      if Obs.Trace.enabled () then
        Obs.Trace.with_span "pool.fault"
          ~info:(string_of_int page_id)
          (fun () -> fault_in t page_id)
      else fault_in t page_id

let unpin t page_id ~dirty =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame when frame.pins > 0 ->
      frame.pins <- frame.pins - 1;
      if dirty then begin
        frame.dirty <- true;
        (* Content (presumably) changed: any journaled image is stale. *)
        frame.logged <- false
      end;
      if frame.pins = 0 then begin
        t.pinned <- t.pinned - 1;
        ring_push_mru t frame;
        touch t frame
      end
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Buffer_pool.unpin: page %d is not pinned (double unpin)" page_id)
  | None ->
      invalid_arg
        (Printf.sprintf
           "Buffer_pool.unpin: page %d is not resident (evicted, or never \
            pinned)" page_id)

let with_page t page_id ~dirty f =
  let data = pin t page_id in
  match f data with
  | v ->
      unpin t page_id ~dirty;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      (* The pin is what we must release; if unpin itself fails (say the
         frame vanished through a concurrent [clear]), the original
         exception is still the one the caller needs to see. *)
      (try unpin t page_id ~dirty with _ -> ());
      Printexc.raise_with_backtrace e bt

let flush t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let reset_frames t =
  Hashtbl.reset t.frames;
  t.lru.prev <- t.lru;
  t.lru.next <- t.lru;
  t.pinned <- 0

let clear t =
  Hashtbl.iter
    (fun _ f ->
      if f.pins > 0 then
        failwith
          (Printf.sprintf "Buffer_pool.clear: page %d is still pinned"
             f.page_id);
      write_back t f)
    t.frames;
  reset_frames t

(* ---- commit & group commit ----

   A commit request stages nothing but the intent: the dirty-page images
   a commit marker must cover are captured once, at {!commit_force}, for
   the whole batch. Requests in a batch are therefore durable only
   together — which is sound exactly because nobody acknowledges them
   until the force returns. The [logged] flag additionally keeps a page
   whose content is already imaged in the journal (it stayed dirty under
   the lazy write-back policy) from being re-logged batch after batch. *)

let log_dirty t =
  Hashtbl.iter
    (fun _ f -> if f.dirty && not f.logged then log_write t f)
    t.frames

let commit_request t = t.staged_commits <- t.staged_commits + 1

let pending_commits t = t.staged_commits

let commit_force t =
  let n = t.staged_commits in
  if n > 0 then begin
    (match t.journal with
    | None -> flush t
    | Some j ->
        log_dirty t;
        Journal.append j Journal.Commit;
        Journal.force j);
    t.staged_commits <- 0;
    t.commit_batches <- t.commit_batches + 1
  end;
  n

let commit_batches t = t.commit_batches

let commit t =
  commit_request t;
  ignore (commit_force t)

let crash ?(force = false) t =
  if not force then
    Hashtbl.iter
      (fun _ f ->
        if f.pins > 0 then
          failwith
            (Printf.sprintf "Buffer_pool.crash: page %d is still pinned"
               f.page_id))
      t.frames;
  t.staged_commits <- 0;
  (* Log bytes appended but never forced die with the machine. *)
  (match t.journal with Some j -> Journal.drop_unforced j | None -> ());
  reset_frames t

module Stats = struct
  type pool = t

  type t = {
    logical_reads : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  let get (p : pool) =
    { logical_reads = p.logical_reads; hits = p.hits; misses = p.misses;
      evictions = p.evictions }

  let reset (p : pool) =
    p.logical_reads <- 0;
    p.hits <- 0;
    p.misses <- 0;
    p.evictions <- 0

  let pp ppf s =
    Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d"
      s.logical_reads s.hits s.misses s.evictions
end
