(** Offline integrity scrub: walk every allocated block of a
    checksummed device, verify the CRC-32 trailers, and optionally
    repair corrupt blocks from valid journal images.

    This is the engine behind [rikit scrub]. It works on the raw device
    (not through a buffer pool), so it sees exactly what is persisted —
    including damage a cold cache would only discover at the next
    fault-in. *)

type report = {
  blocks : int;  (** allocated blocks walked *)
  clean : int;  (** trailer matched the payload *)
  zero : int;  (** all-zero (never written) — valid by convention *)
  corrupt : int list;  (** block ids failing verification *)
  repaired : int list;  (** corrupt blocks restored from the journal *)
  unrepairable : int list;  (** corrupt, and no valid journal image *)
  journal_records : int;  (** parseable journal records, if one was given *)
  journal_torn : bool;  (** the durable log ends in an invalid record *)
}

val run :
  ?repair:bool -> ?journal:Journal.t -> checksums:bool ->
  Block_device.t -> report
(** Walk the device. With [~repair:true] and a journal, each corrupt
    block whose {!Journal.recovery_images} entry verifies is written
    back in place; repairs are counted I/O on the device.
    @raise Invalid_argument if [checksums] is false — scrubbing an
    unchecksummed device cannot distinguish corruption from data. *)

val render : Format.formatter -> report -> unit
