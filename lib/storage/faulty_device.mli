(** Deterministic fault injection over any {!Block_device}.

    Wraps a base device and misbehaves on command: transient read/write
    {!Block_device.Io_error}s, torn writes (only a prefix of the block
    persists), silent bit-flips, and a programmable crash point that
    raises {!Block_device.Crash} after the N-th physical write. Faults
    are driven by a seeded splitmix64 PRNG ("1 in N" rates) and by an
    explicit per-operation-index schedule; both are deterministic, so a
    failing run replays exactly from its seed. *)

type t

type fault =
  | Fail  (** the operation raises a transient {!Block_device.Io_error} *)
  | Torn of int
      (** only the first [k] bytes of the block persist (writes only) *)
  | Flip of int  (** bit [i] of the block is silently inverted *)

val create :
  ?seed:int ->
  ?read_fail_1_in:int ->
  ?write_fail_1_in:int ->
  ?torn_1_in:int ->
  ?flip_1_in:int ->
  Block_device.t ->
  t
(** [create base] wraps [base]. The [_1_in] rates are probabilistic
    fault frequencies (0, the default, disables that fault class):
    e.g. [~write_fail_1_in:50] fails roughly one write in fifty. *)

val device : t -> Block_device.t
(** The wrapped device to hand to the buffer pool. All physical I/O
    through it passes the fault machinery; its {!Block_device.Stats}
    counters count successful operations only. *)

val base : t -> Block_device.t
(** The underlying faithful device (e.g. to inspect state after a
    simulated crash). *)

(** {2 Explicit schedule} *)

val schedule_read_fault : t -> at:int -> fault -> unit
(** Inject [fault] on the read with index [at] (0-based, counted over
    the wrapper's lifetime). [Torn _] is invalid for reads. *)

val schedule_write_fault : t -> at:int -> fault -> unit

val set_crash_point : ?torn:bool -> t -> after_writes:int -> unit
(** Arm the crash point: the write with index [after_writes] raises
    {!Block_device.Crash} instead of persisting (so exactly
    [after_writes] writes survive). With [~torn:true] a random prefix of
    the fatal write persists first — a torn in-flight write. After the
    crash every operation raises {!Block_device.Io_error} until
    {!disarm}, modelling a machine that is down. *)

val clear_crash_point : t -> unit

val disarm : t -> unit
(** "Reboot": clear the crashed flag so the device serves I/O again.
    Does not clear the crash point; call {!clear_crash_point} too when
    replaying past it. *)

(** {2 Introspection} *)

val reads_done : t -> int
(** Physical reads attempted through the wrapper (including faulted
    ones). *)

val writes_done : t -> int
(** Physical writes attempted through the wrapper, excluding the fatal
    crash-point write. *)

val flips : t -> (int * int) list
(** All injected bit-flips so far as [(block, bit)], oldest first. *)
