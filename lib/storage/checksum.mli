(** CRC-32 integrity checksums (IEEE 802.3 polynomial), pure OCaml.

    Used as the corruption detector of the storage stack: every journal
    record carries a CRC of its serialized body, and — on checksummed
    buffer pools — every data page carries a CRC trailer over its
    payload bytes. CRC-32 detects all single-bit flips and all bursts up
    to 32 bits, which covers the bit-rot and torn-write faults
    {!Faulty_device} injects. *)

val bytes : ?crc:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** CRC of [len] bytes starting at [pos], continuing from [crc]
    (default [0l], the empty-message checksum).
    @raise Invalid_argument if the range lies outside the buffer. *)

val all : Bytes.t -> int32
(** CRC of the whole buffer. *)

val string : string -> int32
