(** LRU buffer pool over a {!Block_device}.

    Models the database block cache of the paper's setup ("the database
    block cache was set to the default value of 200 database blocks with
    a block size of 2 KB"). Pages are pinned while in use; unpinned pages
    are evicted in least-recently-used order, writing dirty pages back to
    the device. All structures above the pool (heap tables, B+-trees)
    perform their page accesses through it, so the device counters report
    exactly the physical I/O the paper measures.

    Replacement is O(1): unpinned frames sit on an intrusive
    doubly-linked ring in recency order (pinning unlinks a frame, so the
    eviction path can never reach it), and a pinned-frame count detects
    pool exhaustion without a scan. The pre-overhaul O(capacity)
    fold-based victim search is retained as the {!policy} [Scan] solely
    as the baseline [rikit bench-storage] measures the ring against. *)

type t

exception Corrupt_page of int
(** Raised when a block read from the device fails its checksum trailer
    (checksummed pools only): the named page holds garbage — bit rot or
    a torn write — and was {e not} installed in the cache. *)

type policy =
  | Ring  (** intrusive LRU ring, O(1) eviction (the default) *)
  | Scan  (** fold over every frame per eviction; benchmark baseline *)

val create :
  ?capacity:int -> ?policy:policy -> ?checksums:bool -> Block_device.t -> t
(** [create ~capacity dev] caches up to [capacity] blocks (default 200).
    With [~checksums:true] the last 4 bytes of every block hold a CRC-32
    trailer over the payload: {!block_size} shrinks by 4, write-backs
    stamp the trailer, and faulting a page in verifies it (raising
    {!Corrupt_page} on mismatch; an all-zero block — freshly allocated,
    never written — passes).
    @raise Invalid_argument if [capacity < 1]. *)

val device : t -> Block_device.t

val block_size : t -> int
(** Usable page size for the structures above the pool: the device block
    size, minus the 4-byte trailer on checksummed pools. *)

val checksums : t -> bool
val capacity : t -> int

val alloc : t -> int
(** Allocate a fresh page on the device and install it, dirty and
    zero-filled, in the cache. Returns the page id. *)

val pin : t -> int -> Bytes.t
(** [pin t id] returns the in-cache bytes of page [id], faulting it in
    from the device if necessary. The page cannot be evicted until every
    {!pin} is matched by an {!unpin}. Mutating the returned bytes is
    allowed; pass [~dirty:true] to the matching unpin so the mutation
    survives eviction. On checksummed pools the buffer is the full
    device block; only the first {!block_size} bytes are the caller's.
    @raise Failure if every frame is pinned (pool exhausted).
    @raise Corrupt_page if the faulted-in block fails verification.
    @raise Block_device.Io_error on an injected transient read fault. *)

val unpin : t -> int -> dirty:bool -> unit
(** Release one pin of page [id]. [dirty:true] marks the page for
    write-back on eviction or flush.
    @raise Invalid_argument distinguishing the two misuses: the page is
    resident but its pin count is already zero (double unpin), or it is
    not resident at all (evicted, or never pinned). *)

val with_page : t -> int -> dirty:bool -> (Bytes.t -> 'a) -> 'a
(** [with_page t id ~dirty f] pins, applies [f], and unpins (also on
    exception). If [f] raises and the unpin then fails too, the
    exception of [f] — not the unpin's — is the one re-raised. *)

val flush : t -> unit
(** Write all dirty pages back to the device; pages stay cached. *)

val clear : t -> unit
(** Flush, then drop every frame: the cache becomes cold.
    @raise Failure if any page is still pinned. *)

(** {2 Durability (write-ahead journal)} *)

val attach_journal : t -> Journal.t -> unit
(** From now on every write-back logs the page's before- and after-image
    to the journal (steal policy with undo information). *)

val journal : t -> Journal.t option

val commit : t -> unit
(** Make the current logical state durable: force-log every dirty page
    followed by a commit marker, then force the journal. Data pages stay
    cached and dirty (lazy write-back). Without an attached journal this
    degrades to {!flush}. Equivalent to {!commit_request} directly
    followed by {!commit_force} — a group of one. *)

(** {2 Group commit}

    Concurrent sessions amortize the commit cost: {!commit_request}
    stages only the intent, and one {!commit_force} captures the
    dirty-page images of the whole batch, emits a single commit marker
    and performs a single journal force covering every staged request. A
    crash before the force loses the entire batch — which is sound
    exactly because no requester is acknowledged until the force (the
    rikitd dispatcher answers the batched COMMITs only after
    {!commit_force} returns). Pages whose content is already imaged in
    the journal are not re-logged, so a hot page updated by many
    transactions in a window costs one image per batch, not one per
    transaction. *)

val commit_request : t -> unit
(** Stage a commit for the next {!commit_force}. Nothing is logged and
    nothing is durable yet. *)

val pending_commits : t -> int
(** Commit requests staged since the last {!commit_force}. *)

val commit_force : t -> int
(** Emit one commit marker and one journal force covering every staged
    request; returns the batch size (0 = nothing staged, nothing
    logged). *)

val commit_batches : t -> int
(** Number of forced batches so far (each wrote exactly one marker). *)

val crash : ?force:bool -> t -> unit
(** Simulate a crash: drop every frame {e without} writing anything
    back. Dirty, uncommitted state is lost — including any commit
    requests staged but not yet forced and any journal bytes appended
    but never forced; {!Journal.recover} restores the device to the last
    commit marker. [~force:true] skips the pinned-page check — a real
    crash does not wait for pins, and the crash-schedule harness kills
    the pool mid-operation.
    @raise Failure if any page is still pinned (unless [force]). *)

val cached : t -> int
(** Number of pages currently resident. *)

val pinned_frames : t -> int
(** Number of resident frames with at least one pin — the frames the
    eviction path must (and does, by construction) skip. *)

(** Cache behaviour counters (logical accesses), distinct from the
    device's physical counters. *)
module Stats : sig
  type pool = t

  type t = {
    logical_reads : int;  (** number of [pin] calls. *)
    hits : int;           (** pins satisfied from the cache. *)
    misses : int;         (** pins requiring a device read. *)
    evictions : int;
  }

  val get : pool -> t
  val reset : pool -> unit
  val pp : Format.formatter -> t -> unit
end
