(* Deterministic fault injection over any Block_device.

   Faults come from two sources that compose:
   - a seeded splitmix64 PRNG drawing "1 in N" probabilistic faults, and
   - an explicit schedule keyed by physical operation index.
   Both are fully deterministic for a given seed + schedule, so a failing
   run replays exactly. *)

(* splitmix64, inlined: the storage library must not depend on
   lib/workload, which hosts the general-purpose PRNG. *)
module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform in [0, n), n > 0; 62 bits so the value always fits a
     non-negative native int *)
  let int_in t n =
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    v mod n

  let one_in t n = n > 0 && int_in t n = 0
end

type fault =
  | Fail  (** the operation raises a transient {!Block_device.Io_error} *)
  | Torn of int
      (** only the first [k] bytes of the block persist (writes only) *)
  | Flip of int  (** bit [i] of the block is silently inverted *)

type t = {
  base : Block_device.t;
  prng : Prng.t;
  read_fail_1_in : int;
  write_fail_1_in : int;
  torn_1_in : int;
  flip_1_in : int;
  read_schedule : (int, fault) Hashtbl.t;
  write_schedule : (int, fault) Hashtbl.t;
  mutable crash_after : int option;  (** raise Crash on this write index *)
  mutable crash_torn : bool;  (** persist a torn prefix of the fatal write *)
  mutable crashed : bool;
  mutable reads_done : int;
  mutable writes_done : int;
  mutable flips : (int * int) list;
  mutable wrapped : Block_device.t option;
}

let create ?(seed = 0) ?(read_fail_1_in = 0) ?(write_fail_1_in = 0)
    ?(torn_1_in = 0) ?(flip_1_in = 0) base =
  { base; prng = Prng.create seed; read_fail_1_in; write_fail_1_in;
    torn_1_in; flip_1_in; read_schedule = Hashtbl.create 7;
    write_schedule = Hashtbl.create 7; crash_after = None;
    crash_torn = false; crashed = false; reads_done = 0; writes_done = 0;
    flips = []; wrapped = None }

let schedule_read_fault t ~at fault = Hashtbl.replace t.read_schedule at fault
let schedule_write_fault t ~at fault = Hashtbl.replace t.write_schedule at fault

let set_crash_point ?(torn = false) t ~after_writes =
  t.crash_after <- Some after_writes;
  t.crash_torn <- torn

let clear_crash_point t = t.crash_after <- None
let disarm t = t.crashed <- false
let reads_done t = t.reads_done
let writes_done t = t.writes_done
let flips t = List.rev t.flips
let base t = t.base

let bs t = Block_device.block_size t.base

let flip_bit buf bit =
  let byte = bit / 8 and mask = 1 lsl (bit mod 8) in
  if byte < Bytes.length buf then
    Bytes.set_uint8 buf byte (Bytes.get_uint8 buf byte lxor mask)

let apply_write_fault t id buf = function
  | Fail -> raise (Block_device.Io_error { op = "write"; block = id })
  | Torn k ->
      (* Persist only the first k bytes: read the current block content,
         overlay the prefix, write that merged image through. *)
      let k = max 0 (min k (bs t)) in
      let merged = Bytes.create (bs t) in
      Block_device.read t.base id merged;
      Bytes.blit buf 0 merged 0 k;
      Block_device.write t.base id merged
  | Flip bit ->
      let dirty = Bytes.copy buf in
      flip_bit dirty bit;
      t.flips <- (id, bit) :: t.flips;
      Block_device.write t.base id dirty

let read t id buf =
  if t.crashed then raise (Block_device.Io_error { op = "read"; block = id });
  let idx = t.reads_done in
  t.reads_done <- idx + 1;
  let scheduled = Hashtbl.find_opt t.read_schedule idx in
  (match scheduled with
   | Some Fail -> raise (Block_device.Io_error { op = "read"; block = id })
   | Some (Torn _) ->
       invalid_arg "Faulty_device: torn faults apply to writes only"
   | Some (Flip bit) ->
       Block_device.read t.base id buf;
       flip_bit buf bit
   | None ->
       if Prng.one_in t.prng t.read_fail_1_in then
         raise (Block_device.Io_error { op = "read"; block = id });
       Block_device.read t.base id buf)

let write t id buf =
  if t.crashed then raise (Block_device.Io_error { op = "write"; block = id });
  let idx = t.writes_done in
  (match t.crash_after with
   | Some n when idx >= n ->
       t.crashed <- true;
       if t.crash_torn then begin
         let k = Prng.int_in t.prng (bs t) in
         apply_write_fault t id buf (Torn k)
       end;
       raise (Block_device.Crash idx)
   | _ -> ());
  t.writes_done <- idx + 1;
  match Hashtbl.find_opt t.write_schedule idx with
  | Some fault -> apply_write_fault t id buf fault
  | None ->
      if Prng.one_in t.prng t.write_fail_1_in then
        raise (Block_device.Io_error { op = "write"; block = id })
      else if Prng.one_in t.prng t.torn_1_in then
        apply_write_fault t id buf (Torn (Prng.int_in t.prng (bs t)))
      else if Prng.one_in t.prng t.flip_1_in then
        apply_write_fault t id buf (Flip (Prng.int_in t.prng (8 * bs t)))
      else Block_device.write t.base id buf

let device t =
  match t.wrapped with
  | Some d -> d
  | None ->
      let d =
        Block_device.of_impl ~block_size:(bs t) ~read:(read t)
          ~write:(write t)
          ~alloc:(fun () -> Block_device.alloc t.base)
          ~allocated:(fun () -> Block_device.allocated t.base)
      in
      t.wrapped <- Some d;
      d
