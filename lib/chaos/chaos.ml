(* Network chaos sweep: drive a primary + hot-standby pair through a
   deterministic workload once per injection point, with a
   [Harness.Netchaos] proxy mangling exactly one scheduled request
   frame per trial, and check the replication contract against an
   in-memory oracle.

   The contract under test (ISSUE 8):
     - every ACKNOWLEDGED write (COMMIT returned Ok) is readable after
       failover, on every surviving node;
     - every UNacknowledged transaction is atomically present or
       absent — never half a transaction;
     - a transaction whose COMMIT was never sent (an insert failed
       first) is absent.

   Topology per trial: a fresh durable primary, a replica tailing it
   directly (replication frames do NOT traverse the proxy — the chaos
   models the CLIENT's network), and a failover client whose endpoint
   list is [proxy -> primary; replica]. The replica subscription is
   settled with one direct committed write before the workload, since
   the semi-synchronous ack guarantee only covers commits issued after
   a subscriber is attached.

   Every transaction writes two rows. Two, not one, because atomicity
   of an ambiguous commit is only observable with at least two rows:
   the oracle can then insist both-or-neither survived. *)

module D = Server.Dispatcher
module S = Server.Session
module C = Server.Client
module F = Server.Failover
module N = Harness.Netchaos

type spec = {
  txns : int;  (** transactions per trial; 3 request frames each *)
  deadline_ms : float;  (** failover client per-request deadline *)
  faults : N.fault list;  (** cycled over injection points *)
}

let default_faults =
  [
    N.Delay 0.05;  (* benign latency: nothing should even notice *)
    N.Drop;
    N.Duplicate;
    N.Truncate 5;
    N.Partition 0.35;
    N.Kill;
    N.Delay 0.45;  (* past the deadline: the classic ambiguous commit *)
  ]

let default_spec = { txns = 4; deadline_ms = 250.; faults = default_faults }
let tiny_spec = { txns = 2; deadline_ms = 150.; faults = default_faults }

type outcome =
  | Acked  (** COMMIT answered Ok: rows must survive everywhere *)
  | Ambiguous  (** COMMIT dispatched, answer lost: all-or-nothing *)
  | Aborted  (** an insert failed, COMMIT never sent: rows absent *)

type txn = { base : int; outcome : outcome }

type failure = { point : int; fault : string; reason : string }

type report = {
  trials : int;
  acked : int;  (** acked transactions verified present, summed *)
  ambiguous : int;
  aborted : int;
  failures : failure list;
}

let ivl lo up = Interval.Ivl.make lo up

(* Row identity is the interval's lower bound: every row of the sweep
   gets a distinct one, so presence is a membership test on intersect
   results (robust against the Duplicate fault inserting a row twice —
   presence, not cardinality). *)
let row_a t = t.base
let row_b t = t.base + 4

type node = { disp : D.t; thread : Thread.t }

let start_node ?replica_of () =
  let cfg =
    { D.default_config with port = 0; max_sessions = 32; replica_of }
  in
  let sh = S.shared ~durable:true () in
  let disp = D.create ~config:cfg sh in
  let thread = Thread.create (fun () -> D.serve disp) () in
  { disp; thread }

let stop_node n =
  D.stop n.disp;
  Thread.join n.thread

let port n = D.port n.disp

let alive ~port =
  match C.connect ~deadline_ms:200. ~port () with
  | c ->
      C.close c;
      true
  | exception _ -> false

(* Poll Repl_status until [applied >= lsn]; Error on timeout. *)
let wait_applied ?(timeout = 5.) ~port lsn =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let r =
      match C.connect ~deadline_ms:500. ~port () with
      | c ->
          Fun.protect
            ~finally:(fun () -> C.close c)
            (fun () ->
              match C.repl_status c with
              | Ok (_, _, applied) -> Some applied
              | Error _ -> None)
      | exception _ -> None
    in
    match r with
    | Some applied when applied >= lsn -> Ok applied
    | _ ->
        if Unix.gettimeofday () > deadline then
          Error
            (Printf.sprintf "node on port %d never applied through lsn %d"
               port lsn)
        else begin
          Thread.delay 0.01;
          go ()
        end
  in
  go ()

let present rows lo = List.exists (fun (iv, _) -> Interval.Ivl.lower iv = lo) rows

let read_rows ~deadline_ms ~port =
  match C.connect ~deadline_ms ~port () with
  | c ->
      Fun.protect
        ~finally:(fun () -> C.close c)
        (fun () ->
          match C.intersect c (ivl 0 1_000_000) with
          | Ok rows -> Ok rows
          | Error e -> Error (C.error_to_string e))
  | exception e -> Error (Printexc.to_string e)

(* Verify the oracle against one surviving node's row set. *)
let verify_rows ~where txns rows =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  List.iter
    (fun t ->
      let a = present rows (row_a t) and b = present rows (row_b t) in
      match t.outcome with
      | Acked ->
          if not (a && b) then
            note "acked txn at base %d lost on %s (a=%b b=%b)" t.base where a
              b
      | Aborted ->
          if a || b then
            note "aborted txn at base %d leaked onto %s (a=%b b=%b)" t.base
              where a b
      | Ambiguous ->
          if a <> b then
            note "ambiguous txn at base %d is HALF present on %s (a=%b b=%b)"
              t.base where a b)
    txns;
  !problems

(* One trial: fresh primary + replica + proxy, fault at frame [point]. *)
let trial spec ~point ~fault =
  let primary = start_node () in
  let primary_alive = ref true in
  let stop_primary () =
    if !primary_alive then begin
      primary_alive := false;
      stop_node primary
    end
  in
  Fun.protect ~finally:stop_primary @@ fun () ->
  let replica = start_node ~replica_of:("127.0.0.1", port primary) () in
  Fun.protect ~finally:(fun () -> stop_node replica) @@ fun () ->
  (* Settle the subscription: semi-sync only covers commits made after
     the standby attached, so prove attachment with one direct write. *)
  let settle =
    match C.connect ~deadline_ms:2000. ~port:(port primary) () with
    | c ->
        Fun.protect
          ~finally:(fun () -> C.close c)
          (fun () ->
            match (C.insert c (ivl 1 2), C.commit c) with
            | Ok _, Ok lsn -> wait_applied ~port:(port replica) lsn
            | Error e, _ | _, Error e ->
                Error ("settle write failed: " ^ C.error_to_string e))
    | exception e -> Error ("settle connect failed: " ^ Printexc.to_string e)
  in
  match settle with
  | Error reason -> Error reason
  | Ok _ -> (
      let proxy =
        N.create
          ~target:("127.0.0.1", port primary)
          ~schedule:[ (point, fault) ]
          ~on_kill:stop_primary ()
      in
      let proxy_thread = Thread.create (fun () -> N.run proxy) () in
      let stop_proxy () =
        N.stop proxy;
        Thread.join proxy_thread
      in
      Fun.protect ~finally:stop_proxy @@ fun () ->
      let f =
        F.create ~deadline_ms:spec.deadline_ms
          ~endpoints:
            [ ("127.0.0.1", N.port proxy); ("127.0.0.1", port replica) ]
          ()
      in
      Fun.protect ~finally:(fun () -> F.close f) @@ fun () ->
      (* The workload: [txns] two-row transactions, unique intervals. *)
      let txns = ref [] in
      let dead = ref false in
      let j = ref 0 in
      while (not !dead) && !j < spec.txns do
        let base = 1000 + (!j * 10) in
        let outcome =
          match F.insert f (ivl base (base + 1)) with
          | Error _ -> Aborted
          | Ok _ -> (
              match F.insert f (ivl (base + 4) (base + 5)) with
              | Error _ -> Aborted
              | Ok _ -> (
                  match F.commit f with
                  | Ok _ -> Acked
                  | Error (C.Timeout _ | C.Io _) -> Ambiguous
                  | Error _ -> Ambiguous))
        in
        txns := { base; outcome } :: !txns;
        (* A Kill trial leaves every later mutation doomed to time out;
           once an op failed AND the primary is gone, stop driving. *)
        if outcome <> Acked && not (alive ~port:(port primary)) then
          dead := true;
        incr j
      done;
      let txns = List.rev !txns in
      let acked_lsn = F.last_lsn f in
      (* Which nodes survive, and do they agree with the oracle? *)
      let problems = ref [] in
      (match wait_applied ~port:(port replica) acked_lsn with
      | Error m -> problems := m :: !problems
      | Ok _ -> (
          match read_rows ~deadline_ms:2000. ~port:(port replica) with
          | Error m -> problems := ("replica read: " ^ m) :: !problems
          | Ok rows ->
              problems := verify_rows ~where:"replica" txns rows @ !problems));
      if !primary_alive && alive ~port:(port primary) then begin
        match read_rows ~deadline_ms:2000. ~port:(port primary) with
        | Error m -> problems := ("primary read: " ^ m) :: !problems
        | Ok rows ->
            problems := verify_rows ~where:"primary" txns rows @ !problems
      end;
      match !problems with
      | [] ->
          let count o = List.length (List.filter (fun t -> t.outcome = o) txns)
          in
          Ok (count Acked, count Ambiguous, count Aborted)
      | ps -> Error (String.concat "; " ps))

let points spec = 3 * spec.txns

let fault_at spec i = List.nth spec.faults (i mod List.length spec.faults)

let run ?(progress = fun _ _ _ -> ()) spec =
  let n = points spec in
  let failures = ref [] in
  let acked = ref 0 and ambiguous = ref 0 and aborted = ref 0 in
  for point = 0 to n - 1 do
    let fault = fault_at spec point in
    progress point n (N.fault_name fault);
    match trial spec ~point ~fault with
    | Ok (a, am, ab) ->
        acked := !acked + a;
        ambiguous := !ambiguous + am;
        aborted := !aborted + ab
    | Error reason ->
        failures :=
          { point; fault = N.fault_name fault; reason } :: !failures
  done;
  {
    trials = n;
    acked = !acked;
    ambiguous = !ambiguous;
    aborted = !aborted;
    failures = List.rev !failures;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "chaos sweep: %d trials, %d acked / %d ambiguous / %d aborted txns, %d \
     failures"
    r.trials r.acked r.ambiguous r.aborted
    (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf ppf "@.  point %d (%s): %s" f.point f.fault f.reason)
    r.failures
