(** Network chaos sweep over a primary/replica pair.

    Each trial boots a fresh durable primary, a replica tailing it, and
    a {!Harness.Netchaos} proxy between the client and the primary,
    then drives a deterministic workload of two-row transactions
    through a {!Server.Failover} client with exactly one fault
    scheduled at one request-frame index. After the workload, surviving
    nodes are read back and compared with the in-memory oracle:

    - acknowledged transactions must be present on every survivor;
    - transactions whose COMMIT was never dispatched must be absent;
    - transactions with a lost COMMIT answer must be atomically
      present-or-absent (both rows or neither).

    The sweep runs one trial per injection point (three request frames
    per transaction), cycling through the fault list. *)

type spec = {
  txns : int;  (** transactions per trial; 3 request frames each *)
  deadline_ms : float;  (** failover client per-request deadline *)
  faults : Harness.Netchaos.fault list;  (** cycled over points *)
}

val default_faults : Harness.Netchaos.fault list
(** Benign delay, drop, duplicate, truncate, partition, primary kill,
    and a past-deadline delay (the classic ambiguous commit). *)

val default_spec : spec
(** 4 transactions -> 12 injection points, 250 ms deadline. *)

val tiny_spec : spec
(** CI smoke: 2 transactions -> 6 points, 150 ms deadline. *)

type failure = { point : int; fault : string; reason : string }

type report = {
  trials : int;
  acked : int;  (** acked transactions verified, summed over trials *)
  ambiguous : int;
  aborted : int;
  failures : failure list;  (** empty = the contract held everywhere *)
}

val points : spec -> int
(** Injection points (= trials) the sweep will run. *)

val run : ?progress:(int -> int -> string -> unit) -> spec -> report
(** The sweep. [progress point total fault] is called before each
    trial. *)

val pp_report : Format.formatter -> report -> unit
