(* Failover-aware client: one logical connection over a list of
   endpoints (primary first, then standbys).

   Every underlying call runs with a per-request deadline, so a hung or
   partitioned server surfaces as a typed [Timeout] instead of a stuck
   client. On [Timeout]/[Io] the endpoint is dropped and the next one
   dialled; a mutation refused with [Read_only] means we are talking to
   a replica — rotate towards the (new) primary and retry, since the
   refusal proves nothing was applied.

   Reads are retried freely across endpoints. A mutation that dies
   mid-flight ([Timeout]/[Io] AFTER the request may have reached the
   server) is NOT retried: the outcome is ambiguous — the caller gets
   the typed error and owns the decision (the chaos harness verifies
   exactly this present-or-absent contract).

   Read-your-writes across failover: every successful COMMIT carries
   the durable LSN it is covered by; the client remembers the highest
   and, before adopting a new endpoint, polls [Repl_status] until that
   endpoint has applied past it. Semi-synchronous primaries make this
   near-instant — the commit was only acked once every subscriber had
   applied it. *)

type endpoint = { host : string; port : int }

type t = {
  endpoints : endpoint array;
  deadline_ms : float;
  mutable cur : int;
  mutable conn : Client.t option;
  mutable last_lsn : int;
  mutable failovers : int;
}

let create ?(deadline_ms = 1000.) ~endpoints () =
  if endpoints = [] then invalid_arg "Failover.create: no endpoints";
  {
    endpoints =
      Array.of_list (List.map (fun (host, port) -> { host; port }) endpoints);
    deadline_ms;
    cur = 0;
    conn = None;
    last_lsn = 0;
    failovers = 0;
  }

let last_lsn t = t.last_lsn
let note_lsn t lsn = if lsn > t.last_lsn then t.last_lsn <- lsn
let failovers t = t.failovers

let endpoint t =
  match t.conn with
  | None -> None
  | Some _ ->
      let e = t.endpoints.(t.cur) in
      Some (e.host, e.port)

let drop t =
  match t.conn with
  | None -> ()
  | Some c ->
      (try Client.close c with _ -> ());
      t.conn <- None

let rotate t =
  drop t;
  t.cur <- (t.cur + 1) mod Array.length t.endpoints;
  t.failovers <- t.failovers + 1

let close t = drop t

(* Has this endpoint applied everything we were ever acked? Bounded
   polling within roughly one deadline; [true] immediately when we have
   no commits to wait for. *)
let caught_up t c =
  if t.last_lsn = 0 then true
  else begin
    let polls = 20 in
    let pause = t.deadline_ms /. 1000. /. float_of_int polls in
    let rec go n =
      match Client.repl_status c with
      | Ok (_, _, applied) when applied >= t.last_lsn -> true
      | Ok _ when n > 0 ->
          Unix.sleepf pause;
          go (n - 1)
      | Ok _ -> false
      | Error _ -> false
    in
    go polls
  end

(* Dial endpoints round-robin until one accepts AND satisfies
   read-your-writes; short doubling pauses between full sweeps. *)
let ensure t =
  match t.conn with
  | Some c -> Ok c
  | None ->
      let n = Array.length t.endpoints in
      let attempts = (4 * n) + 4 in
      let rec go k =
        if k >= attempts then
          Result.Error
            (Client.Io
               (Printf.sprintf "no endpoint reachable after %d attempts"
                  attempts))
        else begin
          if k > 0 && k mod n = 0 then
            Unix.sleepf (Float.min 0.4 (0.05 *. float_of_int (k / n)));
          let e = t.endpoints.(t.cur) in
          match
            Client.connect ~host:e.host ~deadline_ms:t.deadline_ms
              ~port:e.port ()
          with
          | c ->
              if caught_up t c then begin
                t.conn <- Some c;
                Ok c
              end
              else begin
                (try Client.close c with _ -> ());
                rotate t;
                go (k + 1)
              end
          | exception (Client.Io_error _ | Client.Timed_out _) ->
              rotate t;
              go (k + 1)
        end
      in
      go 0

(* The multiplexed scatter path drives legs' sockets directly: it needs
   the dialled connection out, and a way to report a transport fault it
   observed itself so the next [ensure] re-dials. *)
let connection t = ensure t

let fault t =
  drop t;
  rotate t

let rec with_conn t ~mutation ~attempts f =
  match ensure t with
  | Result.Error e -> Result.Error e
  | Ok c -> (
      match f c with
      | Ok v -> Ok v
      | Result.Error e -> (
          match e with
          | Client.Timeout _ | Client.Io _ ->
              (* The transport died under the request. For a read, move
                 on and re-ask; for a mutation the outcome is ambiguous
                 and must go back to the caller. *)
              drop t;
              rotate t;
              if mutation || attempts <= 1 then Result.Error e
              else with_conn t ~mutation ~attempts:(attempts - 1) f
          | Client.Read_only _ when mutation ->
              (* Cleanly refused — nothing applied; we are on a
                 standby. Retry towards the primary. *)
              rotate t;
              if attempts <= 1 then Result.Error e
              else with_conn t ~mutation ~attempts:(attempts - 1) f
          | Client.Overloaded _ when attempts > 1 ->
              Unix.sleepf 0.01;
              with_conn t ~mutation ~attempts:(attempts - 1) f
          | e -> Result.Error e))

let default_attempts t = (2 * Array.length t.endpoints) + 2

let read t f = with_conn t ~mutation:false ~attempts:(default_attempts t) f
let mutate t f = with_conn t ~mutation:true ~attempts:(default_attempts t) f

(* ---------------- typed conveniences ---------------- *)

let insert t ?id ivl = mutate t (fun c -> Client.insert c ?id ivl)
let intersect t ivl = read t (fun c -> Client.intersect c ivl)
let sql t text = read t (fun c -> Client.sql c text)
let begin_txn t = mutate t (fun c -> Client.begin_txn c)
let rollback t = mutate t (fun c -> Client.rollback c)
let repl_status t = read t (fun c -> Client.repl_status c)

let commit t =
  match mutate t (fun c -> Client.commit c) with
  | Ok lsn ->
      note_lsn t lsn;
      Ok lsn
  | Result.Error _ as e -> e
