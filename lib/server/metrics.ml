(* Prometheus text exposition (version 0.0.4). Hand-rolled: the format
   is lines of `name{labels} value`, `# HELP` / `# TYPE` headers, and a
   cumulative `_bucket{le=...}` series per histogram — nothing that
   warrants a dependency. *)

let family b ~name ~help ~typ =
  Printf.bprintf b "# HELP %s %s\n# TYPE %s %s\n" name help name typ

let gauge b ~name ~help v =
  family b ~name ~help ~typ:"gauge";
  Printf.bprintf b "%s %s\n" name v

let counter b ~name ~help v =
  family b ~name ~help ~typ:"counter";
  Printf.bprintf b "%s %s\n" name v

let int_ v = string_of_int v
let float_ v = Printf.sprintf "%.6g" v

let op_histograms b (ops : Server_stats.op_view list) =
  family b ~name:"rikit_op_latency_us"
    ~help:"Request latency by wire op, microseconds." ~typ:"histogram";
  List.iter
    (fun (o : Server_stats.op_view) ->
      let acc = ref 0 in
      Array.iteri
        (fun i n ->
          acc := !acc + n;
          let le =
            if i = Server_stats.buckets - 1 then "+Inf"
            else string_of_int (Server_stats.bucket_limit_us i)
          in
          Printf.bprintf b "rikit_op_latency_us_bucket{op=%S,le=%S} %d\n"
            o.v_op le !acc)
        o.v_hist;
      Printf.bprintf b "rikit_op_latency_us_sum{op=%S} %d\n" o.v_op o.v_total_us;
      Printf.bprintf b "rikit_op_latency_us_count{op=%S} %d\n" o.v_op o.v_count)
    ops;
  family b ~name:"rikit_op_io_total"
    ~help:"Physical blocks read+written servicing each wire op."
    ~typ:"counter";
  List.iter
    (fun (o : Server_stats.op_view) ->
      Printf.bprintf b "rikit_op_io_total{op=%S} %d\n" o.v_op o.v_total_io)
    ops

type repl = {
  r_role : string;  (* "primary" | "replica" *)
  r_lag_bytes : int;
  r_applied_lsn : int;
  r_durable_lsn : int;
  r_subscribers : int;
}

let render ?repl ~now ~stats ~cat ~memtier ~txns () =
  let v = Server_stats.view stats in
  let pool = Relation.Catalog.pool cat in
  let ps = Storage.Buffer_pool.Stats.get pool in
  let ds = Storage.Block_device.Stats.get (Relation.Catalog.device cat) in
  let b = Buffer.create 4096 in
  gauge b ~name:"rikit_uptime_seconds" ~help:"Seconds since server start."
    (float_ (now -. v.v_started));
  gauge b ~name:"rikit_sessions" ~help:"Currently connected sessions."
    (int_ v.v_sessions);
  gauge b ~name:"rikit_sessions_peak" ~help:"Peak concurrent sessions."
    (int_ v.v_peak_sessions);
  counter b ~name:"rikit_requests_total" ~help:"Requests executed."
    (int_ v.v_total_requests);
  counter b ~name:"rikit_overload_rejections_total"
    ~help:"Connections or requests refused by admission control."
    (int_ v.v_overload_rejections);
  gauge b ~name:"rikit_queue_depth"
    ~help:"Requests parsed but not yet executed." (int_ v.v_queue_depth);
  gauge b ~name:"rikit_queue_depth_peak" ~help:"Peak request queue depth."
    (int_ v.v_peak_queue_depth);
  op_histograms b v.v_ops;
  counter b ~name:"rikit_pool_hits_total"
    ~help:"Buffer-pool pins satisfied from the cache." (int_ ps.hits);
  counter b ~name:"rikit_pool_misses_total"
    ~help:"Buffer-pool pins requiring a device read." (int_ ps.misses);
  counter b ~name:"rikit_pool_evictions_total" ~help:"Frames evicted."
    (int_ ps.evictions);
  gauge b ~name:"rikit_pool_hit_rate"
    ~help:"Fraction of pins served from the cache since start."
    (float_
       (if ps.logical_reads = 0 then 1.0
        else float_of_int ps.hits /. float_of_int ps.logical_reads));
  gauge b ~name:"rikit_pool_cached_pages" ~help:"Pages currently resident."
    (int_ (Storage.Buffer_pool.cached pool));
  gauge b ~name:"rikit_pool_pinned_frames"
    ~help:"Resident frames with at least one pin."
    (int_ (Storage.Buffer_pool.pinned_frames pool));
  counter b ~name:"rikit_plan_cache_hits_total"
    ~help:"SELECT statements answered from a plan cache (no parse, no plan)."
    (int_ (Exec.Plan_cache.global_hits ()));
  counter b ~name:"rikit_plan_cache_misses_total"
    ~help:"SELECT statements that had to be parsed and planned."
    (int_ (Exec.Plan_cache.global_misses ()));
  counter b ~name:"rikit_plan_cache_invalidations_total"
    ~help:"Plan-cache flushes (DDL or collection schema changes)."
    (int_ (Exec.Plan_cache.global_invalidations ()));
  gauge b ~name:"rikit_plan_cache_hit_rate"
    ~help:"Fraction of cacheable statements served from a plan cache."
    (float_ (Exec.Plan_cache.global_hit_rate ()));
  counter b ~name:"rikit_device_reads_total" ~help:"Physical block reads."
    (int_ ds.reads);
  counter b ~name:"rikit_device_writes_total" ~help:"Physical block writes."
    (int_ ds.writes);
  (match Relation.Catalog.journal cat with
  | None -> ()
  | Some j ->
      counter b ~name:"rikit_journal_forces_total"
        ~help:"Log forces (fsyncs); group commit amortizes these."
        (int_ (Storage.Journal.force_count j));
      counter b ~name:"rikit_journal_commits_total"
        ~help:"Commit markers written (one per group-commit batch)."
        (int_ (Storage.Journal.commit_count j));
      gauge b ~name:"rikit_journal_bytes"
        ~help:"Serialized journal size, forced plus pending."
        (int_ (Storage.Journal.durable_bytes j + Storage.Journal.unforced_bytes j)));
  let mt = Exec.Memtier.stats memtier in
  gauge b ~name:"rikit_hot_tier_budget_bytes"
    ~help:"Hot-tier byte budget (0 when the tier is disabled)."
    (int_ mt.Exec.Memtier.s_budget_bytes);
  gauge b ~name:"rikit_hot_tier_resident_bytes"
    ~help:"Bytes of RAM-resident HINT replicas."
    (int_ mt.Exec.Memtier.s_resident_bytes);
  gauge b ~name:"rikit_hot_tier_resident_collections"
    ~help:"Collections currently resident in the hot tier."
    (int_ mt.Exec.Memtier.s_resident);
  counter b ~name:"rikit_hot_tier_builds_total"
    ~help:"Hot-tier promotions (in-memory index builds)."
    (int_ mt.Exec.Memtier.s_builds);
  counter b ~name:"rikit_hot_tier_demotions_total"
    ~help:"Replicas dropped to fit the budget (LRU) or on request."
    (int_ mt.Exec.Memtier.s_demotions);
  counter b ~name:"rikit_hot_tier_invalidations_total"
    ~help:"Replicas dropped because the base table mutated."
    (int_ mt.Exec.Memtier.s_invalidations);
  counter b ~name:"rikit_hot_tier_probes_total"
    ~help:"Queries answered from a RAM-resident replica."
    (int_ mt.Exec.Memtier.s_probes);
  let tc = Relation.Txn.counters txns in
  counter b ~name:"rikit_txn_commits_total"
    ~help:"Transactions committed (write sets applied)."
    (int_ tc.Relation.Txn.c_commits);
  counter b ~name:"rikit_txn_aborts_total"
    ~help:"Transactions rolled back or aborted (write sets discarded)."
    (int_ tc.Relation.Txn.c_aborts);
  counter b ~name:"rikit_txn_conflicts_total"
    ~help:"Commits refused: a buffered write lost a first-committer race."
    (int_ tc.Relation.Txn.c_conflicts);
  gauge b ~name:"rikit_txn_active"
    ~help:"Transactions currently open (one per connected session)."
    (int_ tc.Relation.Txn.c_active);
  gauge b ~name:"rikit_txn_lsn" ~help:"Latest committed LSN."
    (int_ tc.Relation.Txn.c_lsn);
  gauge b ~name:"rikit_read_only"
    ~help:"1 when the server has degraded to read-only after corruption."
    (int_
       (match Relation.Catalog.degraded_reason cat with
       | Some _ -> 1
       | None -> 0));
  (match repl with
  | None -> ()
  | Some r ->
      gauge b ~name:"rikit_repl_role"
        ~help:"0 on a primary, 1 on a replica."
        (int_ (if r.r_role = "replica" then 1 else 0));
      gauge b ~name:"rikit_repl_lag_bytes"
        ~help:"Journal bytes durable on the primary but not yet applied \
               here (0 on a primary)."
        (int_ r.r_lag_bytes);
      gauge b ~name:"rikit_repl_applied_lsn"
        ~help:"Primary-stream byte offset applied locally (on a primary: \
               the durable log position itself)."
        (int_ r.r_applied_lsn);
      gauge b ~name:"rikit_repl_durable_lsn"
        ~help:"The primary's durable log position as last known."
        (int_ r.r_durable_lsn);
      gauge b ~name:"rikit_repl_subscribers"
        ~help:"Live replication subscribers (0 on a replica)."
        (int_ r.r_subscribers));
  Buffer.contents b

(* ---------------- router exposition ----------------

   The router holds no catalog, pool, or journal — its document is the
   request-side families plus per-shard fan-out health. Per-shard RPC
   latency rides the ordinary op histograms under op="shard:<i>" (the
   router records one sample per shard leg call), so one family serves
   both the client-facing ops and the fan-out legs. *)

type shard = {
  s_lo : int;
  s_hi : int;
  s_endpoints : (string * int) list;
  s_lsn : int;  (* highest commit LSN routed to this shard (RYW token) *)
  s_rpcs : int;
  s_errors : int;
}

let render_router ~now ~stats ~shards ~partials () =
  let v = Server_stats.view stats in
  let b = Buffer.create 4096 in
  gauge b ~name:"rikit_uptime_seconds" ~help:"Seconds since router start."
    (float_ (now -. v.v_started));
  gauge b ~name:"rikit_sessions" ~help:"Currently connected sessions."
    (int_ v.v_sessions);
  gauge b ~name:"rikit_sessions_peak" ~help:"Peak concurrent sessions."
    (int_ v.v_peak_sessions);
  counter b ~name:"rikit_requests_total" ~help:"Requests executed."
    (int_ v.v_total_requests);
  counter b ~name:"rikit_overload_rejections_total"
    ~help:"Connections refused by admission control."
    (int_ v.v_overload_rejections);
  op_histograms b v.v_ops;
  gauge b ~name:"rikit_shard_count" ~help:"Shards in the serving topology."
    (int_ (Array.length shards));
  family b ~name:"rikit_shard_range_lo"
    ~help:"Inclusive lower bound of each shard's interval-space range."
    ~typ:"gauge";
  Array.iteri
    (fun i s -> Printf.bprintf b "rikit_shard_range_lo{shard=\"%d\"} %d\n" i s.s_lo)
    shards;
  family b ~name:"rikit_shard_range_hi"
    ~help:"Inclusive upper bound of each shard's interval-space range."
    ~typ:"gauge";
  Array.iteri
    (fun i s -> Printf.bprintf b "rikit_shard_range_hi{shard=\"%d\"} %d\n" i s.s_hi)
    shards;
  family b ~name:"rikit_shard_endpoints"
    ~help:"Endpoints configured per shard (first is preferred)." ~typ:"gauge";
  Array.iteri
    (fun i s ->
      Printf.bprintf b "rikit_shard_endpoints{shard=\"%d\"} %d\n" i
        (List.length s.s_endpoints))
    shards;
  family b ~name:"rikit_shard_rpcs_total"
    ~help:"Fan-out RPCs issued to each shard." ~typ:"counter";
  Array.iteri
    (fun i s -> Printf.bprintf b "rikit_shard_rpcs_total{shard=\"%d\"} %d\n" i s.s_rpcs)
    shards;
  family b ~name:"rikit_shard_errors_total"
    ~help:"Fan-out RPCs that failed after endpoint failover." ~typ:"counter";
  Array.iteri
    (fun i s ->
      Printf.bprintf b "rikit_shard_errors_total{shard=\"%d\"} %d\n" i s.s_errors)
    shards;
  family b ~name:"rikit_shard_last_lsn"
    ~help:"Highest commit LSN acknowledged by each shard (read-your-writes \
           token)."
    ~typ:"gauge";
  Array.iteri
    (fun i s ->
      Printf.bprintf b "rikit_shard_last_lsn{shard=\"%d\"} %d\n" i s.s_lsn)
    shards;
  counter b ~name:"rikit_router_partial_results_total"
    ~help:"Scatter-gather answers degraded to typed partial results."
    (int_ partials);
  Buffer.contents b
