type shared = {
  mutable cat : Relation.Catalog.t;
  mutable ritree : Ritree.Ri_tree.t;
  tree_name : string;
  dur : bool;
  mutable generation : int;
  mutable next_session : int;
}

let shared ?(durable = false) ?cache_blocks ?(tree_name = "intervals") () =
  let cat = Relation.Catalog.create ~durable ?cache_blocks () in
  let ritree = Ritree.Ri_tree.create ~name:tree_name cat in
  if durable then Relation.Catalog.commit cat;
  { cat; ritree; tree_name; dur = durable; generation = 0; next_session = 0 }

let catalog sh = sh.cat
let tree sh = sh.ritree
let durable sh = sh.dur

let preload sh data =
  Array.iteri (fun id ivl -> ignore (Ritree.Ri_tree.insert ~id sh.ritree ivl)) data;
  Relation.Catalog.commit sh.cat

let commit_shared sh = Relation.Catalog.commit sh.cat
let commit_request_shared sh = Relation.Catalog.commit_request sh.cat
let commit_force_shared sh = Relation.Catalog.commit_force sh.cat

let flush_shared sh =
  if sh.dur then Relation.Catalog.checkpoint sh.cat
  else Relation.Catalog.flush sh.cat

let reattach sh =
  sh.ritree <- Ritree.Ri_tree.open_existing ~name:sh.tree_name sh.cat;
  sh.generation <- sh.generation + 1

let reopen sh =
  if not sh.dur then failwith "Session.reopen: server is not durable";
  sh.cat <- Relation.Catalog.reopen sh.cat;
  reattach sh

let rollback_shared sh =
  if not sh.dur then
    Protocol.Error "rollback requires a durable server (rikitd --durable)"
  else begin
    sh.cat <- Relation.Catalog.simulate_crash sh.cat;
    reattach sh;
    Protocol.Ack "rolled back to last commit"
  end

type t = {
  sh : shared;
  sid : int;
  mutable engine : Sqlfront.Engine.session;
  mutable engine_gen : int;
  mutable reqs : int;
  mutable sql_stmts : int;  (* survives engine re-attach after rollback *)
}

let create sh =
  sh.next_session <- sh.next_session + 1;
  {
    sh;
    sid = sh.next_session;
    engine = Sqlfront.Engine.session sh.cat;
    engine_gen = sh.generation;
    reqs = 0;
    sql_stmts = 0;
  }

let close _t = ()
let id t = t.sid
let requests t = t.reqs

let engine t =
  if t.engine_gen <> t.sh.generation then begin
    t.sql_stmts <- t.sql_stmts + Sqlfront.Engine.statements t.engine;
    t.engine <- Sqlfront.Engine.session t.sh.cat;
    t.engine_gen <- t.sh.generation
  end;
  t.engine

let sql_statements t = t.sql_stmts + Sqlfront.Engine.statements t.engine

(* Validation failures are the client's bug, not the server's: raise
   Invalid_argument so [handle] can answer with a typed [Invalid] frame
   and keep the session alive, instead of the generic [Error]. *)
let ivl lower upper =
  if lower > upper then
    invalid_arg (Printf.sprintf "empty interval [%d, %d]" lower upper)
  else Interval.Ivl.make lower upper

let pair_rows pairs =
  Protocol.Rows
    {
      columns = [ "lower"; "upper"; "id" ];
      rows =
        List.map
          (fun (i, id) ->
            [| Interval.Ivl.lower i; Interval.Ivl.upper i; id |])
          pairs;
    }

let exec t = function
  | Protocol.Sql text -> (
      match Sqlfront.Engine.exec (engine t) text with
      | Sqlfront.Engine.Done msg -> Protocol.Ack msg
      | Sqlfront.Engine.Rows { columns; rows } -> Protocol.Rows { columns; rows })
  | Insert { lower; upper; id } ->
      let assigned = Ritree.Ri_tree.insert ?id t.sh.ritree (ivl lower upper) in
      Ack (Printf.sprintf "inserted id %d" assigned)
  | Delete { lower; upper; id } ->
      if Ritree.Ri_tree.delete t.sh.ritree ~id (ivl lower upper) then
        Ack "deleted 1 row"
      else Error (Printf.sprintf "no row ([%d, %d], id %d)" lower upper id)
  | Intersect { lower; upper } ->
      pair_rows (Ritree.Ri_tree.intersecting t.sh.ritree (ivl lower upper))
  | Allen { relation; lower; upper } ->
      pair_rows (Ritree.Topological.query t.sh.ritree relation (ivl lower upper))
  | Commit ->
      commit_shared t.sh;
      Ack "committed"
  | Rollback -> rollback_shared t.sh
  | Ping -> Ack "pong"
  | Stats -> Error "stats is handled by the dispatcher"
  | Metrics -> Error "metrics is handled by the dispatcher"

(* Group-commit staging: counts as a request for this session, but the
   response is owed only after the dispatcher forces the batch. *)
let stage_commit t =
  t.reqs <- t.reqs + 1;
  commit_request_shared t.sh

(* First keyword of a SQL text, lowercased — enough to classify
   statements for degraded mode without a parse. *)
let sql_keyword text =
  let n = String.length text in
  let rec skip i = if i < n && (text.[i] = ' ' || text.[i] = '\t'
                                || text.[i] = '\n' || text.[i] = '\r')
    then skip (i + 1) else i in
  let start = skip 0 in
  let rec word i =
    if i < n then
      match text.[i] with
      | 'a' .. 'z' | 'A' .. 'Z' -> word (i + 1)
      | _ -> i
    else i
  in
  String.lowercase_ascii (String.sub text start (word start - start))

let mutating = function
  | Protocol.Insert _ | Delete _ | Commit | Rollback -> true
  | Sql text -> (
      match sql_keyword text with "select" | "explain" -> false | _ -> true)
  | Intersect _ | Allen _ | Stats | Metrics | Ping -> false

let degraded_reason_shared sh = Relation.Catalog.degraded_reason sh.cat

let handle t req =
  t.reqs <- t.reqs + 1;
  match degraded_reason_shared t.sh with
  | Some reason when mutating req ->
      Protocol.Read_only (Printf.sprintf "server is read-only: %s" reason)
  | _ -> (
      try exec t req with
      | Storage.Buffer_pool.Corrupt_page page ->
          (* Garbage came off the disk. Keep serving what still
             verifies, refuse to write on top of a damaged image. *)
          let reason = Printf.sprintf "corrupt page %d" page in
          Relation.Catalog.degrade t.sh.cat reason;
          Protocol.Error
            (Printf.sprintf
               "corruption detected (%s): server now degraded read-only; \
                run `rikit scrub` against this image" reason)
      | Storage.Block_device.Io_error { op; block } ->
          Protocol.Error
            (Printf.sprintf "transient I/O error: %s of block %d failed" op
               block)
      | Sqlfront.Engine.Error m -> Protocol.Error m
      | Sqlfront.Parser.Error m -> Protocol.Error ("parse error: " ^ m)
      | Sqlfront.Lexer.Error (m, pos) ->
          Protocol.Error (Printf.sprintf "lex error at %d: %s" pos m)
      | Failure m -> Protocol.Error m
      | Invalid_argument m -> Protocol.Invalid m
      | Not_found -> Protocol.Error "not found"
      | e -> Protocol.Error ("internal error: " ^ Printexc.to_string e))
