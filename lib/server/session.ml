type shared = {
  mutable cat : Relation.Catalog.t;
  mutable ritree : Ritree.Ri_tree.t;
  tree_name : string;
  dur : bool;
  (* MVCC transaction manager: one per database. Sessions buffer writes
     into per-transaction write sets; COMMIT validates and applies them
     under a fresh commit LSN, ROLLBACK discards one session's set. *)
  txns : Relation.Txn.mgr;
  mutable generation : int;
  mutable next_session : int;
  (* Cost-model statistics for the typed-op planner, tagged with the
     tree's row count at analyze time; refreshed when the count drifts
     by 2x either way ("stats refresh"). *)
  mutable stats : (int * Ritree.Cost_model.Stats.t) option;
  (* RAM-resident hot tier (budget 0 = disabled). *)
  memtier : Exec.Memtier.t;
}

let shared ?(durable = false) ?cache_blocks ?(tree_name = "intervals")
    ?(hot_tier_mb = 0) () =
  let cat = Relation.Catalog.create ~durable ?cache_blocks () in
  let ritree = Ritree.Ri_tree.create ~name:tree_name cat in
  if durable then Relation.Catalog.commit cat;
  { cat; ritree; tree_name; dur = durable; txns = Relation.Txn.create ();
    generation = 0; next_session = 0;
    stats = None; memtier = Exec.Memtier.create ~budget_mb:hot_tier_mb }

let stats_for sh =
  let n = Ritree.Ri_tree.count sh.ritree in
  match sh.stats with
  | Some (n0, st) when n = n0 || (n0 > 0 && n < 2 * n0 && 2 * n > n0) -> st
  | _ ->
      let st = Ritree.Cost_model.Stats.analyze sh.ritree in
      sh.stats <- Some (n, st);
      st

let catalog sh = sh.cat
let tree sh = sh.ritree
let durable sh = sh.dur
let memtier sh = sh.memtier
let txns sh = sh.txns

let preload sh data =
  Array.iteri (fun id ivl -> ignore (Ritree.Ri_tree.insert ~id sh.ritree ivl)) data;
  Relation.Catalog.commit sh.cat

let preload_ids sh data =
  Array.iter
    (fun (id, ivl) -> ignore (Ritree.Ri_tree.insert ~id sh.ritree ivl))
    data;
  Relation.Catalog.commit sh.cat

let commit_shared sh = Relation.Catalog.commit sh.cat
let commit_request_shared sh = Relation.Catalog.commit_request sh.cat
let commit_force_shared sh = Relation.Catalog.commit_force sh.cat

(* The durable-log byte offset — the LSN token commit acks carry so a
   failover client can wait out replica lag (read-your-writes). 0 on a
   non-durable server. *)
let durable_lsn_shared sh =
  match Relation.Catalog.journal sh.cat with
  | Some j -> Storage.Journal.durable_lsn j
  | None -> 0

let flush_shared sh =
  if sh.dur then Relation.Catalog.checkpoint sh.cat
  else Relation.Catalog.flush sh.cat

let reattach sh =
  sh.ritree <- Ritree.Ri_tree.open_existing ~name:sh.tree_name sh.cat;
  (* The physical handles were replaced and recovery reinstated exactly
     the committed state: every in-flight write set is void and the
     visibility sidecars describe tables that no longer exist. *)
  Relation.Txn.reset sh.txns;
  sh.stats <- None;
  (* the replica indexed the replaced catalog's rows *)
  Exec.Memtier.invalidate sh.memtier sh.tree_name;
  sh.generation <- sh.generation + 1

let reopen sh =
  if not sh.dur then failwith "Session.reopen: server is not durable";
  sh.cat <- Relation.Catalog.reopen sh.cat;
  reattach sh

(* Replica apply refresh: the device was rewritten by a replicated
   batch, so swap in handles that see it. Like [reopen] but without a
   checkpoint (the replica never owns dirty pages worth keeping). *)
let reload sh =
  if not sh.dur then failwith "Session.reload: server is not durable";
  sh.cat <- Relation.Catalog.reload sh.cat;
  reattach sh

(* Prepared statements a session may hold at once: plans pin table
   handles, so an unbounded map would let one client grow server memory
   without limit. *)
let max_prepared = 64

type t = {
  sh : shared;
  sid : int;
  mutable engine : Sqlfront.Engine.session;
  mutable engine_gen : int;
  prepared : (string, Sqlfront.Engine.prepared) Hashtbl.t;
  mutable reqs : int;
  mutable sql_stmts : int;  (* survives engine re-attach after reopen *)
  (* The session's current transaction. Always live between requests:
     COMMIT/ROLLBACK immediately begin the successor, so every
     statement — transactional or autocommit-style — runs inside one. *)
  mutable txn : Relation.Txn.txn;
}

let create sh =
  sh.next_session <- sh.next_session + 1;
  let engine = Sqlfront.Engine.session sh.cat in
  let txn = Relation.Txn.begin_txn sh.txns in
  Sqlfront.Engine.set_txn engine (Some txn);
  {
    sh;
    sid = sh.next_session;
    engine;
    engine_gen = sh.generation;
    prepared = Hashtbl.create 8;
    reqs = 0;
    sql_stmts = 0;
    txn;
  }

let close t = Relation.Txn.abort t.txn
let id t = t.sid
let requests t = t.reqs

(* Does this session's transaction hold buffered writes — i.e. could a
   COMMIT from it still join an open group-commit window? *)
let has_pending_writes t = Relation.Txn.has_writes t.txn

(* Replace a finished (committed/aborted) transaction with a fresh
   implicit one and rebind the SQL engine to it. *)
let renew t =
  t.txn <- Relation.Txn.begin_txn t.sh.txns;
  Sqlfront.Engine.set_txn t.engine (Some t.txn)

(* After [reattach] ({!reopen}, crash recovery) the manager was reset
   and this session's transaction force-aborted behind its back. *)
let sync_txn t = if not (Relation.Txn.is_active t.txn) then renew t

let engine t =
  if t.engine_gen <> t.sh.generation then begin
    t.sql_stmts <- t.sql_stmts + Sqlfront.Engine.statements t.engine;
    t.engine <- Sqlfront.Engine.session t.sh.cat;
    Sqlfront.Engine.set_txn t.engine (Some t.txn);
    (* prepared plans pin tables of the replaced catalog: drop them *)
    Hashtbl.reset t.prepared;
    t.engine_gen <- t.sh.generation
  end;
  t.engine

(* The session's snapshot overlay for the typed-op planner paths. *)
let vis_for t =
  let mgr = t.sh.txns in
  let snap = Relation.Txn.snapshot t.txn in
  fun name -> Relation.Txn.view mgr snap name

(* Residency handle for the shared tree, if the tier serves one for
   THIS session's snapshot. Taken per statement: mutation
   (Table.version) or a catalog swap invalidates stale replicas right
   here; a session with buffered writes on the tree bypasses the tier
   (the replica cannot see its write set); a pinned snapshot older than
   the replica's build LSN is refused the handle without dropping it. *)
let mem_for t =
  if Relation.Txn.writes_on t.txn t.sh.tree_name then None
  else
    let snap_high =
      Relation.Txn.snapshot_high (Relation.Txn.snapshot t.txn)
    in
    let lsn = Relation.Txn.table_lsn t.sh.txns t.sh.tree_name in
    Exec.Memtier.acquire ~snap_high ~lsn t.sh.memtier t.sh.ritree

let sql_statements t = t.sql_stmts + Sqlfront.Engine.statements t.engine

(* Validation failures are the client's bug, not the server's: raise
   Invalid_argument so [handle] can answer with a typed [Invalid] frame
   and keep the session alive, instead of the generic [Error]. *)
let ivl lower upper =
  if lower > upper then
    invalid_arg (Printf.sprintf "empty interval [%d, %d]" lower upper)
  else Interval.Ivl.make lower upper

let pair_rows pairs =
  Protocol.Rows
    {
      columns = [ "lower"; "upper"; "id" ];
      rows =
        List.map
          (fun (i, id) ->
            [| Interval.Ivl.lower i; Interval.Ivl.upper i; id |])
          pairs;
    }

let exec t = function
  | Protocol.Sql text -> (
      match Sqlfront.Engine.exec (engine t) text with
      | Sqlfront.Engine.Done msg -> Protocol.Ack msg
      | Sqlfront.Engine.Rows { columns; rows } -> Protocol.Rows { columns; rows })
  | Insert { lower; upper; id } ->
      (* Fork computation and parameter persistence happen now (monotone
         metadata, safe if the transaction aborts); the physical row is
         buffered and applied at COMMIT. *)
      let assigned, row =
        Ritree.Ri_tree.prepare_insert ?id t.sh.ritree (ivl lower upper)
      in
      Relation.Txn.buffer_insert t.txn
        ~table:(Ritree.Ri_tree.table t.sh.ritree) ~tname:t.sh.tree_name row;
      Ack (Printf.sprintf "inserted id %d" assigned)
  | Delete { lower; upper; id } -> (
      let q = ivl lower upper in
      let tbl = Ritree.Ri_tree.table t.sh.ritree in
      let tname = t.sh.tree_name in
      (* Deleting your own uncommitted insert never touches the heap. *)
      match
        Relation.Txn.take_pending_insert t.txn tname (fun row ->
            row.(1) = lower && row.(2) = upper && row.(3) = id)
      with
      | Some _ -> Ack "deleted 1 row"
      | None -> (
          let mgr = t.sh.txns in
          let snap = Relation.Txn.snapshot t.txn in
          let seen = Relation.Txn.snapshot_high snap in
          let ok rowid _row =
            Relation.Txn.rowid_visible mgr snap tname rowid
          in
          match Ritree.Ri_tree.find_victim ~ok t.sh.ritree ~id q with
          | Some (rowid, row) ->
              Relation.Txn.buffer_delete t.txn ~table:tbl ~tname ~rowid ~row
                ~seen;
              Ack "deleted 1 row"
          | None -> (
              (* A row this snapshot still sees but a newer commit
                 already deleted: buffer it anyway, so the write-write
                 race surfaces as a typed Conflict at COMMIT instead of
                 a silent no-op. *)
              match
                List.find_opt
                  (fun ((_ : int), row) ->
                    row.(1) = lower && row.(2) = upper && row.(3) = id)
                  (Relation.Txn.dead_visible mgr snap tname)
              with
              | Some (rowid, row) ->
                  Relation.Txn.buffer_delete t.txn ~table:tbl ~tname ~rowid
                    ~row ~seen;
                  Ack "deleted 1 row"
              | None ->
                  Error
                    (Printf.sprintf "no row ([%d, %d], id %d)" lower upper id)
              )))
  | Intersect { lower; upper } ->
      (* compiled onto the shared execution IR; the planner consults the
         cost model to pick the memory tier, two-branch, single-branch,
         or seq scan *)
      pair_rows
        (Exec.Planner.intersecting ~stats:(stats_for t.sh) ?mem:(mem_for t)
           ~vis:(vis_for t) t.sh.ritree (ivl lower upper))
  | Allen { relation; lower; upper } ->
      pair_rows
        (Exec.Planner.allen_matches ?mem:(mem_for t) ~vis:(vis_for t)
           t.sh.ritree relation (ivl lower upper))
  | Begin ->
      if Relation.Txn.pinned t.txn then
        Protocol.Invalid "transaction already in progress"
      else begin
        Relation.Txn.pin t.txn;
        Ack "begin"
      end
  | Commit -> (
      match Relation.Txn.commit t.txn with
      | _lsn ->
          commit_shared t.sh;
          renew t;
          Ack (Printf.sprintf "committed lsn %d" (durable_lsn_shared t.sh))
      | exception Relation.Txn.Conflict m ->
          (* [Txn.commit] already aborted the loser. *)
          renew t;
          Protocol.Conflict m)
  | Rollback ->
      (* One session's write set only; everyone else is untouched. *)
      Relation.Txn.abort t.txn;
      renew t;
      Ack "rolled back"
  | Ping -> Ack "pong"
  | Stats -> Error "stats is handled by the dispatcher"
  | Metrics -> Error "metrics is handled by the dispatcher"
  | Repl_subscribe _ | Repl_ack _ | Repl_status ->
      Error "replication ops are handled by the dispatcher"
  | Shard_map_req -> Error "shard map is handled by the dispatcher"
  | Prepare { name; sql } ->
      let eng = engine t in
      if
        Hashtbl.length t.prepared >= max_prepared
        && not (Hashtbl.mem t.prepared name)
      then
        Error
          (Printf.sprintf "too many prepared statements (limit %d)"
             max_prepared)
      else begin
        let p = Sqlfront.Engine.prepare eng sql in
        Hashtbl.replace t.prepared name p;
        Ack
          (Printf.sprintf "prepared %s (%d parameters)" name
             (List.length (Sqlfront.Engine.prepared_params p)))
      end
  | Execute { name; params } -> (
      let eng = engine t in
      match Hashtbl.find_opt t.prepared name with
      | None -> Error (Printf.sprintf "unknown prepared statement %s" name)
      | Some p -> (
          match Sqlfront.Engine.execute_prepared eng p params with
          | Sqlfront.Engine.Done msg -> Ack msg
          | Sqlfront.Engine.Rows { columns; rows } -> Rows { columns; rows }))
  | Close_stmt name ->
      ignore (engine t);
      if Hashtbl.mem t.prepared name then begin
        Hashtbl.remove t.prepared name;
        Ack (Printf.sprintf "closed %s" name)
      end
      else Error (Printf.sprintf "unknown prepared statement %s" name)
  | Explain { analyze; target } -> (
      match target with
      | Protocol.Explain_sql text ->
          Ack (Sqlfront.Engine.explain_text ~analyze (engine t) text)
      | Protocol.Explain_intersect { lower; upper } ->
          Ack
            (Exec.Planner.explain ~stats:(stats_for t.sh) ~analyze
               ?mem:(mem_for t) ~vis:(vis_for t) t.sh.ritree
               (Exec.Planner.Intersect_target (ivl lower upper)))
      | Protocol.Explain_allen { relation; lower; upper } ->
          Ack
            (Exec.Planner.explain ~analyze ?mem:(mem_for t) ~vis:(vis_for t)
               t.sh.ritree
               (Exec.Planner.Allen_target (relation, ivl lower upper))))

(* Group-commit staging: counts as a request for this session, but the
   Ack is owed only after the dispatcher forces the batch. The MVCC
   apply happens NOW (validation, physical writes, commit LSN); only
   durability is deferred, so a Conflict is answered immediately and
   never enters the window. *)
let stage_commit t =
  t.reqs <- t.reqs + 1;
  match Relation.Txn.commit t.txn with
  | _lsn ->
      renew t;
      commit_request_shared t.sh;
      Ok ()
  | exception Relation.Txn.Conflict m ->
      renew t;
      Result.Error m

(* First keyword of a SQL text, lowercased — enough to classify
   statements for degraded mode without a parse. *)
let sql_keyword text =
  let n = String.length text in
  let rec skip i = if i < n && (text.[i] = ' ' || text.[i] = '\t'
                                || text.[i] = '\n' || text.[i] = '\r')
    then skip (i + 1) else i in
  let start = skip 0 in
  let rec word i =
    if i < n then
      match text.[i] with
      | 'a' .. 'z' | 'A' .. 'Z' -> word (i + 1)
      | _ -> i
    else i
  in
  String.lowercase_ascii (String.sub text start (word start - start))

let mutating t = function
  | Protocol.Insert _ | Delete _ | Commit -> true
  | Sql text -> (
      match sql_keyword text with "select" | "explain" -> false | _ -> true)
  | Execute { name; _ } -> (
      (* classify by the prepared statement's kind; an unknown name will
         error out downstream without touching the database *)
      match Hashtbl.find_opt t.prepared name with
      | None -> false
      | Some p -> (
          match Sqlfront.Engine.prepared_kind p with
          | "SELECT" | "EXPLAIN" -> false
          | _ -> true))
  | Intersect _ | Allen _ | Stats | Metrics | Ping | Prepare _ | Close_stmt _
  | Explain _ | Begin | Rollback | Repl_subscribe _ | Repl_ack _
  | Repl_status | Shard_map_req ->
      (* BEGIN pins a snapshot and ROLLBACK discards a private write
         set: neither touches the shared database, so both stay legal
         in degraded read-only mode. *)
      false

let degraded_reason_shared sh = Relation.Catalog.degraded_reason sh.cat

let handle t req =
  t.reqs <- t.reqs + 1;
  sync_txn t;
  match degraded_reason_shared t.sh with
  | Some reason when mutating t req ->
      Protocol.Read_only (Printf.sprintf "server is read-only: %s" reason)
  | _ -> (
      try exec t req with
      | Storage.Buffer_pool.Corrupt_page page ->
          (* Garbage came off the disk. Keep serving what still
             verifies, refuse to write on top of a damaged image. *)
          let reason = Printf.sprintf "corrupt page %d" page in
          Relation.Catalog.degrade t.sh.cat reason;
          Protocol.Error
            (Printf.sprintf
               "corruption detected (%s): server now degraded read-only; \
                run `rikit scrub` against this image" reason)
      | Storage.Block_device.Io_error { op; block } ->
          Protocol.Error
            (Printf.sprintf "transient I/O error: %s of block %d failed" op
               block)
      | Relation.Txn.Conflict m -> Protocol.Conflict m
      | Sqlfront.Engine.Error m -> Protocol.Error m
      | Exec.Ir.Error m -> Protocol.Error m
      | Sqlfront.Parser.Error m -> Protocol.Error ("parse error: " ^ m)
      | Sqlfront.Lexer.Error (m, pos) ->
          Protocol.Error (Printf.sprintf "lex error at %d: %s" pos m)
      | Failure m -> Protocol.Error m
      | Invalid_argument m -> Protocol.Invalid m
      | Not_found -> Protocol.Error "not found"
      | e -> Protocol.Error ("internal error: " ^ Printexc.to_string e))
