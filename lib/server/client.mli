(** Blocking client for the rikitd wire protocol.

    One TCP connection, one outstanding request at a time: {!rpc}
    assigns a fresh request id, writes the frame, and blocks until the
    matching response arrives. An admission-control rejection at accept
    time (the server's [Overloaded] frame with request id 0) is
    returned as the response of whatever call observes it.

    Every typed convenience returns a [('a, error) result] — transport
    failures, admission rejections, degraded-mode refusals and
    server-side errors all come back as typed {!error} values, never
    exceptions. {!retryable} says which of them are worth retrying, and
    {!retry} does so with bounded exponential backoff and jitter. Only
    the low-level {!rpc} raises ({!Io_error}, transport only). *)

type t

exception Io_error of string

exception Timed_out of string
(** A per-request deadline ({!connect}'s [?deadline_ms]) expired. The
    connection was closed before raising: a response arriving after its
    deadline would answer the wrong request. Only the low-level {!rpc}
    raises it; the typed conveniences fold it into {!Timeout}. *)

exception Undecodable of string
(** The server answered with a well-delimited frame this client cannot
    decode (e.g. an op added after it was built). The stream is still in
    sync — the connection stays open and later calls keep working. Only
    the low-level {!rpc} raises it; the typed conveniences fold it into
    {!Unexpected}. *)

(** Why a call failed. *)
type error =
  | Overloaded of string  (** admission control; transient *)
  | Read_only of string
      (** the server is in degraded read-only mode; mutations will keep
          failing until the operator repairs the image *)
  | Conflict of string
      (** the transaction lost a write-write race at COMMIT and was
          aborted; retrying the COMMIT verbatim cannot succeed — the
          whole transaction must be re-run, so this is non-retryable *)
  | Server of string  (** the typed [Error] response; not transient *)
  | Invalid of string
      (** the typed [Invalid] response — the request itself was
          semantically wrong (e.g. an empty interval); fix the call,
          don't retry it *)
  | Io of string  (** transport failure; transient *)
  | Timeout of string
      (** the per-request deadline expired — a hung server, a partition,
          or an overloaded commit path; the connection is closed.
          Retryable (typically against another endpoint: see
          {!Failover}) *)
  | Partial of { missing : int list; msg : string }
      (** a router's scatter-gather answer was incomplete: the shards at
          the listed indices stayed unreachable through the router's own
          failover attempts. Non-retryable as-is — the caller decides
          whether partial data is acceptable *)
  | Unexpected of string  (** protocol violation / wrong response shape *)

val error_to_string : error -> string

val retryable : error -> bool
(** [true] for {!Overloaded}, {!Io} and {!Timeout} — failures that clear
    on their own. [Read_only], [Server], [Invalid], [Conflict],
    [Partial] and [Unexpected] are verdicts. *)

val connect : ?host:string -> ?deadline_ms:float -> port:int -> unit -> t
(** Default host [127.0.0.1]. [?deadline_ms] arms a per-request
    deadline: the connect itself and every subsequent call on this
    connection must complete within that many milliseconds (select-based
    waits around each read/write), else the call fails with {!Timeout}
    and the connection is closed. Without it, calls block forever — a
    hung or partitioned server then also hangs the client, which is
    exactly what failover cannot afford.
    @raise Io_error when the connection is refused.
    @raise Timed_out when [?deadline_ms] expires during connect. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.response
(** @raise Io_error on a closed/violated transport (a garbage length
    prefix also closes the connection — no frame boundary survives it).
    @raise Undecodable on a well-delimited but unreadable response; the
    connection stays open. *)

val rpc_result : t -> Protocol.request -> (Protocol.response, error) result
(** {!rpc} with the transport failure folded into the result. *)

val rpc_many :
  (t * Protocol.request) list -> (Protocol.response, error) result list
(** One request per client, all responses multiplexed on a single
    readiness wait (reactor backend) — k scatter legs cost one wait,
    not k threads. Clients must be distinct and have no other request
    in flight. Each leg runs under its own client's [deadline_ms]; a
    failed leg reports its typed error (and is closed on transport
    violations/timeouts, like {!rpc}) without disturbing the others.
    Results are in input order. *)

(** {2 Typed conveniences}

    None of these raise; all failure shapes land in {!error}. *)

val ping : t -> (unit, error) result
val insert : t -> ?id:int -> Interval.Ivl.t -> (int, error) result
(** The assigned id. *)

val intersect :
  t -> Interval.Ivl.t -> ((Interval.Ivl.t * int) list, error) result

val sql : t -> string -> (Protocol.response, error) result
(** [Ok] carries [Ack] or [Rows]. *)

val server_stats : t -> (Protocol.stats, error) result

val metrics : t -> (string, error) result
(** The Prometheus text exposition over the wire (the [Metrics] op). *)

val begin_txn : t -> (unit, error) result
(** Start an explicit transaction: pins the snapshot until COMMIT or
    ROLLBACK. Fails with [Invalid] if one is already open. *)

val commit : t -> (int, error) result
(** Commit the session's transaction; [Ok lsn] carries the durable-log
    byte offset the commit is covered by (0 on non-durable servers) —
    the token a failover client uses to wait out replica lag
    (read-your-writes). [Conflict] if it lost a write-write race (the
    transaction is already aborted server-side). *)

val shard_map : t -> (Protocol.shard_entry list, error) result
(** The serving topology (the [Shard_map_req] op): one entry per shard
    from a router, a single whole-space entry from a plain rikitd. *)

val repl_status : t -> (Protocol.role * int * int, error) result
(** [(role, durable_lsn, applied_lsn)] — the server's replication
    position (the [Repl_status] op). *)

val rollback : t -> (unit, error) result
(** Discard the session's write set; other sessions are unaffected. *)

val prepare : t -> name:string -> string -> (unit, error) result
(** Parse and plan a statement once under [name] in this session. *)

val execute :
  t -> name:string -> int list -> (Protocol.response, error) result
(** Run a prepared statement with positional parameters; [Ok] carries
    [Ack] or [Rows]. *)

val close_stmt : t -> string -> (unit, error) result

val explain :
  t -> ?analyze:bool -> Protocol.explain_target -> (string, error) result
(** The rendered plan (with cost annotations; [analyze] adds measured
    actuals) for a SQL text or a typed op. *)

(** {2 Bounded retry with exponential backoff}

    Delay before attempt [n+1] is
    [min max_delay (base_delay * 2^(n-1))], scaled by a deterministic
    jitter factor drawn from [seed] into [[1 - jitter, 1]] — so a herd
    of backing-off clients spreads out instead of re-arriving in
    lockstep. *)

type backoff = {
  attempts : int;  (** total attempts, including the first *)
  base_delay : float;  (** seconds *)
  max_delay : float;
  jitter : float;  (** fraction of the delay the jitter may remove, 0..1 *)
  seed : int;  (** jitter PRNG seed (deterministic sleeps in tests) *)
}

val default_backoff : backoff
(** 5 attempts, 50 ms base, 1 s cap, jitter 0.5, seed 0. *)

val retry :
  ?backoff:backoff -> (unit -> ('a, error) result) -> ('a, error) result
(** Re-run [f] while it fails with a {!retryable} error and attempts
    remain, sleeping between tries. The first non-retryable error (or
    exhaustion) is returned as-is. *)

val connect_retry :
  ?backoff:backoff ->
  ?host:string ->
  ?deadline_ms:float ->
  port:int ->
  unit ->
  (t, error) result
(** {!connect} under {!retry} — rides out a server restart window. *)
