(** Blocking client for the rikitd wire protocol.

    One TCP connection, one outstanding request at a time: {!rpc}
    assigns a fresh request id, writes the frame, and blocks until the
    matching response arrives. An admission-control rejection at accept
    time (the server's [Overloaded] frame with request id 0) is
    returned as the response of whatever call observes it. Transport
    failures and protocol violations raise {!Io_error}; {e server-side}
    failures never raise — they are the typed [Error]/[Overloaded]
    responses. *)

type t

exception Io_error of string

val connect : ?host:string -> port:int -> unit -> t
(** Default host [127.0.0.1]. @raise Io_error when the connection is
    refused. *)

val close : t -> unit

val rpc : t -> Protocol.request -> Protocol.response
(** @raise Io_error on a closed/violated transport. *)

(** {2 Typed conveniences} *)

val ping : t -> unit
(** @raise Io_error if the server answers anything but an [Ack]. *)

val insert : t -> ?id:int -> Interval.Ivl.t -> (int, string) result
(** The assigned id, or the server's error text. *)

val intersect : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** @raise Io_error on a non-[Rows] response (e.g. [Overloaded]). *)

val sql : t -> string -> (Protocol.response, string) result
(** [Ok] carries [Ack] or [Rows]; [Result.Error] the server's message. *)

val server_stats : t -> Protocol.stats
(** @raise Io_error on a non-[Stats_reply] response. *)
