type config = {
  host : string;
  port : int;
  max_sessions : int;
  max_inflight : int;
  max_queue : int;
  group_commit : float;
  idle_timeout : float;
  metrics_port : int option;
  slow_query_ms : float;
}

let default_config =
  { host = "127.0.0.1"; port = 7468; max_sessions = 64; max_inflight = 32;
    max_queue = 1024; group_commit = 0.; idle_timeout = 0.;
    metrics_port = None; slow_query_ms = 0. }

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  framer : Protocol.Framer.t;
  pending : (int64 * Protocol.request) Queue.t;
  out : Buffer.t;
  mutable out_sent : int;
  mutable closing : bool;  (* close once the output buffer drains *)
  mutable last_active : float;  (* last byte received; idle reaping *)
}

type t = {
  cfg : config;
  sh : Session.shared;
  st : Server_stats.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable conns : conn list;
  mutable queued : int;  (* total pending requests across connections *)
  mutable pending_commits : (conn * int64 * float) list;
      (* COMMITs staged in the open group-commit window, newest first;
         the float is the staging time, for the latency histogram *)
  mutable commit_deadline : float option;  (* when the window closes *)
}

let create ?(config = default_config) sh =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let metrics_fd, metrics_bound_port =
    match config.metrics_port with
    | None -> (None, 0)
    | Some p ->
        let mfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt mfd Unix.SO_REUSEADDR true;
        Unix.bind mfd
          (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, p));
        Unix.listen mfd 16;
        let bp =
          match Unix.getsockname mfd with
          | Unix.ADDR_INET (_, bp) -> bp
          | _ -> p
        in
        (Some mfd, bp)
  in
  (* Slow-query logging reports the request's trace tree, so the tracer
     must be on for the spans to exist. *)
  if config.slow_query_ms > 0. then Obs.Trace.set_enabled true;
  let stop_r, stop_w = Unix.pipe () in
  {
    cfg = config;
    sh;
    st = Server_stats.create ~now:(Unix.gettimeofday ());
    listen_fd = fd;
    bound_port;
    metrics_fd;
    metrics_bound_port;
    stop_r;
    stop_w;
    stopping = false;
    conns = [];
    queued = 0;
    pending_commits = [];
    commit_deadline = None;
  }

let port t = t.bound_port
let metrics_port t = t.metrics_bound_port
let stats t = t.st
let shared t = t.sh

let metrics_doc t =
  Metrics.render ~now:(Unix.gettimeofday ()) ~stats:t.st
    ~cat:(Session.catalog t.sh) ~memtier:(Session.memtier t.sh)
    ~txns:(Session.txns t.sh)

let stop t =
  (* A single byte on the self-pipe wakes the select; writing is
     async-signal-safe, so Ctrl-C handlers may call this directly. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

(* ---------------- output ---------------- *)

let push_response conn id resp =
  Buffer.add_bytes conn.out (Protocol.encode_response ~id resp)

let try_flush conn =
  (* Write whatever the socket accepts; the conn stays registered for
     writability while anything is left. *)
  let len = Buffer.length conn.out in
  if len > conn.out_sent then begin
    let chunk = Buffer.to_bytes conn.out in
    match Unix.write conn.fd chunk conn.out_sent (len - conn.out_sent) with
    | n -> conn.out_sent <- conn.out_sent + n
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        conn.closing <- true;
        conn.out_sent <- Buffer.length conn.out
  end;
  if conn.out_sent = Buffer.length conn.out && conn.out_sent > 0 then begin
    Buffer.clear conn.out;
    conn.out_sent <- 0
  end

let output_pending conn = Buffer.length conn.out > conn.out_sent

(* ---------------- connection lifecycle ---------------- *)

let close_conn t conn =
  if List.memq conn t.conns then begin
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    t.queued <- t.queued - Queue.length conn.pending;
    Server_stats.queue_depth t.st t.queued;
    Queue.clear conn.pending;
    (* Purge COMMITs the dead connection staged in the open window:
       nobody is owed the Ack and its latency must not pollute the
       histogram. The journal-staged intent is already applied and must
       still be forced — if no live staging remains to carry the window,
       force it now rather than leaving acknowledged-to-nobody writes
       hanging on a deadline that was just cleared. *)
    let mine, others =
      List.partition (fun (c, _, _) -> c == conn) t.pending_commits
    in
    if mine <> [] then begin
      t.pending_commits <- others;
      if others = [] then begin
        t.commit_deadline <- None;
        ignore (Session.commit_force_shared t.sh)
      end
    end;
    Session.close conn.session;
    Server_stats.session_closed t.st;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

let reject_connection t fd =
  (* Over max-sessions: one typed Overloaded frame, then the door. The
     socket is fresh (blocking) and the frame small, but a single write
     is still allowed to be short — e.g. a tiny send buffer on a slow
     client — and a truncated frame would be undecodable, so loop until
     the whole frame is out. *)
  Server_stats.overloaded t.st;
  let frame =
    Protocol.encode_response ~id:0L
      (Protocol.Overloaded
         (Printf.sprintf "server at session limit (%d)" t.cfg.max_sessions))
  in
  let len = Bytes.length frame in
  let rec write_all off =
    if off < len then
      match Unix.write fd frame off (len - off) with
      | 0 -> ()
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> ()
  in
  write_all 0;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_connections t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    -> ()
  | fd, _peer ->
      if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
      else if List.length t.conns >= t.cfg.max_sessions then
        reject_connection t fd
      else begin
        Unix.set_nonblock fd;
        let conn =
          {
            fd;
            session = Session.create t.sh;
            framer = Protocol.Framer.create ();
            pending = Queue.create ();
            out = Buffer.create 256;
            out_sent = 0;
            closing = false;
            last_active = Unix.gettimeofday ();
          }
        in
        t.conns <- conn :: t.conns;
        Server_stats.session_opened t.st
      end

(* ---------------- input ---------------- *)

let enqueue_request t conn id req =
  if t.queued >= t.cfg.max_queue then begin
    Server_stats.overloaded t.st;
    push_response conn id
      (Protocol.Overloaded
         (Printf.sprintf "request queue full (%d pending)" t.queued))
  end
  else begin
    Queue.add (id, req) conn.pending;
    t.queued <- t.queued + 1;
    Server_stats.queue_depth t.st t.queued
  end

let drain_frames t conn =
  let continue = ref true in
  while !continue do
    match Protocol.Framer.next conn.framer with
    | Ok None -> continue := false
    | Ok (Some payload) -> (
        match Protocol.decode_request payload with
        | Ok (id, req) -> enqueue_request t conn id req
        | Result.Error err ->
            push_response conn 0L
              (Protocol.Error (Protocol.error_to_string err)))
    | Result.Error err ->
        (* Length prefix beyond max_payload: the byte stream is beyond
           recovery. Answer, then close after the answer drains. *)
        push_response conn 0L
          (Protocol.Error (Protocol.error_to_string err));
        conn.closing <- true;
        continue := false
  done

let read_conn t conn =
  let scratch = Bytes.create 65536 in
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> close_conn t conn
  | n ->
      conn.last_active <- Unix.gettimeofday ();
      Protocol.Framer.feed conn.framer scratch n;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn

(* ---------------- execution ---------------- *)

let device_stats t =
  Storage.Block_device.Stats.get
    (Relation.Catalog.device (Session.catalog t.sh))

(* Close the group-commit window: one marker and one log force cover
   every staged COMMIT, then all of them are acknowledged at once. No
   requester was answered before this point, so a crash inside the
   window loses nothing a client was told is durable. *)
let flush_group_commits t =
  match t.pending_commits with
  | [] -> t.commit_deadline <- None
  | newest_first ->
      let pending = List.rev newest_first in
      t.pending_commits <- [];
      t.commit_deadline <- None;
      let batch, _, io =
        Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
            Session.commit_force_shared t.sh)
      in
      let count = List.length pending in
      let io_share = io / count in
      let now = Unix.gettimeofday () in
      List.iteri
        (fun i (conn, id, t0) ->
          let io =
            if i = 0 then io - (io_share * (count - 1)) else io_share
          in
          Server_stats.record t.st ~op:"commit" ~seconds:(now -. t0) ~io;
          if List.memq conn t.conns then
            push_response conn id
              (Protocol.Ack
                 (Printf.sprintf "committed (group commit batch of %d)" batch)))
        pending

let execute_one t conn id req =
  t.queued <- t.queued - 1;
  Server_stats.queue_depth t.st t.queued;
  match req with
  | Protocol.Commit
    when Session.degraded_reason_shared t.sh <> None
         && t.cfg.group_commit > 0. ->
      (* Degraded COMMITs must not enter the batch: staging would dirty
         the window for everyone and the force would touch a damaged
         image. *)
      let reason = Option.get (Session.degraded_reason_shared t.sh) in
      push_response conn id
        (Protocol.Read_only
           (Printf.sprintf "server is read-only: %s" reason))
  | Protocol.Commit when t.cfg.group_commit > 0. -> (
      (* Stage now, answer at the window flush — except a conflict,
         which aborted the transaction without staging anything and is
         answered immediately. *)
      match Session.stage_commit conn.session with
      | Ok () ->
          let now = Unix.gettimeofday () in
          t.pending_commits <- (conn, id, now) :: t.pending_commits;
          if t.commit_deadline = None then
            t.commit_deadline <- Some (now +. t.cfg.group_commit)
      | Result.Error m -> push_response conn id (Protocol.Conflict m)
      | exception e ->
          push_response conn id
            (Protocol.Error ("commit failed: " ^ Printexc.to_string e)))
  | req ->
      (* A rollback must not outrun COMMITs already staged ahead of it:
         force the open batch first, then let it run. *)
      if req = Protocol.Rollback && t.pending_commits <> [] then
        flush_group_commits t;
      let op = Protocol.request_op_name req in
      let (resp, span), seconds, io =
        match req with
        | Protocol.Stats ->
            let snap () =
              ( Protocol.Stats_reply
                  (Server_stats.snapshot t.st ~now:(Unix.gettimeofday ())
                     ~io:(device_stats t)),
                None )
            in
            Harness.Measure.timed_io (Session.catalog t.sh) snap
        | Protocol.Metrics ->
            Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
                (Protocol.Ack (metrics_doc t), None))
        | req ->
            (* The root span of the request's trace tree; [traced]
               returns it only when tracing is enabled. *)
            Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
                Obs.Trace.traced ~info:op "request" (fun () ->
                    Session.handle conn.session req))
      in
      Server_stats.record t.st ~op ~seconds ~io;
      (match span with
      | Some sp
        when t.cfg.slow_query_ms > 0.
             && seconds *. 1000. >= t.cfg.slow_query_ms ->
          Printf.eprintf "[slow query] %.1f ms (threshold %.1f ms)\n%s%!"
            (seconds *. 1000.) t.cfg.slow_query_ms (Obs.Trace.render sp)
      | _ -> ());
      push_response conn id resp

let execute_round t ~limit =
  (* Round-robin: one request per ready session per pass, so a chatty
     pipeliner cannot starve its neighbours. *)
  let budget = ref limit in
  let progress = ref true in
  while !budget > 0 && !progress do
    progress := false;
    List.iter
      (fun conn ->
        if !budget > 0 && not (Queue.is_empty conn.pending) then begin
          let id, req = Queue.take conn.pending in
          execute_one t conn id req;
          decr budget;
          progress := true
        end)
      (List.rev t.conns)
  done

(* ---------------- idle reaping ---------------- *)

(* A leaked client — connected, silent, holding a session against
   max_sessions — gets a typed goodbye and the door. Only genuinely
   quiescent connections qualify: anything with parsed-but-unanswered
   requests or undrained output is still being served. *)
let reap_idle t now =
  if t.cfg.idle_timeout > 0. then
    List.iter
      (fun conn ->
        if
          (not conn.closing)
          && Queue.is_empty conn.pending
          && (not (output_pending conn))
          && now -. conn.last_active > t.cfg.idle_timeout
        then begin
          push_response conn 0L
            (Protocol.Goodbye
               (Printf.sprintf "idle for %.0fs, closing" t.cfg.idle_timeout));
          conn.closing <- true
        end)
      t.conns

(* ---------------- metrics endpoint ----------------

   Plain HTTP/1.0, one request per connection: read whatever the
   scraper sends (the request line is ignored — every path gets the
   exposition), write the document, close. The accepted socket is
   blocking with a short receive timeout, so a scraper that connects
   and says nothing cannot wedge the loop for more than a second. *)

let serve_metrics_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let scratch = Bytes.create 1024 in
  (try ignore (Unix.read fd scratch 0 (Bytes.length scratch))
   with Unix.Unix_error _ -> ());
  let body = metrics_doc t in
  let resp =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  let data = Bytes.of_string resp in
  let len = Bytes.length data in
  let rec write_all off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | 0 -> ()
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> ()
  in
  write_all 0;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_metrics t =
  match t.metrics_fd with
  | None -> ()
  | Some mfd -> (
      match Unix.accept mfd with
      | exception Unix.Unix_error _ -> ()
      | fd, _peer -> serve_metrics_conn t fd)

(* ---------------- the loop ---------------- *)

let serve t =
  let scratch = Bytes.create 16 in
  let finished = ref false in
  while not !finished do
    let reads =
      t.stop_r
      :: (if t.stopping then [] else [ t.listen_fd ])
      @ (match t.metrics_fd with
        | Some mfd when not t.stopping -> [ mfd ]
        | _ -> [])
      @ List.filter_map
          (fun c -> if c.closing then None else Some c.fd)
          t.conns
    in
    let writes =
      List.filter_map
        (fun c -> if output_pending c then Some c.fd else None)
        t.conns
    in
    let base_timeout =
      (* With idle reaping on, wake often enough that a connection is
         closed within ~a quarter timeout of earning it. *)
      if t.cfg.idle_timeout > 0. then
        Float.min 1.0 (Float.max 0.02 (t.cfg.idle_timeout /. 4.))
      else 1.0
    in
    let timeout =
      (* Never sleep past the close of an open group-commit window. *)
      match t.commit_deadline with
      | None -> base_timeout
      | Some dl ->
          Float.max 0.0 (Float.min base_timeout (dl -. Unix.gettimeofday ()))
    in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem t.stop_r readable then begin
      (try ignore (Unix.read t.stop_r scratch 0 (Bytes.length scratch))
       with Unix.Unix_error _ -> ());
      t.stopping <- true
    end;
    if (not t.stopping) && List.mem t.listen_fd readable then
      accept_connections t;
    (match t.metrics_fd with
    | Some mfd when (not t.stopping) && List.mem mfd readable ->
        accept_metrics t
    | _ -> ());
    List.iter
      (fun conn -> if List.mem conn.fd readable then read_conn t conn)
      t.conns;
    execute_round t
      ~limit:(if t.stopping then t.queued else t.cfg.max_inflight);
    (* Close the window at its deadline — or as soon as no live session
       holds buffered writes: then no further COMMIT can join the batch
       and waiting only delays the acknowledgements (the commit-siblings
       rule). A session mid-transaction keeps the window open so its
       COMMIT can share the force, bounded by the deadline. *)
    (match t.commit_deadline with
    | Some dl
      when t.stopping
           || Unix.gettimeofday () >= dl
           || not
                (List.exists
                   (fun c ->
                     (not c.closing) && Session.has_pending_writes c.session)
                   t.conns) ->
        flush_group_commits t
    | Some _ | None -> ());
    if not t.stopping then reap_idle t (Unix.gettimeofday ());
    List.iter
      (fun conn ->
        if List.mem conn.fd writable || output_pending conn then
          try_flush conn)
      t.conns;
    List.iter
      (fun conn ->
        if conn.closing && not (output_pending conn) then close_conn t conn)
      t.conns;
    if t.stopping && t.queued = 0 then begin
      (* Everything parsed has been answered; push the last bytes out
         (sockets willing) and leave. *)
      List.iter (fun conn -> try_flush conn) t.conns;
      List.iter (fun conn -> close_conn t conn) t.conns;
      finished := true
    end
  done;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.metrics_fd with
  | Some mfd -> ( try Unix.close mfd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Session.flush_shared t.sh
