type config = {
  host : string;
  port : int;
  max_sessions : int;
  max_inflight : int;
  max_queue : int;
  group_commit : float;
  idle_timeout : float;
  metrics_port : int option;
  slow_query_ms : float;
  replica_of : (string * int) option;
      (* run as a hot standby tailing this primary's journal stream *)
  backend : Reactor.Backend.kind option;
      (* readiness backend; None = poll(2) when available *)
  write_high_water : int;
      (* per-connection output buffer bound; crossing it is backpressure *)
}

let default_config =
  { host = "127.0.0.1"; port = 7468; max_sessions = 64; max_inflight = 32;
    max_queue = 1024; group_commit = 0.; idle_timeout = 0.;
    metrics_port = None; slow_query_ms = 0.; replica_of = None;
    backend = None; write_high_water = 4 * 1024 * 1024 }

type conn = {
  fd : Unix.file_descr;
  session : Session.t;
  framer : Protocol.Framer.t;
  pending : (int64 * Protocol.request) Queue.t;
  wr : Reactor.Writer.t;
  mutable closing : bool;  (* close once the output buffer drains *)
  mutable force_close : bool;  (* close this tick, drained or not *)
  mutable overflow : bool;  (* write buffer burst its high-water mark *)
  mutable last_active : float;  (* last byte received; idle reaping *)
  mutable repl_from : int option;
      (* Some lsn: this connection subscribed to the journal stream and
         the next frame shipped to it starts at [lsn] *)
  mutable repl_id : int64;  (* request id the frames answer under *)
  mutable repl_acked : int;  (* highest Repl_ack received *)
}

(* The replica's link back to its primary: one client connection
   carrying the Repl_subscribe and the frame stream. The dial is fully
   event-driven — non-blocking connect completed by a writability
   callback, bounded by a connect timer, re-dialled by a backoff timer
   whenever it drops — so an unresponsive primary costs the loop
   nothing and commit-ack latency is never quantized to a poll tick. *)
type upstream = {
  uhost : string;
  uport : int;
  mutable ufd : Unix.file_descr option;
  mutable uconnected : bool;
  mutable uframer : Protocol.Framer.t;
  engine : Replica.t;
  mutable utimer : Reactor.timer option;  (* redial backoff or connect bound *)
}

type t = {
  cfg : config;
  sh : Session.shared;
  st : Server_stats.t;
  reactor : Reactor.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable conns : conn list;
  mutable nconns : int;  (* length of [conns]; admission is O(1) *)
  mutable queued : int;  (* total pending requests across connections *)
  mutable pending_commits : (conn * int64 * float) list;
      (* COMMITs staged in the open group-commit window, newest first;
         the float is the staging time, for the latency histogram *)
  mutable commit_timer : Reactor.timer option;  (* window-close timer *)
  mutable parked_acks : (conn * int64 * int * Protocol.response) list;
      (* semi-synchronous replication: commit Acks held back until every
         live subscriber has acknowledged applying through the commit's
         LSN (the int). Released immediately when no subscriber is
         connected (asynchronous fallback). *)
  upstream : upstream option;  (* Some _ iff cfg.replica_of is set *)
  mutable http : Http_endpoint.t option;  (* live while serving *)
}

(* A standby that stops draining its stream holds the semi-sync ack
   floor down and would pin its bounded write buffer full forever; past
   this stall it is cut loose (it resubscribes from its applied LSN on
   reconnect, losing nothing). *)
let repl_stall_timeout = 5.0

(* A non-subscriber whose socket accepts nothing for this long while
   output is pending is gone in all but name. With idle reaping on,
   the idle timeout governs instead. *)
let default_stall_grace = 5.0

let create ?(config = default_config) sh =
  (* A peer hanging up mid-write must surface as EPIPE, not kill the
     daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd addr;
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let metrics_fd, metrics_bound_port =
    match config.metrics_port with
    | None -> (None, 0)
    | Some p ->
        let mfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt mfd Unix.SO_REUSEADDR true;
        Unix.bind mfd
          (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, p));
        Unix.listen mfd 16;
        let bp =
          match Unix.getsockname mfd with
          | Unix.ADDR_INET (_, bp) -> bp
          | _ -> p
        in
        (Some mfd, bp)
  in
  (* Slow-query logging reports the request's trace tree, so the tracer
     must be on for the spans to exist. *)
  if config.slow_query_ms > 0. then Obs.Trace.set_enabled true;
  let upstream =
    match config.replica_of with
    | None -> None
    | Some (uhost, uport) ->
        if not (Session.durable sh) then
          invalid_arg "Dispatcher.create: a replica must be durable";
        (* A standby never accepts local mutations: every write must
           arrive through the journal stream, or primary and replica
           histories fork. Session.reload carries the flag across
           applied batches. *)
        Relation.Catalog.degrade (Session.catalog sh)
          (Printf.sprintf "replica of %s:%d (serving reads only)" uhost
             uport);
        Some
          {
            uhost;
            uport;
            ufd = None;
            uconnected = false;
            uframer = Protocol.Framer.create ();
            engine = Replica.create ();
            utimer = None;
          }
  in
  let stop_r, stop_w = Unix.pipe () in
  {
    cfg = config;
    sh;
    st = Server_stats.create ~now:(Unix.gettimeofday ());
    reactor = Reactor.create ?backend:config.backend ();
    listen_fd = fd;
    bound_port;
    metrics_fd;
    metrics_bound_port;
    stop_r;
    stop_w;
    stopping = false;
    conns = [];
    nconns = 0;
    queued = 0;
    pending_commits = [];
    commit_timer = None;
    parked_acks = [];
    upstream;
    http = None;
  }

let port t = t.bound_port
let metrics_port t = t.metrics_bound_port
let stats t = t.st
let shared t = t.sh
let backend t = Reactor.backend t.reactor

let subscribers t =
  List.filter (fun c -> c.repl_from <> None && not c.closing) t.conns

let metrics_doc t =
  let repl =
    match t.upstream with
    | Some u ->
        Some
          {
            Metrics.r_role = "replica";
            r_lag_bytes = Replica.lag_bytes u.engine;
            r_applied_lsn = Replica.applied_lsn u.engine;
            r_durable_lsn = Replica.primary_lsn u.engine;
            r_subscribers = 0;
          }
    | None ->
        if Session.durable t.sh then
          let lsn = Session.durable_lsn_shared t.sh in
          Some
            {
              Metrics.r_role = "primary";
              r_lag_bytes = 0;
              r_applied_lsn = lsn;
              r_durable_lsn = lsn;
              r_subscribers = List.length (subscribers t);
            }
        else None
  in
  Metrics.render ?repl ~now:(Unix.gettimeofday ()) ~stats:t.st
    ~cat:(Session.catalog t.sh) ~memtier:(Session.memtier t.sh)
    ~txns:(Session.txns t.sh) ()

let stop t =
  (* A single byte on the self-pipe wakes the reactor; writing is
     async-signal-safe, so Ctrl-C handlers may call this directly. *)
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let release_listener t =
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

(* ---------------- output ---------------- *)

let output_pending conn = Reactor.Writer.has_pending conn.wr

(* Queue a frame under the backpressure contract. A connection whose
   buffer bursts the high-water mark is a consumer slower than the
   server for longer than the bound can absorb: it gets one typed
   Overloaded frame (allowed past the mark so the close is explicable
   on the wire), its unanswered requests are dropped, and the
   connection closes once — and only if — the client drains what was
   already owed. Replication subscribers are never cut here: shipping
   is flow-controlled in [pump_replication] and a genuinely stalled
   standby is reaped by [repl_stall_timeout]. *)
let push_frame t conn frame =
  if not (conn.force_close || conn.overflow) then begin
    let under_hw = Reactor.Writer.push conn.wr frame in
    if (not under_hw) && conn.repl_from = None then begin
      conn.overflow <- true;
      conn.closing <- true;
      Server_stats.overloaded t.st;
      ignore
        (Reactor.Writer.push conn.wr
           (Protocol.encode_response ~id:0L
              (Protocol.Overloaded
                 (Printf.sprintf
                    "slow consumer: write buffer over %d bytes, closing"
                    (Reactor.Writer.high_water conn.wr)))));
      t.queued <- t.queued - Queue.length conn.pending;
      Queue.clear conn.pending;
      Server_stats.queue_depth t.st t.queued
    end
  end

let push_response t conn id resp =
  push_frame t conn (Protocol.encode_response ~id resp)

(* Write what the socket accepts and keep poll interest equal to "has
   pending bytes" — write interest on an idle socket would spin the
   loop. *)
let flush_conn t conn =
  if output_pending conn then begin
    match Reactor.Writer.flush conn.wr ~now:(Unix.gettimeofday ()) with
    | Reactor.Writer.Drained | Reactor.Writer.Pending -> ()
    | Reactor.Writer.Peer_gone ->
        conn.closing <- true;
        conn.force_close <- true
  end;
  Reactor.set_write_interest t.reactor conn.fd (output_pending conn)

(* ---------------- semi-synchronous commit acks ---------------- *)

(* Push every parked commit Ack whose LSN every live subscriber has
   acknowledged applying. With no subscribers left the floor is +inf:
   everything parked is released (asynchronous fallback — a dead
   standby must not wedge the primary's commits forever). *)
let release_parked_acks t =
  match t.parked_acks with
  | [] -> ()
  | parked ->
      let floor =
        List.fold_left
          (fun acc c -> min acc c.repl_acked)
          max_int (subscribers t)
      in
      let ready, still =
        List.partition (fun (_, _, lsn, _) -> lsn <= floor) parked
      in
      t.parked_acks <- still;
      List.iter
        (fun (conn, id, _, resp) ->
          if List.memq conn t.conns then push_response t conn id resp)
        (List.rev ready)

(* Park a commit Ack until the subscribers catch up — or push it right
   away when nobody subscribes. The write itself is already durable
   locally; only the acknowledgement waits, so a primary crash between
   force and ack can lose nothing a client was told was committed, and
   a replica promoted after a primary kill holds every acked write. *)
let park_or_push t conn id ~lsn resp =
  if subscribers t = [] then push_response t conn id resp
  else t.parked_acks <- (conn, id, lsn, resp) :: t.parked_acks

(* ---------------- group-commit window ---------------- *)

let clear_commit_timer t =
  match t.commit_timer with
  | Some tm ->
      Reactor.cancel t.reactor tm;
      t.commit_timer <- None
  | None -> ()

(* Close the group-commit window: one marker and one log force cover
   every staged COMMIT, then all of them are acknowledged at once. No
   requester was answered before this point, so a crash inside the
   window loses nothing a client was told is durable. *)
let flush_group_commits t =
  clear_commit_timer t;
  match t.pending_commits with
  | [] -> ()
  | newest_first ->
      let pending = List.rev newest_first in
      t.pending_commits <- [];
      let batch, _, io =
        Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
            Session.commit_force_shared t.sh)
      in
      let count = List.length pending in
      let io_share = io / count in
      let now = Unix.gettimeofday () in
      let lsn = Session.durable_lsn_shared t.sh in
      List.iteri
        (fun i (conn, id, t0) ->
          let io =
            if i = 0 then io - (io_share * (count - 1)) else io_share
          in
          Server_stats.record t.st ~op:"commit" ~seconds:(now -. t0) ~io;
          if List.memq conn t.conns then
            park_or_push t conn id ~lsn
              (Protocol.Ack
                 (Printf.sprintf
                    "committed (group commit batch of %d) lsn %d" batch lsn)))
        pending

(* ---------------- connection lifecycle ---------------- *)

let close_conn t conn =
  if List.memq conn t.conns then begin
    t.conns <- List.filter (fun c -> c != conn) t.conns;
    t.nconns <- t.nconns - 1;
    t.queued <- t.queued - Queue.length conn.pending;
    Server_stats.queue_depth t.st t.queued;
    Queue.clear conn.pending;
    (* Purge COMMITs the dead connection staged in the open window:
       nobody is owed the Ack and its latency must not pollute the
       histogram. The journal-staged intent is already applied and must
       still be forced — if no live staging remains to carry the window,
       force it now rather than leaving acknowledged-to-nobody writes
       hanging on a deadline that was just cleared. *)
    let mine, others =
      List.partition (fun (c, _, _) -> c == conn) t.pending_commits
    in
    if mine <> [] then begin
      t.pending_commits <- others;
      if others = [] then begin
        clear_commit_timer t;
        ignore (Session.commit_force_shared t.sh)
      end
    end;
    (* Acks parked for the dead connection are owed to nobody. *)
    t.parked_acks <-
      List.filter (fun (c, _, _, _) -> c != conn) t.parked_acks;
    Session.close conn.session;
    Server_stats.session_closed t.st;
    Reactor.deregister t.reactor conn.fd;
    (* Drain unread inbound bytes before closing: close(2) with data
       still in the receive queue makes the kernel answer with RST,
       which destroys the typed goodbye frame in flight to the peer.
       Bounded — a peer still spraying bytes gets the reset it earned. *)
    (let scratch = Bytes.create 65536 in
     let rec drain n =
       if n > 0 then
         match Unix.read conn.fd scratch 0 65536 with
         | 0 -> ()
         | _ -> drain (n - 1)
         | exception Unix.Unix_error _ -> ()
     in
     drain 16);
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* A dead subscriber no longer holds the ack floor down; recompute
       it over the survivors (or release everything if none remain). *)
    if conn.repl_from <> None then release_parked_acks t
  end

let reject_connection t fd reason =
  (* One typed Overloaded frame, then the door. The socket is fresh
     (blocking) and the frame small, but a single write is still
     allowed to be short — e.g. a tiny send buffer on a slow client —
     and a truncated frame would be undecodable, so loop until the
     whole frame is out. *)
  Server_stats.overloaded t.st;
  let frame = Protocol.encode_response ~id:0L (Protocol.Overloaded reason) in
  let len = Bytes.length frame in
  let rec write_all off =
    if off < len then
      match Unix.write fd frame off (len - off) with
      | 0 -> ()
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> ()
  in
  write_all 0;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------------- input ---------------- *)

let enqueue_request t conn id req =
  if t.queued >= t.cfg.max_queue then begin
    Server_stats.overloaded t.st;
    push_response t conn id
      (Protocol.Overloaded
         (Printf.sprintf "request queue full (%d pending)" t.queued))
  end
  else begin
    Queue.add (id, req) conn.pending;
    t.queued <- t.queued + 1;
    Server_stats.queue_depth t.st t.queued
  end

let drain_frames t conn =
  let continue = ref true in
  while !continue do
    match Protocol.Framer.next conn.framer with
    | Ok None -> continue := false
    | Ok (Some payload) -> (
        match Protocol.decode_request payload with
        | Ok (id, req) -> enqueue_request t conn id req
        | Result.Error err ->
            push_response t conn 0L
              (Protocol.Error (Protocol.error_to_string err)))
    | Result.Error err ->
        (* Length prefix beyond max_payload: the byte stream is beyond
           recovery. Answer, then close after the answer drains. *)
        push_response t conn 0L
          (Protocol.Error (Protocol.error_to_string err));
        conn.closing <- true;
        continue := false
  done

let read_conn t conn =
  let scratch = Bytes.create 65536 in
  match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
  | 0 -> close_conn t conn
  | n when conn.closing ->
      (* A cut-off consumer gets no further service; discarding (rather
         than ignoring) its bytes keeps the receive queue empty so the
         eventual close delivers the final typed frame instead of an
         RST. *)
      ignore n
  | n ->
      conn.last_active <- Unix.gettimeofday ();
      Protocol.Framer.feed conn.framer scratch n;
      drain_frames t conn
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t conn

let accept_connections t =
  (* Drain the whole accept backlog: with thousands of clients dialling
     at once, one accept per readiness wakeup would leave most of the
     burst waiting a full loop turn each. *)
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _peer ->
        if t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
        else if t.nconns >= t.cfg.max_sessions then
          reject_connection t fd
            (Printf.sprintf "server at session limit (%d)" t.cfg.max_sessions)
        else if
          Reactor.backend t.reactor = Reactor.Backend.Select
          && Reactor.Backend.fd_int fd > Reactor.Backend.select_fd_limit
        then
          (* The select fallback cannot wait on fds this high; a typed
             refusal beats a crashed loop. The poll backend has no such
             ceiling. *)
          reject_connection t fd
            (Printf.sprintf "select backend cannot serve fd %d (limit %d)"
               (Reactor.Backend.fd_int fd) Reactor.Backend.select_fd_limit)
        else begin
          Unix.set_nonblock fd;
          let conn =
            {
              fd;
              session = Session.create t.sh;
              framer = Protocol.Framer.create ();
              pending = Queue.create ();
              wr =
                Reactor.Writer.create ~high_water:t.cfg.write_high_water
                  ~now:(Unix.gettimeofday ()) fd;
              closing = false;
              force_close = false;
              overflow = false;
              last_active = Unix.gettimeofday ();
              repl_from = None;
              repl_id = 0L;
              repl_acked = 0;
            }
          in
          t.conns <- conn :: t.conns;
          t.nconns <- t.nconns + 1;
          Reactor.register t.reactor fd
            ~readable:(fun () -> read_conn t conn)
            ~writable:(fun () -> flush_conn t conn)
            ();
          Reactor.set_write_interest t.reactor fd false;
          Server_stats.session_opened t.st
        end
  done

(* ---------------- execution ---------------- *)

let device_stats t =
  Storage.Block_device.Stats.get
    (Relation.Catalog.device (Session.catalog t.sh))

(* Slow-query logging must never stall the event loop: the span tree is
   rendered under a byte cap (a pathological plan can hold thousands of
   spans) and written best-effort — if stderr's pipe is full (a wedged
   log collector), the entry is dropped and counted rather than parking
   every session behind a blocking write. *)
let slow_query_max_bytes = 4096
let slow_queries_dropped = ref 0

let log_slow_query t ~seconds sp =
  let doc =
    Printf.sprintf "[slow query] %.1f ms (threshold %.1f ms)\n%s"
      (seconds *. 1000.) t.cfg.slow_query_ms
      (Obs.Trace.render ~max_bytes:slow_query_max_bytes sp)
  in
  let writable =
    try Reactor.Backend.wait_fd Unix.stderr `Write ~timeout:0.
    with _ -> false
  in
  if not writable then incr slow_queries_dropped
  else
    (* One capped write; a short write (the pipe filled mid-entry) loses
       the tail of this entry only, never progress. *)
    match Unix.write_substring Unix.stderr doc 0 (String.length doc) with
    | _ -> ()
    | exception Unix.Unix_error _ -> incr slow_queries_dropped

(* The replication ops live in the dispatcher, not the session: they
   concern connections and the shared journal, never a session's
   transaction. *)
let handle_repl t conn id req =
  match req with
  | Protocol.Repl_subscribe { from_lsn } -> (
      if t.upstream <> None then
        push_response t conn id
          (Protocol.Error "this server is a replica; subscribe to the primary")
      else
        match Relation.Catalog.journal (Session.catalog t.sh) with
        | None ->
            push_response t conn id
              (Protocol.Error "replication requires a durable server")
        | Some j ->
            let base = Storage.Journal.base_lsn j in
            let dur = Storage.Journal.durable_lsn j in
            if from_lsn < base || from_lsn > dur then
              push_response t conn id
                (Protocol.Invalid
                   (Printf.sprintf
                      "from_lsn %d outside retained log [%d, %d]" from_lsn
                      base dur))
            else begin
              conn.repl_from <- Some from_lsn;
              conn.repl_id <- id;
              conn.repl_acked <- from_lsn;
              push_response t conn id
                (Protocol.Repl_state
                   { role = Protocol.Primary; durable_lsn = dur;
                     applied_lsn = dur })
            end)
  | Protocol.Repl_ack { lsn } ->
      (* Fire-and-forget: no response frame. Only meaningful from a
         subscribed connection; raising the floor may free parked
         commit Acks. *)
      if conn.repl_from <> None && lsn > conn.repl_acked then begin
        conn.repl_acked <- lsn;
        release_parked_acks t
      end
  | Protocol.Repl_status ->
      let state =
        match t.upstream with
        | Some u ->
            Protocol.Repl_state
              { role = Protocol.Replica;
                durable_lsn = Replica.primary_lsn u.engine;
                applied_lsn = Replica.applied_lsn u.engine }
        | None ->
            let lsn = Session.durable_lsn_shared t.sh in
            Protocol.Repl_state
              { role = Protocol.Primary; durable_lsn = lsn;
                applied_lsn = lsn }
      in
      push_response t conn id state
  | Protocol.Shard_map_req ->
      (* An unsharded server is a degenerate one-shard cluster: a single
         range covering the whole interval space. Clients discover
         topology the same way against rikitd and the router. *)
      push_response t conn id
        (Protocol.Shard_map
           [ { Protocol.shard_lo = min_int; shard_hi = max_int;
               endpoints = [ (t.cfg.host, t.bound_port) ] } ])
  | _ -> assert false

let execute_one t conn id req =
  t.queued <- t.queued - 1;
  Server_stats.queue_depth t.st t.queued;
  match req with
  | Protocol.Repl_subscribe _ | Protocol.Repl_ack _ | Protocol.Repl_status
  | Protocol.Shard_map_req ->
      handle_repl t conn id req
  | Protocol.Commit
    when Session.degraded_reason_shared t.sh <> None
         && t.cfg.group_commit > 0. ->
      (* Degraded COMMITs must not enter the batch: staging would dirty
         the window for everyone and the force would touch a damaged
         image. *)
      let reason = Option.get (Session.degraded_reason_shared t.sh) in
      push_response t conn id
        (Protocol.Read_only
           (Printf.sprintf "server is read-only: %s" reason))
  | Protocol.Commit when t.cfg.group_commit > 0. -> (
      (* Stage now, answer at the window flush — except a conflict,
         which aborted the transaction without staging anything and is
         answered immediately. The window close is a reactor timer, not
         loop timeout math. *)
      match Session.stage_commit conn.session with
      | Ok () ->
          let now = Unix.gettimeofday () in
          t.pending_commits <- (conn, id, now) :: t.pending_commits;
          if t.commit_timer = None then
            t.commit_timer <-
              Some
                (Reactor.after t.reactor t.cfg.group_commit (fun () ->
                     t.commit_timer <- None;
                     flush_group_commits t))
      | Result.Error m -> push_response t conn id (Protocol.Conflict m)
      | exception e ->
          push_response t conn id
            (Protocol.Error ("commit failed: " ^ Printexc.to_string e)))
  | req ->
      (* A rollback must not outrun COMMITs already staged ahead of it:
         force the open batch first, then let it run. *)
      if req = Protocol.Rollback && t.pending_commits <> [] then
        flush_group_commits t;
      let op = Protocol.request_op_name req in
      let (resp, span), seconds, io =
        match req with
        | Protocol.Stats ->
            let snap () =
              ( Protocol.Stats_reply
                  (Server_stats.snapshot t.st ~now:(Unix.gettimeofday ())
                     ~io:(device_stats t)),
                None )
            in
            Harness.Measure.timed_io (Session.catalog t.sh) snap
        | Protocol.Metrics ->
            Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
                (Protocol.Ack (metrics_doc t), None))
        | req ->
            (* The root span of the request's trace tree; [traced]
               returns it only when tracing is enabled. *)
            Harness.Measure.timed_io (Session.catalog t.sh) (fun () ->
                Obs.Trace.traced ~info:op "request" (fun () ->
                    Session.handle conn.session req))
      in
      Server_stats.record t.st ~op ~seconds ~io;
      (match span with
      | Some sp
        when t.cfg.slow_query_ms > 0.
             && seconds *. 1000. >= t.cfg.slow_query_ms ->
          log_slow_query t ~seconds sp
      | _ -> ());
      (* A synchronous COMMIT that succeeded is durable now; its Ack
         rides the same semi-sync rule as a group-commit batch. *)
      (match (req, resp) with
      | Protocol.Commit, Protocol.Ack _ ->
          park_or_push t conn id ~lsn:(Session.durable_lsn_shared t.sh) resp
      | _ -> push_response t conn id resp)

let execute_round t ~limit =
  (* Round-robin: one request per ready session per pass, so a chatty
     pipeliner cannot starve its neighbours. The accept-order snapshot
     is taken once — re-reversing [t.conns] every pass made a 64-session
     pipelined tick quadratic in allocation. A connection closed by an
     earlier pass is skipped naturally: close_conn clears its queue. *)
  let order = List.rev t.conns in
  let budget = ref limit in
  let progress = ref true in
  while !budget > 0 && !progress do
    progress := false;
    List.iter
      (fun conn ->
        if !budget > 0 && not (Queue.is_empty conn.pending) then begin
          let id, req = Queue.take conn.pending in
          execute_one t conn id req;
          decr budget;
          progress := true
        end)
      order
  done

(* ---------------- replication fan-out (primary side) ---------------- *)

(* Ship newly durable journal bytes to every subscriber, chunked well
   under the frame payload cap. Bytes go out in LSN order on each
   connection, so a subscriber's stream is always a contiguous prefix.
   Shipping is flow-controlled by the subscriber's bounded writer: a
   standby that stops draining keeps its cursor parked (and is
   eventually reaped by the stall timeout) instead of growing an
   unbounded buffer or wedging the loop — other subscribers and the
   semi-sync ack path continue unimpeded. *)
let repl_chunk_bytes = 1 lsl 20

let pump_replication t =
  match Relation.Catalog.journal (Session.catalog t.sh) with
  | None -> ()
  | Some j ->
      let dur = Storage.Journal.durable_lsn j in
      List.iter
        (fun conn ->
          match conn.repl_from with
          | Some cur when cur < dur ->
              let cursor = ref cur in
              while
                !cursor < dur
                && Reactor.Writer.pending_bytes conn.wr
                   < Reactor.Writer.high_water conn.wr
              do
                let payload =
                  Storage.Journal.stream_from ~max_bytes:repl_chunk_bytes j
                    !cursor
                in
                push_response t conn conn.repl_id
                  (Protocol.Repl_frame
                     { lsn = !cursor;
                       payload = Bytes.unsafe_to_string payload });
                cursor := !cursor + Bytes.length payload
              done;
              conn.repl_from <- Some !cursor
          | _ -> ())
        (subscribers t)

(* ---------------- housekeeping (idle + stalled consumers) ------------ *)

(* A leaked client — connected, silent, holding a session against
   max_sessions — gets a typed goodbye and the door. Only genuinely
   quiescent connections qualify: anything with parsed-but-unanswered
   requests or undrained output is still being served. *)
let reap_idle t now =
  if t.cfg.idle_timeout > 0. then
    List.iter
      (fun conn ->
        if
          (not conn.closing)
          && conn.repl_from = None
          (* a subscriber legitimately sends nothing for long stretches
             on an idle primary — reaping it would force a pointless
             resubscribe cycle *)
          && Queue.is_empty conn.pending
          && (not (output_pending conn))
          && now -. conn.last_active > t.cfg.idle_timeout
        then begin
          push_response t conn 0L
            (Protocol.Goodbye
               (Printf.sprintf "idle for %.0fs, closing" t.cfg.idle_timeout));
          conn.closing <- true
        end)
      t.conns

(* Consumers with pending output that accept no bytes at all: bounded
   buffers stop the memory bleed, this stops the fd bleed. *)
let reap_stalled t now =
  List.iter
    (fun conn ->
      let stalled = Reactor.Writer.stalled_for conn.wr ~now in
      let limit =
        if conn.repl_from <> None then repl_stall_timeout
        else if t.cfg.idle_timeout > 0. then t.cfg.idle_timeout
        else default_stall_grace
      in
      if stalled > limit then begin
        conn.closing <- true;
        conn.force_close <- true
      end)
    t.conns

(* ---------------- the upstream link (replica side) ---------------- *)

let retry_delay = 0.2
let connect_timeout = 0.25

let clear_utimer t u =
  match u.utimer with
  | Some tm ->
      Reactor.cancel t.reactor tm;
      u.utimer <- None
  | None -> ()

let rec schedule_redial t u delay =
  clear_utimer t u;
  if not t.stopping then
    u.utimer <-
      Some
        (Reactor.after t.reactor delay (fun () ->
             u.utimer <- None;
             dial_upstream t u))

and drop_upstream t u =
  (match u.ufd with
  | Some fd ->
      Reactor.deregister t.reactor fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  u.ufd <- None;
  u.uconnected <- false;
  u.uframer <- Protocol.Framer.create ();
  schedule_redial t u retry_delay

(* The requests a replica sends upstream (one subscribe, then acks) are
   tiny and rare; write them whole. A full socket buffer here means the
   primary is gone or wedged — drop the link and let the redial timer
   take over rather than blocking the serve loop. *)
and send_upstream t u req =
  match u.ufd with
  | None -> ()
  | Some fd -> (
      let frame = Protocol.encode_request ~id:1L req in
      let len = Bytes.length frame in
      let rec write_all off =
        if off < len then
          match Unix.write fd frame off (len - off) with
          | 0 -> drop_upstream t u
          | n -> write_all (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
          | exception Unix.Unix_error _ -> drop_upstream t u
      in
      try write_all 0 with Unix.Unix_error _ -> drop_upstream t u)

and on_upstream_connected t u fd =
  clear_utimer t u;
  u.uconnected <- true;
  u.uframer <- Protocol.Framer.create ();
  Reactor.register t.reactor fd
    ~readable:(fun () -> read_upstream t u fd)
    ();
  (* Resubscribe from the LSN applied so far. A record half-received
     when the old link died is simply refetched — Replica.reset dropped
     the buffered tail — so a torn frame can never desync the apply
     position. *)
  let from_lsn = Replica.reset u.engine in
  send_upstream t u (Protocol.Repl_subscribe { from_lsn })

(* Dial the primary without ever blocking the loop: non-blocking
   connect, completion reported by writability, bounded by a connect
   timer instead of the old fixed 0.25 s select that froze every
   session (and quantized commit-ack latency) per attempt. *)
and dial_upstream t u =
  if not (t.stopping || u.ufd <> None) then begin
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      let addr = Unix.ADDR_INET (Unix.inet_addr_of_string u.uhost, u.uport) in
      Unix.set_nonblock fd;
      match Unix.connect fd addr with
      | () -> `Connected
      | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> `In_progress
    with
    | `Connected ->
        u.ufd <- Some fd;
        on_upstream_connected t u fd
    | `In_progress ->
        u.ufd <- Some fd;
        u.uconnected <- false;
        Reactor.register t.reactor fd
          ~writable:(fun () -> complete_upstream_connect t u fd)
          ();
        u.utimer <-
          Some
            (Reactor.after t.reactor connect_timeout (fun () ->
                 u.utimer <- None;
                 drop_upstream t u))
    | exception _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        schedule_redial t u retry_delay
  end

and complete_upstream_connect t u fd =
  match Unix.getsockopt_error fd with
  | Some _ -> drop_upstream t u
  | None -> on_upstream_connected t u fd
  | exception Unix.Unix_error _ -> drop_upstream t u

and apply_upstream_frame t u ~lsn payload =
  let device = Relation.Catalog.device (Session.catalog t.sh) in
  match Replica.feed u.engine device ~lsn payload with
  | Ok 0 -> ()
  | Ok _batches ->
      (* Committed batches landed on the device: rebind catalog and
         tree handles so readers see them, then tell the primary how
         far we are (releasing its semi-sync parked acks). *)
      Session.reload t.sh;
      send_upstream t u
        (Protocol.Repl_ack { lsn = Replica.applied_lsn u.engine })
  | Result.Error msg ->
      Printf.eprintf "rikitd: replication stream broken (%s), redialling\n%!"
        msg;
      drop_upstream t u

and read_upstream t u fd =
  let scratch = Bytes.create 65536 in
  match Unix.read fd scratch 0 (Bytes.length scratch) with
  | 0 -> drop_upstream t u
  | n ->
      Protocol.Framer.feed u.uframer scratch n;
      let continue = ref true in
      while !continue && u.ufd <> None do
        match Protocol.Framer.next u.uframer with
        | Ok None -> continue := false
        | Ok (Some payload) -> (
            match Protocol.decode_response payload with
            | Ok (_, Protocol.Repl_state { durable_lsn; _ }) ->
                Replica.note_primary u.engine durable_lsn
            | Ok (_, Protocol.Repl_frame { lsn; payload }) ->
                apply_upstream_frame t u ~lsn payload
            | Ok (_, (Protocol.Error m | Protocol.Invalid m)) ->
                Printf.eprintf
                  "rikitd: primary refused subscription: %s\n%!" m;
                drop_upstream t u
            | Ok _ -> ()
            | Result.Error _ -> drop_upstream t u)
        | Result.Error _ -> drop_upstream t u
      done
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> drop_upstream t u

(* ---------------- the loop ---------------- *)

let serve t =
  let scratch = Bytes.create 16 in
  let finished = ref false in
  let r = t.reactor in
  Unix.set_nonblock t.listen_fd;
  Reactor.register r t.stop_r
    ~readable:(fun () ->
      (try ignore (Unix.read t.stop_r scratch 0 (Bytes.length scratch))
       with Unix.Unix_error _ -> ());
      t.stopping <- true;
      Reactor.set_read_interest r t.listen_fd false;
      match t.http with Some h -> Http_endpoint.stop_accepting h | None -> ())
    ();
  Reactor.register r t.listen_fd ~readable:(fun () -> accept_connections t) ();
  (match t.metrics_fd with
  | Some mfd ->
      t.http <- Some (Http_endpoint.attach r ~fd:mfd ~doc:(fun () -> metrics_doc t))
  | None -> ());
  (match t.upstream with Some u -> dial_upstream t u | None -> ());
  (* Housekeeping cadence: with idle reaping on, wake often enough that
     a connection is closed within ~a quarter timeout of earning it. *)
  let housekeeping_period =
    if t.cfg.idle_timeout > 0. then
      Float.min 1.0 (Float.max 0.02 (t.cfg.idle_timeout /. 4.))
    else 0.5
  in
  let rec housekeeping () =
    let now = Unix.gettimeofday () in
    if not t.stopping then reap_idle t now;
    reap_stalled t now;
    if not !finished then
      ignore (Reactor.after r housekeeping_period housekeeping)
  in
  ignore (Reactor.after r housekeeping_period housekeeping);
  while not !finished do
    (* Sleep only when idle: with requests still queued (an execute
       round is inflight-capped) the next round must run immediately. *)
    let timeout = if t.queued > 0 || t.stopping then 0. else 1.0 in
    Reactor.run_once r ~max_timeout:timeout;
    execute_round t
      ~limit:(if t.stopping then t.queued else t.cfg.max_inflight);
    (* The window's deadline is a timer; what remains inline is the
       early close — as soon as no live session holds buffered writes,
       no further COMMIT can join the batch and waiting only delays the
       acknowledgements (the commit-siblings rule). *)
    if
      t.pending_commits <> []
      && (t.stopping
         || not
              (List.exists
                 (fun c ->
                   (not c.closing) && Session.has_pending_writes c.session)
                 t.conns))
    then flush_group_commits t;
    (* Ship anything the window flush (or a synchronous commit, or a
       write-back) just made durable. *)
    pump_replication t;
    List.iter (fun conn -> flush_conn t conn) t.conns;
    List.iter
      (fun conn ->
        if conn.force_close || (conn.closing && not (output_pending conn))
        then close_conn t conn)
      t.conns;
    if t.stopping && t.queued = 0 then begin
      (* Everything parsed has been answered; push the last bytes out
         (sockets willing) and leave. Parked semi-sync acks are
         released as-is — their writes are durable locally and the
         stream to any subscriber was already pumped. *)
      List.iter
        (fun (conn, id, _, resp) ->
          if List.memq conn t.conns then push_response t conn id resp)
        (List.rev t.parked_acks);
      t.parked_acks <- [];
      List.iter (fun conn -> flush_conn t conn) t.conns;
      List.iter (fun conn -> close_conn t conn) t.conns;
      finished := true
    end
  done;
  (match t.upstream with
  | Some u -> (
      clear_utimer t u;
      match u.ufd with
      | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> ())
  | None -> ());
  (match t.http with
  | Some h ->
      Http_endpoint.close_all h;
      t.http <- None
  | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.metrics_fd with
  | Some mfd -> ( try Unix.close mfd with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Session.flush_shared t.sh
