let buckets = 40
(* bucket i holds latencies in [2^i, 2^(i+1)) microseconds; bucket 39
   tops out above 15 minutes, far beyond any single request here *)

type op = {
  mutable count : int;
  mutable total_io : int;
  mutable total_us : int;
  mutable min_us : int;
  mutable max_us : int;
  hist : int array;
}

type t = {
  started : float;
  ops : (string, op) Hashtbl.t;
  mutable sessions : int;
  mutable peak_sessions : int;
  mutable total_requests : int;
  mutable overload_rejections : int;
  mutable queue : int;
  mutable peak_queue : int;
}

let create ~now =
  {
    started = now;
    ops = Hashtbl.create 8;
    sessions = 0;
    peak_sessions = 0;
    total_requests = 0;
    overload_rejections = 0;
    queue = 0;
    peak_queue = 0;
  }

let bucket_of_us us =
  let rec go i v = if v <= 1 || i = buckets - 1 then i else go (i + 1) (v lsr 1) in
  if us <= 0 then 0 else go 0 us

let bucket_mid_us i =
  if i = 0 then 1
  else
    (* geometric midpoint of [2^i, 2^(i+1)) *)
    int_of_float (Float.round (Float.sqrt 2.0 *. float_of_int (1 lsl i)))

(* Exclusive upper bound of bucket i: 2^(i+1) microseconds. The last
   bucket is open-ended; callers render it as "+Inf". *)
let bucket_limit_us i = 1 lsl (i + 1)

let op_for t name =
  match Hashtbl.find_opt t.ops name with
  | Some o -> o
  | None ->
      let o =
        { count = 0; total_io = 0; total_us = 0; min_us = max_int; max_us = 0;
          hist = Array.make buckets 0 }
      in
      Hashtbl.add t.ops name o;
      o

let record t ~op ~seconds ~io =
  let us = int_of_float (Float.round (seconds *. 1e6)) in
  let us = max 0 us in
  let o = op_for t op in
  o.count <- o.count + 1;
  o.total_io <- o.total_io + io;
  o.total_us <- o.total_us + us;
  if us > o.max_us then o.max_us <- us;
  if us < o.min_us then o.min_us <- us;
  let b = bucket_of_us us in
  o.hist.(b) <- o.hist.(b) + 1;
  t.total_requests <- t.total_requests + 1

let overloaded t = t.overload_rejections <- t.overload_rejections + 1

let session_opened t =
  t.sessions <- t.sessions + 1;
  if t.sessions > t.peak_sessions then t.peak_sessions <- t.sessions

let session_closed t = t.sessions <- t.sessions - 1

let queue_depth t d =
  t.queue <- d;
  if d > t.peak_queue then t.peak_queue <- d

let percentile_us o p =
  if o.count = 0 then 0
  else begin
    let rank = int_of_float (Float.ceil (p *. float_of_int o.count)) in
    let rank = max 1 (min o.count rank) in
    let acc = ref 0 and res = ref 0 in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + o.hist.(i);
         if !acc >= rank then begin
           res := bucket_mid_us i;
           raise Exit
         end
       done
     with Exit -> ());
    (* The geometric midpoint can land outside what was actually
       observed (e.g. a single 7 us sample falls in [4, 8), whose
       midpoint is 6). Clamp into the true envelope. *)
    max o.min_us (min o.max_us !res)
  end

let snapshot t ~now ~io : Protocol.stats =
  let ops =
    Hashtbl.fold
      (fun name o acc ->
        {
          Protocol.op = name;
          count = o.count;
          total_io = o.total_io;
          p50_us = percentile_us o 0.50;
          p95_us = percentile_us o 0.95;
          p99_us = percentile_us o 0.99;
          max_us = o.max_us;
        }
        :: acc)
      t.ops []
    |> List.sort (fun a b -> String.compare a.Protocol.op b.Protocol.op)
  in
  {
    Protocol.uptime_s = now -. t.started;
    sessions = t.sessions;
    peak_sessions = t.peak_sessions;
    total_requests = t.total_requests;
    overload_rejections = t.overload_rejections;
    queue_depth = t.queue;
    peak_queue_depth = t.peak_queue;
    io_reads = io.Storage.Block_device.Stats.reads;
    io_writes = io.Storage.Block_device.Stats.writes;
    ops;
  }

let render (s : Protocol.stats) =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "server stats (uptime %.1f s)\n\
    \  sessions: %d (peak %d)   requests: %d   overload rejections: %d\n\
    \  queue depth: %d (peak %d)   physical I/O: %d reads, %d writes\n"
    s.uptime_s s.sessions s.peak_sessions s.total_requests
    s.overload_rejections s.queue_depth s.peak_queue_depth s.io_reads
    s.io_writes;
  if s.ops <> [] then begin
    Printf.bprintf b "  %-10s %8s %10s %9s %9s %9s %9s %8s\n" "op" "count"
      "io/req" "p50(us)" "p95(us)" "p99(us)" "max(us)" "io";
    List.iter
      (fun (o : Protocol.op_stat) ->
        Printf.bprintf b "  %-10s %8d %10.2f %9d %9d %9d %9d %8d\n" o.op
          o.count
          (if o.count = 0 then 0.0
           else float_of_int o.total_io /. float_of_int o.count)
          o.p50_us o.p95_us o.p99_us o.max_us o.total_io)
      s.ops
  end;
  Buffer.contents b

let dump t ~now ~io = render (snapshot t ~now ~io)

(* ---------------- raw view ----------------

   Everything the Prometheus renderer needs, copied out so the caller
   can't perturb the live accumulators. *)

type op_view = {
  v_op : string;
  v_count : int;
  v_total_io : int;
  v_total_us : int;
  v_min_us : int;  (** 0 when no samples *)
  v_max_us : int;
  v_hist : int array;
}

type view = {
  v_started : float;
  v_sessions : int;
  v_peak_sessions : int;
  v_total_requests : int;
  v_overload_rejections : int;
  v_queue_depth : int;
  v_peak_queue_depth : int;
  v_ops : op_view list;
}

let view t =
  let v_ops =
    Hashtbl.fold
      (fun name o acc ->
        {
          v_op = name;
          v_count = o.count;
          v_total_io = o.total_io;
          v_total_us = o.total_us;
          v_min_us = (if o.count = 0 then 0 else o.min_us);
          v_max_us = o.max_us;
          v_hist = Array.copy o.hist;
        }
        :: acc)
      t.ops []
    |> List.sort (fun a b -> String.compare a.v_op b.v_op)
  in
  {
    v_started = t.started;
    v_sessions = t.sessions;
    v_peak_sessions = t.peak_sessions;
    v_total_requests = t.total_requests;
    v_overload_rejections = t.overload_rejections;
    v_queue_depth = t.queue;
    v_peak_queue_depth = t.peak_queue;
    v_ops;
  }
