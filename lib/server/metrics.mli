(** Prometheus-style text exposition of the server's metrics.

    One document, rendered on demand — served both by the [METRICS]
    wire op (inside an [Ack]) and by the [--metrics-port] HTTP
    endpoint. Families:

    - [rikit_uptime_seconds], [rikit_sessions], [rikit_sessions_peak],
      [rikit_requests_total], [rikit_overload_rejections_total],
      [rikit_queue_depth], [rikit_queue_depth_peak]
    - [rikit_op_latency_us] — a histogram per wire op (cumulative
      [_bucket{op,le}] over the power-of-two microsecond buckets of
      {!Server_stats}, plus [_sum] and [_count]), and
      [rikit_op_io_total{op}]
    - [rikit_pool_hits_total], [rikit_pool_misses_total],
      [rikit_pool_evictions_total], [rikit_pool_hit_rate],
      [rikit_pool_cached_pages], [rikit_pool_pinned_frames]
    - [rikit_device_reads_total], [rikit_device_writes_total]
    - [rikit_journal_forces_total], [rikit_journal_commits_total],
      [rikit_journal_bytes] (durable servers only)
    - [rikit_hot_tier_budget_bytes], [rikit_hot_tier_resident_bytes],
      [rikit_hot_tier_resident_collections],
      [rikit_hot_tier_builds_total], [rikit_hot_tier_demotions_total],
      [rikit_hot_tier_invalidations_total],
      [rikit_hot_tier_probes_total]
    - [rikit_txn_commits_total], [rikit_txn_aborts_total],
      [rikit_txn_conflicts_total], [rikit_txn_active], [rikit_txn_lsn]
    - [rikit_read_only]
    - [rikit_repl_role], [rikit_repl_lag_bytes],
      [rikit_repl_applied_lsn], [rikit_repl_durable_lsn],
      [rikit_repl_subscribers] (when the dispatcher passes [?repl] —
      durable servers only) *)

type repl = {
  r_role : string;  (** ["primary"] or ["replica"] *)
  r_lag_bytes : int;
  r_applied_lsn : int;
  r_durable_lsn : int;
  r_subscribers : int;
}

val render :
  ?repl:repl ->
  now:float ->
  stats:Server_stats.t ->
  cat:Relation.Catalog.t ->
  memtier:Exec.Memtier.t ->
  txns:Relation.Txn.mgr ->
  unit ->
  string
(** The full exposition document, trailing newline included. *)

(** Per-shard health snapshot for the router exposition. *)
type shard = {
  s_lo : int;  (** inclusive range lower bound *)
  s_hi : int;  (** inclusive range upper bound *)
  s_endpoints : (string * int) list;
  s_lsn : int;  (** highest commit LSN routed to this shard *)
  s_rpcs : int;  (** fan-out RPCs issued *)
  s_errors : int;  (** RPCs failed after endpoint failover *)
}

val render_router :
  now:float ->
  stats:Server_stats.t ->
  shards:shard array ->
  partials:int ->
  unit ->
  string
(** The router's exposition: request families plus [rikit_shard_*]
    gauges/counters and [rikit_router_partial_results_total]. Per-shard
    fan-out latency appears in the op histograms under
    [op="shard:<i>"]. *)
