(** Replica apply engine — the consuming half of journal shipping.

    A replica dispatcher tails its primary's durable journal byte
    stream ([Repl_frame]s under one [Repl_subscribe]) and hands each
    frame to {!feed}, which buffers, CRC-parses and replays committed
    batches onto the local device in arrival order — the same redo rule
    crash recovery uses, so the replica's pages are always exactly some
    committed prefix of the primary's history. After {!feed} reports
    applied batches, the caller runs {!Session.reload} so open catalog
    and tree handles see the new pages.

    Torn input never desyncs the engine: a record split across frames
    stays buffered until completed, a truncated or corrupt frame fails
    frame decoding (or the gap check) before any byte is applied, and
    {!reset} rewinds cleanly to the applied position for resubscribe. *)

type t

val create : ?from_lsn:int -> unit -> t
(** Fresh engine expecting the primary's stream from [from_lsn]
    (default [0] — a blank replica replays the primary's whole retained
    history; no snapshot transfer is needed because every page image
    travels through the journal). *)

val feed :
  t -> Storage.Block_device.t -> lsn:int -> string -> (int, string) result
(** [feed t device ~lsn payload] ingests one frame whose first byte is
    primary-stream offset [lsn]. [Ok n] reports [n] commit batches
    newly applied to [device] (extended as needed to hold the primary's
    pages; [n = 0]: bytes buffered, nothing to reload yet). [Error _]
    means a gap — the connection must be dropped and the subscription
    restarted from {!reset}. *)

val applied_lsn : t -> int
(** Primary-stream offset fully applied locally — the resume point and
    the replica's [Repl_ack]/[Repl_state] position. *)

val primary_lsn : t -> int
(** The primary's [durable_lsn] as last heard (frames and
    [Repl_state]). *)

val note_primary : t -> int -> unit
(** Record a fresher primary [durable_lsn] (monotone). *)

val lag_bytes : t -> int
(** [primary_lsn - applied_lsn], clamped at [0] — the
    [rikit_repl_lag_bytes] gauge. *)

val batches : t -> int
(** Commit batches applied over the engine's lifetime. *)

val records : t -> int
(** Page write records applied over the engine's lifetime. *)

val buffered : t -> int
(** Bytes received but not yet applied (below a commit marker). *)

val reset : t -> int
(** Drop buffered unapplied bytes (a reconnect refetches them) and
    return the LSN to resubscribe from ({!applied_lsn}). *)
