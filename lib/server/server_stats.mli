(** Server-side metrics: per-op latency histograms, physical I/O per
    request, session and queue gauges.

    Latencies are kept in logarithmic (power-of-two microsecond)
    histograms, so recording is O(1) and allocation-free on the hot
    path; percentiles are reconstructed from the buckets (geometric
    bucket midpoint — at most a factor [sqrt 2] off, plenty for the
    dashboards the paper's Figs. 13/14 correspond to). Physical I/O is
    the device-counter delta the dispatcher measures around each
    request via {!Harness.Measure.timed_io}. *)

type t

val create : now:float -> t
(** [now] is the server start time (seconds, any monotonic-enough
    clock); {!snapshot} reports uptime against it. *)

val record : t -> op:string -> seconds:float -> io:int -> unit
(** Account one completed request. *)

val overloaded : t -> unit
(** Count one admission-control rejection. *)

val session_opened : t -> unit
val session_closed : t -> unit

val queue_depth : t -> int -> unit
(** Update the pending-request gauge (tracks the peak). *)

val snapshot : t -> now:float -> io:Storage.Block_device.Stats.t -> Protocol.stats
(** The wire-ready snapshot: gauges, counters, and per-op percentile
    summaries, sorted by op name. *)

val dump : t -> now:float -> io:Storage.Block_device.Stats.t -> string
(** Human-readable rendering of {!snapshot} — printed by [rikitd] on
    shutdown. *)

val render : Protocol.stats -> string
(** Render an already-taken snapshot (used by clients displaying a
    [Stats_reply]). *)

(** {2 Histogram geometry}

    Exposed for the Prometheus renderer and property tests. Bucket [i]
    holds latencies in [[2^i, 2^(i+1))] microseconds; bucket
    [buckets - 1] is open-ended. *)

val buckets : int
(** Number of histogram buckets. *)

val bucket_of_us : int -> int
(** The bucket a latency sample falls into. Total and monotone:
    non-positive inputs map to bucket 0, anything above the last
    bucket's lower bound maps to [buckets - 1]. *)

val bucket_mid_us : int -> int
(** Representative (geometric-midpoint) latency for a bucket —
    the value percentile reconstruction reports. *)

val bucket_limit_us : int -> int
(** Exclusive upper bound [2^(i+1)] of bucket [i]; the final bucket is
    rendered as [+Inf] by convention. *)

(** {2 Raw view}

    A copied-out snapshot of every accumulator, for renderers that need
    the full histograms rather than the percentile summary. *)

type op_view = {
  v_op : string;
  v_count : int;
  v_total_io : int;
  v_total_us : int;
  v_min_us : int;  (** 0 when no samples *)
  v_max_us : int;
  v_hist : int array;  (** length {!buckets}; a private copy *)
}

type view = {
  v_started : float;
  v_sessions : int;
  v_peak_sessions : int;
  v_total_requests : int;
  v_overload_rejections : int;
  v_queue_depth : int;
  v_peak_queue_depth : int;
  v_ops : op_view list;  (** sorted by op name *)
}

val view : t -> view
