(** Server-side metrics: per-op latency histograms, physical I/O per
    request, session and queue gauges.

    Latencies are kept in logarithmic (power-of-two microsecond)
    histograms, so recording is O(1) and allocation-free on the hot
    path; percentiles are reconstructed from the buckets (geometric
    bucket midpoint — at most a factor [sqrt 2] off, plenty for the
    dashboards the paper's Figs. 13/14 correspond to). Physical I/O is
    the device-counter delta the dispatcher measures around each
    request via {!Harness.Measure.timed_io}. *)

type t

val create : now:float -> t
(** [now] is the server start time (seconds, any monotonic-enough
    clock); {!snapshot} reports uptime against it. *)

val record : t -> op:string -> seconds:float -> io:int -> unit
(** Account one completed request. *)

val overloaded : t -> unit
(** Count one admission-control rejection. *)

val session_opened : t -> unit
val session_closed : t -> unit

val queue_depth : t -> int -> unit
(** Update the pending-request gauge (tracks the peak). *)

val snapshot : t -> now:float -> io:Storage.Block_device.Stats.t -> Protocol.stats
(** The wire-ready snapshot: gauges, counters, and per-op percentile
    summaries, sorted by op name. *)

val dump : t -> now:float -> io:Storage.Block_device.Stats.t -> string
(** Human-readable rendering of {!snapshot} — printed by [rikitd] on
    shutdown. *)

val render : Protocol.stats -> string
(** Render an already-taken snapshot (used by clients displaying a
    [Stats_reply]). *)
