(** The rikitd event loop.

    A single-process, single-writer {!Reactor} loop multiplexing many
    client connections over the shared database — the serving shape the
    paper assumes of its host RDBMS front end. Readiness comes from the
    reactor's poll(2) backend (no [FD_SETSIZE] ceiling; a select
    fallback exists for tests and stub-less platforms), and every
    time-driven behaviour — the group-commit window, idle reaping,
    upstream redial backoff and connect bounds — is a timer on the
    reactor's wheel rather than loop timeout math. Each round: accept
    new connections, read and frame input, execute up to [max_inflight]
    parsed requests round-robin across sessions, and drain output
    buffers (sockets are non-blocking; a slow reader never stalls the
    loop).

    Output is bounded: each connection writes through a
    {!Reactor.Writer} capped at [write_high_water] bytes. A consumer
    that lets the buffer burst the cap gets one typed [Overloaded]
    frame and is closed once what it was owed drains (or when it stalls
    outright); a replication subscriber is instead flow-controlled —
    shipping pauses until it drains — and cut only after a hard stall,
    so one wedged standby can never grow an unbounded buffer or hold
    every session's commit acks hostage.

    Admission control is typed, never silent:

    - a connection beyond [max_sessions] is answered with one
      [Overloaded] frame (request id 0) and closed;
    - a request arriving while [max_queue] requests are already parsed
      but unexecuted gets an [Overloaded] response instead of a seat in
      the queue;
    - a malformed payload gets a typed [Error] response; only a framing
      desync (oversized length prefix) closes the connection, again
      after a typed response.

    {!stop} is thread- and signal-safe (self-pipe); {!serve} then stops
    accepting, answers everything already queued, flushes the buffer
    pool (checkpointing a durable catalog, so nothing acknowledged is
    lost on restart) and returns. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (see {!port}) *)
  max_sessions : int;
  max_inflight : int;  (** requests executed per loop round *)
  max_queue : int;  (** parsed-but-unexecuted requests, across sessions *)
  group_commit : float;
      (** group-commit window in seconds; [0.] commits synchronously.
          When positive, a COMMIT request stages its dirty-page images
          and waits; when the window closes (or the server drains for
          shutdown, or a ROLLBACK arrives behind the batch), a single
          commit marker and a single log force cover every staged
          COMMIT, and only then are they acknowledged — so concurrent
          sessions amortize the log force without ever being told an
          undurable state was durable. *)
  idle_timeout : float;
      (** seconds a connection may sit with no bytes received, no queued
          requests and no undrained output before it is answered with a
          typed [Goodbye] frame (request id 0) and closed, freeing its
          seat against [max_sessions]. [0.] (the default) disables
          reaping. *)
  metrics_port : int option;
      (** when set, a second listen socket on this port answers plain
          HTTP GETs with the Prometheus text exposition ({!Metrics});
          [Some 0] picks an ephemeral port (see {!metrics_port}).
          [None] (the default) disables the endpoint. *)
  slow_query_ms : float;
      (** when positive, tracing ({!Obs.Trace}) is switched on at
          {!create} and any request whose execution takes at least this
          many milliseconds has its full trace tree printed to stderr.
          [0.] (the default) disables slow-query logging. *)
  replica_of : (string * int) option;
      (** when set, run as a hot standby of the primary at this
          [(host, port)]: the catalog is flipped read-only at {!create}
          (local mutations answer [Read_only]; reads serve normally),
          and the serve loop dials the primary, subscribes to its
          journal stream from the locally applied LSN, replays each
          committed batch onto the local device ({!Replica}) and
          acknowledges it. The link is redialled with a fixed short
          delay whenever it drops, resubscribing from the applied LSN —
          a torn frame or dropped connection never desyncs the replica.
          Requires a durable {!Session.shared}. [None] (the default) is
          a plain primary, which accepts [Repl_subscribe] from any
          number of replicas and holds each commit Ack until all live
          subscribers have applied past it (semi-synchronous; falls
          back to asynchronous the moment no subscriber is
          connected). *)
  backend : Reactor.Backend.kind option;
      (** readiness backend. [None] (the default) auto-selects: the
          poll(2) stub when functional, else the [Unix.select]
          fallback. Forcing [Select] (also reachable via the
          [RIKIT_REACTOR_BACKEND] environment variable) caps the server
          at select's fd ceiling — connections whose fd number exceeds
          it are refused with a typed [Overloaded] frame instead of
          crashing the loop. *)
  write_high_water : int;
      (** per-connection output buffer bound in bytes. See the
          backpressure contract above. *)
}

val default_config : config
(** [127.0.0.1:7468], 64 sessions, 32 inflight, 1024 queued, synchronous
    commit, no idle timeout, no metrics endpoint, no slow-query log,
    not a replica, auto-selected backend, 4 MiB write high-water. *)

type t

val create : ?config:config -> Session.shared -> t
(** Bind and listen immediately (so [port] is known before {!serve}
    runs). @raise Unix.Unix_error if the address is unavailable. *)

val port : t -> int
(** The actual bound port — useful with [config.port = 0]. *)

val metrics_port : t -> int
(** The bound metrics port ([0] when the endpoint is disabled). *)

val metrics_doc : t -> string
(** The Prometheus exposition document, as the endpoint would serve it
    right now. *)

val stats : t -> Server_stats.t

val shared : t -> Session.shared

val backend : t -> Reactor.Backend.kind
(** The readiness backend actually in use. *)

val serve : t -> unit
(** Run the loop until {!stop}. Must be called at most once. *)

val stop : t -> unit
(** Request graceful shutdown; safe from another thread or a signal
    handler. *)

val release_listener : t -> unit
(** Close this process's copy of the listening socket without touching
    the rest of the dispatcher. For fork-based topologies only: a parent
    that binds the port (to learn it) and forks a child to {!serve} must
    release its inherited copy — and so must sibling children — or the
    port stays accept-able after the serving child dies, turning a dead
    shard into a black hole instead of a connection refusal. Never call
    it in the process that will run {!serve}. *)
