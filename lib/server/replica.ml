(* Replica apply engine: consume the primary's journal byte stream and
   replay committed batches onto the local device.

   The primary ships its durable journal verbatim ([Journal.stream_from]
   chunks carried in [Repl_frame]s). Frames are contiguous: each carries
   the LSN of its first byte, and the engine refuses gaps — a dropped or
   reordered frame forces a reconnect-and-resubscribe from [applied_lsn]
   rather than a silent desync.

   Application mirrors crash recovery's redo rule: buffered bytes are
   parsed ([Journal.parse], CRC-checked, stops at the first torn record)
   and after-images are written to the device only up to the LAST commit
   marker in the buffer. Bytes past that marker — a batch still in
   flight, or the front half of a record split across frames — stay
   buffered until the rest arrives. MVCC guarantees heap pages carry
   only committed rows, so replaying whole batches in order reproduces
   exactly the primary's post-commit images. *)

type t = {
  buf : Buffer.t;  (* received, CRC-unverified tail not yet applied *)
  mutable next_lsn : int;  (* LSN the next frame must start at *)
  mutable applied_lsn : int;  (* primary-stream offset fully applied *)
  mutable primary_lsn : int;  (* primary's durable_lsn, last heard *)
  mutable batches : int;  (* commit batches applied *)
  mutable records : int;  (* write records applied *)
}

let create ?(from_lsn = 0) () =
  {
    buf = Buffer.create 4096;
    next_lsn = from_lsn;
    applied_lsn = from_lsn;
    primary_lsn = from_lsn;
    batches = 0;
    records = 0;
  }

let applied_lsn t = t.applied_lsn
let primary_lsn t = t.primary_lsn
let note_primary t lsn = if lsn > t.primary_lsn then t.primary_lsn <- lsn
let lag_bytes t = max 0 (t.primary_lsn - t.applied_lsn)
let batches t = t.batches
let records t = t.records
let buffered t = Buffer.length t.buf

let reset t =
  Buffer.clear t.buf;
  t.next_lsn <- t.applied_lsn;
  t.applied_lsn

(* The primary's heap can be larger than ours (we start empty): extend
   the device so the after-image's block id exists before writing it. *)
let ensure_block device page =
  while Storage.Block_device.allocated device <= page do
    ignore (Storage.Block_device.alloc device)
  done

let feed t device ~lsn payload =
  if lsn <> t.next_lsn then
    Error
      (Printf.sprintf "replication gap: frame at lsn %d, expected %d" lsn
         t.next_lsn)
  else begin
    Buffer.add_string t.buf payload;
    t.next_lsn <- t.next_lsn + String.length payload;
    note_primary t t.next_lsn;
    let data = Bytes.unsafe_of_string (Buffer.contents t.buf) in
    let parsed = Storage.Journal.parse data ~len:(Bytes.length data) in
    (* Redo rule: apply only up to the last commit marker. *)
    let upto =
      List.fold_left
        (fun acc (r, fin) ->
          match r with Storage.Journal.Commit -> fin | _ -> acc)
        0 parsed
    in
    if upto = 0 then Ok 0
    else begin
      let applied_batches = ref 0 in
      List.iter
        (fun (r, fin) ->
          if fin <= upto then
            match r with
            | Storage.Journal.Write { page; after; _ } ->
                ensure_block device page;
                Storage.Block_device.write device page after;
                t.records <- t.records + 1
            | Storage.Journal.Commit ->
                t.batches <- t.batches + 1;
                incr applied_batches)
        parsed;
      let rest = Buffer.sub t.buf upto (Buffer.length t.buf - upto) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.applied_lsn <- t.applied_lsn + upto;
      Ok !applied_batches
    end
  end
