(** One-shot HTTP/1.0 exposition endpoint served as plain reactor
    connections — no thread per scrape, no blocked loop. Used for the
    Prometheus metrics listener by both the dispatcher and the
    router. *)

type t

(** [attach r ~fd ~doc] registers the (already bound + listening)
    socket on the reactor; every accepted connection is answered with
    [doc ()] once request bytes arrive (or after 1 s of silence) and
    closed when the response drains. *)
val attach : Reactor.t -> fd:Unix.file_descr -> doc:(unit -> string) -> t

(** Live scrape connections (test/metrics hook). *)
val conn_count : t -> int

(** Stop accepting new scrapes; in-flight ones finish. *)
val stop_accepting : t -> unit

(** Drop everything, including the listener registration. Does not
    close the listening fd itself (the owner does). *)
val close_all : t -> unit
