let version = 7
let max_payload = 4 * 1024 * 1024

type explain_target =
  | Explain_sql of string
  | Explain_intersect of { lower : int; upper : int }
  | Explain_allen of {
      relation : Interval.Allen.relation;
      lower : int;
      upper : int;
    }

type request =
  | Sql of string
  | Insert of { lower : int; upper : int; id : int option }
  | Delete of { lower : int; upper : int; id : int }
  | Intersect of { lower : int; upper : int }
  | Allen of { relation : Interval.Allen.relation; lower : int; upper : int }
  | Begin
  | Commit
  | Rollback
  | Stats
  | Ping
  | Metrics
  | Prepare of { name : string; sql : string }
  | Execute of { name : string; params : int list }
  | Close_stmt of string
  | Explain of { analyze : bool; target : explain_target }
  | Repl_subscribe of { from_lsn : int }
  | Repl_ack of { lsn : int }
  | Repl_status
  | Shard_map_req

let request_op_name = function
  | Sql _ -> "sql"
  | Insert _ -> "insert"
  | Delete _ -> "delete"
  | Intersect _ -> "intersect"
  | Allen _ -> "allen"
  | Begin -> "begin"
  | Commit -> "commit"
  | Rollback -> "rollback"
  | Stats -> "stats"
  | Ping -> "ping"
  | Metrics -> "metrics"
  | Prepare _ -> "prepare"
  | Execute _ -> "execute"
  | Close_stmt _ -> "close"
  | Explain _ -> "explain"
  | Repl_subscribe _ -> "repl_subscribe"
  | Repl_ack _ -> "repl_ack"
  | Repl_status -> "repl_status"
  | Shard_map_req -> "shard_map"

type op_stat = {
  op : string;
  count : int;
  total_io : int;
  p50_us : int;
  p95_us : int;
  p99_us : int;
  max_us : int;
}

type stats = {
  uptime_s : float;
  sessions : int;
  peak_sessions : int;
  total_requests : int;
  overload_rejections : int;
  queue_depth : int;
  peak_queue_depth : int;
  io_reads : int;
  io_writes : int;
  ops : op_stat list;
}

type role = Primary | Replica

type shard_entry = {
  shard_lo : int;  (** inclusive lower bound of the shard's range *)
  shard_hi : int;  (** inclusive upper bound *)
  endpoints : (string * int) list;  (** host, port — first is preferred *)
}

type response =
  | Ack of string
  | Rows of { columns : string list; rows : int array list }
  | Error of string
  | Overloaded of string
  | Stats_reply of stats
  | Read_only of string
  | Goodbye of string
  | Invalid of string
      (* the request was well-formed on the wire but semantically
         invalid (e.g. an empty interval); the session stays usable *)
  | Conflict of string
      (* the transaction lost a write-write race at commit and was
         aborted; non-retryable as-is — the client must re-run the
         transaction against the new state *)
  | Repl_frame of { lsn : int; payload : string }
      (* a slice of the primary's durable journal: [payload] holds the
         serialized bytes [lsn, lsn + length payload) of the log stream *)
  | Repl_state of { role : role; durable_lsn : int; applied_lsn : int }
  | Shard_map of shard_entry list
      (* the serving topology: contiguous interval-space ranges and the
         endpoints that own them; a plain rikitd answers with a single
         entry covering the whole space *)
  | Partial of { missing : int list; msg : string }
      (* a scatter-gather answer is incomplete: the listed shard indices
         could not be reached within the deadline; non-retryable as-is *)

type error =
  | Truncated
  | Oversized of int
  | Malformed of string

let error_to_string = function
  | Truncated -> "truncated frame"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n
  | Malformed m -> "malformed frame: " ^ m

(* ---------------- encoding primitives ---------------- *)

let put_u8 b v = Buffer.add_uint8 b (v land 0xff)
let put_u32 b v = Buffer.add_int32_be b (Int32.of_int v)
let put_i64 b v = Buffer.add_int64_be b v
let put_int b v = put_i64 b (Int64.of_int v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_string_list b l =
  put_u32 b (List.length l);
  List.iter (put_string b) l

let put_row b (row : int array) =
  put_u32 b (Array.length row);
  Array.iter (put_int b) row

let put_rows b rows =
  put_u32 b (List.length rows);
  List.iter (put_row b) rows

(* ---------------- decoding primitives ----------------

   A cursor over one payload. The [Short] exception is internal: it is
   caught at the decode entry points and mapped to the typed
   [Truncated] error, so no exception ever escapes the codec. *)

exception Short
exception Bad of string

type cursor = { buf : Bytes.t; mutable pos : int }

let need c n = if c.pos + n > Bytes.length c.buf then raise Short

let get_u8 c =
  need c 1;
  let v = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  v

let get_u32 c =
  need c 4;
  let v = Int32.to_int (Bytes.get_int32_be c.buf c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Bad "negative length");
  v

let get_i64 c =
  need c 8;
  let v = Bytes.get_int64_be c.buf c.pos in
  c.pos <- c.pos + 8;
  v

let get_int c =
  let v = get_i64 c in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then raise (Bad "integer out of native range");
  i

let get_string c =
  let n = get_u32 c in
  if n > max_payload then raise (Bad "string length exceeds frame bound");
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

let get_list c get =
  let n = get_u32 c in
  (* Each element consumes at least one byte; a count beyond the
     remaining bytes is garbage, not merely truncated. *)
  if n > Bytes.length c.buf - c.pos then raise (Bad "list count exceeds frame");
  List.init n (fun _ -> get c)

let get_row c =
  let n = get_u32 c in
  if n > (Bytes.length c.buf - c.pos + 7) / 8 then
    raise (Bad "row arity exceeds frame");
  Array.init n (fun _ -> get_int c)

let finish c v =
  if c.pos <> Bytes.length c.buf then raise (Bad "trailing bytes");
  v

(* ---------------- opcodes ---------------- *)

let op_sql = 0x01
let op_insert = 0x02
let op_delete = 0x03
let op_intersect = 0x04
let op_allen = 0x05
let op_commit = 0x06
let op_rollback = 0x07
let op_stats = 0x08
let op_ping = 0x09
let op_metrics = 0x0a
let op_prepare = 0x0b
let op_execute = 0x0c
let op_close_stmt = 0x0d
let op_explain = 0x0e
let op_begin = 0x0f
let op_repl_subscribe = 0x10
let op_repl_ack = 0x11
let op_repl_status = 0x12
let op_shard_map_req = 0x13
let op_ack = 0x81
let op_rows = 0x82
let op_error = 0x83
let op_overloaded = 0x84
let op_stats_reply = 0x85
let op_read_only = 0x86
let op_goodbye = 0x87
let op_invalid = 0x88
let op_conflict = 0x89
let op_repl_frame = 0x8a
let op_repl_state = 0x8b
let op_shard_map = 0x8c
let op_partial = 0x8d

(* ---------------- frames ---------------- *)

let frame payload_writer =
  let b = Buffer.create 64 in
  put_u32 b 0 (* placeholder *);
  payload_writer b;
  let bytes = Buffer.to_bytes b in
  Bytes.set_int32_be bytes 0 (Int32.of_int (Bytes.length bytes - 4));
  bytes

let encode_request ~id req =
  frame (fun b ->
      put_i64 b id;
      match req with
      | Sql text ->
          put_u8 b op_sql;
          put_string b text
      | Insert { lower; upper; id = iid } ->
          put_u8 b op_insert;
          put_int b lower;
          put_int b upper;
          (match iid with
          | None -> put_u8 b 0
          | Some v ->
              put_u8 b 1;
              put_int b v)
      | Delete { lower; upper; id = iid } ->
          put_u8 b op_delete;
          put_int b lower;
          put_int b upper;
          put_int b iid
      | Intersect { lower; upper } ->
          put_u8 b op_intersect;
          put_int b lower;
          put_int b upper
      | Allen { relation; lower; upper } ->
          put_u8 b op_allen;
          put_string b (Interval.Allen.to_string relation);
          put_int b lower;
          put_int b upper
      | Begin -> put_u8 b op_begin
      | Commit -> put_u8 b op_commit
      | Rollback -> put_u8 b op_rollback
      | Stats -> put_u8 b op_stats
      | Ping -> put_u8 b op_ping
      | Metrics -> put_u8 b op_metrics
      | Prepare { name; sql } ->
          put_u8 b op_prepare;
          put_string b name;
          put_string b sql
      | Execute { name; params } ->
          put_u8 b op_execute;
          put_string b name;
          put_u32 b (List.length params);
          List.iter (put_int b) params
      | Close_stmt name ->
          put_u8 b op_close_stmt;
          put_string b name
      | Explain { analyze; target } -> (
          put_u8 b op_explain;
          put_u8 b (if analyze then 1 else 0);
          match target with
          | Explain_sql text ->
              put_u8 b 0;
              put_string b text
          | Explain_intersect { lower; upper } ->
              put_u8 b 1;
              put_int b lower;
              put_int b upper
          | Explain_allen { relation; lower; upper } ->
              put_u8 b 2;
              put_string b (Interval.Allen.to_string relation);
              put_int b lower;
              put_int b upper)
      | Repl_subscribe { from_lsn } ->
          put_u8 b op_repl_subscribe;
          put_int b from_lsn
      | Repl_ack { lsn } ->
          put_u8 b op_repl_ack;
          put_int b lsn
      | Repl_status -> put_u8 b op_repl_status
      | Shard_map_req -> put_u8 b op_shard_map_req)

let encode_response ~id resp =
  frame (fun b ->
      put_i64 b id;
      match resp with
      | Ack msg ->
          put_u8 b op_ack;
          put_string b msg
      | Rows { columns; rows } ->
          put_u8 b op_rows;
          put_string_list b columns;
          put_rows b rows
      | Error msg ->
          put_u8 b op_error;
          put_string b msg
      | Overloaded msg ->
          put_u8 b op_overloaded;
          put_string b msg
      | Read_only msg ->
          put_u8 b op_read_only;
          put_string b msg
      | Goodbye msg ->
          put_u8 b op_goodbye;
          put_string b msg
      | Invalid msg ->
          put_u8 b op_invalid;
          put_string b msg
      | Conflict msg ->
          put_u8 b op_conflict;
          put_string b msg
      | Repl_frame { lsn; payload } ->
          put_u8 b op_repl_frame;
          put_int b lsn;
          put_string b payload
      | Repl_state { role; durable_lsn; applied_lsn } ->
          put_u8 b op_repl_state;
          put_u8 b (match role with Primary -> 0 | Replica -> 1);
          put_int b durable_lsn;
          put_int b applied_lsn
      | Shard_map entries ->
          put_u8 b op_shard_map;
          put_u32 b (List.length entries);
          List.iter
            (fun e ->
              put_int b e.shard_lo;
              put_int b e.shard_hi;
              put_u32 b (List.length e.endpoints);
              List.iter
                (fun (host, port) ->
                  put_string b host;
                  put_u32 b port)
                e.endpoints)
            entries
      | Partial { missing; msg } ->
          put_u8 b op_partial;
          put_u32 b (List.length missing);
          List.iter (put_u32 b) missing;
          put_string b msg
      | Stats_reply s ->
          put_u8 b op_stats_reply;
          put_i64 b (Int64.bits_of_float s.uptime_s);
          put_int b s.sessions;
          put_int b s.peak_sessions;
          put_int b s.total_requests;
          put_int b s.overload_rejections;
          put_int b s.queue_depth;
          put_int b s.peak_queue_depth;
          put_int b s.io_reads;
          put_int b s.io_writes;
          put_u32 b (List.length s.ops);
          List.iter
            (fun o ->
              put_string b o.op;
              put_int b o.count;
              put_int b o.total_io;
              put_int b o.p50_us;
              put_int b o.p95_us;
              put_int b o.p99_us;
              put_int b o.max_us)
            s.ops)

let decode body payload =
  if Bytes.length payload > max_payload then
    Result.Error (Oversized (Bytes.length payload))
  else
    let c = { buf = payload; pos = 0 } in
    match
      let id = get_i64 c in
      let opcode = get_u8 c in
      (id, finish c (body c opcode))
    with
    | v -> Ok v
    | exception Short -> Result.Error Truncated
    | exception Bad m -> Result.Error (Malformed m)

let decode_request payload =
  decode
    (fun c opcode ->
      if opcode = op_sql then Sql (get_string c)
      else if opcode = op_insert then
        let lower = get_int c in
        let upper = get_int c in
        let iid =
          match get_u8 c with
          | 0 -> None
          | 1 -> Some (get_int c)
          | t -> raise (Bad (Printf.sprintf "bad option tag %d" t))
        in
        Insert { lower; upper; id = iid }
      else if opcode = op_delete then
        let lower = get_int c in
        let upper = get_int c in
        let iid = get_int c in
        Delete { lower; upper; id = iid }
      else if opcode = op_intersect then
        let lower = get_int c in
        let upper = get_int c in
        Intersect { lower; upper }
      else if opcode = op_allen then
        let name = get_string c in
        let relation =
          match Interval.Allen.of_string name with
          | Some r -> r
          | None -> raise (Bad (Printf.sprintf "unknown Allen relation %S" name))
        in
        let lower = get_int c in
        let upper = get_int c in
        Allen { relation; lower; upper }
      else if opcode = op_begin then Begin
      else if opcode = op_commit then Commit
      else if opcode = op_rollback then Rollback
      else if opcode = op_stats then Stats
      else if opcode = op_ping then Ping
      else if opcode = op_metrics then Metrics
      else if opcode = op_prepare then
        let name = get_string c in
        let sql = get_string c in
        Prepare { name; sql }
      else if opcode = op_execute then
        let name = get_string c in
        let params = get_list c get_int in
        Execute { name; params }
      else if opcode = op_close_stmt then Close_stmt (get_string c)
      else if opcode = op_explain then
        let analyze =
          match get_u8 c with
          | 0 -> false
          | 1 -> true
          | t -> raise (Bad (Printf.sprintf "bad analyze flag %d" t))
        in
        let target =
          match get_u8 c with
          | 0 -> Explain_sql (get_string c)
          | 1 ->
              let lower = get_int c in
              let upper = get_int c in
              Explain_intersect { lower; upper }
          | 2 ->
              let name = get_string c in
              let relation =
                match Interval.Allen.of_string name with
                | Some r -> r
                | None ->
                    raise
                      (Bad (Printf.sprintf "unknown Allen relation %S" name))
              in
              let lower = get_int c in
              let upper = get_int c in
              Explain_allen { relation; lower; upper }
          | t -> raise (Bad (Printf.sprintf "bad explain target tag %d" t))
        in
        Explain { analyze; target }
      else if opcode = op_repl_subscribe then
        let from_lsn = get_int c in
        if from_lsn < 0 then raise (Bad "negative lsn");
        Repl_subscribe { from_lsn }
      else if opcode = op_repl_ack then
        let lsn = get_int c in
        if lsn < 0 then raise (Bad "negative lsn");
        Repl_ack { lsn }
      else if opcode = op_repl_status then Repl_status
      else if opcode = op_shard_map_req then Shard_map_req
      else raise (Bad (Printf.sprintf "unknown request opcode 0x%02x" opcode)))
    payload

let decode_response payload =
  decode
    (fun c opcode ->
      if opcode = op_ack then Ack (get_string c)
      else if opcode = op_rows then
        let columns = get_list c get_string in
        let rows = get_list c get_row in
        Rows { columns; rows }
      else if opcode = op_error then Error (get_string c)
      else if opcode = op_overloaded then Overloaded (get_string c)
      else if opcode = op_read_only then Read_only (get_string c)
      else if opcode = op_goodbye then Goodbye (get_string c)
      else if opcode = op_invalid then Invalid (get_string c)
      else if opcode = op_conflict then Conflict (get_string c)
      else if opcode = op_repl_frame then
        let lsn = get_int c in
        if lsn < 0 then raise (Bad "negative lsn");
        let payload = get_string c in
        Repl_frame { lsn; payload }
      else if opcode = op_repl_state then
        let role =
          match get_u8 c with
          | 0 -> Primary
          | 1 -> Replica
          | t -> raise (Bad (Printf.sprintf "bad role tag %d" t))
        in
        let durable_lsn = get_int c in
        let applied_lsn = get_int c in
        if durable_lsn < 0 || applied_lsn < 0 then raise (Bad "negative lsn");
        Repl_state { role; durable_lsn; applied_lsn }
      else if opcode = op_shard_map then
        let entries =
          get_list c (fun c ->
              let shard_lo = get_int c in
              let shard_hi = get_int c in
              if shard_lo > shard_hi then raise (Bad "empty shard range");
              let endpoints =
                get_list c (fun c ->
                    let host = get_string c in
                    let port = get_u32 c in
                    if port > 0xffff then raise (Bad "port out of range");
                    (host, port))
              in
              { shard_lo; shard_hi; endpoints })
        in
        Shard_map entries
      else if opcode = op_partial then
        let missing = get_list c get_u32 in
        let msg = get_string c in
        Partial { missing; msg }
      else if opcode = op_stats_reply then
        let uptime_s = Int64.float_of_bits (get_i64 c) in
        let sessions = get_int c in
        let peak_sessions = get_int c in
        let total_requests = get_int c in
        let overload_rejections = get_int c in
        let queue_depth = get_int c in
        let peak_queue_depth = get_int c in
        let io_reads = get_int c in
        let io_writes = get_int c in
        let ops =
          get_list c (fun c ->
              let op = get_string c in
              let count = get_int c in
              let total_io = get_int c in
              let p50_us = get_int c in
              let p95_us = get_int c in
              let p99_us = get_int c in
              let max_us = get_int c in
              { op; count; total_io; p50_us; p95_us; p99_us; max_us })
        in
        Stats_reply
          {
            uptime_s;
            sessions;
            peak_sessions;
            total_requests;
            overload_rejections;
            queue_depth;
            peak_queue_depth;
            io_reads;
            io_writes;
            ops;
          }
      else raise (Bad (Printf.sprintf "unknown response opcode 0x%02x" opcode)))
    payload

(* ---------------- frame splitting ---------------- *)

module Framer = struct
  type t = { mutable data : Bytes.t; mutable len : int }

  let create () = { data = Bytes.create 4096; len = 0 }

  let feed t buf n =
    if n < 0 || n > Bytes.length buf then
      invalid_arg "Protocol.Framer.feed: bad length";
    let need = t.len + n in
    if need > Bytes.length t.data then begin
      let cap = max need (2 * Bytes.length t.data) in
      let data = Bytes.create cap in
      Bytes.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    Bytes.blit buf 0 t.data t.len n;
    t.len <- t.len + n

  let buffered t = t.len

  let next t =
    if t.len < 4 then Ok None
    else
      let declared = Int32.to_int (Bytes.get_int32_be t.data 0) in
      if declared < 0 || declared > max_payload then
        Result.Error (Oversized declared)
      else if t.len < 4 + declared then Ok None
      else begin
        let payload = Bytes.sub t.data 4 declared in
        let rest = t.len - 4 - declared in
        Bytes.blit t.data (4 + declared) t.data 0 rest;
        t.len <- rest;
        Ok (Some payload)
      end
end
