(* The router tier: the structural fix for head-of-line blocking.

   The interval space is partitioned into contiguous ranges along the
   RI-tree's virtual backbone (split points are backbone node values,
   so an interval strictly inside a shard's range forks inside that
   shard's subtree forest — the paper's natural partition points). One
   rikitd process serves each range; the router fans queries out to the
   shards whose ranges overlap the query extent and merges the streams.
   A multi-second scan then pins one shard process while every other
   shard — and the router itself — keeps answering.

   Placement rule: an interval is stored on EVERY shard whose range its
   extent overlaps (boundary spanners are replicated, identified by
   their (lower, upper, id) triple at merge). Correctness of
   scatter-gather follows from ranges partitioning the integer line: a
   match m of a query with bounding extent E satisfies m ∩ E ≠ ∅, and
   the shard owning any point of m ∩ E both stores m and is a fan-out
   target.

   Threading: one reactor thread owns every client socket (framing,
   buffered writes, backpressure, metrics scrapes) and a FIXED pool of
   worker threads runs the shard RPCs — so the OS thread count is a
   constant chosen at create time, independent of how many clients are
   connected. Each connection's requests execute one at a time in
   arrival order (the reactor hands a worker at most one job per
   connection and queues the rest), while a scatter's legs are
   multiplexed on a single readiness wait ({!Client.rpc_many}) — a
   slow shard delays only that connection's merge, never a pool
   thread per leg. Each connection keeps one {!Failover} leg per
   shard — per-request deadlines, endpoint rotation towards a standby,
   and per-shard read-your-writes LSN tokens all come from that
   machinery. A shard that stays unreachable through failover degrades
   the answer to a typed [Partial] frame, never a hang. *)

(* ---------------- the shard map ---------------- *)

module Map = struct
  type t = {
    ranges : (int * int) array;  (* inclusive, contiguous, ascending *)
    eps : (string * int) list array;
  }

  let floor_pow2 n =
    let rec go p = if p * 2 <= n then go (p * 2) else p in
    go 1

  (* Split points aligned to the virtual backbone: every cut is a
     multiple of a power-of-two granularity g, i.e. a backbone node
     value at level log2 g (Backbone.level), chosen nearest to the
     equal-width ideal so uniform load stays balanced even when
     [domain_max + 1] is not a power of two. *)
  let backbone_cuts ~domain_max ~shards =
    if shards < 1 then invalid_arg "Router.Map.backbone_cuts: shards < 1";
    if domain_max < 1 then invalid_arg "Router.Map.backbone_cuts: domain_max < 1";
    let span = domain_max + 1 in
    let g = floor_pow2 (max 1 (span / (2 * shards))) in
    let cuts = ref [] in
    for i = shards - 1 downto 1 do
      let ideal = i * span / shards in
      let cut = (ideal + (g / 2)) / g * g in
      let cut = max 1 (min cut domain_max) in
      cuts := cut :: !cuts
    done;
    let rec ascending last = function
      | [] -> []
      | c :: tl -> if c > last then c :: ascending c tl else ascending last tl
    in
    ascending min_int !cuts

  let create ~cuts ~endpoints =
    let k = List.length endpoints in
    if k = 0 then invalid_arg "Router.Map.create: no shards";
    if List.length cuts <> k - 1 then
      invalid_arg "Router.Map.create: need exactly one cut per shard boundary";
    ignore
      (List.fold_left
         (fun prev c ->
           if c <= prev then
             invalid_arg "Router.Map.create: cuts must be strictly increasing";
           c)
         min_int cuts);
    let cuts_a = Array.of_list cuts in
    let ranges =
      Array.init k (fun i ->
          let lo = if i = 0 then min_int else cuts_a.(i - 1) in
          let hi = if i = k - 1 then max_int else cuts_a.(i) - 1 in
          (lo, hi))
    in
    { ranges; eps = Array.of_list endpoints }

  let shards t = Array.length t.ranges
  let range t i = t.ranges.(i)
  let endpoints t i = t.eps.(i)

  let entries t =
    Array.to_list
      (Array.mapi
         (fun i (lo, hi) ->
           { Protocol.shard_lo = lo; shard_hi = hi; endpoints = t.eps.(i) })
         t.ranges)

  (* Shard indices whose ranges overlap [lower, upper], ascending. The
     ranges are contiguous, so this is always a consecutive run. *)
  let targets t ~lower ~upper =
    let out = ref [] in
    Array.iteri
      (fun i (lo, hi) -> if lower <= hi && upper >= lo then out := i :: !out)
      t.ranges;
    List.rev !out

  let owner t point =
    let rec go i =
      if i >= Array.length t.ranges - 1 then Array.length t.ranges - 1
      else
        let _, hi = t.ranges.(i) in
        if point <= hi then i else go (i + 1)
    in
    go 0

  (* Conservative bounding extent for the stored matches of an Allen
     query [q] (matches m satisfy [holds r m q], stored first): the
     eleven intersection-implying relations force m to overlap q, while
     Before/Meets (m ends at or before q's start) and After/Met_by
     (m starts at or after q's end) bound m to one side. [None] means
     no interval can match (the extent is empty at the domain edge). *)
  let allen_extent r ~lower ~upper =
    match r with
    | Interval.Allen.Before ->
        if lower = min_int then None else Some (min_int, lower - 1)
    | Interval.Allen.Meets -> Some (min_int, lower)
    | Interval.Allen.After ->
        if upper = max_int then None else Some (upper + 1, max_int)
    | Interval.Allen.Met_by -> Some (upper, max_int)
    | _ -> Some (lower, upper)

  (* Merge scattered result sets: replicated boundary spanners come back
     from several shards as identical (lower, upper, id) triples — keep
     one — and the union is re-sorted so the merged answer is
     deterministic regardless of shard arrival order. *)
  let merge_rows lists =
    let seen = Hashtbl.create 256 in
    let keep (row : int array) =
      if Array.length row < 3 then true
      else begin
        let key = (row.(0), row.(1), row.(2)) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end
      end
    in
    let rows = List.concat_map (List.filter keep) lists in
    List.sort
      (fun (a : int array) (b : int array) ->
        if Array.length a < 3 || Array.length b < 3 then compare a b
        else compare (a.(0), a.(1), a.(2)) (b.(0), b.(1), b.(2)))
      rows
end

(* ---------------- the router server ---------------- *)

type config = {
  host : string;
  port : int;  (* 0 binds an ephemeral port; see [port] *)
  max_sessions : int;
  shard_deadline_ms : float;
      (* per-request budget for each shard leg; a partitioned shard
         surfaces as a typed Partial after at most roughly this long *)
  metrics_port : int option;
  workers : int;
      (* shard-RPC worker threads — the router's whole OS-thread budget
         besides the reactor thread, regardless of connection count *)
  backend : Reactor.Backend.kind option;  (* None = auto-select *)
}

let default_config =
  { host = "127.0.0.1"; port = 7654; max_sessions = 64;
    shard_deadline_ms = 15_000.; metrics_port = None;
    workers = 8; backend = None }

(* ---------------- per-connection state ---------------- *)

type conn = {
  c_fd : Unix.file_descr;
  framer : Protocol.Framer.t;
  wr : Reactor.Writer.t;
  legs : Failover.t option array;  (* lazily dialled, one per shard *)
  begun : bool array;  (* leg has an open BEGIN on its shard session *)
  mutable in_txn : bool;
  jobs : (int64 * Protocol.request) Queue.t;
      (* decoded requests waiting their turn (reactor thread only) *)
  mutable inflight : bool;  (* a worker owns this connection's head job *)
  mutable closing : bool;  (* drain the write buffer, then close *)
  mutable force_close : bool;
  mutable dead : bool;  (* fd closed and deregistered *)
}

type job = conn * int64 * Protocol.request
type done_msg = conn * (int64 * Protocol.response) option

type t = {
  cfg : config;
  map : Map.t;
  reactor : Reactor.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int;
  st : Server_stats.t;
  mu : Mutex.t;
      (* guards st and the shard_* / partials counters: worker threads
         record into them while the reactor thread snapshots *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  wake_r : Unix.file_descr;  (* workers → reactor: completions pending *)
  wake_w : Unix.file_descr;
  wq : job Queue.t;  (* reactor → workers *)
  wq_mu : Mutex.t;
  wq_cond : Condition.t;
  mutable wq_stop : bool;
  dq : done_msg Queue.t;  (* workers → reactor *)
  dq_mu : Mutex.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;  (* reactor thread only *)
  mutable http : Http_endpoint.t option;
  mutable worker_threads : Thread.t list;
  mutable stopping : bool;
  shard_lsn : int array;
      (* highest commit LSN acked per shard, router-global: a fresh
         connection's legs are seeded with these so read-your-writes
         holds across clients that observe each other's commits *)
  shard_rpcs : int array;
  shard_errors : int array;
  mutable partials : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let listen_on host port backlog =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound)

let create cfg ~map =
  let listen_fd, bound_port = listen_on cfg.host cfg.port 128 in
  let metrics_fd, metrics_bound_port =
    match cfg.metrics_port with
    | None -> (None, 0)
    | Some p ->
        let fd, bp = listen_on cfg.host p 16 in
        (Some fd, bp)
  in
  let stop_r, stop_w = Unix.pipe () in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let k = Map.shards map in
  {
    cfg;
    map;
    reactor = Reactor.create ?backend:cfg.backend ();
    listen_fd;
    bound_port;
    metrics_fd;
    metrics_bound_port;
    st = Server_stats.create ~now:(Unix.gettimeofday ());
    mu = Mutex.create ();
    stop_r;
    stop_w;
    wake_r;
    wake_w;
    wq = Queue.create ();
    wq_mu = Mutex.create ();
    wq_cond = Condition.create ();
    wq_stop = false;
    dq = Queue.create ();
    dq_mu = Mutex.create ();
    conns = Hashtbl.create 64;
    http = None;
    worker_threads = [];
    stopping = false;
    shard_lsn = Array.make k 0;
    shard_rpcs = Array.make k 0;
    shard_errors = Array.make k 0;
    partials = 0;
  }

let port t = t.bound_port
let metrics_port t = t.metrics_bound_port
let stats t = t.st
let map t = t.map
let backend t = Reactor.backend t.reactor

let stop t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let metrics_doc t =
  locked t (fun () ->
      let shards =
        Array.init (Map.shards t.map) (fun i ->
            let lo, hi = Map.range t.map i in
            { Metrics.s_lo = lo; s_hi = hi;
              s_endpoints = Map.endpoints t.map i;
              s_lsn = t.shard_lsn.(i);
              s_rpcs = t.shard_rpcs.(i);
              s_errors = t.shard_errors.(i) })
      in
      Metrics.render_router ~now:(Unix.gettimeofday ()) ~stats:t.st ~shards
        ~partials:t.partials ())

(* ---------------- shard legs (worker threads) ---------------- *)

(* The connection's leg to shard [i], dialled lazily. A fresh leg is
   seeded with the router-global LSN token for that shard, so even a
   brand-new connection only adopts an endpoint that has applied every
   commit the router ever acked there. Legs are only ever touched by
   the one worker that owns the connection's in-flight job (or by the
   reactor thread once no job is in flight). *)
let leg t conn i =
  match conn.legs.(i) with
  | Some l -> l
  | None ->
      let l =
        Failover.create ~deadline_ms:t.cfg.shard_deadline_ms
          ~endpoints:(Map.endpoints t.map i) ()
      in
      Failover.note_lsn l (locked t (fun () -> t.shard_lsn.(i)));
      conn.legs.(i) <- Some l;
      l

(* An open client transaction pins each shard's snapshot lazily, at the
   transaction's first touch of that shard (documented semantics: the
   per-shard snapshots are taken at first use, not all at BEGIN). *)
let ensure_begun conn l i =
  if conn.in_txn && not conn.begun.(i) then
    match Failover.begin_txn l with
    | Ok () ->
        conn.begun.(i) <- true;
        Ok ()
    | Result.Error _ as e -> e
  else Ok ()

let note_shard_result t i ok =
  locked t (fun () ->
      t.shard_rpcs.(i) <- t.shard_rpcs.(i) + 1;
      if not ok then t.shard_errors.(i) <- t.shard_errors.(i) + 1)

let record_shard t i ~seconds =
  locked t (fun () ->
      Server_stats.record t.st ~op:(Printf.sprintf "shard:%d" i) ~seconds
        ~io:0)

(* One RPC to shard [i] on this connection's leg, with per-shard
   latency recorded under op "shard:<i>". Reads retry across the
   shard's endpoints; mutations keep Failover's contract — a mid-flight
   transport death is ambiguous and comes back as the typed error. *)
let shard_rpc t conn i ~mutation req =
  let t0 = Unix.gettimeofday () in
  let l = leg t conn i in
  let res =
    match ensure_begun conn l i with
    | Result.Error _ as e -> e
    | Ok () ->
        let run = if mutation then Failover.mutate else Failover.read in
        run l (fun c -> Client.rpc_result c req)
  in
  record_shard t i ~seconds:(Unix.gettimeofday () -. t0);
  note_shard_result t i (Result.is_ok res);
  res

(* Commit this connection's transaction on shard [i]; the leg notes the
   ack LSN and the router lifts it into the global per-shard token. *)
let shard_commit t conn i =
  let t0 = Unix.gettimeofday () in
  let l = leg t conn i in
  let res = Failover.commit l in
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      Server_stats.record t.st ~op:(Printf.sprintf "shard:%d" i) ~seconds:dt
        ~io:0;
      (match res with
      | Ok lsn -> if lsn > t.shard_lsn.(i) then t.shard_lsn.(i) <- lsn
      | Result.Error _ -> ()));
  note_shard_result t i (Result.is_ok res);
  res

let count_partial t =
  locked t (fun () -> t.partials <- t.partials + 1)

(* Map a leg's typed error back onto the wire. Transport-level failures
   (the shard stayed unreachable through failover) become the typed
   partial-result frame; semantic verdicts pass through unchanged. *)
let response_of_error t missing e =
  match (e : Client.error) with
  | Client.Io m | Client.Timeout m ->
      count_partial t;
      Protocol.Partial { missing; msg = m }
  | Client.Server m -> Protocol.Error m
  | Client.Invalid m -> Protocol.Invalid m
  | Client.Overloaded m -> Protocol.Overloaded m
  | Client.Read_only m -> Protocol.Read_only m
  | Client.Conflict m -> Protocol.Conflict m
  | Client.Partial { missing; msg } -> Protocol.Partial { missing; msg }
  | Client.Unexpected m -> Protocol.Error m

(* Scatter a read to every target shard as ONE multiplexed readiness
   wait: dial (or reuse) each leg's connection, fire all the requests,
   and let {!Client.rpc_many} collect the responses on a single
   backend wait — k legs cost zero extra threads. A leg whose
   multiplexed attempt died in transport is rotated ({!Failover.fault})
   and retried through the leg's sequential endpoint-failover path, so
   the read-retry contract survives on the rare path without giving up
   the fast one. *)
let scatter t conn targets req =
  match targets with
  | [] -> []
  | [ i ] -> [ (i, shard_rpc t conn i ~mutation:false req) ]
  | _ ->
      let t0 = Unix.gettimeofday () in
      let prepped =
        List.map
          (fun i ->
            let l = leg t conn i in
            match ensure_begun conn l i with
            | Result.Error e -> (i, l, Result.Error e)
            | Ok () -> (
                match Failover.connection l with
                | Result.Error e -> (i, l, Result.Error e)
                | Ok c -> (i, l, Ok c)))
          targets
      in
      let live =
        List.filter_map
          (fun (i, l, r) ->
            match r with Ok c -> Some (i, l, c) | Result.Error _ -> None)
          prepped
      in
      let answers =
        Client.rpc_many (List.map (fun (_, _, c) -> (c, req)) live)
      in
      let by_shard = Hashtbl.create 8 in
      List.iter2
        (fun (i, l, _) ans ->
          let ans =
            match ans with
            | Result.Error (Client.Io _ | Client.Timeout _) ->
                Failover.fault l;
                Failover.read l (fun c -> Client.rpc_result c req)
            | other -> other
          in
          Hashtbl.replace by_shard i ans)
        live answers;
      let dt = Unix.gettimeofday () -. t0 in
      List.map
        (fun (i, _, prep) ->
          let res =
            match prep with
            | Result.Error _ as e -> e
            | Ok _ -> (
                match Hashtbl.find_opt by_shard i with
                | Some a -> a
                | None -> Result.Error (Client.Io "scatter leg unresolved"))
          in
          record_shard t i ~seconds:dt;
          note_shard_result t i (Result.is_ok res);
          (i, res))
        prepped

let default_columns = [ "lower"; "upper"; "id" ]

(* Gather scattered query answers into one response. Precedence: a
   semantic verdict from any shard (Error/Invalid/...) is forwarded
   first — it is deterministic and would have been the single-node
   answer; then unreachable shards degrade the answer to Partial; only
   a full sweep merges. *)
let gather_query t conn req extent =
  match extent with
  | None -> Protocol.Rows { columns = default_columns; rows = [] }
  | Some (lo, hi) -> (
      let targets = Map.targets t.map ~lower:lo ~upper:hi in
      let results = scatter t conn targets req in
      let verdict =
        List.find_map
          (function
            | _, Ok (Protocol.Rows _) -> None
            | _, Ok r -> Some r
            | _ -> None)
          results
      in
      match verdict with
      | Some r -> r
      | None -> (
          let missing =
            List.filter_map
              (function i, Result.Error _ -> Some i | _ -> None)
              results
          in
          match missing with
          | _ :: _ ->
              let msg =
                List.find_map
                  (function
                    | _, Result.Error e -> Some (Client.error_to_string e)
                    | _ -> None)
                  results
                |> Option.value ~default:"shard unreachable"
              in
              count_partial t;
              Protocol.Partial { missing; msg }
          | [] ->
              let columns =
                List.find_map
                  (function
                    | _, Ok (Protocol.Rows { columns; _ }) -> Some columns
                    | _ -> None)
                  results
                |> Option.value ~default:default_columns
              in
              let rows =
                List.filter_map
                  (function
                    | _, Ok (Protocol.Rows { rows; _ }) -> Some rows
                    | _ -> None)
                  results
              in
              (* A fan-out-1 query cannot see a spanner twice — forward
                 the shard's rows verbatim instead of paying the dedup
                 hash on the common (range-local) case. *)
              match rows with
              | [ only ] -> Protocol.Rows { columns; rows = only }
              | _ -> Protocol.Rows { columns; rows = Map.merge_rows rows }))

let trailing_int msg =
  int_of_string_opt (List.hd (List.rev (String.split_on_char ' ' msg)))

(* Insert: the owning shard (the first whose range the extent overlaps)
   assigns the id, then the row is replicated to every other
   overlapping shard under that id — so replicas of one logical row
   carry one identity and collapse at merge time. *)
let handle_insert t conn ~lower ~upper ~id:iid =
  let targets = Map.targets t.map ~lower ~upper in
  let own = List.hd targets in
  let req = Protocol.Insert { lower; upper; id = iid } in
  match shard_rpc t conn own ~mutation:true req with
  | Result.Error e -> response_of_error t [ own ] e
  | Ok (Protocol.Ack msg as ack) -> (
      let rest = List.tl targets in
      if rest = [] then ack
      else
        let assigned =
          match iid with Some v -> Some v | None -> trailing_int msg
        in
        match assigned with
        | None -> Protocol.Error ("unparseable insert ack from owner: " ^ msg)
        | Some aid ->
            let replica = Protocol.Insert { lower; upper; id = Some aid } in
            let missing =
              List.filter_map
                (fun i ->
                  match shard_rpc t conn i ~mutation:true replica with
                  | Ok (Protocol.Ack _) -> None
                  | Ok _ | Result.Error _ -> Some i)
                rest
            in
            if missing = [] then ack
            else begin
              count_partial t;
              Protocol.Partial
                { missing;
                  msg =
                    Printf.sprintf
                      "inserted id %d on the owning shard but not every \
                       boundary shard"
                      aid }
            end)
  | Ok other -> other

let handle_delete t conn ~lower ~upper ~id:iid =
  let targets = Map.targets t.map ~lower ~upper in
  let req = Protocol.Delete { lower; upper; id = iid } in
  let results =
    List.map (fun i -> (i, shard_rpc t conn i ~mutation:true req)) targets
  in
  match results with
  | [] -> Protocol.Invalid "no shard covers the interval"
  | (own, own_res) :: rest -> (
      match own_res with
      | Result.Error e -> response_of_error t [ own ] e
      | Ok own_resp ->
          let missing =
            List.filter_map
              (function i, Result.Error _ -> Some i | _ -> None)
              rest
          in
          if missing = [] then own_resp
          else begin
            count_partial t;
            Protocol.Partial
              { missing;
                msg = "deleted on the owning shard but not every boundary shard"
              }
          end)

(* COMMIT/ROLLBACK fan to every leg this connection ever dialled: a leg
   holds that shard's session (its implicit transaction and any BEGUN
   snapshot), and closing the transaction on an untouched shard is
   harmless. Cross-shard commits are NOT atomic — each shard commits
   independently (first-committer-wins locally); a Conflict or an
   unreachable shard after others committed is reported as-is. *)
let handle_commit t conn =
  let legs =
    List.filter_map
      (fun i -> if conn.legs.(i) <> None then Some i else None)
      (List.init (Map.shards t.map) Fun.id)
  in
  let results = List.map (fun i -> (i, shard_commit t conn i)) legs in
  conn.in_txn <- false;
  Array.fill conn.begun 0 (Array.length conn.begun) false;
  let conflict =
    List.find_map
      (function _, Result.Error (Client.Conflict m) -> Some m | _ -> None)
      results
  in
  match conflict with
  | Some m -> Protocol.Conflict m
  | None -> (
      let missing =
        List.filter_map
          (function i, Result.Error _ -> Some i | _ -> None)
          results
      in
      match missing with
      | _ :: _ ->
          count_partial t;
          Protocol.Partial
            { missing; msg = "commit not acknowledged by every shard" }
      | [] ->
          let lsn =
            List.fold_left
              (fun acc -> function _, Ok l -> max acc l | _ -> acc)
              0 results
          in
          Protocol.Ack (Printf.sprintf "committed lsn %d" lsn))

let handle_rollback t conn =
  let legs =
    List.filter_map
      (fun i -> if conn.legs.(i) <> None then Some i else None)
      (List.init (Map.shards t.map) Fun.id)
  in
  let results =
    List.map
      (fun i ->
        let l = leg t conn i in
        (i, Failover.rollback l))
      legs
  in
  conn.in_txn <- false;
  Array.fill conn.begun 0 (Array.length conn.begun) false;
  let missing =
    List.filter_map (function i, Result.Error _ -> Some i | _ -> None) results
  in
  if missing = [] then Protocol.Ack "rolled back"
  else begin
    count_partial t;
    Protocol.Partial { missing; msg = "rollback not acknowledged by every shard" }
  end

(* ---------------- request execution ---------------- *)

let unsupported = "not supported by the router; connect to a shard directly"

(* Requests that never touch shard legs or this connection's
   transaction state — cheap enough to answer on the reactor thread
   when the connection has nothing queued. *)
let pure_answer t req =
  match req with
  | Protocol.Ping -> Some (Protocol.Ack "pong")
  | Protocol.Shard_map_req -> Some (Protocol.Shard_map (Map.entries t.map))
  | Protocol.Stats ->
      let snap =
        locked t (fun () ->
            Server_stats.snapshot t.st ~now:(Unix.gettimeofday ())
              ~io:{ Storage.Block_device.Stats.reads = 0; writes = 0 })
      in
      Some (Protocol.Stats_reply snap)
  | Protocol.Metrics -> Some (Protocol.Ack (metrics_doc t))
  | Protocol.Sql _ | Protocol.Prepare _ | Protocol.Execute _
  | Protocol.Close_stmt _ | Protocol.Explain _ ->
      Some (Protocol.Error unsupported)
  | Protocol.Repl_subscribe _ | Protocol.Repl_status ->
      Some (Protocol.Error "replication ops are not supported by the router")
  | Protocol.Repl_ack _ | Protocol.Begin | Protocol.Commit | Protocol.Rollback
  | Protocol.Intersect _ | Protocol.Allen _ | Protocol.Insert _
  | Protocol.Delete _ ->
      None

let invalid_interval lower upper =
  Protocol.Invalid (Printf.sprintf "empty interval [%d, %d]" lower upper)

let do_begin conn =
  if conn.in_txn then Protocol.Invalid "transaction already in progress"
  else begin
    conn.in_txn <- true;
    Protocol.Ack "begin"
  end

(* Run one request to completion — worker-thread context (the reactor
   hands a worker at most one job per connection, so conn state and
   legs are owned for the duration). Returns the frame to send, if
   any. *)
let execute t conn id req =
  let t0 = Unix.gettimeofday () in
  let resp =
    match req with
    | Protocol.Repl_ack _ -> None  (* fire-and-forget *)
    | Protocol.Begin -> Some (do_begin conn)
    | Protocol.Commit -> Some (handle_commit t conn)
    | Protocol.Rollback -> Some (handle_rollback t conn)
    | Protocol.Intersect { lower; upper } ->
        Some
          (if lower > upper then invalid_interval lower upper
           else gather_query t conn req (Some (lower, upper)))
    | Protocol.Allen { relation; lower; upper } ->
        Some
          (if lower > upper then invalid_interval lower upper
           else gather_query t conn req (Map.allen_extent relation ~lower ~upper))
    | Protocol.Insert { lower; upper; id = iid } ->
        Some
          (if lower > upper then invalid_interval lower upper
           else handle_insert t conn ~lower ~upper ~id:iid)
    | Protocol.Delete { lower; upper; id = iid } ->
        Some
          (if lower > upper then invalid_interval lower upper
           else handle_delete t conn ~lower ~upper ~id:iid)
    | other -> pure_answer t other
  in
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      Server_stats.record t.st ~op:(Protocol.request_op_name req) ~seconds:dt
        ~io:0);
  Option.map (fun r -> (id, r)) resp

(* ---------------- worker pool ---------------- *)

let wake t =
  try ignore (Unix.write t.wake_w (Bytes.make 1 '.') 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ()  (* pipe full: the reactor is already due to wake *)
  | Unix.Unix_error _ -> ()

let worker_loop t () =
  let running = ref true in
  while !running do
    Mutex.lock t.wq_mu;
    while Queue.is_empty t.wq && not t.wq_stop do
      Condition.wait t.wq_cond t.wq_mu
    done;
    if t.wq_stop then begin
      running := false;
      Mutex.unlock t.wq_mu
    end
    else begin
      let conn, id, req = Queue.pop t.wq in
      Mutex.unlock t.wq_mu;
      let resp =
        try execute t conn id req
        with e ->
          Some (id, Protocol.Error ("router: " ^ Printexc.to_string e))
      in
      Mutex.lock t.dq_mu;
      Queue.push (conn, resp) t.dq;
      Mutex.unlock t.dq_mu;
      wake t
    end
  done

let enqueue_work t conn id req =
  Mutex.lock t.wq_mu;
  Queue.push (conn, id, req) t.wq;
  Condition.signal t.wq_cond;
  Mutex.unlock t.wq_mu

(* ---------------- reactor side ---------------- *)

(* A client may pipeline this many requests beyond the in-flight one
   before admission control cuts it off. *)
let max_pipeline = 256

(* How long undrained output may sit with no write progress before the
   peer is declared a stalled consumer and reaped. *)
let stall_grace = 5.0

let close_legs conn =
  Array.iter (function Some l -> Failover.close l | None -> ()) conn.legs

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    Reactor.deregister t.reactor conn.c_fd;
    Hashtbl.remove t.conns conn.c_fd;
    (* Drain unread inbound bytes first: close(2) with data in the
       receive queue makes the kernel send RST, destroying the typed
       goodbye frame still in flight to the peer. Bounded. *)
    (let scratch = Bytes.create 65536 in
     let rec drain n =
       if n > 0 then
         match Unix.read conn.c_fd scratch 0 65536 with
         | 0 -> ()
         | _ -> drain (n - 1)
         | exception Unix.Unix_error _ -> ()
     in
     drain 16);
    (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
    locked t (fun () -> Server_stats.session_closed t.st);
    (* a worker may still be running this connection's job and using
       its legs — defer leg teardown to the completion delivery *)
    if not conn.inflight then close_legs conn
  end

let maybe_close t conn =
  if
    (not conn.dead)
    && (conn.force_close
       || (conn.closing && not (Reactor.Writer.has_pending conn.wr)))
  then close_conn t conn

let flush_conn t conn =
  if not conn.dead then
    match Reactor.Writer.flush conn.wr ~now:(Unix.gettimeofday ()) with
    | Reactor.Writer.Drained ->
        Reactor.set_write_interest t.reactor conn.c_fd false
    | Reactor.Writer.Pending ->
        Reactor.set_write_interest t.reactor conn.c_fd true
    | Reactor.Writer.Peer_gone -> conn.force_close <- true

(* Queue a frame on the connection's bounded writer. Crossing the
   high-water mark is the slow-consumer verdict: pending requests are
   dropped and a final typed [Overloaded] frame rides out past the
   mark before the connection is drained-then-closed. *)
let push_frame t conn id resp =
  if (not conn.dead) && not conn.force_close then begin
    let frame = Protocol.encode_response ~id resp in
    if (not (Reactor.Writer.push conn.wr frame)) && not conn.closing then begin
      Queue.clear conn.jobs;
      conn.closing <- true;
      locked t (fun () -> Server_stats.overloaded t.st);
      ignore
        (Reactor.Writer.push conn.wr
           (Protocol.encode_response ~id:0L
              (Protocol.Overloaded
                 (Printf.sprintf
                    "slow consumer: write buffer over %d bytes, closing"
                    (Reactor.Writer.high_water conn.wr)))))
    end;
    flush_conn t conn
  end

let next_job t conn =
  if
    (not conn.inflight) && (not conn.dead) && (not conn.closing)
    && not (Queue.is_empty conn.jobs)
  then begin
    let id, req = Queue.pop conn.jobs in
    conn.inflight <- true;
    enqueue_work t conn id req
  end

(* A worker finished a job: deliver the response (if the client is
   still there) and start the connection's next queued request. *)
let deliver t (conn, resp) =
  conn.inflight <- false;
  if conn.dead then close_legs conn
  else begin
    (match resp with
    | Some (id, r) -> push_frame t conn id r
    | None -> ());
    maybe_close t conn;
    if (not conn.dead) && not conn.closing then next_job t conn
  end

let drain_done t =
  let batch = Queue.create () in
  Mutex.lock t.dq_mu;
  Queue.transfer t.dq batch;
  Mutex.unlock t.dq_mu;
  Queue.iter (fun msg -> deliver t msg) batch

let record_op t req ~seconds =
  locked t (fun () ->
      Server_stats.record t.st ~op:(Protocol.request_op_name req) ~seconds
        ~io:0)

let handle_frame t conn payload =
  match Protocol.decode_request payload with
  | Result.Error e ->
      (* a bad frame is beyond recovery: answer typed, drain, close *)
      push_frame t conn 0L (Protocol.Error (Protocol.error_to_string e));
      conn.closing <- true;
      maybe_close t conn
  | Ok (id, req) ->
      if conn.inflight || not (Queue.is_empty conn.jobs) then
        if Queue.length conn.jobs >= max_pipeline then begin
          Queue.clear conn.jobs;
          conn.closing <- true;
          locked t (fun () -> Server_stats.overloaded t.st);
          ignore
            (Reactor.Writer.push conn.wr
               (Protocol.encode_response ~id:0L
                  (Protocol.Overloaded
                     (Printf.sprintf "pipeline limit (%d requests) exceeded"
                        max_pipeline))));
          flush_conn t conn;
          maybe_close t conn
        end
        else begin
          Queue.push (id, req) conn.jobs;
          next_job t conn
        end
      else begin
        (* idle connection: cheap ops answered right here on the loop,
           anything that talks to a shard goes to a worker *)
        match req with
        | Protocol.Repl_ack _ -> ()
        | Protocol.Begin ->
            let t0 = Unix.gettimeofday () in
            push_frame t conn id (do_begin conn);
            record_op t req ~seconds:(Unix.gettimeofday () -. t0)
        | req -> (
            match pure_answer t req with
            | Some resp ->
                let t0 = Unix.gettimeofday () in
                push_frame t conn id resp;
                record_op t req ~seconds:(Unix.gettimeofday () -. t0)
            | None ->
                conn.inflight <- true;
                enqueue_work t conn id req)
      end

let on_readable t conn scratch =
  match Unix.read conn.c_fd scratch 0 (Bytes.length scratch) with
  | 0 ->
      conn.force_close <- true;
      maybe_close t conn
  | n when conn.closing ->
      (* a cut-off consumer's bytes are read and discarded so the
         eventual close finds an empty receive queue (no RST — the
         final typed frame must survive the trip) *)
      ignore n
  | n ->
      Protocol.Framer.feed conn.framer scratch n;
      let rec drain () =
        if (not conn.dead) && not conn.closing then
          match Protocol.Framer.next conn.framer with
          | Ok None -> ()
          | Ok (Some payload) ->
              handle_frame t conn payload;
              drain ()
          | Result.Error e ->
              push_frame t conn 0L
                (Protocol.Error (Protocol.error_to_string e));
              conn.closing <- true;
              maybe_close t conn
      in
      drain ()
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ ->
      conn.force_close <- true;
      maybe_close t conn

let reject_connection t fd reason =
  locked t (fun () -> Server_stats.overloaded t.st);
  let frame = Protocol.encode_response ~id:0L (Protocol.Overloaded reason) in
  (try ignore (Unix.write fd frame 0 (Bytes.length frame))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let admit t =
  if Hashtbl.length t.conns >= t.cfg.max_sessions then
    Some (Printf.sprintf "router at session limit (%d)" t.cfg.max_sessions)
  else if
    Reactor.backend t.reactor = Reactor.Backend.Select
    && Reactor.fd_count t.reactor >= Reactor.Backend.select_fd_limit - 8
  then Some "router over the select backend fd ceiling"
  else None

let rec accept_loop t scratch =
  if not t.stopping then
    match Unix.accept t.listen_fd with
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
    | fd, _peer ->
        (match admit t with
        | Some reason -> reject_connection t fd reason
        | None ->
            Unix.set_nonblock fd;
            let conn =
              { c_fd = fd;
                framer = Protocol.Framer.create ();
                wr = Reactor.Writer.create ~now:(Unix.gettimeofday ()) fd;
                legs = Array.make (Map.shards t.map) None;
                begun = Array.make (Map.shards t.map) false;
                in_txn = false;
                jobs = Queue.create ();
                inflight = false;
                closing = false;
                force_close = false;
                dead = false }
            in
            Hashtbl.replace t.conns fd conn;
            locked t (fun () -> Server_stats.session_opened t.st);
            Reactor.register t.reactor fd
              ~readable:(fun () -> on_readable t conn scratch)
              ~writable:(fun () ->
                flush_conn t conn;
                maybe_close t conn)
              ();
            Reactor.set_write_interest t.reactor fd false);
        accept_loop t scratch

(* Reap connections whose peer stopped reading: undrained output that
   has made no write progress for [stall_grace] seconds. *)
let rec housekeeping t () =
  let now = Unix.gettimeofday () in
  let victims =
    Hashtbl.fold
      (fun _ c acc ->
        if Reactor.Writer.stalled_for c.wr ~now > stall_grace then c :: acc
        else acc)
      t.conns []
  in
  List.iter
    (fun c ->
      c.force_close <- true;
      maybe_close t c)
    victims;
  if not t.stopping then
    ignore (Reactor.after t.reactor 1.0 (housekeeping t))

let drain_pipe fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | n when n = Bytes.length buf -> go ()
    | _ -> ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let cleanup t =
  Reactor.deregister t.reactor t.listen_fd;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.http with Some h -> Http_endpoint.close_all h | None -> ());
  (match t.metrics_fd with
  | Some m -> ( try Unix.close m with Unix.Unix_error _ -> ())
  | None -> ());
  (* stop the pool: workers abandon queued jobs and exit after the one
     they are running; join before touching any connection's legs *)
  Mutex.lock t.wq_mu;
  t.wq_stop <- true;
  Queue.clear t.wq;
  Condition.broadcast t.wq_cond;
  Mutex.unlock t.wq_mu;
  List.iter Thread.join t.worker_threads;
  t.worker_threads <- [];
  (* final completions: release the inflight marks (and the legs of
     clients that disconnected mid-request) *)
  Mutex.lock t.dq_mu;
  Queue.iter
    (fun ((conn : conn), _) ->
      conn.inflight <- false;
      if conn.dead then close_legs conn)
    t.dq;
  Queue.clear t.dq;
  Mutex.unlock t.dq_mu;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> close_conn t c) conns;
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ t.stop_r; t.stop_w; t.wake_r; t.wake_w ]

let serve t =
  let scratch = Bytes.create 65536 in
  Unix.set_nonblock t.listen_fd;
  Reactor.register t.reactor t.listen_fd
    ~readable:(fun () -> accept_loop t scratch)
    ();
  Reactor.register t.reactor t.stop_r
    ~readable:(fun () ->
      drain_pipe t.stop_r;
      t.stopping <- true)
    ();
  Reactor.register t.reactor t.wake_r
    ~readable:(fun () ->
      drain_pipe t.wake_r;
      drain_done t)
    ();
  (match t.metrics_fd with
  | Some m ->
      Unix.set_nonblock m;
      t.http <-
        Some
          (Http_endpoint.attach t.reactor ~fd:m ~doc:(fun () -> metrics_doc t))
  | None -> ());
  ignore (Reactor.after t.reactor 1.0 (housekeeping t));
  t.worker_threads <-
    List.init (max 1 t.cfg.workers) (fun _ -> Thread.create (worker_loop t) ());
  while not t.stopping do
    Reactor.run_once ~max_timeout:1.0 t.reactor
  done;
  cleanup t
