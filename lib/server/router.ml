(* The router tier: the structural fix for head-of-line blocking.

   The interval space is partitioned into contiguous ranges along the
   RI-tree's virtual backbone (split points are backbone node values,
   so an interval strictly inside a shard's range forks inside that
   shard's subtree forest — the paper's natural partition points). One
   rikitd process serves each range; the router fans queries out to the
   shards whose ranges overlap the query extent and merges the streams.
   A multi-second scan then pins one shard process while every other
   shard — and the router itself — keeps answering.

   Placement rule: an interval is stored on EVERY shard whose range its
   extent overlaps (boundary spanners are replicated, identified by
   their (lower, upper, id) triple at merge). Correctness of
   scatter-gather follows from ranges partitioning the integer line: a
   match m of a query with bounding extent E satisfies m ∩ E ≠ ∅, and
   the shard owning any point of m ∩ E both stores m and is a fan-out
   target.

   Unlike the shard dispatcher (one select loop), the router is
   thread-per-connection: its work is waiting on shard sockets, which
   OCaml threads overlap freely (the runtime lock is released around
   blocking syscalls), so one stalled client cannot block another. Each
   connection keeps one {!Failover} leg per shard — per-request
   deadlines, endpoint rotation towards a standby, and per-shard
   read-your-writes LSN tokens all come from that machinery. A shard
   that stays unreachable through failover degrades the answer to a
   typed [Partial] frame, never a hang. *)

(* ---------------- the shard map ---------------- *)

module Map = struct
  type t = {
    ranges : (int * int) array;  (* inclusive, contiguous, ascending *)
    eps : (string * int) list array;
  }

  let floor_pow2 n =
    let rec go p = if p * 2 <= n then go (p * 2) else p in
    go 1

  (* Split points aligned to the virtual backbone: every cut is a
     multiple of a power-of-two granularity g, i.e. a backbone node
     value at level log2 g (Backbone.level), chosen nearest to the
     equal-width ideal so uniform load stays balanced even when
     [domain_max + 1] is not a power of two. *)
  let backbone_cuts ~domain_max ~shards =
    if shards < 1 then invalid_arg "Router.Map.backbone_cuts: shards < 1";
    if domain_max < 1 then invalid_arg "Router.Map.backbone_cuts: domain_max < 1";
    let span = domain_max + 1 in
    let g = floor_pow2 (max 1 (span / (2 * shards))) in
    let cuts = ref [] in
    for i = shards - 1 downto 1 do
      let ideal = i * span / shards in
      let cut = (ideal + (g / 2)) / g * g in
      let cut = max 1 (min cut domain_max) in
      cuts := cut :: !cuts
    done;
    let rec ascending last = function
      | [] -> []
      | c :: tl -> if c > last then c :: ascending c tl else ascending last tl
    in
    ascending min_int !cuts

  let create ~cuts ~endpoints =
    let k = List.length endpoints in
    if k = 0 then invalid_arg "Router.Map.create: no shards";
    if List.length cuts <> k - 1 then
      invalid_arg "Router.Map.create: need exactly one cut per shard boundary";
    ignore
      (List.fold_left
         (fun prev c ->
           if c <= prev then
             invalid_arg "Router.Map.create: cuts must be strictly increasing";
           c)
         min_int cuts);
    let cuts_a = Array.of_list cuts in
    let ranges =
      Array.init k (fun i ->
          let lo = if i = 0 then min_int else cuts_a.(i - 1) in
          let hi = if i = k - 1 then max_int else cuts_a.(i) - 1 in
          (lo, hi))
    in
    { ranges; eps = Array.of_list endpoints }

  let shards t = Array.length t.ranges
  let range t i = t.ranges.(i)
  let endpoints t i = t.eps.(i)

  let entries t =
    Array.to_list
      (Array.mapi
         (fun i (lo, hi) ->
           { Protocol.shard_lo = lo; shard_hi = hi; endpoints = t.eps.(i) })
         t.ranges)

  (* Shard indices whose ranges overlap [lower, upper], ascending. The
     ranges are contiguous, so this is always a consecutive run. *)
  let targets t ~lower ~upper =
    let out = ref [] in
    Array.iteri
      (fun i (lo, hi) -> if lower <= hi && upper >= lo then out := i :: !out)
      t.ranges;
    List.rev !out

  let owner t point =
    let rec go i =
      if i >= Array.length t.ranges - 1 then Array.length t.ranges - 1
      else
        let _, hi = t.ranges.(i) in
        if point <= hi then i else go (i + 1)
    in
    go 0

  (* Conservative bounding extent for the stored matches of an Allen
     query [q] (matches m satisfy [holds r m q], stored first): the
     eleven intersection-implying relations force m to overlap q, while
     Before/Meets (m ends at or before q's start) and After/Met_by
     (m starts at or after q's end) bound m to one side. [None] means
     no interval can match (the extent is empty at the domain edge). *)
  let allen_extent r ~lower ~upper =
    match r with
    | Interval.Allen.Before ->
        if lower = min_int then None else Some (min_int, lower - 1)
    | Interval.Allen.Meets -> Some (min_int, lower)
    | Interval.Allen.After ->
        if upper = max_int then None else Some (upper + 1, max_int)
    | Interval.Allen.Met_by -> Some (upper, max_int)
    | _ -> Some (lower, upper)

  (* Merge scattered result sets: replicated boundary spanners come back
     from several shards as identical (lower, upper, id) triples — keep
     one — and the union is re-sorted so the merged answer is
     deterministic regardless of shard arrival order. *)
  let merge_rows lists =
    let seen = Hashtbl.create 256 in
    let keep (row : int array) =
      if Array.length row < 3 then true
      else begin
        let key = (row.(0), row.(1), row.(2)) in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end
      end
    in
    let rows = List.concat_map (List.filter keep) lists in
    List.sort
      (fun (a : int array) (b : int array) ->
        if Array.length a < 3 || Array.length b < 3 then compare a b
        else compare (a.(0), a.(1), a.(2)) (b.(0), b.(1), b.(2)))
      rows
end

(* ---------------- the router server ---------------- *)

type config = {
  host : string;
  port : int;  (* 0 binds an ephemeral port; see [port] *)
  max_sessions : int;
  shard_deadline_ms : float;
      (* per-request budget for each shard leg; a partitioned shard
         surfaces as a typed Partial after at most roughly this long *)
  metrics_port : int option;
}

let default_config =
  { host = "127.0.0.1"; port = 7654; max_sessions = 64;
    shard_deadline_ms = 15_000.; metrics_port = None }

type t = {
  cfg : config;
  map : Map.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  metrics_fd : Unix.file_descr option;
  metrics_bound_port : int;
  st : Server_stats.t;
  mu : Mutex.t;
      (* guards st, sessions, client_fds, threads, shard_* counters:
         every client thread records into them *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  mutable stopping : bool;
  mutable sessions : int;
  mutable client_fds : Unix.file_descr list;
  mutable threads : Thread.t list;
  shard_lsn : int array;
      (* highest commit LSN acked per shard, router-global: a fresh
         connection's legs are seeded with these so read-your-writes
         holds across clients that observe each other's commits *)
  shard_rpcs : int array;
  shard_errors : int array;
  mutable partials : int;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let listen_on host port backlog =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  (fd, bound)

let create cfg ~map =
  let listen_fd, bound_port = listen_on cfg.host cfg.port 128 in
  let metrics_fd, metrics_bound_port =
    match cfg.metrics_port with
    | None -> (None, 0)
    | Some p ->
        let fd, bp = listen_on cfg.host p 16 in
        (Some fd, bp)
  in
  let stop_r, stop_w = Unix.pipe () in
  let k = Map.shards map in
  {
    cfg;
    map;
    listen_fd;
    bound_port;
    metrics_fd;
    metrics_bound_port;
    st = Server_stats.create ~now:(Unix.gettimeofday ());
    mu = Mutex.create ();
    stop_r;
    stop_w;
    stopping = false;
    sessions = 0;
    client_fds = [];
    threads = [];
    shard_lsn = Array.make k 0;
    shard_rpcs = Array.make k 0;
    shard_errors = Array.make k 0;
    partials = 0;
  }

let port t = t.bound_port
let metrics_port t = t.metrics_bound_port
let stats t = t.st
let map t = t.map

let stop t =
  try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let metrics_doc t =
  locked t (fun () ->
      let shards =
        Array.init (Map.shards t.map) (fun i ->
            let lo, hi = Map.range t.map i in
            { Metrics.s_lo = lo; s_hi = hi;
              s_endpoints = Map.endpoints t.map i;
              s_lsn = t.shard_lsn.(i);
              s_rpcs = t.shard_rpcs.(i);
              s_errors = t.shard_errors.(i) })
      in
      Metrics.render_router ~now:(Unix.gettimeofday ()) ~stats:t.st ~shards
        ~partials:t.partials ())

(* ---------------- per-connection state ---------------- *)

type conn = {
  fd : Unix.file_descr;
  framer : Protocol.Framer.t;
  legs : Failover.t option array;  (* lazily dialled, one per shard *)
  begun : bool array;  (* leg has an open BEGIN on its shard session *)
  mutable in_txn : bool;
}

exception Conn_dead

let send conn id resp =
  let frame = Protocol.encode_response ~id resp in
  let len = Bytes.length frame in
  let rec go off =
    if off < len then
      match Unix.write conn.fd frame off (len - off) with
      | 0 -> raise Conn_dead
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> raise Conn_dead
  in
  go 0

(* The connection's leg to shard [i], dialled lazily. A fresh leg is
   seeded with the router-global LSN token for that shard, so even a
   brand-new connection only adopts an endpoint that has applied every
   commit the router ever acked there. *)
let leg t conn i =
  match conn.legs.(i) with
  | Some l -> l
  | None ->
      let l =
        Failover.create ~deadline_ms:t.cfg.shard_deadline_ms
          ~endpoints:(Map.endpoints t.map i) ()
      in
      Failover.note_lsn l (locked t (fun () -> t.shard_lsn.(i)));
      conn.legs.(i) <- Some l;
      l

(* An open client transaction pins each shard's snapshot lazily, at the
   transaction's first touch of that shard (documented semantics: the
   per-shard snapshots are taken at first use, not all at BEGIN). *)
let ensure_begun conn l i =
  if conn.in_txn && not conn.begun.(i) then
    match Failover.begin_txn l with
    | Ok () ->
        conn.begun.(i) <- true;
        Ok ()
    | Result.Error _ as e -> e
  else Ok ()

let note_shard_result t i ok =
  locked t (fun () ->
      t.shard_rpcs.(i) <- t.shard_rpcs.(i) + 1;
      if not ok then t.shard_errors.(i) <- t.shard_errors.(i) + 1)

(* One RPC to shard [i] on this connection's leg, with per-shard
   latency recorded under op "shard:<i>". Reads retry across the
   shard's endpoints; mutations keep Failover's contract — a mid-flight
   transport death is ambiguous and comes back as the typed error. *)
let shard_rpc t conn i ~mutation req =
  let t0 = Unix.gettimeofday () in
  let l = leg t conn i in
  let res =
    match ensure_begun conn l i with
    | Result.Error _ as e -> e
    | Ok () ->
        let run = if mutation then Failover.mutate else Failover.read in
        run l (fun c -> Client.rpc_result c req)
  in
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      Server_stats.record t.st ~op:(Printf.sprintf "shard:%d" i) ~seconds:dt
        ~io:0);
  note_shard_result t i (Result.is_ok res);
  res

(* Commit this connection's transaction on shard [i]; the leg notes the
   ack LSN and the router lifts it into the global per-shard token. *)
let shard_commit t conn i =
  let t0 = Unix.gettimeofday () in
  let l = leg t conn i in
  let res = Failover.commit l in
  let dt = Unix.gettimeofday () -. t0 in
  locked t (fun () ->
      Server_stats.record t.st ~op:(Printf.sprintf "shard:%d" i) ~seconds:dt
        ~io:0;
      (match res with
      | Ok lsn -> if lsn > t.shard_lsn.(i) then t.shard_lsn.(i) <- lsn
      | Result.Error _ -> ()));
  note_shard_result t i (Result.is_ok res);
  res

let count_partial t =
  locked t (fun () -> t.partials <- t.partials + 1)

(* Map a leg's typed error back onto the wire. Transport-level failures
   (the shard stayed unreachable through failover) become the typed
   partial-result frame; semantic verdicts pass through unchanged. *)
let response_of_error t missing e =
  match (e : Client.error) with
  | Client.Io m | Client.Timeout m ->
      count_partial t;
      Protocol.Partial { missing; msg = m }
  | Client.Server m -> Protocol.Error m
  | Client.Invalid m -> Protocol.Invalid m
  | Client.Overloaded m -> Protocol.Overloaded m
  | Client.Read_only m -> Protocol.Read_only m
  | Client.Conflict m -> Protocol.Conflict m
  | Client.Partial { missing; msg } -> Protocol.Partial { missing; msg }
  | Client.Unexpected m -> Protocol.Error m

(* Scatter a read to every target shard concurrently — the first target
   runs on this thread, the rest on short-lived ones. Results come back
   in target order. Legs are per-connection and targets are distinct,
   so the threads never share a leg. *)
let scatter t conn targets req =
  match targets with
  | [] -> []
  | [ i ] -> [ (i, shard_rpc t conn i ~mutation:false req) ]
  | first :: rest ->
      let slots = Array.make (List.length targets) None in
      let threads =
        List.mapi
          (fun j i ->
            Thread.create
              (fun () ->
                slots.(j + 1) <- Some (i, shard_rpc t conn i ~mutation:false req))
              ())
          rest
      in
      slots.(0) <- Some (first, shard_rpc t conn first ~mutation:false req);
      List.iter Thread.join threads;
      List.filter_map Fun.id (Array.to_list slots)

let default_columns = [ "lower"; "upper"; "id" ]

(* Gather scattered query answers into one response. Precedence: a
   semantic verdict from any shard (Error/Invalid/...) is forwarded
   first — it is deterministic and would have been the single-node
   answer; then unreachable shards degrade the answer to Partial; only
   a full sweep merges. *)
let gather_query t conn req extent =
  match extent with
  | None -> Protocol.Rows { columns = default_columns; rows = [] }
  | Some (lo, hi) -> (
      let targets = Map.targets t.map ~lower:lo ~upper:hi in
      let results = scatter t conn targets req in
      let verdict =
        List.find_map
          (function
            | _, Ok (Protocol.Rows _) -> None
            | _, Ok r -> Some r
            | _ -> None)
          results
      in
      match verdict with
      | Some r -> r
      | None -> (
          let missing =
            List.filter_map
              (function i, Result.Error _ -> Some i | _ -> None)
              results
          in
          match missing with
          | _ :: _ ->
              let msg =
                List.find_map
                  (function
                    | _, Result.Error e -> Some (Client.error_to_string e)
                    | _ -> None)
                  results
                |> Option.value ~default:"shard unreachable"
              in
              count_partial t;
              Protocol.Partial { missing; msg }
          | [] ->
              let columns =
                List.find_map
                  (function
                    | _, Ok (Protocol.Rows { columns; _ }) -> Some columns
                    | _ -> None)
                  results
                |> Option.value ~default:default_columns
              in
              let rows =
                List.filter_map
                  (function
                    | _, Ok (Protocol.Rows { rows; _ }) -> Some rows
                    | _ -> None)
                  results
              in
              (* A fan-out-1 query cannot see a spanner twice — forward
                 the shard's rows verbatim instead of paying the dedup
                 hash on the common (range-local) case. *)
              match rows with
              | [ only ] -> Protocol.Rows { columns; rows = only }
              | _ -> Protocol.Rows { columns; rows = Map.merge_rows rows }))

let trailing_int msg =
  int_of_string_opt (List.hd (List.rev (String.split_on_char ' ' msg)))

(* Insert: the owning shard (the first whose range the extent overlaps)
   assigns the id, then the row is replicated to every other
   overlapping shard under that id — so replicas of one logical row
   carry one identity and collapse at merge time. *)
let handle_insert t conn ~lower ~upper ~id:iid =
  let targets = Map.targets t.map ~lower ~upper in
  let own = List.hd targets in
  let req = Protocol.Insert { lower; upper; id = iid } in
  match shard_rpc t conn own ~mutation:true req with
  | Result.Error e -> response_of_error t [ own ] e
  | Ok (Protocol.Ack msg as ack) -> (
      let rest = List.tl targets in
      if rest = [] then ack
      else
        let assigned =
          match iid with Some v -> Some v | None -> trailing_int msg
        in
        match assigned with
        | None -> Protocol.Error ("unparseable insert ack from owner: " ^ msg)
        | Some aid ->
            let replica = Protocol.Insert { lower; upper; id = Some aid } in
            let missing =
              List.filter_map
                (fun i ->
                  match shard_rpc t conn i ~mutation:true replica with
                  | Ok (Protocol.Ack _) -> None
                  | Ok _ | Result.Error _ -> Some i)
                rest
            in
            if missing = [] then ack
            else begin
              count_partial t;
              Protocol.Partial
                { missing;
                  msg =
                    Printf.sprintf
                      "inserted id %d on the owning shard but not every \
                       boundary shard"
                      aid }
            end)
  | Ok other -> other

let handle_delete t conn ~lower ~upper ~id:iid =
  let targets = Map.targets t.map ~lower ~upper in
  let req = Protocol.Delete { lower; upper; id = iid } in
  let results =
    List.map (fun i -> (i, shard_rpc t conn i ~mutation:true req)) targets
  in
  match results with
  | [] -> Protocol.Invalid "no shard covers the interval"
  | (own, own_res) :: rest -> (
      match own_res with
      | Result.Error e -> response_of_error t [ own ] e
      | Ok own_resp ->
          let missing =
            List.filter_map
              (function i, Result.Error _ -> Some i | _ -> None)
              rest
          in
          if missing = [] then own_resp
          else begin
            count_partial t;
            Protocol.Partial
              { missing;
                msg = "deleted on the owning shard but not every boundary shard"
              }
          end)

(* COMMIT/ROLLBACK fan to every leg this connection ever dialled: a leg
   holds that shard's session (its implicit transaction and any BEGUN
   snapshot), and closing the transaction on an untouched shard is
   harmless. Cross-shard commits are NOT atomic — each shard commits
   independently (first-committer-wins locally); a Conflict or an
   unreachable shard after others committed is reported as-is. *)
let handle_commit t conn =
  let legs =
    List.filter_map
      (fun i -> if conn.legs.(i) <> None then Some i else None)
      (List.init (Map.shards t.map) Fun.id)
  in
  let results = List.map (fun i -> (i, shard_commit t conn i)) legs in
  conn.in_txn <- false;
  Array.fill conn.begun 0 (Array.length conn.begun) false;
  let conflict =
    List.find_map
      (function _, Result.Error (Client.Conflict m) -> Some m | _ -> None)
      results
  in
  match conflict with
  | Some m -> Protocol.Conflict m
  | None -> (
      let missing =
        List.filter_map
          (function i, Result.Error _ -> Some i | _ -> None)
          results
      in
      match missing with
      | _ :: _ ->
          count_partial t;
          Protocol.Partial
            { missing; msg = "commit not acknowledged by every shard" }
      | [] ->
          let lsn =
            List.fold_left
              (fun acc -> function _, Ok l -> max acc l | _ -> acc)
              0 results
          in
          Protocol.Ack (Printf.sprintf "committed lsn %d" lsn))

let handle_rollback t conn =
  let legs =
    List.filter_map
      (fun i -> if conn.legs.(i) <> None then Some i else None)
      (List.init (Map.shards t.map) Fun.id)
  in
  let results =
    List.map
      (fun i ->
        let l = leg t conn i in
        (i, Failover.rollback l))
      legs
  in
  conn.in_txn <- false;
  Array.fill conn.begun 0 (Array.length conn.begun) false;
  let missing =
    List.filter_map (function i, Result.Error _ -> Some i | _ -> None) results
  in
  if missing = [] then Protocol.Ack "rolled back"
  else begin
    count_partial t;
    Protocol.Partial { missing; msg = "rollback not acknowledged by every shard" }
  end

let unsupported = "not supported by the router; connect to a shard directly"

let dispatch t conn id req =
  match req with
  | Protocol.Ping -> send conn id (Protocol.Ack "pong")
  | Protocol.Shard_map_req ->
      send conn id (Protocol.Shard_map (Map.entries t.map))
  | Protocol.Stats ->
      let snap =
        locked t (fun () ->
            Server_stats.snapshot t.st ~now:(Unix.gettimeofday ())
              ~io:{ Storage.Block_device.Stats.reads = 0; writes = 0 })
      in
      send conn id (Protocol.Stats_reply snap)
  | Protocol.Metrics -> send conn id (Protocol.Ack (metrics_doc t))
  | Protocol.Intersect { lower; upper } ->
      if lower > upper then
        send conn id
          (Protocol.Invalid
             (Printf.sprintf "empty interval [%d, %d]" lower upper))
      else send conn id (gather_query t conn req (Some (lower, upper)))
  | Protocol.Allen { relation; lower; upper } ->
      if lower > upper then
        send conn id
          (Protocol.Invalid
             (Printf.sprintf "empty interval [%d, %d]" lower upper))
      else
        send conn id
          (gather_query t conn req (Map.allen_extent relation ~lower ~upper))
  | Protocol.Insert { lower; upper; id = iid } ->
      if lower > upper then
        send conn id
          (Protocol.Invalid
             (Printf.sprintf "empty interval [%d, %d]" lower upper))
      else send conn id (handle_insert t conn ~lower ~upper ~id:iid)
  | Protocol.Delete { lower; upper; id = iid } ->
      if lower > upper then
        send conn id
          (Protocol.Invalid
             (Printf.sprintf "empty interval [%d, %d]" lower upper))
      else send conn id (handle_delete t conn ~lower ~upper ~id:iid)
  | Protocol.Begin ->
      if conn.in_txn then
        send conn id (Protocol.Invalid "transaction already in progress")
      else begin
        conn.in_txn <- true;
        send conn id (Protocol.Ack "begin")
      end
  | Protocol.Commit -> send conn id (handle_commit t conn)
  | Protocol.Rollback -> send conn id (handle_rollback t conn)
  | Protocol.Sql _ | Protocol.Prepare _ | Protocol.Execute _
  | Protocol.Close_stmt _ | Protocol.Explain _ ->
      send conn id (Protocol.Error unsupported)
  | Protocol.Repl_subscribe _ | Protocol.Repl_status ->
      send conn id
        (Protocol.Error "replication ops are not supported by the router")
  | Protocol.Repl_ack _ -> ()  (* fire-and-forget, mirrored from rikitd *)

let handle_frame t conn payload =
  match Protocol.decode_request payload with
  | Result.Error e ->
      send conn 0L (Protocol.Error (Protocol.error_to_string e))
  | Ok (id, req) ->
      let t0 = Unix.gettimeofday () in
      dispatch t conn id req;
      let dt = Unix.gettimeofday () -. t0 in
      locked t (fun () ->
          Server_stats.record t.st ~op:(Protocol.request_op_name req)
            ~seconds:dt ~io:0)

let handle_conn t conn =
  let scratch = Bytes.create 65536 in
  let running = ref true in
  while !running do
    match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
    | 0 -> running := false
    | n ->
        Protocol.Framer.feed conn.framer scratch n;
        let draining = ref true in
        while !draining && !running do
          match Protocol.Framer.next conn.framer with
          | Ok None -> draining := false
          | Ok (Some payload) -> handle_frame t conn payload
          | Result.Error e ->
              (* a bad length prefix is beyond recovery: answer typed,
                 then close *)
              send conn 0L (Protocol.Error (Protocol.error_to_string e));
              running := false
        done
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> running := false
    | exception Conn_dead -> running := false
  done

let close_conn t conn =
  Array.iter (function Some l -> Failover.close l | None -> ()) conn.legs;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.sessions <- t.sessions - 1;
      Server_stats.session_closed t.st;
      t.client_fds <- List.filter (fun fd -> fd <> conn.fd) t.client_fds)

let accept_client t =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error _ -> ()
  | fd, _peer ->
      let admitted =
        locked t (fun () ->
            if t.sessions >= t.cfg.max_sessions then begin
              Server_stats.overloaded t.st;
              false
            end
            else begin
              t.sessions <- t.sessions + 1;
              Server_stats.session_opened t.st;
              t.client_fds <- fd :: t.client_fds;
              true
            end)
      in
      if not admitted then begin
        let frame =
          Protocol.encode_response ~id:0L
            (Protocol.Overloaded
               (Printf.sprintf "router at session limit (%d)"
                  t.cfg.max_sessions))
        in
        (try ignore (Unix.write fd frame 0 (Bytes.length frame))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else begin
        let conn =
          { fd;
            framer = Protocol.Framer.create ();
            legs = Array.make (Map.shards t.map) None;
            begun = Array.make (Map.shards t.map) false;
            in_txn = false }
        in
        let th =
          Thread.create
            (fun () ->
              Fun.protect
                ~finally:(fun () -> close_conn t conn)
                (fun () -> try handle_conn t conn with Conn_dead | _ -> ()))
            ()
        in
        locked t (fun () -> t.threads <- th :: t.threads)
      end

(* Metrics endpoint: same plain HTTP/1.0 contract as the dispatcher's,
   but served from a short-lived thread so a slow scraper cannot stall
   the accept loop. *)
let serve_metrics_conn t fd =
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let scratch = Bytes.create 1024 in
  (try ignore (Unix.read fd scratch 0 (Bytes.length scratch))
   with Unix.Unix_error _ -> ());
  let body = metrics_doc t in
  let resp =
    Printf.sprintf
      "HTTP/1.0 200 OK\r\n\
       Content-Type: text/plain; version=0.0.4\r\n\
       Content-Length: %d\r\n\
       Connection: close\r\n\
       \r\n\
       %s"
      (String.length body) body
  in
  let data = Bytes.of_string resp in
  let len = Bytes.length data in
  let rec write_all off =
    if off < len then
      match Unix.write fd data off (len - off) with
      | 0 -> ()
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error _ -> ()
  in
  write_all 0;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_metrics t mfd =
  match Unix.accept mfd with
  | exception Unix.Unix_error _ -> ()
  | fd, _peer ->
      let th = Thread.create (fun () -> serve_metrics_conn t fd) () in
      locked t (fun () -> t.threads <- th :: t.threads)

let serve t =
  let scratch = Bytes.create 16 in
  let finished = ref false in
  while not !finished do
    let reads =
      t.stop_r :: t.listen_fd
      :: (match t.metrics_fd with Some m -> [ m ] | None -> [])
    in
    match Unix.select reads [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
        if List.mem t.stop_r readable then begin
          (try ignore (Unix.read t.stop_r scratch 0 (Bytes.length scratch))
           with Unix.Unix_error _ -> ());
          t.stopping <- true;
          finished := true
        end
        else begin
          if List.mem t.listen_fd readable then accept_client t;
          match t.metrics_fd with
          | Some m when List.mem m readable -> accept_metrics t m
          | _ -> ()
        end
  done;
  (* Shutdown: stop accepting, then shut every client socket down so
     the per-connection threads observe EOF (or a failed write), close
     their legs, and exit; join them all before returning. *)
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let fds = locked t (fun () -> t.client_fds) in
  List.iter
    (fun fd ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    fds;
  let threads = locked t (fun () -> t.threads) in
  List.iter Thread.join threads;
  (match t.metrics_fd with
  | Some m -> ( try Unix.close m with Unix.Unix_error _ -> ())
  | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  try Unix.close t.stop_w with Unix.Unix_error _ -> ()
