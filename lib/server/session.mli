(** Per-connection sessions over the shared database state.

    The server owns exactly one database — one
    {!Relation.Catalog.t}, one RI-tree for the typed interval ops, and
    per-session {!Sqlfront.Engine} sessions bound to that catalog (so
    transient collections stay private to a connection while tables are
    shared, the same split the paper assumes of its host RDBMS).

    Transactions are per-session MVCC ({!Relation.Txn}): every session
    runs inside a transaction whose writes are buffered until COMMIT
    validates and applies them under a fresh commit LSN; ROLLBACK
    discards that one write set and nothing else. Reads are
    read-committed per statement, or snapshot-stable after an explicit
    BEGIN pins the snapshot. On durable servers COMMIT additionally
    forces (or group-commit stages) the journal. *)

(** {2 Shared database state} *)

type shared

val shared :
  ?durable:bool ->
  ?cache_blocks:int ->
  ?tree_name:string ->
  ?hot_tier_mb:int ->
  unit ->
  shared
(** A fresh database with an empty RI-tree (default name
    ["intervals"]). [durable:true] (default [false]) enables the
    write-ahead journal and with it [Rollback]. [hot_tier_mb] (default
    [0] = disabled) budgets the RAM-resident hot tier: the typed
    interval ops then serve from an in-memory HINT replica whenever the
    cost model prefers it. *)

val catalog : shared -> Relation.Catalog.t
val tree : shared -> Ritree.Ri_tree.t
val durable : shared -> bool

val memtier : shared -> Exec.Memtier.t
(** The hot-tier manager (budget 0 when disabled). *)

val txns : shared -> Relation.Txn.mgr
(** The MVCC transaction manager (commit/abort/conflict counters live
    here). *)

val preload : shared -> Interval.Ivl.t array -> unit
(** Bulk-insert a dataset into the RI-tree (ids [0..n-1]) and commit. *)

val preload_ids : shared -> (int * Interval.Ivl.t) array -> unit
(** Bulk-insert with explicit ids and commit. A shard of a routed
    cluster preloads its slice of a global dataset this way, so a
    boundary spanner replicated on several shards carries one global
    identity — the key the router's merge deduplicates on. *)

val commit_shared : shared -> unit
(** {!Relation.Catalog.commit} on the current catalog handle. *)

val commit_request_shared : shared -> unit
(** Stage a commit for group commit ({!Relation.Catalog.commit_request});
    the dispatcher batches these and answers after one
    {!commit_force_shared} covers the whole window. *)

val commit_force_shared : shared -> int
(** Force the staged batch (one marker, one log force); returns its
    size. *)

val durable_lsn_shared : shared -> int
(** The durable-log byte offset ({!Storage.Journal.durable_lsn}) — the
    LSN token commit acks carry so a failover client can wait out
    replica lag. [0] on a non-durable server. *)

val flush_shared : shared -> unit
(** Write back all dirty pages (graceful-shutdown path); on a durable
    server this checkpoints, so a reopen sees every acknowledged
    write. *)

val reopen : shared -> unit
(** Rebuild catalog and tree handles from persistent storage after a
    clean {!flush_shared} — the in-process equivalent of a daemon
    restart (durable servers only). *)

val reload : shared -> unit
(** Rebuild catalog and tree handles after the device was rewritten
    underneath them — the replica apply path, run after each replicated
    commit batch lands on the device. Cached pages are dropped without
    write-back, live transactions are force-aborted (a replica's pinned
    snapshots do not survive an applied batch), and the hot tier is
    invalidated. Durable servers only. *)

(** {2 Sessions} *)

type t

val create : shared -> t
(** Register a new session (ids count up from 1). *)

val close : t -> unit

val id : t -> int
val requests : t -> int
(** Requests this session has executed. *)

val has_pending_writes : t -> bool
(** The session's transaction holds buffered (uncommitted) writes. The
    dispatcher uses this to decide whether an open group-commit window
    could still grow: once no live session has writes in flight, waiting
    out the window deadline only adds latency. *)

val sql_statements : t -> int
(** SQL statements run through this session's engine (the
    {!Sqlfront.Engine.statements} counter, surviving re-attach). *)

val mutating : t -> Protocol.request -> bool
(** Whether the request writes to the shared database. SQL is classified
    by its first keyword ([select]/[explain] are reads); [Execute] by the
    kind of the named prepared statement in this session. Used to enforce
    degraded read-only mode. *)

val degraded_reason_shared : shared -> string option
(** [Some reason] once corruption flipped the catalog read-only. *)

val handle : t -> Protocol.request -> Protocol.response
(** Execute one request. Never raises: every failure — SQL errors, bad
    intervals — comes back as a typed frame ([Error], [Invalid],
    [Conflict]). [Stats] is the dispatcher's job and answers [Error]
    here. A detected {!Storage.Buffer_pool.Corrupt_page} returns a
    typed [Error] {e and} degrades the catalog: from then on mutating
    requests answer [Read_only] while reads keep serving. An injected
    transient {!Storage.Block_device.Io_error} returns a typed [Error]
    the client may retry. *)

val stage_commit : t -> (unit, string) result
(** A COMMIT request entering a group-commit window: counted against
    this session; the MVCC write set is validated and applied NOW and
    the dirty images staged ({!commit_request_shared}), with the
    marker/force (and the client's Ack) deferred to the dispatcher's
    batch flush. [Error msg] is a first-committer-wins conflict — the
    transaction is already aborted and replaced, nothing was staged,
    and the client is owed a [Conflict] frame immediately. *)
