(* One-shot HTTP/1.0 exposition endpoint served directly on a reactor.

   Replaces the dispatcher's inline blocking metrics handler and the
   router's thread-per-scrape listener: every scrape is now a plain
   reactor connection — accept, wait for the first request bytes (or
   one second of silence, matching the old SO_RCVTIMEO behaviour),
   write the document through a buffered writer, close once drained.
   A scraper that connects and says nothing costs one idle fd, never a
   thread and never a blocked loop. *)

type hconn = {
  hfd : Unix.file_descr;
  hwr : Reactor.Writer.t;
  mutable responded : bool;
  mutable dead : bool;
  mutable htimer : Reactor.timer option;
}

type t = {
  r : Reactor.t;
  lfd : Unix.file_descr;
  doc : unit -> string;
  mutable conns : hconn list;
  mutable accepting : bool;
}

(* Answer even a silent scraper after this long (the old receive
   timeout), and abandon an unread response after the grace. *)
let silent_after = 1.0
let drain_grace = 5.0

let conn_count t = List.length t.conns

let close_hconn t hc =
  if not hc.dead then begin
    hc.dead <- true;
    (match hc.htimer with Some tm -> Reactor.cancel t.r tm | None -> ());
    hc.htimer <- None;
    Reactor.deregister t.r hc.hfd;
    (try Unix.close hc.hfd with Unix.Unix_error _ -> ());
    t.conns <- List.filter (fun c -> c != hc) t.conns
  end

let flush_hconn t hc =
  match Reactor.Writer.flush hc.hwr ~now:(Unix.gettimeofday ()) with
  | Reactor.Writer.Drained ->
      if hc.responded then close_hconn t hc
      else Reactor.set_write_interest t.r hc.hfd false
  | Reactor.Writer.Pending -> Reactor.set_write_interest t.r hc.hfd true
  | Reactor.Writer.Peer_gone -> close_hconn t hc

let respond t hc =
  if not (hc.responded || hc.dead) then begin
    hc.responded <- true;
    (match hc.htimer with Some tm -> Reactor.cancel t.r tm | None -> ());
    let body = t.doc () in
    let resp =
      Printf.sprintf
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4\r\n\
         Content-Length: %d\r\n\
         Connection: close\r\n\
         \r\n\
         %s"
        (String.length body) body
    in
    ignore (Reactor.Writer.push hc.hwr (Bytes.of_string resp));
    Reactor.set_read_interest t.r hc.hfd false;
    hc.htimer <- Some (Reactor.after t.r drain_grace (fun () -> close_hconn t hc));
    flush_hconn t hc
  end

let read_hconn t hc =
  let scratch = Bytes.create 1024 in
  match Unix.read hc.hfd scratch 0 (Bytes.length scratch) with
  | 0 -> if hc.responded then close_hconn t hc else respond t hc
  | _n -> respond t hc
  | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_hconn t hc

let accept_loop t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.lfd with
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      -> continue := false
    | exception Unix.Unix_error _ -> continue := false
    | fd, _peer ->
        if not t.accepting then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          let hc =
            {
              hfd = fd;
              hwr = Reactor.Writer.create ~now:(Unix.gettimeofday ()) fd;
              responded = false;
              dead = false;
              htimer = None;
            }
          in
          t.conns <- hc :: t.conns;
          Reactor.register t.r fd
            ~readable:(fun () -> read_hconn t hc)
            ~writable:(fun () -> flush_hconn t hc)
            ();
          Reactor.set_write_interest t.r fd false;
          hc.htimer <- Some (Reactor.after t.r silent_after (fun () -> respond t hc))
        end
  done

let attach r ~fd ~doc =
  Unix.set_nonblock fd;
  let t = { r; lfd = fd; doc; conns = []; accepting = true } in
  Reactor.register r fd ~readable:(fun () -> accept_loop t) ();
  t

let stop_accepting t =
  t.accepting <- false;
  Reactor.set_read_interest t.r t.lfd false

let close_all t =
  t.accepting <- false;
  Reactor.deregister t.r t.lfd;
  List.iter (fun hc -> close_hconn t hc) t.conns
