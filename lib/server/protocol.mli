(** The rikitd wire protocol.

    Transport-agnostic, length-prefixed binary frames. A frame on the
    wire is

    {v
    | u32 payload length (big endian) | payload |
    v}

    and a payload is

    {v
    | u64 request id | u8 opcode | opcode-specific body |
    v}

    The codec is pure [Bytes] level — encoding returns a complete frame,
    decoding consumes a payload — so it is unit-testable without
    sockets. Decoding NEVER raises: malformed, truncated, or oversized
    input yields a typed {!error}, which the dispatcher turns into a
    typed {!const-Error} response instead of a dropped connection.

    Integers travel as 64-bit big-endian two's complement; strings and
    byte blobs as a u32 length followed by the raw bytes. The protocol
    is versioned ({!version}); the client sends no handshake — frames
    are self-describing — so version only changes when the frame layout
    does. *)

val version : int
(** Protocol version, bumped on any incompatible frame-layout change. *)

val max_payload : int
(** Upper bound on a frame payload in bytes. A declared length above
    this decodes to [Oversized] (a defence against garbage prefixes
    allocating gigabytes). *)

(** {2 Requests} *)

type explain_target =
  | Explain_sql of string  (** any statement text *)
  | Explain_intersect of { lower : int; upper : int }
      (** the typed intersection op's plan *)
  | Explain_allen of {
      relation : Interval.Allen.relation;
      lower : int;
      upper : int;
    }  (** the typed Allen op's plan *)

type request =
  | Sql of string
      (** One SQL statement for the session's {!Sqlfront.Engine}. *)
  | Insert of { lower : int; upper : int; id : int option }
      (** Register an interval in the server's RI-tree; the response
          carries the assigned id. *)
  | Delete of { lower : int; upper : int; id : int }
  | Intersect of { lower : int; upper : int }
      (** Intersection query; responds with [(lower, upper, id)] rows. *)
  | Allen of { relation : Interval.Allen.relation; lower : int; upper : int }
      (** Topological query for one Allen relation. *)
  | Begin
      (** Start an explicit transaction: pins the session's snapshot so
          reads are stable until COMMIT/ROLLBACK. Outside an explicit
          transaction every statement runs in its own read-committed
          implicit transaction. *)
  | Commit
      (** Validate and apply this session's write set (MVCC
          first-committer-wins); on durable servers also a journal
          force / group-commit stage. Answered with [Conflict] when a
          buffered write lost a race to a concurrent commit. *)
  | Rollback
      (** Discard this session's write set only; every other session's
          committed and in-flight work is untouched. *)
  | Stats  (** Ask for the server's {!stats} snapshot. *)
  | Ping
  | Metrics
      (** Ask for the Prometheus-style text exposition (same document
          the [--metrics-port] HTTP endpoint serves); answered with an
          [Ack] carrying the text. *)
  | Prepare of { name : string; sql : string }
      (** Parse and plan [sql] once under [name] in this session;
          answered with an [Ack] carrying the parameter count. *)
  | Execute of { name : string; params : int list }
      (** Run a prepared statement with positional parameters (bound to
          the statement's host variables in first-appearance order). *)
  | Close_stmt of string  (** Discard a prepared statement. *)
  | Explain of { analyze : bool; target : explain_target }
      (** EXPLAIN [ANALYZE] for a SQL text or a typed op; answered with
          an [Ack] carrying the rendered plan (the same renderer and
          cost annotations as SQL EXPLAIN). *)
  | Repl_subscribe of { from_lsn : int }
      (** Subscribe this connection to the primary's durable journal
          stream, starting at byte-offset LSN [from_lsn]. Answered with
          one [Repl_state] frame (confirming the primary's role and
          durable LSN), then a stream of [Repl_frame]s under the same
          request id, pushed after every commit force. The connection
          becomes a replication feed; the subscriber is exempt from
          idle reaping. [Invalid] if [from_lsn] falls outside the
          retained log; [Error] on a non-durable or replica server. *)
  | Repl_ack of { lsn : int }
      (** Fire-and-forget: the subscriber has durably applied the log up
          to byte [lsn]. No response frame — the primary uses these to
          release semi-synchronously parked COMMIT acknowledgements. *)
  | Repl_status
      (** Ask for this server's replication position; answered with
          [Repl_state]. On a primary [applied_lsn = durable_lsn]; on a
          replica [durable_lsn] is the primary's last-heard durable LSN
          (so [durable_lsn - applied_lsn] is the lag in bytes). *)
  | Shard_map_req
      (** Ask for the serving topology; answered with [Shard_map]. A
          router reports one entry per shard; a plain rikitd reports a
          single entry covering the whole interval space, so clients
          can discover topology uniformly. *)

val request_op_name : request -> string
(** Short lowercase tag ("sql", "insert", ...) used as the latency
    histogram key. *)

(** {2 Responses} *)

type op_stat = {
  op : string;
  count : int;
  total_io : int;   (** physical blocks read + written servicing this op *)
  p50_us : int;     (** latency percentiles in microseconds *)
  p95_us : int;
  p99_us : int;
  max_us : int;
}

type stats = {
  uptime_s : float;
  sessions : int;           (** currently connected *)
  peak_sessions : int;
  total_requests : int;
  overload_rejections : int;
  queue_depth : int;        (** requests parsed but not yet executed *)
  peak_queue_depth : int;
  io_reads : int;           (** device counters since server start *)
  io_writes : int;
  ops : op_stat list;
}

type role = Primary | Replica

type shard_entry = {
  shard_lo : int;
      (** inclusive lower bound of the shard's interval-space range
          ([min_int] on the leftmost shard) *)
  shard_hi : int;  (** inclusive upper bound ([max_int] on the rightmost) *)
  endpoints : (string * int) list;
      (** (host, port) serving this range; first is preferred, the rest
          are failover standbys *)
}

type response =
  | Ack of string  (** acknowledgement for DDL/DML, commit, ping, ... *)
  | Rows of { columns : string list; rows : int array list }
  | Error of string
      (** The statement failed; the session survives and the connection
          stays open. *)
  | Overloaded of string
      (** Admission control rejected the connection or request. *)
  | Stats_reply of stats
  | Read_only of string
      (** The server is in degraded read-only mode (corruption was
          detected); the mutation was rejected but reads keep serving. *)
  | Goodbye of string
      (** The server is closing this connection deliberately — idle
          timeout or shutdown — not an error. Sent with request id 0. *)
  | Invalid of string
      (** The request was well-formed on the wire but semantically
          invalid — e.g. an empty interval with [lower > upper]. A
          client bug, distinct from {!const-Error} (server-side failure);
          the session survives and the connection stays open. *)
  | Conflict of string
      (** The session's transaction lost a write-write race at COMMIT
          and was aborted (first-committer-wins). Non-retryable as-is:
          the client must re-read and re-run the transaction against
          the new state. The session survives with a fresh
          transaction. *)
  | Repl_frame of { lsn : int; payload : string }
      (** A slice of the primary's durable journal: [payload] holds the
          serialized log bytes [lsn, lsn + length payload). Slices are
          contiguous per subscription; chunked below {!max_payload}. *)
  | Repl_state of { role : role; durable_lsn : int; applied_lsn : int }
      (** Replication position (see {!const-Repl_status}). Also the
          confirmation frame for {!const-Repl_subscribe}. *)
  | Shard_map of shard_entry list
      (** The serving topology, in range order. Ranges are contiguous
          and cover the whole interval space; an interval is stored on
          every shard whose range its extent overlaps, so any query can
          be answered by fanning out to the overlapping ranges. *)
  | Partial of { missing : int list; msg : string }
      (** A scatter-gather answer is incomplete: the shards at the
          listed indices could not be reached within the deadline
          (after endpoint failover). Typed so a degraded cluster
          answers deterministically instead of hanging; non-retryable
          as-is — the client decides whether a partial answer is
          acceptable. *)

(** {2 Codec} *)

type error =
  | Truncated  (** well-formed prefix, but the payload ends early *)
  | Oversized of int  (** declared payload length exceeds {!max_payload} *)
  | Malformed of string  (** unknown opcode, negative length, trailing junk *)

val error_to_string : error -> string

val encode_request : id:int64 -> request -> Bytes.t
(** The complete frame, length prefix included. *)

val encode_response : id:int64 -> response -> Bytes.t

val decode_request : Bytes.t -> (int64 * request, error) result
(** Decode one payload (the frame with its length prefix stripped). *)

val decode_response : Bytes.t -> (int64 * response, error) result

(** {2 Frame splitting}

    A [Framer] accumulates raw transport bytes and yields complete
    payloads. One per connection. *)

module Framer : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> int -> unit
  (** [feed t buf n] appends the first [n] bytes of [buf]. *)

  val next : t -> (Bytes.t option, error) result
  (** The next complete payload, [None] when more bytes are needed, or
      [Error (Oversized _)] when the pending length prefix exceeds
      {!max_payload} (the connection is beyond recovery — close it). *)

  val buffered : t -> int
  (** Bytes held but not yet returned. *)
end
