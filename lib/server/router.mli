(** Scatter-gather router over a sharded rikitd cluster — the fix for
    head-of-line blocking.

    A single dispatcher multiplexes every session onto one event loop,
    so one fat query (a huge intersection scan) freezes every other
    client until it finishes. The router splits the interval domain
    into contiguous ranges along the RI-tree's virtual backbone, runs
    one full rikitd per range (its own process, its own event loop),
    and fans each query out to only the shards whose ranges the query
    extent overlaps, merging the answers. A multi-second scan then
    saturates one shard process while the others — and the router's
    reactor frontend — keep answering in milliseconds.

    {2 Threading}

    One reactor thread owns every client socket (framing, bounded
    buffered writes, the metrics endpoint) and a fixed pool of
    [workers] threads runs the shard RPCs, so the router's OS-thread
    count is a constant picked at create time — independent of how
    many clients are connected or scraping. Each connection's
    requests execute one at a time in arrival order; a scatter's legs
    are multiplexed on a single readiness wait ({!Client.rpc_many}),
    so a slow shard delays only that connection's merge, never a pool
    thread per leg. Slow consumers (peers that stop reading) are cut
    off with a typed [Overloaded] frame when their write buffer
    crosses the high-water mark, and reaped if they stall.

    {2 Placement and correctness}

    An interval is stored on {e every} shard whose range its extent
    overlaps, so boundary spanners are replicated. A query with
    bounding extent [E] is fanned to the shards overlapping [E]; any
    match [m] has [m ∩ E ≠ ∅], and the shard owning a point of that
    intersection both stores [m] and receives the query. Replicated
    matches return from several shards as identical
    [(lower, upper, id)] triples and are collapsed by
    {!Map.merge_rows} (ids are assigned by the {e owning} shard — the
    first overlapping range — and replicated under that identity, so
    the triple is a stable key even though each shard numbers its own
    local inserts).

    {2 Transactions}

    [BEGIN] is tracked router-side and opened lazily on each shard at
    the transaction's first touch of it — per-shard snapshots are taken
    at first use. [COMMIT] fans to every shard the connection dialled;
    each shard validates and commits {e independently}
    (first-committer-wins locally), so cross-shard commits are not
    atomic: a [Conflict] or unreachable shard may leave other shards
    committed, and is reported as such. The ack carries the maximum
    per-shard LSN; the router also folds each shard's commit LSN into a
    global per-shard read-your-writes token that seeds every new
    connection's {!Failover} legs.

    {2 Partial results}

    A shard that stays unreachable through its leg's endpoint failover
    degrades the answer to the typed [Partial { missing; msg }]
    response — the client learns exactly which ranges are unaccounted
    for, and the router never hangs on a dead shard beyond
    [shard_deadline_ms]. *)

(** The shard map: contiguous inclusive ranges covering the integer
    line, plus each shard's endpoint list (primary first, standbys
    after — the order {!Failover} tries them). *)
module Map : sig
  type t

  val backbone_cuts : domain_max:int -> shards:int -> int list
  (** [shards - 1] strictly increasing split points in
      [\[1, domain_max\]], each a multiple of the largest power of two
      [g ≤ (domain_max + 1) / (2 · shards)] — i.e. RI-tree backbone
      node values — nearest to the equal-width ideal. Fewer cuts are
      returned (yielding fewer effective shards) only when [shards] is
      large enough that nearest multiples collide. *)

  val create : cuts:int list -> endpoints:(string * int) list list -> t
  (** [create ~cuts ~endpoints] builds the map for
      [List.length endpoints] shards from strictly increasing [cuts]
      (exactly one per boundary): shard 0 covers [min_int .. c1 - 1],
      shard [i] covers [c_i .. c_{i+1} - 1], the last covers
      [c_k .. max_int].
      @raise Invalid_argument on an empty shard list, a cut-count
      mismatch, or non-increasing cuts. *)

  val shards : t -> int
  val range : t -> int -> int * int
  (** Inclusive [(lo, hi)] of shard [i]. *)

  val endpoints : t -> int -> (string * int) list

  val entries : t -> Protocol.shard_entry list
  (** The wire form, ascending by range — the [Shard_map] answer. *)

  val targets : t -> lower:int -> upper:int -> int list
  (** Shard indices whose ranges overlap [\[lower, upper\]], ascending
      (always a consecutive run); the fan-out set for a query with that
      bounding extent, and the placement set for an interval with that
      extent (head = owner). *)

  val owner : t -> int -> int
  (** The shard whose range contains the point. *)

  val allen_extent :
    Interval.Allen.relation -> lower:int -> upper:int -> (int * int) option
  (** Conservative bounding extent for the stored matches of an Allen
      query (stored interval as first argument of
      [Allen.holds r stored query]): [Before]/[Meets] bound matches to
      the left of the query, [After]/[Met_by] to the right, the nine
      intersecting relations to the query extent itself. [None] means
      no interval can match (empty extent at a domain edge). *)

  val merge_rows : int array list list -> int array list
  (** Union of per-shard row lists with replicated boundary spanners
      deduplicated by their [(lower, upper, id)] triple, re-sorted so
      the merged answer is deterministic regardless of shard arrival
      order. Rows with fewer than three columns are kept as-is. *)
end

type config = {
  host : string;
  port : int;  (** 0 binds an ephemeral port; see {!port} *)
  max_sessions : int;
  shard_deadline_ms : float;
      (** per-RPC budget for each shard leg; bounds how long a
          partitioned shard can stall a scatter before degrading the
          answer to [Partial] *)
  metrics_port : int option;
  workers : int;
      (** shard-RPC worker threads — the router's entire OS-thread
          budget besides the reactor thread *)
  backend : Reactor.Backend.kind option;
      (** readiness backend for the reactor; [None] auto-selects
          ([poll(2)] where the stub works, [Unix.select] otherwise,
          overridable via [RIKIT_REACTOR_BACKEND]) *)
}

val default_config : config
(** 127.0.0.1:7654, 64 sessions, 15 s shard deadline, no metrics,
    8 workers, auto-selected backend. *)

type t

val create : config -> map:Map.t -> t
(** Bind the listening socket(s); serving starts with {!serve}. *)

val port : t -> int
(** The actually-bound client port. *)

val metrics_port : t -> int
(** The actually-bound metrics port (0 when metrics are disabled). *)

val stats : t -> Server_stats.t
(** Per-op latency includes a family per shard under [op="shard:<i>"] —
    the fan-out leg latency. *)

val map : t -> Map.t

val metrics_doc : t -> string
(** The router's Prometheus exposition ({!Metrics.render_router}). *)

val backend : t -> Reactor.Backend.kind
(** The readiness backend the reactor actually selected. *)

val serve : t -> unit
(** Run the reactor loop on the calling thread and start the worker
    pool. Returns after {!stop}: closes the listener, joins the
    workers, and tears down every client connection and shard leg. *)

val stop : t -> unit
(** Signal {!serve} to shut down (safe from a signal handler or another
    thread). *)
