(** Failover-aware client: one logical connection over several
    endpoints (primary first, then standbys).

    Every call runs under a per-request deadline ({!Client}'s
    [?deadline_ms]); a hung or partitioned endpoint surfaces as
    [Timeout], the connection is dropped and the next endpoint dialled.
    A mutation answered [Read_only] (we reached a standby) rotates and
    retries — the refusal proves nothing was applied. A mutation that
    dies mid-flight ([Timeout]/[Io]) is {e never} auto-retried: the
    outcome is ambiguous and the typed error goes back to the caller.
    Reads are retried freely across endpoints.

    Read-your-writes: successful COMMITs carry their durable LSN; the
    highest is remembered and a new endpoint is only adopted once its
    [Repl_status] shows it has applied past it (near-instant under the
    semi-synchronous primary, which acks a commit only after every
    subscriber applied it).

    Server-side session state (an open BEGIN, prepared statements) does
    not survive a failover — the new endpoint sees a fresh session. *)

type t

val create : ?deadline_ms:float -> endpoints:(string * int) list -> unit -> t
(** [deadline_ms] (default 1000) bounds every connect and request.
    @raise Invalid_argument on an empty endpoint list. *)

val close : t -> unit

val endpoint : t -> (string * int) option
(** The endpoint currently connected, if any. *)

val failovers : t -> int
(** Endpoint rotations so far (connects tried, [Read_only] bounces,
    mid-flight failures). *)

val last_lsn : t -> int
(** Highest commit LSN acknowledged to this client — the
    read-your-writes token. *)

val note_lsn : t -> int -> unit
(** Raise the token by hand (e.g. adopting another client's writes). *)

val read :
  t -> (Client.t -> ('a, Client.error) result) -> ('a, Client.error) result
(** Run a read against the current endpoint, retrying across endpoints
    on [Timeout]/[Io]/[Overloaded]. *)

val mutate :
  t -> (Client.t -> ('a, Client.error) result) -> ('a, Client.error) result
(** Run a mutation: [Read_only] rotates and retries; [Timeout]/[Io]
    after dispatch returns the error (ambiguous — caller decides). *)

val connection : t -> (Client.t, Client.error) result
(** The live dialled connection (dialling with read-your-writes
    verification if there is none) — for callers that drive the socket
    directly, e.g. {!Client.rpc_many} over several legs. Report any
    transport fault observed on it with {!fault}. *)

val fault : t -> unit
(** Drop the current connection and rotate to the next endpoint — the
    out-of-band counterpart of the rotation {!read}/{!mutate} perform
    on [Timeout]/[Io]. *)

(** {2 Typed conveniences} — {!Client} calls lifted over failover. *)

val insert : t -> ?id:int -> Interval.Ivl.t -> (int, Client.error) result

val intersect :
  t -> Interval.Ivl.t -> ((Interval.Ivl.t * int) list, Client.error) result

val sql : t -> string -> (Protocol.response, Client.error) result
val begin_txn : t -> (unit, Client.error) result

val commit : t -> (int, Client.error) result
(** [Ok lsn] also advances {!last_lsn}. *)

val rollback : t -> (unit, Client.error) result
val repl_status : t -> (Protocol.role * int * int, Client.error) result
