type t = {
  fd : Unix.file_descr;
  mutable next_id : int64;
  mutable closed : bool;
}

exception Io_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Io_error s)) fmt

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "connect %s:%d: %s" host port (Unix.error_message e));
  { fd; next_id = 1L; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t buf =
  let len = Bytes.length buf in
  let sent = ref 0 in
  while !sent < len do
    match Unix.write t.fd buf !sent (len - !sent) with
    | 0 -> fail "connection closed while writing"
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "write: %s" (Unix.error_message e)
  done

let read_exact t buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read t.fd buf (off + !got) (len - !got) with
    | 0 -> fail "connection closed by server"
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "read: %s" (Unix.error_message e)
  done

let read_frame t =
  let header = Bytes.create 4 in
  read_exact t header 0 4;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > Protocol.max_payload then
    fail "bad frame length %d from server" len;
  let payload = Bytes.create len in
  read_exact t payload 0 len;
  match Protocol.decode_response payload with
  | Ok (id, resp) -> (id, resp)
  | Error e -> fail "undecodable response: %s" (Protocol.error_to_string e)

let rpc t req =
  if t.closed then fail "client is closed";
  let id = t.next_id in
  t.next_id <- Int64.add t.next_id 1L;
  write_all t (Protocol.encode_request ~id req);
  let rid, resp = read_frame t in
  (* id 0 is the server's out-of-band admission rejection. *)
  if rid <> id && rid <> 0L then
    fail "response id %Ld for request %Ld" rid id;
  resp

(* ---------------- typed conveniences ---------------- *)

let ping t =
  match rpc t Protocol.Ping with
  | Protocol.Ack _ -> ()
  | Protocol.Overloaded m -> fail "overloaded: %s" m
  | _ -> fail "unexpected response to ping"

let insert t ?id ivl =
  match
    rpc t
      (Protocol.Insert
         { lower = Interval.Ivl.lower ivl; upper = Interval.Ivl.upper ivl; id })
  with
  | Protocol.Ack msg -> (
      match int_of_string_opt (List.hd (List.rev (String.split_on_char ' ' msg)))
      with
      | Some n -> Ok n
      | None -> Result.Error ("unparseable ack: " ^ msg))
  | Protocol.Error m | Protocol.Overloaded m -> Result.Error m
  | _ -> Result.Error "unexpected response to insert"

let intersect t ivl =
  match
    rpc t
      (Protocol.Intersect
         { lower = Interval.Ivl.lower ivl; upper = Interval.Ivl.upper ivl })
  with
  | Protocol.Rows { rows; _ } ->
      List.map (fun r -> (Interval.Ivl.make r.(0) r.(1), r.(2))) rows
  | Protocol.Error m -> fail "intersect: %s" m
  | Protocol.Overloaded m -> fail "intersect: overloaded: %s" m
  | _ -> fail "unexpected response to intersect"

let sql t text =
  match rpc t (Protocol.Sql text) with
  | (Protocol.Ack _ | Protocol.Rows _) as r -> Ok r
  | Protocol.Error m | Protocol.Overloaded m -> Result.Error m
  | _ -> Result.Error "unexpected response to sql"

let server_stats t =
  match rpc t Protocol.Stats with
  | Protocol.Stats_reply s -> s
  | Protocol.Error m -> fail "stats: %s" m
  | Protocol.Overloaded m -> fail "stats: overloaded: %s" m
  | _ -> fail "unexpected response to stats"
