type t = {
  fd : Unix.file_descr;
  mutable next_id : int64;
  mutable closed : bool;
  (* per-request deadline: every rpc must complete within this budget or
     the connection is closed and the call fails with [Timeout] *)
  deadline_ms : float option;
}

exception Io_error of string
exception Undecodable of string
exception Timed_out of string

let fail fmt = Printf.ksprintf (fun s -> raise (Io_error s)) fmt

type error =
  | Overloaded of string
  | Read_only of string
  | Conflict of string
  | Server of string
  | Invalid of string
  | Io of string
  | Timeout of string
  | Partial of { missing : int list; msg : string }
  | Unexpected of string

let error_to_string = function
  | Overloaded m -> "overloaded: " ^ m
  | Read_only m -> "read-only: " ^ m
  | Conflict m -> "transaction conflict: " ^ m
  | Server m -> m
  | Invalid m -> "invalid request: " ^ m
  | Io m -> "i/o: " ^ m
  | Timeout m -> "timeout: " ^ m
  | Partial { missing; msg } ->
      Printf.sprintf "partial result (shards [%s] missing): %s"
        (String.concat "," (List.map string_of_int missing))
        msg
  | Unexpected m -> "unexpected response: " ^ m

(* Overload clears when the server drains; transport hiccups (connection
   refused during a restart, reset mid-frame) clear when it comes back;
   a timeout may be a hung server or a partition that heals. A typed
   [Server], [Read_only] or [Invalid] answer is a verdict, not
   weather — retrying it would re-run a request the server already
   refused. *)
let retryable = function
  | Overloaded _ | Io _ | Timeout _ -> true
  | Read_only _ | Server _ | Invalid _ | Conflict _ | Partial _
  | Unexpected _ ->
      (* A partial answer means a shard stayed unreachable through the
         router's own failover attempts: an immediate retry would just
         burn the deadline again. The caller decides whether partial
         data is acceptable. *)
      false

(* A timed-out connection is unusable: the response may still arrive
   later and would answer the wrong request. Close before raising. *)
let timeout_fail t fmt =
  Printf.ksprintf
    (fun s ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.close t.fd with Unix.Unix_error _ -> ())
      end;
      raise (Timed_out s))
    fmt

(* Wait (reactor backend, poll(2) when available — a deadline wait must
   work on fds past FD_SETSIZE, e.g. in a process holding thousands of
   connections) until [t.fd] is ready for [dir], or the absolute
   [deadline] passes. [deadline = None] returns immediately — the
   subsequent blocking syscall provides the wait. *)
let wait_ready t deadline dir =
  match deadline with
  | None -> ()
  | Some dl ->
      let rec loop () =
        let remain = dl -. Unix.gettimeofday () in
        if remain <= 0. then timeout_fail t "request deadline expired";
        (* An interrupted wait reports not-ready; re-check the clock and
           re-enter rather than failing early. *)
        if not (Reactor.Backend.wait_fd t.fd dir ~timeout:remain) then loop ()
      in
      loop ()

let connect ?(host = "127.0.0.1") ?deadline_ms ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let cleanup () = try Unix.close fd with Unix.Unix_error _ -> () in
  (match deadline_ms with
  | None -> (
      try Unix.connect fd addr
      with Unix.Unix_error (e, _, _) ->
        cleanup ();
        fail "connect %s:%d: %s" host port (Unix.error_message e))
  | Some ms -> (
      (* Bounded connect: non-blocking connect, wait for writability,
         then read the socket error out. A dead-but-routing host would
         otherwise hold us in the kernel's SYN retry loop. *)
      Unix.set_nonblock fd;
      (try Unix.connect fd addr with
      | Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
          match Reactor.Backend.wait_fd fd `Write ~timeout:(ms /. 1000.) with
          | true -> (
              match Unix.getsockopt_error fd with
              | None -> ()
              | Some e ->
                  cleanup ();
                  fail "connect %s:%d: %s" host port (Unix.error_message e))
          | false ->
              cleanup ();
              raise
                (Timed_out
                   (Printf.sprintf "connect %s:%d: deadline expired" host port))
          )
      | Unix.Unix_error (e, _, _) ->
          cleanup ();
          fail "connect %s:%d: %s" host port (Unix.error_message e));
      try Unix.clear_nonblock fd
      with Unix.Unix_error _ -> ()));
  { fd; next_id = 1L; closed = false; deadline_ms }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all t deadline buf =
  let len = Bytes.length buf in
  let sent = ref 0 in
  while !sent < len do
    wait_ready t deadline `Write;
    match Unix.write t.fd buf !sent (len - !sent) with
    | 0 -> fail "connection closed while writing"
    | n -> sent := !sent + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "write: %s" (Unix.error_message e)
  done

let read_exact t deadline buf off len =
  let got = ref 0 in
  while !got < len do
    wait_ready t deadline `Read;
    match Unix.read t.fd buf (off + !got) (len - !got) with
    | 0 -> fail "connection closed by server"
    | n -> got := !got + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (e, _, _) ->
        fail "read: %s" (Unix.error_message e)
  done

let read_frame ?deadline t =
  let header = Bytes.create 4 in
  read_exact t deadline header 0 4;
  let len = Int32.to_int (Bytes.get_int32_be header 0) in
  if len < 0 || len > Protocol.max_payload then begin
    (* There is no way to find the next frame boundary in garbage: the
       byte stream is beyond recovery, so close rather than desync. *)
    close t;
    fail "bad frame length %d from server" len
  end;
  let payload = Bytes.create len in
  read_exact t deadline payload 0 len;
  Protocol.decode_response payload

let deadline_of t =
  Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) t.deadline_ms

let rpc t req =
  if t.closed then fail "client is closed";
  let deadline = deadline_of t in
  let id = t.next_id in
  t.next_id <- Int64.add t.next_id 1L;
  write_all t deadline (Protocol.encode_request ~id req);
  match read_frame ?deadline t with
  | Error e ->
      (* The frame was well-delimited, so the stream is still in sync:
         a response we cannot decode (say, an op added after this
         client was built) rejects this one call with a typed error and
         leaves the connection usable. *)
      raise (Undecodable (Protocol.error_to_string e))
  | Ok (rid, resp) ->
      (* id 0 is the server's out-of-band admission rejection (or an
         idle goodbye racing the request). *)
      if rid <> id && rid <> 0L then
        fail "response id %Ld for request %Ld" rid id;
      resp

let rpc_result t req =
  match rpc t req with
  | resp -> Ok resp
  | exception Io_error m -> Result.Error (Io m)
  | exception Timed_out m -> Result.Error (Timeout m)
  | exception Undecodable m ->
      Result.Error (Unexpected ("undecodable response: " ^ m))

(* ---------------- multiplexed scatter ---------------- *)

(* Per-leg incremental frame read: 4-byte length header, then payload.
   One [Unix.read] per readiness report, so a blocking fd can never
   park the multiplexer. *)
type leg = {
  lt : t;
  lid : int64;
  ldl : float option;  (* absolute per-leg deadline *)
  mutable lbuf : Bytes.t;
  mutable lgot : int;
  mutable lheader : bool;  (* still reading the length prefix *)
  mutable lres : (Protocol.response, error) result option;
}

let leg_fail l err =
  close l.lt;
  l.lres <- Some (Result.Error err)

let leg_finish l =
  match Protocol.decode_response l.lbuf with
  | Result.Error e ->
      (* Well-delimited but undecodable: reject the call, keep the
         connection (mirrors [rpc]'s Undecodable contract). *)
      l.lres <-
        Some
          (Result.Error
             (Unexpected
                ("undecodable response: " ^ Protocol.error_to_string e)))
  | Ok (rid, resp) ->
      if rid <> l.lid && rid <> 0L then
        leg_fail l
          (Io (Printf.sprintf "response id %Ld for request %Ld" rid l.lid))
      else l.lres <- Some (Ok resp)

let leg_advance l =
  let need = Bytes.length l.lbuf in
  match Unix.read l.lt.fd l.lbuf l.lgot (need - l.lgot) with
  | 0 -> leg_fail l (Io "connection closed by server")
  | n ->
      l.lgot <- l.lgot + n;
      if l.lgot = need then
        if l.lheader then begin
          let len = Int32.to_int (Bytes.get_int32_be l.lbuf 0) in
          if len < 0 || len > Protocol.max_payload then
            leg_fail l (Io (Printf.sprintf "bad frame length %d from server" len))
          else begin
            l.lheader <- false;
            l.lbuf <- Bytes.create len;
            l.lgot <- 0;
            if len = 0 then leg_finish l
          end
        end
        else leg_finish l
  | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    -> ()
  | exception Unix.Unix_error (e, _, _) ->
      leg_fail l (Io ("read: " ^ Unix.error_message e))

(* One request on each client, with all the responses multiplexed on a
   single readiness wait — the router's scatter path uses this so k
   shard legs cost one wait, not k threads (and a slow shard delays
   only the merge, never a thread pool). Clients must be distinct and
   quiescent (no other in-flight request). Each leg runs under its own
   client's deadline; a leg that fails reports its own typed error and
   is closed, without disturbing the others. Results come back in input
   order. *)
let rpc_many pairs =
  let legs =
    List.map
      (fun (t, req) ->
        let l =
          {
            lt = t;
            lid = t.next_id;
            ldl = deadline_of t;
            lbuf = Bytes.create 4;
            lgot = 0;
            lheader = true;
            lres = None;
          }
        in
        if t.closed then l.lres <- Some (Result.Error (Io "client is closed"))
        else begin
          t.next_id <- Int64.add t.next_id 1L;
          match write_all t l.ldl (Protocol.encode_request ~id:l.lid req) with
          | () -> ()
          | exception Io_error m -> leg_fail l (Io m)
          | exception Timed_out m -> l.lres <- Some (Result.Error (Timeout m))
        end;
        l)
      pairs
  in
  let bk = Reactor.Backend.default () in
  let rec step () =
    match List.filter (fun l -> l.lres = None) legs with
    | [] -> ()
    | pend ->
        let now = Unix.gettimeofday () in
        List.iter
          (fun l ->
            match l.ldl with
            | Some dl when dl <= now ->
                (* Same contract as [rpc]: a timed-out connection is
                   unusable — the response may still arrive later and
                   would answer the wrong request. *)
                leg_fail l (Timeout "request deadline expired")
            | _ -> ())
          pend;
        let pend = List.filter (fun l -> l.lres = None) pend in
        if pend <> [] then begin
          let timeout =
            List.fold_left
              (fun acc l ->
                match l.ldl with
                | None -> acc
                | Some dl -> Float.min acc (dl -. now))
              infinity pend
          in
          let timeout = if timeout = infinity then -1. else Float.max 0. timeout in
          let entries =
            Array.of_list (List.map (fun l -> (l.lt.fd, true, false)) pend)
          in
          let ready = Reactor.Backend.wait bk entries ~timeout in
          List.iter
            (fun (fd, r, _) ->
              if r then
                match List.find_opt (fun l -> l.lt.fd = fd) pend with
                | Some l -> leg_advance l
                | None -> ())
            ready;
          step ()
        end
  in
  step ();
  List.map
    (fun l ->
      match l.lres with
      | Some r -> r
      | None -> Result.Error (Io "multiplexed rpc: leg left unresolved"))
    legs

(* Map every non-success response shape onto the typed error; [of_ok]
   extracts the expected success payload or rejects the shape. *)
let typed t req of_ok =
  match rpc_result t req with
  | Result.Error _ as e -> e
  | Ok (Protocol.Error m) -> Result.Error (Server m)
  | Ok (Protocol.Invalid m) -> Result.Error (Invalid m)
  | Ok (Protocol.Overloaded m) -> Result.Error (Overloaded m)
  | Ok (Protocol.Read_only m) -> Result.Error (Read_only m)
  | Ok (Protocol.Conflict m) -> Result.Error (Conflict m)
  | Ok (Protocol.Partial { missing; msg }) ->
      Result.Error (Partial { missing; msg })
  | Ok (Protocol.Goodbye m) ->
      Result.Error (Io ("server closed the connection: " ^ m))
  | Ok resp -> of_ok resp

(* ---------------- typed conveniences ---------------- *)

let ping t =
  typed t Protocol.Ping (function
    | Protocol.Ack _ -> Ok ()
    | _ -> Result.Error (Unexpected "to ping"))

let insert t ?id ivl =
  typed t
    (Protocol.Insert
       { lower = Interval.Ivl.lower ivl; upper = Interval.Ivl.upper ivl; id })
    (function
      | Protocol.Ack msg -> (
          match
            int_of_string_opt
              (List.hd (List.rev (String.split_on_char ' ' msg)))
          with
          | Some n -> Ok n
          | None -> Result.Error (Unexpected ("unparseable ack: " ^ msg)))
      | _ -> Result.Error (Unexpected "to insert"))

let intersect t ivl =
  typed t
    (Protocol.Intersect
       { lower = Interval.Ivl.lower ivl; upper = Interval.Ivl.upper ivl })
    (function
      | Protocol.Rows { rows; _ } ->
          Ok (List.map (fun r -> (Interval.Ivl.make r.(0) r.(1), r.(2))) rows)
      | _ -> Result.Error (Unexpected "to intersect"))

let sql t text =
  typed t (Protocol.Sql text) (function
    | (Protocol.Ack _ | Protocol.Rows _) as r -> Ok r
    | _ -> Result.Error (Unexpected "to sql"))

let server_stats t =
  typed t Protocol.Stats (function
    | Protocol.Stats_reply s -> Ok s
    | _ -> Result.Error (Unexpected "to stats"))

let metrics t =
  typed t Protocol.Metrics (function
    | Protocol.Ack doc -> Ok doc
    | _ -> Result.Error (Unexpected "to metrics"))

let begin_txn t =
  typed t Protocol.Begin (function
    | Protocol.Ack _ -> Ok ()
    | _ -> Result.Error (Unexpected "to begin"))

let commit t =
  typed t Protocol.Commit (function
    | Protocol.Ack msg -> (
        (* "committed lsn N" / "committed (group commit batch of k) lsn
           N": the trailing token is the durable-log LSN the failover
           client carries for read-your-writes. Non-durable servers say
           "committed lsn 0". *)
        match
          int_of_string_opt (List.hd (List.rev (String.split_on_char ' ' msg)))
        with
        | Some lsn -> Ok lsn
        | None -> Ok 0)
    | _ -> Result.Error (Unexpected "to commit"))

let shard_map t =
  typed t Protocol.Shard_map_req (function
    | Protocol.Shard_map entries -> Ok entries
    | _ -> Result.Error (Unexpected "to shard_map"))

let repl_status t =
  typed t Protocol.Repl_status (function
    | Protocol.Repl_state { role; durable_lsn; applied_lsn } ->
        Ok (role, durable_lsn, applied_lsn)
    | _ -> Result.Error (Unexpected "to repl_status"))

let rollback t =
  typed t Protocol.Rollback (function
    | Protocol.Ack _ -> Ok ()
    | _ -> Result.Error (Unexpected "to rollback"))

let prepare t ~name sql =
  typed t (Protocol.Prepare { name; sql }) (function
    | Protocol.Ack _ -> Ok ()
    | _ -> Result.Error (Unexpected "to prepare"))

let execute t ~name params =
  typed t (Protocol.Execute { name; params }) (function
    | (Protocol.Ack _ | Protocol.Rows _) as r -> Ok r
    | _ -> Result.Error (Unexpected "to execute"))

let close_stmt t name =
  typed t (Protocol.Close_stmt name) (function
    | Protocol.Ack _ -> Ok ()
    | _ -> Result.Error (Unexpected "to close"))

let explain t ?(analyze = false) target =
  typed t (Protocol.Explain { analyze; target }) (function
    | Protocol.Ack text -> Ok text
    | _ -> Result.Error (Unexpected "to explain"))

(* ---------------- bounded retry with backoff ---------------- *)

type backoff = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default_backoff =
  { attempts = 5; base_delay = 0.05; max_delay = 1.0; jitter = 0.5; seed = 0 }

(* splitmix64, inlined — lib/server cannot depend on lib/workload, and
   the jitter stream must be deterministic under a given seed so tests
   replay. *)
let mix state =
  state := Int64.add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  (* uniform float in [0, 1) from the top 53 bits *)
  Int64.to_float (Int64.shift_right_logical z 11) *. (1. /. 9007199254740992.)

let retry ?(backoff = default_backoff) f =
  let state = ref (Int64.of_int backoff.seed) in
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Result.Error e when retryable e && attempt < backoff.attempts ->
        (* Exponential growth, capped, with jitter pulling the sleep
           down into [(1 - jitter) * d, d] so a thundering herd of
           clients doesn't re-arrive in lockstep. *)
        let d =
          Float.min backoff.max_delay
            (backoff.base_delay *. Float.pow 2. (float_of_int (attempt - 1)))
        in
        let d = d *. (1. -. (backoff.jitter *. mix state)) in
        if d > 0. then Unix.sleepf d;
        go (attempt + 1)
    | Result.Error _ as e -> e
  in
  go 1

let connect_retry ?backoff ?host ?deadline_ms ~port () =
  retry ?backoff (fun () ->
      match connect ?host ?deadline_ms ~port () with
      | c -> Ok c
      | exception Io_error m -> Result.Error (Io m)
      | exception Timed_out m -> Result.Error (Timeout m))
