(** Statistics and a cost model for RI-tree queries.

    Sec. 5 of the paper: "With a cost model registered at the optimizer,
    the server is able to generate efficient execution plans for queries
    on interval data types." This module provides that piece for our
    engine: equi-width histograms over the stored lower and upper bounds
    estimate an intersection query's result size (an interval misses the
    query iff it ends before it or starts after it), and a block-level
    cost formula compares the RI-tree plan against a full table scan. At
    very high selectivities the scan is cheaper — the optimizer's choice,
    not the index's failure — and {!adaptive_ids} switches plans
    accordingly. *)

module Stats : sig
  type t

  val analyze : ?buckets:int -> Ri_tree.t -> t
  (** One scan of the interval table (default 64 buckets per
      histogram). *)

  val row_count : t -> int

  val estimate_result_size : t -> Interval.Ivl.t -> int
  (** Histogram estimate of the number of intersecting intervals. *)

  val estimate_selectivity : t -> Interval.Ivl.t -> float
end

type plan_choice = Index_plan | Full_scan | Mem_plan

type mem_info = { mem_levels : int; mem_entries : int }
(** Shape of a RAM-resident HINT replica, for tier choice. *)

val index_cost : Ri_tree.t -> Stats.t -> Interval.Ivl.t -> float
(** Estimated physical blocks for the Fig. 9 plan: one [O(log_b n)]
    descent per index (the upper levels are shared across the
    statement's probes and stay buffer-resident), one leaf visit per
    transient-node probe, plus the leaves holding the estimated
    results. *)

val scan_cost : Ri_tree.t -> float
(** Blocks of a full heap scan. *)

val mem_cost : mem_info -> Stats.t -> Interval.Ivl.t -> float
(** Block-equivalent cost of probing the RAM-resident replica: zero
    physical I/O, CPU priced at a fixed in-memory-operations-per-block
    exchange rate so tiers compare in one unit. *)

val choose :
  ?mem:mem_info -> Ri_tree.t -> Stats.t -> Interval.Ivl.t -> plan_choice
(** Cheapest of the disk plans and, when [mem] says the collection is
    resident, the hot-tier probe. *)

val adaptive_ids : Ri_tree.t -> Stats.t -> Interval.Ivl.t -> int list
(** Execute whichever plan {!choose} picks; both return exactly the
    intersecting ids. *)

val plan_to_string : plan_choice -> string
