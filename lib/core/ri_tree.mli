(** The Relational Interval Tree (Kriegel, Pötke, Seidl — VLDB 2000).

    An RI-tree instance is nothing but a relational table

    {v
    CREATE TABLE <name> (node int, lower int, upper int, id int);
    CREATE INDEX <name>_lower ON <name> (node, lower, id);
    CREATE INDEX <name>_upper ON <name> (node, upper, id);
    v}

    plus an [O(1)] parameter dictionary ([offset], [leftRoot],
    [rightRoot], [minstep]) persisted in [<name>_params]. Insertion
    computes the fork node of the interval on the virtual backbone
    ({!Backbone}) and executes a single relational insert; an
    intersection query descends the virtual backbone (no I/O), fills the
    transient node tables [leftNodes(min, max)] and [rightNodes(node)],
    and runs the two-branch UNION ALL plan of Fig. 9 / Fig. 10 as index
    range scans. Storing [n] intervals takes [O(n/b)] blocks; updates
    cost [O(log_b n)] I/Os; an intersection query reporting [r] results
    costs [O(h · log_b n + r/b)] I/Os. *)

type t

val create : ?name:string -> Relation.Catalog.t -> t
(** Create the interval table, its two composite indexes and the
    parameter dictionary in the given database (default name
    ["intervals"]). *)

val open_existing : ?name:string -> Relation.Catalog.t -> t
(** Re-attach to an RI-tree previously created in this catalog (for
    durable catalogs: typically after {!Relation.Catalog.simulate_crash}
    or {!Relation.Catalog.reopen}): finds the interval table and its
    indexes by name and reloads the parameter dictionary from the
    persisted [<name>_params] row.
    @raise Not_found if the tables are missing.
    @raise Failure if the schema does not look like an RI-tree. *)

val bulk_load :
  ?name:string ->
  Relation.Catalog.t ->
  (Interval.Ivl.t * int) array ->
  t
(** Build an RI-tree from a snapshot of [(interval, id)] pairs: heap rows
    are written sequentially and both indexes are bulk-loaded bottom-up,
    giving the tightly clustered pages the paper attributes to
    bulk-loaded competitors. The resulting tree is indistinguishable from
    one built by repeated {!insert} of the same data (same fork nodes,
    same parameters, same query answers) and remains fully dynamic. *)

val name : t -> string
val table : t -> Relation.Table.t
val lower_index : t -> Relation.Table.Index.t
val upper_index : t -> Relation.Table.Index.t

val insert : ?id:int -> t -> Interval.Ivl.t -> int
(** Register an interval; returns its id (fresh ids are assigned from a
    counter when not supplied). Duplicate (interval, id) pairs may be
    stored; they are distinct rows.
    @raise Invalid_argument if a bound exceeds {!max_bound_magnitude}
    (node values must stay clear of the temporal sentinels). *)

val prepare_insert : ?id:int -> t -> Interval.Ivl.t -> int * int array
(** {!insert} minus the physical row write: assigns the id, updates and
    persists the backbone parameters, and returns [(id, row)] for the
    caller to insert (MVCC sessions buffer it into their write set).
    The parameter updates are monotone metadata — if the buffered row is
    never applied the tree merely skips an id and probes a superset of
    nodes; answers are unaffected. *)

val delete : t -> id:int -> Interval.Ivl.t -> bool
(** Remove one row matching the interval and id exactly; [false] if no
    such row exists. *)

val find_victim :
  ?ok:(int -> int array -> bool) ->
  t -> id:int -> Interval.Ivl.t -> (int * int array) option
(** The physical [(rowid, row)] {!delete} would remove, without removing
    it. [ok rowid row] filters candidates (MVCC snapshot visibility);
    rejected rows are skipped, not returned. *)

val count : t -> int

val index_entries : t -> int
(** Total entries across both indexes — [2 * count] (Fig. 12 reports this
    measure of storage redundancy). *)

val relation_pages : t -> int
(** Pages of the base table plus both indexes. *)

(** {2 Queries} *)

val intersecting_ids :
  ?node_filter:(int -> bool) -> t -> Interval.Ivl.t -> int list
(** Ids of all stored intervals intersecting the query interval, via the
    paper's two-branch plan. No duplicates are produced (the branches are
    provably disjoint — Sec. 4.2). [node_filter] drops the probes of
    single backbone nodes for which it returns [false]; it must only
    reject nodes that hold no intervals (used by {!Skeleton}). *)

val intersecting : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** Same, but fetches the base rows to return the intervals. *)

val stabbing_ids : t -> int -> int list
(** Point query: intervals containing the given value (degenerate query
    interval, Sec. 4.1). *)

val count_intersecting :
  ?node_filter:(int -> bool) -> t -> Interval.Ivl.t -> int

val probe_count : ?node_filter:(int -> bool) -> t -> Interval.Ivl.t -> int
(** Single-node index probes the intersection plan performs for this
    query (excluding the BETWEEN range scan) — the quantity the skeleton
    extension reduces. *)

type node_lists = {
  left_nodes : (int * int) list;  (** (min, max); scanned on upperIndex *)
  right_nodes : int list;         (** scanned on lowerIndex *)
}

val node_lists : t -> Interval.Ivl.t -> node_lists
(** The transient leftNodes/rightNodes tables the Sec. 4.2 procedure
    would populate for this query (already shifted by the tree's
    offset; the BETWEEN pair rides first in [left_nodes]). Exposed so
    tools can materialize them as SQL collections and drive the Fig. 9
    query through the front end. *)

(** {2 Introspection} *)

type params = {
  offset : int option;  (** data-space shift, fixed at first insertion *)
  left_root : int;
  right_root : int;
  min_level : int;      (** lowest backbone level holding an interval *)
}

val params : t -> params

val height : t -> int
(** Current height of the virtual backbone (Sec. 3.5); independent of the
    number of stored intervals. *)

val fork_node : t -> Interval.Ivl.t -> int
(** The (shifted) backbone node at which this interval is or would be
    registered — exposed for tests and examples. *)

val explain : t -> Interval.Ivl.t -> string
(** A textual execution plan for the intersection query, in the spirit of
    the paper's Fig. 10, including the transient node tables. *)

val check_invariants : t -> unit
(** Table/index consistency plus RI-tree-specific invariants: every row's
    node is the fork node of its interval under the current parameters,
    and no row sits below [min_level]. *)

(** {2 Hooks for the temporal extension (Sec. 4.6)} *)

val max_bound_magnitude : int
(** Bounds must satisfy
    [-max_bound_magnitude <= bound <= max_bound_magnitude]; keeps shifted
    node values clear of the sentinels below. In particular [min_int] is
    rejected (note [abs min_int = min_int], so the check is written
    without [abs]). *)

val fork_infinity : int
(** Reserved node value for intervals ending at [infinity]. *)

val fork_now : int
(** Reserved node value for intervals ending at [now]. *)

val insert_sentinel_row :
  t -> node:int -> lower:int -> upper_code:int -> id:int option -> int
(** Insert a row at a reserved fork value, bypassing the backbone; used
    by {!Temporal_store}. Returns the id. *)

val sentinel_scan : t -> node:int -> max_lower:int -> (int * int * int) list
(** [(lower, upper_code, id)] of sentinel rows with
    [lower <= max_lower] — the extra [rightNodes] probe the temporal
    extension adds at query time. *)
