module Ivl = Interval.Ivl

let max_bound_magnitude = 1 lsl 40
let fork_infinity = max_int
let fork_now = max_int - 1

type t = {
  name : string;
  table : Relation.Table.t;
  lower_index : Relation.Table.Index.t;
  upper_index : Relation.Table.Index.t;
  params_table : Relation.Table.t;
  mutable params_rowid : int option;
  mutable offset : int option;
  mutable roots : Backbone.roots;
  mutable min_level : int;
  mutable next_id : int;
}

type params = {
  offset : int option;
  left_root : int;
  right_root : int;
  min_level : int;
}

(* Column positions in the base table (node, lower, upper, id). *)
let col_lower = 1
let col_upper = 2
let col_id = 3

let create_tables ?(bulk = false) ~name catalog =
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "node"; "lower"; "upper"; "id" ]
  in
  let mk_indexes () =
    let lower_index =
      Relation.Table.create_index ~bulk table ~name:(name ^ "_lower")
        ~columns:[ "node"; "lower"; "id" ]
    in
    let upper_index =
      Relation.Table.create_index ~bulk table ~name:(name ^ "_upper")
        ~columns:[ "node"; "upper"; "id" ]
    in
    (lower_index, upper_index)
  in
  let params_table =
    Relation.Catalog.create_table catalog ~name:(name ^ "_params")
      ~columns:
        [ "offset_set"; "offset"; "left_root"; "right_root"; "min_level";
          "next_id" ]
  in
  (table, mk_indexes, params_table)

let create ?(name = "intervals") catalog =
  let table, mk_indexes, params_table = create_tables ~name catalog in
  let lower_index, upper_index = mk_indexes () in
  { name; table; lower_index; upper_index; params_table;
    params_rowid = None; offset = None; roots = Backbone.empty_roots;
    min_level = Backbone.max_level; next_id = 0 }

(* The persistent O(1) data dictionary of Sec. 3.4: one row, updated in
   place. *)
let save_params (t : t) =
  let offset_set, offset =
    match t.offset with None -> (0, 0) | Some o -> (1, o)
  in
  let row =
    [| offset_set; offset; t.roots.Backbone.left_root;
       t.roots.Backbone.right_root; t.min_level; t.next_id |]
  in
  match t.params_rowid with
  | Some rowid -> ignore (Relation.Table.update_row t.params_table rowid row)
  | None -> t.params_rowid <- Some (Relation.Table.insert t.params_table row)

let name t = t.name
let table t = t.table
let lower_index t = t.lower_index
let upper_index t = t.upper_index
let count t = Relation.Table.row_count t.table

let index_entries t =
  Relation.Table.Index.entry_count t.lower_index
  + Relation.Table.Index.entry_count t.upper_index

let relation_pages t =
  Relation.Heap.page_count (Relation.Table.heap t.table)
  + Btree.page_count (Relation.Table.Index.tree t.lower_index)
  + Btree.page_count (Relation.Table.Index.tree t.upper_index)

let params (t : t) =
  { offset = t.offset; left_root = t.roots.Backbone.left_root;
    right_root = t.roots.Backbone.right_root; min_level = t.min_level }

let height t = Backbone.height t.roots ~min_level:t.min_level

(* No [abs]: in OCaml [abs min_int = min_int] (still negative), so an
   [abs]-based magnitude check waves [min_int] through and the backbone
   arithmetic corrupts downstream. Compare against both limits instead. *)
let check_bound v =
  if v > max_bound_magnitude || v < -max_bound_magnitude then
    invalid_arg
      (Printf.sprintf "Ri_tree: bound %d exceeds the supported magnitude" v)

let shifted (t : t) ivl =
  match t.offset with
  | None -> invalid_arg "Ri_tree: empty tree has no data space yet"
  | Some off -> (Ivl.lower ivl - off, Ivl.upper ivl - off)

let fork_node t ivl =
  let l, u = shifted t ivl in
  Backbone.fork (Backbone.expand t.roots ~l ~u) ~l ~u

(* Fork computation and parameter maintenance WITHOUT the physical row
   insert: MVCC sessions buffer the returned row into their write set
   and apply it only at commit. The parameter mutations (id counter,
   widened roots, lowered min_level) are persisted immediately and are
   deliberately NOT rolled back on abort — all three are monotone
   metadata whose only effect on a tree without the row is a skipped id
   and a superset of query probes, never a wrong answer. *)
let prepare_insert ?id (t : t) ivl =
  check_bound (Ivl.lower ivl);
  check_bound (Ivl.upper ivl);
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  (* Fig. 6: fix the offset at the first insertion, expand the subtree
     roots, then descend to the fork node. *)
  if t.offset = None then t.offset <- Some (Ivl.lower ivl);
  let l, u = shifted t ivl in
  t.roots <- Backbone.expand t.roots ~l ~u;
  let fork, flevel = Backbone.fork_level t.roots ~l ~u in
  if fork <> 0 && flevel < t.min_level then t.min_level <- flevel;
  save_params t;
  (id, [| fork; Ivl.lower ivl; Ivl.upper ivl; id |])

let insert ?id (t : t) ivl =
  let id, row = prepare_insert ?id t ivl in
  ignore (Relation.Table.insert t.table row);
  id

let open_existing ?(name = "intervals") catalog =
  let table = Relation.Catalog.table catalog name in
  let params_table = Relation.Catalog.table catalog (name ^ "_params") in
  let find_index n =
    match Relation.Table.find_index table n with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Ri_tree.open_existing: no index %s" n)
  in
  let lower_index = find_index (name ^ "_lower") in
  let upper_index = find_index (name ^ "_upper") in
  let t =
    { name; table; lower_index; upper_index; params_table;
      params_rowid = None; offset = None; roots = Backbone.empty_roots;
      min_level = Backbone.max_level; next_id = 0 }
  in
  (* Reload the persistent O(1) data dictionary. *)
  Relation.Table.iter params_table (fun rowid row ->
      t.params_rowid <- Some rowid;
      t.offset <- (if row.(0) = 1 then Some row.(1) else None);
      t.roots <- { Backbone.left_root = row.(2); right_root = row.(3) };
      t.min_level <- row.(4);
      t.next_id <- row.(5));
  t

let bulk_load ?(name = "intervals") catalog data =
  let table, mk_indexes, params_table =
    create_tables ~bulk:true ~name catalog
  in
  let offset = ref None in
  let roots = ref Backbone.empty_roots in
  let min_level = ref Backbone.max_level in
  let next_id = ref 0 in
  (* First pass: fix the offset and grow the roots exactly as sequential
     insertion would. *)
  Array.iter
    (fun (ivl, id) ->
      check_bound (Ivl.lower ivl);
      check_bound (Ivl.upper ivl);
      if !offset = None then offset := Some (Ivl.lower ivl);
      let off = Option.get !offset in
      roots :=
        Backbone.expand !roots ~l:(Ivl.lower ivl - off)
          ~u:(Ivl.upper ivl - off);
      if id >= !next_id then next_id := id + 1)
    data;
  (* Second pass: forks under the final roots coincide with the forks
     sequential insertion would have computed (node values are absolute),
     so the loaded table is bit-identical to the incremental one. *)
  Array.iter
    (fun (ivl, id) ->
      let off = Option.get !offset in
      let l = Ivl.lower ivl - off and u = Ivl.upper ivl - off in
      let fork, flevel = Backbone.fork_level !roots ~l ~u in
      if fork <> 0 && flevel < !min_level then min_level := flevel;
      ignore
        (Relation.Table.insert table
           [| fork; Ivl.lower ivl; Ivl.upper ivl; id |]))
    data;
  let lower_index, upper_index = mk_indexes () in
  let t =
    { name; table; lower_index; upper_index; params_table;
      params_rowid = None; offset = !offset; roots = !roots;
      min_level = !min_level; next_id = !next_id }
  in
  save_params t;
  t

(* Locate the physical row a delete would remove, without removing it.
   [ok rowid row] lets MVCC sessions reject rows outside their snapshot
   (or already in their own delete set) and keep scanning. *)
let find_victim ?(ok = fun _ _ -> true) (t : t) ~id ivl =
  match t.offset with
  | None -> None
  | Some _ ->
      let fork = fork_node t ivl in
      let tree = Relation.Table.Index.tree t.lower_index in
      (* Index key: (node, lower, id, rowid). *)
      let lo = [| fork; Ivl.lower ivl; id; min_int |] in
      let hi = [| fork; Ivl.lower ivl; id; max_int |] in
      Btree.fold_range tree ~lo ~hi
        (fun acc key ->
          match acc with
          | Some _ -> acc
          | None -> (
              let rowid = key.(3) in
              match Relation.Table.fetch t.table rowid with
              | Some row when row.(col_upper) = Ivl.upper ivl && ok rowid row
                ->
                  Some (rowid, row)
              | Some _ | None -> None))
        None

let delete (t : t) ~id ivl =
  match find_victim t ~id ivl with
  | Some (rowid, _) -> Relation.Table.delete_row t.table rowid
  | None -> false

(* ------------------------------------------------------------------ *)
(* Intersection queries: the two-branch UNION ALL plan of Fig. 9. *)

type node_lists = {
  left_nodes : (int * int) list;  (* (min, max); scanned on upperIndex *)
  right_nodes : int list;         (* scanned on lowerIndex *)
}

let node_lists (t : t) ivl =
  match t.offset with
  | None -> { left_nodes = []; right_nodes = [] }
  | Some off ->
      let ql = Ivl.lower ivl - off and qu = Ivl.upper ivl - off in
      let lefts = ref [] and rights = ref [] in
      Backbone.collect t.roots ~min_level:t.min_level ~ql ~qu
        ~left:(fun w -> lefts := (w, w) :: !lefts)
        ~right:(fun w -> rights := w :: !rights);
      (* Sec. 4.3: the BETWEEN range joins the leftNodes table as the
         pair (ql, qu); the guard upper >= :lower is implied for it. *)
      { left_nodes = (ql, qu) :: !lefts; right_nodes = !rights }

(* The plan of Fig. 10: two nested-loop joins of collection iterators
   with index range scans, concatenated by UNION ALL. Both indexes are
   covering — (node, bound, id, rowid) — so no base-table access.
   [node_filter] lets the skeleton extension drop probes of single nodes
   known to hold no intervals; the BETWEEN pair is never filtered. *)
let filtered_node_lists ?node_filter t ivl =
  let { left_nodes; right_nodes } = node_lists t ivl in
  match node_filter with
  | None -> (left_nodes, right_nodes)
  | Some keep ->
      ( List.filter (fun (a, b) -> a <> b || keep a) left_nodes,
        List.filter keep right_nodes )

(* The two join branches, as separate iterators so tracing can attribute
   time and I/O per branch. Each branch probes its index once per
   collected node; a shared probe cursor (Iter.index_probe) is
   repositioned instead of reallocated for every inner scan of the
   nested loop. *)
let intersection_branches ?node_filter t ivl =
  let left_nodes, right_nodes = filtered_node_lists ?node_filter t ivl in
  let qlow = Ivl.lower ivl and qup = Ivl.upper ivl in
  let probe_upper = Relation.Iter.index_probe t.upper_index in
  let probe_lower = Relation.Iter.index_probe t.lower_index in
  let upper_branch =
    Relation.Iter.nested_loop
      ~outer:(Relation.Iter.of_list (List.map (fun (a, b) -> [| a; b |]) left_nodes))
      ~inner:(fun pair ->
        probe_upper
          ~lo:[| pair.(0); qlow; min_int; min_int |]
          ~hi:[| pair.(1); max_int; max_int; max_int |])
  in
  let lower_branch =
    Relation.Iter.nested_loop
      ~outer:(Relation.Iter.of_list (List.map (fun w -> [| w |]) right_nodes))
      ~inner:(fun node ->
        probe_lower
          ~lo:[| node.(0); min_int; min_int; min_int |]
          ~hi:[| node.(0); qup; max_int; max_int |])
  in
  (left_nodes, right_nodes, upper_branch, lower_branch)

let intersection_iter ?node_filter t ivl =
  let _, _, upper_branch, lower_branch =
    intersection_branches ?node_filter t ivl
  in
  Relation.Iter.union_all [ upper_branch; lower_branch ]

(* Fold both branches with per-branch spans when tracing: union_all
   would drain them in the same order, but through one opaque iterator.
   The span [info] carries the outer-collection cardinality — the probe
   count of that branch. *)
let traced_fold ?node_filter t ivl f acc =
  Obs.Trace.with_span "ritree.intersect" ~info:(Ivl.to_string ivl)
    (fun () ->
      let lefts, rights, upper_branch, lower_branch =
        intersection_branches ?node_filter t ivl
      in
      if not (Obs.Trace.enabled ()) then
        Relation.Iter.fold f
          (Relation.Iter.fold f acc upper_branch)
          lower_branch
      else begin
        let acc =
          Obs.Trace.with_span "ritree.left_join"
            ~info:(Printf.sprintf "%d nodes" (List.length lefts))
            (fun () -> Relation.Iter.fold f acc upper_branch)
        in
        Obs.Trace.with_span "ritree.right_join"
          ~info:(Printf.sprintf "%d nodes" (List.length rights))
          (fun () -> Relation.Iter.fold f acc lower_branch)
      end)

let intersecting_ids ?node_filter t ivl =
  traced_fold ?node_filter t ivl (fun acc key -> key.(2) :: acc) []
  |> List.rev

let intersecting t ivl =
  let rows =
    Obs.Trace.with_span "ritree.intersect" ~info:(Ivl.to_string ivl)
      (fun () ->
        Relation.Iter.fetch t.table (intersection_iter t ivl)
        |> Relation.Iter.to_list)
  in
  List.map
    (fun row -> (Ivl.make row.(col_lower) row.(col_upper), row.(col_id)))
    rows

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let count_intersecting ?node_filter t ivl =
  traced_fold ?node_filter t ivl (fun acc _ -> acc + 1) 0

(* Number of single-node probes the plan would perform (diagnostic for
   the skeleton extension). *)
let probe_count ?node_filter t ivl =
  let { left_nodes; right_nodes } = node_lists t ivl in
  let keep = match node_filter with None -> fun _ -> true | Some f -> f in
  List.length (List.filter (fun (a, b) -> a <> b || keep a) left_nodes)
  + List.length (List.filter keep right_nodes)

let explain t ivl =
  let { left_nodes; right_nodes } = node_lists t ivl in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "SELECT STATEMENT\n";
  add "  UNION-ALL\n";
  add "    NESTED LOOPS\n";
  add "      COLLECTION ITERATOR leftNodes(min, max): ";
  List.iter (fun (a, b) -> add "(%d,%d) " a b) left_nodes;
  add "\n      INDEX RANGE SCAN %s (node, upper, id)\n"
    (Relation.Table.Index.name t.upper_index);
  add "    NESTED LOOPS\n";
  add "      COLLECTION ITERATOR rightNodes(node): ";
  List.iter (fun w -> add "%d " w) right_nodes;
  add "\n      INDEX RANGE SCAN %s (node, lower, id)\n"
    (Relation.Table.Index.name t.lower_index);
  Buffer.contents buf

let check_invariants t =
  Relation.Table.check_invariants t.table;
  let fail fmt = Format.kasprintf failwith fmt in
  (let lr = -t.roots.Backbone.left_root and rr = t.roots.Backbone.right_root in
   if lr <> 0 && lr land (lr - 1) <> 0 then fail "left_root not a power of 2";
   if rr <> 0 && rr land (rr - 1) <> 0 then fail "right_root not a power of 2");
  Relation.Table.iter t.table (fun _ row ->
      let node = row.(0) in
      if node = fork_infinity || node = fork_now then ()
      else begin
        let ivl = Ivl.make row.(col_lower) row.(col_upper) in
        let expected = fork_node t ivl in
        if node <> expected then
          fail "row %s registered at node %d, fork is %d" (Ivl.to_string ivl)
            node expected;
        if node <> 0 && Backbone.level node < t.min_level then
          fail "row at node %d below min_level %d" node t.min_level
      end)

(* ------------------------------------------------------------------ *)
(* Temporal sentinel hooks (Sec. 4.6) *)

let insert_sentinel_row (t : t) ~node ~lower ~upper_code ~id =
  if node <> fork_infinity && node <> fork_now then
    invalid_arg "Ri_tree.insert_sentinel_row: not a sentinel node";
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  if t.offset = None then t.offset <- Some lower;
  ignore (Relation.Table.insert t.table [| node; lower; upper_code; id |]);
  save_params t;
  id

let sentinel_scan t ~node ~max_lower =
  let it =
    Relation.Iter.index_range t.lower_index
      ~lo:[| node; min_int; min_int; min_int |]
      ~hi:[| node; max_lower; max_int; max_int |]
  in
  Relation.Iter.fetch t.table it
  |> Relation.Iter.fold
       (fun acc row -> (row.(col_lower), row.(col_upper), row.(col_id)) :: acc)
       []
  |> List.rev
