module Ivl = Interval.Ivl

(* Equi-width histogram with running min/max. *)
module Histogram = struct
  type t = {
    lo : int;
    hi : int;
    counts : int array;
    total : int;
  }

  (* Bound arithmetic goes through floats: with the Sec. 4.6 infinity
     sentinels a histogram can legitimately span [min_int, max_int], and
     `hi - lo + 1` or `x - lo` in native ints would wrap. Floats lose
     precision at that scale but only blur bucket boundaries, which the
     estimate tolerates; wraparound flips signs and destroys it. *)
  let fspan lo hi = Float.max 1.0 (float_of_int hi -. float_of_int lo +. 1.0)

  let build ~buckets values =
    match values with
    | [] -> { lo = 0; hi = 0; counts = Array.make buckets 0; total = 0 }
    | v :: _ ->
        let lo = List.fold_left min v values in
        let hi = List.fold_left max v values in
        let counts = Array.make buckets 0 in
        let span = fspan lo hi in
        List.iter
          (fun x ->
            let b =
              int_of_float
                ((float_of_int x -. float_of_int lo)
                 *. float_of_int buckets /. span)
            in
            let b = min (buckets - 1) (max 0 b) in
            counts.(b) <- counts.(b) + 1)
          values;
        { lo; hi; counts; total = List.length values }

  (* Estimated number of values strictly below [x], assuming uniformity
     within buckets. *)
  let count_below t x =
    if t.total = 0 || x <= t.lo then 0.0
    else if x > t.hi then float_of_int t.total
    else begin
      let buckets = Array.length t.counts in
      let pos =
        (float_of_int x -. float_of_int t.lo)
        *. float_of_int buckets /. fspan t.lo t.hi
      in
      let pos = Float.max 0.0 (Float.min (float_of_int buckets) pos) in
      let full = int_of_float pos in
      let frac = pos -. float_of_int full in
      let acc = ref 0.0 in
      for b = 0 to min (buckets - 1) (full - 1) do
        acc := !acc +. float_of_int t.counts.(b)
      done;
      if full < buckets then acc := !acc +. (frac *. float_of_int t.counts.(full));
      !acc
    end
end

module Stats = struct
  type t = {
    n : int;
    lowers : Histogram.t;
    uppers : Histogram.t;
  }

  let analyze ?(buckets = 64) tree =
    let lowers = ref [] and uppers = ref [] in
    Relation.Table.iter (Ri_tree.table tree) (fun _ row ->
        lowers := row.(1) :: !lowers;
        uppers := row.(2) :: !uppers);
    { n = Ri_tree.count tree;
      lowers = Histogram.build ~buckets !lowers;
      uppers = Histogram.build ~buckets !uppers }

  let row_count t = t.n

  (* Misses: upper < qlow, or lower > qup. *)
  let estimate_result_size t q =
    if t.n = 0 then 0
    else begin
      let ends_before = Histogram.count_below t.uppers (Ivl.lower q) in
      (* "count_below (upper+1)" = "count at or below upper" — but the
         successor of the Sec. 4.6 infinity sentinel (max_int) wraps to
         min_int and collapses the count to 0, so clamp it. At max_int
         itself count_below may undercount by the values exactly equal
         to max_int; an [x, infinity) query instead takes the x > hi
         shortcut whenever the data contains no sentinel bounds. *)
      let upper_succ =
        if Ivl.upper q = max_int then max_int else Ivl.upper q + 1
      in
      let starts_after =
        float_of_int t.n -. Histogram.count_below t.lowers upper_succ
      in
      let est = float_of_int t.n -. ends_before -. starts_after in
      max 0 (min t.n (int_of_float (Float.round est)))
    end

  let estimate_selectivity t q =
    if t.n = 0 then 0.0
    else float_of_int (estimate_result_size t q) /. float_of_int t.n
end

type plan_choice = Index_plan | Full_scan | Mem_plan

let plan_to_string = function
  | Index_plan -> "index"
  | Full_scan -> "scan"
  | Mem_plan -> "mem"

(* What the tier-choice arithmetic needs to know about a RAM-resident
   HINT replica of the collection. *)
type mem_info = { mem_levels : int; mem_entries : int }

(* Entries per leaf for the 4-wide index keys, and rows per heap page,
   derived from the block size. *)
let index_leaf_capacity tree =
  let bs =
    Storage.Buffer_pool.block_size
      (Btree.pool (Relation.Table.Index.tree (Ri_tree.lower_index tree)))
  in
  max 1 ((bs - 16) / 32)

(* Blocks for the Fig. 9 plan. The node probes hit the two interval
   indexes whose upper levels are shared across probes and stay
   buffer-resident for the whole statement, so the root-to-leaf descent
   is charged once per index (2 * depth), not once per probe — charging
   it per probe overshot measured I/O by 2-5x on probe-heavy workloads.
   Each probe then costs one leaf visit, plus the leaves holding the
   estimated result. *)
let index_cost tree stats q =
  let n = max 2 (Stats.row_count stats) in
  let probes = float_of_int (Ri_tree.probe_count tree q + 1) in
  let fanout = float_of_int (index_leaf_capacity tree) in
  let depth = Float.max 1.0 (log (float_of_int n) /. log fanout) in
  let r = float_of_int (Stats.estimate_result_size stats q) in
  (2.0 *. depth) +. probes +. (r /. fanout)

let scan_cost tree =
  float_of_int (Relation.Heap.page_count (Relation.Table.heap (Ri_tree.table tree)))

(* A hot-tier probe does no physical I/O; to keep it comparable with the
   block-denominated disk costs it is priced in block-equivalents at a
   fixed CPU-to-I/O exchange rate: one block read buys ~50k in-memory
   partition visits / result touches. The probe walks at most two
   comparison-bearing partitions per HINT level plus the estimated
   result, so memory wins by orders of magnitude except against a
   same-statement warm cache — which the model deliberately ignores,
   matching the paper's cold-buffer costing. *)
let mem_ops_per_block = 50_000.0

let mem_cost (mi : mem_info) stats q =
  let r = float_of_int (Stats.estimate_result_size stats q) in
  let walk = float_of_int (mi.mem_levels * 8) in
  (walk +. r) /. mem_ops_per_block

let choose ?mem tree stats q =
  let ic = index_cost tree stats q and sc = scan_cost tree in
  let disk = if ic <= sc then (Index_plan, ic) else (Full_scan, sc) in
  match mem with
  | Some mi when mem_cost mi stats q <= snd disk -> Mem_plan
  | _ -> fst disk

let adaptive_ids tree stats q =
  match choose tree stats q with
  | Index_plan | Mem_plan -> Ri_tree.intersecting_ids tree q
  | Full_scan ->
      let acc = ref [] in
      Relation.Table.iter (Ri_tree.table tree) (fun _ row ->
          if row.(1) <= Ivl.upper q && row.(2) >= Ivl.lower q then
            acc := row.(3) :: !acc);
      List.rev !acc
