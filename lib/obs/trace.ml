type span = {
  name : string;
  info : string;
  elapsed_us : int;
  io : Counters.snapshot;
  children : span list;
}

(* An open span under construction: children accumulate in reverse
   until the frame closes. *)
type frame = {
  f_name : string;
  mutable f_info : string;
  t0 : float;
  c0 : Counters.snapshot;
  mutable kids_rev : span list;
  mutable n_kids : int;
}

(* A span keeps at most this many children; beyond it, finished child
   spans are dropped (their time and I/O still show up in the parent's
   deltas). Keeps a cold full scan from materializing one span per
   faulted page. *)
let max_children = 512

let flag = ref false
let set_enabled b = flag := b
let enabled () = !flag

(* Innermost frame first. *)
let stack : frame list ref = ref []

let ring_capacity = 64
let ring : span option array = Array.make ring_capacity None
let ring_next = ref 0
let ring_count = ref 0

let push_root sp =
  ring.(!ring_next) <- Some sp;
  ring_next := (!ring_next + 1) mod ring_capacity;
  if !ring_count < ring_capacity then incr ring_count

let recent () =
  let out = ref [] in
  for i = 0 to !ring_count - 1 do
    let idx = (!ring_next - 1 - i + 2 * ring_capacity) mod ring_capacity in
    match ring.(idx) with Some sp -> out := sp :: !out | None -> ()
  done;
  List.rev !out

let last () =
  if !ring_count = 0 then None
  else ring.((!ring_next - 1 + ring_capacity) mod ring_capacity)

let clear () =
  Array.fill ring 0 ring_capacity None;
  ring_next := 0;
  ring_count := 0

let open_frame name info =
  let f =
    { f_name = name; f_info = info; t0 = Unix.gettimeofday ();
      c0 = Counters.snapshot (); kids_rev = []; n_kids = 0 }
  in
  stack := f :: !stack;
  f

(* Close the innermost frame — tolerant of a stack perturbed by an
   exception path: close [f] specifically if it is still on the stack. *)
let close_frame f =
  (match !stack with
  | g :: rest when g == f -> stack := rest
  | other -> stack := List.filter (fun g -> g != f) other);
  let sp =
    { name = f.f_name; info = f.f_info;
      elapsed_us =
        int_of_float (Float.round ((Unix.gettimeofday () -. f.t0) *. 1e6));
      io = Counters.diff (Counters.snapshot ()) f.c0;
      children = List.rev f.kids_rev }
  in
  (match !stack with
  | parent :: _ ->
      if parent.n_kids < max_children then begin
        parent.kids_rev <- sp :: parent.kids_rev;
        parent.n_kids <- parent.n_kids + 1
      end
  | [] -> push_root sp);
  sp

let traced ?(info = "") name f =
  if not !flag then (f (), None)
  else begin
    let was_root = !stack = [] in
    let fr = open_frame name info in
    match f () with
    | v ->
        let sp = close_frame fr in
        (v, if was_root then Some sp else None)
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (close_frame fr);
        Printexc.raise_with_backtrace e bt
  end

let with_span ?(info = "") name f =
  if not !flag then f ()
  else begin
    let fr = open_frame name info in
    match f () with
    | v ->
        ignore (close_frame fr);
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        ignore (close_frame fr);
        Printexc.raise_with_backtrace e bt
  end

let annotate s =
  if !flag then
    match !stack with
    | [] -> ()
    | f :: _ -> f.f_info <- (if f.f_info = "" then s else f.f_info ^ " " ^ s)

let render ?max_bytes sp =
  let b = Buffer.create 256 in
  let budget = match max_bytes with Some n -> max n 0 | None -> max_int in
  let suppressed = ref 0 in
  let io_suffix (io : Counters.snapshot) =
    let parts = ref [] in
    let add label v = if v > 0 then parts := Printf.sprintf "%s=%d" label v :: !parts in
    add "jforces" io.journal_forces;
    add "evict" io.pool_evictions;
    add "miss" io.pool_misses;
    add "hit" io.pool_hits;
    add "writes" io.writes;
    add "reads" io.reads;
    if !parts = [] then "" else "  [" ^ String.concat " " !parts ^ "]"
  in
  let rec go indent sp =
    if !suppressed > 0 then incr suppressed
    else begin
      let line =
        Printf.sprintf "%s%s%s  %d us%s\n" indent sp.name
          (if sp.info = "" then "" else " (" ^ sp.info ^ ")")
          sp.elapsed_us (io_suffix sp.io)
      in
      (* Truncate only at line boundaries: a span line either fits whole
         or is suppressed (and counted) along with everything after it. *)
      if Buffer.length b + String.length line > budget then incr suppressed
      else Buffer.add_string b line
    end;
    List.iter (go (indent ^ "  ")) sp.children
  in
  go "" sp;
  if !suppressed > 0 then
    Buffer.add_string b
      (Printf.sprintf "… (%d span%s truncated)\n" !suppressed
         (if !suppressed = 1 then "" else "s"));
  Buffer.contents b
