(** Hierarchical query trace spans.

    A span covers one stage of request execution — dispatcher request,
    SQL statement, RI-tree join branch, B+tree probe, buffer-pool fault,
    journal force — with wall-clock timing and the {!Counters} delta
    observed while it was open (physical reads/writes, pool hits and
    misses, journal forces). Spans opened while another span is open
    become its children, so a finished root reads as the operator tree
    the request actually executed.

    Tracing is off by default; {!with_span} then runs its thunk behind a
    single branch with no allocation, so instrumented hot paths pay
    (almost) nothing. When enabled, finished roots land in a bounded
    ring buffer of recent traces for slow-query logging and debugging.

    The tracer is a process-wide single stack, matching the server's
    single-threaded dispatcher; concurrent tracing from multiple threads
    would interleave spans nonsensically (but not crash). *)

type span = {
  name : string;
  info : string;                 (** free-form detail, e.g. the interval *)
  elapsed_us : int;
  io : Counters.snapshot;        (** counter deltas while the span was open *)
  children : span list;          (** in execution order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_span : ?info:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], recording a span around it when tracing
    is enabled (a plain call to [f] otherwise). The span closes even if
    [f] raises; the exception is re-raised. *)

val traced : ?info:string -> string -> (unit -> 'a) -> 'a * span option
(** Like {!with_span}, but also returns the finished span ([None] when
    tracing is disabled or when called inside an open span — only roots
    are returned). *)

val annotate : string -> unit
(** Append detail to the innermost open span's [info]. No-op when
    disabled or outside any span. *)

val recent : unit -> span list
(** Finished root spans, newest first, up to {!ring_capacity}. *)

val last : unit -> span option
(** The most recently finished root span. *)

val clear : unit -> unit
(** Drop all retained traces (open spans are unaffected). *)

val ring_capacity : int

val render : ?max_bytes:int -> span -> string
(** Multi-line tree rendering: one line per span with elapsed time and
    any non-zero I/O deltas. [max_bytes] caps the rendered tree:
    truncation happens only at line boundaries and appends a final
    "… (N spans truncated)" marker line (the marker may exceed the cap
    by its own length). Used by the slow-query log so a pathological
    plan tree cannot stall the event loop. *)
