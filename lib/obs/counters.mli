(** Process-wide observability counters.

    The storage layer increments these alongside its per-device /
    per-pool statistics so that {!Trace} spans (and anything else that
    wants cross-layer attribution) can snapshot one global clock of
    physical work without holding a reference to every device, pool and
    journal in the process. Increments are single mutable-int bumps —
    cheap enough to stay unconditional. *)

val incr_read : unit -> unit
(** One physical block read reached a device. *)

val incr_write : unit -> unit
(** One physical block write reached a device. *)

val incr_pool_hit : unit -> unit
(** A buffer-pool pin was satisfied from a resident frame. *)

val incr_pool_miss : unit -> unit
(** A buffer-pool pin had to fault the page in from the device. *)

val incr_pool_eviction : unit -> unit
(** A frame was evicted to make room. *)

val incr_journal_force : unit -> unit
(** A journal force made pending log bytes durable. *)

val add_journal_bytes : int -> unit
(** Payload bytes appended to a journal. *)

type snapshot = {
  reads : int;
  writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  journal_forces : int;
  journal_bytes : int;
}

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the component-wise delta. *)
