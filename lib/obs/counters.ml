type state = {
  mutable reads : int;
  mutable writes : int;
  mutable pool_hits : int;
  mutable pool_misses : int;
  mutable pool_evictions : int;
  mutable journal_forces : int;
  mutable journal_bytes : int;
}

let c =
  { reads = 0; writes = 0; pool_hits = 0; pool_misses = 0;
    pool_evictions = 0; journal_forces = 0; journal_bytes = 0 }

let incr_read () = c.reads <- c.reads + 1
let incr_write () = c.writes <- c.writes + 1
let incr_pool_hit () = c.pool_hits <- c.pool_hits + 1
let incr_pool_miss () = c.pool_misses <- c.pool_misses + 1
let incr_pool_eviction () = c.pool_evictions <- c.pool_evictions + 1
let incr_journal_force () = c.journal_forces <- c.journal_forces + 1
let add_journal_bytes n = c.journal_bytes <- c.journal_bytes + n

type snapshot = {
  reads : int;
  writes : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  journal_forces : int;
  journal_bytes : int;
}

let snapshot () =
  { reads = c.reads; writes = c.writes; pool_hits = c.pool_hits;
    pool_misses = c.pool_misses; pool_evictions = c.pool_evictions;
    journal_forces = c.journal_forces; journal_bytes = c.journal_bytes }

let diff a b =
  { reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    pool_hits = a.pool_hits - b.pool_hits;
    pool_misses = a.pool_misses - b.pool_misses;
    pool_evictions = a.pool_evictions - b.pool_evictions;
    journal_forces = a.journal_forces - b.journal_forces;
    journal_bytes = a.journal_bytes - b.journal_bytes }
