(* The one iterator-based executor behind every query path (SQL text,
   typed wire ops, the CLI and the benchmarks). Branches execute as
   right-deep nested loops over `Relation.Iter`-style cursors: transient
   collections and streaming heap scans as outer loops, B+tree range
   probes as inner loops — the Fig. 10 execution shape.

   Every IR node type has exactly one `Obs.Trace` instrumentation point:
   a `sql.branch` span per UNION ALL branch and, when tracing is
   enabled, an `exec.*` span per node invocation (collection iterate,
   seq scan, index probe, group, aggregate, sort). The disabled path
   stays a plain call. *)

exception Error = Ir.Error

let fail = Ir.fail

(* ---------------- environments and evaluation ---------------- *)

(* alias -> (visible columns, current row) *)
type binding = (string * (string array * int array)) list

let col_position columns c =
  let rec go i =
    if i >= Array.length columns then None
    else if columns.(i) = c then Some i
    else go (i + 1)
  in
  go 0

let lookup_col bound alias col =
  match alias with
  | Some a -> (
      match List.assoc_opt a bound with
      | None -> fail "unknown alias %s" a
      | Some (columns, row) -> (
          match col_position columns col with
          | Some i -> row.(i)
          | None -> fail "alias %s has no column %s" a col))
  | None -> (
      let hits =
        List.filter_map
          (fun (_, (columns, row)) ->
            Option.map (fun i -> row.(i)) (col_position columns col))
          bound
      in
      match hits with
      | [ v ] -> v
      | [] -> fail "unknown column %s" col
      | _ -> fail "ambiguous column %s" col)

let eval_value binds (bound : binding) = function
  | Ir.Const n -> n
  | Ir.Param h -> (
      match List.assoc_opt h binds with
      | Some v -> v
      | None -> fail "missing host variable :%s" h)
  | Ir.Field (alias, col) -> lookup_col bound alias col

let rec eval_pred binds (bound : binding) = function
  | Ir.Cmp (op, a, b) ->
      let va = eval_value binds bound a and vb = eval_value binds bound b in
      (match op with
      | Ir.Eq -> va = vb
      | Ir.Ne -> va <> vb
      | Ir.Lt -> va < vb
      | Ir.Le -> va <= vb
      | Ir.Gt -> va > vb
      | Ir.Ge -> va >= vb)
  | Ir.Between (e, lo, hi) ->
      let v = eval_value binds bound e in
      eval_value binds bound lo <= v && v <= eval_value binds bound hi
  | Ir.And (a, b) -> eval_pred binds bound a && eval_pred binds bound b
  | Ir.Or (a, b) -> eval_pred binds bound a || eval_pred binds bound b
  | Ir.Not e -> not (eval_pred binds bound e)

(* ---------------- node execution ---------------- *)

(* Inclusive lexicographic range check for injecting snapshot-overlay
   rows into an index probe: an overlay row participates exactly when
   its index entry would have fallen inside the probe's key range. *)
let key_le a b =
  let n = Array.length a in
  let rec go i =
    if i >= n then true
    else if a.(i) < b.(i) then true
    else if a.(i) > b.(i) then false
    else go (i + 1)
  in
  go 0

let key_in_range ~lo ~hi key = key_le lo key && key_le key hi

let node_span (step : Ir.step) =
  match (step.source, step.access) with
  | Ir.Collection _, _ -> "exec.collection"
  | Ir.Mem _, _ -> "memtier.probe"
  | Ir.Base _, Ir.Seq_scan -> "exec.seq_scan"
  | Ir.Base _, Ir.Index_scan _ -> "exec.index_scan"
  | Ir.Base _, Ir.Mem_probe _ -> "exec.invalid"

let run_step ctx bound (step : Ir.step) (emit : binding -> unit) =
  let binds = ctx.Ir.binds in
  let bind columns row = bound @ [ (step.Ir.alias, (columns, row)) ] in
  let visit columns row =
    let b2 = bind columns row in
    if List.for_all (fun f -> eval_pred binds b2 f) step.Ir.filters then begin
      step.Ir.seen <- step.Ir.seen + 1;
      emit b2
    end
  in
  let body () =
    match (step.Ir.source, step.Ir.access) with
    | Ir.Collection name, _ -> (
        match ctx.Ir.collection name with
        | None -> fail "collection %s disappeared" name
        | Some (columns, rows) -> List.iter (fun r -> visit columns r) rows)
    | Ir.Mem h, Ir.Mem_probe { op; lo; hi; _ } ->
        let lo = eval_value binds bound lo
        and up = eval_value binds bound hi in
        List.iter
          (fun (l, u, id) -> visit step.Ir.columns [| l; u; id |])
          (h.Ir.mem_probe op ~lo ~up)
    | Ir.Mem _, _ -> fail "hot-tier source requires a memory probe"
    | Ir.Base _, Ir.Mem_probe _ -> fail "memory probe against a base table"
    | Ir.Base tbl, Ir.Seq_scan ->
        (* Streaming scan: the heap cursor behind Iter.heap_scan holds
           one page of rows at a time, so a sequential scan of any size
           runs in constant memory. The appended rowid column is used
           for the snapshot visibility check, then dropped. *)
        let columns = Relation.Table.columns tbl in
        let view = ctx.Ir.vis (Relation.Table.name tbl) in
        let accept =
          match view with
          | None -> fun _ -> true
          | Some v -> v.Relation.Txn.visible
        in
        Relation.Iter.iter
          (fun r ->
            let n = Array.length r in
            if accept r.(n - 1) then visit columns (Array.sub r 0 (n - 1)))
          (Relation.Iter.heap_scan tbl);
        (match view with
        | None -> ()
        | Some v -> List.iter (visit columns) (v.Relation.Txn.extra ()))
    | ( Ir.Base tbl,
        Ir.Index_scan { index; eq; lo; hi; refine_lo; refine_hi; covering } )
      ->
        let tree = Relation.Table.Index.tree index in
        let width = Btree.key_width tree in
        let icols = Relation.Table.Index.columns index in
        let eq_vals = List.map (eval_value binds bound) eq in
        let k = List.length eq_vals in
        let lo_key = Array.make width min_int in
        let hi_key = Array.make width max_int in
        List.iteri
          (fun i v ->
            lo_key.(i) <- v;
            hi_key.(i) <- v)
          eq_vals;
        (match lo with
        | Some { Ir.v; inclusive } ->
            lo_key.(k) <- (eval_value binds bound v + if inclusive then 0 else 1)
        | None -> ());
        (match hi with
        | Some { Ir.v; inclusive } ->
            hi_key.(k) <- (eval_value binds bound v - if inclusive then 0 else 1)
        | None -> ());
        let rpos = k + if lo <> None || hi <> None then 1 else 0 in
        if rpos > k && rpos < width then begin
          (match refine_lo with
          | Some { Ir.v; inclusive } ->
              lo_key.(rpos) <-
                (eval_value binds bound v + if inclusive then 0 else 1)
          | None -> ());
          match refine_hi with
          | Some { Ir.v; inclusive } ->
              hi_key.(rpos) <-
                (eval_value binds bound v - if inclusive then 0 else 1)
          | None -> ()
        end;
        let view = ctx.Ir.vis (Relation.Table.name tbl) in
        let accept =
          match view with
          | None -> fun _ -> true
          | Some v -> v.Relation.Txn.visible
        in
        let entry_visit key =
          let entry_ok =
            step.Ir.key_filters = []
            ||
            (* key filters see the index entry (sans rowid), so
               non-matching entries are skipped without a fetch *)
            let entry = Array.sub key 0 (Array.length key - 1) in
            let b2 = bind icols entry in
            List.for_all (fun f -> eval_pred binds b2 f) step.Ir.key_filters
          in
          if entry_ok then
            if covering then
              visit icols (Array.sub key 0 (Array.length key - 1))
            else
              let rowid = key.(Array.length key - 1) in
              match Relation.Table.fetch tbl rowid with
              | Some row -> visit (Relation.Table.columns tbl) row
              | None -> ()
        in
        Btree.iter_range tree ~lo:lo_key ~hi:hi_key (fun key ->
            if accept key.(Array.length key - 1) then entry_visit key);
        (match view with
        | None -> ()
        | Some v ->
            (* Overlay rows are injected per probe: each row's index
               entry joins exactly the probes whose key range would have
               contained its physical registration, so UNION ALL branch
               disjointness and per-probe key filters behave as for
               physical rows. The rowid slot is unconstrained in every
               probe (min_int..max_int), so a pseudo-rowid of 0 never
               decides the comparison. *)
            List.iter
              (fun row ->
                let key = Relation.Table.Index.key_of_row index 0 row in
                if key_in_range ~lo:lo_key ~hi:hi_key key then
                  if covering then entry_visit key
                  else
                    let entry_ok =
                      step.Ir.key_filters = []
                      ||
                      let entry = Array.sub key 0 (Array.length key - 1) in
                      let b2 = bind icols entry in
                      List.for_all
                        (fun f -> eval_pred binds b2 f)
                        step.Ir.key_filters
                    in
                    if entry_ok then visit (Relation.Table.columns tbl) row)
              (v.Relation.Txn.extra ()))
  in
  if Obs.Trace.enabled () then
    Obs.Trace.with_span (node_span step) ~info:step.Ir.alias body
  else body ()

let run_branch ctx (branch : Ir.branch) =
  Obs.Trace.with_span "sql.branch"
    ~info:
      (String.concat "," (List.map (fun s -> s.Ir.alias) branch.Ir.steps))
  @@ fun () ->
  let rows = ref [] in
  let count = ref 0 in
  let rec loop bound = function
    | [] ->
        incr count;
        let row =
          List.concat_map
            (function
              | Ir.Star ->
                  List.concat_map
                    (fun (_, (_, row)) -> Array.to_list row)
                    bound
              | Ir.Count_star -> []
              | Ir.Agg _ -> fail "aggregate outside an aggregate query"
              | Ir.Col (alias, c) -> [ lookup_col bound alias c ])
            branch.Ir.projections
        in
        rows := Array.of_list row :: !rows
    | step :: rest -> run_step ctx bound step (fun b2 -> loop b2 rest)
  in
  loop [] branch.Ir.steps;
  (List.rev !rows, !count)

let projection_columns (branch : Ir.branch) =
  List.concat_map
    (function
      | Ir.Star ->
          List.concat_map
            (fun (s : Ir.step) -> Array.to_list s.Ir.columns)
            branch.Ir.steps
      | Ir.Count_star -> [ "count" ]
      | Ir.Agg (a, (_, c)) ->
          [ Printf.sprintf "%s(%s)"
              (String.lowercase_ascii (Ir.agg_to_string a))
              c ]
      | Ir.Col (_, c) -> [ c ])
    branch.Ir.projections

let is_aggregate_projection = function
  | Ir.Count_star | Ir.Agg _ -> true
  | Ir.Star | Ir.Col _ -> false

(* ---------------- grouping, aggregation, ordering ---------------- *)

(* GROUP BY: one pass over the branch's rows, accumulating per group
   key. Plain projections must be grouping columns; aggregate order-by
   keys are not supported. *)
let run_group_by ctx (branch : Ir.branch) =
  Obs.Trace.with_span "exec.group" @@ fun () ->
  let group = branch.Ir.group_by in
  let is_group_col (alias, c) =
    List.exists (fun (_, gc) -> gc = c) group
    && match alias with _ -> true
  in
  List.iter
    (function
      | Ir.Col (a, c) when not (is_group_col (a, c)) ->
          fail "column %s is not in GROUP BY" c
      | Ir.Star -> fail "SELECT * cannot be combined with GROUP BY"
      | Ir.Col _ | Ir.Count_star | Ir.Agg _ -> ())
    branch.Ir.projections;
  let agg_cols =
    List.filter_map
      (function
        | Ir.Agg (_, target) -> Some target
        | Ir.Count_star | Ir.Star | Ir.Col _ -> None)
      branch.Ir.projections
  in
  let branch' =
    { branch with
      Ir.projections =
        List.map (fun (a, c) -> Ir.Col (a, c)) group
        @ List.map (fun (a, c) -> Ir.Col (a, c)) agg_cols }
  in
  let rows, _ = run_branch ctx branch' in
  let karity = List.length group in
  let groups : (int list, int * int list array) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = Array.to_list (Array.sub row 0 karity) in
      let vals =
        Array.init (List.length agg_cols) (fun i -> row.(karity + i))
      in
      match Hashtbl.find_opt groups key with
      | Some (count, lists) ->
          Array.iteri (fun i v -> lists.(i) <- v :: lists.(i)) vals;
          Hashtbl.replace groups key (count + 1, lists)
      | None ->
          order := key :: !order;
          Hashtbl.replace groups key (1, Array.map (fun v -> [ v ]) vals))
    rows;
  List.rev_map
    (fun key ->
      let count, lists = Hashtbl.find groups key in
      let next = ref 0 in
      let cells =
        List.map
          (fun p ->
            match p with
            | Ir.Col (a, c) ->
                let rec pos i = function
                  | [] -> fail "grouping column %s missing" c
                  | (ga, gc) :: rest ->
                      if gc = c && (a = None || ga = None || a = ga) then i
                      else pos (i + 1) rest
                in
                List.nth key (pos 0 group)
            | Ir.Count_star -> count
            | Ir.Agg (agg, _) -> (
                let vs = lists.(!next) in
                incr next;
                match agg with
                | Ir.Count -> List.length vs
                | Ir.Sum -> List.fold_left ( + ) 0 vs
                | Ir.Min -> List.fold_left min (List.hd vs) vs
                | Ir.Max -> List.fold_left max (List.hd vs) vs)
            | Ir.Star -> assert false)
          branch.Ir.projections
      in
      Array.of_list cells)
    !order

(* Aggregates without GROUP BY are computed over the concatenation of
   all UNION ALL branches; mixing aggregate and plain projections is
   rejected. *)
let run_aggregate ctx branches projections =
  Obs.Trace.with_span "exec.aggregate" @@ fun () ->
  (* per branch, project the columns the aggregates read *)
  let agg_cols =
    List.filter_map
      (function
        | Ir.Agg (_, target) -> Some target
        | Ir.Count_star | Ir.Star | Ir.Col _ -> None)
      projections
  in
  let count = ref 0 in
  let values = Array.make (List.length agg_cols) [] in
  List.iter
    (fun branch ->
      let branch' =
        { branch with
          Ir.projections =
            List.map (fun t -> Ir.Col (fst t, snd t)) agg_cols }
      in
      let rows, c = run_branch ctx branch' in
      count := !count + c;
      List.iter
        (fun row ->
          Array.iteri (fun i _ -> values.(i) <- row.(i) :: values.(i)) values)
        rows)
    branches;
  let next_value = ref 0 in
  let cells =
    List.map
      (fun p ->
        match p with
        | Ir.Count_star -> !count
        | Ir.Agg (a, _) -> (
            let vs = values.(!next_value) in
            incr next_value;
            match a with
            | Ir.Count -> List.length vs
            | Ir.Sum -> List.fold_left ( + ) 0 vs
            | Ir.Min -> (
                match vs with
                | [] -> fail "MIN over an empty result"
                | v :: rest -> List.fold_left min v rest)
            | Ir.Max -> (
                match vs with
                | [] -> fail "MAX over an empty result"
                | v :: rest -> List.fold_left max v rest))
        | Ir.Star | Ir.Col _ -> assert false)
      projections
  in
  [ Array.of_list cells ]

let order_and_limit (first : Ir.branch) (plan : Ir.plan) rows =
  let rows =
    if plan.Ir.order_by = [] then rows
    else
      Obs.Trace.with_span "exec.sort" @@ fun () ->
      let names = projection_columns first in
      let position { Ir.key = _, col; descending } =
        let rec go i = function
          | [] -> fail "ORDER BY column %s is not in the projection" col
          | c :: rest -> if c = col then (i, descending) else go (i + 1) rest
        in
        go 0 names
      in
      let keys = List.map position plan.Ir.order_by in
      List.stable_sort
        (fun (a : int array) b ->
          let rec cmp = function
            | [] -> 0
            | (i, desc) :: rest ->
                let c = Int.compare a.(i) b.(i) in
                if c <> 0 then if desc then -c else c else cmp rest
          in
          cmp keys)
        rows
  in
  match plan.Ir.limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

(* ---------------- plan execution ---------------- *)

type output = { columns : string list; rows : int array list }

let reset_seen (plan : Ir.plan) =
  List.iter
    (fun b -> List.iter (fun (s : Ir.step) -> s.Ir.seen <- 0) b.Ir.steps)
    plan.Ir.branches

let run ctx (plan : Ir.plan) =
  match plan.Ir.branches with
  | [] -> { columns = []; rows = [] }
  | first :: _ when first.Ir.group_by <> [] ->
      if List.length plan.Ir.branches > 1 then
        fail "GROUP BY cannot be combined with UNION ALL";
      let rows = run_group_by ctx first in
      { columns = projection_columns first;
        rows = order_and_limit first plan rows }
  | first :: _ ->
      let aggs = List.filter is_aggregate_projection first.Ir.projections in
      if aggs <> [] then begin
        if List.length aggs <> List.length first.Ir.projections then
          fail "cannot mix aggregate and plain projections";
        if plan.Ir.order_by <> [] then
          fail "ORDER BY does not apply to an aggregate query";
        { columns = projection_columns first;
          rows = run_aggregate ctx plan.Ir.branches first.Ir.projections }
      end
      else begin
        let all_rows = ref [] in
        List.iter
          (fun branch ->
            let rows, _ = run_branch ctx branch in
            all_rows := !all_rows @ rows)
          plan.Ir.branches;
        { columns = projection_columns first;
          rows = order_and_limit first plan !all_rows }
      end

(* Measure an execution: wall time and the process-global physical-I/O
   delta (single-threaded execution means the delta is attributable to
   this run). *)
let measured f =
  let c0 = Obs.Counters.snapshot () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let d = Obs.Counters.diff (Obs.Counters.snapshot ()) c0 in
  (r, ms, d.Obs.Counters.reads + d.Obs.Counters.writes)
