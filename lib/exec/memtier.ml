(* The RAM-resident hot tier: materializes whole interval collections
   into main-memory HINT indexes and hands the planner zero-I/O probe
   handles for them.

   Residency is budgeted (bytes, LRU-demoted) and invalidated by table
   mutation: a resident replica is only served while it still points at
   the same physical table handle AND the table's mutation counter is
   unchanged since the build — `Table.version` resets on reopen, so the
   handle identity check covers crash/reopen cycles where the counter
   alone could alias.

   Any residency change (promotion, demotion, invalidation) bumps a
   process-global generation counter. Compiled plans embed the probe
   closure of the replica they were planned against, so the SQL plan
   caches compare this generation and flush when it moves — a stale
   handle never executes. *)

module Ivl = Interval.Ivl
module Ri = Ritree.Ri_tree
module Hint = Memindex.Hint

type entry = {
  e_name : string;
  e_hint : Hint.t;
  e_bytes : int;
  e_version : int; (* Table.version at build time *)
  e_table : Relation.Table.t; (* physical handle the version belongs to *)
  e_lsn : int; (* commit LSN of the table state the replica reflects *)
  mutable e_tick : int; (* last-use stamp for LRU demotion *)
}

type t = {
  budget_bytes : int; (* 0 = hot tier disabled *)
  entries : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable resident_bytes : int;
  mutable builds : int;
  mutable demotions : int;
  mutable invalidations : int;
  mutable probes : int;
}

type stats = {
  s_budget_bytes : int;
  s_resident_bytes : int;
  s_resident : int;
  s_builds : int;
  s_demotions : int;
  s_invalidations : int;
  s_probes : int;
}

(* Process-global: plan caches in any session must notice residency
   changes made through any manager. *)
let generation = ref 0

let current_generation () = !generation

let bump () = incr generation

let create ~budget_mb =
  { budget_bytes = max 0 budget_mb * 1024 * 1024;
    entries = Hashtbl.create 8;
    tick = 0;
    resident_bytes = 0;
    builds = 0;
    demotions = 0;
    invalidations = 0;
    probes = 0 }

let stats t =
  { s_budget_bytes = t.budget_bytes;
    s_resident_bytes = t.resident_bytes;
    s_resident = Hashtbl.length t.entries;
    s_builds = t.builds;
    s_demotions = t.demotions;
    s_invalidations = t.invalidations;
    s_probes = t.probes }

let resident t name = Hashtbl.mem t.entries name

let drop t e =
  Hashtbl.remove t.entries e.e_name;
  t.resident_bytes <- t.resident_bytes - e.e_bytes;
  bump ()

let invalidate t name =
  match Hashtbl.find_opt t.entries name with
  | None -> ()
  | Some e ->
      drop t e;
      t.invalidations <- t.invalidations + 1

let demote t name =
  match Hashtbl.find_opt t.entries name with
  | None -> false
  | Some e ->
      drop t e;
      t.demotions <- t.demotions + 1;
      true

(* Demote least-recently-used replicas until [need] more bytes fit. *)
let make_room t need =
  let continue_ = ref true in
  while !continue_ && t.resident_bytes + need > t.budget_bytes do
    let victim =
      Hashtbl.fold
        (fun _ e acc ->
          match acc with
          | Some b when b.e_tick <= e.e_tick -> acc
          | _ -> Some e)
        t.entries None
    in
    match victim with
    | None -> continue_ := false
    | Some e ->
        drop t e;
        t.demotions <- t.demotions + 1
  done


let build ?(lsn = 0) t ri =
  let tbl = Ri.table ri in
  let name = Ri.name ri in
  let rows = Ri.count ri in
  (* Rough pre-build gate (two registrations of seven words per row, on
     average) so a hopelessly oversized collection does not evict the
     whole tier just to be discarded after the build. *)
  let est = rows * 2 * 7 * 8 in
  if est > t.budget_bytes then None
  else begin
    let version = Relation.Table.version tbl in
    let hint =
      Obs.Trace.with_span "memtier.build" ~info:name @@ fun () ->
      (* Two passes: the grid universe must be the data's actual bound
         range — a sentinel-wide universe would collapse every interval
         into one grid cell and degrade the index to a scan list. Probes
         outside the universe stay exact (queries clamp monotonically;
         only inserts are range-checked). *)
      let triples = ref [] and dlo = ref max_int and dhi = ref min_int in
      Relation.Table.iter tbl (fun _ row ->
          let lo = row.(1) and up = row.(2) in
          if lo < !dlo then dlo := lo;
          if up > !dhi then dhi := up;
          triples := (lo, up, row.(3)) :: !triples);
      let lo, hi = if !dlo > !dhi then (0, 0) else (!dlo, !dhi) in
      let h = Hint.create ~lo ~hi ~m:(Hint.suggested_grid ~rows) () in
      List.iter
        (fun (lo, up, id) -> ignore (Hint.insert ~id h (Ivl.make lo up)))
        !triples;
      h
    in
    let bytes = Hint.approx_bytes hint in
    (* Exact-size gate BEFORE any eviction: an oversized collection whose
       rough pre-gate estimate undershot must not demote the whole tier
       only to be declined anyway. Once it is known to fit the budget,
       LRU demotion frees exactly what is needed. *)
    if bytes > t.budget_bytes then None
    else begin
      make_room t bytes;
      t.tick <- t.tick + 1;
      let e =
        { e_name = name; e_hint = hint; e_bytes = bytes; e_version = version;
          e_table = tbl; e_lsn = lsn; e_tick = t.tick }
      in
      Hashtbl.replace t.entries name e;
      t.resident_bytes <- t.resident_bytes + bytes;
      t.builds <- t.builds + 1;
      bump ();
      Some e
    end
  end

let handle t (e : entry) : Ir.mem_handle =
  let hint = e.e_hint in
  let triples pairs =
    List.map (fun (i, id) -> (Ivl.lower i, Ivl.upper i, id)) pairs
  in
  { Ir.mem_name = e.e_name;
    mem_rows = Hint.count hint;
    mem_levels = Hint.levels hint;
    mem_entries = Hint.entry_count hint;
    mem_bytes = e.e_bytes;
    mem_probe =
      (fun op ~lo ~up ->
        t.probes <- t.probes + 1;
        if lo > up then []
        else
          let q = Ivl.make lo up in
          match op with
          | Ir.Mem_intersect -> triples (Hint.intersecting hint q)
          | Ir.Mem_relation r -> triples (Hint.relation hint r q)) }

(* The one entry point the query paths use: a valid resident replica is
   served (and LRU-touched); a stale one is invalidated; a miss triggers
   a build when the budget allows. Returns [None] when the tier is
   disabled, the collection does not fit, or the build was declined.

   Snapshot gating: a replica reflects the table as of its build LSN.
   A snapshot with [snap_high] older than that LSN must not see the
   newer state, so the handle is withheld — WITHOUT dropping the
   replica, which every current-snapshot reader can still use. A fresh
   build is stamped with [lsn] (the table's last committed mutation). *)
let acquire ?(snap_high = max_int) ?(lsn = 0) t ri =
  if t.budget_bytes <= 0 then None
  else begin
    let tbl = Ri.table ri in
    let name = Ri.name ri in
    let live =
      match Hashtbl.find_opt t.entries name with
      | Some e
        when e.e_table == tbl && e.e_version = Relation.Table.version tbl ->
          t.tick <- t.tick + 1;
          e.e_tick <- t.tick;
          Some e
      | Some e ->
          drop t e;
          t.invalidations <- t.invalidations + 1;
          None
      | None -> None
    in
    match live with
    | Some e -> if snap_high >= e.e_lsn then Some (handle t e) else None
    | None -> (
        match build ~lsn t ri with
        | Some e when snap_high >= e.e_lsn -> Some (handle t e)
        | Some _ | None -> None)
  end
