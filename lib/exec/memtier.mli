(** The RAM-resident hot tier.

    A {!t} manages main-memory HINT replicas of interval collections
    under a byte budget: {!acquire} serves a residency handle for a
    collection (building it on first touch, LRU-demoting colder replicas
    to make room) that the planner can embed as a zero-I/O access path.
    Replicas are invalidated by table mutation ({!Relation.Table.version})
    and by reopen (physical handle identity), and every residency change
    bumps a process-global generation the plan caches key on. *)

type t

type stats = {
  s_budget_bytes : int;
  s_resident_bytes : int;
  s_resident : int; (* resident collections *)
  s_builds : int;
  s_demotions : int;
  s_invalidations : int;
  s_probes : int;
}

val create : budget_mb:int -> t
(** A manager with the given budget; [0] disables the tier ({!acquire}
    always returns [None]). *)

val acquire :
  ?snap_high:int -> ?lsn:int -> t -> Ritree.Ri_tree.t -> Ir.mem_handle option
(** Residency handle for the collection, if it is (or can be made)
    resident within budget. Serving a handle touches the LRU clock;
    a replica staler than the table's mutation counter is dropped and
    rebuilt.

    [snap_high] is the requesting snapshot's commit LSN (default: serve
    unconditionally); a replica built from table state newer than the
    snapshot is withheld for that request without being dropped. [lsn]
    stamps a fresh build with the table's last committed mutation LSN. *)

val resident : t -> string -> bool

val invalidate : t -> string -> unit
(** Drop the named replica (counted as an invalidation), if resident. *)

val demote : t -> string -> bool
(** Drop the named replica (counted as a demotion); [false] if it was
    not resident. *)

val stats : t -> stats

val current_generation : unit -> int
(** Process-global residency generation: bumped on every promotion,
    demotion or invalidation by any manager. Plan caches compare it to
    decide whether compiled plans may still embed live handles. *)
