(* The typed-op planner: compiles the server's interval operations
   (intersection, the 13 Allen relations, temporal now/infinity queries)
   into the same physical-plan IR the SQL front end produces, so every
   entry point executes through {!Executor} and explains through
   {!Render}.

   Access-path selection (Sec. 5): the planner consults
   `Ritree.Cost_model` to pick the full two-branch UNION ALL plan
   (Fig. 9/10) or a filtered sequential scan when the query is so
   unselective that reading the heap once beats probing (tiny tables,
   near-full coverage). A third path, the single-branch probe of the
   query point's backbone path (Sec. 4.1), is available on request but
   never chosen by cost — see [choose]. All paths return exactly the
   same result set (property-tested against the brute-force oracle). *)

module Ivl = Interval.Ivl
module Allen = Interval.Allen
module Temporal = Interval.Temporal
module Ri = Ritree.Ri_tree
module CM = Ritree.Cost_model

type path = Two_branch | Single_branch | Seq | Mem_path

let path_to_string = function
  | Two_branch -> "two-branch"
  | Single_branch -> "single-branch"
  | Seq -> "seq-scan"
  | Mem_path -> "mem"

(* Which columns the caller needs: ids alone keep the Fig. 9 plan fully
   covering; triples fetch the base rows. *)
type proj = Ids | Triples

let default_path q = if Ivl.lower q = Ivl.upper q then Single_branch else Two_branch

(* A compiled typed-op query: the IR plan plus the private context
   (parameter bindings and transient node-list collections) it executes
   against. *)
type compiled = { plan : Ir.plan; ctx : Ir.ctx }

let make_ctx ?(vis = Ir.no_vis) binds colls =
  { Ir.binds; collection = (fun name -> List.assoc_opt name colls); vis }

let interval_binds q = [ ("qlow", Ivl.lower q); ("qup", Ivl.upper q) ]

let projections = function
  | Ids -> [ Ir.Col (None, "id") ]
  | Triples ->
      [ Ir.Col (None, "lower"); Ir.Col (None, "upper"); Ir.Col (None, "id") ]

let plain_plan branches = { Ir.branches; order_by = []; limit = None }

let field a c = Ir.Field (Some a, c)
let incl v = Some { Ir.v; inclusive = true }

(* ---- the Fig. 9/10 two-branch UNION ALL plan ---- *)

let left_collection nl =
  ( "leftNodes",
    ( [| "min"; "max" |],
      List.map (fun (a, b) -> [| a; b |]) nl.Ri.left_nodes ) )

let right_collection nl =
  ("rightNodes", ([| "node" |], List.map (fun w -> [| w |]) nl.Ri.right_nodes))

(* [extra] residual filters (the Allen endpoint decompositions) apply to
   the fetched row of the inner step of both branches. *)
let two_branch_branches ?(extra = []) ~proj t =
  let table = Ri.table t in
  let tcols = Relation.Table.columns table in
  let upper_idx = Ri.upper_index t and lower_idx = Ri.lower_index t in
  let covering = proj = Ids && extra = [] in
  let upper_step =
    Ir.mk_step ~alias:"i" ~source:(Ir.Base table)
      ~columns:
        (if covering then Relation.Table.Index.columns upper_idx else tcols)
      ~filters:
        (Ir.Cmp (Ir.Ge, field "i" "upper", Ir.Param "qlow") :: extra)
      (Ir.Index_scan
         { index = upper_idx; eq = [];
           lo = incl (field "lft" "min");
           hi = incl (field "lft" "max");
           refine_lo = incl (Ir.Param "qlow");
           refine_hi = None; covering })
  in
  let lower_step =
    Ir.mk_step ~alias:"i" ~source:(Ir.Base table)
      ~columns:
        (if covering then Relation.Table.Index.columns lower_idx else tcols)
      ~filters:extra
      (Ir.Index_scan
         { index = lower_idx; eq = [ field "rgt" "node" ];
           lo = None; hi = incl (Ir.Param "qup");
           refine_lo = None; refine_hi = None; covering })
  in
  let projs = projections proj in
  [ { Ir.steps =
        [ Ir.mk_step ~alias:"lft" ~source:(Ir.Collection "leftNodes")
            ~columns:[| "min"; "max" |] Ir.Seq_scan;
          upper_step ];
      projections = projs; group_by = [] };
    { Ir.steps =
        [ Ir.mk_step ~alias:"rgt" ~source:(Ir.Collection "rightNodes")
            ~columns:[| "node" |] Ir.Seq_scan;
          lower_step ];
      projections = projs; group_by = [] } ]

let two_branch ?extra ?vis ~proj t q =
  let nl = Ri.node_lists t q in
  { plan = plain_plan (two_branch_branches ?extra ~proj t);
    ctx =
      make_ctx ?vis (interval_binds q)
        [ left_collection nl; right_collection nl ] }

(* ---- single-branch path probe for degenerate (point) queries ---- *)

let path_nodes t x =
  let p = Ri.params t in
  match p.Ri.offset with
  | None -> []
  | Some off ->
      let roots =
        { Ritree.Backbone.left_root = p.Ri.left_root;
          right_root = p.Ri.right_root }
      in
      Ritree.Backbone.path roots ~min_level:p.Ri.min_level (x - off)

let single_branch ?vis ~proj t q =
  let table = Ri.table t in
  let probe =
    (* Every interval containing the point is registered on its backbone
       path (Sec. 4.1): one lower-index probe per path node, upper bound
       checked on the fetched row. *)
    Ir.mk_step ~alias:"i" ~source:(Ir.Base table)
      ~columns:(Relation.Table.columns table)
      ~filters:[ Ir.Cmp (Ir.Ge, field "i" "upper", Ir.Param "qlow") ]
      (Ir.Index_scan
         { index = Ri.lower_index t; eq = [ field "pth" "node" ];
           lo = None; hi = incl (Ir.Param "qup");
           refine_lo = None; refine_hi = None; covering = false })
  in
  let branch =
    { Ir.steps =
        [ Ir.mk_step ~alias:"pth" ~source:(Ir.Collection "pathNodes")
            ~columns:[| "node" |] Ir.Seq_scan;
          probe ];
      projections = projections proj; group_by = [] }
  in
  let nodes = List.map (fun w -> [| w |]) (path_nodes t (Ivl.lower q)) in
  { plan = plain_plan [ branch ];
    ctx =
      make_ctx ?vis (interval_binds q) [ ("pathNodes", ([| "node" |], nodes)) ] }

(* ---- filtered sequential scan ---- *)

let seq_scan ?vis ~proj t q =
  let table = Ri.table t in
  let branch =
    { Ir.steps =
        [ Ir.mk_step ~alias:"i" ~source:(Ir.Base table)
            ~columns:(Relation.Table.columns table)
            ~filters:
              [ Ir.Cmp (Ir.Le, field "i" "lower", Ir.Param "qup");
                Ir.Cmp (Ir.Ge, field "i" "upper", Ir.Param "qlow") ]
            Ir.Seq_scan ];
      projections = projections proj; group_by = [] }
  in
  { plan = plain_plan [ branch ];
    ctx = make_ctx ?vis (interval_binds q) [] }

(* ---- RAM-resident hot-tier probe ---- *)

let mem_info (h : Ir.mem_handle) =
  { CM.mem_levels = h.Ir.mem_levels; mem_entries = h.Ir.mem_entries }

let mem_plan ?stats ~proj (h : Ir.mem_handle) op q =
  let est_rows =
    match (op, stats) with
    | Ir.Mem_intersect, Some st -> CM.Stats.estimate_result_size st q
    | _ -> h.Ir.mem_rows
  in
  let step =
    Ir.mk_step ~alias:"m" ~source:(Ir.Mem h)
      ~columns:[| "lower"; "upper"; "id" |]
      (Ir.Mem_probe
         { op; lo = Ir.Param "qlow"; hi = Ir.Param "qup"; est_rows })
  in
  { plan =
      plain_plan
        [ { Ir.steps = [ step ]; projections = projections proj;
            group_by = [] } ];
    ctx = make_ctx (interval_binds q) [] }

(* Cost-based choice among the access paths. Scan-vs-index-vs-memory
   comes from the registered cost model; the memory tier only competes
   when the caller holds a residency handle for this collection. The
   single-branch stabbing probe is not cost-competitive even on its home
   turf, point queries: it pays one lower-index probe per backbone path
   node plus a heap fetch for every candidate row — the lower index
   carries no upper bound, so nothing about it is covering — while the
   two-branch plan answers the same point from covering index probes
   that share leaf pages. Cold-cache measurement across D1-D4 shows
   1.2-8x more I/O for the probe, so the planner emits it only on
   explicit request. *)
let choose ?mem t stats q =
  match CM.choose ?mem t stats q with
  | CM.Full_scan -> Seq
  | CM.Index_plan -> Two_branch
  | CM.Mem_plan -> Mem_path

let plan_intersection ?stats ?path ?mem ?vis ~proj t q =
  let path =
    match (path, mem, stats) with
    | Some p, _, _ -> p
    | None, Some h, Some st -> choose ~mem:(mem_info h) t st q
    (* resident but uncosted: a zero-I/O probe is never the wrong pick *)
    | None, Some _, None -> Mem_path
    | None, None, Some st -> choose t st q
    | None, None, None -> default_path q
  in
  match path with
  | Mem_path -> (
      match mem with
      | Some h -> mem_plan ?stats ~proj h Ir.Mem_intersect q
      | None -> invalid_arg "plan_intersection: memory path without a handle")
  | Two_branch -> two_branch ?vis ~proj t q
  | Single_branch -> single_branch ?vis ~proj t q
  | Seq -> seq_scan ?vis ~proj t q

(* ---- execution helpers ---- *)

let run c = Executor.run c.ctx c.plan

let intersecting_ids ?stats ?path ?mem ?vis t q =
  List.map (fun (r : int array) -> r.(0))
    (run (plan_intersection ?stats ?path ?mem ?vis ~proj:Ids t q)).Executor.rows

let intersecting ?stats ?path ?mem ?vis t q =
  List.map
    (fun (r : int array) -> (Ivl.make r.(0) r.(1), r.(2)))
    (run (plan_intersection ?stats ?path ?mem ?vis ~proj:Triples t q))
      .Executor.rows

let stabbing_ids ?stats t p = intersecting_ids ?stats t (Ivl.point p)

(* ---- Allen-relation decomposition (Sec. 4.5) ----

   Every Allen relation is a conjunction of endpoint comparisons, so
   each compiles to index access plus residual filters:
   - Before/After: one ordered range scan over the nodes strictly
     left/right of the query, with a key-level filter on the bound
     (checked on the index entry, before any fetch);
   - Meets/Met_by: exact-bound probes along the backbone path of the
     shared endpoint;
   - the nine intersection-implying relations: the two-branch plan with
     the endpoint comparisons as extra residual filters. *)

let allen_filters r =
  let l = field "i" "lower" and u = field "i" "upper" in
  let bl = Ir.Param "qlow" and bu = Ir.Param "qup" in
  let ( <. ) a b = Ir.Cmp (Ir.Lt, a, b) in
  let ( =. ) a b = Ir.Cmp (Ir.Eq, a, b) in
  match r with
  | Allen.Overlaps -> [ l <. bl; bl <. u; u <. bu ]
  | Allen.Finished_by -> [ u =. bu; l <. bl ]
  | Allen.Contains -> [ l <. bl; bu <. u ]
  | Allen.Starts -> [ l =. bl; u <. bu ]
  | Allen.Equals -> [ l =. bl; u =. bu ]
  | Allen.Started_by -> [ l =. bl; bu <. u ]
  | Allen.During -> [ bl <. l; u <. bu ]
  | Allen.Finishes -> [ u =. bu; bl <. l ]
  | Allen.Overlapped_by -> [ bl <. l; l <. bu; bu <. u ]
  | Allen.Before | Allen.After | Allen.Meets | Allen.Met_by ->
      invalid_arg "allen_filters: not an intersection-implying relation"

let empty_compiled ?vis q =
  { plan = plain_plan []; ctx = make_ctx ?vis (interval_binds q) [] }

let plan_allen_disk ?vis t r q =
  let p = Ri.params t in
  match p.Ri.offset with
  | None -> empty_compiled ?vis q (* empty tree: nothing can match *)
  | Some off -> (
      let table = Ri.table t in
      let tcols = Relation.Table.columns table in
      let qlow = Ivl.lower q and qup = Ivl.upper q in
      let single_step step =
        { plan =
            plain_plan
              [ { Ir.steps = [ step ]; projections = projections Triples;
                  group_by = [] } ];
          ctx = make_ctx ?vis (interval_binds q) [] }
      in
      let path_probe ~nodes ~index ~bound_param =
        (* exact-bound probes along a backbone path *)
        let probe =
          Ir.mk_step ~alias:"i" ~source:(Ir.Base table) ~columns:tcols
            ~filters:
              [ Ir.Cmp (Ir.Lt, field "i" "lower", field "i" "upper");
                Ir.Cmp (Ir.Lt, Ir.Param "qlow", Ir.Param "qup") ]
            (Ir.Index_scan
               { index; eq = [ field "pth" "node"; Ir.Param bound_param ];
                 lo = None; hi = None; refine_lo = None; refine_hi = None;
                 covering = false })
        in
        { plan =
            plain_plan
              [ { Ir.steps =
                    [ Ir.mk_step ~alias:"pth"
                        ~source:(Ir.Collection "pathNodes")
                        ~columns:[| "node" |] Ir.Seq_scan;
                      probe ];
                  projections = projections Triples; group_by = [] } ];
          ctx =
            make_ctx ?vis (interval_binds q)
              [ ("pathNodes",
                 ([| "node" |], List.map (fun w -> [| w |]) nodes)) ] }
      in
      match r with
      | Allen.Before ->
          (* i.upper < qlow implies node <= i.upper - offset < ql: one
             ordered scan over all nodes strictly left of the query. *)
          let ql = qlow - off in
          single_step
            (Ir.mk_step ~alias:"i" ~source:(Ir.Base table) ~columns:tcols
               ~key_filters:
                 [ Ir.Cmp (Ir.Lt, field "i" "upper", Ir.Param "qlow") ]
               (Ir.Index_scan
                  { index = Ri.upper_index t; eq = [];
                    lo = None; hi = incl (Ir.Const (ql - 1));
                    refine_lo = None; refine_hi = None; covering = false }))
      | Allen.After ->
          (* i.lower > qup implies node >= i.lower - offset > qu. Stop
             short of the temporal sentinel nodes. *)
          let qu = qup - off in
          single_step
            (Ir.mk_step ~alias:"i" ~source:(Ir.Base table) ~columns:tcols
               ~key_filters:
                 [ Ir.Cmp (Ir.Gt, field "i" "lower", Ir.Param "qup") ]
               (Ir.Index_scan
                  { index = Ri.lower_index t; eq = [];
                    lo = incl (Ir.Const (qu + 1));
                    hi = incl (Ir.Const (Ri.fork_now - 1));
                    refine_lo = None; refine_hi = None; covering = false }))
      | Allen.Meets ->
          path_probe ~nodes:(path_nodes t qlow) ~index:(Ri.upper_index t)
            ~bound_param:"qlow"
      | Allen.Met_by ->
          path_probe ~nodes:(path_nodes t qup) ~index:(Ri.lower_index t)
            ~bound_param:"qup"
      | Allen.Overlaps | Allen.Finished_by | Allen.Contains | Allen.Starts
      | Allen.Equals | Allen.Started_by | Allen.During | Allen.Finishes
      | Allen.Overlapped_by ->
          two_branch ~extra:(allen_filters r) ?vis ~proj:Triples t q)

let plan_allen ?mem ?vis t r q =
  match mem with
  | Some h ->
      (* A resident HINT answers every Allen relation directly (the
         Allen_probe reduction); nothing on disk is touched. *)
      mem_plan ~proj:Triples h (Ir.Mem_relation r) q
  | None -> plan_allen_disk ?vis t r q

let allen_matches ?mem ?vis t r q =
  List.map
    (fun (row : int array) -> (Ivl.make row.(0) row.(1), row.(2)))
    (run (plan_allen ?mem ?vis t r q)).Executor.rows

let allen_ids ?mem ?vis t r q = List.map snd (allen_matches ?mem ?vis t r q)

(* ---- temporal now/infinity rewrite (Sec. 4.6) ----

   The finite intervals run through the ordinary two-branch plan; a
   third branch joins the reserved sentinel nodes as one more transient
   collection carrying its own per-node lower-bound cap (fork_now is
   capped at [now]; it only joins at all when the query begins in the
   past). All branches project (node, lower, upper, id) so the caller
   can decode the sentinel rows by their reserved node value. *)

(* qualified: the sentinel collection [s] and the rightNodes collection
   both carry a [node] column, so bare names would be ambiguous *)
let temporal_projs =
  [ Ir.Col (Some "i", "node"); Ir.Col (Some "i", "lower");
    Ir.Col (Some "i", "upper"); Ir.Col (Some "i", "id") ]

let plan_temporal store ~now q =
  let t = Ritree.Temporal_store.ri store in
  let nl = Ri.node_lists t q in
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let finite =
    List.map
      (fun b -> { b with Ir.projections = temporal_projs })
      (two_branch_branches ~proj:Triples t)
  in
  let sentinel_step =
    Ir.mk_step ~alias:"i" ~source:(Ir.Base (Ri.table t))
      ~columns:(Relation.Table.columns (Ri.table t))
      (Ir.Index_scan
         { index = Ri.lower_index t; eq = [ field "s" "node" ];
           lo = None; hi = incl (field "s" "maxLower");
           refine_lo = None; refine_hi = None; covering = false })
  in
  let sentinel_branch =
    { Ir.steps =
        [ Ir.mk_step ~alias:"s" ~source:(Ir.Collection "sentinelNodes")
            ~columns:[| "node"; "maxLower" |] Ir.Seq_scan;
          sentinel_step ];
      projections = temporal_projs; group_by = [] }
  in
  let sentinels =
    [| Ri.fork_infinity; qup |]
    :: (if qlow <= now then [ [| Ri.fork_now; min qup now |] ] else [])
  in
  { plan = plain_plan (finite @ [ sentinel_branch ]);
    ctx =
      make_ctx (interval_binds q)
        [ left_collection nl; right_collection nl;
          ("sentinelNodes", ([| "node"; "maxLower" |], sentinels)) ] }

let temporal_matches store ~now q =
  List.map
    (fun (row : int array) ->
      let node = row.(0) and lower = row.(1) and upper = row.(2) in
      if node = Ri.fork_infinity then (Temporal.make lower Temporal.Infinity, row.(3))
      else if node = Ri.fork_now then (Temporal.make lower Temporal.Now, row.(3))
      else (Temporal.fixed (Ivl.make lower upper), row.(3)))
    (run (plan_temporal store ~now q)).Executor.rows

let temporal_ids store ~now q = List.map snd (temporal_matches store ~now q)

(* ---- shared EXPLAIN assembly ----

   One implementation behind SQL EXPLAIN [ANALYZE] and the wire-op
   EXPLAIN: render the plan with cost-model annotations, append the
   PREDICTED footer, and under ANALYZE execute and append actuals. *)

let explain_compiled ?(analyze = false) ctx (plan : Ir.plan) =
  let ests = Estimate.branches ctx plan.Ir.branches in
  let pred_rows =
    List.fold_left (fun a e -> a +. e.Estimate.out_rows) 0.0 ests
  in
  let pred_io =
    List.fold_left (fun a e -> a +. e.Estimate.total_io) 0.0 ests
  in
  let nodes =
    List.fold_left
      (fun a b -> a + Estimate.node_count ctx b)
      0 plan.Ir.branches
  in
  let notes actual =
    List.concat
      (List.map2
         (fun (branch : Ir.branch) est ->
           List.map2
             (fun (step : Ir.step) (se : Estimate.step_est) ->
               let s =
                 if actual then
                   Render.est_actual_note ~rows:se.Estimate.est_out
                     ~io:se.Estimate.est_io ~actual:step.Ir.seen
                 else
                   Render.est_note ~rows:se.Estimate.est_out
                     ~io:se.Estimate.est_io
               in
               (step, s))
             branch.Ir.steps est.Estimate.step_ests)
         plan.Ir.branches ests)
  in
  let footer_pred =
    Render.predicted_footer ~nodes ~rows:pred_rows ~io:pred_io
  in
  if not analyze then begin
    let notes = notes false in
    let annot step = Option.value ~default:"" (List.assq_opt step notes) in
    Render.plan ~annot plan.Ir.branches ^ footer_pred
  end
  else begin
    Executor.reset_seen plan;
    let result, ms, io = Executor.measured (fun () -> Executor.run ctx plan) in
    let notes = notes true in
    let annot step = Option.value ~default:"" (List.assq_opt step notes) in
    Render.plan ~annot plan.Ir.branches ^ footer_pred
    ^ Render.actual_footer ~rows:(List.length result.Executor.rows) ~io ~ms
  end

type target =
  | Intersect_target of Ivl.t
  | Allen_target of Allen.relation * Ivl.t

let plan_target ?stats ?mem ?vis t = function
  | Intersect_target q -> plan_intersection ?stats ?mem ?vis ~proj:Triples t q
  | Allen_target (r, q) -> plan_allen ?mem ?vis t r q

let explain ?stats ?analyze ?mem ?vis t target =
  let c = plan_target ?stats ?mem ?vis t target in
  explain_compiled ?analyze c.ctx c.plan
