(* Normalized-statement plan cache: parse + plan once, execute many.

   Keys are normalized statement texts (literals replaced by parameter
   slots — see Sqlfront.Normalize); values are compiled plans. A small
   LRU bounds memory; invalidation (DDL, collection schema changes,
   stats refresh) drops everything, because plans bake in table handles,
   index choices and collection schemas.

   A raw-text memo sits in front of the normalizer: the second time the
   *identical* statement string arrives, the hot path is two hashtable
   lookups — no lexing, no parsing, no planning, no per-statement
   allocation beyond the result rows.

   Per-cache counters feed tests; process-global totals feed the
   `rikit_plan_cache` families in `Server.Metrics`. *)

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable inserts : int;
  mutable invalidations : int;
}

let totals = { hits = 0; misses = 0; inserts = 0; invalidations = 0 }

type 'a entry = { value : 'a; mutable last : int }

type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  (* raw statement text -> normalized key + its literal slot values *)
  raw : (string, string * (string * int) list) Hashtbl.t;
  mutable tick : int;
  stats : stats;
}

let default_capacity = 128

let create ?(cap = default_capacity) () =
  { cap = max 1 cap;
    tbl = Hashtbl.create 64;
    raw = Hashtbl.create 64;
    tick = 0;
    stats = { hits = 0; misses = 0; inserts = 0; invalidations = 0 } }

let size t = Hashtbl.length t.tbl

let find t key =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.last <- t.tick;
      t.stats.hits <- t.stats.hits + 1;
      totals.hits <- totals.hits + 1;
      Some e.value
  | None ->
      t.stats.misses <- t.stats.misses + 1;
      totals.misses <- totals.misses + 1;
      None

(* O(size) eviction scan; the cache is small and eviction is rare. *)
let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, last) when last <= e.last -> ()
      | _ -> victim := Some (k, e.last))
    t.tbl;
  match !victim with
  | Some (k, _) -> Hashtbl.remove t.tbl k
  | None -> ()

let add t key value =
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.cap then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.replace t.tbl key { value; last = t.tick };
    t.stats.inserts <- t.stats.inserts + 1;
    totals.inserts <- totals.inserts + 1
  end

let find_raw t src = Hashtbl.find_opt t.raw src

let add_raw t src key params =
  (* bounded alongside the plan table; a raw memo entry is tiny *)
  if Hashtbl.length t.raw >= 4 * t.cap then Hashtbl.reset t.raw;
  if not (Hashtbl.mem t.raw src) then Hashtbl.replace t.raw src (key, params)

(* Drop every cached plan (DDL, collection schema change, stats
   refresh): plans bake in physical handles, so staleness is corruption,
   not slowness. *)
let invalidate t =
  let n = Hashtbl.length t.tbl in
  if n > 0 then begin
    t.stats.invalidations <- t.stats.invalidations + n;
    totals.invalidations <- totals.invalidations + n
  end;
  Hashtbl.reset t.tbl;
  Hashtbl.reset t.raw

let stats t = t.stats
let hits t = t.stats.hits
let misses t = t.stats.misses

let global_hits () = totals.hits
let global_misses () = totals.misses
let global_invalidations () = totals.invalidations

let global_hit_rate () =
  let total = totals.hits + totals.misses in
  if total = 0 then 0.0 else float_of_int totals.hits /. float_of_int total
