(* The one plan renderer. Every EXPLAIN in the system — SQL text,
   typed wire ops, the CLI — prints through this module, so plan shape
   is directly comparable across entry points.

   Steps are numbered sequentially across the whole plan in execution
   order (branch by branch, outer to inner), so a UNION ALL whose
   branches probe the same transient collection still renders two
   distinct, attributable steps. *)

let plan ?(annot = fun (_ : Ir.step) -> "") branches =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "SELECT STATEMENT\n";
  let indent0 = if List.length branches > 1 then "    " else "  " in
  if List.length branches > 1 then add "  UNION-ALL\n";
  let stepno = ref 0 in
  let next_step () =
    incr stepno;
    Printf.sprintf " [step %d]" !stepno
  in
  List.iter
    (fun (branch : Ir.branch) ->
      let rec nest indent = function
        | [] -> ()
        | [ step ] -> describe indent step
        | step :: rest ->
            add "%sNESTED LOOPS\n" indent;
            describe (indent ^ "  ") step;
            nest (indent ^ "  ") rest
      and describe indent (step : Ir.step) =
        (match (step.Ir.source, step.Ir.access) with
        | Ir.Collection name, _ ->
            add "%sCOLLECTION ITERATOR %s%s%s\n" indent name (next_step ())
              (annot step)
        | Ir.Base tbl, Ir.Seq_scan ->
            add "%sTABLE ACCESS FULL %s%s%s\n" indent
              (Relation.Table.name tbl) (next_step ()) (annot step)
        | Ir.Mem h, Ir.Mem_probe { op; lo; hi; _ } ->
            add "%sMEM HINT PROBE %s (%s [%s, %s])%s%s\n" indent
              h.Ir.mem_name (Ir.mem_op_to_string op) (Ir.value_to_string lo)
              (Ir.value_to_string hi) (next_step ()) (annot step)
        | Ir.Mem h, (Ir.Seq_scan | Ir.Index_scan _) ->
            add "%sMEM HINT SCAN %s%s%s\n" indent h.Ir.mem_name (next_step ())
              (annot step)
        | Ir.Base _, Ir.Mem_probe _ ->
            add "%sINVALID STEP%s\n" indent (next_step ())
        | ( Ir.Base _,
            Ir.Index_scan { index; eq; lo; hi; refine_lo; refine_hi; covering }
          ) ->
            let icols = Relation.Table.Index.columns index in
            let parts = ref [] in
            List.iteri
              (fun i e ->
                parts :=
                  Printf.sprintf "%s = %s" icols.(i) (Ir.value_to_string e)
                  :: !parts)
              eq;
            let rc = List.length eq in
            let bound_part col { Ir.v; inclusive } ge =
              Printf.sprintf "%s %s %s" col
                (match (ge, inclusive) with
                | true, true -> ">="
                | true, false -> ">"
                | false, true -> "<="
                | false, false -> "<")
                (Ir.value_to_string v)
            in
            Option.iter
              (fun b -> parts := bound_part icols.(rc) b true :: !parts)
              lo;
            Option.iter
              (fun b -> parts := bound_part icols.(rc) b false :: !parts)
              hi;
            let rpos = rc + if lo <> None || hi <> None then 1 else 0 in
            if rpos > rc && rpos < Array.length icols then begin
              Option.iter
                (fun b ->
                  parts :=
                    (bound_part icols.(rpos) b true ^ " [start key]")
                    :: !parts)
                refine_lo;
              Option.iter
                (fun b ->
                  parts :=
                    (bound_part icols.(rpos) b false ^ " [stop key]")
                    :: !parts)
                refine_hi
            end;
            List.iter
              (fun p ->
                parts :=
                  (Ir.pred_to_string p ^ " [key filter]") :: !parts)
              step.Ir.key_filters;
            add "%sINDEX RANGE SCAN %s (%s)%s%s%s\n" indent
              (String.uppercase_ascii (Relation.Table.Index.name index))
              (String.concat ", " (List.rev !parts))
              (if covering then "" else " + TABLE ACCESS BY ROWID")
              (next_step ()) (annot step));
        if step.Ir.filters <> [] then
          add "%s  FILTER %s\n" indent
            (String.concat " AND "
               (List.map Ir.pred_to_string step.Ir.filters))
      in
      nest indent0 branch.Ir.steps)
    branches;
  Buffer.contents buf

(* ---- footers shared by EXPLAIN [ANALYZE] across entry points ---- *)

let est_note ~rows ~io = Printf.sprintf "  (est rows=%.0f io=%.0f)" rows io

let est_actual_note ~rows ~io ~actual =
  Printf.sprintf "  (est rows=%.0f io=%.0f, actual rows=%d)" rows io actual

let predicted_footer ~nodes ~rows ~io =
  Printf.sprintf "PREDICTED  nodes=%d  rows=%.0f  io=%.0f\n" nodes rows io

let actual_footer ~rows ~io ~ms =
  Printf.sprintf "ACTUAL     rows=%d  io=%d  time=%.1f ms\n" rows io ms

let statement_note kind =
  Printf.sprintf "%s STATEMENT (no plan; not executed — use EXPLAIN ANALYZE)"
    kind

let analyzed_statement ~kind ~summary ~io ~ms =
  Printf.sprintf "%s STATEMENT\n%s\nACTUAL     io=%d  time=%.1f ms\n" kind
    summary io ms
