(* The typed physical-plan IR shared by every query path.

   A plan is a list of UNION ALL branches; each branch is a right-deep
   chain of nested-loop steps (the Fig. 10 shape: transient collection
   iterators as outer loops, index range scans as inner loops), followed
   by projection, optional grouping, ordering and a limit. The SQL front
   end compiles its AST into this IR; the typed wire ops (intersection,
   Allen, temporal) are built directly by {!Planner}; one executor
   ({!Executor}), one renderer ({!Render}) and one estimator
   ({!Estimate}) serve all of them. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type cmp = Eq | Ne | Lt | Le | Gt | Ge

(* Scalar operands: literals, parameter slots (host variables and
   plan-cache slots share the :name namespace), and column references
   resolved against the rows bound by the enclosing nested loop. *)
type value =
  | Const of int
  | Param of string (* :name *)
  | Field of string option * string (* alias.column or column *)

type pred =
  | Cmp of cmp * value * value
  | Between of value * value * value (* v BETWEEN lo AND hi *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(* The operation a hot-tier probe runs; the raw bounds come from the
   step's [Mem_probe] access at execution time. *)
type mem_op =
  | Mem_intersect
  | Mem_relation of Interval.Allen.relation

(* A resident hot-tier collection, as handed out by {!Memtier}: the
   probe closure answers against the in-memory HINT replica. Plans
   embedding a handle are only as fresh as the residency generation
   they were compiled under — the plan caches invalidate on any tier
   change, so a stale handle never executes. *)
type mem_handle = {
  mem_name : string; (* the indexed collection, for EXPLAIN *)
  mem_rows : int; (* resident cardinality *)
  mem_levels : int; (* HINT hierarchy depth, for the cost model *)
  mem_entries : int; (* registrations incl. replicas *)
  mem_bytes : int; (* resident size *)
  mem_probe : mem_op -> lo:int -> up:int -> (int * int * int) list;
      (* (lower, upper, id) triples *)
}

type source =
  | Base of Relation.Table.t
  | Collection of string (* transient; resolved from the context at run time *)
  | Mem of mem_handle (* RAM-resident hot tier *)

type bound = { v : value; inclusive : bool }

type access =
  | Seq_scan
  | Index_scan of {
      index : Relation.Table.Index.t;
      eq : value list; (* probes for the leading key columns *)
      lo : bound option; (* range on the next key column *)
      hi : bound option;
      (* Start/stop-key refinement on the column after the range column
         (the paper's Sec. 4.3 lemma: "i.upper >= :lower" tightens the
         start key of the BETWEEN scan). The conjunct stays in the
         residual filter; the refinement only skips entries. *)
      refine_lo : bound option;
      refine_hi : bound option;
      covering : bool; (* no base-table fetch needed *)
    }
  | Mem_probe of {
      op : mem_op;
      lo : value; (* raw query bounds, resolved at execution *)
      hi : value;
      est_rows : int; (* cost-model estimate, for EXPLAIN *)
    }

type step = {
  alias : string;
  source : source;
  columns : string array; (* columns the binding exposes *)
  access : access;
  (* Predicates over the index entry itself, checked before the rowid
     fetch: fields resolve against the index columns. The topological
     plans use these to reproduce the key-level filters of Sec. 4.5
     without fetching non-matching rows. Always empty for SQL plans. *)
  key_filters : pred list;
  filters : pred list; (* residual conjuncts evaluated on the bound row *)
  mutable seen : int; (* rows emitted (post-filter) in the last run *)
}

type agg = Count | Min | Max | Sum

type proj =
  | Star
  | Count_star
  | Col of string option * string
  | Agg of agg * (string option * string)

type branch = {
  steps : step list;
  projections : proj list;
  group_by : (string option * string) list;
}

type order_key = { key : string option * string; descending : bool }

type plan = {
  branches : branch list; (* UNION ALL *)
  order_by : order_key list;
  limit : int option;
}

(* The run-time context a plan executes against: parameter bindings,
   the transient collections (the SQL session's, or the planner's own),
   and the MVCC snapshot overlay. [vis] returns the per-table view of
   the executing session's snapshot: base-table scans filter physically
   present rows through it and merge the rows it serves that are not
   physically present (recently deleted rows old snapshots still see,
   plus the session's own pending inserts). [None] — the common case —
   means physical state is exactly the snapshot and scans pay nothing. *)
type ctx = {
  binds : (string * int) list;
  collection : string -> (string array * int array list) option;
  vis : string -> Relation.Txn.view option;
}

let no_vis : string -> Relation.Txn.view option = fun _ -> None
let no_collections = { binds = []; collection = (fun _ -> None); vis = no_vis }

(* ---- printing (must match Sqlfront.Ast.expr_to_string verbatim: the
   renderer's FILTER and key lines are part of the EXPLAIN contract) ---- *)

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let value_to_string = function
  | Const n -> string_of_int n
  | Param h -> ":" ^ h
  | Field (None, c) -> c
  | Field (Some a, c) -> a ^ "." ^ c

let rec pred_to_string = function
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (value_to_string a) (cmp_to_string op)
        (value_to_string b)
  | Between (e, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (value_to_string e)
        (value_to_string lo) (value_to_string hi)
  | And (a, b) ->
      Printf.sprintf "(%s AND %s)" (pred_to_string a) (pred_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s OR %s)" (pred_to_string a) (pred_to_string b)
  | Not e -> Printf.sprintf "(NOT %s)" (pred_to_string e)

let mem_op_to_string = function
  | Mem_intersect -> "intersect"
  | Mem_relation r ->
      "allen " ^ String.lowercase_ascii (Interval.Allen.to_string r)

let agg_to_string = function
  | Count -> "COUNT"
  | Min -> "MIN"
  | Max -> "MAX"
  | Sum -> "SUM"

let mk_step ?(key_filters = []) ?(filters = []) ~alias ~source ~columns access =
  { alias; source; columns; access; key_filters; filters; seen = 0 }
