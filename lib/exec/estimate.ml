(* Cardinality & I/O estimation over the physical-plan IR.

   A self-contained, Sec. 5-style estimator for EXPLAIN: per-table
   equi-width histograms and distinct counts feed selectivities; index
   probes cost the matching leaf span (plus a rowid fetch per row when
   the index does not cover); a sequential scan costs the heap's page
   count. Transient collections have exact, known cardinality and cost
   no I/O — they are the leftNodes/rightNodes of the paper's Fig. 9
   plan, so the predicted outer cardinality is exactly the RI-tree node
   count.

   Root-to-leaf descent pages are charged ONCE per statement per index,
   not once per probe: the upper levels of a B+tree are pinned hot in
   the buffer pool after the first probe, and the PR 4 `bench-explain`
   calibration showed that charging a full descent per node probe
   overshoots actual I/O by 2-5x on the Fig. 9 plans (tens of probes,
   shared root path). *)

let hbuckets = 32

type col = {
  h_lo : int;
  h_hi : int;
  h_counts : int array;
  h_total : int;
  h_distinct : int;
  h_corr : float;
      (* |Pearson correlation| between the column value and the row's
         heap position — 1.0 means an index range on this column fetches
         consecutive heap pages, 0.0 a random scatter *)
}

(* Bound arithmetic in floats: columns may hold min_int/max_int
   sentinels, and native-int spans would wrap. *)
let fspan lo hi = Float.max 1.0 (float_of_int hi -. float_of_int lo +. 1.0)

let clamp01 f = Float.max 0.0 (Float.min 1.0 f)

(* |Pearson correlation| of value vs position in [values] (the sign is
   irrelevant for locality: a perfectly descending column is just as
   clustered as an ascending one). *)
let heap_correlation values =
  let n = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
  let sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
  List.iteri
    (fun i v ->
      let x = float_of_int i and y = float_of_int v in
      n := !n +. 1.0;
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      syy := !syy +. (y *. y);
      sxy := !sxy +. (x *. y))
    values;
  let cov = (!n *. !sxy) -. (!sx *. !sy) in
  let vx = (!n *. !sxx) -. (!sx *. !sx)
  and vy = (!n *. !syy) -. (!sy *. !sy) in
  if vx <= 0.0 || vy <= 0.0 then 0.0
  else clamp01 (Float.abs (cov /. sqrt (vx *. vy)))

let build_col values n distinct =
  match values with
  | [] ->
      { h_lo = 0; h_hi = 0; h_counts = Array.make hbuckets 0; h_total = 0;
        h_distinct = 0; h_corr = 0.0 }
  | v :: _ ->
      let lo = List.fold_left min v values in
      let hi = List.fold_left max v values in
      let counts = Array.make hbuckets 0 in
      let span = fspan lo hi in
      List.iter
        (fun x ->
          let b =
            int_of_float
              ((float_of_int x -. float_of_int lo)
               *. float_of_int hbuckets /. span)
          in
          let b = min (hbuckets - 1) (max 0 b) in
          counts.(b) <- counts.(b) + 1)
        values;
      { h_lo = lo; h_hi = hi; h_counts = counts; h_total = n;
        h_distinct = distinct; h_corr = heap_correlation values }

type table_stats = {
  t_rows : int;
  t_pages : int;
  t_cols : (string * col) list;
}

let analyze_table tbl =
  let columns = Relation.Table.columns tbl in
  let ncols = Array.length columns in
  let vals = Array.make ncols [] in
  let distinct = Array.init ncols (fun _ -> Hashtbl.create 64) in
  let rows = ref 0 in
  Relation.Table.iter tbl (fun _ row ->
      incr rows;
      for j = 0 to ncols - 1 do
        vals.(j) <- row.(j) :: vals.(j);
        Hashtbl.replace distinct.(j) row.(j) ()
      done);
  { t_rows = !rows;
    t_pages = Relation.Heap.page_count (Relation.Table.heap tbl);
    t_cols =
      List.init ncols (fun j ->
          (columns.(j),
           build_col vals.(j) !rows (Hashtbl.length distinct.(j)))) }

(* Estimated count of values strictly below [x]. *)
let count_below h x =
  if h.h_total = 0 || x <= h.h_lo then 0.0
  else if x > h.h_hi then float_of_int h.h_total
  else begin
    let pos =
      (float_of_int x -. float_of_int h.h_lo)
      *. float_of_int hbuckets /. fspan h.h_lo h.h_hi
    in
    let pos = Float.max 0.0 (Float.min (float_of_int hbuckets) pos) in
    let full = int_of_float pos in
    let frac = pos -. float_of_int full in
    let acc = ref 0.0 in
    for b = 0 to min (hbuckets - 1) (full - 1) do
      acc := !acc +. float_of_int h.h_counts.(b)
    done;
    if full < hbuckets then
      acc := !acc +. (frac *. float_of_int h.h_counts.(full));
    !acc
  end

let succ_clamped v = if v = max_int then max_int else v + 1

let frac_lt h v =
  if h.h_total = 0 then 0.0
  else clamp01 (count_below h v /. float_of_int h.h_total)

let frac_le h v = frac_lt h (succ_clamped v)

let eq_frac h v =
  if h.h_total = 0 then 0.0
  else Float.max (1.0 /. float_of_int h.h_total) (frac_le h v -. frac_lt h v)

let distinct_frac h =
  if h.h_distinct <= 0 then 0.1 else 1.0 /. float_of_int h.h_distinct

(* System R-style defaults when no histogram or no evaluable value. *)
let default_eq = 0.1
let default_range = 1.0 /. 3.0

let hist_for stats c =
  match stats with
  | None -> None
  | Some st -> List.assoc_opt c st.t_cols

(* Evaluate a value against constants, parameters and [env] (concrete
   outer-collection rows, when the caller enumerated them); [None] if it
   references columns not bound there. *)
let value_of ?(env = []) binds v =
  match Executor.eval_value binds env v with
  | v -> Some v
  | exception Ir.Error _ -> None

let col_of (step : Ir.step) = function
  | Ir.Field (Some a, c) when a = step.Ir.alias -> Some c
  | Ir.Field (None, c) when Array.exists (fun x -> x = c) step.Ir.columns ->
      Some c
  | _ -> None

(* Selectivity of one residual conjunct at [step]. *)
let rec conj_sel stats binds step conj =
  match conj with
  | Ir.And (a, b) -> conj_sel stats binds step a *. conj_sel stats binds step b
  | Ir.Or (a, b) ->
      let sa = conj_sel stats binds step a
      and sb = conj_sel stats binds step b in
      clamp01 (sa +. sb -. (sa *. sb))
  | Ir.Not e -> clamp01 (1.0 -. conj_sel stats binds step e)
  | Ir.Between (e, lo, hi) ->
      conj_sel stats binds step
        (Ir.And (Ir.Cmp (Ir.Ge, e, lo), Ir.Cmp (Ir.Le, e, hi)))
  | Ir.Cmp (op, a, b) -> (
      (* constant predicate: evaluate it outright *)
      match (value_of binds a, value_of binds b) with
      | Some va, Some vb ->
          let holds =
            match op with
            | Ir.Eq -> va = vb
            | Ir.Ne -> va <> vb
            | Ir.Lt -> va < vb
            | Ir.Le -> va <= vb
            | Ir.Gt -> va > vb
            | Ir.Ge -> va >= vb
          in
          if holds then 1.0 else 0.0
      | _ -> (
          let directional col_side op v =
            let h = hist_for stats col_side in
            match (h, v) with
            | Some h, Some v -> (
                match op with
                | Ir.Eq -> eq_frac h v
                | Ir.Ne -> clamp01 (1.0 -. eq_frac h v)
                | Ir.Lt -> frac_lt h v
                | Ir.Le -> frac_le h v
                | Ir.Gt -> clamp01 (1.0 -. frac_le h v)
                | Ir.Ge -> clamp01 (1.0 -. frac_lt h v))
            | _, _ -> (
                match op with
                | Ir.Eq -> (
                    match h with
                    | Some h -> distinct_frac h
                    | None -> default_eq)
                | Ir.Ne -> clamp01 (1.0 -. default_eq)
                | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge -> default_range)
          in
          let mirror = function
            | Ir.Eq -> Ir.Eq
            | Ir.Ne -> Ir.Ne
            | Ir.Lt -> Ir.Gt
            | Ir.Le -> Ir.Ge
            | Ir.Gt -> Ir.Lt
            | Ir.Ge -> Ir.Le
          in
          match (col_of step a, col_of step b) with
          | Some c, _ -> directional c op (value_of binds b)
          | None, Some c -> directional c (mirror op) (value_of binds a)
          | None, None -> 0.5))

let filters_sel stats binds (step : Ir.step) =
  List.fold_left
    (fun acc conj -> acc *. conj_sel stats binds step conj)
    1.0
    (step.Ir.key_filters @ step.Ir.filters)

(* Entries matched per index probe, as a fraction of the index. [env]
   supplies concrete outer-collection rows, so bounds like the Fig. 9
   plan's [lft.min]/[lft.max] and [rgt.node] evaluate against the
   histograms instead of the magic default fractions. *)
let access_sel ?env stats binds (step : Ir.step) =
  match step.Ir.access with
  | Ir.Seq_scan | Ir.Mem_probe _ -> 1.0
  | Ir.Index_scan { index; eq; lo; hi; _ } ->
      let icols = Relation.Table.Index.columns index in
      let sel = ref 1.0 in
      List.iteri
        (fun i e ->
          let h = hist_for stats icols.(i) in
          let s =
            match (h, value_of ?env binds e) with
            | Some h, Some v -> eq_frac h v
            | Some h, None -> distinct_frac h
            | None, _ -> default_eq
          in
          sel := !sel *. s)
        eq;
      let rc = List.length eq in
      if (lo <> None || hi <> None) && rc < Array.length icols then begin
        let h = hist_for stats icols.(rc) in
        let lo_frac =
          match (lo, h) with
          | None, _ -> 0.0
          | Some { Ir.v; inclusive }, Some h -> (
              match value_of ?env binds v with
              | Some v -> if inclusive then frac_lt h v else frac_le h v
              | None -> default_range)
          | Some _, None -> default_range
        in
        let hi_frac =
          match (hi, h) with
          | None, _ -> 1.0
          | Some { Ir.v; inclusive }, Some h -> (
              match value_of ?env binds v with
              | Some v -> if inclusive then frac_le h v else frac_lt h v
              | None -> 1.0 -. default_range)
          | Some _, None -> 1.0 -. default_range
        in
        sel := !sel *. clamp01 (hi_frac -. lo_frac)
      end;
      !sel

let index_geometry index =
  let tree = Relation.Table.Index.tree index in
  let bs = Storage.Buffer_pool.block_size (Btree.pool tree) in
  let kw = Btree.key_width tree in
  let leaf_cap = max 1 ((bs - 16) / (8 * kw)) in
  let entries = max 1 (Btree.count tree) in
  let depth =
    Float.max 1.0
      (log (float_of_int (max 2 entries)) /. log (float_of_int leaf_cap))
  in
  (float_of_int entries, float_of_int leaf_cap, depth)

type step_est = {
  est_out : float;  (* rows emitted by this step across the whole run *)
  est_io : float;   (* physical I/O attributed to this step *)
}

type branch_est = {
  step_ests : step_est list;
  out_rows : float;
  total_io : float;
}

(* Estimate all branches of one statement together: the statement-wide
   [charged] set implements descent-once costing across branches that
   probe the same index. *)
let branches ctx (brs : Ir.branch list) =
  let binds = ctx.Ir.binds in
  let stats_cache : (string, table_stats) Hashtbl.t = Hashtbl.create 4 in
  let stats_for tbl =
    let name = Relation.Table.name tbl in
    match Hashtbl.find_opt stats_cache name with
    | Some st -> st
    | None ->
        let st = analyze_table tbl in
        Hashtbl.add stats_cache name st;
        st
  in
  let charged : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* Enumerating the cross product of outer transient collections is
     bounded: past this many concrete environments the estimator falls
     back to the default selectivity fractions. *)
  let max_envs = 1024 in
  List.map
    (fun (branch : Ir.branch) ->
      let loop = ref 1.0 in
      let total = ref 0.0 in
      (* [Some envs]: the concrete outer rows this step will be probed
         under (collections have known contents at plan time); [None]
         once a base-table step or the cap makes them unenumerable. *)
      let envs = ref (Some [ [] ]) in
      let step_ests =
        List.map
          (fun (step : Ir.step) ->
            let per_rows, io, stats =
              match (step.Ir.source, step.Ir.access) with
              | Ir.Collection name, _ ->
                  let coll = ctx.Ir.collection name in
                  let n =
                    match coll with
                    | Some (_, rows) -> List.length rows
                    | None -> 0
                  in
                  (match (!envs, coll) with
                  | Some es, Some (cols, rows)
                    when n > 0 && List.length es * n <= max_envs ->
                      envs :=
                        Some
                          (List.concat_map
                             (fun e ->
                               List.map
                                 (fun r ->
                                   e @ [ (step.Ir.alias, (cols, r)) ])
                                 rows)
                             es)
                  | _ -> envs := None);
                  (float_of_int n, 0.0, None)
              | Ir.Mem h, access ->
                  (* RAM-resident probe: no physical I/O by construction;
                     the planner already sized the result when it chose
                     the tier. *)
                  let rows =
                    match access with
                    | Ir.Mem_probe { est_rows; _ } -> est_rows
                    | Ir.Seq_scan | Ir.Index_scan _ -> h.Ir.mem_rows
                  in
                  envs := None;
                  (float_of_int rows, 0.0, None)
              | Ir.Base _, Ir.Mem_probe _ ->
                  Ir.fail "memory probe against a base table"
              | Ir.Base tbl, Ir.Seq_scan ->
                  let st = stats_for tbl in
                  envs := None;
                  ( float_of_int st.t_rows,
                    !loop *. float_of_int st.t_pages,
                    Some st )
              | Ir.Base tbl, Ir.Index_scan { index; covering; eq; _ } ->
                  let st = stats_for tbl in
                  let entries, leaf_cap, depth = index_geometry index in
                  let iname = Relation.Table.Index.name index in
                  let descent =
                    if Hashtbl.mem charged iname then 0.0
                    else begin
                      Hashtbl.add charged iname ();
                      depth
                    end
                  in
                  let probe_io m = Float.max 1.0 (m /. leaf_cap) in
                  (* Rowid fetches hit distinct heap pages, not one page
                     per row: repeated fetches of a page are buffer-pool
                     hits within the statement. Blend the two extremes
                     by the scanned key column's heap correlation —
                     consecutive pages when the column tracks insertion
                     order (the Poisson-arrival distributions D3/D4), a
                     Cardenas random scatter when it does not. *)
                  let fetch_io total_rows =
                    if covering || total_rows <= 0.0 then 0.0
                    else begin
                      let p = Float.max 1.0 (float_of_int st.t_pages) in
                      let random =
                        p *. (1.0 -. ((1.0 -. (1.0 /. p)) ** total_rows))
                      in
                      let rows_per_page =
                        Float.max 1.0 (float_of_int st.t_rows /. p)
                      in
                      let clustered =
                        Float.min random ((total_rows /. rows_per_page) +. 1.0)
                      in
                      let icols = Relation.Table.Index.columns index in
                      let rc = min (List.length eq) (Array.length icols - 1) in
                      let c2 =
                        match hist_for (Some st) icols.(rc) with
                        | Some h -> h.h_corr *. h.h_corr
                        | None -> 0.0
                      in
                      (c2 *. clustered) +. ((1.0 -. c2) *. random)
                    end
                  in
                  let est =
                    match !envs with
                    | Some (_ :: _ as es) ->
                        (* average the per-probe span over the actual
                           outer rows *)
                        let k = float_of_int (List.length es) in
                        let ms =
                          List.map
                            (fun env ->
                              entries *. access_sel ~env (Some st) binds step)
                            es
                        in
                        let sum f = List.fold_left (fun a m -> a +. f m) 0.0 ms in
                        let m_avg = sum (fun m -> m) /. k in
                        ( m_avg,
                          descent
                          +. (!loop *. (sum probe_io /. k))
                          +. fetch_io (!loop *. m_avg) )
                    | _ ->
                        let m = entries *. access_sel (Some st) binds step in
                        ( m,
                          descent +. (!loop *. probe_io m)
                          +. fetch_io (!loop *. m) )
                  in
                  envs := None;
                  (fst est, snd est, Some st)
            in
            let out = !loop *. per_rows *. filters_sel stats binds step in
            total := !total +. io;
            loop := out;
            { est_out = out; est_io = io })
          branch.Ir.steps
      in
      { step_ests; out_rows = !loop; total_io = !total })
    brs

(* Outer-collection cardinality of a branch: the RI-tree node count
   when the plan is the paper's Fig. 9 shape. *)
let node_count ctx (branch : Ir.branch) =
  List.fold_left
    (fun acc (step : Ir.step) ->
      match step.Ir.source with
      | Ir.Collection name -> (
          match ctx.Ir.collection name with
          | Some (_, rows) -> acc + List.length rows
          | None -> acc)
      | Ir.Base _ | Ir.Mem _ -> acc)
    0 branch.Ir.steps
