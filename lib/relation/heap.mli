(** Slotted-page heap files for fixed-width integer rows.

    Base-table storage of the relational substrate. Each page carries an
    occupancy bitmap and a chain pointer; rows are identified by a stable
    rowid derived from their page and slot. Deleted slots go on a free
    list and are refilled by subsequent insertions, so heavily updated
    tables do not grow without bound. *)

type t

type rowid = int
(** Stable identifier: [page_id * slots_per_page + slot]. Slots freed by
    deletions are reused by later insertions. *)

val create : Storage.Buffer_pool.t -> row_width:int -> t
(** A heap for rows of [row_width] integers.
    @raise Invalid_argument if a page cannot hold at least 4 rows. *)

val open_existing : Storage.Buffer_pool.t -> meta_page:int -> t
(** Re-open a heap persisted on the pool's device from its meta page;
    scans the page chain once to rebuild the in-memory free-slot list.
    @raise Invalid_argument if the page is not a heap meta page. *)

val meta_page : t -> int

val row_width : t -> int
val count : t -> int
val page_count : t -> int
val slots_per_page : t -> int

val insert : t -> int array -> rowid
(** Insert a row, filling a freed slot if one exists, otherwise appending
    to the last page.
    @raise Invalid_argument on wrong row width. *)

val update : t -> rowid -> int array -> bool
(** Overwrite the row in place; [false] if the slot is empty. *)

val fetch : t -> rowid -> int array option
(** [None] if the slot is empty or the rowid is out of range. *)

val delete : t -> rowid -> bool
(** Clear the slot; [false] if it was already empty. *)

(** {2 Scanning} *)

type cursor
(** External cursor over the heap in page order. Only the page under the
    cursor is materialized (and its pin is released before rows are
    handed out), so a scan never holds more than one page of rows
    whatever the table size. Rows inserted or deleted behind the cursor
    during the scan may or may not be seen. *)

val cursor : t -> cursor
val next : cursor -> (rowid * int array) option

val iter : t -> (rowid -> int array -> unit) -> unit
(** Full scan in page order (a {!cursor} drained internally). *)

val fold : t -> ('a -> rowid -> int array -> 'a) -> 'a -> 'a

val check_invariants : t -> unit
(** Verify the page chain, per-page occupancy counts and the global row
    count. @raise Failure on violation. *)
