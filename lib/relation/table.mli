(** Relational tables: a heap file plus any number of composite B+-tree
    indexes, with automatic index maintenance.

    This is the abstraction the RI-tree paper builds on: "a given
    interval relation is prepared for the RI-tree by adding a single
    attribute [node] and two indexes" (Fig. 2). Index entries are the
    projected columns with the rowid appended, so entries are unique and
    every index is covering for its own columns. *)

type t

module Index : sig
  type t

  val name : t -> string
  val columns : t -> string array
  (** Column names, in key order. *)

  val tree : t -> Btree.t
  val entry_count : t -> int

  val key_of_row : t -> Heap.rowid -> int array -> int array
  (** The B+-tree key for a row: projected columns plus rowid. *)
end

val create :
  ?on_new_index:(Index.t -> unit) ->
  Storage.Buffer_pool.t ->
  name:string ->
  columns:string list ->
  t
(** @raise Invalid_argument on duplicate or empty column names.
    [on_new_index] is invoked for every index subsequently created on the
    table (the durable catalog uses it to register indexes in the system
    dictionary). *)

val open_existing :
  Storage.Buffer_pool.t ->
  name:string ->
  columns:string list ->
  heap_meta:int ->
  indexes:(string * string list * int) list ->
  t
(** Reconstruct a table handle from persisted storage: the heap's meta
    page and, per index, [(name, key columns, btree meta page)]. Used by
    {!Catalog.reopen} after crash recovery. *)

val name : t -> string
val columns : t -> string array
val column_index : t -> string -> int
(** @raise Not_found for an unknown column. *)

val heap : t -> Heap.t
val row_count : t -> int

val version : t -> int
(** Monotone mutation counter: bumped by every {!insert},
    {!delete_row}, {!update_row} and (per victim) {!delete_where}.
    Derived in-memory structures — the hot-tier HINT replicas in
    particular — record the version they were built at and treat any
    difference as staleness. Resets to 0 when a handle is re-opened, so
    validity checks must also be keyed on the handle generation. *)

val create_index :
  ?bulk:bool -> t -> name:string -> columns:string list -> Index.t
(** Build a new index (over any rows already present). With [~bulk:true]
    the keys of the existing rows are sorted and the B+-tree is
    bulk-loaded bottom-up — sequential, tightly packed pages instead of
    random insertions (the "good clustering properties of the bulk
    loaded indexes" the paper attributes its competitors' response times
    to).
    @raise Invalid_argument on an unknown column or duplicate index
    name. *)

val indexes : t -> Index.t list
val find_index : t -> string -> Index.t option
val index_on : t -> string list -> Index.t option
(** Find an index whose column list starts with exactly these columns. *)

val insert : t -> int array -> Heap.rowid
(** Insert a row, maintaining all indexes. *)

val fetch : t -> Heap.rowid -> int array option

val delete_row : t -> Heap.rowid -> bool
(** Delete by rowid, maintaining all indexes. *)

val update_row : t -> Heap.rowid -> int array -> bool
(** Overwrite a row in place, maintaining all indexes; [false] if the
    rowid is dangling. *)

val delete_where : t -> (int array -> bool) -> int
(** Delete all rows satisfying the predicate (via full scan); returns the
    number deleted. *)

val iter : t -> (Heap.rowid -> int array -> unit) -> unit

val check_invariants : t -> unit
(** Heap and B+-tree invariants, plus heap/index consistency: every index
    has exactly one entry per row and vice versa. *)
