(** A database instance: one block device, one buffer pool, a table
    dictionary, and the physical-I/O counters the experiments report.

    With [~durable:true] the instance also gets what the paper says a
    real RDBMS contributes for free — recovery. A write-ahead journal
    records every page write; {!commit} makes the current state durable;
    {!simulate_crash} throws away the buffer pool, runs journal recovery
    on the device, and returns a {e fresh} catalog handle whose tables
    are re-opened from the on-device system dictionary. Anything
    committed survives; everything else vanishes atomically. *)

type t

val create :
  ?device:Storage.Block_device.t ->
  ?durable:bool ->
  ?checksums:bool ->
  ?block_size:int ->
  ?cache_blocks:int ->
  unit ->
  t
(** Defaults match the paper's setup: 2 KB blocks, 200-block cache,
    [durable:false] (no journaling overhead in benchmarks).
    [?device] substitutes a pre-built device — how the fault-injection
    harness slips a {!Storage.Faulty_device} underneath a catalog
    ([block_size] is then ignored). [?checksums] defaults to [durable]:
    recovery without corruption detection is half a guarantee. *)

val durable : t -> bool
val checksums : t -> bool
val pool : t -> Storage.Buffer_pool.t
val device : t -> Storage.Block_device.t
val journal : t -> Storage.Journal.t option

val create_table : t -> name:string -> columns:string list -> Table.t
(** In a durable catalog the table, its columns, and every index later
    created on it are registered in the on-device system dictionary.
    @raise Invalid_argument if the table already exists (or, in a durable
    catalog, if a name exceeds {!Codec.max_name_length}). *)

val find_table : t -> string -> Table.t option

val table : t -> string -> Table.t
(** @raise Not_found *)

val tables : t -> Table.t list

val io_stats : t -> Storage.Block_device.Stats.t
(** Physical reads/writes since the last {!reset_io_stats}. *)

val reset_io_stats : t -> unit
(** Zero the device counters. The buffer-pool contents are untouched, so
    a measured query run sees whatever cache state preceding operations
    left behind — the same warm-cache regime the paper measures. *)

val flush : t -> unit
(** Write back all dirty cached pages. *)

val drop_cache : t -> unit
(** Flush and empty the buffer pool: the next accesses run against a cold
    cache. Used by benchmarks that measure cold-start behaviour. *)

(** {2 Durability} *)

val commit : t -> unit
(** Force-log all dirty pages and a commit marker. On a non-durable
    catalog this is {!flush}. *)

val commit_request : t -> unit
(** Stage a commit for group commit; the dirty-page images, the marker
    and the log force are all deferred to the batch's {!commit_force}
    (see {!Storage.Buffer_pool.commit_request}). *)

val commit_force : t -> int
(** Emit one commit marker and one log force covering every staged
    request; returns the batch size (0 when nothing is staged). *)

val pending_commits : t -> int
(** Commit requests staged since the last {!commit_force}. *)

val checkpoint : t -> unit
(** Commit, write everything back, and truncate the journal. *)

val journal_stats : t -> (int * int) option
(** [(records, payload bytes)] currently in the journal, when durable. *)

val simulate_crash : ?force:bool -> t -> t
(** Durable catalogs only: drop the buffer pool without writing anything
    back, run recovery on the device, and re-open every table and index
    from the system dictionary. The returned catalog is the surviving
    database; the old handle (and any [Table.t] obtained from it) must
    not be used again. [~force:true] ignores pinned pages — for
    recovering after a {!Storage.Block_device.Crash} that unwound
    through structures still holding pins.
    @raise Failure on a non-durable catalog. *)

val reopen : t -> t
(** Like the recovery half of {!simulate_crash}, but after a clean
    {!checkpoint}: rebuild all handles from persistent storage. *)

val reload : t -> t
(** Rebuild all handles after the device was rewritten {e underneath}
    this catalog — the replica apply path. Drops every cached frame
    without write-back (cached pages are stale, and a write-back would
    clobber the newer applied images), re-opens the dictionary from the
    device, and carries the degraded (read-only) flag over to the fresh
    handle. Durable catalogs only. *)

(** {2 Corruption handling} *)

val degraded : t -> bool

val degraded_reason : t -> string option
(** [Some reason] once corruption was detected: the catalog is in
    read-only degraded mode — reads keep serving (pages still verify on
    fault-in), mutations must be rejected by the layer above. *)

val degrade : t -> string -> unit
(** Flip into degraded mode (idempotent; the first reason wins). *)

val scrub : ?repair:bool -> t -> Storage.Scrub.report
(** Flush the pool, then walk every device block verifying checksum
    trailers; with [~repair:true], restore corrupt blocks from valid
    journal images. Checksummed catalogs only.
    @raise Failure if the catalog has no checksums. *)
