type row = int array
type t = unit -> row option

let empty () = None

let of_list rows =
  let rest = ref rows in
  fun () ->
    match !rest with
    | [] -> None
    | r :: tl ->
        rest := tl;
        Some r

let of_array rows =
  let i = ref 0 in
  fun () ->
    if !i >= Array.length rows then None
    else begin
      let r = rows.(!i) in
      incr i;
      Some r
    end

let map f it () = Option.map f (it ())

let filter p it =
  let rec pull () =
    match it () with
    | None -> None
    | Some r when p r -> Some r
    | Some _ -> pull ()
  in
  pull

let union_all its =
  let rest = ref its in
  let rec pull () =
    match !rest with
    | [] -> None
    | it :: tl -> (
        match it () with
        | Some r -> Some r
        | None ->
            rest := tl;
            pull ())
  in
  pull

let nested_loop ~outer ~inner =
  let current = ref empty in
  let rec pull () =
    match !current () with
    | Some r -> Some r
    | None -> (
        match outer () with
        | None -> None
        | Some o ->
            current := inner o;
            pull ())
  in
  pull

let index_range index ~lo ~hi =
  let cursor = Btree.cursor (Table.Index.tree index) ~lo ~hi in
  fun () -> Btree.next cursor

let index_probe index =
  let tree = Table.Index.tree index in
  let cursor = ref None in
  fun ~lo ~hi ->
    let c =
      match !cursor with
      | Some c ->
          Btree.reset c ~lo ~hi;
          c
      | None ->
          let c = Btree.cursor tree ~lo ~hi in
          cursor := Some c;
          c
    in
    fun () -> Btree.next c

let index_prefix index ~prefix =
  let tree = Table.Index.tree index in
  index_range index ~lo:(Btree.lo_pad tree prefix)
    ~hi:(Btree.hi_pad tree prefix)

let fetch table it =
  let rec pull () =
    match it () with
    | None -> None
    | Some r -> (
        let rowid = r.(Array.length r - 1) in
        match Table.fetch table rowid with
        | Some row -> Some row
        | None -> pull ())
  in
  pull

let heap_scan table =
  (* Page-at-a-time streaming off the heap's external cursor: no rowid
     materialization, no per-row base-table re-fetch. *)
  let c = Heap.cursor (Table.heap table) in
  fun () ->
    match Heap.next c with
    | None -> None
    | Some (rid, row) ->
        let n = Array.length row in
        Some (Array.init (n + 1) (fun i -> if i < n then row.(i) else rid))

let project cols it =
  map (fun r -> Array.map (fun c -> r.(c)) cols) it

let distinct_by key it =
  let seen = Hashtbl.create 64 in
  filter
    (fun r ->
      let k = key r in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    it

let to_list it =
  let rec go acc =
    match it () with Some r -> go (r :: acc) | None -> List.rev acc
  in
  go []

let count it =
  let rec go n = match it () with Some _ -> go (n + 1) | None -> n in
  go 0

let iter f it =
  let rec go () =
    match it () with
    | Some r ->
        f r;
        go ()
    | None -> ()
  in
  go ()

let fold f acc it =
  let rec go acc =
    match it () with Some r -> go (f acc r) | None -> acc
  in
  go acc
