(* Page layout:
     bytes 2-3   slots in use high-water mark (uint16)
     bytes 4-5   occupied row count (uint16)
     bytes 8-15  next page id (-1 at the end of the chain)
     bytes 16..  occupancy bitmap, ceil(cap/8) bytes
     rows        row i at [rows_off + i * 8 * row_width]

   Meta page:
     0 magic   8 row_width   16 count   24 first_page
     32 last_page   40 page_count *)

type rowid = int

type t = {
  pool : Storage.Buffer_pool.t;
  meta_page : int;
  row_width : int;
  cap : int;        (* slots per page *)
  bitmap_size : int;
  rows_off : int;
  mutable count : int;
  mutable first_page : int;
  mutable last_page : int;
  mutable page_count : int;
  mutable free_slots : int list; (* rowids freed by deletions *)
}

let magic = 0x52494845 (* "RIHE" *)
let header = 16

let get_i64 buf off = Int64.to_int (Bytes.get_int64_be buf off)
let set_i64 buf off v = Bytes.set_int64_be buf off (Int64.of_int v)

let bit_get buf slot = Char.code (Bytes.get buf (header + (slot / 8))) land (1 lsl (slot mod 8)) <> 0

let bit_set buf slot v =
  let off = header + (slot / 8) in
  let b = Char.code (Bytes.get buf off) in
  let m = 1 lsl (slot mod 8) in
  Bytes.set buf off (Char.chr (if v then b lor m else b land lnot m))

let geometry ~block_size ~row_width =
  let fits cap = header + ((cap + 7) / 8) + (cap * 8 * row_width) <= block_size in
  let cap = ref (((block_size - header) * 8) / ((64 * row_width) + 1)) in
  while !cap > 0 && not (fits !cap) do decr cap done;
  !cap

let create pool ~row_width =
  if row_width < 1 then invalid_arg "Heap.create: row width must be positive";
  let block_size = Storage.Buffer_pool.block_size pool in
  let cap = geometry ~block_size ~row_width in
  if cap < 4 then
    invalid_arg
      (Printf.sprintf "Heap.create: block size %d holds < 4 rows of width %d"
         block_size row_width);
  let bitmap_size = (cap + 7) / 8 in
  let meta_page = Storage.Buffer_pool.alloc pool in
  let t =
    { pool; meta_page; row_width; cap; bitmap_size; rows_off = header + bitmap_size;
      count = 0; first_page = -1; last_page = -1; page_count = 0;
      free_slots = [] }
  in
  Storage.Buffer_pool.with_page pool meta_page ~dirty:true (fun buf ->
      set_i64 buf 0 magic;
      set_i64 buf 8 row_width;
      set_i64 buf 16 0;
      set_i64 buf 24 (-1);
      set_i64 buf 32 (-1);
      set_i64 buf 40 0);
  t

let sync_meta t =
  Storage.Buffer_pool.with_page t.pool t.meta_page ~dirty:true (fun buf ->
      set_i64 buf 16 t.count;
      set_i64 buf 24 t.first_page;
      set_i64 buf 32 t.last_page;
      set_i64 buf 40 t.page_count)

let row_width t = t.row_width
let count t = t.count
let page_count t = t.page_count
let slots_per_page t = t.cap
let meta_page t = t.meta_page

let open_existing pool ~meta_page =
  let fields =
    Storage.Buffer_pool.with_page pool meta_page ~dirty:false (fun buf ->
        Array.init 6 (fun i -> get_i64 buf (8 * i)))
  in
  if fields.(0) <> magic then
    invalid_arg
      (Printf.sprintf "Heap.open_existing: page %d is not a heap meta page"
         meta_page);
  let row_width = fields.(1) in
  let block_size = Storage.Buffer_pool.block_size pool in
  let cap = geometry ~block_size ~row_width in
  let t =
    { pool; meta_page; row_width; cap; bitmap_size = (cap + 7) / 8;
      rows_off = header + ((cap + 7) / 8); count = fields.(2);
      first_page = fields.(3); last_page = fields.(4);
      page_count = fields.(5); free_slots = [] }
  in
  (* One pass over the chain rebuilds the free-slot list. *)
  let rec walk page =
    if page >= 0 then begin
      let next =
        Storage.Buffer_pool.with_page pool page ~dirty:false (fun buf ->
            let hwm = Bytes.get_uint16_be buf 2 in
            for slot = hwm - 1 downto 0 do
              if not (bit_get buf slot) then
                t.free_slots <- ((page * cap) + slot) :: t.free_slots
            done;
            get_i64 buf 8)
      in
      walk next
    end
  in
  walk t.first_page;
  t

let read_row t buf slot =
  Array.init t.row_width (fun i ->
      get_i64 buf (t.rows_off + (slot * 8 * t.row_width) + (8 * i)))

let write_row t buf slot row =
  for i = 0 to t.row_width - 1 do
    set_i64 buf (t.rows_off + (slot * 8 * t.row_width) + (8 * i)) row.(i)
  done

let new_page t =
  let pid = Storage.Buffer_pool.alloc t.pool in
  Storage.Buffer_pool.with_page t.pool pid ~dirty:true (fun buf ->
      Bytes.set_uint16_be buf 2 0;
      Bytes.set_uint16_be buf 4 0;
      set_i64 buf 8 (-1));
  if t.first_page < 0 then t.first_page <- pid
  else
    Storage.Buffer_pool.with_page t.pool t.last_page ~dirty:true (fun buf ->
        set_i64 buf 8 pid);
  t.last_page <- pid;
  t.page_count <- t.page_count + 1;
  pid

let insert t row =
  if Array.length row <> t.row_width then
    invalid_arg
      (Printf.sprintf "Heap.insert: row width %d, expected %d"
         (Array.length row) t.row_width);
  match t.free_slots with
  | rowid :: rest ->
      (* Reuse a slot freed by a deletion. *)
      let page = rowid / t.cap and slot = rowid mod t.cap in
      Storage.Buffer_pool.with_page t.pool page ~dirty:true (fun buf ->
          assert (not (bit_get buf slot));
          bit_set buf slot true;
          Bytes.set_uint16_be buf 4 (Bytes.get_uint16_be buf 4 + 1);
          write_row t buf slot row);
      t.free_slots <- rest;
      t.count <- t.count + 1;
      sync_meta t;
      rowid
  | [] ->
  let page =
    if t.last_page < 0 then new_page t
    else
      let full =
        Storage.Buffer_pool.with_page t.pool t.last_page ~dirty:false
          (fun buf -> Bytes.get_uint16_be buf 2 >= t.cap)
      in
      if full then new_page t else t.last_page
  in
  let slot =
    Storage.Buffer_pool.with_page t.pool page ~dirty:true (fun buf ->
        let hwm = Bytes.get_uint16_be buf 2 in
        let occ = Bytes.get_uint16_be buf 4 in
        Bytes.set_uint16_be buf 2 (hwm + 1);
        Bytes.set_uint16_be buf 4 (occ + 1);
        bit_set buf hwm true;
        write_row t buf hwm row;
        hwm)
  in
  t.count <- t.count + 1;
  sync_meta t;
  (page * t.cap) + slot

let locate t rowid =
  let page = rowid / t.cap and slot = rowid mod t.cap in
  if rowid < 0 then None else Some (page, slot)

let fetch t rowid =
  match locate t rowid with
  | None -> None
  | Some (page, slot) -> (
      match
        Storage.Buffer_pool.with_page t.pool page ~dirty:false (fun buf ->
            if slot < Bytes.get_uint16_be buf 2 && bit_get buf slot then
              Some (read_row t buf slot)
            else None)
      with
      | exception Invalid_argument _ -> None
      | r -> r)

let delete t rowid =
  match locate t rowid with
  | None -> false
  | Some (page, slot) ->
      let removed =
        Storage.Buffer_pool.with_page t.pool page ~dirty:true (fun buf ->
            if slot < Bytes.get_uint16_be buf 2 && bit_get buf slot then begin
              bit_set buf slot false;
              Bytes.set_uint16_be buf 4 (Bytes.get_uint16_be buf 4 - 1);
              true
            end
            else false)
      in
      if removed then begin
        t.count <- t.count - 1;
        t.free_slots <- rowid :: t.free_slots;
        sync_meta t
      end;
      removed

let update t rowid row =
  if Array.length row <> t.row_width then
    invalid_arg
      (Printf.sprintf "Heap.update: row width %d, expected %d"
         (Array.length row) t.row_width);
  match locate t rowid with
  | None -> false
  | Some (page, slot) -> (
      match
        Storage.Buffer_pool.with_page t.pool page ~dirty:true (fun buf ->
            if slot < Bytes.get_uint16_be buf 2 && bit_get buf slot then begin
              write_row t buf slot row;
              true
            end
            else false)
      with
      | exception Invalid_argument _ -> false
      | r -> r)

(* External cursor: streams the heap page by page. Only the occupied
   rows of the page under the cursor are materialized (one pin per page,
   released before any row is handed out), so a scan holds O(slots per
   page) memory however large the table is. *)
type cursor = {
  h : t;
  mutable next_page : int;              (* -1 = chain exhausted *)
  mutable batch : (rowid * int array) array; (* rows of the current page *)
  mutable pos : int;
}

let cursor t = { h = t; next_page = t.first_page; batch = [||]; pos = 0 }

let load_page h page =
  Storage.Buffer_pool.with_page h.pool page ~dirty:false (fun buf ->
      let hwm = Bytes.get_uint16_be buf 2 in
      let rows = ref [] in
      for slot = hwm - 1 downto 0 do
        if bit_get buf slot then
          rows := ((page * h.cap) + slot, read_row h buf slot) :: !rows
      done;
      (Array.of_list !rows, get_i64 buf 8))

let rec next c =
  if c.pos < Array.length c.batch then begin
    let r = c.batch.(c.pos) in
    c.pos <- c.pos + 1;
    Some r
  end
  else if c.next_page < 0 then None
  else begin
    let batch, next_page = load_page c.h c.next_page in
    c.batch <- batch;
    c.pos <- 0;
    c.next_page <- next_page;
    next c
  end

let iter t f =
  let c = cursor t in
  let rec go () =
    match next c with
    | Some (rid, row) ->
        f rid row;
        go ()
    | None -> ()
  in
  go ()

let fold t f acc =
  let acc = ref acc in
  iter t (fun rid row -> acc := f !acc rid row);
  !acc

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let rec go page seen total last =
    if page < 0 then (seen, total, last)
    else
      let occ_bits, occ_field, hwm, next =
        Storage.Buffer_pool.with_page t.pool page ~dirty:false (fun buf ->
            let hwm = Bytes.get_uint16_be buf 2 in
            let occ = ref 0 in
            for slot = 0 to hwm - 1 do
              if bit_get buf slot then incr occ
            done;
            (!occ, Bytes.get_uint16_be buf 4, hwm, get_i64 buf 8))
      in
      if hwm > t.cap then fail "heap page %d exceeds capacity" page;
      if occ_bits <> occ_field then
        fail "heap page %d: bitmap %d vs occupancy field %d" page occ_bits
          occ_field;
      go next (seen + 1) (total + occ_bits) page
  in
  let pages, total, last = go t.first_page 0 0 (-1) in
  if pages <> t.page_count then
    fail "heap page count %d, recorded %d" pages t.page_count;
  if total <> t.count then fail "heap row count %d, recorded %d" total t.count;
  if last <> t.last_page then
    fail "heap last page %d, recorded %d" last t.last_page
