(** MVCC transaction manager: snapshot reads keyed by a commit LSN and
    per-session buffered write sets, validated and applied atomically at
    commit (first-committer-wins).

    Writes are buffered in the transaction until commit, so shared heap
    pages only ever contain committed (or being-committed) data — a
    group-commit journal force therefore never persists another
    session's uncommitted rows, and ROLLBACK is simply discarding one
    write set.

    Visibility: a physically present row is in a snapshot iff its
    insert LSN is <= the snapshot high; a deleted row is still served
    from the in-memory dead map while any live snapshot predates the
    deleting commit. Both sidecars are GC'd against the low-water mark
    of the live transactions.

    Single-threaded by design: the server executes one statement at a
    time, so commits and GC never interleave with a running scan. *)

(** Raised by {!commit} when a buffered delete lost the race to a
    concurrent commit. The transaction is already aborted. *)
exception Conflict of string

type mgr
type txn

(** A snapshot: every commit with LSN <= [high] is visible. Carries the
    owning transaction (if any) so its own pending writes overlay. *)
type snap = { high : int; owner : txn option }

(** Per-table visibility overlay for scans. [visible rowid] filters
    physically present rows; [extra ()] yields rows the snapshot sees
    that are not physically present (recently deleted rows plus the
    owner's pending inserts). *)
type view = {
  visible : int -> bool;
  extra : unit -> int array list;
}

type counters = {
  c_commits : int;
  c_aborts : int;
  c_conflicts : int; (* commits refused with {!Conflict} *)
  c_active : int;
  c_lsn : int;
}

val create : unit -> mgr
val counters : mgr -> counters
val committed_lsn : mgr -> int

(** LSN of the last committed mutation of the named table (0 if never
    mutated through the manager); the hot tier stamps replicas with it. *)
val table_lsn : mgr -> string -> int

(** {1 Lifecycle} *)

val begin_txn : mgr -> txn
val txn_id : txn -> int
val manager : txn -> mgr
val is_active : txn -> bool

(** Freeze the snapshot at the current committed LSN (explicit BEGIN):
    subsequent reads are stable across concurrent commits. Idempotent. *)
val pin : txn -> unit

val pinned : txn -> bool

(** The transaction's current snapshot: the pinned LSN, or (implicit
    transactions) the latest committed LSN — read-committed with
    read-your-own-writes. *)
val snapshot : txn -> snap

(** A plain reader's snapshot (no pending-write overlay). *)
val read_snapshot : mgr -> snap

val snapshot_high : snap -> int

(** The dead-row GC low-water mark: the lowest snapshot high any live
    transaction may still read at — the minimum over every pinned
    (explicit BEGIN) snapshot, however long idle, and over the
    snapshots buffered deletes were found under (commit validation
    must still find their dead records). Sidecar entries that died at
    or below it are unreachable by everyone and reclaimed; everything
    newer survives. With no live readers it equals {!committed_lsn}. *)
val low_water : mgr -> int

(** {1 Write-set buffering} *)

val has_writes : txn -> bool
val writes_on : txn -> string -> bool
val buffer_insert : txn -> table:Table.t -> tname:string -> int array -> unit

(** Buffer the delete of a physically present row. [seen] is the
    snapshot high the victim was found under; validation uses it to
    detect delete-delete races across heap-slot reuse. Raises
    [Invalid_argument] on a duplicate delete of the same row. *)
val buffer_delete :
  txn -> table:Table.t -> tname:string -> rowid:int -> row:int array ->
  seen:int -> unit

(** Buffered inserts for a table, oldest first. *)
val pending_inserts : txn -> string -> int array list

(** Rowids this transaction has pending deletes for. *)
val own_deleted_rowids : txn -> string -> int list

(** Remove and return the oldest buffered insert matching the
    predicate — deleting your own uncommitted insert never touches the
    shared heap. *)
val take_pending_insert :
  txn -> string -> (int array -> bool) -> int array option

(** Remove every buffered insert matching the predicate; returns the
    count removed. *)
val remove_pending_inserts : txn -> string -> (int array -> bool) -> int

(** {1 Visibility} *)

val rowid_visible : mgr -> snap -> string -> int -> bool

(** Deleted rows still visible to the snapshot, as (rowid, row). *)
val dead_visible : mgr -> snap -> string -> (int * int array) list

(** The scan overlay for one table; [None] when physical state already
    equals the snapshot (nothing tracked, no own writes) so the common
    case costs nothing. *)
val view : mgr -> snap -> string -> view option

(** {1 Commit / abort} *)

(** Validate and apply the write set; returns the commit LSN (the
    current LSN for an empty write set). On a lost race, aborts the
    transaction and raises {!Conflict}. The caller owns journal
    durability (force or group-commit staging) of the applied pages. *)
val commit : txn -> int

(** Discard the write set. Idempotent; never fails. *)
val abort : txn -> unit

(** Abort every live transaction and drop all sidecars — for
    crash/reopen, where the physical handles were replaced and recovery
    reinstated exactly the committed state. *)
val reset : mgr -> unit
