module Index = struct
  type t = {
    name : string;
    columns : string array;
    cols : int array; (* positions in the base row *)
    tree : Btree.t;
  }

  let name t = t.name
  let columns t = t.columns
  let tree t = t.tree
  let entry_count t = Btree.count t.tree

  let key_of_row t rowid row =
    let n = Array.length t.cols in
    Array.init (n + 1) (fun i -> if i < n then row.(t.cols.(i)) else rowid)
end

type t = {
  pool : Storage.Buffer_pool.t;
  name : string;
  columns : string array;
  heap : Heap.t;
  mutable indexes : Index.t list;
  on_new_index : Index.t -> unit;
  mutable version : int; (* bumped on every mutation, for cache validity *)
}

let validate_columns columns =
  if Array.length columns = 0 then invalid_arg "Table.create: no columns";
  Array.iteri
    (fun i c ->
      if c = "" then invalid_arg "Table.create: empty column name";
      for j = 0 to i - 1 do
        if columns.(j) = c then
          invalid_arg (Printf.sprintf "Table.create: duplicate column %s" c)
      done)
    columns

let create ?(on_new_index = fun _ -> ()) pool ~name ~columns =
  let columns = Array.of_list columns in
  validate_columns columns;
  { pool; name; columns;
    heap = Heap.create pool ~row_width:(Array.length columns); indexes = [];
    on_new_index; version = 0 }

let name t = t.name
let columns t = t.columns

let column_index t c =
  let rec go i =
    if i >= Array.length t.columns then raise Not_found
    else if t.columns.(i) = c then i
    else go (i + 1)
  in
  go 0

let heap t = t.heap
let row_count t = Heap.count t.heap

let create_index ?(bulk = false) t ~name ~columns =
  if List.exists (fun (i : Index.t) -> i.name = name) t.indexes then
    invalid_arg (Printf.sprintf "Table.create_index: duplicate index %s" name);
  let cols = Array.of_list (List.map (column_index t) columns) in
  let key_width = Array.length cols + 1 in
  let key_of rowid row =
    let n = Array.length cols in
    Array.init (n + 1) (fun i -> if i < n then row.(cols.(i)) else rowid)
  in
  let tree =
    if bulk then begin
      let keys =
        Heap.fold t.heap (fun acc rowid row -> key_of rowid row :: acc) []
      in
      let keys = List.sort Btree.compare_keys keys in
      Btree.bulk_load t.pool ~key_width (List.to_seq keys)
    end
    else begin
      let tree = Btree.create t.pool ~key_width in
      Heap.iter t.heap (fun rowid row ->
          ignore (Btree.insert tree (key_of rowid row)));
      tree
    end
  in
  let index =
    { Index.name; columns = Array.of_list (List.map (fun c -> c) columns);
      cols; tree }
  in
  t.indexes <- t.indexes @ [ index ];
  t.on_new_index index;
  index

let open_existing pool ~name ~columns ~heap_meta ~indexes =
  let columns = Array.of_list columns in
  validate_columns columns;
  let heap = Heap.open_existing pool ~meta_page:heap_meta in
  if Heap.row_width heap <> Array.length columns then
    invalid_arg "Table.open_existing: column count does not match the heap";
  let t =
    { pool; name; columns; heap; indexes = []; on_new_index = (fun _ -> ());
      version = 0 }
  in
  let col_pos c =
    let rec go i =
      if i >= Array.length columns then
        invalid_arg
          (Printf.sprintf "Table.open_existing: unknown column %s" c)
      else if columns.(i) = c then i
      else go (i + 1)
    in
    go 0
  in
  t.indexes <-
    List.map
      (fun (iname, icols, meta) ->
        { Index.name = iname; columns = Array.of_list icols;
          cols = Array.of_list (List.map col_pos icols);
          tree = Btree.open_existing pool ~meta_page:meta })
      indexes;
  t

let indexes t = t.indexes

let find_index t n =
  List.find_opt (fun (i : Index.t) -> i.name = n) t.indexes

let index_on t cols =
  let cols = Array.of_list cols in
  List.find_opt
    (fun (i : Index.t) ->
      Array.length i.columns >= Array.length cols
      && Array.for_all2 ( = ) (Array.sub i.columns 0 (Array.length cols)) cols)
    t.indexes

let version t = t.version

let insert t row =
  t.version <- t.version + 1;
  let rowid = Heap.insert t.heap row in
  List.iter
    (fun (i : Index.t) ->
      ignore (Btree.insert i.tree (Index.key_of_row i rowid row)))
    t.indexes;
  rowid

let fetch t rowid = Heap.fetch t.heap rowid

let delete_row t rowid =
  match Heap.fetch t.heap rowid with
  | None -> false
  | Some row ->
      t.version <- t.version + 1;
      ignore (Heap.delete t.heap rowid);
      List.iter
        (fun (i : Index.t) ->
          ignore (Btree.delete i.tree (Index.key_of_row i rowid row)))
        t.indexes;
      true

let update_row t rowid row =
  match Heap.fetch t.heap rowid with
  | None -> false
  | Some old_row ->
      t.version <- t.version + 1;
      ignore (Heap.update t.heap rowid row);
      List.iter
        (fun (i : Index.t) ->
          let old_key = Index.key_of_row i rowid old_row in
          let new_key = Index.key_of_row i rowid row in
          if Btree.compare_keys old_key new_key <> 0 then begin
            ignore (Btree.delete i.tree old_key);
            ignore (Btree.insert i.tree new_key)
          end)
        t.indexes;
      true

let delete_where t pred =
  let victims =
    Heap.fold t.heap
      (fun acc rowid row -> if pred row then rowid :: acc else acc)
      []
  in
  List.iter (fun rid -> ignore (delete_row t rid)) victims;
  List.length victims

let iter t f = Heap.iter t.heap f

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  Heap.check_invariants t.heap;
  List.iter
    (fun (i : Index.t) ->
      Btree.check_invariants ~occupancy:false i.tree;
      if Btree.count i.tree <> Heap.count t.heap then
        fail "index %s has %d entries for %d rows" i.name
          (Btree.count i.tree) (Heap.count t.heap);
      Heap.iter t.heap (fun rowid row ->
          if not (Btree.mem i.tree (Index.key_of_row i rowid row)) then
            fail "index %s is missing the entry for rowid %d" i.name rowid))
    t.indexes
