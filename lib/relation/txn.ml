(* MVCC transaction manager: per-session buffered write sets, snapshot
   visibility keyed by a commit LSN, and optimistic (first-committer-
   wins) validation at commit.

   Writes are *buffered*, not applied: a transaction's inserts and
   deletes live in its private write set until commit, so the shared
   heap pages only ever hold committed data — crucial because the
   journal images every dirty page at any commit force, and a
   direct-write scheme would let one session's group-commit force
   persist another session's uncommitted rows.

   Visibility sidecars per table:
   - [xmin]: rowid -> commit LSN of the insert that created the row.
     Absent means "born before tracking" (LSN 0): visible to every
     snapshot. Replaced in place when a freed slot is reused.
   - [deads]: recently deleted rows, kept so snapshots older than the
     deleting commit still see them, and so commit validation can
     detect a delete-delete race even after the heap slot was reused
     (the ABA case: same content, different row).

   Both sidecars are garbage-collected against the low-water mark of
   every live snapshot, so they stay bounded by the churn concurrent
   with the oldest open transaction. The engine is single-threaded (one
   select loop), so commit/GC never race a statement mid-scan. *)

exception Conflict of string

let conflict fmt = Printf.ksprintf (fun s -> raise (Conflict s)) fmt

type dead = { dead_row : int array; born : int; died : int }

type vtable = {
  xmin : (int, int) Hashtbl.t; (* rowid -> commit LSN of the insert *)
  mutable deads : (int * dead) list; (* (rowid, record), newest first *)
  mutable last_lsn : int; (* LSN of the last committed mutation *)
}

type state = Active | Committed | Aborted

type write =
  | W_insert of { table : Table.t; tname : string; row : int array }
  | W_delete of {
      table : Table.t;
      tname : string;
      rowid : int;
      row : int array; (* content at buffer time, for validation *)
      seen : int; (* snapshot high the victim was found under *)
    }

type mgr = {
  mutable committed_lsn : int;
  mutable next_txn : int;
  vtables : (string, vtable) Hashtbl.t;
  mutable live : txn list;
  mutable commits : int;
  mutable aborts : int;
  mutable conflicts : int;
}

and txn = {
  id : int;
  mgr : mgr;
  mutable pinned : int option; (* explicit BEGIN: frozen snapshot high *)
  mutable writes : write list; (* newest first *)
  mutable state : state;
}

type snap = { high : int; owner : txn option }

type view = {
  visible : int -> bool; (* is this physical rowid in the snapshot? *)
  extra : unit -> int array list; (* visible rows not physically present *)
}

type counters = {
  c_commits : int;
  c_aborts : int;
  c_conflicts : int;
  c_active : int;
  c_lsn : int;
}

let create () =
  { committed_lsn = 0; next_txn = 0; vtables = Hashtbl.create 8; live = [];
    commits = 0; aborts = 0; conflicts = 0 }

let counters m =
  { c_commits = m.commits; c_aborts = m.aborts; c_conflicts = m.conflicts;
    c_active = List.length m.live; c_lsn = m.committed_lsn }

let committed_lsn m = m.committed_lsn

let vtable_for m tname =
  match Hashtbl.find_opt m.vtables tname with
  | Some v -> v
  | None ->
      let v = { xmin = Hashtbl.create 64; deads = []; last_lsn = 0 } in
      Hashtbl.replace m.vtables tname v;
      v

let table_lsn m tname =
  match Hashtbl.find_opt m.vtables tname with
  | None -> 0
  | Some v -> v.last_lsn

(* ---------------- transaction lifecycle ---------------- *)

let begin_txn m =
  m.next_txn <- m.next_txn + 1;
  let t = { id = m.next_txn; mgr = m; pinned = None; writes = [];
            state = Active } in
  m.live <- t :: m.live;
  t

let txn_id t = t.id
let manager t = t.mgr
let is_active t = t.state = Active
let pinned t = t.pinned <> None

let pin t =
  if t.state <> Active then invalid_arg "Txn.pin: transaction is not active";
  if t.pinned = None then t.pinned <- Some t.mgr.committed_lsn

let snapshot t =
  { high = (match t.pinned with Some h -> h | None -> t.mgr.committed_lsn);
    owner = Some t }

let read_snapshot m = { high = m.committed_lsn; owner = None }
let snapshot_high s = s.high

(* ---------------- write-set buffering ---------------- *)

let active_guard t op =
  if t.state <> Active then
    invalid_arg (Printf.sprintf "Txn.%s: transaction is not active" op)

let has_writes t = t.writes <> []

let writes_on t tname =
  List.exists
    (function
      | W_insert w -> w.tname = tname
      | W_delete w -> w.tname = tname)
    t.writes

let buffer_insert t ~table ~tname row =
  active_guard t "buffer_insert";
  t.writes <- W_insert { table; tname; row } :: t.writes

let buffer_delete t ~table ~tname ~rowid ~row ~seen =
  active_guard t "buffer_delete";
  (* Generation-aware double-delete check, mirroring [own_delete]: a
     buffered delete refers to the occupant it was found under
     ([born <= seen]). Once that victim died and a concurrent commit
     reused the slot, the occupant is a DIFFERENT row — deleting it is
     legitimate, and the stale buffered delete surfaces as a typed
     Conflict at commit validation (its dead record is pinned by
     [low_water] until then). *)
  let born =
    match Hashtbl.find_opt t.mgr.vtables tname with
    | None -> 0
    | Some v -> (
        match Hashtbl.find_opt v.xmin rowid with Some l -> l | None -> 0)
  in
  if
    List.exists
      (function
        | W_delete w -> w.tname = tname && w.rowid = rowid && born <= w.seen
        | W_insert _ -> false)
      t.writes
  then invalid_arg "Txn.buffer_delete: row already deleted by this transaction";
  t.writes <- W_delete { table; tname; rowid; row; seen } :: t.writes

(* Pending inserts in chronological (buffer) order. *)
let pending_inserts t tname =
  List.fold_left
    (fun acc w ->
      match w with
      | W_insert { tname = n; row; _ } when n = tname -> row :: acc
      | _ -> acc)
    [] t.writes

let own_deleted_rowids t tname =
  List.filter_map
    (function
      | W_delete { tname = n; rowid; _ } when n = tname -> Some rowid
      | _ -> None)
    t.writes

(* Remove the oldest buffered insert matching [f]; delete-your-own-
   insert never reaches the shared heap at all. *)
let take_pending_insert t tname f =
  active_guard t "take_pending_insert";
  let taken = ref None in
  let keep =
    List.fold_left
      (fun acc w ->
        match w with
        | W_insert { tname = n; row; _ }
          when n = tname && f row ->
            (* chronological fold over the reversed list: overwrite so
               the OLDEST match wins, and keep everything else *)
            (match !taken with
            | None ->
                taken := Some row;
                acc
            | Some _ -> w :: acc)
        | w -> w :: acc)
      []
      (List.rev t.writes)
  in
  match !taken with
  | None -> None
  | Some row ->
      t.writes <- keep;
      Some row

(* Remove every buffered insert matching [f]; returns how many. *)
let remove_pending_inserts t tname f =
  active_guard t "remove_pending_inserts";
  let removed = ref 0 in
  t.writes <-
    List.filter
      (function
        | W_insert { tname = n; row; _ } when n = tname && f row ->
            incr removed;
            false
        | _ -> true)
      t.writes;
  !removed

(* ---------------- visibility ---------------- *)

(* Does this snapshot's own transaction have a pending delete of the
   row occupying [rowid]? [born] is the occupant's insert LSN: a
   buffered delete only refers to the occupant it was found under
   ([born <= seen]) — after a concurrent commit frees the slot and a
   later insert reuses it, the new occupant ([born > seen]) is a
   different row and must NOT be hidden. The stale delete itself is
   caught at commit validation. *)
let own_delete snap tname rowid ~born =
  match snap.owner with
  | Some t when t.state = Active ->
      List.exists
        (function
          | W_delete { tname = n; rowid = r; seen; _ } ->
              n = tname && r = rowid && born <= seen
          | W_insert _ -> false)
        t.writes
  | _ -> false

(* Is the physically present row at [rowid] part of this snapshot? *)
let rowid_visible m snap tname rowid =
  let born =
    match Hashtbl.find_opt m.vtables tname with
    | None -> 0
    | Some v -> (
        match Hashtbl.find_opt v.xmin rowid with Some lsn -> lsn | None -> 0)
  in
  born <= snap.high && not (own_delete snap tname rowid ~born)

(* Deleted rows the snapshot can still see (born within, died after),
   excluding rows this transaction itself has a pending delete for. *)
let dead_visible m snap tname =
  match Hashtbl.find_opt m.vtables tname with
  | None -> []
  | Some v ->
      List.filter_map
        (fun (rowid, d) ->
          if
            d.born <= snap.high && d.died > snap.high
            && not (own_delete snap tname rowid ~born:d.born)
          then Some (rowid, d.dead_row)
          else None)
        v.deads

(* The executor's overlay for one table: [None] means "physical state
   is exactly the snapshot" (the overwhelmingly common case), so scans
   pay nothing. *)
let view m snap tname =
  let vt = Hashtbl.find_opt m.vtables tname in
  let own_writes =
    match snap.owner with
    | Some t when t.state = Active -> writes_on t tname
    | _ -> false
  in
  let tracked =
    match vt with
    | None -> false
    | Some v -> v.deads <> [] || Hashtbl.length v.xmin > 0
  in
  if (not tracked) && not own_writes then None
  else
    Some
      { visible = (fun rowid -> rowid_visible m snap tname rowid);
        extra =
          (fun () ->
            let deads = List.map snd (dead_visible m snap tname) in
            let own =
              match snap.owner with
              | Some t when t.state = Active -> pending_inserts t tname
              | _ -> []
            in
            deads @ own) }

(* ---------------- commit / abort ---------------- *)

let unregister t = t.mgr.live <- List.filter (fun x -> x != t) t.mgr.live

(* The lowest snapshot high any live transaction may still read at:
   pinned snapshots, and the snapshots buffered deletes were found
   under (their validation must still find dead records). Unpinned
   transactions take fresh snapshots per statement, so they never look
   below the current committed LSN. *)
let low_water m =
  List.fold_left
    (fun acc t ->
      let acc = match t.pinned with Some h -> min acc h | None -> acc in
      List.fold_left
        (fun acc w ->
          match w with
          | W_delete { seen; _ } -> min acc seen
          | W_insert _ -> acc)
        acc t.writes)
    m.committed_lsn m.live

let gc m =
  let low = low_water m in
  Hashtbl.iter
    (fun _ vt ->
      if List.exists (fun (_, d) -> d.died <= low) vt.deads then
        vt.deads <- List.filter (fun (_, d) -> d.died > low) vt.deads;
      let drop =
        Hashtbl.fold
          (fun rowid lsn acc -> if lsn <= low then rowid :: acc else acc)
          vt.xmin []
      in
      List.iter (Hashtbl.remove vt.xmin) drop)
    m.vtables

let finish_aborted t =
  t.state <- Aborted;
  t.writes <- [];
  t.pinned <- None;
  unregister t;
  t.mgr.aborts <- t.mgr.aborts + 1;
  gc t.mgr

let abort t = if t.state = Active then finish_aborted t

(* First-committer-wins: every buffered delete must still target the
   row it saw. Three ways to lose the race, all typed [Conflict]:
   - a concurrent commit deleted the row (slot now empty);
   - a concurrent commit updated it (delete + reinsert elsewhere, or
     slot reused with different content);
   - the slot holds identical content but the dead map proves the row
     died after we saw it (reuse ABA). *)
let validate m writes =
  List.iter
    (function
      | W_insert _ -> ()
      | W_delete { table; tname; rowid; row; seen } -> (
          (match Hashtbl.find_opt m.vtables tname with
          | None -> ()
          | Some v ->
              if
                List.exists
                  (fun (r, d) -> r = rowid && d.died > seen)
                  v.deads
              then
                conflict
                  "row %d of %s was deleted by a concurrent transaction"
                  rowid tname);
          match Table.fetch table rowid with
          | Some r when r = row -> ()
          | Some _ ->
              conflict "row %d of %s was updated by a concurrent transaction"
                rowid tname
          | None ->
              conflict "row %d of %s was deleted by a concurrent transaction"
                rowid tname))
    writes

let commit t =
  active_guard t "commit";
  let m = t.mgr in
  match List.rev t.writes with
  | [] ->
      t.state <- Committed;
      t.pinned <- None;
      unregister t;
      m.commits <- m.commits + 1;
      gc m;
      m.committed_lsn
  | writes ->
      (try validate m writes
       with Conflict _ as e ->
         m.conflicts <- m.conflicts + 1;
         finish_aborted t;
         raise e);
      let lsn = m.committed_lsn + 1 in
      List.iter
        (function
          | W_insert { table; tname; row } ->
              let rowid = Table.insert table row in
              let vt = vtable_for m tname in
              Hashtbl.replace vt.xmin rowid lsn;
              vt.last_lsn <- lsn
          | W_delete { table; tname; rowid; row; _ } ->
              let vt = vtable_for m tname in
              let born =
                match Hashtbl.find_opt vt.xmin rowid with
                | Some l -> l
                | None -> 0
              in
              vt.deads <- (rowid, { dead_row = row; born; died = lsn })
                          :: vt.deads;
              Hashtbl.remove vt.xmin rowid;
              ignore (Table.delete_row table rowid);
              vt.last_lsn <- lsn)
        writes;
      m.committed_lsn <- lsn;
      t.state <- Committed;
      t.writes <- [];
      t.pinned <- None;
      unregister t;
      m.commits <- m.commits + 1;
      gc m;
      lsn

(* After a crash/reopen the physical tables were replaced and recovery
   resurrected exactly the committed state: every sidecar entry refers
   to dead handles, and every in-flight transaction is gone. *)
let reset m =
  List.iter
    (fun t ->
      t.state <- Aborted;
      t.writes <- [];
      t.pinned <- None;
      m.aborts <- m.aborts + 1)
    m.live;
  m.live <- [];
  Hashtbl.reset m.vtables
