(** Pull-based query operators (volcano-style iterators).

    The execution plan of the paper's Fig. 10 —

    {v
    SELECT STATEMENT
      UNION-ALL
        NESTED LOOPS
          COLLECTION ITERATOR
          INDEX RANGE SCAN UPPER_INDEX
        NESTED LOOPS
          COLLECTION ITERATOR
          INDEX RANGE SCAN LOWER_INDEX
    v}

    — is assembled from exactly these operators: {!of_list} is the
    collection iterator over a transient node table, {!index_range}
    is the index range scan, {!nested_loop} and {!union_all} are the
    joins. *)

type row = int array

type t = unit -> row option
(** Pulling [None] means exhausted; a stream must not be pulled after
    that (operators here stay [None]). *)

val empty : t
val of_list : row list -> t
val of_array : row array -> t

val map : (row -> row) -> t -> t
val filter : (row -> bool) -> t -> t

val union_all : t list -> t
(** Concatenation — no duplicate elimination, as in the paper's UNION ALL
    whose branches are provably disjoint. *)

val nested_loop : outer:t -> inner:(row -> t) -> t
(** For each outer row, stream the inner iterator built from it. *)

val index_range : Table.Index.t -> lo:int array -> hi:int array -> t
(** Stream full index entries (key columns then rowid) in key order,
    inclusive bounds. Bound arrays must have the index key width (use
    {!Btree.lo_pad} / {!Btree.hi_pad} on [Table.Index.tree]). *)

val index_probe : Table.Index.t -> lo:int array -> hi:int array -> t
(** Like {!index_range}, but every iterator obtained from the same
    partial application [index_probe index] shares one B+-tree cursor,
    repositioned per call: requesting a new range invalidates the
    previously returned iterator. Exactly the contract of the inner side
    of {!nested_loop}, which drains each inner stream before building
    the next — the RI-tree query plan probes dozens of backbone nodes
    per query through a single cursor this way. *)

val index_prefix : Table.Index.t -> prefix:int list -> t
(** All entries whose key starts with [prefix]. *)

val fetch : Table.t -> t -> t
(** Interpret the last column of each input row as a rowid and replace
    the row by the base-table row (skipping dangling rowids). *)

val heap_scan : Table.t -> t
(** Full scan; yields base rows with the rowid appended as an extra final
    column. *)

val project : int array -> t -> t
(** Keep the given column positions, in order. *)

val distinct_by : (row -> int) -> t -> t
(** Drop rows whose key was already seen (hash-based). *)

val to_list : t -> row list
val count : t -> int
val iter : (row -> unit) -> t -> unit
val fold : ('a -> row -> 'a) -> 'a -> t -> 'a
