(* System dictionary rows (durable catalogs): width 3 + Codec.width.
     kind 0  table         (0, heap_meta, ncols,            name)
     kind 1  column        (1, heap_meta, position,         name)
     kind 2  index         (2, heap_meta, btree_meta,       name)
     kind 3  index column  (3, btree_meta, position_in_key, name)
   Tables are keyed by their heap meta page; index keys reference the
   owning table's heap meta, index-column rows the index's btree meta.
   The dictionary heap itself is the first structure ever created, so
   its meta page is page 0 of the device. *)

type t = {
  device : Storage.Block_device.t;
  pool : Storage.Buffer_pool.t;
  tables : (string, Table.t) Hashtbl.t;
  sys : Heap.t option; (* Some = durable *)
  journal : Storage.Journal.t option;
  block_size : int;
  cache_blocks : int;
  checksums : bool;
  mutable degraded : string option; (* Some reason = read-only mode *)
}

let sys_row_width = 3 + Codec.width

let sys_insert t kind a b name =
  match t.sys with
  | None -> ()
  | Some sys ->
      let packed = Codec.encode_name name in
      let row = Array.make sys_row_width 0 in
      row.(0) <- kind;
      row.(1) <- a;
      row.(2) <- b;
      Array.blit packed 0 row 3 Codec.width;
      ignore (Heap.insert sys row)

let register_index t table index =
  let heap_meta = Heap.meta_page (Table.heap table) in
  let tree_meta = Btree.meta_page (Table.Index.tree index) in
  sys_insert t 2 heap_meta tree_meta (Table.Index.name index);
  Array.iteri
    (fun pos col -> sys_insert t 3 tree_meta pos col)
    (Table.Index.columns index)

let create ?device ?(durable = false) ?checksums ?(block_size = 2048)
    ?(cache_blocks = 200) () =
  (* Durable catalogs default to checksummed pages: the journal is only
     trustworthy if corruption of what it protects is detectable. *)
  let checksums = Option.value checksums ~default:durable in
  let device =
    match device with
    | Some d -> d
    | None -> Storage.Block_device.create ~block_size ()
  in
  let pool =
    Storage.Buffer_pool.create ~capacity:cache_blocks ~checksums device
  in
  let journal =
    if durable then begin
      let j = Storage.Journal.create () in
      Storage.Buffer_pool.attach_journal pool j;
      Some j
    end
    else None
  in
  let sys =
    if durable then Some (Heap.create pool ~row_width:sys_row_width) else None
  in
  (match sys with
  | Some s -> assert (Heap.meta_page s = 0)
  | None -> ());
  { device; pool; tables = Hashtbl.create 16; sys; journal; block_size;
    cache_blocks; checksums; degraded = None }

let durable t = t.sys <> None
let pool t = t.pool
let device t = t.device
let checksums t = t.checksums
let journal t = t.journal
let degraded_reason t = t.degraded
let degraded t = t.degraded <> None

let degrade t reason =
  if t.degraded = None then t.degraded <- Some reason

let create_table t ~name ~columns =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.create_table: %s exists" name);
  let catalog = t in
  let table = ref None in
  let on_new_index idx =
    match !table with
    | Some tbl -> register_index catalog tbl idx
    | None -> ()
  in
  let tbl =
    if durable t then Table.create ~on_new_index t.pool ~name ~columns
    else Table.create t.pool ~name ~columns
  in
  table := Some tbl;
  let heap_meta = Heap.meta_page (Table.heap tbl) in
  sys_insert t 0 heap_meta (List.length columns) name;
  List.iteri (fun pos col -> sys_insert t 1 heap_meta pos col) columns;
  Hashtbl.replace t.tables name tbl;
  tbl

let find_table t name = Hashtbl.find_opt t.tables name
let table t name = Hashtbl.find t.tables name
let tables t = Hashtbl.fold (fun _ v acc -> v :: acc) t.tables []
let io_stats t = Storage.Block_device.Stats.get t.device
let reset_io_stats t = Storage.Block_device.Stats.reset t.device
let flush t = Storage.Buffer_pool.flush t.pool
let drop_cache t = Storage.Buffer_pool.clear t.pool
let commit t = Storage.Buffer_pool.commit t.pool
let commit_request t = Storage.Buffer_pool.commit_request t.pool
let commit_force t = Storage.Buffer_pool.commit_force t.pool
let pending_commits t = Storage.Buffer_pool.pending_commits t.pool

let checkpoint t =
  Storage.Buffer_pool.commit t.pool;
  Storage.Buffer_pool.flush t.pool;
  Option.iter Storage.Journal.truncate t.journal

let journal_stats t =
  Option.map
    (fun j ->
      (Storage.Journal.record_count j, Storage.Journal.byte_size j))
    t.journal

(* Rebuild every table handle from the on-device dictionary. *)
let open_from_device ~device ~journal ~block_size ~cache_blocks ~checksums =
  let pool =
    Storage.Buffer_pool.create ~capacity:cache_blocks ~checksums device
  in
  (match journal with
  | Some j -> Storage.Buffer_pool.attach_journal pool j
  | None -> ());
  let sys = Heap.open_existing pool ~meta_page:0 in
  let rows = List.rev (Heap.fold sys (fun acc _ row -> row :: acc) []) in
  let name_of row = Codec.decode_name (Array.sub row 3 Codec.width) in
  let catalog =
    { device; pool; tables = Hashtbl.create 16; sys = Some sys;
      journal; block_size; cache_blocks; checksums; degraded = None }
  in
  let table_rows = List.filter (fun r -> r.(0) = 0) rows in
  List.iter
    (fun trow ->
      let heap_meta = trow.(1) in
      let tname = name_of trow in
      let columns =
        List.filter (fun r -> r.(0) = 1 && r.(1) = heap_meta) rows
        |> List.sort (fun a b -> Int.compare a.(2) b.(2))
        |> List.map name_of
      in
      let indexes =
        List.filter (fun r -> r.(0) = 2 && r.(1) = heap_meta) rows
        |> List.map (fun irow ->
               let tree_meta = irow.(2) in
               let icols =
                 List.filter (fun r -> r.(0) = 3 && r.(1) = tree_meta) rows
                 |> List.sort (fun a b -> Int.compare a.(2) b.(2))
                 |> List.map name_of
               in
               (name_of irow, icols, tree_meta))
      in
      let tbl =
        Table.open_existing pool ~name:tname ~columns ~heap_meta ~indexes
      in
      Hashtbl.replace catalog.tables tname tbl)
    table_rows;
  catalog

let require_durable t op =
  if not (durable t) then
    failwith (Printf.sprintf "Catalog.%s: catalog is not durable" op)

let simulate_crash ?(force = false) t =
  require_durable t "simulate_crash";
  Storage.Buffer_pool.crash ~force t.pool;
  let journal = Option.get t.journal in
  ignore (Storage.Journal.recover journal t.device);
  open_from_device ~device:t.device ~journal:(Some journal)
    ~block_size:t.block_size ~cache_blocks:t.cache_blocks
    ~checksums:t.checksums

let reopen t =
  require_durable t "reopen";
  checkpoint t;
  open_from_device ~device:t.device ~journal:t.journal
    ~block_size:t.block_size ~cache_blocks:t.cache_blocks
    ~checksums:t.checksums

let reload t =
  require_durable t "reload";
  (* The device was rewritten underneath us (replica apply): every
     cached frame is stale, and writing any of them back would clobber
     the newer applied images — drop the pool without write-back. *)
  Storage.Buffer_pool.crash t.pool;
  let fresh =
    open_from_device ~device:t.device ~journal:t.journal
      ~block_size:t.block_size ~cache_blocks:t.cache_blocks
      ~checksums:t.checksums
  in
  (* keep the read-only flag (replica mode) across the handle swap *)
  (match t.degraded with Some r -> fresh.degraded <- Some r | None -> ());
  fresh

let scrub ?(repair = false) t =
  if not t.checksums then
    failwith "Catalog.scrub: catalog has no page checksums";
  (* Scrub reads the raw device; anything cached and dirty must be on
     disk first or the walk would report stale blocks. *)
  Storage.Buffer_pool.flush t.pool;
  Storage.Scrub.run ~repair ?journal:t.journal ~checksums:t.checksums
    t.device
