type key = int array

let compare_keys (a : key) (b : key) =
  let n = Array.length a in
  assert (n = Array.length b);
  let rec go i =
    if i = n then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal_keys a b = compare_keys a b = 0

(* ------------------------------------------------------------------ *)
(* Page layout.

   Every page starts with a 16-byte header:
     byte 0       node tag: 0 = leaf, 1 = internal
     bytes 2-3    number of keys (uint16)
     bytes 8-15   leaf: page id of the next leaf (-1 at the end);
                  internal: page id of child 0
   Entries follow from byte 16:
     leaf         key components, 8 bytes each (stride 8*k)
     internal     key followed by the right child id (stride 8*k + 8)

   The meta page holds the tree descriptor:
     0  magic   8  key_width   16  root   24  count
     32 height  40 free list head (-1 none)   48 page_count
   Free pages link through their first 8 bytes. *)
(* ------------------------------------------------------------------ *)

let magic = 0x52495442 (* "RITB" *)
let header_size = 16

type t = {
  pool : Storage.Buffer_pool.t;
  meta_page : int;
  key_width : int;
  leaf_cap : int;
  node_cap : int;
  mutable root : int;
  mutable count : int;
  mutable height : int;
  mutable free_head : int;
  mutable page_count : int;
}

let pool t = t.pool
let key_width t = t.key_width
let meta_page t = t.meta_page
let count t = t.count
let height t = t.height
let page_count t = t.page_count

let get_i64 buf off = Int64.to_int (Bytes.get_int64_be buf off)
let set_i64 buf off v = Bytes.set_int64_be buf off (Int64.of_int v)

let sync_meta t =
  Storage.Buffer_pool.with_page t.pool t.meta_page ~dirty:true (fun buf ->
      set_i64 buf 0 magic;
      set_i64 buf 8 t.key_width;
      set_i64 buf 16 t.root;
      set_i64 buf 24 t.count;
      set_i64 buf 32 t.height;
      set_i64 buf 40 t.free_head;
      set_i64 buf 48 t.page_count)

let alloc_page t =
  t.page_count <- t.page_count + 1;
  if t.free_head < 0 then Storage.Buffer_pool.alloc t.pool
  else begin
    let pid = t.free_head in
    let next =
      Storage.Buffer_pool.with_page t.pool pid ~dirty:false (fun buf -> get_i64 buf 0)
    in
    t.free_head <- next;
    pid
  end

let free_page t pid =
  t.page_count <- t.page_count - 1;
  Storage.Buffer_pool.with_page t.pool pid ~dirty:true (fun buf ->
      set_i64 buf 0 t.free_head);
  t.free_head <- pid

(* ------------------------------------------------------------------ *)
(* Node codec *)

type node =
  | Leaf of { keys : key array; next : int }
  | Node of { keys : key array; children : int array }
      (* |children| = |keys| + 1 *)

let read_key t buf off =
  Array.init t.key_width (fun i -> get_i64 buf (off + (8 * i)))

let write_key t buf off (k : key) =
  for i = 0 to t.key_width - 1 do
    set_i64 buf (off + (8 * i)) k.(i)
  done

let leaf_stride t = 8 * t.key_width
let node_stride t = (8 * t.key_width) + 8

let read_node t pid =
  Storage.Buffer_pool.with_page t.pool pid ~dirty:false (fun buf ->
      let tag = Char.code (Bytes.get buf 0) in
      let nkeys = Bytes.get_uint16_be buf 2 in
      if tag = 0 then
        let stride = leaf_stride t in
        let keys =
          Array.init nkeys (fun i ->
              read_key t buf (header_size + (i * stride)))
        in
        Leaf { keys; next = get_i64 buf 8 }
      else
        let stride = node_stride t in
        let keys =
          Array.init nkeys (fun i ->
              read_key t buf (header_size + (i * stride)))
        in
        let children =
          Array.init (nkeys + 1) (fun i ->
              if i = 0 then get_i64 buf 8
              else
                get_i64 buf
                  (header_size + ((i - 1) * stride) + (8 * t.key_width)))
        in
        Node { keys; children })

let write_node t pid node =
  Storage.Buffer_pool.with_page t.pool pid ~dirty:true (fun buf ->
      match node with
      | Leaf { keys; next } ->
          Bytes.set buf 0 '\000';
          Bytes.set_uint16_be buf 2 (Array.length keys);
          set_i64 buf 8 next;
          let stride = leaf_stride t in
          Array.iteri
            (fun i k -> write_key t buf (header_size + (i * stride)) k)
            keys
      | Node { keys; children } ->
          Bytes.set buf 0 '\001';
          Bytes.set_uint16_be buf 2 (Array.length keys);
          set_i64 buf 8 children.(0);
          let stride = node_stride t in
          Array.iteri
            (fun i k ->
              let off = header_size + (i * stride) in
              write_key t buf off k;
              set_i64 buf (off + (8 * t.key_width)) children.(i + 1))
            keys)

(* ------------------------------------------------------------------ *)
(* Construction *)

let capacities ~block_size ~key_width =
  let leaf_cap = (block_size - header_size) / (8 * key_width) in
  let node_cap = (block_size - header_size) / ((8 * key_width) + 8) in
  (leaf_cap, node_cap)

let validate_geometry ~block_size ~key_width =
  if key_width < 1 || key_width > 15 then
    invalid_arg
      (Printf.sprintf "Btree: key width %d out of range 1..15" key_width);
  let leaf_cap, node_cap = capacities ~block_size ~key_width in
  if leaf_cap < 4 || node_cap < 4 then
    invalid_arg
      (Printf.sprintf
         "Btree: block size %d too small for key width %d (fanout < 4)"
         block_size key_width)

let create pool ~key_width =
  let block_size = Storage.Buffer_pool.block_size pool in
  validate_geometry ~block_size ~key_width;
  let leaf_cap, node_cap = capacities ~block_size ~key_width in
  let meta_page = Storage.Buffer_pool.alloc pool in
  let root = Storage.Buffer_pool.alloc pool in
  let t =
    { pool; meta_page; key_width; leaf_cap; node_cap; root; count = 0;
      height = 1; free_head = -1; page_count = 1 }
  in
  write_node t root (Leaf { keys = [||]; next = -1 });
  sync_meta t;
  t

let open_existing pool ~meta_page =
  let fields =
    Storage.Buffer_pool.with_page pool meta_page ~dirty:false (fun buf ->
        Array.init 7 (fun i -> get_i64 buf (8 * i)))
  in
  if fields.(0) <> magic then
    invalid_arg
      (Printf.sprintf "Btree.open_existing: page %d is not a B+-tree meta page"
         meta_page);
  let key_width = fields.(1) in
  let block_size = Storage.Buffer_pool.block_size pool in
  validate_geometry ~block_size ~key_width;
  let leaf_cap, node_cap = capacities ~block_size ~key_width in
  { pool; meta_page; key_width; leaf_cap; node_cap; root = fields.(2);
    count = fields.(3); height = fields.(4); free_head = fields.(5);
    page_count = fields.(6) }

(* ------------------------------------------------------------------ *)
(* Search *)

(* First index with keys.(i) >= probe. *)
let bisect_left keys probe =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_keys keys.(mid) probe < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with keys.(i) > probe, i.e. the child slot for [probe]. *)
let bisect_right keys probe =
  let lo = ref 0 and hi = ref (Array.length keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_keys keys.(mid) probe <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let check_width t k =
  if Array.length k <> t.key_width then
    invalid_arg
      (Printf.sprintf "Btree: key width %d, expected %d" (Array.length k)
         t.key_width)

let rec find_leaf t pid probe =
  match read_node t pid with
  | Leaf _ -> pid
  | Node { keys; children } -> find_leaf t children.(bisect_right keys probe) probe

let mem t k =
  check_width t k;
  match read_node t (find_leaf t t.root k) with
  | Leaf { keys; _ } ->
      let pos = bisect_left keys k in
      pos < Array.length keys && equal_keys keys.(pos) k
  | Node _ -> assert false

(* ------------------------------------------------------------------ *)
(* Array editing helpers *)

let insert_at arr pos v =
  let n = Array.length arr in
  Array.init (n + 1) (fun i ->
      if i < pos then arr.(i) else if i = pos then v else arr.(i - 1))

let remove_at arr pos =
  let n = Array.length arr in
  Array.init (n - 1) (fun i -> if i < pos then arr.(i) else arr.(i + 1))

(* ------------------------------------------------------------------ *)
(* Insertion *)

type ins_result = Done | Duplicate | Split of key * int

let rec ins t pid k =
  match read_node t pid with
  | Leaf { keys; next } ->
      let pos = bisect_left keys k in
      if pos < Array.length keys && equal_keys keys.(pos) k then Duplicate
      else
        let keys = insert_at keys pos k in
        if Array.length keys <= t.leaf_cap then begin
          write_node t pid (Leaf { keys; next });
          Done
        end
        else begin
          let mid = Array.length keys / 2 in
          let left = Array.sub keys 0 mid in
          let right = Array.sub keys mid (Array.length keys - mid) in
          let new_pid = alloc_page t in
          write_node t new_pid (Leaf { keys = right; next });
          write_node t pid (Leaf { keys = left; next = new_pid });
          Split (right.(0), new_pid)
        end
  | Node { keys; children } -> (
      let slot = bisect_right keys k in
      match ins t children.(slot) k with
      | (Done | Duplicate) as r -> r
      | Split (sep, new_child) ->
          let keys = insert_at keys slot sep in
          let children = insert_at children (slot + 1) new_child in
          if Array.length keys <= t.node_cap then begin
            write_node t pid (Node { keys; children });
            Done
          end
          else begin
            (* Promote the middle separator. *)
            let mid = Array.length keys / 2 in
            let promoted = keys.(mid) in
            let lkeys = Array.sub keys 0 mid in
            let rkeys = Array.sub keys (mid + 1) (Array.length keys - mid - 1)
            in
            let lchildren = Array.sub children 0 (mid + 1) in
            let rchildren =
              Array.sub children (mid + 1) (Array.length children - mid - 1)
            in
            let new_pid = alloc_page t in
            write_node t new_pid (Node { keys = rkeys; children = rchildren });
            write_node t pid (Node { keys = lkeys; children = lchildren });
            Split (promoted, new_pid)
          end)

let insert t k =
  check_width t k;
  match ins t t.root k with
  | Duplicate -> false
  | Done ->
      t.count <- t.count + 1;
      sync_meta t;
      true
  | Split (sep, new_child) ->
      let new_root = alloc_page t in
      write_node t new_root
        (Node { keys = [| sep |]; children = [| t.root; new_child |] });
      t.root <- new_root;
      t.height <- t.height + 1;
      t.count <- t.count + 1;
      sync_meta t;
      true

(* ------------------------------------------------------------------ *)
(* Deletion with borrow/merge rebalancing *)

let leaf_min t = t.leaf_cap / 2
let node_min t = t.node_cap / 2

let node_size = function
  | Leaf { keys; _ } -> Array.length keys
  | Node { keys; _ } -> Array.length keys

(* Rebalance [children.(slot)] of the internal node [pid] after a
   deletion left it under-full. Siblings share the parent, so a borrow
   rotates one entry through the parent separator and a merge removes
   the separator. *)
let fix_underflow t pid slot =
  match read_node t pid with
  | Leaf _ -> assert false
  | Node { keys; children } -> (
      let child_pid = children.(slot) in
      let child = read_node t child_pid in
      let min_size =
        match child with Leaf _ -> leaf_min t | Node _ -> node_min t
      in
      if node_size child >= min_size then ()
      else
        let borrow_from_left l =
          (* l = slot - 1 *)
          let left_pid = children.(l) in
          match (read_node t left_pid, child) with
          | Leaf lf, Leaf cf ->
              let n = Array.length lf.keys in
              let moved = lf.keys.(n - 1) in
              write_node t left_pid
                (Leaf { keys = Array.sub lf.keys 0 (n - 1); next = lf.next });
              write_node t child_pid
                (Leaf { keys = insert_at cf.keys 0 moved; next = cf.next });
              write_node t pid
                (Node { keys = (let ks = Array.copy keys in ks.(l) <- moved; ks);
                        children })
          | Node ln, Node cn ->
              let n = Array.length ln.keys in
              let new_sep = ln.keys.(n - 1) in
              let moved_child = ln.children.(n) in
              write_node t left_pid
                (Node { keys = Array.sub ln.keys 0 (n - 1);
                        children = Array.sub ln.children 0 n });
              write_node t child_pid
                (Node { keys = insert_at cn.keys 0 keys.(l);
                        children = insert_at cn.children 0 moved_child });
              write_node t pid
                (Node
                   { keys = (let ks = Array.copy keys in ks.(l) <- new_sep; ks);
                     children })
          | _ -> assert false
        in
        let borrow_from_right () =
          let right_pid = children.(slot + 1) in
          match (read_node t right_pid, child) with
          | Leaf rf, Leaf cf ->
              let moved = rf.keys.(0) in
              write_node t right_pid
                (Leaf { keys = remove_at rf.keys 0; next = rf.next });
              write_node t child_pid
                (Leaf
                   { keys = insert_at cf.keys (Array.length cf.keys) moved;
                     next = cf.next });
              write_node t pid
                (Node
                   { keys =
                       (let ks = Array.copy keys in
                        ks.(slot) <- rf.keys.(1);
                        ks);
                     children })
          | Node rn, Node cn ->
              let moved_child = rn.children.(0) in
              let new_sep = rn.keys.(0) in
              write_node t right_pid
                (Node { keys = remove_at rn.keys 0;
                        children = remove_at rn.children 0 });
              write_node t child_pid
                (Node
                   { keys = insert_at cn.keys (Array.length cn.keys) keys.(slot);
                     children =
                       insert_at cn.children (Array.length cn.children)
                         moved_child });
              write_node t pid
                (Node
                   { keys =
                       (let ks = Array.copy keys in
                        ks.(slot) <- new_sep;
                        ks);
                     children })
          | _ -> assert false
        in
        let merge_with_right l =
          (* Merge children.(l) and children.(l+1) into children.(l),
             dropping separator keys.(l). *)
          let left_pid = children.(l) and right_pid = children.(l + 1) in
          (match (read_node t left_pid, read_node t right_pid) with
          | Leaf lf, Leaf rf ->
              write_node t left_pid
                (Leaf { keys = Array.append lf.keys rf.keys; next = rf.next })
          | Node ln, Node rn ->
              write_node t left_pid
                (Node
                   { keys =
                       Array.concat [ ln.keys; [| keys.(l) |]; rn.keys ];
                     children = Array.append ln.children rn.children })
          | _ -> assert false);
          free_page t right_pid;
          write_node t pid
            (Node { keys = remove_at keys l; children = remove_at children (l + 1) })
        in
        let left_ok =
          slot > 0 && node_size (read_node t children.(slot - 1)) > min_size
        in
        let right_ok =
          slot < Array.length keys
          && node_size (read_node t children.(slot + 1)) > min_size
        in
        if left_ok then borrow_from_left (slot - 1)
        else if right_ok then borrow_from_right ()
        else if slot > 0 then merge_with_right (slot - 1)
        else merge_with_right slot)

let rec del t pid k =
  match read_node t pid with
  | Leaf { keys; next } ->
      let pos = bisect_left keys k in
      if pos < Array.length keys && equal_keys keys.(pos) k then begin
        write_node t pid (Leaf { keys = remove_at keys pos; next });
        true
      end
      else false
  | Node { keys; children } ->
      let slot = bisect_right keys k in
      let removed = del t children.(slot) k in
      if removed then fix_underflow t pid slot;
      removed

let delete t k =
  check_width t k;
  let removed = del t t.root k in
  if removed then begin
    t.count <- t.count - 1;
    (* Collapse the root while it is an internal node with one child. *)
    let rec collapse () =
      match read_node t t.root with
      | Node { keys = [||]; children } ->
          let old = t.root in
          t.root <- children.(0);
          t.height <- t.height - 1;
          free_page t old;
          collapse ()
      | Node _ | Leaf _ -> ()
    in
    collapse ();
    sync_meta t
  end;
  removed

(* ------------------------------------------------------------------ *)
(* Range scans *)

let lo_pad t prefix =
  let p = Array.of_list prefix in
  if Array.length p > t.key_width then
    invalid_arg "Btree.lo_pad: prefix longer than key";
  Array.init t.key_width (fun i ->
      if i < Array.length p then p.(i) else min_int)

let hi_pad t prefix =
  let p = Array.of_list prefix in
  if Array.length p > t.key_width then
    invalid_arg "Btree.hi_pad: prefix longer than key";
  Array.init t.key_width (fun i ->
      if i < Array.length p then p.(i) else max_int)

type cursor = {
  tree : t;
  mutable hi : key;
  mutable buf : key array;
  mutable pos : int;
  mutable next_leaf : int;
  mutable exhausted : bool;
}

let do_reset c ~lo ~hi =
  let leaf = find_leaf c.tree c.tree.root lo in
  match read_node c.tree leaf with
  | Leaf { keys; next } ->
      c.hi <- hi;
      c.buf <- keys;
      c.pos <- bisect_left keys lo;
      c.next_leaf <- next;
      c.exhausted <- false
  | Node _ -> assert false

let reset c ~lo ~hi =
  check_width c.tree lo;
  check_width c.tree hi;
  (* One descent per probe: guard the span so the disabled path does
     not allocate a closure per probe. *)
  if Obs.Trace.enabled () then
    Obs.Trace.with_span "btree.descend" (fun () -> do_reset c ~lo ~hi)
  else do_reset c ~lo ~hi

let cursor t ~lo ~hi =
  let c =
    { tree = t; hi; buf = [||]; pos = 0; next_leaf = -1; exhausted = true }
  in
  reset c ~lo ~hi;
  c

let rec next c =
  if c.exhausted then None
  else if c.pos < Array.length c.buf then begin
    let k = c.buf.(c.pos) in
    if compare_keys k c.hi > 0 then begin
      c.exhausted <- true;
      None
    end
    else begin
      c.pos <- c.pos + 1;
      Some k
    end
  end
  else if c.next_leaf < 0 then begin
    c.exhausted <- true;
    None
  end
  else
    match read_node c.tree c.next_leaf with
    | Leaf { keys; next = nl } ->
        c.buf <- keys;
        c.pos <- 0;
        c.next_leaf <- nl;
        next c
    | Node _ -> assert false

let iter_range t ~lo ~hi f =
  let c = cursor t ~lo ~hi in
  let rec go () =
    match next c with
    | Some k ->
        f k;
        go ()
    | None -> ()
  in
  go ()

let fold_range t ~lo ~hi f acc =
  let c = cursor t ~lo ~hi in
  let rec go acc =
    match next c with Some k -> go (f acc k) | None -> acc
  in
  go acc

let range_list t ~lo ~hi =
  List.rev (fold_range t ~lo ~hi (fun acc k -> k :: acc) [])

let iter t f =
  iter_range t ~lo:(lo_pad t []) ~hi:(hi_pad t []) f

let to_list t = range_list t ~lo:(lo_pad t []) ~hi:(hi_pad t [])

let min_key t =
  let c = cursor t ~lo:(lo_pad t []) ~hi:(hi_pad t []) in
  next c

let max_key t =
  (* Descend along the rightmost spine. *)
  let rec go pid =
    match read_node t pid with
    | Leaf { keys; _ } ->
        if Array.length keys = 0 then None
        else Some keys.(Array.length keys - 1)
    | Node { children; _ } -> go children.(Array.length children - 1)
  in
  go t.root

(* ------------------------------------------------------------------ *)
(* Bulk loading *)

let bulk_load ?(fill = 0.9) pool ~key_width seq =
  let block_size = Storage.Buffer_pool.block_size pool in
  validate_geometry ~block_size ~key_width;
  let leaf_cap, node_cap = capacities ~block_size ~key_width in
  let meta_page = Storage.Buffer_pool.alloc pool in
  let t =
    { pool; meta_page; key_width; leaf_cap; node_cap; root = -1; count = 0;
      height = 1; free_head = -1; page_count = 0 }
  in
  let leaf_target = max 2 (int_of_float (fill *. float_of_int leaf_cap)) in
  let node_target = max 2 (int_of_float (fill *. float_of_int node_cap)) in
  (* Stream the sorted keys into chained leaves. *)
  let leaves = ref [] (* (first_key, pid) in reverse order *) in
  let pending = ref [] (* current leaf's keys, reversed *) in
  let pending_n = ref 0 in
  let prev = ref None in
  let prev_leaf = ref (-1) in
  let prev_leaf_keys = ref [||] in
  let flush_leaf () =
    if !pending_n > 0 then begin
      let keys = Array.of_list (List.rev !pending) in
      let pid = alloc_page t in
      if !prev_leaf >= 0 then
        write_node t !prev_leaf (Leaf { keys = !prev_leaf_keys; next = pid });
      prev_leaf := pid;
      prev_leaf_keys := keys;
      leaves := (keys.(0), pid) :: !leaves;
      pending := [];
      pending_n := 0
    end
  in
  Seq.iter
    (fun k ->
      if Array.length k <> key_width then
        invalid_arg "Btree.bulk_load: key of wrong width";
      (match !prev with
      | Some p when compare_keys p k >= 0 ->
          invalid_arg "Btree.bulk_load: keys not strictly increasing"
      | Some _ | None -> ());
      prev := Some (Array.copy k);
      pending := k :: !pending;
      incr pending_n;
      t.count <- t.count + 1;
      if !pending_n >= leaf_target then flush_leaf ())
    seq;
  flush_leaf ();
  if !prev_leaf >= 0 then
    write_node t !prev_leaf (Leaf { keys = !prev_leaf_keys; next = -1 });
  let level = List.rev !leaves in
  if level = [] then begin
    let root = alloc_page t in
    write_node t root (Leaf { keys = [||]; next = -1 });
    t.root <- root;
    t.height <- 1
  end
  else begin
    (* Build internal levels bottom-up; each node's separator list is the
       first key of every child except the leftmost. *)
    let rec build level height =
      match level with
      | [ (_, pid) ] ->
          t.root <- pid;
          t.height <- height
      | _ ->
          let groups = ref [] and cur = ref [] and cur_n = ref 0 in
          List.iter
            (fun entry ->
              cur := entry :: !cur;
              incr cur_n;
              if !cur_n >= node_target + 1 then begin
                groups := List.rev !cur :: !groups;
                cur := [];
                cur_n := 0
              end)
            level;
          if !cur_n > 0 then begin
            (* Avoid a childless trailing node: steal from the previous
               group if the remainder is a singleton. *)
            match (!groups, !cur) with
            | g :: gs, [ single ] when List.length g > 2 ->
                let g_rev = List.rev g in
                let last = List.hd g_rev in
                let g' = List.rev (List.tl g_rev) in
                groups := [ last; single ] :: g' :: gs
            | _ -> groups := List.rev !cur :: !groups
          end;
          let next_level =
            List.rev_map
              (fun group ->
                match group with
                | [] -> assert false
                | (first_key, first_pid) :: rest ->
                    let keys = Array.of_list (List.map fst rest) in
                    let children =
                      Array.of_list (first_pid :: List.map snd rest)
                    in
                    let pid = alloc_page t in
                    write_node t pid (Node { keys; children });
                    (first_key, pid))
              !groups
          in
          build next_level (height + 1)
    in
    build level 1
  end;
  sync_meta t;
  t

(* ------------------------------------------------------------------ *)
(* Invariant checking *)

let check_invariants ?(occupancy = true) t =
  let fail fmt = Format.kasprintf failwith fmt in
  let leaves_seen = ref [] in
  let pages_seen = ref 0 in
  (* Returns (depth, count) of the subtree while checking that every key
     lies within the separator bounds inherited from above. *)
  let rec walk pid ~is_root ~lo ~hi =
    incr pages_seen;
    let in_bounds k =
      (match lo with Some l -> compare_keys l k <= 0 | None -> true)
      && match hi with Some h -> compare_keys k h < 0 | None -> true
    in
    match read_node t pid with
    | Leaf { keys; _ } ->
        let n = Array.length keys in
        if occupancy && (not is_root) && n < leaf_min t then
          fail "leaf %d under-full: %d < %d" pid n (leaf_min t);
        if n > t.leaf_cap then fail "leaf %d over-full" pid;
        Array.iteri
          (fun i k ->
            if i > 0 && compare_keys keys.(i - 1) k >= 0 then
              fail "leaf %d keys out of order" pid;
            if not (in_bounds k) then
              fail "leaf %d key escapes separator bounds" pid)
          keys;
        leaves_seen := pid :: !leaves_seen;
        (1, n)
    | Node { keys; children } ->
        let n = Array.length keys in
        if occupancy && (not is_root) && n < node_min t then
          fail "node %d under-full: %d < %d" pid n (node_min t);
        if is_root && n < 1 then fail "internal root %d has no key" pid;
        if n > t.node_cap then fail "node %d over-full" pid;
        Array.iteri
          (fun i k ->
            if i > 0 && compare_keys keys.(i - 1) k >= 0 then
              fail "node %d separators out of order" pid;
            if not (in_bounds k) then
              fail "node %d separator escapes bounds" pid)
          keys;
        let depth = ref 0 and total = ref 0 in
        Array.iteri
          (fun i child ->
            let clo = if i = 0 then lo else Some keys.(i - 1) in
            let chi = if i = n then hi else Some keys.(i) in
            let d, c = walk child ~is_root:false ~lo:clo ~hi:chi in
            if !depth = 0 then depth := d
            else if d <> !depth then fail "node %d has uneven depths" pid;
            total := !total + c)
          children;
        (!depth + 1, !total)
  in
  let depth, total = walk t.root ~is_root:true ~lo:None ~hi:None in
  if depth <> t.height then
    fail "height mismatch: walked %d, recorded %d" depth t.height;
  if total <> t.count then
    fail "count mismatch: walked %d, recorded %d" total t.count;
  if !pages_seen <> t.page_count then
    fail "page count mismatch: walked %d, recorded %d" !pages_seen
      t.page_count;
  (* The leaf chain must equal the in-order leaves. *)
  let in_order = List.rev !leaves_seen in
  let rec chain pid acc =
    if pid < 0 then List.rev acc
    else
      match read_node t pid with
      | Leaf { next; _ } -> chain next (pid :: acc)
      | Node _ -> fail "leaf chain reaches internal node %d" pid
  in
  match in_order with
  | [] -> fail "tree has no leaves"
  | first :: _ ->
      if chain first [] <> in_order then fail "leaf chain broken"

let pp_stats ppf t =
  Format.fprintf ppf
    "entries=%d height=%d pages=%d leaf_cap=%d node_cap=%d" t.count t.height
    t.page_count t.leaf_cap t.node_cap
