(** Disk-layout B+-tree over a {!Storage.Buffer_pool}.

    This is the "built-in index" of our relational substrate: the RI-tree
    paper deliberately relies on nothing more than the composite B+-tree
    indexes every RDBMS provides ("almost all RDBMS qualify for this
    quite weak requirement since they typically have implemented the
    popular B+-tree"). All entries are fixed-width tuples of OCaml
    integers compared lexicographically; composite relational indexes
    append the rowid as the last component so that every entry is unique,
    mirroring the paper's remark that "the attribute id was included in
    the indexes".

    The implementation is a classic B+-tree: separator keys in internal
    nodes, all entries in leaves, leaves chained for range scans, splits
    on overflow, borrow/merge rebalancing on underflow, and a free list
    for recycled pages. Search and update cost [O(log_b n)] page
    accesses; a range scan costs the search plus [O(r/b)] leaf pages for
    [r] results — exactly the primitives the paper's complexity analysis
    assumes. *)

type t

type key = int array
(** A composite key of [key_width] integers, ordered lexicographically
    with [Int.compare] on each component. *)

val compare_keys : key -> key -> int
(** Lexicographic comparison; the arrays must have equal length. *)

val create : Storage.Buffer_pool.t -> key_width:int -> t
(** [create pool ~key_width] allocates an empty tree (meta page + one
    leaf).
    @raise Invalid_argument if [key_width] is not in [1 .. 15] or the
    pool's block size is too small for a branching factor of at least
    4. *)

val bulk_load :
  ?fill:float -> Storage.Buffer_pool.t -> key_width:int -> key Seq.t -> t
(** [bulk_load pool ~key_width seq] builds a tree from a sorted,
    duplicate-free sequence of keys, packing leaves to [fill] (default
    0.9) of capacity.
    @raise Invalid_argument if the sequence is not strictly
    increasing. *)

val open_existing : Storage.Buffer_pool.t -> meta_page:int -> t
(** Re-open a tree persisted on the pool's device from its meta page
    (e.g. after crash recovery).
    @raise Invalid_argument if the page is not a B+-tree meta page. *)

val meta_page : t -> int
(** The page to pass to {!open_existing} later. *)

val pool : t -> Storage.Buffer_pool.t
val key_width : t -> int

val count : t -> int
(** Number of entries. *)

val height : t -> int
(** Number of levels; an empty tree has height 1 (a single leaf). *)

val page_count : t -> int
(** Pages currently owned by the tree (excluding the meta page and free
    pages). *)

val insert : t -> key -> bool
(** [insert t k] adds [k]; returns [false] (and changes nothing) if [k]
    is already present.
    @raise Invalid_argument if [k] has the wrong width. *)

val delete : t -> key -> bool
(** [delete t k] removes [k]; returns [false] if absent. *)

val mem : t -> key -> bool

val min_key : t -> key option
val max_key : t -> key option

(** {2 Range scans}

    Bounds are inclusive full-width keys. Use {!lo_pad} / {!hi_pad} to
    build probes from key prefixes. *)

val lo_pad : t -> int list -> key
(** [lo_pad t prefix] pads [prefix] with [min_int] to full width: the
    smallest key with that prefix. *)

val hi_pad : t -> int list -> key
(** [hi_pad t prefix] pads with [max_int]: the largest key with that
    prefix. *)

type cursor

val cursor : t -> lo:key -> hi:key -> cursor
(** Cursor over entries [k] with [lo <= k <= hi], ascending. *)

val next : cursor -> key option

val reset : cursor -> lo:key -> hi:key -> unit
(** Reposition an existing cursor on a new [lo, hi] range of the same
    tree. Equivalent to a fresh {!cursor} but without the allocation —
    the repeated inner probes of a nested-loop join reuse one cursor. *)

val iter_range : t -> lo:key -> hi:key -> (key -> unit) -> unit
val fold_range : t -> lo:key -> hi:key -> ('a -> key -> 'a) -> 'a -> 'a
val range_list : t -> lo:key -> hi:key -> key list
val iter : t -> (key -> unit) -> unit
val to_list : t -> key list

val check_invariants : ?occupancy:bool -> t -> unit
(** Verify ordering, separator bounds, occupancy, uniform depth, leaf
    chaining and the entry count; used heavily by the test suite.
    [?occupancy:false] skips the minimum-occupancy check — bulk-loaded
    trees may legitimately end with under-full trailing nodes.
    @raise Failure describing the first violated invariant. *)

val pp_stats : Format.formatter -> t -> unit
