(* The SQL front end, reduced to compilation: AST -> logical planning
   (join order, access-path selection) -> the shared physical-plan IR in
   `Exec.Ir`. Execution, plan rendering, cost estimation and EXPLAIN
   assembly all live in `lib/exec`; this module owns parsing, statement
   dispatch, DDL/DML side effects, and the plan cache that lets repeated
   statements skip the parser and planner entirely. *)

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

module Ir = Exec.Ir
module Executor = Exec.Executor

(* Convert executor/planner errors into the front end's exception so
   callers see one error type regardless of which layer failed. *)
let guard f = try f () with Ir.Error m -> raise (Error m)

(* Process-global work counters: a plan-cache hit must not touch the
   parser or the planner, and the tests assert it through these. *)
let parse_calls = ref 0
let plan_calls = ref 0
let parse_count () = !parse_calls
let plan_count () = !plan_calls

let parse src =
  incr parse_calls;
  Parser.parse src

type session = {
  catalog : Relation.Catalog.t;
  collections : (string, string array * int array list) Hashtbl.t;
  mutable statements : int;
  cache : Ir.plan Exec.Plan_cache.t;
  cache_enabled : bool;
  (* Bumped whenever cached plans are invalidated (DDL, collection
     schema change); prepared statements recompile when stale. *)
  mutable generation : int;
  (* Hot-tier residency generation the caches were last valid under:
     any promotion/demotion/invalidation in the memory tier flips the
     tier choice underneath compiled plans, so they are flushed. *)
  mutable mem_generation : int;
  (* The MVCC transaction DML runs in, when the hosting server threads
     one through; [None] keeps the historical direct-write behaviour of
     standalone engine users (tools, tests). *)
  mutable txn : Relation.Txn.txn option;
}

let session ?(plan_cache = true) catalog =
  { catalog;
    collections = Hashtbl.create 8;
    statements = 0;
    cache = Exec.Plan_cache.create ();
    cache_enabled = plan_cache;
    generation = 0;
    mem_generation = Exec.Memtier.current_generation ();
    txn = None }

let statements s = s.statements

let catalog s = s.catalog

let set_txn s t = s.txn <- t

let active_txn s =
  match s.txn with
  | Some t when Relation.Txn.is_active t -> Some t
  | _ -> None

let invalidate_plans s =
  Exec.Plan_cache.invalidate s.cache;
  s.generation <- s.generation + 1

let sync_mem_generation s =
  let g = Exec.Memtier.current_generation () in
  if g <> s.mem_generation then begin
    s.mem_generation <- g;
    invalidate_plans s
  end

let set_collection s name ~columns rows =
  let cols = Array.of_list columns in
  (match Hashtbl.find_opt s.collections name with
  | Some (old_cols, _) when old_cols = cols ->
      (* same schema, fresh rows: cached plans resolve the rows at run
         time, so the usual per-query node-list refresh stays a hit *)
      ()
  | _ -> invalidate_plans s);
  Hashtbl.replace s.collections name (cols, rows)

let clear_collection s name = Hashtbl.remove s.collections name

type result =
  | Done of string
  | Rows of { columns : string list; rows : int array list }

let plan_cache_stats s =
  (Exec.Plan_cache.hits s.cache, Exec.Plan_cache.misses s.cache)

(* ---------------- AST -> IR expression compilation ---------------- *)

let compile_cmp = function
  | Ast.Eq -> Ir.Eq
  | Ast.Ne -> Ir.Ne
  | Ast.Lt -> Ir.Lt
  | Ast.Le -> Ir.Le
  | Ast.Gt -> Ir.Gt
  | Ast.Ge -> Ir.Ge

let rec compile_value = function
  | Ast.Int n -> Ir.Const n
  | Ast.Host h -> Ir.Param h
  | Ast.Col (a, c) -> Ir.Field (a, c)
  | Ast.Cmp _ | Ast.Between _ | Ast.And _ | Ast.Or _ | Ast.Not _ ->
      fail "boolean expression used as a value"

and compile_pred = function
  | Ast.Cmp (op, a, b) ->
      Ir.Cmp (compile_cmp op, compile_value a, compile_value b)
  | Ast.Between (e, lo, hi) ->
      Ir.Between (compile_value e, compile_value lo, compile_value hi)
  | Ast.And (a, b) -> Ir.And (compile_pred a, compile_pred b)
  | Ast.Or (a, b) -> Ir.Or (compile_pred a, compile_pred b)
  | Ast.Not e -> Ir.Not (compile_pred e)
  | Ast.Int _ | Ast.Host _ | Ast.Col _ ->
      fail "value expression used as a predicate"

let compile_agg = function
  | Ast.Count -> Ir.Count
  | Ast.Min -> Ir.Min
  | Ast.Max -> Ir.Max
  | Ast.Sum -> Ir.Sum

let compile_proj = function
  | Ast.Star -> Ir.Star
  | Ast.Count_star -> Ir.Count_star
  | Ast.Proj_col (a, c) -> Ir.Col (a, c)
  | Ast.Agg (g, target) -> Ir.Agg (compile_agg g, target)

(* Aliases referenced by an expression. *)
let rec expr_aliases acc = function
  | Ast.Col (Some a, _) -> if List.mem a acc then acc else a :: acc
  | Ast.Col (None, _) | Ast.Int _ | Ast.Host _ -> acc
  | Ast.Cmp (_, a, b) -> expr_aliases (expr_aliases acc a) b
  | Ast.Between (e, lo, hi) ->
      expr_aliases (expr_aliases (expr_aliases acc e) lo) hi
  | Ast.And (a, b) | Ast.Or (a, b) -> expr_aliases (expr_aliases acc a) b
  | Ast.Not e -> expr_aliases acc e

let rec split_and = function
  | Ast.And (a, b) -> split_and a @ split_and b
  | e -> [ e ]

(* ---------------- logical planning ---------------- *)

type source =
  | Base of Relation.Table.t
  | Collection of string (* resolved from the session at run time *)

type bound_expr = { e : Ast.expr; inclusive : bool }

type access =
  | Seq_scan
  | Index_scan of {
      index : Relation.Table.Index.t;
      eq : Ast.expr list; (* probes for the leading key columns *)
      lo : bound_expr option; (* range on the next key column *)
      hi : bound_expr option;
      (* Start/stop-key refinement on the column after the range column
         (the paper's Sec. 4.3 lemma: "i.upper >= :lower" tightens the
         start key of the BETWEEN scan). The conjunct stays in the
         residual filter; the refinement only skips entries. *)
      refine_lo : bound_expr option;
      refine_hi : bound_expr option;
      covering : bool; (* no base-table fetch needed *)
    }

(* Columns of [alias] referenced anywhere in the branch. [None]-alias
   column references are conservatively attributed to every alias that
   has such a column. *)
let referenced_columns select alias columns =
  let refs = ref [] in
  let note c = if not (List.mem c !refs) then refs := c :: !refs in
  let rec walk = function
    | Ast.Col (Some a, c) -> if a = alias then note c
    | Ast.Col (None, c) -> if Array.exists (fun x -> x = c) columns then note c
    | Ast.Int _ | Ast.Host _ -> ()
    | Ast.Cmp (_, a, b) ->
        walk a;
        walk b
    | Ast.Between (e, lo, hi) ->
        walk e;
        walk lo;
        walk hi
    | Ast.And (a, b) | Ast.Or (a, b) ->
        walk a;
        walk b
    | Ast.Not e -> walk e
  in
  Option.iter walk select.Ast.where;
  List.iter (fun (a, c) -> walk (Ast.Col (a, c))) select.Ast.group_by;
  List.iter
    (function
      | Ast.Star -> Array.iter note columns
      | Ast.Count_star -> ()
      | Ast.Proj_col (Some a, c) | Ast.Agg (_, (Some a, c)) ->
          if a = alias then note c
      | Ast.Proj_col (None, c) | Ast.Agg (_, (None, c)) ->
          if Array.exists (fun x -> x = c) columns then note c)
    select.Ast.projections;
  !refs

(* Does the expression only depend on host variables, constants, and the
   already-bound aliases? Unqualified columns resolve against the bound
   aliases' schemas. *)
let outer_only bound_aliases e =
  let rec ok = function
    | Ast.Int _ | Ast.Host _ -> true
    | Ast.Col (Some a, _) -> List.exists (fun (n, _) -> n = a) bound_aliases
    | Ast.Col (None, c) ->
        List.exists
          (fun (_, cols) -> Array.exists (fun x -> x = c) cols)
          bound_aliases
    | Ast.Cmp (_, a, b) -> ok a && ok b
    | Ast.Between (x, lo, hi) -> ok x && ok lo && ok hi
    | Ast.And (a, b) | Ast.Or (a, b) -> ok a && ok b
    | Ast.Not x -> ok x
  in
  ok e

(* Is [e] a reference to column [c] of [alias] (qualified or not)? *)
let is_col_of alias columns c = function
  | Ast.Col (Some a, x) -> a = alias && x = c
  | Ast.Col (None, x) -> x = c && Array.exists (fun y -> y = c) columns
  | _ -> false

type candidate = {
  c_score : int;
  c_access : access;
  c_marks : Ast.expr list; (* conjuncts consumed by the access path *)
}

(* Collect the lo/hi bounds available on column [c] from [conjuncts];
   each kind is taken at most once. *)
let range_bounds_on alias columns c ~outer ~usable conjuncts =
  let lo = ref None and hi = ref None and marks = ref [] in
  List.iter
    (fun conj ->
      if usable conj then
        match conj with
        | Ast.Cmp (op, a, b) when is_col_of alias columns c a && outer_only outer b
          -> (
            match op with
            | Ast.Ge when !lo = None ->
                lo := Some { e = b; inclusive = true };
                marks := conj :: !marks
            | Ast.Gt when !lo = None ->
                lo := Some { e = b; inclusive = false };
                marks := conj :: !marks
            | Ast.Le when !hi = None ->
                hi := Some { e = b; inclusive = true };
                marks := conj :: !marks
            | Ast.Lt when !hi = None ->
                hi := Some { e = b; inclusive = false };
                marks := conj :: !marks
            | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> ())
        | Ast.Cmp (op, a, b) when is_col_of alias columns c b && outer_only outer a
          -> (
            (* mirrored: e op col *)
            match op with
            | Ast.Le when !lo = None ->
                lo := Some { e = a; inclusive = true };
                marks := conj :: !marks
            | Ast.Lt when !lo = None ->
                lo := Some { e = a; inclusive = false };
                marks := conj :: !marks
            | Ast.Ge when !hi = None ->
                hi := Some { e = a; inclusive = true };
                marks := conj :: !marks
            | Ast.Gt when !hi = None ->
                hi := Some { e = a; inclusive = false };
                marks := conj :: !marks
            | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> ())
        | Ast.Between (e, b_lo, b_hi)
          when is_col_of alias columns c e && outer_only outer b_lo
               && outer_only outer b_hi ->
            if !lo = None && !hi = None then begin
              lo := Some { e = b_lo; inclusive = true };
              hi := Some { e = b_hi; inclusive = true };
              marks := conj :: !marks
            end
        | _ -> ())
    conjuncts;
  (!lo, !hi, !marks)

(* Best index access for a base table given the bound outer aliases. *)
let best_index_access select tbl alias columns ~outer ~usable conjuncts =
  let candidates =
    List.filter_map
      (fun idx ->
        let icols = Relation.Table.Index.columns idx in
        (* longest equality prefix *)
        let eq = ref [] and eq_marks = ref [] in
        let pos = ref 0 in
        let continue = ref true in
        while !continue && !pos < Array.length icols do
          let c = icols.(!pos) in
          match
            List.find_opt
              (fun conj ->
                usable conj
                &&
                match conj with
                | Ast.Cmp (Ast.Eq, a, b) ->
                    (is_col_of alias columns c a && outer_only outer b)
                    || (is_col_of alias columns c b && outer_only outer a)
                | _ -> false)
              conjuncts
          with
          | Some (Ast.Cmp (Ast.Eq, a, b) as conj) ->
              let probe = if is_col_of alias columns c a then b else a in
              eq := probe :: !eq;
              eq_marks := conj :: !eq_marks;
              incr pos
          | _ -> continue := false
        done;
        let eq = List.rev !eq in
        (* range on the next key column *)
        let lo, hi, range_marks =
          if !pos < Array.length icols then
            range_bounds_on alias columns icols.(!pos) ~outer ~usable conjuncts
          else (None, None, [])
        in
        (* start/stop-key refinement on the column after the range; only
           meaningful when a range (or eq prefix) was found, and the
           conjunct is NOT consumed — it stays as a filter. *)
        let refine_lo, refine_hi =
          let rpos = !pos + if lo <> None || hi <> None then 1 else 0 in
          if rpos > !pos && rpos < Array.length icols then begin
            let rl, rh, _ =
              range_bounds_on alias columns icols.(rpos) ~outer ~usable
                conjuncts
            in
            (rl, rh)
          end
          else (None, None)
        in
        let score =
          (4 * List.length eq)
          + (if lo <> None then 2 else 0)
          + (if hi <> None then 2 else 0)
          + (if refine_lo <> None then 1 else 0)
          + if refine_hi <> None then 1 else 0
        in
        if score = 0 then None
        else begin
          let needed = referenced_columns select alias columns in
          let covering =
            List.for_all (fun c -> Array.exists (fun x -> x = c) icols) needed
          in
          Some
            { c_score = score;
              c_access =
                Index_scan { index = idx; eq; lo; hi; refine_lo; refine_hi;
                             covering };
              c_marks = !eq_marks @ range_marks }
        end)
      (Relation.Table.indexes tbl)
  in
  List.fold_left
    (fun acc c ->
      match acc with
      | Some best when best.c_score >= c.c_score -> acc
      | _ -> Some c)
    None candidates

let compile_bound { e; inclusive } = { Ir.v = compile_value e; inclusive }

let compile_access = function
  | Seq_scan -> Ir.Seq_scan
  | Index_scan { index; eq; lo; hi; refine_lo; refine_hi; covering } ->
      Ir.Index_scan
        { index;
          eq = List.map compile_value eq;
          lo = Option.map compile_bound lo;
          hi = Option.map compile_bound hi;
          refine_lo = Option.map compile_bound refine_lo;
          refine_hi = Option.map compile_bound refine_hi;
          covering }

let plan_branch session (select : Ast.select) =
  let conjuncts =
    match select.Ast.where with None -> [] | Some w -> split_and w
  in
  (* Consumed conjuncts are tracked by PHYSICAL identity: two
     structurally equal conjuncts (e.g. a duplicated predicate, or two
     identical sub-scans' join conditions) are distinct list elements
     and must be consumed independently — a structural key (hashing
     [Obj.repr]) would conflate them, silently dropping one from the
     residual filters. Conjunct lists are tiny, so a linear scan is
     fine. *)
  let consumed : Ast.expr list ref = ref [] in
  let is_consumed c = List.memq c !consumed in
  let usable c = not (is_consumed c) in
  let consume c = if not (is_consumed c) then consumed := c :: !consumed in
  let resolve (tname, alias_opt) =
    let alias = Option.value ~default:tname alias_opt in
    match Relation.Catalog.find_table session.catalog tname with
    | Some tbl -> (alias, Base tbl, Relation.Table.columns tbl)
    | None -> (
        match Hashtbl.find_opt session.collections tname with
        | Some (cols, _) -> (alias, Collection tname, cols)
        | None -> fail "unknown table %s" tname)
  in
  let items = List.map resolve select.Ast.froms in
  (* Greedy join ordering: at each position take the item with the best
     access path given what is already bound; transient collections rank
     just above an unindexed scan, so they become the outer loops of the
     Fig. 10 plan shape. *)
  let ordered = ref [] and bound = ref [] in
  let remaining = ref items in
  while !remaining <> [] do
    let scored =
      List.map
        (fun ((alias, source, columns) as item) ->
          match source with
          | Collection _ -> (1, item, None)
          | Base tbl -> (
              match
                best_index_access select tbl alias columns ~outer:!bound
                  ~usable conjuncts
              with
              | Some cand -> (cand.c_score, item, Some cand)
              | None -> (0, item, None)))
        !remaining
    in
    let best =
      List.fold_left
        (fun acc (score, _, _ as entry) ->
          match acc with
          | Some (bs, _, _) when bs >= score -> acc
          | _ -> Some entry)
        None scored
    in
    match best with
    | None -> assert false
    | Some (_, ((alias, source, columns) as item), cand) ->
        let access =
          match cand with
          | Some c ->
              List.iter consume c.c_marks;
              c.c_access
          | None -> Seq_scan
        in
        ordered := (alias, source, columns, access) :: !ordered;
        bound := !bound @ [ (alias, columns) ];
        remaining := List.filter (fun i -> i != item) !remaining
  done;
  let ordered = List.rev !ordered in
  (* Attach each unconsumed conjunct to the earliest step where all its
     aliases are bound. *)
  let alias_order = List.map (fun (a, _, _, _) -> a) ordered in
  let step_filters = Array.make (List.length ordered) [] in
  List.iter
    (fun conj ->
      if not (is_consumed conj) then begin
        let aliases = expr_aliases [] conj in
        let position a =
          let rec go i = function
            | [] -> fail "unknown alias %s in WHERE" a
            | x :: rest -> if x = a then i else go (i + 1) rest
          in
          go 0 alias_order
        in
        let slot =
          List.fold_left (fun acc a -> max acc (position a)) 0 aliases
        in
        step_filters.(slot) <- step_filters.(slot) @ [ conj ]
      end)
    conjuncts;
  let steps =
    List.mapi
      (fun i (alias, source, columns, access) ->
        let columns =
          match access with
          | Index_scan { index; covering = true; _ } ->
              Relation.Table.Index.columns index
          | Index_scan _ | Seq_scan -> columns
        in
        let source =
          match source with
          | Base tbl -> Ir.Base tbl
          | Collection name -> Ir.Collection name
        in
        Ir.mk_step ~alias ~source ~columns
          ~filters:(List.map compile_pred step_filters.(i))
          (compile_access access))
      ordered
  in
  { Ir.steps;
    projections = List.map compile_proj select.Ast.projections;
    group_by = select.Ast.group_by }

let compile_query session (q : Ast.query) : Ir.plan =
  incr plan_calls;
  { Ir.branches = List.map (plan_branch session) q.Ast.branches;
    order_by =
      List.map
        (fun { Ast.key; descending } -> { Ir.key; descending })
        q.Ast.order_by;
    limit = q.Ast.limit }

(* ---------------- execution via the shared executor ---------------- *)

(* Per-statement snapshot: implicit transactions read-committed (fresh
   high each statement), pinned ones snapshot-stable — [Txn.snapshot]
   resolves either way at ctx construction time. *)
let vis_of session =
  match active_txn session with
  | None -> Ir.no_vis
  | Some t ->
      let mgr = Relation.Txn.manager t in
      let snap = Relation.Txn.snapshot t in
      fun name -> Relation.Txn.view mgr snap name

let ctx session binds =
  { Ir.binds;
    collection = (fun name -> Hashtbl.find_opt session.collections name);
    vis = vis_of session }

let run_plan session binds plan =
  let out = Executor.run (ctx session binds) plan in
  Rows { columns = out.Executor.columns; rows = out.Executor.rows }

(* ---------------- statement dispatch ---------------- *)

let stmt_kind = function
  | Ast.Create_table _ -> "CREATE TABLE"
  | Ast.Create_index _ -> "CREATE INDEX"
  | Ast.Insert _ -> "INSERT"
  | Ast.Update _ -> "UPDATE"
  | Ast.Delete _ -> "DELETE"
  | Ast.Select _ -> "SELECT"
  | Ast.Explain _ -> "EXPLAIN"

let rec run_stmt session binds = function
  | Ast.Create_table (name, cols) ->
      ignore
        (Relation.Catalog.create_table session.catalog ~name ~columns:cols);
      invalidate_plans session;
      Done (Printf.sprintf "table %s created" name)
  | Ast.Create_index (iname, tname, cols) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          ignore (Relation.Table.create_index tbl ~name:iname ~columns:cols);
          invalidate_plans session;
          Done (Printf.sprintf "index %s created" iname))
  | Ast.Insert (tname, values) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let row =
            Array.of_list
              (List.map
                 (fun e -> Executor.eval_value binds [] (compile_value e))
                 values)
          in
          if Array.length row <> Array.length (Relation.Table.columns tbl)
          then fail "INSERT arity mismatch for %s" tname;
          (match active_txn session with
          | Some t -> Relation.Txn.buffer_insert t ~table:tbl ~tname row
          | None -> ignore (Relation.Table.insert tbl row));
          Done "1 row inserted")
  | Ast.Delete (tname, where) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let columns = Relation.Table.columns tbl in
          let where = Option.map compile_pred where in
          let pred row =
            match where with
            | None -> true
            | Some w ->
                Executor.eval_pred binds [ (tname, (columns, row)) ] w
          in
          match active_txn session with
          | None ->
              let n = Relation.Table.delete_where tbl pred in
              Done (Printf.sprintf "%d rows deleted" n)
          | Some t ->
              let mgr = Relation.Txn.manager t in
              let snap = Relation.Txn.snapshot t in
              let seen = Relation.Txn.snapshot_high snap in
              let n = ref 0 in
              let victims = ref [] in
              Relation.Table.iter tbl (fun rowid row ->
                  if
                    Relation.Txn.rowid_visible mgr snap tname rowid
                    && pred row
                  then victims := (rowid, row) :: !victims);
              (* Rows a newer commit already deleted but this snapshot
                 still sees: buffering them surfaces the write-write
                 race as a typed Conflict at commit. *)
              List.iter
                (fun (rowid, row) -> if pred row then victims := (rowid, row) :: !victims)
                (Relation.Txn.dead_visible mgr snap tname);
              List.iter
                (fun (rowid, row) ->
                  Relation.Txn.buffer_delete t ~table:tbl ~tname ~rowid ~row
                    ~seen;
                  incr n)
                !victims;
              (* Own uncommitted inserts never touch the shared heap. *)
              let removed = Relation.Txn.remove_pending_inserts t tname pred in
              Done (Printf.sprintf "%d rows deleted" (!n + removed)))
  | Ast.Update (tname, sets, where) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let columns = Relation.Table.columns tbl in
          let set_positions =
            List.map
              (fun (c, e) ->
                match Executor.col_position columns c with
                | Some i -> (i, compile_value e)
                | None -> fail "unknown column %s in UPDATE" c)
              sets
          in
          let where = Option.map compile_pred where in
          let matches row =
            match where with
            | None -> true
            | Some w ->
                Executor.eval_pred binds [ (tname, (columns, row)) ] w
          in
          let updated row =
            let bound = [ (tname, (columns, row)) ] in
            let row' = Array.copy row in
            List.iter
              (fun (i, v) -> row'.(i) <- Executor.eval_value binds bound v)
              set_positions;
            row'
          in
          match active_txn session with
          | None ->
              let victims = ref [] in
              Relation.Table.iter tbl (fun rowid row ->
                  if matches row then
                    victims := (rowid, updated row) :: !victims);
              List.iter
                (fun (rowid, row') ->
                  ignore (Relation.Table.update_row tbl rowid row'))
                !victims;
              Done (Printf.sprintf "%d rows updated" (List.length !victims))
          | Some t ->
              let mgr = Relation.Txn.manager t in
              let snap = Relation.Txn.snapshot t in
              let seen = Relation.Txn.snapshot_high snap in
              let n = ref 0 in
              let victims = ref [] in
              Relation.Table.iter tbl (fun rowid row ->
                  if
                    Relation.Txn.rowid_visible mgr snap tname rowid
                    && matches row
                  then victims := (rowid, row) :: !victims);
              List.iter
                (fun (rowid, row) ->
                  if matches row then victims := (rowid, row) :: !victims)
                (Relation.Txn.dead_visible mgr snap tname);
              List.iter
                (fun (rowid, row) ->
                  Relation.Txn.buffer_delete t ~table:tbl ~tname ~rowid ~row
                    ~seen;
                  Relation.Txn.buffer_insert t ~table:tbl ~tname (updated row);
                  incr n)
                !victims;
              (* Drain matching pending inserts fully BEFORE re-buffering
                 their updated forms, or an update whose result still
                 matches the predicate would loop. *)
              let rec drain acc =
                match Relation.Txn.take_pending_insert t tname matches with
                | None -> List.rev acc
                | Some row -> drain (row :: acc)
              in
              List.iter
                (fun row ->
                  Relation.Txn.buffer_insert t ~table:tbl ~tname (updated row);
                  incr n)
                (drain []);
              Done (Printf.sprintf "%d rows updated" !n))
  | Ast.Select q -> run_plan session binds (compile_query session q)
  | Ast.Explain { analyze; target } -> run_explain session binds ~analyze target

and run_explain session binds ~analyze = function
  | Ast.Select q ->
      let plan = compile_query session q in
      Done (Exec.Planner.explain_compiled ~analyze (ctx session binds) plan)
  | target ->
      if not analyze then Done (Exec.Render.statement_note (stmt_kind target))
      else begin
        let result, ms, io =
          Executor.measured (fun () -> run_stmt session binds target)
        in
        let summary =
          match result with
          | Done msg -> msg
          | Rows { rows; _ } -> Printf.sprintf "%d rows" (List.length rows)
        in
        Done
          (Exec.Render.analyzed_statement ~kind:(stmt_kind target) ~summary
             ~io ~ms)
      end

let counted session stmt binds =
  let r =
    Obs.Trace.with_span "sql.stmt" ~info:(stmt_kind stmt) (fun () ->
        guard (fun () -> run_stmt session binds stmt))
  in
  session.statements <- session.statements + 1;
  r

(* ---------------- the plan cache ---------------- *)

(* Compile the normalized key text (valid SQL whose literals are now
   :__pN parameter slots). [None] sends the statement down the uncached
   path, which reports parse errors against the original text. *)
let compile_key session key =
  match parse key with
  | Ast.Select q -> Some (compile_query session q)
  | _ -> None
  | exception Parser.Error _ -> None
  | exception Lexer.Error _ -> None

(* Cached-plan lookup for a raw statement text. The hot path — an
   identical statement seen before — is two hashtable probes: the raw
   memo yields the normalized key and literal values without lexing, and
   the plan table yields the compiled plan without parsing or planning. *)
let lookup_cached session src =
  if not session.cache_enabled then None
  else begin
    sync_mem_generation session;
    let cache = session.cache in
    match Exec.Plan_cache.find_raw cache src with
    | Some (key, params) -> (
        match Exec.Plan_cache.find cache key with
        | Some plan -> Some (plan, params)
        | None -> (
            (* plan evicted or invalidated; the memo is still right *)
            match compile_key session key with
            | Some plan ->
                Exec.Plan_cache.add cache key plan;
                Some (plan, params)
            | None -> None))
    | None -> (
        match Normalize.select src with
        | None -> None
        | Some { Normalize.key; params } -> (
            match Exec.Plan_cache.find cache key with
            | Some plan ->
                Exec.Plan_cache.add_raw cache src key params;
                Some (plan, params)
            | None -> (
                match compile_key session key with
                | Some plan ->
                    Exec.Plan_cache.add cache key plan;
                    Exec.Plan_cache.add_raw cache src key params;
                    Some (plan, params)
                | None -> None)))
  end

(* ---------------- prepared statements ---------------- *)

(* Host variables in syntactic order: the positional parameters of
   EXECUTE bind to them first-appearance-first. *)
let host_vars stmt =
  let acc = ref [] in
  let note h = if not (List.mem h !acc) then acc := h :: !acc in
  let rec walk = function
    | Ast.Int _ | Ast.Col _ -> ()
    | Ast.Host h -> note h
    | Ast.Cmp (_, a, b) | Ast.And (a, b) | Ast.Or (a, b) ->
        walk a;
        walk b
    | Ast.Between (e, lo, hi) ->
        walk e;
        walk lo;
        walk hi
    | Ast.Not e -> walk e
  in
  let rec walk_stmt = function
    | Ast.Create_table _ | Ast.Create_index _ -> ()
    | Ast.Insert (_, vs) -> List.iter walk vs
    | Ast.Update (_, sets, w) ->
        List.iter (fun (_, e) -> walk e) sets;
        Option.iter walk w
    | Ast.Delete (_, w) -> Option.iter walk w
    | Ast.Select q ->
        List.iter (fun (s : Ast.select) -> Option.iter walk s.Ast.where)
          q.Ast.branches
    | Ast.Explain { target; _ } -> walk_stmt target
  in
  walk_stmt stmt;
  List.rev !acc

type prepared = {
  p_stmt : Ast.stmt;
  p_params : string list;
  mutable p_plan : Ir.plan option; (* compiled SELECT *)
  mutable p_gen : int; (* generation the plan was compiled under *)
}

let prepare session src =
  let stmt = parse src in
  let p_plan =
    match stmt with
    | Ast.Select q -> Some (compile_query session q)
    | _ -> None
  in
  { p_stmt = stmt; p_params = host_vars stmt; p_plan;
    p_gen = session.generation }

let prepared_params p = p.p_params
let prepared_kind p = stmt_kind p.p_stmt

(* A prepared SELECT recompiles if DDL or a collection schema change
   invalidated plans since it was compiled. *)
let prepared_plan session p =
  sync_mem_generation session;
  match p.p_stmt with
  | Ast.Select q -> (
      match p.p_plan with
      | Some plan when p.p_gen = session.generation -> Some plan
      | _ ->
          let plan = compile_query session q in
          p.p_plan <- Some plan;
          p.p_gen <- session.generation;
          Some plan)
  | _ -> None

let execute_prepared session p args =
  let expected = List.length p.p_params in
  let got = List.length args in
  if got <> expected then
    fail "EXECUTE arity mismatch: expected %d parameters, got %d" expected
      got;
  let binds = List.combine p.p_params args in
  match prepared_plan session p with
  | Some plan ->
      let r =
        Obs.Trace.with_span "sql.stmt" ~info:"SELECT" (fun () ->
            guard (fun () -> run_plan session binds plan))
      in
      session.statements <- session.statements + 1;
      r
  | None -> counted session p.p_stmt binds

(* ---------------- entry points ---------------- *)

let exec ?(binds = []) session src =
  match lookup_cached session src with
  | Some (plan, params) ->
      let r =
        Obs.Trace.with_span "sql.stmt" ~info:"SELECT" (fun () ->
            guard (fun () -> run_plan session (binds @ params) plan))
      in
      session.statements <- session.statements + 1;
      r
  | None -> counted session (parse src) binds

let exec_script ?(binds = []) session src =
  List.map (fun stmt -> counted session stmt binds) (Parser.parse_script src)

let query ?binds session src =
  match exec ?binds session src with
  | Rows { rows; _ } -> rows
  | Done _ -> fail "query: statement did not return rows"

let explain ?(binds = []) session src =
  ignore binds;
  match parse src with
  | Ast.Select q ->
      guard (fun () -> Exec.Render.plan (compile_query session q).Ir.branches)
  | _ -> fail "explain: only SELECT is supported"

let explain_text ?(binds = []) ?(analyze = false) session src =
  let r =
    Obs.Trace.with_span "sql.stmt" ~info:"EXPLAIN" (fun () ->
        guard (fun () -> run_explain session binds ~analyze (parse src)))
  in
  session.statements <- session.statements + 1;
  match r with Done s -> s | Rows _ -> assert false
