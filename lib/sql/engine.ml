exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type session = {
  catalog : Relation.Catalog.t;
  collections : (string, string array * int array list) Hashtbl.t;
  mutable statements : int;
}

let session catalog = { catalog; collections = Hashtbl.create 8; statements = 0 }

let statements s = s.statements

let catalog s = s.catalog

let set_collection s name ~columns rows =
  Hashtbl.replace s.collections name (Array.of_list columns, rows)

let clear_collection s name = Hashtbl.remove s.collections name

type result =
  | Done of string
  | Rows of { columns : string list; rows : int array list }

(* ---------------- environments and evaluation ---------------- *)

type env = {
  binds : (string * int) list;
  (* alias -> (visible columns, current row) *)
  bound : (string * (string array * int array)) list;
}

let col_position columns c =
  let rec go i =
    if i >= Array.length columns then None
    else if columns.(i) = c then Some i
    else go (i + 1)
  in
  go 0

let lookup_col env alias col =
  match alias with
  | Some a -> (
      match List.assoc_opt a env.bound with
      | None -> fail "unknown alias %s" a
      | Some (columns, row) -> (
          match col_position columns col with
          | Some i -> row.(i)
          | None -> fail "alias %s has no column %s" a col))
  | None -> (
      let hits =
        List.filter_map
          (fun (_, (columns, row)) ->
            Option.map (fun i -> row.(i)) (col_position columns col))
          env.bound
      in
      match hits with
      | [ v ] -> v
      | [] -> fail "unknown column %s" col
      | _ -> fail "ambiguous column %s" col)

let rec eval_value env = function
  | Ast.Int n -> n
  | Ast.Host h -> (
      match List.assoc_opt h env.binds with
      | Some v -> v
      | None -> fail "missing host variable :%s" h)
  | Ast.Col (alias, col) -> lookup_col env alias col
  | Ast.Cmp _ | Ast.Between _ | Ast.And _ | Ast.Or _ | Ast.Not _ ->
      fail "boolean expression used as a value"

and eval_bool env = function
  | Ast.Cmp (op, a, b) ->
      let va = eval_value env a and vb = eval_value env b in
      (match op with
      | Ast.Eq -> va = vb
      | Ast.Ne -> va <> vb
      | Ast.Lt -> va < vb
      | Ast.Le -> va <= vb
      | Ast.Gt -> va > vb
      | Ast.Ge -> va >= vb)
  | Ast.Between (e, lo, hi) ->
      let v = eval_value env e in
      eval_value env lo <= v && v <= eval_value env hi
  | Ast.And (a, b) -> eval_bool env a && eval_bool env b
  | Ast.Or (a, b) -> eval_bool env a || eval_bool env b
  | Ast.Not e -> not (eval_bool env e)
  | Ast.Int _ | Ast.Host _ | Ast.Col _ ->
      fail "value expression used as a predicate"

(* Aliases referenced by an expression. *)
let rec expr_aliases acc = function
  | Ast.Col (Some a, _) -> if List.mem a acc then acc else a :: acc
  | Ast.Col (None, _) | Ast.Int _ | Ast.Host _ -> acc
  | Ast.Cmp (_, a, b) -> expr_aliases (expr_aliases acc a) b
  | Ast.Between (e, lo, hi) ->
      expr_aliases (expr_aliases (expr_aliases acc e) lo) hi
  | Ast.And (a, b) | Ast.Or (a, b) -> expr_aliases (expr_aliases acc a) b
  | Ast.Not e -> expr_aliases acc e

let rec split_and = function
  | Ast.And (a, b) -> split_and a @ split_and b
  | e -> [ e ]

(* ---------------- plans ---------------- *)

type source =
  | Base of Relation.Table.t
  | Collection of string (* resolved from the session at run time *)

type bound_expr = { e : Ast.expr; inclusive : bool }

type access =
  | Seq_scan
  | Index_scan of {
      index : Relation.Table.Index.t;
      eq : Ast.expr list; (* probes for the leading key columns *)
      lo : bound_expr option; (* range on the next key column *)
      hi : bound_expr option;
      (* Start/stop-key refinement on the column after the range column
         (the paper's Sec. 4.3 lemma: "i.upper >= :lower" tightens the
         start key of the BETWEEN scan). The conjunct stays in the
         residual filter; the refinement only skips entries. *)
      refine_lo : bound_expr option;
      refine_hi : bound_expr option;
      covering : bool; (* no base-table fetch needed *)
    }

type step = {
  alias : string;
  source : source;
  columns : string array; (* columns the binding exposes *)
  access : access;
  filters : Ast.expr list; (* residual conjuncts evaluated here *)
  mutable seen : int; (* rows emitted (post-filter) in the last run *)
}

type branch_plan = {
  steps : step list;
  projections : Ast.projection list;
  group_by : (string option * string) list;
}

(* Columns of [alias] referenced anywhere in the branch. [None]-alias
   column references are conservatively attributed to every alias that
   has such a column. *)
let referenced_columns select alias columns =
  let refs = ref [] in
  let note c = if not (List.mem c !refs) then refs := c :: !refs in
  let rec walk = function
    | Ast.Col (Some a, c) -> if a = alias then note c
    | Ast.Col (None, c) -> if Array.exists (fun x -> x = c) columns then note c
    | Ast.Int _ | Ast.Host _ -> ()
    | Ast.Cmp (_, a, b) ->
        walk a;
        walk b
    | Ast.Between (e, lo, hi) ->
        walk e;
        walk lo;
        walk hi
    | Ast.And (a, b) | Ast.Or (a, b) ->
        walk a;
        walk b
    | Ast.Not e -> walk e
  in
  Option.iter walk select.Ast.where;
  List.iter (fun (a, c) -> walk (Ast.Col (a, c))) select.Ast.group_by;
  List.iter
    (function
      | Ast.Star -> Array.iter note columns
      | Ast.Count_star -> ()
      | Ast.Proj_col (Some a, c) | Ast.Agg (_, (Some a, c)) ->
          if a = alias then note c
      | Ast.Proj_col (None, c) | Ast.Agg (_, (None, c)) ->
          if Array.exists (fun x -> x = c) columns then note c)
    select.Ast.projections;
  !refs

(* Does the expression only depend on host variables, constants, and the
   already-bound aliases? Unqualified columns resolve against the bound
   aliases' schemas. *)
let outer_only bound_aliases e =
  let rec ok = function
    | Ast.Int _ | Ast.Host _ -> true
    | Ast.Col (Some a, _) -> List.exists (fun (n, _) -> n = a) bound_aliases
    | Ast.Col (None, c) ->
        List.exists
          (fun (_, cols) -> Array.exists (fun x -> x = c) cols)
          bound_aliases
    | Ast.Cmp (_, a, b) -> ok a && ok b
    | Ast.Between (x, lo, hi) -> ok x && ok lo && ok hi
    | Ast.And (a, b) | Ast.Or (a, b) -> ok a && ok b
    | Ast.Not x -> ok x
  in
  ok e

(* Is [e] a reference to column [c] of [alias] (qualified or not)? *)
let is_col_of alias columns c = function
  | Ast.Col (Some a, x) -> a = alias && x = c
  | Ast.Col (None, x) -> x = c && Array.exists (fun y -> y = c) columns
  | _ -> false

type candidate = {
  c_score : int;
  c_access : access;
  c_marks : Ast.expr list; (* conjuncts consumed by the access path *)
}

(* Collect the lo/hi bounds available on column [c] from [conjuncts];
   each kind is taken at most once. *)
let range_bounds_on alias columns c ~outer ~usable conjuncts =
  let lo = ref None and hi = ref None and marks = ref [] in
  List.iter
    (fun conj ->
      if usable conj then
        match conj with
        | Ast.Cmp (op, a, b) when is_col_of alias columns c a && outer_only outer b
          -> (
            match op with
            | Ast.Ge when !lo = None ->
                lo := Some { e = b; inclusive = true };
                marks := conj :: !marks
            | Ast.Gt when !lo = None ->
                lo := Some { e = b; inclusive = false };
                marks := conj :: !marks
            | Ast.Le when !hi = None ->
                hi := Some { e = b; inclusive = true };
                marks := conj :: !marks
            | Ast.Lt when !hi = None ->
                hi := Some { e = b; inclusive = false };
                marks := conj :: !marks
            | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> ())
        | Ast.Cmp (op, a, b) when is_col_of alias columns c b && outer_only outer a
          -> (
            (* mirrored: e op col *)
            match op with
            | Ast.Le when !lo = None ->
                lo := Some { e = a; inclusive = true };
                marks := conj :: !marks
            | Ast.Lt when !lo = None ->
                lo := Some { e = a; inclusive = false };
                marks := conj :: !marks
            | Ast.Ge when !hi = None ->
                hi := Some { e = a; inclusive = true };
                marks := conj :: !marks
            | Ast.Gt when !hi = None ->
                hi := Some { e = a; inclusive = false };
                marks := conj :: !marks
            | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> ())
        | Ast.Between (e, b_lo, b_hi)
          when is_col_of alias columns c e && outer_only outer b_lo
               && outer_only outer b_hi ->
            if !lo = None && !hi = None then begin
              lo := Some { e = b_lo; inclusive = true };
              hi := Some { e = b_hi; inclusive = true };
              marks := conj :: !marks
            end
        | _ -> ())
    conjuncts;
  (!lo, !hi, !marks)

(* Best index access for a base table given the bound outer aliases. *)
let best_index_access select tbl alias columns ~outer ~usable conjuncts =
  let candidates =
    List.filter_map
      (fun idx ->
        let icols = Relation.Table.Index.columns idx in
        (* longest equality prefix *)
        let eq = ref [] and eq_marks = ref [] in
        let pos = ref 0 in
        let continue = ref true in
        while !continue && !pos < Array.length icols do
          let c = icols.(!pos) in
          match
            List.find_opt
              (fun conj ->
                usable conj
                &&
                match conj with
                | Ast.Cmp (Ast.Eq, a, b) ->
                    (is_col_of alias columns c a && outer_only outer b)
                    || (is_col_of alias columns c b && outer_only outer a)
                | _ -> false)
              conjuncts
          with
          | Some (Ast.Cmp (Ast.Eq, a, b) as conj) ->
              let probe = if is_col_of alias columns c a then b else a in
              eq := probe :: !eq;
              eq_marks := conj :: !eq_marks;
              incr pos
          | _ -> continue := false
        done;
        let eq = List.rev !eq in
        (* range on the next key column *)
        let lo, hi, range_marks =
          if !pos < Array.length icols then
            range_bounds_on alias columns icols.(!pos) ~outer ~usable conjuncts
          else (None, None, [])
        in
        (* start/stop-key refinement on the column after the range; only
           meaningful when a range (or eq prefix) was found, and the
           conjunct is NOT consumed — it stays as a filter. *)
        let refine_lo, refine_hi =
          let rpos = !pos + if lo <> None || hi <> None then 1 else 0 in
          if rpos > !pos && rpos < Array.length icols then begin
            let rl, rh, _ =
              range_bounds_on alias columns icols.(rpos) ~outer ~usable
                conjuncts
            in
            (rl, rh)
          end
          else (None, None)
        in
        let score =
          (4 * List.length eq)
          + (if lo <> None then 2 else 0)
          + (if hi <> None then 2 else 0)
          + (if refine_lo <> None then 1 else 0)
          + if refine_hi <> None then 1 else 0
        in
        if score = 0 then None
        else begin
          let needed = referenced_columns select alias columns in
          let covering =
            List.for_all (fun c -> Array.exists (fun x -> x = c) icols) needed
          in
          Some
            { c_score = score;
              c_access =
                Index_scan { index = idx; eq; lo; hi; refine_lo; refine_hi;
                             covering };
              c_marks = !eq_marks @ range_marks }
        end)
      (Relation.Table.indexes tbl)
  in
  List.fold_left
    (fun acc c ->
      match acc with
      | Some best when best.c_score >= c.c_score -> acc
      | _ -> Some c)
    None candidates

let plan_branch session (select : Ast.select) =
  let conjuncts =
    match select.Ast.where with None -> [] | Some w -> split_and w
  in
  (* Consumed conjuncts are tracked by PHYSICAL identity: two
     structurally equal conjuncts (e.g. a duplicated predicate, or two
     identical sub-scans' join conditions) are distinct list elements
     and must be consumed independently — a structural key (hashing
     [Obj.repr]) would conflate them, silently dropping one from the
     residual filters. Conjunct lists are tiny, so a linear scan is
     fine. *)
  let consumed : Ast.expr list ref = ref [] in
  let is_consumed c = List.memq c !consumed in
  let usable c = not (is_consumed c) in
  let consume c = if not (is_consumed c) then consumed := c :: !consumed in
  let resolve (tname, alias_opt) =
    let alias = Option.value ~default:tname alias_opt in
    match Relation.Catalog.find_table session.catalog tname with
    | Some tbl -> (alias, Base tbl, Relation.Table.columns tbl)
    | None -> (
        match Hashtbl.find_opt session.collections tname with
        | Some (cols, _) -> (alias, Collection tname, cols)
        | None -> fail "unknown table %s" tname)
  in
  let items = List.map resolve select.Ast.froms in
  (* Greedy join ordering: at each position take the item with the best
     access path given what is already bound; transient collections rank
     just above an unindexed scan, so they become the outer loops of the
     Fig. 10 plan shape. *)
  let ordered = ref [] and bound = ref [] in
  let remaining = ref items in
  while !remaining <> [] do
    let scored =
      List.map
        (fun ((alias, source, columns) as item) ->
          match source with
          | Collection _ -> (1, item, None)
          | Base tbl -> (
              match
                best_index_access select tbl alias columns ~outer:!bound
                  ~usable conjuncts
              with
              | Some cand -> (cand.c_score, item, Some cand)
              | None -> (0, item, None)))
        !remaining
    in
    let best =
      List.fold_left
        (fun acc (score, _, _ as entry) ->
          match acc with
          | Some (bs, _, _) when bs >= score -> acc
          | _ -> Some entry)
        None scored
    in
    match best with
    | None -> assert false
    | Some (_, ((alias, source, columns) as item), cand) ->
        let access =
          match cand with
          | Some c ->
              List.iter consume c.c_marks;
              c.c_access
          | None -> Seq_scan
        in
        ordered := (alias, source, columns, access) :: !ordered;
        bound := !bound @ [ (alias, columns) ];
        remaining := List.filter (fun i -> i != item) !remaining
  done;
  let ordered = List.rev !ordered in
  (* Attach each unconsumed conjunct to the earliest step where all its
     aliases are bound. *)
  let alias_order = List.map (fun (a, _, _, _) -> a) ordered in
  let step_filters = Array.make (List.length ordered) [] in
  List.iter
    (fun conj ->
      if not (is_consumed conj) then begin
        let aliases = expr_aliases [] conj in
        let position a =
          let rec go i = function
            | [] -> fail "unknown alias %s in WHERE" a
            | x :: rest -> if x = a then i else go (i + 1) rest
          in
          go 0 alias_order
        in
        let slot =
          List.fold_left (fun acc a -> max acc (position a)) 0 aliases
        in
        step_filters.(slot) <- step_filters.(slot) @ [ conj ]
      end)
    conjuncts;
  let steps =
    List.mapi
      (fun i (alias, source, columns, access) ->
        let columns =
          match access with
          | Index_scan { index; covering = true; _ } ->
              Relation.Table.Index.columns index
          | Index_scan _ | Seq_scan -> columns
        in
        { alias; source; columns; access; filters = step_filters.(i);
          seen = 0 })
      ordered
  in
  { steps; projections = select.Ast.projections;
    group_by = select.Ast.group_by }

(* ---------------- execution ---------------- *)

let run_step session env step (emit : env -> unit) =
  let bind columns row =
    { env with bound = env.bound @ [ (step.alias, (columns, row)) ] }
  in
  let visit columns row =
    let e2 = bind columns row in
    if List.for_all (fun f -> eval_bool e2 f) step.filters then begin
      step.seen <- step.seen + 1;
      emit e2
    end
  in
  match (step.source, step.access) with
  | Collection name, _ -> (
      match Hashtbl.find_opt session.collections name with
      | None -> fail "collection %s disappeared" name
      | Some (columns, rows) -> List.iter (fun r -> visit columns r) rows)
  | Base tbl, Seq_scan ->
      (* Streaming scan: the heap cursor behind Iter.heap_scan holds one
         page of rows at a time, so a sequential scan of any size runs
         in constant memory. The appended rowid column is dropped. *)
      let columns = Relation.Table.columns tbl in
      Relation.Iter.iter
        (fun r -> visit columns (Array.sub r 0 (Array.length r - 1)))
        (Relation.Iter.heap_scan tbl)
  | Base tbl, Index_scan { index; eq; lo; hi; refine_lo; refine_hi; covering }
    ->
      let tree = Relation.Table.Index.tree index in
      let width = Btree.key_width tree in
      let eq_vals = List.map (eval_value env) eq in
      let k = List.length eq_vals in
      let lo_key = Array.make width min_int in
      let hi_key = Array.make width max_int in
      List.iteri
        (fun i v ->
          lo_key.(i) <- v;
          hi_key.(i) <- v)
        eq_vals;
      (match lo with
      | Some { e; inclusive } ->
          lo_key.(k) <- (eval_value env e + if inclusive then 0 else 1)
      | None -> ());
      (match hi with
      | Some { e; inclusive } ->
          hi_key.(k) <- (eval_value env e - if inclusive then 0 else 1)
      | None -> ());
      let rpos = k + if lo <> None || hi <> None then 1 else 0 in
      if rpos > k && rpos < width then begin
        (match refine_lo with
        | Some { e; inclusive } ->
            lo_key.(rpos) <- (eval_value env e + if inclusive then 0 else 1)
        | None -> ());
        match refine_hi with
        | Some { e; inclusive } ->
            hi_key.(rpos) <- (eval_value env e - if inclusive then 0 else 1)
        | None -> ()
      end;
      Btree.iter_range tree ~lo:lo_key ~hi:hi_key (fun key ->
          if covering then
            visit
              (Relation.Table.Index.columns index)
              (Array.sub key 0 (Array.length key - 1))
          else
            let rowid = key.(Array.length key - 1) in
            match Relation.Table.fetch tbl rowid with
            | Some row -> visit (Relation.Table.columns tbl) row
            | None -> ())

let run_branch session binds plan =
  Obs.Trace.with_span "sql.branch"
    ~info:(String.concat "," (List.map (fun s -> s.alias) plan.steps))
  @@ fun () ->
  let rows = ref [] in
  let count = ref 0 in
  let rec loop env = function
    | [] ->
        incr count;
        let row =
          List.concat_map
            (function
              | Ast.Star ->
                  List.concat_map
                    (fun (_, (_, row)) -> Array.to_list row)
                    env.bound
              | Ast.Count_star -> []
              | Ast.Agg _ -> fail "aggregate outside an aggregate query"
              | Ast.Proj_col (alias, c) -> [ lookup_col env alias c ])
            plan.projections
        in
        rows := Array.of_list row :: !rows
    | step :: rest -> run_step session env step (fun e2 -> loop e2 rest)
  in
  loop { binds; bound = [] } plan.steps;
  (List.rev !rows, !count)

let projection_columns plan =
  List.concat_map
    (function
      | Ast.Star -> List.concat_map (fun s -> Array.to_list s.columns) plan.steps
      | Ast.Count_star -> [ "count" ]
      | Ast.Agg (a, (_, c)) ->
          [ Printf.sprintf "%s(%s)"
              (String.lowercase_ascii (Ast.aggregate_to_string a))
              c ]
      | Ast.Proj_col (_, c) -> [ c ])
    plan.projections

let is_aggregate_projection = function
  | Ast.Count_star | Ast.Agg _ -> true
  | Ast.Star | Ast.Proj_col _ -> false

(* ---------------- cardinality & I/O estimation ----------------

   A self-contained, Sec. 5-style estimator for EXPLAIN: per-table
   equi-width histograms and distinct counts feed selectivities; index
   probes cost one root-to-leaf descent plus the matching leaf span
   (plus a rowid fetch per row when the index does not cover); a
   sequential scan costs the heap's page count. Transient collections
   have exact, known cardinality and cost no I/O — they are the
   leftNodes/rightNodes of the paper's Fig. 9 plan, so the predicted
   outer cardinality is exactly the RI-tree node count. *)

module Estimate = struct
  let hbuckets = 32

  type col = {
    h_lo : int;
    h_hi : int;
    h_counts : int array;
    h_total : int;
    h_distinct : int;
  }

  (* Bound arithmetic in floats: columns may hold min_int/max_int
     sentinels, and native-int spans would wrap. *)
  let fspan lo hi = Float.max 1.0 (float_of_int hi -. float_of_int lo +. 1.0)

  let build_col values n distinct =
    match values with
    | [] ->
        { h_lo = 0; h_hi = 0; h_counts = Array.make hbuckets 0; h_total = 0;
          h_distinct = 0 }
    | v :: _ ->
        let lo = List.fold_left min v values in
        let hi = List.fold_left max v values in
        let counts = Array.make hbuckets 0 in
        let span = fspan lo hi in
        List.iter
          (fun x ->
            let b =
              int_of_float
                ((float_of_int x -. float_of_int lo)
                 *. float_of_int hbuckets /. span)
            in
            let b = min (hbuckets - 1) (max 0 b) in
            counts.(b) <- counts.(b) + 1)
          values;
        { h_lo = lo; h_hi = hi; h_counts = counts; h_total = n;
          h_distinct = distinct }

  type table_stats = {
    t_rows : int;
    t_pages : int;
    t_cols : (string * col) list;
  }

  let analyze_table tbl =
    let columns = Relation.Table.columns tbl in
    let ncols = Array.length columns in
    let vals = Array.make ncols [] in
    let distinct = Array.init ncols (fun _ -> Hashtbl.create 64) in
    let rows = ref 0 in
    Relation.Table.iter tbl (fun _ row ->
        incr rows;
        for j = 0 to ncols - 1 do
          vals.(j) <- row.(j) :: vals.(j);
          Hashtbl.replace distinct.(j) row.(j) ()
        done);
    { t_rows = !rows;
      t_pages = Relation.Heap.page_count (Relation.Table.heap tbl);
      t_cols =
        List.init ncols (fun j ->
            (columns.(j),
             build_col vals.(j) !rows (Hashtbl.length distinct.(j)))) }

  (* Estimated count of values strictly below [x]. *)
  let count_below h x =
    if h.h_total = 0 || x <= h.h_lo then 0.0
    else if x > h.h_hi then float_of_int h.h_total
    else begin
      let pos =
        (float_of_int x -. float_of_int h.h_lo)
        *. float_of_int hbuckets /. fspan h.h_lo h.h_hi
      in
      let pos = Float.max 0.0 (Float.min (float_of_int hbuckets) pos) in
      let full = int_of_float pos in
      let frac = pos -. float_of_int full in
      let acc = ref 0.0 in
      for b = 0 to min (hbuckets - 1) (full - 1) do
        acc := !acc +. float_of_int h.h_counts.(b)
      done;
      if full < hbuckets then
        acc := !acc +. (frac *. float_of_int h.h_counts.(full));
      !acc
    end

  let clamp01 f = Float.max 0.0 (Float.min 1.0 f)
  let succ_clamped v = if v = max_int then max_int else v + 1

  let frac_lt h v =
    if h.h_total = 0 then 0.0
    else clamp01 (count_below h v /. float_of_int h.h_total)

  let frac_le h v = frac_lt h (succ_clamped v)

  let eq_frac h v =
    if h.h_total = 0 then 0.0
    else
      Float.max (1.0 /. float_of_int h.h_total) (frac_le h v -. frac_lt h v)

  let distinct_frac h =
    if h.h_distinct <= 0 then 0.1 else 1.0 /. float_of_int h.h_distinct

  (* System R-style defaults when no histogram or no evaluable value. *)
  let default_eq = 0.1
  let default_range = 1.0 /. 3.0

  let hist_for stats c =
    match stats with
    | None -> None
    | Some st -> List.assoc_opt c st.t_cols

  (* Evaluate an expression that depends only on constants and host
     variables; [None] if it references (outer) columns. *)
  let value_of binds e =
    match eval_value { binds; bound = [] } e with
    | v -> Some v
    | exception Error _ -> None

  let col_of step = function
    | Ast.Col (Some a, c) when a = step.alias -> Some c
    | Ast.Col (None, c) when Array.exists (fun x -> x = c) step.columns ->
        Some c
    | _ -> None

  (* Selectivity of one residual conjunct at [step]. *)
  let rec conj_sel stats binds step conj =
    match conj with
    | Ast.And (a, b) ->
        conj_sel stats binds step a *. conj_sel stats binds step b
    | Ast.Or (a, b) ->
        let sa = conj_sel stats binds step a
        and sb = conj_sel stats binds step b in
        clamp01 (sa +. sb -. (sa *. sb))
    | Ast.Not e -> clamp01 (1.0 -. conj_sel stats binds step e)
    | Ast.Between (e, lo, hi) ->
        conj_sel stats binds step
          (Ast.And (Ast.Cmp (Ast.Ge, e, lo), Ast.Cmp (Ast.Le, e, hi)))
    | Ast.Cmp (op, a, b) -> (
        (* constant predicate: evaluate it outright *)
        match (value_of binds a, value_of binds b) with
        | Some va, Some vb ->
            let holds =
              match op with
              | Ast.Eq -> va = vb
              | Ast.Ne -> va <> vb
              | Ast.Lt -> va < vb
              | Ast.Le -> va <= vb
              | Ast.Gt -> va > vb
              | Ast.Ge -> va >= vb
            in
            if holds then 1.0 else 0.0
        | _ -> (
            let directional col_side op v =
              let h = hist_for stats col_side in
              match (h, v) with
              | Some h, Some v -> (
                  match op with
                  | Ast.Eq -> eq_frac h v
                  | Ast.Ne -> clamp01 (1.0 -. eq_frac h v)
                  | Ast.Lt -> frac_lt h v
                  | Ast.Le -> frac_le h v
                  | Ast.Gt -> clamp01 (1.0 -. frac_le h v)
                  | Ast.Ge -> clamp01 (1.0 -. frac_lt h v))
              | _, _ -> (
                  match op with
                  | Ast.Eq -> (
                      match h with
                      | Some h -> distinct_frac h
                      | None -> default_eq)
                  | Ast.Ne -> clamp01 (1.0 -. default_eq)
                  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> default_range)
            in
            let mirror = function
              | Ast.Eq -> Ast.Eq
              | Ast.Ne -> Ast.Ne
              | Ast.Lt -> Ast.Gt
              | Ast.Le -> Ast.Ge
              | Ast.Gt -> Ast.Lt
              | Ast.Ge -> Ast.Le
            in
            match (col_of step a, col_of step b) with
            | Some c, _ -> directional c op (value_of binds b)
            | None, Some c -> directional c (mirror op) (value_of binds a)
            | None, None -> 0.5))
    | Ast.Int _ | Ast.Host _ | Ast.Col _ -> 1.0

  let filters_sel stats binds step =
    List.fold_left
      (fun acc conj -> acc *. conj_sel stats binds step conj)
      1.0 step.filters

  (* Entries matched per index probe, as a fraction of the index. *)
  let access_sel stats binds step =
    match step.access with
    | Seq_scan -> 1.0
    | Index_scan { index; eq; lo; hi; _ } ->
        let icols = Relation.Table.Index.columns index in
        let sel = ref 1.0 in
        List.iteri
          (fun i e ->
            let h = hist_for stats icols.(i) in
            let s =
              match (h, value_of binds e) with
              | Some h, Some v -> eq_frac h v
              | Some h, None -> distinct_frac h
              | None, _ -> default_eq
            in
            sel := !sel *. s)
          eq;
        let rc = List.length eq in
        if (lo <> None || hi <> None) && rc < Array.length icols then begin
          let h = hist_for stats icols.(rc) in
          let lo_frac =
            match (lo, h) with
            | None, _ -> 0.0
            | Some { e; inclusive }, Some h -> (
                match value_of binds e with
                | Some v -> if inclusive then frac_lt h v else frac_le h v
                | None -> default_range)
            | Some _, None -> default_range
          in
          let hi_frac =
            match (hi, h) with
            | None, _ -> 1.0
            | Some { e; inclusive }, Some h -> (
                match value_of binds e with
                | Some v -> if inclusive then frac_le h v else frac_lt h v
                | None -> 1.0 -. default_range)
            | Some _, None -> 1.0 -. default_range
          in
          sel := !sel *. clamp01 (hi_frac -. lo_frac)
        end;
        !sel

  let index_geometry index =
    let tree = Relation.Table.Index.tree index in
    let bs = Storage.Buffer_pool.block_size (Btree.pool tree) in
    let kw = Btree.key_width tree in
    let leaf_cap = max 1 ((bs - 16) / (8 * kw)) in
    let entries = max 1 (Btree.count tree) in
    let depth =
      Float.max 1.0
        (log (float_of_int (max 2 entries)) /. log (float_of_int leaf_cap))
    in
    (float_of_int entries, float_of_int leaf_cap, depth)

  type step_est = {
    est_out : float;  (* rows emitted by this step across the whole run *)
    est_io : float;   (* physical I/O attributed to this step *)
  }

  type branch_est = {
    step_ests : step_est list;
    out_rows : float;
    total_io : float;
  }

  let branch session binds (plan : branch_plan) =
    let stats_cache : (string, table_stats) Hashtbl.t = Hashtbl.create 4 in
    let stats_for tbl =
      let name = Relation.Table.name tbl in
      match Hashtbl.find_opt stats_cache name with
      | Some st -> st
      | None ->
          let st = analyze_table tbl in
          Hashtbl.add stats_cache name st;
          st
    in
    let loop = ref 1.0 in
    let total = ref 0.0 in
    let step_ests =
      List.map
        (fun step ->
          let per_rows, per_io, stats =
            match (step.source, step.access) with
            | Collection name, _ ->
                let n =
                  match Hashtbl.find_opt session.collections name with
                  | Some (_, rows) -> float_of_int (List.length rows)
                  | None -> 0.0
                in
                (n, 0.0, None)
            | Base tbl, Seq_scan ->
                let st = stats_for tbl in
                (float_of_int st.t_rows, float_of_int st.t_pages, Some st)
            | Base tbl, (Index_scan { index; covering; _ } as _a) ->
                let st = stats_for tbl in
                let entries, leaf_cap, depth = index_geometry index in
                let m = entries *. access_sel (Some st) binds step in
                let io =
                  depth
                  +. Float.max 1.0 (m /. leaf_cap)
                  +. if covering then 0.0 else m
                in
                (m, io, Some st)
          in
          let out = !loop *. per_rows *. filters_sel stats binds step in
          let io = !loop *. per_io in
          total := !total +. io;
          loop := out;
          { est_out = out; est_io = io })
        plan.steps
    in
    { step_ests; out_rows = !loop; total_io = !total }

  (* Outer-collection cardinality of a branch: the RI-tree node count
     when the plan is the paper's Fig. 9 shape. *)
  let node_count session plan =
    List.fold_left
      (fun acc step ->
        match step.source with
        | Collection name -> (
            match Hashtbl.find_opt session.collections name with
            | Some (_, rows) -> acc + List.length rows
            | None -> acc)
        | Base _ -> acc)
      0 plan.steps
end

(* ---------------- explain ---------------- *)

let explain_plan ?(annot = fun _ -> "") plans =
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "SELECT STATEMENT\n";
  let indent0 = if List.length plans > 1 then "    " else "  " in
  if List.length plans > 1 then add "  UNION-ALL\n";
  List.iter
    (fun plan ->
      let rec nest indent = function
        | [] -> ()
        | [ step ] -> describe indent step
        | step :: rest ->
            add "%sNESTED LOOPS\n" indent;
            describe (indent ^ "  ") step;
            nest (indent ^ "  ") rest
      and describe indent step =
        (match (step.source, step.access) with
        | Collection name, _ ->
            add "%sCOLLECTION ITERATOR %s%s\n" indent name (annot step)
        | Base tbl, Seq_scan ->
            add "%sTABLE ACCESS FULL %s%s\n" indent (Relation.Table.name tbl)
              (annot step)
        | Base _, Index_scan { index; eq; lo; hi; refine_lo; refine_hi;
                               covering } ->
            let icols = Relation.Table.Index.columns index in
            let parts = ref [] in
            List.iteri
              (fun i e ->
                parts :=
                  Printf.sprintf "%s = %s" icols.(i) (Ast.expr_to_string e)
                  :: !parts)
              eq;
            let rc = List.length eq in
            let bound_part col { e; inclusive } ge =
              Printf.sprintf "%s %s %s" col
                (match (ge, inclusive) with
                | true, true -> ">="
                | true, false -> ">"
                | false, true -> "<="
                | false, false -> "<")
                (Ast.expr_to_string e)
            in
            Option.iter
              (fun b -> parts := bound_part icols.(rc) b true :: !parts)
              lo;
            Option.iter
              (fun b -> parts := bound_part icols.(rc) b false :: !parts)
              hi;
            let rpos = rc + if lo <> None || hi <> None then 1 else 0 in
            if rpos > rc && rpos < Array.length icols then begin
              Option.iter
                (fun b ->
                  parts :=
                    (bound_part icols.(rpos) b true ^ " [start key]")
                    :: !parts)
                refine_lo;
              Option.iter
                (fun b ->
                  parts :=
                    (bound_part icols.(rpos) b false ^ " [stop key]")
                    :: !parts)
                refine_hi
            end;
            add "%sINDEX RANGE SCAN %s (%s)%s%s\n" indent
              (String.uppercase_ascii (Relation.Table.Index.name index))
              (String.concat ", " (List.rev !parts))
              (if covering then "" else " + TABLE ACCESS BY ROWID")
              (annot step));
        if step.filters <> [] then
          add "%s  FILTER %s\n" indent
            (String.concat " AND " (List.map Ast.expr_to_string step.filters))
      in
      nest indent0 plan.steps)
    plans;
  Buffer.contents buf

(* ---------------- statement dispatch ---------------- *)

(* GROUP BY: one pass over the branch's rows, accumulating per group
   key. Plain projections must be grouping columns; aggregate order-by
   keys are not supported. *)
let run_group_by session binds plan =
  let group = plan.group_by in
  let is_group_col (alias, c) =
    List.exists (fun (_, gc) -> gc = c) group
    && match alias with _ -> true
  in
  List.iter
    (function
      | Ast.Proj_col (a, c) when not (is_group_col (a, c)) ->
          fail "column %s is not in GROUP BY" c
      | Ast.Star -> fail "SELECT * cannot be combined with GROUP BY"
      | Ast.Proj_col _ | Ast.Count_star | Ast.Agg _ -> ())
    plan.projections;
  let agg_cols =
    List.filter_map
      (function
        | Ast.Agg (_, target) -> Some target
        | Ast.Count_star | Ast.Star | Ast.Proj_col _ -> None)
      plan.projections
  in
  let plan' =
    { plan with
      projections =
        List.map (fun (a, c) -> Ast.Proj_col (a, c)) group
        @ List.map (fun (a, c) -> Ast.Proj_col (a, c)) agg_cols }
  in
  let rows, _ = run_branch session binds plan' in
  let karity = List.length group in
  let groups : (int list, int * int list array) Hashtbl.t =
    Hashtbl.create 64
  in
  let order = ref [] in
  List.iter
    (fun row ->
      let key = Array.to_list (Array.sub row 0 karity) in
      let vals =
        Array.init (List.length agg_cols) (fun i -> row.(karity + i))
      in
      match Hashtbl.find_opt groups key with
      | Some (count, lists) ->
          Array.iteri (fun i v -> lists.(i) <- v :: lists.(i)) vals;
          Hashtbl.replace groups key (count + 1, lists)
      | None ->
          order := key :: !order;
          Hashtbl.replace groups key
            (1, Array.map (fun v -> [ v ]) vals))
    rows;
  List.rev_map
    (fun key ->
      let count, lists = Hashtbl.find groups key in
      let next = ref 0 in
      let cells =
        List.map
          (fun p ->
            match p with
            | Ast.Proj_col (a, c) ->
                let rec pos i = function
                  | [] -> fail "grouping column %s missing" c
                  | (ga, gc) :: rest ->
                      if gc = c && (a = None || ga = None || a = ga) then i
                      else pos (i + 1) rest
                in
                List.nth key (pos 0 group)
            | Ast.Count_star -> count
            | Ast.Agg (agg, _) -> (
                let vs = lists.(!next) in
                incr next;
                match agg with
                | Ast.Count -> List.length vs
                | Ast.Sum -> List.fold_left ( + ) 0 vs
                | Ast.Min -> List.fold_left min (List.hd vs) vs
                | Ast.Max -> List.fold_left max (List.hd vs) vs)
            | Ast.Star -> assert false)
          plan.projections
      in
      Array.of_list cells)
    !order

(* Aggregates without GROUP BY are computed over the concatenation of
   all UNION ALL branches; mixing aggregate and plain projections is
   rejected. *)
let run_aggregate session binds plans projections =
  (* per branch, project the columns the aggregates read *)
  let agg_cols =
    List.filter_map
      (function
        | Ast.Agg (_, target) -> Some target
        | Ast.Count_star | Ast.Star | Ast.Proj_col _ -> None)
      projections
  in
  let count = ref 0 in
  let values = Array.make (List.length agg_cols) [] in
  List.iter
    (fun plan ->
      let plan' =
        { plan with
          projections = List.map (fun t -> Ast.Proj_col (fst t, snd t)) agg_cols }
      in
      let rows, c = run_branch session binds plan' in
      count := !count + c;
      List.iter
        (fun row -> Array.iteri (fun i _ -> values.(i) <- row.(i) :: values.(i)) values)
        rows)
    plans;
  let next_value = ref 0 in
  let cells =
    List.map
      (fun p ->
        match p with
        | Ast.Count_star -> !count
        | Ast.Agg (a, _) -> (
            let vs = values.(!next_value) in
            incr next_value;
            match a with
            | Ast.Count -> List.length vs
            | Ast.Sum -> List.fold_left ( + ) 0 vs
            | Ast.Min -> (
                match vs with
                | [] -> fail "MIN over an empty result"
                | v :: rest -> List.fold_left min v rest)
            | Ast.Max -> (
                match vs with
                | [] -> fail "MAX over an empty result"
                | v :: rest -> List.fold_left max v rest))
        | Ast.Star | Ast.Proj_col _ -> assert false)
      projections
  in
  [ Array.of_list cells ]

let order_and_limit plan (q : Ast.query) rows =
  let rows =
    if q.Ast.order_by = [] then rows
    else begin
      let names = projection_columns plan in
      let position { Ast.key = _, col; descending } =
        let rec go i = function
          | [] -> fail "ORDER BY column %s is not in the projection" col
          | c :: rest -> if c = col then (i, descending) else go (i + 1) rest
        in
        go 0 names
      in
      let keys = List.map position q.Ast.order_by in
      List.stable_sort
        (fun (a : int array) b ->
          let rec cmp = function
            | [] -> 0
            | (i, desc) :: rest ->
                let c = Int.compare a.(i) b.(i) in
                if c <> 0 then if desc then -c else c else cmp rest
          in
          cmp keys)
        rows
    end
  in
  match q.Ast.limit with
  | None -> rows
  | Some n -> List.filteri (fun i _ -> i < n) rows

let run_select_plans session binds (q : Ast.query) plans =
  match plans with
  | [] -> Rows { columns = []; rows = [] }
  | first :: _ when first.group_by <> [] ->
      if List.length plans > 1 then
        fail "GROUP BY cannot be combined with UNION ALL";
      let rows = run_group_by session binds first in
      Rows
        { columns = projection_columns first;
          rows = order_and_limit first q rows }
  | first :: _ ->
      let aggs = List.filter is_aggregate_projection first.projections in
      if aggs <> [] then begin
        if List.length aggs <> List.length first.projections then
          fail "cannot mix aggregate and plain projections";
        if q.Ast.order_by <> [] then
          fail "ORDER BY does not apply to an aggregate query";
        Rows
          { columns = projection_columns first;
            rows = run_aggregate session binds plans first.projections }
      end
      else begin
        let all_rows = ref [] in
        List.iter
          (fun plan ->
            let rows, _ = run_branch session binds plan in
            all_rows := !all_rows @ rows)
          plans;
        Rows
          { columns = projection_columns first;
            rows = order_and_limit first q !all_rows }
      end

let run_select session binds (q : Ast.query) =
  run_select_plans session binds q (List.map (plan_branch session) q.Ast.branches)

let stmt_kind = function
  | Ast.Create_table _ -> "CREATE TABLE"
  | Ast.Create_index _ -> "CREATE INDEX"
  | Ast.Insert _ -> "INSERT"
  | Ast.Update _ -> "UPDATE"
  | Ast.Delete _ -> "DELETE"
  | Ast.Select _ -> "SELECT"
  | Ast.Explain _ -> "EXPLAIN"

let rec run_stmt session binds = function
  | Ast.Create_table (name, cols) ->
      ignore
        (Relation.Catalog.create_table session.catalog ~name ~columns:cols);
      Done (Printf.sprintf "table %s created" name)
  | Ast.Create_index (iname, tname, cols) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          ignore (Relation.Table.create_index tbl ~name:iname ~columns:cols);
          Done (Printf.sprintf "index %s created" iname))
  | Ast.Insert (tname, values) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let env = { binds; bound = [] } in
          let row = Array.of_list (List.map (eval_value env) values) in
          if Array.length row <> Array.length (Relation.Table.columns tbl)
          then fail "INSERT arity mismatch for %s" tname;
          ignore (Relation.Table.insert tbl row);
          Done "1 row inserted")
  | Ast.Delete (tname, where) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let columns = Relation.Table.columns tbl in
          let pred row =
            match where with
            | None -> true
            | Some w ->
                eval_bool { binds; bound = [ (tname, (columns, row)) ] } w
          in
          let n = Relation.Table.delete_where tbl pred in
          Done (Printf.sprintf "%d rows deleted" n))
  | Ast.Update (tname, sets, where) -> (
      match Relation.Catalog.find_table session.catalog tname with
      | None -> fail "unknown table %s" tname
      | Some tbl ->
          let columns = Relation.Table.columns tbl in
          let set_positions =
            List.map
              (fun (c, e) ->
                match col_position columns c with
                | Some i -> (i, e)
                | None -> fail "unknown column %s in UPDATE" c)
              sets
          in
          let victims = ref [] in
          Relation.Table.iter tbl (fun rowid row ->
              let env = { binds; bound = [ (tname, (columns, row)) ] } in
              let matches =
                match where with None -> true | Some w -> eval_bool env w
              in
              if matches then begin
                let row' = Array.copy row in
                List.iter
                  (fun (i, e) -> row'.(i) <- eval_value env e)
                  set_positions;
                victims := (rowid, row') :: !victims
              end);
          List.iter
            (fun (rowid, row') ->
              ignore (Relation.Table.update_row tbl rowid row'))
            !victims;
          Done (Printf.sprintf "%d rows updated" (List.length !victims)))
  | Ast.Select q -> run_select session binds q
  | Ast.Explain { analyze; target } -> run_explain session binds ~analyze target

(* Measure a statement execution: wall time and the process-global
   physical-I/O delta (single-threaded execution means the delta is
   attributable to this statement). *)
and measured f =
  let c0 = Obs.Counters.snapshot () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  let d = Obs.Counters.diff (Obs.Counters.snapshot ()) c0 in
  (r, ms, d.Obs.Counters.reads + d.Obs.Counters.writes)

and run_explain session binds ~analyze = function
  | Ast.Select q ->
      let plans = List.map (plan_branch session) q.Ast.branches in
      let ests = List.map (Estimate.branch session binds) plans in
      let pred_rows =
        List.fold_left (fun a e -> a +. e.Estimate.out_rows) 0.0 ests
      in
      let pred_io =
        List.fold_left (fun a e -> a +. e.Estimate.total_io) 0.0 ests
      in
      let nodes =
        List.fold_left (fun a p -> a + Estimate.node_count session p) 0 plans
      in
      let notes actual =
        List.concat
          (List.map2
             (fun plan est ->
               List.map2
                 (fun step (se : Estimate.step_est) ->
                   let s =
                     if actual then
                       Printf.sprintf "  (est rows=%.0f io=%.0f, actual rows=%d)"
                         se.Estimate.est_out se.Estimate.est_io step.seen
                     else
                       Printf.sprintf "  (est rows=%.0f io=%.0f)"
                         se.Estimate.est_out se.Estimate.est_io
                   in
                   (step, s))
                 plan.steps est.Estimate.step_ests)
             plans ests)
      in
      let footer_pred =
        Printf.sprintf "PREDICTED  nodes=%d  rows=%.0f  io=%.0f\n" nodes
          pred_rows pred_io
      in
      if not analyze then begin
        let notes = notes false in
        let annot step =
          Option.value ~default:"" (List.assq_opt step notes)
        in
        Done (explain_plan ~annot plans ^ footer_pred)
      end
      else begin
        List.iter (fun p -> List.iter (fun s -> s.seen <- 0) p.steps) plans;
        let result, ms, io =
          measured (fun () -> run_select_plans session binds q plans)
        in
        let actual_rows =
          match result with
          | Rows { rows; _ } -> List.length rows
          | Done _ -> 0
        in
        let notes = notes true in
        let annot step =
          Option.value ~default:"" (List.assq_opt step notes)
        in
        Done
          (explain_plan ~annot plans ^ footer_pred
          ^ Printf.sprintf "ACTUAL     rows=%d  io=%d  time=%.1f ms\n"
              actual_rows io ms)
      end
  | target ->
      if not analyze then
        Done
          (Printf.sprintf
             "%s STATEMENT (no plan; not executed — use EXPLAIN ANALYZE)"
             (stmt_kind target))
      else begin
        let result, ms, io = measured (fun () -> run_stmt session binds target) in
        let summary =
          match result with
          | Done msg -> msg
          | Rows { rows; _ } -> Printf.sprintf "%d rows" (List.length rows)
        in
        Done
          (Printf.sprintf "%s STATEMENT\n%s\nACTUAL     io=%d  time=%.1f ms\n"
             (stmt_kind target) summary io ms)
      end

let counted session stmt binds =
  let r =
    Obs.Trace.with_span "sql.stmt" ~info:(stmt_kind stmt) (fun () ->
        run_stmt session binds stmt)
  in
  session.statements <- session.statements + 1;
  r

let exec ?(binds = []) session src = counted session (Parser.parse src) binds

let exec_script ?(binds = []) session src =
  List.map (fun stmt -> counted session stmt binds) (Parser.parse_script src)

let query ?binds session src =
  match exec ?binds session src with
  | Rows { rows; _ } -> rows
  | Done _ -> fail "query: statement did not return rows"

let explain ?(binds = []) session src =
  ignore binds;
  match Parser.parse src with
  | Ast.Select q ->
      explain_plan (List.map (plan_branch session) q.Ast.branches)
  | _ -> fail "explain: only SELECT is supported"
