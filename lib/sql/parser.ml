exception Error of string

type state = { tokens : Lexer.token array; mutable pos : int }

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let peek st =
  if st.pos < Array.length st.tokens then Some st.tokens.(st.pos) else None

let advance st = st.pos <- st.pos + 1

let next st =
  match peek st with
  | Some t ->
      advance st;
      t
  | None -> fail "unexpected end of statement"

let is_kw t kw =
  match t with
  | Lexer.Ident s -> String.uppercase_ascii s = kw
  | _ -> false

let peek_kw st kw = match peek st with Some t -> is_kw t kw | None -> false

let expect_kw st kw =
  match peek st with
  | Some t when is_kw t kw -> advance st
  | Some t -> fail "expected %s, found %s" kw (Lexer.token_to_string t)
  | None -> fail "expected %s at end of statement" kw

let expect st tok =
  match peek st with
  | Some t when t = tok -> advance st
  | Some t ->
      fail "expected %s, found %s"
        (Lexer.token_to_string tok)
        (Lexer.token_to_string t)
  | None -> fail "expected %s at end of statement" (Lexer.token_to_string tok)

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "BETWEEN"; "UNION";
    "ALL"; "CREATE"; "TABLE"; "INDEX"; "ON"; "INSERT"; "INTO"; "VALUES";
    "UPDATE"; "SET"; "DELETE"; "EXPLAIN"; "ANALYZE"; "ORDER"; "GROUP";
    "LIMIT" ]

let ident st =
  match next st with
  | Lexer.Ident s when not (List.mem (String.uppercase_ascii s) keywords) -> s
  | t -> fail "expected identifier, found %s" (Lexer.token_to_string t)

let rec sep_by st sep f =
  let first = f st in
  if peek st = Some sep then begin
    advance st;
    first :: sep_by st sep f
  end
  else [ first ]

(* ---------------- expressions ---------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek_kw st "OR" then begin
    advance st;
    Ast.Or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_not st in
  if peek_kw st "AND" then begin
    advance st;
    Ast.And (lhs, parse_and st)
  end
  else lhs

and parse_not st =
  if peek_kw st "NOT" then begin
    advance st;
    Ast.Not (parse_not st)
  end
  else parse_predicate st

and parse_predicate st =
  let lhs = parse_primary st in
  match peek st with
  | Some Lexer.Op_eq ->
      advance st;
      Ast.Cmp (Ast.Eq, lhs, parse_primary st)
  | Some Lexer.Op_ne ->
      advance st;
      Ast.Cmp (Ast.Ne, lhs, parse_primary st)
  | Some Lexer.Op_lt ->
      advance st;
      Ast.Cmp (Ast.Lt, lhs, parse_primary st)
  | Some Lexer.Op_le ->
      advance st;
      Ast.Cmp (Ast.Le, lhs, parse_primary st)
  | Some Lexer.Op_gt ->
      advance st;
      Ast.Cmp (Ast.Gt, lhs, parse_primary st)
  | Some Lexer.Op_ge ->
      advance st;
      Ast.Cmp (Ast.Ge, lhs, parse_primary st)
  | Some t when is_kw t "BETWEEN" ->
      advance st;
      let lo = parse_primary st in
      expect_kw st "AND";
      let hi = parse_primary st in
      Ast.Between (lhs, lo, hi)
  | _ -> lhs

and parse_primary st =
  match next st with
  | Lexer.Number n -> Ast.Int n
  | Lexer.Host_var h -> Ast.Host h
  | Lexer.Lparen ->
      let e = parse_expr st in
      expect st Lexer.Rparen;
      e
  | Lexer.Ident "-" -> (
      match next st with
      | Lexer.Number n -> Ast.Int (-n)
      | t -> fail "expected number after unary minus, found %s"
               (Lexer.token_to_string t))
  | Lexer.Ident s when not (List.mem (String.uppercase_ascii s) keywords) ->
      if peek st = Some Lexer.Dot then begin
        advance st;
        let col = ident st in
        Ast.Col (Some s, col)
      end
      else Ast.Col (None, s)
  | t -> fail "unexpected token %s in expression" (Lexer.token_to_string t)

(* ---------------- statements ---------------- *)

(* Aggregates are recognised contextually — NAME '(' — so that "count",
   "min" and "max" stay available as column names (the paper's transient
   leftNodes table has columns min and max). *)
let peek2 st =
  if st.pos + 1 < Array.length st.tokens then Some st.tokens.(st.pos + 1)
  else None

let aggregate_of_name s =
  match String.uppercase_ascii s with
  | "COUNT" -> Some Ast.Count
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "SUM" -> Some Ast.Sum
  | _ -> None

let parse_projection st =
  match peek st with
  | Some Lexer.Star ->
      advance st;
      Ast.Star
  | Some (Lexer.Ident name)
    when aggregate_of_name name <> None && peek2 st = Some Lexer.Lparen -> (
      advance st;
      advance st;
      let agg = Option.get (aggregate_of_name name) in
      match (agg, peek st) with
      | Ast.Count, Some Lexer.Star ->
          advance st;
          expect st Lexer.Rparen;
          Ast.Count_star
      | _ ->
          let col = ident st in
          let target =
            if peek st = Some Lexer.Dot then begin
              advance st;
              let c = ident st in
              (Some col, c)
            end
            else (None, col)
          in
          expect st Lexer.Rparen;
          Ast.Agg (agg, target))
  | _ -> (
      let name = ident st in
      if peek st = Some Lexer.Dot then begin
        advance st;
        let col = ident st in
        Ast.Proj_col (Some name, col)
      end
      else Ast.Proj_col (None, name))

let parse_from_item st =
  let table = ident st in
  match peek st with
  | Some (Lexer.Ident s) when not (List.mem (String.uppercase_ascii s) keywords)
    ->
      advance st;
      (table, Some s)
  | _ -> (table, None)

let parse_select_branch st =
  expect_kw st "SELECT";
  let projections = sep_by st Lexer.Comma parse_projection in
  expect_kw st "FROM";
  let froms = sep_by st Lexer.Comma parse_from_item in
  let where =
    if peek_kw st "WHERE" then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  let group_by =
    if peek_kw st "GROUP" then begin
      advance st;
      expect_kw st "BY";
      sep_by st Lexer.Comma (fun st ->
          let name = ident st in
          if peek st = Some Lexer.Dot then begin
            advance st;
            let col = ident st in
            (Some name, col)
          end
          else (None, name))
    end
    else []
  in
  { Ast.projections; froms; where; group_by }

let rec parse_branches st =
  let branch = parse_select_branch st in
  if peek_kw st "UNION" then begin
    advance st;
    expect_kw st "ALL";
    branch :: parse_branches st
  end
  else [ branch ]

let parse_order_key st =
  let name = ident st in
  let key =
    if peek st = Some Lexer.Dot then begin
      advance st;
      let col = ident st in
      (Some name, col)
    end
    else (None, name)
  in
  let descending =
    match peek st with
    | Some (Lexer.Ident d) when String.uppercase_ascii d = "DESC" ->
        advance st;
        true
    | Some (Lexer.Ident a) when String.uppercase_ascii a = "ASC" ->
        advance st;
        false
    | _ -> false
  in
  { Ast.key; descending }

let parse_select st =
  let branches = parse_branches st in
  let order_by =
    if peek_kw st "ORDER" then begin
      advance st;
      expect_kw st "BY";
      sep_by st Lexer.Comma parse_order_key
    end
    else []
  in
  let limit =
    if peek_kw st "LIMIT" then begin
      advance st;
      match next st with
      | Lexer.Number n when n >= 0 -> Some n
      | t -> fail "LIMIT expects a number, found %s" (Lexer.token_to_string t)
    end
    else None
  in
  Ast.Select { branches; order_by; limit }

(* Column definitions accept an optional type word which is ignored —
   the engine is integer-only, matching the paper's schemas. *)
let parse_column_def st =
  let name = ident st in
  (match peek st with
  | Some (Lexer.Ident s) when not (List.mem (String.uppercase_ascii s) keywords)
    ->
      advance st
  | _ -> ());
  name

let rec parse_stmt st =
  match peek st with
  | Some t when is_kw t "EXPLAIN" ->
      advance st;
      let analyze =
        if peek_kw st "ANALYZE" then begin
          advance st;
          true
        end
        else false
      in
      Ast.Explain { analyze; target = parse_stmt st }
  | Some t when is_kw t "CREATE" -> (
      advance st;
      match peek st with
      | Some t when is_kw t "TABLE" ->
          advance st;
          let name = ident st in
          expect st Lexer.Lparen;
          let cols = sep_by st Lexer.Comma parse_column_def in
          expect st Lexer.Rparen;
          Ast.Create_table (name, cols)
      | Some t when is_kw t "INDEX" ->
          advance st;
          let iname = ident st in
          expect_kw st "ON";
          let tname = ident st in
          expect st Lexer.Lparen;
          let cols = sep_by st Lexer.Comma ident in
          expect st Lexer.Rparen;
          Ast.Create_index (iname, tname, cols)
      | _ -> fail "expected TABLE or INDEX after CREATE")
  | Some t when is_kw t "INSERT" ->
      advance st;
      expect_kw st "INTO";
      let name = ident st in
      expect_kw st "VALUES";
      expect st Lexer.Lparen;
      let values = sep_by st Lexer.Comma parse_expr in
      expect st Lexer.Rparen;
      Ast.Insert (name, values)
  | Some t when is_kw t "UPDATE" ->
      advance st;
      let name = ident st in
      expect_kw st "SET";
      let assignment st =
        let col = ident st in
        expect st Lexer.Op_eq;
        let e = parse_expr st in
        (col, e)
      in
      let sets = sep_by st Lexer.Comma assignment in
      let where =
        if peek_kw st "WHERE" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      Ast.Update (name, sets, where)
  | Some t when is_kw t "DELETE" ->
      advance st;
      expect_kw st "FROM";
      let name = ident st in
      let where =
        if peek_kw st "WHERE" then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      Ast.Delete (name, where)
  | Some t when is_kw t "SELECT" -> parse_select st
  | Some t -> fail "unexpected token %s" (Lexer.token_to_string t)
  | None -> fail "empty statement"

let of_tokens tokens = { tokens = Array.of_list tokens; pos = 0 }

let parse src =
  let st = of_tokens (Lexer.tokenize src) in
  let stmt = parse_stmt st in
  (match peek st with Some Lexer.Semicolon -> advance st | _ -> ());
  (match peek st with
  | None -> ()
  | Some t -> fail "trailing input: %s" (Lexer.token_to_string t));
  stmt

let parse_script src =
  let st = of_tokens (Lexer.tokenize src) in
  let rec go acc =
    match peek st with
    | None -> List.rev acc
    | Some Lexer.Semicolon ->
        advance st;
        go acc
    | Some _ ->
        let stmt = parse_stmt st in
        (match peek st with
        | Some Lexer.Semicolon -> advance st
        | None -> ()
        | Some t -> fail "expected ';', found %s" (Lexer.token_to_string t));
        go (stmt :: acc)
  in
  go []
