(* Statement normalization for the plan cache: replace integer literals
   with parameter slots (:__p0, :__p1, ...) so statements differing only
   in their constants share one cached plan.

   The normalized text is itself valid SQL — the cache compiles the plan
   by re-parsing it — and doubles as the cache key. Two literals are
   deliberately left in place:

   - after LIMIT: the grammar wants a literal row count, not a host
     variable;
   - after a unary minus: [- 5] lexes as [Ident "-"; Number 5], and
     parameterizing the operand would hide the sign from the planner for
     no benefit.

   Only SELECT statements are normalized; DDL and DML return [None] and
   bypass the cache. *)

type norm = { key : string; params : (string * int) list }

let keep_literal prev =
  match prev with
  | Some (Lexer.Ident p) ->
      let p = String.lowercase_ascii p in
      p = "limit" || p = "-"
  | _ -> false

let select src =
  match Lexer.tokenize src with
  | exception Lexer.Error _ -> None
  | [] -> None
  | Lexer.Ident first :: _ as tokens
    when String.lowercase_ascii first = "select" ->
      let buf = Buffer.create (String.length src) in
      let params = ref [] in
      let slot = ref 0 in
      let prev = ref None in
      List.iter
        (fun tok ->
          let tok' =
            match tok with
            | Lexer.Number n when not (keep_literal !prev) ->
                let name = "__p" ^ string_of_int !slot in
                incr slot;
                params := (name, n) :: !params;
                Lexer.Host_var name
            | t -> t
          in
          prev := Some tok;
          if Buffer.length buf > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Lexer.token_to_string tok'))
        tokens;
      Some { key = Buffer.contents buf; params = List.rev !params }
  | _ :: _ -> None
