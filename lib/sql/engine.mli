(** The SQL front end: parsing, logical planning, and compilation onto
    the shared execution layer.

    The engine implements what the paper relies on the host DBMS for:
    rule-based index selection (equality prefix plus one range on the
    next key column), left-deep nested-loop joins, predicate pushdown,
    covering-index scans (a base-table fetch is skipped when every
    referenced column lives in the chosen index), transient collection
    tables for session state (the paper's [leftNodes]/[rightNodes]), host
    variables, and UNION ALL.

    Statements compile to the typed physical-plan IR in {!Exec.Ir} and
    execute through {!Exec.Executor}; [EXPLAIN] renders through
    {!Exec.Render} with {!Exec.Estimate} annotations — the same
    renderer and estimator the typed wire ops use. A per-session plan
    cache keyed on normalized statement text (see {!Normalize}) lets
    repeated SELECTs skip the parser and planner entirely; it is
    invalidated by DDL and by collection schema changes. *)

type session

val session : ?plan_cache:bool -> Relation.Catalog.t -> session
(** [plan_cache] (default [true]) controls whether SELECTs are cached;
    benchmarks disable it to measure the uncached path. *)

val catalog : session -> Relation.Catalog.t
(** The database this session is bound to. *)

val set_txn : session -> Relation.Txn.txn option -> unit
(** Bind (or unbind) the MVCC transaction DML and snapshot reads run
    under. With a transaction set, INSERT/DELETE/UPDATE buffer into its
    write set and SELECT overlays its snapshot; without one, writes go
    straight to the shared heap (standalone tools, historical tests). *)

val statements : session -> int
(** Statements successfully executed via {!exec}/{!exec_script} in this
    session — the per-session counter the server's session manager
    reports. *)

val set_collection :
  session -> string -> columns:string list -> int array list -> unit
(** Register (or replace) a transient collection table visible to
    queries in this session; lives outside the catalog and costs no
    I/O. Replacing a collection with the same column list keeps cached
    plans (rows are resolved at run time); changing the schema
    invalidates them. *)

val clear_collection : session -> string -> unit

type result =
  | Done of string  (** DDL/DML acknowledgement *)
  | Rows of { columns : string list; rows : int array list }

exception Error of string

val exec : ?binds:(string * int) list -> session -> string -> result
(** Parse and execute one statement. [binds] supplies host-variable
    values. @raise Error on unknown tables/columns, ambiguity, or
    missing binds (parse errors raise {!Parser.Error}). *)

val exec_script :
  ?binds:(string * int) list -> session -> string -> result list

val query :
  ?binds:(string * int) list -> session -> string -> int array list
(** [exec] specialised to SELECT; returns the rows.
    @raise Error if the statement is not a SELECT. *)

val explain : ?binds:(string * int) list -> session -> string -> string
(** The plan text for a SELECT, without executing it. *)

val explain_text :
  ?binds:(string * int) list -> ?analyze:bool -> session -> string -> string
(** Full [EXPLAIN [ANALYZE]] output (plan, cost-model annotations,
    PREDICTED/ACTUAL footers) for any statement text — the wire-op
    EXPLAIN goes through this. *)

(** {1 Prepared statements} *)

type prepared

val prepare : session -> string -> prepared
(** Parse and (for SELECT) compile once. @raise Parser.Error on parse
    errors, {!Error} on planning errors. *)

val prepared_params : prepared -> string list
(** Host variables in first-appearance order; EXECUTE's positional
    parameters bind to them in this order. *)

val prepared_kind : prepared -> string
(** Statement kind ("SELECT", "INSERT", ...) — the server uses it to
    classify prepared executions for read-only mode. *)

val execute_prepared : session -> prepared -> int list -> result
(** @raise Error when the argument count does not match
    {!prepared_params}. A prepared SELECT recompiles automatically if
    DDL or a collection schema change invalidated plans since it was
    prepared. *)

(** {1 Plan-cache and planner observability} *)

val plan_cache_stats : session -> int * int
(** (hits, misses) of this session's plan cache. *)

val parse_count : unit -> int
(** Process-global count of statement parses — a plan-cache hit must
    not move it. *)

val plan_count : unit -> int
(** Process-global count of query compilations (logical planning +
    IR emission) — a plan-cache hit must not move it. *)
