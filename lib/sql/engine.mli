(** Planner and executor for the SQL subset.

    The engine implements what the paper relies the host DBMS for:
    rule-based index selection (equality prefix plus one range on the
    next key column), left-deep nested-loop joins, predicate pushdown,
    covering-index scans (a base-table fetch is skipped when every
    referenced column lives in the chosen index), transient collection
    tables for session state (the paper's [leftNodes]/[rightNodes]), host
    variables, and UNION ALL. [EXPLAIN] renders plans in the style of
    the paper's Fig. 10. *)

type session

val session : Relation.Catalog.t -> session

val catalog : session -> Relation.Catalog.t
(** The database this session is bound to. *)

val statements : session -> int
(** Statements successfully executed via {!exec}/{!exec_script} in this
    session — the per-session counter the server's session manager
    reports. *)

val set_collection :
  session -> string -> columns:string list -> int array list -> unit
(** Register (or replace) a transient collection table visible to
    queries in this session; lives outside the catalog and costs no
    I/O. *)

val clear_collection : session -> string -> unit

type result =
  | Done of string  (** DDL/DML acknowledgement *)
  | Rows of { columns : string list; rows : int array list }

exception Error of string

val exec : ?binds:(string * int) list -> session -> string -> result
(** Parse and execute one statement. [binds] supplies host-variable
    values. @raise Error on unknown tables/columns, ambiguity, or
    missing binds (parse errors raise {!Parser.Error}). *)

val exec_script :
  ?binds:(string * int) list -> session -> string -> result list

val query :
  ?binds:(string * int) list -> session -> string -> int array list
(** [exec] specialised to SELECT; returns the rows.
    @raise Error if the statement is not a SELECT. *)

val explain : ?binds:(string * int) list -> session -> string -> string
(** The plan text for a SELECT, without executing it. *)
