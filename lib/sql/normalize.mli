(** Statement normalization for the plan cache. *)

type norm = {
  key : string;  (** normalized, re-parseable SQL; the cache key *)
  params : (string * int) list;
      (** slot name -> literal value, in appearance order *)
}

val select : string -> norm option
(** [select src] normalizes a SELECT statement by replacing integer
    literals with parameter slots. Returns [None] for non-SELECT
    statements and for inputs the lexer rejects (those take the uncached
    path, which reports errors against the original text). Literals
    after [LIMIT] and after a unary minus are kept in place. *)
