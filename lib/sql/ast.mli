(** Abstract syntax of the SQL subset.

    The subset covers what the paper's figures use — CREATE TABLE /
    CREATE INDEX (Fig. 2), single-row INSERT (Fig. 5), SELECT with inner
    joins over base tables and transient collections, AND/OR/NOT,
    comparisons, BETWEEN, host variables, UNION ALL (Figs. 8, 9, 11) —
    plus UPDATE, DELETE, aggregates, ORDER BY and LIMIT. All values are
    integers. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Host of string                 (** [:name] host variable *)
  | Col of string option * string  (** [alias.column] or [column] *)
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr  (** [e BETWEEN lo AND hi] *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type aggregate = Count | Min | Max | Sum

type projection =
  | Star
  | Count_star
  | Proj_col of string option * string
  | Agg of aggregate * (string option * string)
      (** MIN/MAX/SUM/COUNT over a column *)

type select = {
  projections : projection list;
  froms : (string * string option) list;  (** table, optional alias *)
  where : expr option;
  group_by : (string option * string) list;
      (** grouping columns; non-empty only with aggregate projections *)
}

type order_key = { key : string option * string; descending : bool }

type query = {
  branches : select list;  (** UNION ALL *)
  order_by : order_key list;
  limit : int option;
}

type stmt =
  | Create_table of string * string list
  | Create_index of string * string * string list
      (** index, table, key columns *)
  | Insert of string * expr list
  | Update of string * (string * expr) list * expr option
  | Delete of string * expr option
  | Select of query
  | Explain of { analyze : bool; target : stmt }
      (** [EXPLAIN] shows the plan with predicted cardinalities and I/O;
          [EXPLAIN ANALYZE] also executes the statement and reports the
          actuals side by side. *)

val aggregate_to_string : aggregate -> string
val cmp_to_string : cmp -> string
val expr_to_string : expr -> string
