(* Abstract syntax of the SQL subset.

   The subset is exactly what the paper's figures use: CREATE TABLE /
   CREATE INDEX (Fig. 2), single-row INSERT (Fig. 5), DELETE, and
   SELECT with inner joins over base tables and transient collections,
   AND/OR/NOT, comparisons, BETWEEN, host variables, and UNION ALL
   (Figs. 8, 9, 11). All values are integers. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Host of string                     (* :name *)
  | Col of string option * string      (* alias.column or column *)
  | Cmp of cmp * expr * expr
  | Between of expr * expr * expr      (* e BETWEEN lo AND hi *)
  | And of expr * expr
  | Or of expr * expr
  | Not of expr

type aggregate = Count | Min | Max | Sum

type projection =
  | Star
  | Count_star
  | Proj_col of string option * string
  | Agg of aggregate * (string option * string)
      (** MIN/MAX/SUM/COUNT over a column *)

type select = {
  projections : projection list;
  froms : (string * string option) list; (* table, alias *)
  where : expr option;
  group_by : (string option * string) list;
}

type order_key = { key : string option * string; descending : bool }

type query = {
  branches : select list; (* UNION ALL *)
  order_by : order_key list;
  limit : int option;
}

type stmt =
  | Create_table of string * string list
  | Create_index of string * string * string list (* index, table, columns *)
  | Insert of string * expr list
  | Update of string * (string * expr) list * expr option
  | Delete of string * expr option
  | Select of query
  | Explain of { analyze : bool; target : stmt }

let aggregate_to_string = function
  | Count -> "COUNT"
  | Min -> "MIN"
  | Max -> "MAX"
  | Sum -> "SUM"

let cmp_to_string = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_to_string = function
  | Int n -> string_of_int n
  | Host h -> ":" ^ h
  | Col (None, c) -> c
  | Col (Some a, c) -> a ^ "." ^ c
  | Cmp (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr_to_string a) (cmp_to_string op)
        (expr_to_string b)
  | Between (e, lo, hi) ->
      Printf.sprintf "%s BETWEEN %s AND %s" (expr_to_string e)
        (expr_to_string lo) (expr_to_string hi)
  | And (a, b) ->
      Printf.sprintf "(%s AND %s)" (expr_to_string a) (expr_to_string b)
  | Or (a, b) ->
      Printf.sprintf "(%s OR %s)" (expr_to_string a) (expr_to_string b)
  | Not e -> Printf.sprintf "(NOT %s)" (expr_to_string e)
