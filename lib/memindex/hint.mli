(** HINT — a hierarchical main-memory interval index
    (Christodoulou, Bouros, Mamoulis: "HINT: A Hierarchical Index for
    Intervals in Main Memory", arXiv 2104.10939).

    The domain is mapped onto a grid of [2^m] cells; level [l] of the
    hierarchy (for [l = 0 .. m]) splits the domain into [2^l]
    partitions. An interval is decomposed bottom-up into at most two
    partitions per level whose extents tile its cell range — the classic
    segment-tree decomposition turned sideways, so a query touches at
    most two partitions per level that need comparisons and reports
    everything in between comparison-free.

    Within every partition the stored intervals are subdivided four
    ways, crossing two properties:

    - {b originals} vs {b replicas} — the unique assigned partition
      whose extent contains the interval's first cell holds the
      original; every other assigned partition holds a replica. Queries
      report middle partitions via originals only, which makes each
      result appear exactly once without a dedup pass.
    - ending {b in} vs {b after} the partition — whether the interval's
      last cell still falls inside the partition's extent. This splits
      the comparisons a boundary partition must run into the minimal
      set (the paper's subdivision optimisation).

    Partitions are stored sparsely (hash table plus an ordered set of
    occupied slots per level), so skewed and sparse domains cost memory
    proportional to the data, not to [2^m].

    Bound values outside [±2^59] are clamped before grid mapping — the
    grid map only needs to be monotone for correctness, all reporting
    decisions compare raw bounds — so [min_int]/[max_int] endpoints are
    handled exactly, with no overflow. *)

type t

val create : lo:int -> hi:int -> ?m:int -> unit -> t
(** Universe of admissible bound values, inclusive. [m] is the number
    of grid bits (levels [0..m]); it defaults to 10 and is clamped to
    [1..24]. @raise Invalid_argument if [lo > hi]. *)

val suggested_grid : rows:int -> int
(** Grid bits tuned for a mixed stabbing/range workload over [rows]
    intervals: one bottom cell per ~64 rows, clamped to [7..16]. Over-
    partitioning makes wide range probes pay a lookup per near-empty
    middle cell; this backoff keeps that walk short while stabbing
    stays logarithmic. *)

val insert : ?id:int -> t -> Interval.Ivl.t -> int
(** @raise Invalid_argument if a bound leaves the universe. *)

val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int

val entry_count : t -> int
(** Total registrations including replicas (storage redundancy;
    at most [count * (m+1) * 2], typically far less). *)

val partition_count : t -> int
(** Occupied partitions across all levels (sparse footprint). *)

val levels : t -> int
(** Number of levels, [m + 1]. *)

val approx_bytes : t -> int
(** Rough resident-size estimate used for hot-tier budgeting. *)

val intersecting_ids : t -> Interval.Ivl.t -> int list
(** Ids of stored intervals intersecting the query, each exactly once,
    in unspecified order. *)

val intersecting : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** Like {!intersecting_ids} but with the stored intervals. *)

val stabbing_ids : t -> int -> int list

val relation :
  t ->
  Interval.Allen.relation ->
  Interval.Ivl.t ->
  (Interval.Ivl.t * int) list
(** Stored intervals [i] (with ids) such that [Allen.holds r i q], for
    any of the thirteen relations. Intersection-implying relations
    refine an intersection probe; [Before]/[After]/[Meets]/[Met_by]
    probe the complement range or the touching bound. *)

val relation_ids :
  t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
(** Ids of {!relation}. *)

val check_invariants : t -> unit
(** Structural audit: every entry sits in the sublist its grid prefixes
    dictate, occupied sets match the hash tables, and counts add up.
    @raise Failure on violation. *)
