module Ivl = Interval.Ivl
module ISet = Set.Make (Int)

type entry = { e_lo : int; e_up : int; e_id : int }

(* The four-way subdivision of a partition: originals vs replicas,
   ending inside vs after the partition extent. *)
type part = {
  mutable o_in : entry list;
  mutable o_aft : entry list;
  mutable r_in : entry list;
  mutable r_aft : entry list;
}

type level = {
  parts : (int, part) Hashtbl.t;
  (* Ordered occupied-slot set: lets a wide query walk only non-empty
     middle partitions, which is what makes sparse/skewed domains
     cheap. *)
  mutable occupied : ISet.t;
}

type t = {
  lo : int;
  hi : int; (* declared universe, raw *)
  dlo : int;
  dhi : int; (* clamped universe the grid arithmetic runs on *)
  shift : int; (* cell width is 2^shift clamped values *)
  m : int;
  levels : level array; (* index l = 0 .. m; level l has 2^l slots *)
  mutable count : int;
  mutable entries : int;
  mutable min_lower : int; (* conservative extremes of stored bounds *)
  mutable max_upper : int;
}

(* Grid coordinates stay below 2^60 so the partition arithmetic can
   never overflow, whatever the declared universe. Clamping is safe
   because every reporting decision compares raw bounds; the grid map
   only has to be monotone. *)
let clamp_bound = 1 lsl 59

let create ~lo ~hi ?(m = 10) () =
  if lo > hi then invalid_arg "Hint.create: empty universe";
  let m = max 1 (min m 24) in
  let dlo = min (max lo (-clamp_bound)) (clamp_bound - 1) in
  let dhi = max (min hi (clamp_bound - 1)) dlo in
  let span = dhi - dlo in
  let shift = ref 0 in
  while span asr !shift >= 1 lsl m do
    incr shift
  done;
  {
    lo;
    hi;
    dlo;
    dhi;
    shift = !shift;
    m;
    levels =
      Array.init (m + 1) (fun _ ->
          { parts = Hashtbl.create 16; occupied = ISet.empty });
    count = 0;
    entries = 0;
    min_lower = max_int;
    max_upper = min_int;
  }

let grid t v = (min (max v t.dlo) t.dhi - t.dlo) asr t.shift

(* One grid cell per ~64 rows: a wide range query walks the occupied
   middle partitions of its cell range, so over-partitioning (m close
   to log2 n) makes range probes pay a hash lookup per near-empty cell.
   Backing off six doublings keeps that walk short while stabbing stays
   logarithmic; measured best for mixed workloads at 2k-10k rows. *)
let suggested_grid ~rows =
  let rec bits m = if 1 lsl m >= rows || m >= 22 then m else bits (m + 1) in
  max 7 (min 16 (bits 1 - 6))

let check_universe t ivl =
  if Ivl.lower ivl < t.lo || Ivl.upper ivl > t.hi then
    invalid_arg "Hint: interval outside the universe"

(* Bottom-up decomposition: walk the cell range [a, b] from level m
   towards the root, peeling a right-child slot off the left edge and a
   left-child slot off the right edge, then halving. Visits every
   assigned (level, slot) pair — at most two per level. *)
let assign_iter t a0 b0 f =
  let a = ref a0 and b = ref b0 and l = ref t.m in
  let continue_ = ref true in
  while !continue_ && !l >= 0 do
    if !a land 1 = 1 then begin
      f !l !a;
      incr a
    end;
    if !a <= !b && !b land 1 = 0 then begin
      f !l !b;
      decr b
    end;
    if !a > !b then continue_ := false
    else begin
      a := !a asr 1;
      b := !b asr 1;
      decr l
    end
  done

let part_for lvl slot =
  match Hashtbl.find_opt lvl.parts slot with
  | Some p -> p
  | None ->
      let p = { o_in = []; o_aft = []; r_in = []; r_aft = [] } in
      Hashtbl.replace lvl.parts slot p;
      lvl.occupied <- ISet.add slot lvl.occupied;
      p

let insert ?id t ivl =
  check_universe t ivl;
  let id = match id with Some i -> i | None -> t.count in
  let lo = Ivl.lower ivl and up = Ivl.upper ivl in
  let a0 = grid t lo and b0 = grid t up in
  let e = { e_lo = lo; e_up = up; e_id = id } in
  assign_iter t a0 b0 (fun l slot ->
      let lvl = t.levels.(l) in
      let p = part_for lvl slot in
      let sh = t.m - l in
      let original = a0 asr sh = slot in
      let inside = b0 asr sh = slot in
      (match (original, inside) with
      | true, true -> p.o_in <- e :: p.o_in
      | true, false -> p.o_aft <- e :: p.o_aft
      | false, true -> p.r_in <- e :: p.r_in
      | false, false -> p.r_aft <- e :: p.r_aft);
      t.entries <- t.entries + 1);
  t.count <- t.count + 1;
  if lo < t.min_lower then t.min_lower <- lo;
  if up > t.max_upper then t.max_upper <- up;
  id

let remove_first pred l =
  let rec go acc = function
    | [] -> None
    | x :: rest ->
        if pred x then Some (List.rev_append acc rest) else go (x :: acc) rest
  in
  go [] l

let delete t ~id ivl =
  check_universe t ivl;
  let lo = Ivl.lower ivl and up = Ivl.upper ivl in
  let a0 = grid t lo and b0 = grid t up in
  let matches e = e.e_id = id && e.e_lo = lo && e.e_up = up in
  let found = ref false in
  assign_iter t a0 b0 (fun l slot ->
      let lvl = t.levels.(l) in
      match Hashtbl.find_opt lvl.parts slot with
      | None -> ()
      | Some p ->
          let try_list get set =
            match remove_first matches (get p) with
            | None -> false
            | Some rest ->
                set p rest;
                t.entries <- t.entries - 1;
                true
          in
          let removed =
            try_list (fun p -> p.o_in) (fun p l -> p.o_in <- l)
            || try_list (fun p -> p.o_aft) (fun p l -> p.o_aft <- l)
            || try_list (fun p -> p.r_in) (fun p l -> p.r_in <- l)
            || try_list (fun p -> p.r_aft) (fun p l -> p.r_aft <- l)
          in
          if removed then begin
            found := true;
            if p.o_in = [] && p.o_aft = [] && p.r_in = [] && p.r_aft = []
            then begin
              Hashtbl.remove lvl.parts slot;
              lvl.occupied <- ISet.remove slot lvl.occupied
            end
          end);
  if !found then t.count <- t.count - 1;
  !found

let count t = t.count
let entry_count t = t.entries
let levels t = t.m + 1

let partition_count t =
  Array.fold_left (fun acc lvl -> acc + Hashtbl.length lvl.parts) 0 t.levels

(* Words, roughly: 4 boxed record fields + list cell per registration,
   plus per-partition and per-level overhead. *)
let approx_bytes t =
  ((t.entries * 7) + (partition_count t * 12) + ((t.m + 1) * 8)) * 8

(* One query probes at most two comparison-bearing partitions per level
   (the ones holding the query's first and last cell) and reports all
   originals of the occupied partitions in between comparison-free.
   All comparisons are on raw bounds, so grid clamping cannot
   misreport. Each result surfaces exactly once: only the unique
   assigned partition containing the interval's first cell reports it
   when swept as a middle partition, and at most one assigned partition
   lies on the query's first-cell path. *)
let fold_intersecting t q init f =
  let qlo = Ivl.lower q and qup = Ivl.upper q in
  let ga = grid t qlo and gb = grid t qup in
  let acc = ref init in
  let push e = acc := f !acc e in
  for l = 0 to t.m do
    let lvl = t.levels.(l) in
    if Hashtbl.length lvl.parts > 0 then begin
      let sh = t.m - l in
      let first = ga asr sh and last = gb asr sh in
      if first = last then
        match Hashtbl.find_opt lvl.parts first with
        | None -> ()
        | Some p ->
            List.iter
              (fun e -> if e.e_lo <= qup && e.e_up >= qlo then push e)
              p.o_in;
            List.iter (fun e -> if e.e_lo <= qup then push e) p.o_aft;
            List.iter (fun e -> if e.e_up >= qlo then push e) p.r_in;
            List.iter push p.r_aft
      else begin
        (match Hashtbl.find_opt lvl.parts first with
        | None -> ()
        | Some p ->
            List.iter (fun e -> if e.e_up >= qlo then push e) p.o_in;
            List.iter push p.o_aft;
            List.iter (fun e -> if e.e_up >= qlo then push e) p.r_in;
            List.iter push p.r_aft);
        if last - first > 1 then begin
          let rec middles seq =
            match seq () with
            | Seq.Cons (slot, rest) when slot < last ->
                (match Hashtbl.find_opt lvl.parts slot with
                | None -> ()
                | Some p ->
                    List.iter push p.o_in;
                    List.iter push p.o_aft);
                middles rest
            | _ -> ()
          in
          middles (ISet.to_seq_from (first + 1) lvl.occupied)
        end;
        match Hashtbl.find_opt lvl.parts last with
        | None -> ()
        | Some p ->
            List.iter (fun e -> if e.e_lo <= qup then push e) p.o_in;
            List.iter (fun e -> if e.e_lo <= qup then push e) p.o_aft
      end
    end
  done;
  !acc

let intersecting_ids t q = fold_intersecting t q [] (fun acc e -> e.e_id :: acc)

let intersecting t q =
  fold_intersecting t q [] (fun acc e ->
      (Ivl.make e.e_lo e.e_up, e.e_id) :: acc)

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let relation t r q =
  Allen_probe.relation_matches
    ~intersecting:(fun probe -> intersecting t probe)
    ~min_lower:(if t.count = 0 then None else Some t.min_lower)
    ~max_upper:(if t.count = 0 then None else Some t.max_upper)
    r q

let relation_ids t r q = List.map snd (relation t r q)

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  let originals = ref 0 and registrations = ref 0 in
  Array.iteri
    (fun l lvl ->
      let sh = t.m - l in
      Hashtbl.iter
        (fun slot p ->
          if not (ISet.mem slot lvl.occupied) then
            fail "Hint: slot %d/%d missing from occupied set" l slot;
          if p.o_in = [] && p.o_aft = [] && p.r_in = [] && p.r_aft = [] then
            fail "Hint: empty partition %d/%d retained" l slot;
          let check_entry ~original ~inside e =
            registrations := !registrations + 1;
            if original then incr originals;
            let a0 = grid t e.e_lo and b0 = grid t e.e_up in
            if original <> (a0 asr sh = slot) then
              fail "Hint: entry %d misfiled original=%b at %d/%d" e.e_id
                original l slot;
            if inside <> (b0 asr sh = slot) then
              fail "Hint: entry %d misfiled inside=%b at %d/%d" e.e_id inside
                l slot
          in
          List.iter (check_entry ~original:true ~inside:true) p.o_in;
          List.iter (check_entry ~original:true ~inside:false) p.o_aft;
          List.iter (check_entry ~original:false ~inside:true) p.r_in;
          List.iter (check_entry ~original:false ~inside:false) p.r_aft)
        lvl.parts;
      ISet.iter
        (fun slot ->
          if not (Hashtbl.mem lvl.parts slot) then
            fail "Hint: occupied slot %d/%d has no partition" l slot)
        lvl.occupied)
    t.levels;
  if !registrations <> t.entries then
    fail "Hint: entry count drift (%d stored, %d counted)" t.entries
      !registrations;
  if !originals <> t.count then
    fail "Hint: original count drift (%d stored, %d counted)" t.count
      !originals
