(** A static segment tree (Bentley) — Sec. 2.1.

    The classic redundant competitor of the interval tree: each stored
    interval is decomposed over [O(log m)] canonical nodes of a balanced
    tree over the elementary slabs between endpoint coordinates, so space
    is [O(n log n)] while a stabbing query collects the lists on a single
    root-to-leaf path. Intersection queries combine a stab of the query's
    lower bound with the intervals whose lower bound lies inside the
    query (found through a sorted endpoint array) — every intersecting
    interval either covers the query's left edge or starts within the
    query. *)

type t

val build : Interval.Ivl.t array -> t
(** Interval [i] of the array gets id [i]. *)

val count : t -> int
val canonical_entries : t -> int
(** Total canonical-node registrations (the segment tree's storage
    redundancy). *)

val stabbing_ids : t -> int -> int list
(** Sorted ids of intervals containing the point. *)

val intersecting_ids : t -> Interval.Ivl.t -> int list
(** Sorted ids of intervals intersecting the query. *)

val intersecting : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** Like {!intersecting_ids} but with the stored intervals. *)

val relation_ids :
  t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
(** Stored ids [i] with [Allen.holds r i q]. *)
