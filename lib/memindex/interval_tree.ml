module Ivl = Interval.Ivl
module ISet = Set.Make (Int)

type node_rec = {
  mutable by_lower : (Ivl.t * int) list; (* ascending by lower bound *)
  mutable by_upper : (Ivl.t * int) list; (* descending by upper bound *)
  mutable ivls : (Ivl.t * int) list;     (* registered intervals *)
}

type t = {
  lo : int;                 (* declared universe, raw *)
  hi : int;
  offset : int;             (* clamped value v maps to v - offset >= 1 *)
  clamp_lo : int;           (* raw values are clamped into this range *)
  clamp_hi : int;           (* before the arithmetic mapping *)
  clamped : bool;           (* the map is non-injective at the edges *)
  root : int;
  nodes : (int, node_rec) Hashtbl.t;
  mutable nonempty : ISet.t;
  mutable count : int;
  mutable min_lower : int;  (* conservative extremes of stored bounds *)
  mutable max_upper : int;
}

(* The backbone is addressed arithmetically, so internal coordinates
   must stay well under max_int. Universes wider than 2^60 (including
   the [min_int, max_int] one) are clamped: values past the edges
   collapse into the edge coordinates. The mapping stays monotone, and
   every reporting decision below compares raw bounds, so clamping only
   costs an extra filter on the report-all path — never a wrong
   answer. *)
let clamp_bound = 1 lsl 59

let create ~lo ~hi =
  if lo > hi then invalid_arg "Interval_tree.create: empty universe";
  let clamp_lo = min (max lo (-clamp_bound)) (clamp_bound - 1) in
  let clamp_hi = max (min hi (clamp_bound - 1)) clamp_lo in
  let span = clamp_hi - clamp_lo + 1 in
  let rec pow2 r = if (2 * r) - 1 >= span then r else pow2 (2 * r) in
  { lo; hi; offset = clamp_lo - 1; clamp_lo; clamp_hi;
    clamped = lo < clamp_lo || hi > clamp_hi;
    root = pow2 1; nodes = Hashtbl.create 1024;
    nonempty = ISet.empty; count = 0;
    min_lower = max_int; max_upper = min_int }

let internal t v = min (max v t.clamp_lo) t.clamp_hi - t.offset

let check_universe t ivl =
  if Ivl.lower ivl < t.lo || Ivl.upper ivl > t.hi then
    invalid_arg "Interval_tree: interval outside the universe";
  (internal t (Ivl.lower ivl), internal t (Ivl.upper ivl))

let fork t (l, u) =
  let node = ref t.root and step = ref (t.root / 2) in
  (try
     while !step >= 1 do
       if u < !node then node := !node - !step
       else if !node < l then node := !node + !step
       else raise Exit;
       step := !step / 2
     done
   with Exit -> ());
  !node

let fork_node t ivl = fork t (check_universe t ivl)

let node_rec t w =
  match Hashtbl.find_opt t.nodes w with
  | Some r -> r
  | None ->
      let r = { by_lower = []; by_upper = []; ivls = [] } in
      Hashtbl.replace t.nodes w r;
      r

let insert_sorted cmp x l =
  let rec go = function
    | [] -> [ x ]
    | y :: rest -> if cmp x y <= 0 then x :: y :: rest else y :: go rest
  in
  go l

let insert ?id t ivl =
  let l, u = check_universe t ivl in
  let id = match id with Some i -> i | None -> t.count in
  let w = fork t (l, u) in
  let r = node_rec t w in
  r.by_lower <-
    insert_sorted
      (fun (a, _) (b, _) -> Int.compare (Ivl.lower a) (Ivl.lower b))
      (ivl, id) r.by_lower;
  r.by_upper <-
    insert_sorted
      (fun (a, _) (b, _) -> Int.compare (Ivl.upper b) (Ivl.upper a))
      (ivl, id) r.by_upper;
  r.ivls <- (ivl, id) :: r.ivls;
  t.nonempty <- ISet.add w t.nonempty;
  t.count <- t.count + 1;
  if Ivl.lower ivl < t.min_lower then t.min_lower <- Ivl.lower ivl;
  if Ivl.upper ivl > t.max_upper then t.max_upper <- Ivl.upper ivl;
  id

let delete t ~id ivl =
  let l, u = check_universe t ivl in
  let w = fork t (l, u) in
  match Hashtbl.find_opt t.nodes w with
  | None -> false
  | Some r ->
      if List.exists (fun (i, j) -> j = id && Ivl.equal i ivl) r.ivls then begin
        let remove_first pred l =
          let rec go acc = function
            | [] -> List.rev acc
            | x :: rest ->
                if pred x then List.rev_append acc rest else go (x :: acc) rest
          in
          go [] l
        in
        let pred (i, j) = j = id && Ivl.equal i ivl in
        r.ivls <- remove_first pred r.ivls;
        r.by_lower <- remove_first pred r.by_lower;
        r.by_upper <- remove_first pred r.by_upper;
        if r.ivls = [] then begin
          Hashtbl.remove t.nodes w;
          t.nonempty <- ISet.remove w t.nonempty
        end;
        t.count <- t.count - 1;
        true
      end
      else false

let count t = t.count
let node_count t = ISet.cardinal t.nonempty

(* The classic query: scan U(w) on nodes left of the query, L(w) on
   nodes right of it, and report every interval of the nodes covered by
   the query range (found through the tertiary structure). All
   comparisons are on raw bounds; only when the universe was clamped do
   report-all nodes need a filter, because distinct raw values may then
   share an internal coordinate. *)
let fold_intersecting t q init f =
  let ql = internal t (Ivl.lower q) and qu = internal t (Ivl.upper q) in
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let acc = ref init in
  let push x = acc := f !acc x in
  let scan_upper w =
    match Hashtbl.find_opt t.nodes w with
    | None -> ()
    | Some r ->
        (* descending by upper: stop at the first miss *)
        let rec go = function
          | ((i, _) as x) :: rest when Ivl.upper i >= qlow ->
              push x;
              go rest
          | _ -> ()
        in
        go r.by_upper
  in
  let scan_lower w =
    match Hashtbl.find_opt t.nodes w with
    | None -> ()
    | Some r ->
        (* ascending by lower: stop at the first miss *)
        let rec go = function
          | ((i, _) as x) :: rest when Ivl.lower i <= qup ->
              push x;
              go rest
          | _ -> ()
        in
        go r.by_lower
  in
  let classify w = if w < ql then scan_upper w else if w > qu then scan_lower w in
  (* Descent identical to the backbone traversal of the RI-tree. *)
  let node = ref t.root and step = ref (t.root / 2) in
  classify !node;
  while (not (ql <= !node && !node <= qu)) && !step >= 1 do
    if qu < !node then node := !node - !step else node := !node + !step;
    classify !node;
    step := !step / 2
  done;
  if ql <= !node && !node <= qu then begin
    let descend target =
      let n = ref !node and st = ref !step in
      while !n <> target && !st >= 1 do
        if target < !n then n := !n - !st else n := !n + !st;
        classify !n;
        st := !st / 2
      done
    in
    descend ql;
    descend qu
  end;
  (* Report-all nodes inside [ql, qu] via the tertiary structure. The
     drain is comparison-free whenever the internal mapping is injective
     over both the universe and the query; otherwise edge coordinates
     may mix non-intersecting intervals in and the raw filter decides. *)
  let exact =
    (not t.clamped) && qlow >= t.clamp_lo && qup <= t.clamp_hi
  in
  let report ((i, _) as x) = if exact || Ivl.intersects i q then push x in
  let rec drain seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (w, rest) ->
        if w <= qu then begin
          (match Hashtbl.find_opt t.nodes w with
          | None -> ()
          | Some r -> List.iter report r.ivls);
          drain rest
        end
  in
  drain (ISet.to_seq_from ql t.nonempty);
  !acc

let intersecting_ids t q =
  List.rev (fold_intersecting t q [] (fun acc (_, id) -> id :: acc))

let intersecting t q =
  List.rev (fold_intersecting t q [] (fun acc x -> x :: acc))

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let relation_ids t r q =
  Allen_probe.relation_ids
    ~intersecting:(fun probe ->
      let probe_lo = max (Ivl.lower probe) t.lo
      and probe_up = min (Ivl.upper probe) t.hi in
      if probe_lo > probe_up then []
      else intersecting t (Ivl.make probe_lo probe_up))
    ~min_lower:(if t.count = 0 then None else Some t.min_lower)
    ~max_upper:(if t.count = 0 then None else Some t.max_upper)
    r q
