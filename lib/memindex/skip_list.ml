module Ivl = Interval.Ivl

let levels = 16 (* enough for millions of entries at p = 1/4 *)

type node = {
  lower : int;
  upper : int;
  id : int;
  forward : node option array; (* length = tower height *)
  edge_max : int array; (* edge_max.(i): max upper over [self, forward.(i)) *)
}

type t = {
  header : node;
  mutable rng : int64;
  mutable count : int;
  mutable min_lower : int; (* conservative extremes of stored bounds *)
  mutable max_upper : int;
}

let key n = (n.lower, n.upper, n.id)

let mk_node ~lower ~upper ~id height =
  { lower; upper; id; forward = Array.make height None;
    edge_max = Array.make height min_int }

let create ?(seed = 0x5eed) () =
  { header = mk_node ~lower:min_int ~upper:min_int ~id:min_int levels;
    rng = Int64.of_int (seed lxor 0x9E3779B9); count = 0;
    min_lower = max_int; max_upper = min_int }

(* xorshift64 for tower heights *)
let rand_bits t =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  x

let random_height t =
  let rec go h bits =
    if h >= levels then levels
    else if Int64.logand bits 3L = 0L then
      go (h + 1) (Int64.shift_right_logical bits 2)
    else h
  in
  go 1 (rand_bits t)

let height n = Array.length n.forward

(* Recompute edge_max.(lvl) of [n] from the level below (or from the
   node itself at level 0). *)
let recompute_edge n lvl =
  if lvl = 0 then n.edge_max.(0) <- n.upper
  else begin
    let stop = n.forward.(lvl) in
    let m = ref min_int in
    let cur = ref (Some n) in
    let continue = ref true in
    while !continue do
      match !cur with
      | Some c when (match stop with Some s -> c != s | None -> true) ->
          if !m < c.edge_max.(lvl - 1) then m := c.edge_max.(lvl - 1);
          cur := c.forward.(lvl - 1)
      | _ -> continue := false
    done;
    n.edge_max.(lvl) <- !m
  end

(* Collect the update path: update.(i) is the rightmost node at level i
   whose key precedes [k]. *)
let find_update t k =
  let update = Array.make levels t.header in
  let cur = ref t.header in
  for lvl = levels - 1 downto 0 do
    let continue = ref true in
    while !continue do
      match !cur.forward.(lvl) with
      | Some next when compare (key next) k < 0 -> cur := next
      | Some _ | None -> continue := false
    done;
    update.(lvl) <- !cur
  done;
  update

let refresh_path update extra =
  (* Bottom-up: lower-level maxima feed the higher levels. *)
  for lvl = 0 to levels - 1 do
    List.iter
      (fun n -> if lvl < height n then recompute_edge n lvl)
      extra;
    if lvl < height update.(lvl) then recompute_edge update.(lvl) lvl
  done

let insert ?id t ivl =
  let id = match id with Some i -> i | None -> t.count in
  let k = (Ivl.lower ivl, Ivl.upper ivl, id) in
  let update = find_update t k in
  let h = random_height t in
  let n = mk_node ~lower:(Ivl.lower ivl) ~upper:(Ivl.upper ivl) ~id h in
  for lvl = 0 to h - 1 do
    n.forward.(lvl) <- update.(lvl).forward.(lvl);
    update.(lvl).forward.(lvl) <- Some n
  done;
  t.count <- t.count + 1;
  if Ivl.lower ivl < t.min_lower then t.min_lower <- Ivl.lower ivl;
  if Ivl.upper ivl > t.max_upper then t.max_upper <- Ivl.upper ivl;
  refresh_path update [ n ];
  id

let delete t ~id ivl =
  let k = (Ivl.lower ivl, Ivl.upper ivl, id) in
  let update = find_update t k in
  match update.(0).forward.(0) with
  | Some victim when compare (key victim) k = 0 ->
      for lvl = 0 to height victim - 1 do
        (match update.(lvl).forward.(lvl) with
        | Some n when n == victim ->
            update.(lvl).forward.(lvl) <- victim.forward.(lvl)
        | Some _ | None -> ());
        ()
      done;
      t.count <- t.count - 1;
      refresh_path update [];
      true
  | Some _ | None -> false

let count t = t.count

let max_level t =
  let rec top lvl =
    if lvl < 0 then 0
    else if t.header.forward.(lvl) <> None then lvl + 1
    else top (lvl - 1)
  in
  top (levels - 1)

let intersecting_ids t q =
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let acc = ref [] in
  (* process all nodes in [a, forward_{lvl+1}(a)) via levels below *)
  let rec edge a lvl =
    if a.edge_max.(lvl) >= qlow then
      if lvl = 0 then begin
        if a != t.header && a.lower <= qup && a.upper >= qlow then
          acc := a.id :: !acc
      end
      else begin
        let stop = a.forward.(lvl) in
        let cur = ref (Some a) in
        let continue = ref true in
        while !continue do
          match !cur with
          | Some c
            when (match stop with Some s -> c != s | None -> true)
                 && c.lower <= qup ->
              edge c (lvl - 1);
              cur := c.forward.(lvl - 1)
          | _ -> continue := false
        done
      end
  in
  let top = max 1 (max_level t) in
  let cur = ref (Some t.header) in
  let continue = ref true in
  while !continue do
    match !cur with
    | Some c when c.lower <= qup ->
        edge c (top - 1);
        cur := c.forward.(top - 1)
    | _ -> continue := false
  done;
  List.rev !acc

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let intersecting t q =
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let acc = ref [] in
  let rec edge a lvl =
    if a.edge_max.(lvl) >= qlow then
      if lvl = 0 then begin
        if a != t.header && a.lower <= qup && a.upper >= qlow then
          acc := (Ivl.make a.lower a.upper, a.id) :: !acc
      end
      else begin
        let stop = a.forward.(lvl) in
        let cur = ref (Some a) in
        let continue = ref true in
        while !continue do
          match !cur with
          | Some c
            when (match stop with Some s -> c != s | None -> true)
                 && c.lower <= qup ->
              edge c (lvl - 1);
              cur := c.forward.(lvl - 1)
          | _ -> continue := false
        done
      end
  in
  let top = max 1 (max_level t) in
  let cur = ref (Some t.header) in
  let continue = ref true in
  while !continue do
    match !cur with
    | Some c when c.lower <= qup ->
        edge c (top - 1);
        cur := c.forward.(top - 1)
    | _ -> continue := false
  done;
  List.rev !acc

let relation_ids t r q =
  Allen_probe.relation_ids
    ~intersecting:(fun probe -> intersecting t probe)
    ~min_lower:(if t.count = 0 then None else Some t.min_lower)
    ~max_upper:(if t.count = 0 then None else Some t.max_upper)
    r q

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* level-0 ordering and count *)
  let rec walk n acc =
    match n.forward.(0) with
    | None -> acc
    | Some next ->
        if compare (key n) (key next) >= 0 then fail "keys out of order";
        walk next (acc + 1)
  in
  let total = walk t.header 0 in
  if total <> t.count then fail "count %d, recorded %d" total t.count;
  (* every level is a subsequence of level 0, and maxima are exact *)
  let rec check_node n =
    for lvl = 0 to height n - 1 do
      (* brute-force recompute the span maximum *)
      let stop = n.forward.(lvl) in
      let m = ref (if n == t.header then min_int else n.upper) in
      let cur = ref n.forward.(0) in
      let continue = ref true in
      while !continue do
        match !cur with
        | Some c when (match stop with Some s -> c != s | None -> true) ->
            if c.upper > !m then m := c.upper;
            cur := c.forward.(0)
        | _ -> continue := false
      done;
      if n.edge_max.(lvl) <> !m && not (n == t.header && !m = min_int) then
        fail "edge max at level %d: stored %d, actual %d" lvl
          n.edge_max.(lvl) !m
    done;
    match n.forward.(0) with Some next -> check_node next | None -> ()
  in
  check_node t.header
