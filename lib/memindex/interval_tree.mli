(** Edelsbrunner's main-memory interval tree — the structure the RI-tree
    virtualises (Sec. 3.1).

    Explicit three-fold structure over a bounded universe: a binary
    backbone addressed arithmetically, secondary per-node lists of the
    registered intervals sorted by lower and by upper bound, and a
    tertiary ordered set of the non-empty nodes supporting the
    "report-all" range of a query. Space is [O(n)]; an intersection
    query costs [O(log m + r)] comparisons for universe size [m].

    Besides serving as a CPU-resident comparison point, this module
    cross-validates the RI-tree: both must return identical result sets
    on identical data (they implement the same query algorithm — one in
    memory, one in SQL). *)

type t

val create : lo:int -> hi:int -> t
(** Universe of admissible bound values, inclusive. Universes wider
    than [±2^59] (e.g. [min_int..max_int]) are handled by clamping the
    internal arithmetic mapping; query answers stay exact because
    reporting compares raw bounds.
    @raise Invalid_argument if [lo > hi]. *)

val insert : ?id:int -> t -> Interval.Ivl.t -> int
(** @raise Invalid_argument if a bound leaves the universe. *)

val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int
val node_count : t -> int
(** Non-empty backbone nodes (tertiary-structure size). *)

val intersecting_ids : t -> Interval.Ivl.t -> int list
val intersecting : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** Like {!intersecting_ids} but with the stored intervals. *)

val stabbing_ids : t -> int -> int list

val relation_ids :
  t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
(** Stored ids [i] with [Allen.holds r i q]; the query may lie outside
    the declared universe. *)

val fork_node : t -> Interval.Ivl.t -> int
(** Internal (shifted) fork value — exposed for the cross-validation
    tests. *)
