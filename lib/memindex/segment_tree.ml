module Ivl = Interval.Ivl

type t = {
  coords : int array; (* sorted unique endpoint values *)
  m : int;            (* elementary positions: 2 * #coords - 1 *)
  lists : int list array; (* heap-layout node lists, size 4m *)
  by_lower : (int * int) array; (* (lower, id) sorted *)
  data : Ivl.t array; (* id -> interval (ids are array indices) *)
  count : int;
  entries : int;
}

(* Position encoding: coordinate i -> 2i, open gap (x_i, x_{i+1}) ->
   2i + 1. Closed intervals then map to contiguous position ranges. *)
let coord_index coords x =
  let lo = ref 0 and hi = ref (Array.length coords) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if coords.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let position coords x =
  let i = coord_index coords x in
  if i < Array.length coords && coords.(i) = x then Some (2 * i)
  else if i = 0 || i = Array.length coords then None (* outside *)
  else Some ((2 * (i - 1)) + 1)

let build data =
  let coords =
    Array.concat [ Array.map Ivl.lower data; Array.map Ivl.upper data ]
  in
  Array.sort Int.compare coords;
  let uniq = ref [] in
  Array.iter
    (fun x -> match !uniq with y :: _ when y = x -> () | _ -> uniq := x :: !uniq)
    coords;
  let coords = Array.of_list (List.rev !uniq) in
  let k = Array.length coords in
  let m = max 1 ((2 * k) - 1) in
  let lists = Array.make (4 * m) [] in
  let entries = ref 0 in
  (* Canonical insertion of [a, b] into node covering [nl, nr]. *)
  let rec insert node nl nr a b id =
    if a <= nl && nr <= b then begin
      lists.(node) <- id :: lists.(node);
      incr entries
    end
    else begin
      let mid = (nl + nr) / 2 in
      if a <= mid then insert (2 * node) nl mid a b id;
      if b > mid then insert ((2 * node) + 1) (mid + 1) nr a b id
    end
  in
  Array.iteri
    (fun id ivl ->
      match (position coords (Ivl.lower ivl), position coords (Ivl.upper ivl))
      with
      | Some a, Some b -> insert 1 0 (m - 1) a b id
      | _ -> assert false (* endpoints are coordinates by construction *))
    data;
  let by_lower = Array.mapi (fun id ivl -> (Ivl.lower ivl, id)) data in
  Array.sort compare by_lower;
  { coords; m; lists; by_lower; data = Array.copy data;
    count = Array.length data; entries = !entries }

let count t = t.count
let canonical_entries t = t.entries

let stab_positions t p =
  match position t.coords p with
  | None -> None
  | Some pos -> Some pos

let stabbing_ids t p =
  match stab_positions t p with
  | None -> []
  | Some pos ->
      let acc = ref [] in
      let rec go node nl nr =
        List.iter (fun id -> acc := id :: !acc) t.lists.(node);
        if nl <> nr then begin
          let mid = (nl + nr) / 2 in
          if pos <= mid then go (2 * node) nl mid
          else go ((2 * node) + 1) (mid + 1) nr
        end
      in
      go 1 0 (t.m - 1);
      List.sort_uniq Int.compare !acc

let intersecting_ids t q =
  let stab = stabbing_ids t (Ivl.lower q) in
  (* Intervals not containing the query's lower bound intersect exactly
     when their lower bound lies within (qlow, qup]. *)
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let n = Array.length t.by_lower in
  let first_gt x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.by_lower.(mid) <= x then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let acc = ref [] in
  let i = ref (first_gt qlow) in
  while !i < n && fst t.by_lower.(!i) <= qup do
    acc := snd t.by_lower.(!i) :: !acc;
    incr i
  done;
  List.sort_uniq Int.compare (stab @ !acc)

let intersecting t q =
  List.map (fun id -> (t.data.(id), id)) (intersecting_ids t q)

(* Endpoint coordinates bound the stored intervals exactly: the least
   endpoint is some interval's lower bound, the greatest some upper. *)
let relation_ids t r q =
  Allen_probe.relation_ids
    ~intersecting:(fun probe -> intersecting t probe)
    ~min_lower:
      (if Array.length t.coords = 0 then None else Some t.coords.(0))
    ~max_upper:
      (if Array.length t.coords = 0 then None
       else Some t.coords.(Array.length t.coords - 1))
    r q
