module Ivl = Interval.Ivl
module Allen = Interval.Allen

(* The eleven intersection-implying relations refine an intersection
   probe directly. Before/After candidates never intersect the query,
   so they are reached through a complement probe instead: every stored
   interval wholly before the query intersects [min_lower, q.lower]
   (its lower bound is at least min_lower and at most q.lower), and
   symmetrically for After. Meets/Met_by intervals touch the query's
   bound, so a point stab suffices. The bounds may be conservative
   (stale-wide after deletions): a wider probe only adds candidates the
   Allen filter rejects. *)
let relation_matches ~intersecting ~min_lower ~max_upper r q =
  let qlo = Ivl.lower q and qup = Ivl.upper q in
  let filter pairs = List.filter (fun (i, _) -> Allen.holds r i q) pairs in
  match r with
  | Allen.Before -> (
      match min_lower with
      | None -> []
      | Some ml when ml > qlo -> []
      | Some ml -> filter (intersecting (Ivl.make ml qlo)))
  | Allen.After -> (
      match max_upper with
      | None -> []
      | Some mu when mu < qup -> []
      | Some mu -> filter (intersecting (Ivl.make qup mu)))
  | Allen.Meets -> filter (intersecting (Ivl.point qlo))
  | Allen.Met_by -> filter (intersecting (Ivl.point qup))
  | _ -> filter (intersecting q)

let relation_ids ~intersecting ~min_lower ~max_upper r q =
  List.map snd (relation_matches ~intersecting ~min_lower ~max_upper r q)
