(** Generic Allen-relation evaluation on top of any intersection-capable
    interval store.

    Sec. 4.5 of the RI-tree paper reduces the thirteen topological
    relations to range probes plus bound predicates; the same reduction
    works for every main-memory structure here, so it lives in one
    place. The store only has to answer intersection probes with
    [(interval, id)] pairs and report conservative extremes of its
    stored bounds. *)

val relation_matches :
  intersecting:(Interval.Ivl.t -> (Interval.Ivl.t * int) list) ->
  min_lower:int option ->
  max_upper:int option ->
  Interval.Allen.relation ->
  Interval.Ivl.t ->
  (Interval.Ivl.t * int) list
(** [relation_matches ~intersecting ~min_lower ~max_upper r q] is the
    stored intervals [i] (with ids) satisfying [Allen.holds r i q].
    [min_lower] / [max_upper] are the smallest lower and largest upper
    bound ever stored ([None] when nothing was ever inserted); they may
    be conservative (wider than the live contents) but must never be
    narrower. *)

val relation_ids :
  intersecting:(Interval.Ivl.t -> (Interval.Ivl.t * int) list) ->
  min_lower:int option ->
  max_upper:int option ->
  Interval.Allen.relation ->
  Interval.Ivl.t ->
  int list
(** Ids of {!relation_matches}. *)
