(** A dynamic interval skip list (after Hanson & Johnson's IS-list,
    Sec. 2.1 of the paper's related work).

    A randomised skip list over intervals ordered by (lower, upper, id),
    where every forward edge is augmented with the maximum upper bound of
    the interval span it skips. Queries descend the tower structure,
    pruning every span whose maximum upper bound ends before the query
    begins — the same pruning idea as the augmented interval tree of
    [CLR 90], on a probabilistically balanced structure that supports
    O(log n) expected insertion and deletion.

    Expected query cost is O(log n + k') where k' counts the intervals
    with lower bound below the query's end that survive pruning; for the
    temporal workloads of the paper this is close to the output size. *)

type t

val create : ?seed:int -> unit -> t
val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int

val intersecting_ids : t -> Interval.Ivl.t -> int list
(** Ascending by (lower, upper, id). *)

val intersecting : t -> Interval.Ivl.t -> (Interval.Ivl.t * int) list
(** Like {!intersecting_ids} but with the stored intervals. *)

val stabbing_ids : t -> int -> int list

val relation_ids :
  t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
(** Stored ids [i] with [Allen.holds r i q]. *)

val max_level : t -> int
(** Height of the tallest tower (diagnostic). *)

val check_invariants : t -> unit
(** Ordering, tower consistency, and exactness of every edge's
    max-upper augmentation. @raise Failure on violation. *)
