(* Quickstart: create a database, index intervals with the RI-tree, and
   run intersection / stabbing / topological queries.

   Run with:  dune exec examples/quickstart.exe *)

module Ivl = Interval.Ivl

let () =
  (* A database instance: simulated 2 KB-block device + 200-block cache,
     the setup of the paper's experiments. *)
  let db = Relation.Catalog.create () in

  (* The RI-tree is just a table (node, lower, upper, id) with two
     composite indexes; [create] sets all of that up. *)
  let tree = Ritree.Ri_tree.create db in

  (* Register some intervals: say, reservations with integer times. *)
  let reservations =
    [ (10, 40); (35, 60); (55, 80); (90, 120); (100, 101); (5, 200) ]
  in
  let ids =
    List.map (fun (l, u) -> Ritree.Ri_tree.insert tree (Ivl.make l u))
      reservations
  in
  Printf.printf "inserted %d intervals, ids %s\n"
    (Ritree.Ri_tree.count tree)
    (String.concat ", " (List.map string_of_int ids));

  (* Intersection query: everything overlapping [50, 95]. *)
  let q = Ivl.make 50 95 in
  let hits = Ritree.Ri_tree.intersecting tree q in
  Printf.printf "\nintervals intersecting %s:\n" (Ivl.to_string q);
  List.iter
    (fun (ivl, id) -> Printf.printf "  id %d: %s\n" id (Ivl.to_string ivl))
    hits;

  (* Stabbing (point) query. *)
  let p = 100 in
  Printf.printf "\nintervals containing %d: ids %s\n" p
    (String.concat ", "
       (List.map string_of_int (Ritree.Ri_tree.stabbing_ids tree p)));

  (* Topological queries (Allen relations, Sec. 4.5). *)
  let during = Ritree.Topological.query tree Interval.Allen.During q in
  Printf.printf "\nintervals lying strictly inside %s:\n" (Ivl.to_string q);
  List.iter
    (fun (ivl, id) -> Printf.printf "  id %d: %s\n" id (Ivl.to_string ivl))
    during;

  (* Look under the hood: the virtual backbone parameters and the
     execution plan of the intersection query (cf. the paper's
     Fig. 10). *)
  let p = Ritree.Ri_tree.params tree in
  Printf.printf
    "\nbackbone: offset=%s leftRoot=%d rightRoot=%d minLevel=%d height=%d\n"
    (match p.Ritree.Ri_tree.offset with
    | Some o -> string_of_int o
    | None -> "unset")
    p.Ritree.Ri_tree.left_root p.Ritree.Ri_tree.right_root
    p.Ritree.Ri_tree.min_level
    (Ritree.Ri_tree.height tree);
  print_newline ();
  print_string (Ritree.Ri_tree.explain tree q);

  (* Physical I/O of one query, as the paper measures it. *)
  let _, blocks =
    Harness.Measure.io db (fun () -> Ritree.Ri_tree.intersecting_ids tree q)
  in
  Printf.printf "\nphysical I/O for that query: %d blocks\n" blocks
