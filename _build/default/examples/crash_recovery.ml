(* Durability example: the "industrial strength" recovery the paper
   inherits from the host RDBMS, demonstrated on the bundled engine.

   A booking system commits after every confirmed batch; a crash in the
   middle of an unconfirmed batch loses exactly that batch and nothing
   else.

   Run with:  dune exec examples/crash_recovery.exe *)

module Ivl = Interval.Ivl
module Catalog = Relation.Catalog
module Ri = Ritree.Ri_tree

let () =
  let db = Catalog.create ~durable:true () in
  let tree = Ri.create ~name:"bookings" db in

  (* batch 1: confirmed *)
  List.iter
    (fun (l, u) -> ignore (Ri.insert tree (Ivl.make l u)))
    [ (900, 1000); (1010, 1100); (1200, 1400) ];
  Catalog.commit db;
  Printf.printf "committed batch 1: %d bookings\n" (Ri.count tree);

  (* batch 2: in flight when the machine dies *)
  List.iter
    (fun (l, u) -> ignore (Ri.insert tree (Ivl.make l u)))
    [ (1500, 1600); (1650, 1700) ];
  ignore (Ri.delete tree ~id:0 (Ivl.make 900 1000));
  Printf.printf "uncommitted work in flight: %d bookings (one cancelled)\n"
    (Ri.count tree);
  (match Catalog.journal_stats db with
  | Some (records, bytes) ->
      Printf.printf "journal: %d records, %d bytes\n" records bytes
  | None -> ());

  (* the crash: buffer pool gone, device possibly torn *)
  print_endline "\n*** crash ***\n";
  let db = Catalog.simulate_crash db in
  let tree = Ri.open_existing ~name:"bookings" db in
  Ri.check_invariants tree;
  Printf.printf "after recovery: %d bookings\n" (Ri.count tree);
  List.iter
    (fun (ivl, id) ->
      Printf.printf "  id %d: %s\n" id (Ivl.to_string ivl))
    (Ri.intersecting tree (Ivl.make 0 2000));

  (* business continues on the recovered database *)
  ignore (Ri.insert tree (Ivl.make 1500 1600));
  Catalog.commit db;
  Printf.printf "\nnew booking accepted after recovery: %d total\n"
    (Ri.count tree)
