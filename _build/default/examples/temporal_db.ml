(* Temporal database example (Sec. 4.6): valid-time intervals with the
   special upper bounds [now] and [infinity].

   An HR system tracks project assignments: some ended at a known date,
   some are open-ended until further notice (upper = now, the assignment
   is valid "until the current time"), and some are permanent
   (upper = infinity).

   Run with:  dune exec examples/temporal_db.exe *)

module Ivl = Interval.Ivl
module Temporal = Interval.Temporal

type assignment = { who : string; valid : Temporal.t }

let assignments =
  [
    { who = "ada on compiler"; valid = Temporal.make 100 (Finite 250) };
    { who = "grace on linker"; valid = Temporal.make 200 (Finite 400) };
    { who = "ada on runtime"; valid = Temporal.make 300 Now };
    { who = "alan on kernel"; valid = Temporal.make 150 Now };
    { who = "edsger on docs"; valid = Temporal.make 50 Infinity };
  ]

let () =
  let db = Relation.Catalog.create () in
  let store = Ritree.Temporal_store.create db in
  let by_id = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let id = Ritree.Temporal_store.insert store a.valid in
      Hashtbl.replace by_id id a)
    assignments;

  let show ~now q =
    Printf.printf "at time %d, assignments valid during %s:\n" now
      (Ivl.to_string q);
    List.iter
      (fun (iv, id) ->
        let a = Hashtbl.find by_id id in
        Printf.printf "  %-18s %s\n" a.who (Format.asprintf "%a" Temporal.pp iv))
      (Ritree.Temporal_store.intersecting store ~now q);
    print_newline ()
  in

  (* The same query window gives different answers as "now" advances:
     now-relative assignments keep growing. *)
  let window = Ivl.make 350 500 in
  show ~now:320 window;
  show ~now:380 window;
  show ~now:1000 window;

  (* An assignment starting in the future is not valid yet even though
     its start precedes the query window's end. *)
  let future = Ritree.Temporal_store.insert store (Temporal.make 900 Now) in
  Hashtbl.replace by_id future { who = "ada on ai"; valid = Temporal.make 900 Now };
  Printf.printf "after adding a now-assignment starting at 900:\n\n";
  show ~now:500 (Ivl.make 850 1000);
  (* valid once now >= 900 *)
  show ~now:950 (Ivl.make 850 1000)
