(* The paper's SQL, executed literally.

   Fig. 2 creates the schema, Fig. 5/6 insert intervals at their fork
   nodes, Fig. 9 is the two-branch intersection query over the transient
   node tables, and Fig. 10's execution plan is reproduced by EXPLAIN.

   Run with:  dune exec examples/sql_session.exe *)

module Ivl = Interval.Ivl

let show_result = function
  | Sqlfront.Engine.Done msg -> Printf.printf "  -> %s\n" msg
  | Sqlfront.Engine.Rows { columns; rows } ->
      Printf.printf "  -> %s\n" (String.concat " | " columns);
      List.iter
        (fun r ->
          Printf.printf "     %s\n"
            (String.concat " | "
               (Array.to_list (Array.map string_of_int r))))
        rows

let exec session ?binds sql =
  Printf.printf "SQL> %s\n" sql;
  show_result (Sqlfront.Engine.exec ?binds session sql)

let () =
  let db = Relation.Catalog.create () in
  let session = Sqlfront.Engine.session db in

  (* Fig. 2: "SQL statements to instantiate an RI-Tree" — with the id
     included in the indexes as the experimental setup notes. *)
  exec session "CREATE TABLE Intervals (node int, lower int, upper int, id int)";
  exec session "CREATE INDEX lowerIndex ON Intervals (node, lower, id)";
  exec session "CREATE INDEX upperIndex ON Intervals (node, upper, id)";

  (* Fig. 5: insertion takes a single SQL statement once the fork node
     is computed (by the RI-tree's pure integer arithmetic). *)
  let roots = ref Ritree.Backbone.empty_roots in
  let insert (l, u) id =
    roots := Ritree.Backbone.expand !roots ~l ~u;
    let fork = Ritree.Backbone.fork !roots ~l ~u in
    exec session
      ~binds:[ ("node", fork); ("lower", l); ("upper", u); ("id", id) ]
      "INSERT INTO Intervals VALUES (:node, :lower, :upper, :id)"
  in
  List.iteri (fun i iv -> insert iv (i + 1))
    [ (3, 8); (10, 14); (1, 2); (6, 11); (13, 13) ];

  (* The intersection query for (lower, upper) = (7, 12): descend the
     virtual backbone to fill the transient tables... *)
  let qlow = 7 and qup = 12 in
  let lefts = ref [ (qlow, qup) ] and rights = ref [] in
  Ritree.Backbone.collect !roots ~min_level:0 ~ql:qlow ~qu:qup
    ~left:(fun w -> lefts := (w, w) :: !lefts)
    ~right:(fun w -> rights := w :: !rights);
  Sqlfront.Engine.set_collection session "leftNodes"
    ~columns:[ "min"; "max" ]
    (List.map (fun (a, b) -> [| a; b |]) !lefts);
  Sqlfront.Engine.set_collection session "rightNodes" ~columns:[ "node" ]
    (List.map (fun w -> [| w |]) !rights);
  Printf.printf "\ntransient tables: leftNodes = %s; rightNodes = %s\n\n"
    (String.concat " "
       (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) !lefts))
    (String.concat " " (List.map string_of_int !rights));

  (* ... and run Fig. 9's two-branch UNION ALL. *)
  let fig9 =
    "SELECT id FROM Intervals i, leftNodes lft \
     WHERE i.node BETWEEN lft.min AND lft.max AND i.upper >= :lower \
     UNION ALL \
     SELECT id FROM Intervals i, rightNodes rgt \
     WHERE i.node = rgt.node AND i.lower <= :upper"
  in
  let binds = [ ("lower", qlow); ("upper", qup) ] in
  Printf.printf "EXPLAIN (cf. the paper's Fig. 10):\n%s\n"
    (Sqlfront.Engine.explain ~binds session fig9);
  exec session ~binds fig9;

  (* Cross-check against the library's own query path. *)
  let db2 = Relation.Catalog.create () in
  let tree = Ritree.Ri_tree.create db2 in
  List.iteri
    (fun i (l, u) -> ignore (Ritree.Ri_tree.insert ~id:(i + 1) tree (Ivl.make l u)))
    [ (3, 8); (10, 14); (1, 2); (6, 11); (13, 13) ];
  Printf.printf "\nRI-tree library answers: %s\n"
    (String.concat ", "
       (List.map string_of_int
          (List.sort compare
             (Ritree.Ri_tree.intersecting_ids tree (Ivl.make qlow qup)))))
