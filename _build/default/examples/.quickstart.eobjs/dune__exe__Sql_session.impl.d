examples/sql_session.ml: Array Interval List Printf Relation Ritree Sqlfront String
