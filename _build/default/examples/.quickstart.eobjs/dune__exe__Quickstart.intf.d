examples/quickstart.mli:
