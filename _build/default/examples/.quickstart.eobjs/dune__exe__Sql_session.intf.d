examples/sql_session.mli:
