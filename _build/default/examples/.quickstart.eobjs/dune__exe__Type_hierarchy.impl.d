examples/type_hierarchy.ml: Hierarchy Interval List Printf Relation Ritree String
