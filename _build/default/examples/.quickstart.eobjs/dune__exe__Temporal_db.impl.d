examples/temporal_db.ml: Format Hashtbl Interval List Printf Relation Ritree
