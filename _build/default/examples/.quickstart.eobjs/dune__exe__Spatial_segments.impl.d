examples/spatial_segments.ml: Hashtbl List Printf Relation Ritree Spatial String
