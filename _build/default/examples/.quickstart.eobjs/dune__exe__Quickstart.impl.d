examples/quickstart.ml: Harness Interval List Printf Relation Ritree String
