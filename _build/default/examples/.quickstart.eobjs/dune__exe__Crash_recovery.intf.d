examples/crash_recovery.mli:
