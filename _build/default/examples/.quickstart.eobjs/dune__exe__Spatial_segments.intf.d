examples/spatial_segments.mli:
