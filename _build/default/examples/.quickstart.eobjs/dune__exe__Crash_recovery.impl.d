examples/crash_recovery.ml: Interval List Printf Relation Ritree
