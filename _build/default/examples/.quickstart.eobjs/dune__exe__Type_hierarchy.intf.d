examples/type_hierarchy.mli:
