examples/temporal_db.mli:
