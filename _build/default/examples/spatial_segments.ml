(* Spatial example: 2-D window queries served by the RI-tree.

   The paper's introduction motivates intervals as "line segments on a
   space-filling curve in spatial applications" [FR 89]: the Spatial
   library decomposes each rectangle into maximal Z-order curve segments
   (an exact cover), registers them in an RI-tree, and answers window
   queries as interval-intersection queries.

   Run with:  dune exec examples/spatial_segments.exe *)

module Z = Spatial.Zcurve
module SI = Spatial.Spatial_index

type shape = { name : string; r : Z.rect }

let shapes =
  [
    { name = "lake"; r = { Z.x0 = 10; y0 = 10; x1 = 60; y1 = 40 } };
    { name = "forest"; r = { Z.x0 = 50; y0 = 30; x1 = 120; y1 = 90 } };
    { name = "town"; r = { Z.x0 = 100; y0 = 80; x1 = 140; y1 = 130 } };
    { name = "road"; r = { Z.x0 = 0; y0 = 64; x1 = 255; y1 = 65 } };
  ]

let () =
  let bits = 8 (* a 256 x 256 grid *) in
  let db = Relation.Catalog.create () in
  let idx = SI.create ~bits db in
  let names = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let segs = Z.rect_segments ~bits s.r in
      let id = SI.insert idx s.r in
      Hashtbl.replace names id s.name;
      Printf.printf "%-8s -> %3d maximal curve segments\n" s.name
        (List.length segs))
    shapes;
  Printf.printf "objects: %d, stored segments: %d\n\n" (SI.count idx)
    (SI.segment_count idx);

  let show w =
    let hits =
      List.map (fun id -> Hashtbl.find names id) (SI.window_ids idx w)
      |> List.sort compare
    in
    Printf.printf "window (%d,%d)-(%d,%d) intersects: %s\n" w.Z.x0 w.Z.y0
      w.Z.x1 w.Z.y1
      (if hits = [] then "(nothing)" else String.concat ", " hits)
  in
  show { Z.x0 = 55; y0 = 35; x1 = 70; y1 = 50 };
  show { Z.x0 = 130; y0 = 120; x1 = 150; y1 = 140 };
  show { Z.x0 = 0; y0 = 60; x1 = 10; y1 = 70 };
  show { Z.x0 = 200; y0 = 200; x1 = 210; y1 = 210 };

  (* a point probe: which shapes cover cell (110, 85)? *)
  Printf.printf "\npoint (110,85): %s\n"
    (String.concat ", "
       (List.map (fun id -> Hashtbl.find names id) (SI.point_ids idx 110 85)));

  (* the underlying RI-tree is an ordinary one — inspect it *)
  let p = Ritree.Ri_tree.params (SI.ri idx) in
  Printf.printf
    "underlying RI-tree: %d segment intervals, backbone height %d, \
     rightRoot %d\n"
    (Ritree.Ri_tree.count (SI.ri idx))
    (Ritree.Ri_tree.height (SI.ri idx))
    p.Ritree.Ri_tree.right_root
