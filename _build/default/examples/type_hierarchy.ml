(* Type-hierarchy example: "hierarchical type systems in object-oriented
   databases" [KRVV 93], one of the interval applications the paper's
   introduction lists.

   Every type is labelled with the integer range of its subtree; the
   RI-tree then answers subtype, supertype and least-common-ancestor
   queries through the relational engine.

   Run with:  dune exec examples/type_hierarchy.exe *)

module TH = Hierarchy.Type_hierarchy

let () =
  let db = Relation.Catalog.create () in
  let t = TH.create ~root:"animal" db in
  List.iter
    (fun (parent, child) -> TH.add t ~parent child)
    [ ("animal", "mammal"); ("animal", "bird"); ("animal", "reptile");
      ("mammal", "carnivore"); ("mammal", "primate"); ("mammal", "rodent");
      ("carnivore", "cat"); ("carnivore", "dog"); ("primate", "human");
      ("bird", "raptor"); ("raptor", "eagle"); ("bird", "penguin");
      ("reptile", "snake") ];
  Printf.printf "%d types registered; label ranges:\n" (TH.type_count t);
  List.iter
    (fun name ->
      Printf.printf "  %-10s %s\n" name
        (Interval.Ivl.to_string (TH.interval_of t name)))
    [ "animal"; "mammal"; "carnivore"; "cat" ];

  Printf.printf "\nsubtypes of mammal: %s\n"
    (String.concat ", " (TH.subtypes t "mammal"));
  Printf.printf "supertypes of eagle: %s\n"
    (String.concat ", " (TH.supertypes t "eagle"));
  List.iter
    (fun (a, b) ->
      Printf.printf "is %s a %s?  %b\n" a b (TH.is_subtype t ~sub:a ~super:b))
    [ ("cat", "mammal"); ("cat", "bird"); ("eagle", "animal") ];
  List.iter
    (fun (a, b) ->
      Printf.printf "least common ancestor of %s and %s: %s\n" a b
        (TH.common_supertype t a b))
    [ ("cat", "dog"); ("cat", "human"); ("cat", "penguin") ];

  (* the relational guts are ordinary RI-tree machinery: re-attach to the
     same table by name and inspect it *)
  let ri = Ritree.Ri_tree.open_existing ~name:"types" db in
  Printf.printf "\nrelational footprint: %d interval rows, %d index entries\n"
    (Ritree.Ri_tree.count ri)
    (Ritree.Ri_tree.index_entries ri)
