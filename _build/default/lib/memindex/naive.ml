module Ivl = Interval.Ivl

type t = {
  mutable items : (Ivl.t * int) list; (* reverse insertion order *)
  mutable next_id : int;
}

let create () = { items = []; next_id = 0 }

let insert ?id t ivl =
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  t.items <- (ivl, id) :: t.items;
  id

let delete t ~id ivl =
  let rec go acc = function
    | [] -> None
    | (i, j) :: rest when j = id && Ivl.equal i ivl ->
        Some (List.rev_append acc rest)
    | x :: rest -> go (x :: acc) rest
  in
  match go [] t.items with
  | Some items ->
      t.items <- items;
      true
  | None -> false

let count t = List.length t.items

let select t pred =
  List.rev (List.filter_map (fun (i, id) -> if pred i then Some id else None) t.items)

let intersecting_ids t q = select t (fun i -> Ivl.intersects i q)
let stabbing_ids t p = select t (fun i -> Ivl.contains i p)

let relation_ids t r q = select t (fun i -> Interval.Allen.holds r i q)

let to_list t = List.rev t.items
