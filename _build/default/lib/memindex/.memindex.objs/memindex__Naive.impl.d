lib/memindex/naive.ml: Interval List
