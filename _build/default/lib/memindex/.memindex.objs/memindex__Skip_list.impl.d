lib/memindex/skip_list.ml: Array Format Int64 Interval List
