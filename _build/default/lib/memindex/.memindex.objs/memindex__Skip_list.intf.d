lib/memindex/skip_list.mli: Interval
