lib/memindex/segment_tree.ml: Array Int Interval List
