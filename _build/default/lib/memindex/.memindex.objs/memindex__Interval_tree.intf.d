lib/memindex/interval_tree.mli: Interval
