lib/memindex/segment_tree.mli: Interval
