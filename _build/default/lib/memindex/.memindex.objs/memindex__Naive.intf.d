lib/memindex/naive.mli: Interval
