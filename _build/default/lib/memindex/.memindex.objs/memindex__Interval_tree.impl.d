lib/memindex/interval_tree.ml: Hashtbl Int Interval List Seq Set
