module Ivl = Interval.Ivl
module ISet = Set.Make (Int)

type node_rec = {
  mutable by_lower : (int * int) list; (* (lower, id) ascending by lower *)
  mutable by_upper : (int * int) list; (* (upper, id) descending by upper *)
  mutable ivls : (Ivl.t * int) list;   (* registered intervals *)
}

type t = {
  offset : int; (* raw value v maps to internal v - offset + 1 >= 1 *)
  root : int;
  nodes : (int, node_rec) Hashtbl.t;
  mutable nonempty : ISet.t;
  mutable count : int;
}

let create ~lo ~hi =
  if lo > hi then invalid_arg "Interval_tree.create: empty universe";
  let span = hi - lo + 1 in
  let rec pow2 r = if 2 * r - 1 >= span then r else pow2 (2 * r) in
  { offset = lo - 1; root = pow2 1; nodes = Hashtbl.create 1024;
    nonempty = ISet.empty; count = 0 }

let internal t v = v - t.offset

let check_universe t ivl =
  let l = internal t (Ivl.lower ivl) and u = internal t (Ivl.upper ivl) in
  if l < 1 || u > (2 * t.root) - 1 then
    invalid_arg "Interval_tree: interval outside the universe";
  (l, u)

let fork t (l, u) =
  let node = ref t.root and step = ref (t.root / 2) in
  (try
     while !step >= 1 do
       if u < !node then node := !node - !step
       else if !node < l then node := !node + !step
       else raise Exit;
       step := !step / 2
     done
   with Exit -> ());
  !node

let fork_node t ivl = fork t (check_universe t ivl)

let node_rec t w =
  match Hashtbl.find_opt t.nodes w with
  | Some r -> r
  | None ->
      let r = { by_lower = []; by_upper = []; ivls = [] } in
      Hashtbl.replace t.nodes w r;
      r

let insert_sorted cmp x l =
  let rec go = function
    | [] -> [ x ]
    | y :: rest -> if cmp x y <= 0 then x :: y :: rest else y :: go rest
  in
  go l

let insert ?id t ivl =
  let l, u = check_universe t ivl in
  let id = match id with Some i -> i | None -> t.count in
  let w = fork t (l, u) in
  let r = node_rec t w in
  r.by_lower <-
    insert_sorted (fun (a, _) (b, _) -> Int.compare a b) (Ivl.lower ivl, id)
      r.by_lower;
  r.by_upper <-
    insert_sorted (fun (a, _) (b, _) -> Int.compare b a) (Ivl.upper ivl, id)
      r.by_upper;
  r.ivls <- (ivl, id) :: r.ivls;
  t.nonempty <- ISet.add w t.nonempty;
  t.count <- t.count + 1;
  id

let delete t ~id ivl =
  let l, u = check_universe t ivl in
  let w = fork t (l, u) in
  match Hashtbl.find_opt t.nodes w with
  | None -> false
  | Some r ->
      if List.exists (fun (i, j) -> j = id && Ivl.equal i ivl) r.ivls then begin
        let remove_first pred l =
          let rec go acc = function
            | [] -> List.rev acc
            | x :: rest ->
                if pred x then List.rev_append acc rest else go (x :: acc) rest
          in
          go [] l
        in
        r.ivls <- remove_first (fun (i, j) -> j = id && Ivl.equal i ivl) r.ivls;
        r.by_lower <-
          remove_first (fun (v, j) -> j = id && v = Ivl.lower ivl) r.by_lower;
        r.by_upper <-
          remove_first (fun (v, j) -> j = id && v = Ivl.upper ivl) r.by_upper;
        if r.ivls = [] then begin
          Hashtbl.remove t.nodes w;
          t.nonempty <- ISet.remove w t.nonempty
        end;
        t.count <- t.count - 1;
        true
      end
      else false

let count t = t.count
let node_count t = ISet.cardinal t.nonempty

(* The classic query: scan U(w) on nodes left of the query, L(w) on
   nodes right of it, and report every interval of the nodes covered by
   the query range (found through the tertiary structure). *)
let intersecting_ids t q =
  let ql = internal t (Ivl.lower q) and qu = internal t (Ivl.upper q) in
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let acc = ref [] in
  let scan_upper w =
    match Hashtbl.find_opt t.nodes w with
    | None -> ()
    | Some r ->
        (* descending by upper: stop at the first miss *)
        let rec go = function
          | (u, id) :: rest when u >= qlow ->
              acc := id :: !acc;
              go rest
          | _ -> ()
        in
        go r.by_upper
  in
  let scan_lower w =
    match Hashtbl.find_opt t.nodes w with
    | None -> ()
    | Some r ->
        (* ascending by lower: stop at the first miss *)
        let rec go = function
          | (l, id) :: rest when l <= qup ->
              acc := id :: !acc;
              go rest
          | _ -> ()
        in
        go r.by_lower
  in
  let classify w = if w < ql then scan_upper w else if w > qu then scan_lower w in
  (* Descent identical to the backbone traversal of the RI-tree. *)
  let node = ref t.root and step = ref (t.root / 2) in
  classify !node;
  while (not (ql <= !node && !node <= qu)) && !step >= 1 do
    if qu < !node then node := !node - !step else node := !node + !step;
    classify !node;
    step := !step / 2
  done;
  if ql <= !node && !node <= qu then begin
    let descend target =
      let n = ref !node and st = ref !step in
      while !n <> target && !st >= 1 do
        if target < !n then n := !n - !st else n := !n + !st;
        classify !n;
        st := !st / 2
      done
    in
    descend ql;
    descend qu
  end;
  (* Report-all nodes inside [ql, qu] via the tertiary structure. *)
  let rec drain seq =
    match seq () with
    | Seq.Nil -> ()
    | Seq.Cons (w, rest) ->
        if w <= qu then begin
          (match Hashtbl.find_opt t.nodes w with
          | None -> ()
          | Some r -> List.iter (fun (_, id) -> acc := id :: !acc) r.ivls);
          drain rest
        end
  in
  drain (ISet.to_seq_from ql t.nonempty);
  List.rev !acc

let stabbing_ids t p = intersecting_ids t (Ivl.point p)
