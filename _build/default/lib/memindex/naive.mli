(** Brute-force interval store: the specification every other structure
    is tested against. *)

type t

val create : unit -> t
val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int
val intersecting_ids : t -> Interval.Ivl.t -> int list
(** In insertion order. *)

val stabbing_ids : t -> int -> int list
val relation_ids :
  t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
(** Stored ids [i] with [Allen.holds r i q]. *)

val to_list : t -> (Interval.Ivl.t * int) list
