lib/harness/methods.ml: Array Baselines Interval List Printf Relation Ritree
