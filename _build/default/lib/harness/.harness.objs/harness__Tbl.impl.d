lib/harness/tbl.ml: Buffer Float List Printf String
