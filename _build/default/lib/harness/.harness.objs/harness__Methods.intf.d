lib/harness/methods.mli: Baselines Interval Relation
