lib/harness/tbl.mli:
