lib/harness/measure.mli: Format Interval Relation
