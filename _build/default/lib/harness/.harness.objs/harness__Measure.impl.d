lib/harness/measure.ml: Array Format Relation Storage Sys
