(** Aligned text tables and CSV output for the benchmark reports. *)

type t

val create : title:string -> columns:string list -> t
val title : t -> string
val add_row : t -> string list -> unit
(** @raise Invalid_argument on arity mismatch. *)

val render : t -> string
(** Title, header, separator, aligned rows. *)

val print : t -> unit

val to_csv : t -> string
val save_csv : t -> string -> unit
(** Write the CSV to a file path. *)

val fmt_f : float -> string
(** Compact float formatting for cells ("12.3", "0.004"). *)

val fmt_i : int -> string
