(** Uniform access-method handles for the comparative experiments.

    Each handle owns its own database instance (device + buffer pool), so
    methods never share a cache and the per-method I/O counts are clean.
    The method set matches Sec. 6.1: the dynamic RI-tree, Tile Index and
    IST, plus MAP21 and the static Window-List. *)

type t = {
  label : string;
  catalog : Relation.Catalog.t;
  insert : Interval.Ivl.t -> int -> unit; (* interval, id *)
  count_query : Interval.Ivl.t -> int;    (* number of intersecting ids *)
  query_ids : Interval.Ivl.t -> int list;
  index_entries : unit -> int;
}

val ri_tree : ?block_size:int -> ?cache_blocks:int -> unit -> t
val ist : ?block_size:int -> ?cache_blocks:int -> ?order:Baselines.Ist.order -> unit -> t
val tile : ?block_size:int -> ?cache_blocks:int -> level:int -> unit -> t
val map21 : ?block_size:int -> ?cache_blocks:int -> unit -> t

val window_list :
  ?block_size:int -> ?cache_blocks:int -> Interval.Ivl.t array -> t
(** Static: built immediately from the snapshot; [insert] raises. *)

(** {2 Bulk-loaded variants}

    Same methods, built bottom-up from a snapshot: the tightly clustered
    page layout the paper credits for the competitors' response times.
    Used by the clustering ablation. *)

val ri_tree_bulk :
  ?block_size:int -> ?cache_blocks:int -> Interval.Ivl.t array -> t

val ist_bulk :
  ?block_size:int -> ?cache_blocks:int -> ?order:Baselines.Ist.order ->
  Interval.Ivl.t array -> t

val tile_bulk :
  ?block_size:int -> ?cache_blocks:int -> level:int ->
  Interval.Ivl.t array -> t

val load : t -> Interval.Ivl.t array -> unit
(** Insert interval [i] of the array with id [i]. *)

val calibrated_tile_level :
  Interval.Ivl.t array -> queries:Interval.Ivl.t array -> int
(** The paper's per-distribution tile-level calibration on a sample of
    1,000 intervals. *)
