type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }
let title t = t.title

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Tbl.add_row: %d cells for %d columns"
         (List.length row) (List.length t.columns));
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map (fun _ -> 0) t.columns)
      all
  in
  let line row =
    String.concat "  "
      (List.map2
         (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
         widths row)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (line r ^ "\n")) rows;
  Buffer.contents buf

let print t = print_string (render t)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row r =
    Buffer.add_string buf (String.concat "," (List.map csv_escape r));
    Buffer.add_char buf '\n'
  in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let save_csv t path =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc

let fmt_f v =
  if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1.0 then Printf.sprintf "%.1f" v
  else Printf.sprintf "%.4f" v

let fmt_i = string_of_int
