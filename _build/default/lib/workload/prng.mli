(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository draws its randomness from an
    explicit seed through this module, so each figure is bit-reproducible
    run to run. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derive an independent stream (and advance this one). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t a b] is uniform in [a, b] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inverse-CDF). *)

val bool : t -> bool
