(** The interval distributions of Table 1.

    All bounding points lie in the domain [\[0, 2^20 - 1\]]. Starting
    points are either uniform over the domain (D1, D2) or the arrival
    times of a Poisson process spanning it (D3, D4 — "the arrival of
    temporal tuples follows a Poisson process. Thus the inter-arrival
    time is distributed exponentially"). Durations are either uniform in
    [\[0, 2d\]] (D1, D3) or exponential with mean [d] (D2, D4). The
    paper's experiments use [d = 2000] ("2k"). *)

type kind = D1 | D2 | D3 | D4

val all_kinds : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option

val domain_max : int
(** [2^20 - 1]. *)

val generate : ?seed:int -> kind -> n:int -> d:int -> Interval.Ivl.t array
(** [n] intervals with duration parameter [d]; upper bounds are clamped
    to the domain. Deterministic in [seed] (default 42). *)

val generate_restricted :
  ?seed:int -> kind -> n:int -> min_len:int -> max_len:int ->
  Interval.Ivl.t array
(** The restricted-granularity variant of Fig. 15: durations uniform in
    [\[min_len, max_len\]] instead of the kind's own duration law (the
    starting-point law still follows [kind]). *)

val mean_length : Interval.Ivl.t array -> float

val pp_summary : Format.formatter -> Interval.Ivl.t array -> unit
(** One-line length/coverage summary used by the benchmark logs. *)
