type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let int_in t a b =
  if a > b then invalid_arg "Prng.int_in: empty range";
  a + int t (b - a + 1)

let float t =
  let r = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float t in
  -.mean *. log u

let bool t = Int64.logand (int64 t) 1L = 1L
