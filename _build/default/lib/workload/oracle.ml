module Ivl = Interval.Ivl

type t = { lowers : int array; uppers : int array }

let build data =
  let lowers = Array.map Ivl.lower data in
  let uppers = Array.map Ivl.upper data in
  Array.sort Int.compare lowers;
  Array.sort Int.compare uppers;
  { lowers; uppers }

let size t = Array.length t.lowers

(* Number of elements of the sorted array strictly less than [x]. *)
let count_lt arr x =
  let lo = ref 0 and hi = ref (Array.length arr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if arr.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let count_gt arr x = Array.length arr - count_lt arr (x + 1)

let count_intersecting t q =
  let n = Array.length t.lowers in
  n - count_lt t.uppers (Ivl.lower q) - count_gt t.lowers (Ivl.upper q)

let selectivity t q =
  if size t = 0 then 0.0
  else float_of_int (count_intersecting t q) /. float_of_int (size t)

let ids_intersecting data q =
  let acc = ref [] in
  Array.iteri (fun i ivl -> if Ivl.intersects ivl q then acc := i :: !acc) data;
  List.rev !acc
