(** Exact interval-intersection counting in [O(log n)] per query.

    For a closed query [q], the intervals {e not} intersecting it are
    exactly those with [upper < lower q] plus those with
    [lower > upper q], so two sorted endpoint arrays answer counting
    queries by binary search. Used to calibrate query selectivities
    (Sec. 6.3 fixes target selectivities per figure) and as a trusted
    result-set oracle in the test suite. *)

type t

val build : Interval.Ivl.t array -> t
val size : t -> int

val count_intersecting : t -> Interval.Ivl.t -> int
val selectivity : t -> Interval.Ivl.t -> float
(** Fraction of stored intervals intersecting [q]. *)

val ids_intersecting : Interval.Ivl.t array -> Interval.Ivl.t -> int list
(** Brute force over an array where the id of an interval is its array
    position; returns sorted ids. For test comparison. *)
