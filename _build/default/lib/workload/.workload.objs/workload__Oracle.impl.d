lib/workload/oracle.ml: Array Int Interval List
