lib/workload/oracle.mli: Interval
