lib/workload/distribution.mli: Format Interval
