lib/workload/query_gen.ml: Array Distribution Interval Oracle Prng
