lib/workload/distribution.ml: Array Format Interval Prng String
