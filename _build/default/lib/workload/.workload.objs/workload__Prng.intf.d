lib/workload/prng.mli:
