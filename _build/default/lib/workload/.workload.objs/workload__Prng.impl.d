lib/workload/prng.ml: Int64
