module Ivl = Interval.Ivl

type kind = D1 | D2 | D3 | D4

let all_kinds = [ D1; D2; D3; D4 ]

let kind_to_string = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | D4 -> "D4"

let kind_of_string s =
  match String.uppercase_ascii s with
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "D4" -> Some D4
  | _ -> None

let domain_max = (1 lsl 20) - 1

let clamp v = max 0 (min domain_max v)

(* Starting points: uniform for D1/D2; Poisson arrivals for D3/D4 with
   the rate chosen so the n-th arrival lands near the end of the
   domain. *)
let starts rng kind n =
  match kind with
  | D1 | D2 -> Array.init n (fun _ -> Prng.int rng (domain_max + 1))
  | D3 | D4 ->
      let mean_gap = float_of_int (domain_max + 1) /. float_of_int n in
      let t = ref 0.0 in
      Array.init n (fun _ ->
          t := !t +. Prng.exponential rng ~mean:mean_gap;
          clamp (int_of_float !t))

let durations rng kind n ~d =
  if d < 0 then invalid_arg "Distribution: negative duration parameter";
  if d = 0 then Array.make n 0 (* a pure point database *)
  else
    match kind with
    | D1 | D3 -> Array.init n (fun _ -> Prng.int rng ((2 * d) + 1))
    | D2 | D4 ->
        Array.init n (fun _ ->
            int_of_float (Prng.exponential rng ~mean:(float_of_int d)))

let assemble starts durations =
  Array.map2
    (fun s len -> Ivl.make s (clamp (s + len)))
    starts durations

let generate ?(seed = 42) kind ~n ~d =
  let rng = Prng.create ~seed in
  let s = starts rng kind n in
  let l = durations rng kind n ~d in
  assemble s l

let generate_restricted ?(seed = 42) kind ~n ~min_len ~max_len =
  if min_len > max_len || min_len < 0 then
    invalid_arg "Distribution.generate_restricted: bad length range";
  let rng = Prng.create ~seed in
  let s = starts rng kind n in
  let l = Array.init n (fun _ -> Prng.int_in rng min_len max_len) in
  assemble s l

let mean_length data =
  if Array.length data = 0 then 0.0
  else
    let total =
      Array.fold_left (fun acc i -> acc + Ivl.length i) 0 data
    in
    float_of_int total /. float_of_int (Array.length data)

let pp_summary ppf data =
  let n = Array.length data in
  let min_len, max_len =
    Array.fold_left
      (fun (mn, mx) i -> (min mn (Ivl.length i), max mx (Ivl.length i)))
      (max_int, 0) data
  in
  Format.fprintf ppf "n=%d mean_len=%.1f len_range=[%d,%d]" n
    (mean_length data)
    (if n = 0 then 0 else min_len)
    max_len
