(* Names are packed 7 bytes per integer: OCaml ints hold 63 bits, so a
   full 8-byte packing would lose the top bit of each word. *)

let width = 4
let bytes_per_int = 7
let max_name_length = (width * bytes_per_int) - 1

let encode_name s =
  let n = String.length s in
  if n = 0 then invalid_arg "Codec.encode_name: empty name";
  if n > max_name_length then
    invalid_arg
      (Printf.sprintf "Codec.encode_name: %S longer than %d bytes" s
         max_name_length);
  let buf = Bytes.make (width * bytes_per_int) '\000' in
  Bytes.set buf 0 (Char.chr n);
  Bytes.blit_string s 0 buf 1 n;
  Array.init width (fun i ->
      let v = ref 0 in
      for j = 0 to bytes_per_int - 1 do
        v := (!v lsl 8) lor Char.code (Bytes.get buf ((i * bytes_per_int) + j))
      done;
      !v)

let decode_name packed =
  if Array.length packed <> width then
    invalid_arg "Codec.decode_name: wrong packet width";
  let buf = Bytes.create (width * bytes_per_int) in
  Array.iteri
    (fun i v ->
      for j = bytes_per_int - 1 downto 0 do
        Bytes.set buf ((i * bytes_per_int) + j)
          (Char.chr ((v lsr (8 * (bytes_per_int - 1 - j))) land 0xff))
      done)
    packed;
  let n = Char.code (Bytes.get buf 0) in
  if n = 0 || n > max_name_length then
    invalid_arg "Codec.decode_name: malformed packet";
  Bytes.sub_string buf 1 n
