lib/relation/heap.mli: Storage
