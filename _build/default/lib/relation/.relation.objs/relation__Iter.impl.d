lib/relation/iter.ml: Array Btree Hashtbl Heap List Option Table
