lib/relation/catalog.mli: Storage Table
