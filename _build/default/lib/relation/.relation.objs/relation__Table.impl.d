lib/relation/table.ml: Array Btree Format Heap List Printf Storage
