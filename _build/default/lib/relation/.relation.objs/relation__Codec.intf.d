lib/relation/codec.mli:
