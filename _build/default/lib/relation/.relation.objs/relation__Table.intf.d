lib/relation/table.mli: Btree Heap Storage
