lib/relation/heap.ml: Array Bytes Char Format Int64 List Printf Storage
