lib/relation/codec.ml: Array Bytes Char Printf String
