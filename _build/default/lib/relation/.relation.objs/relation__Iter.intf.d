lib/relation/iter.mli: Table
