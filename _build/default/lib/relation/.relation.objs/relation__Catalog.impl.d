lib/relation/catalog.ml: Array Btree Codec Hashtbl Heap Int List Option Printf Storage Table
