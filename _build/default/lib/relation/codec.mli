(** Packing short names into fixed-width integer rows.

    The storage engine stores integers only; the system dictionary needs
    table, index and column names. A name of up to {!max_name_length}
    bytes is packed length-prefixed into {!width} integers. *)

val width : int
(** Integers per packed name (4). *)

val max_name_length : int
(** 27 bytes (7 payload bytes per 63-bit integer). *)

val encode_name : string -> int array
(** @raise Invalid_argument if the name is too long or empty. *)

val decode_name : int array -> string
(** Inverse of {!encode_name}.
    @raise Invalid_argument on a malformed packet. *)
