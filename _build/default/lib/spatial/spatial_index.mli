(** A 2-D window-query index built on the RI-tree.

    Rectangles are decomposed into maximal Z-curve segments
    ({!Zcurve.rect_segments}) and the segments registered in one RI-tree
    under the object's id. Because the decomposition covers exactly the
    object's cells, two rectangles intersect iff some pair of their curve
    segments intersects — window queries are exact, with duplicates from
    multi-segment objects eliminated. This is the paper's own spatial
    use-case for interval indexing, end to end. *)

type t

val create : ?name:string -> bits:int -> Relation.Catalog.t -> t
(** Grid of [2^bits x 2^bits] cells. *)

val bits : t -> int

val insert : ?id:int -> t -> Zcurve.rect -> int
(** Register a rectangle; returns its id. *)

val delete : t -> id:int -> Zcurve.rect -> bool
(** Remove a previously inserted rectangle (the same rect must be
    given). *)

val count : t -> int
(** Registered rectangles. *)

val segment_count : t -> int
(** Stored curve segments (the storage redundancy of the mapping). *)

val window_ids : t -> Zcurve.rect -> int list
(** Ids of rectangles intersecting the window, each once, ascending. *)

val point_ids : t -> int -> int -> int list
(** Rectangles containing the cell [(x, y)]. *)

val ri : t -> Ritree.Ri_tree.t
