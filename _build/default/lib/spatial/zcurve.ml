module Ivl = Interval.Ivl

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

let max_bits = 20

let check_bits bits =
  if bits < 1 || bits > max_bits then
    invalid_arg (Printf.sprintf "Zcurve: bits %d outside [1, %d]" bits max_bits)

let spread ~bits v =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    r := !r lor (((v lsr i) land 1) lsl (2 * i))
  done;
  !r

let unspread ~bits v =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    r := !r lor (((v lsr (2 * i)) land 1) lsl i)
  done;
  !r

let encode ~bits x y =
  check_bits bits;
  let side = 1 lsl bits in
  if x < 0 || y < 0 || x >= side || y >= side then
    invalid_arg
      (Printf.sprintf "Zcurve.encode: (%d, %d) outside the %dx%d grid" x y
         side side);
  spread ~bits x lor (spread ~bits y lsl 1)

let decode ~bits z =
  check_bits bits;
  (unspread ~bits z, unspread ~bits (z lsr 1))

let rect_valid ~bits r =
  let side = 1 lsl bits in
  r.x0 >= 0 && r.y0 >= 0 && r.x0 <= r.x1 && r.y0 <= r.y1 && r.x1 < side
  && r.y1 < side

(* Recursive quadtree descent. The cell (cx, cy, size) with curve base
   [z] covers curve values [z, z + size^2 - 1]; quadrants visited in
   curve order, so emitted segments ascend and adjacent runs can be
   merged on the fly. *)
let rect_segments ~bits r =
  check_bits bits;
  if not (rect_valid ~bits r) then
    invalid_arg "Zcurve.rect_segments: invalid rectangle";
  let acc = ref [] in
  let emit lo hi =
    match !acc with
    | (plo, phi) :: rest when phi + 1 = lo -> acc := (plo, hi) :: rest
    | _ -> acc := (lo, hi) :: !acc
  in
  let rec go cx cy size z =
    let cx1 = cx + size - 1 and cy1 = cy + size - 1 in
    if r.x0 <= cx && cx1 <= r.x1 && r.y0 <= cy && cy1 <= r.y1 then
      emit z (z + (size * size) - 1)
    else if cx1 < r.x0 || cx > r.x1 || cy1 < r.y0 || cy > r.y1 then ()
    else begin
      let half = size / 2 in
      let quarter = half * half in
      (* curve order: (0,0), (1,0), (0,1), (1,1) — x in the even bits *)
      go cx cy half z;
      go (cx + half) cy half (z + quarter);
      go cx (cy + half) half (z + (2 * quarter));
      go (cx + half) (cy + half) half (z + (3 * quarter))
    end
  in
  go 0 0 (1 lsl bits) 0;
  List.rev_map (fun (lo, hi) -> Ivl.make lo hi) !acc

let segment_count_bound ~bits r =
  ignore bits;
  (4 * ((r.x1 - r.x0 + 1) + (r.y1 - r.y0 + 1))) + 8
