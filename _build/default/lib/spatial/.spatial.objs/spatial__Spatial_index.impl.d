lib/spatial/spatial_index.ml: Hashtbl Interval List Ritree Zcurve
