lib/spatial/zcurve.mli: Interval
