lib/spatial/zcurve.ml: Interval List Printf
