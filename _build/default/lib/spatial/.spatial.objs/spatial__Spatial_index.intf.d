lib/spatial/spatial_index.mli: Relation Ritree Zcurve
