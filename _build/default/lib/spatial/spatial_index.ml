module Ivl = Interval.Ivl

type t = {
  bits : int;
  tree : Ritree.Ri_tree.t;
  mutable next_id : int;
  mutable rect_count : int;
}

let create ?(name = "spatial") ~bits catalog =
  if bits < 1 || bits > Zcurve.max_bits then
    invalid_arg "Spatial_index.create: bits out of range";
  { bits; tree = Ritree.Ri_tree.create ~name catalog; next_id = 0;
    rect_count = 0 }

let bits t = t.bits

let insert ?id t rect =
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  List.iter
    (fun seg -> ignore (Ritree.Ri_tree.insert ~id t.tree seg))
    (Zcurve.rect_segments ~bits:t.bits rect);
  t.rect_count <- t.rect_count + 1;
  id

let delete t ~id rect =
  let removed =
    List.for_all
      (fun seg -> Ritree.Ri_tree.delete t.tree ~id seg)
      (Zcurve.rect_segments ~bits:t.bits rect)
  in
  if removed then t.rect_count <- t.rect_count - 1;
  removed

let count t = t.rect_count
let segment_count t = Ritree.Ri_tree.count t.tree

let window_ids t rect =
  let seen = Hashtbl.create 32 in
  List.iter
    (fun seg ->
      List.iter
        (fun id -> Hashtbl.replace seen id ())
        (Ritree.Ri_tree.intersecting_ids t.tree seg))
    (Zcurve.rect_segments ~bits:t.bits rect);
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

let point_ids t x y =
  let z = Zcurve.encode ~bits:t.bits x y in
  List.sort_uniq compare (Ritree.Ri_tree.stabbing_ids t.tree z)

let ri t = t.tree
