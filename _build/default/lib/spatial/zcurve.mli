(** Z-order (Morton) space-filling curve over a [2^bits x 2^bits] grid.

    The paper's introduction motivates intervals as "line segments on a
    space-filling curve in spatial applications" [FR 89] [BKK 99]: a 2-D
    region maps to a small set of 1-D curve intervals, turning window
    queries into interval-intersection queries. This module provides the
    curve and the exact decomposition of axis-aligned rectangles into
    maximal curve segments (recursive quadtree descent, adjacent runs
    merged), so that two regions overlap iff their segment sets
    intersect. *)

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }
(** Inclusive cell coordinates; [x0 <= x1], [y0 <= y1]. *)

val max_bits : int
(** 20 — a curve value then fits in 40 bits, within
    {!Ritree.Ri_tree.max_bound_magnitude}. *)

val encode : bits:int -> int -> int -> int
(** [encode ~bits x y] interleaves the coordinates (x in the even bit
    positions). @raise Invalid_argument if a coordinate leaves the
    grid. *)

val decode : bits:int -> int -> int * int
(** Inverse of {!encode}. *)

val rect_valid : bits:int -> rect -> bool

val rect_segments : bits:int -> rect -> Interval.Ivl.t list
(** The maximal Z-curve intervals covering exactly the cells of the
    rectangle, ascending and non-adjacent (already merged). The list has
    [O((x1-x0) + (y1-y0))] segments.
    @raise Invalid_argument on an invalid rectangle. *)

val segment_count_bound : bits:int -> rect -> int
(** Cheap upper bound on the decomposition size (diagnostic). *)
