(** Recursive-descent parser for the SQL subset (see {!Ast}). *)

exception Error of string

val parse : string -> Ast.stmt
(** Parse a single statement (a trailing [;] is allowed).
    @raise Error on syntax errors. *)

val parse_script : string -> Ast.stmt list
(** Parse a [;]-separated sequence of statements. *)
