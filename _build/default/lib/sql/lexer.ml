type token =
  | Ident of string
  | Number of int
  | Host_var of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  | Op_eq
  | Op_ne
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge

exception Error of string * int

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* line comment *)
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      emit (Number (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (Ident (String.sub src start (!i - start)))
    end
    else if c = ':' then begin
      incr i;
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      if !i = start then raise (Error ("empty host variable", start));
      emit (Host_var (String.sub src start (!i - start)))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "<=" ->
          emit Op_le;
          i := !i + 2
      | Some ">=" ->
          emit Op_ge;
          i := !i + 2
      | Some "<>" ->
          emit Op_ne;
          i := !i + 2
      | Some "!=" ->
          emit Op_ne;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> emit Lparen
          | ')' -> emit Rparen
          | ',' -> emit Comma
          | ';' -> emit Semicolon
          | '*' -> emit Star
          | '.' -> emit Dot
          | '=' -> emit Op_eq
          | '<' -> emit Op_lt
          | '>' -> emit Op_gt
          | '-' ->
              (* unary minus is folded into the number by the parser;
                 emit as a pseudo-ident so the parser can see it *)
              emit (Ident "-")
          | _ ->
              raise
                (Error (Printf.sprintf "unexpected character %C" c, !i - 1)))
    end
  done;
  List.rev !tokens

let token_to_string = function
  | Ident s -> s
  | Number n -> string_of_int n
  | Host_var h -> ":" ^ h
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semicolon -> ";"
  | Star -> "*"
  | Dot -> "."
  | Op_eq -> "="
  | Op_ne -> "<>"
  | Op_lt -> "<"
  | Op_le -> "<="
  | Op_gt -> ">"
  | Op_ge -> ">="
