(** Tokeniser for the SQL subset. *)

type token =
  | Ident of string   (** identifier or keyword, original spelling *)
  | Number of int
  | Host_var of string
  | Lparen
  | Rparen
  | Comma
  | Semicolon
  | Star
  | Dot
  | Op_eq
  | Op_ne
  | Op_lt
  | Op_le
  | Op_gt
  | Op_ge

exception Error of string * int
(** Message and character offset. *)

val tokenize : string -> token list
(** @raise Error on an unrecognised character. Handles [--] line comments
    and negative integer literals are produced by the parser, not here. *)

val token_to_string : token -> string
