lib/sql/lexer.mli:
