lib/sql/ast.mli:
