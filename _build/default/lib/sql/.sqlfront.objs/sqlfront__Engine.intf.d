lib/sql/engine.mli: Relation
