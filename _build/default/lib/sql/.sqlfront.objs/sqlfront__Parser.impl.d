lib/sql/parser.ml: Array Ast Lexer List Option Printf String
