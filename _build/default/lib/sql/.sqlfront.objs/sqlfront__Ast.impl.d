lib/sql/ast.ml: Printf
