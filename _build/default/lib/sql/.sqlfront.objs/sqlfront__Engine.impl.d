lib/sql/engine.ml: Array Ast Btree Buffer Hashtbl Int List Obj Option Parser Printf Relation String
