(** Intersection joins between two interval relations.

    The temporal-join workhorse: report every pair of intervals — one
    from each relation — that overlap. Two classic strategies are
    provided:

    - {!index_nested_ids} streams the smaller relation's base table and
      probes the other side's RI-tree with the Fig. 9 plan per row —
      the plan a relational optimizer would produce when one side is
      indexed;
    - {!sweep_ids} is the index-free endpoint plane-sweep: both tables
      are scanned once, intervals processed in lower-bound order with
      lazily expired active sets, O(n log n + output) time.

    Both return exactly the same pair set (verified in tests and usable
    as each other's oracle). *)

val index_nested_ids : Ri_tree.t -> Ri_tree.t -> (int * int) list
(** [(left id, right id)] for every intersecting pair, each exactly once
    (pairs of duplicate rows appear once per row pair). Ordering is
    unspecified. *)

val sweep_ids : Ri_tree.t -> Ri_tree.t -> (int * int) list

val count_pairs : Ri_tree.t -> Ri_tree.t -> int
(** Size of the join result, via the sweep. *)
