(** The virtual backbone of the Relational Interval Tree.

    The RI-tree never materialises its primary structure: the balanced
    binary tree over the data space exists only as integer arithmetic
    (Sec. 3.2–3.4 of the paper). This module is that arithmetic, kept
    pure so it can be tested exhaustively:

    - node values are integers of the (shifted) data space; the global
      root is [0], with a left subtree rooted at the negative power of
      two [left_root] and a right subtree at the positive power of two
      [right_root];
    - the {e fork node} of an interval [(l, u)] is the first node [w]
      with [l <= w <= u] on the bisection descent (Fig. 4 / Fig. 6);
    - the {e level} of a node is the number of trailing zero bits of its
      absolute value (leaves are odd numbers, level 0); an interval
      [(l, u)] is never registered below level [floor(log2(u - l))]
      (the paper's minstep lemma), so query descents stop at the lowest
      level at which an insertion ever took place. *)

type roots = { left_root : int; right_root : int }
(** [left_root <= 0] is [0] (absent) or a negative power of two;
    [right_root >= 0] is [0] (absent) or a positive power of two. *)

val empty_roots : roots
(** Both subtrees absent. *)

val max_level : int
(** Initial (infinite) value for the minimum insertion level. *)

val level : int -> int
(** [level w] of a node value [w <> 0]: trailing zeros of [abs w].
    @raise Invalid_argument on [0] (the global root is above every
    level). *)

val floor_log2 : int -> int
(** [floor_log2 x] for [x >= 1]. *)

val expand : roots -> l:int -> u:int -> roots
(** Grow the subtree roots so that the (shifted) interval [(l, u)] can be
    registered: the root-adjustment step of Fig. 6. *)

val fork : roots -> l:int -> u:int -> int
(** The fork node of the (shifted) interval [(l, u)]. The roots must
    already cover the interval (apply {!expand} first).
    @raise Invalid_argument if [l > u]. *)

val fork_level : roots -> l:int -> u:int -> int * int
(** Fork node together with its level; the level of fork node [0] is
    reported as [max_level] (it is never pruned). *)

val collect :
  roots ->
  min_level:int ->
  ql:int ->
  qu:int ->
  left:(int -> unit) ->
  right:(int -> unit) ->
  unit
(** Traverse the virtual backbone for the (shifted) query [(ql, qu)] and
    classify every visited node that can hold results (Sec. 4.1 / 4.2):
    [left w] is called for path nodes [w < ql] (whose upper-bound list
    must be scanned for [upper >= query lower]), [right w] for path nodes
    [w > qu] (lower-bound list scanned for [lower <= query upper]).
    Nodes inside [\[ql, qu\]] are not reported: the relational query
    covers them wholesale with the [BETWEEN] range. Descents stop at
    [min_level]. *)

val path : roots -> min_level:int -> int -> int list
(** The backbone search path for a (shifted) value: global root [0],
    subtree root, then the bisection nodes down to [min_level]. Every
    interval containing the value is registered on this path; used by the
    topological queries of Sec. 4.5. *)

val height : roots -> min_level:int -> int
(** Height of the virtual backbone per Sec. 3.5:
    [log2(max(-left_root, right_root)) - min_level + 2] levels between
    the deepest searched level and the global root (0 for an empty
    tree). *)
