type roots = { left_root : int; right_root : int }

let empty_roots = { left_root = 0; right_root = 0 }
let max_level = 62

let level w =
  if w = 0 then invalid_arg "Backbone.level: node 0 has no level";
  let w = abs w in
  let rec go w i = if w land 1 = 1 then i else go (w lsr 1) (i + 1) in
  go w 0

let floor_log2 x =
  if x < 1 then invalid_arg "Backbone.floor_log2: argument must be >= 1";
  let rec go x acc = if x <= 1 then acc else go (x lsr 1) (acc + 1) in
  go x 0

(* Root adjustment of Fig. 6. A right root r covers [1, 2r - 1]; a left
   root -r covers [-2r + 1, -1]. *)
let expand roots ~l ~u =
  let left_root =
    if u < 0 && l <= 2 * roots.left_root then - (1 lsl floor_log2 (-l))
    else roots.left_root
  in
  let right_root =
    if 0 < l && u >= 2 * roots.right_root then 1 lsl floor_log2 u
    else roots.right_root
  in
  { left_root; right_root }

let fork roots ~l ~u =
  if l > u then invalid_arg "Backbone.fork: lower exceeds upper";
  if u < 0 || 0 < l then begin
    let node = ref (if u < 0 then roots.left_root else roots.right_root) in
    let step = ref (abs !node / 2) in
    (try
       while !step >= 1 do
         if u < !node then node := !node - !step
         else if !node < l then node := !node + !step
         else raise Exit;
         step := !step / 2
       done
     with Exit -> ());
    !node
  end
  else (* l <= 0 <= u *) 0

let fork_level roots ~l ~u =
  let w = fork roots ~l ~u in
  (w, if w = 0 then max_level else level w)

(* Classify one visited node for the intersection query: strictly left
   of the query range -> scan its upper-bound list; strictly right ->
   scan its lower-bound list; inside -> covered by the BETWEEN range. *)
let classify ~ql ~qu ~left ~right w =
  if w < ql then left w else if w > qu then right w

(* Bisection descent within one subtree, starting below [(node, step)],
   visiting the path towards [target] down to [min_level]. *)
let descend_to ~min_pow ~visit node step target =
  let n = ref node and st = ref step in
  while !n <> target && !st >= min_pow do
    if target < !n then n := !n - !st else n := !n + !st;
    visit !n;
    st := !st / 2
  done

let collect roots ~min_level ~ql ~qu ~left ~right =
  if ql > qu then invalid_arg "Backbone.collect: lower exceeds upper";
  let min_pow = if min_level >= 62 then max_int else 1 lsl min_level in
  let classify = classify ~ql ~qu ~left ~right in
  classify 0;
  let subtree root =
    if root <> 0 then begin
      (* Phase 1: shared path from the subtree root to the fork of the
         query (the first node inside [ql, qu]). *)
      let node = ref root and step = ref (abs root / 2) in
      classify !node;
      while (not (ql <= !node && !node <= qu)) && !step >= min_pow do
        if qu < !node then node := !node - !step else node := !node + !step;
        classify !node;
        step := !step / 2
      done;
      if ql <= !node && !node <= qu then begin
        (* Phases 2 and 3: from the fork towards each query bound. *)
        descend_to ~min_pow ~visit:classify !node !step ql;
        descend_to ~min_pow ~visit:classify !node !step qu
      end
    end
  in
  if qu < 0 then subtree roots.left_root
  else if ql > 0 then subtree roots.right_root
  else begin
    (* The query straddles the global root: within the left subtree only
       the path towards ql matters, within the right one only qu. *)
    (if roots.left_root <> 0 && ql < 0 then begin
       classify roots.left_root;
       descend_to ~min_pow ~visit:classify roots.left_root
         (abs roots.left_root / 2) ql
     end);
    if roots.right_root <> 0 && qu > 0 then begin
      classify roots.right_root;
      descend_to ~min_pow ~visit:classify roots.right_root
        (roots.right_root / 2) qu
    end
  end

let path roots ~min_level x =
  let min_pow = if min_level >= 62 then max_int else 1 lsl min_level in
  let acc = ref [ 0 ] in
  let visit w = acc := w :: !acc in
  let root = if x < 0 then roots.left_root else roots.right_root in
  if x <> 0 && root <> 0 then begin
    visit root;
    descend_to ~min_pow ~visit root (abs root / 2) x
  end;
  List.rev !acc

let height roots ~min_level =
  let extent = max (-roots.left_root) roots.right_root in
  if extent = 0 then 0
  else
    let top = floor_log2 extent in
    let bottom = min min_level top in
    top - bottom + 2
