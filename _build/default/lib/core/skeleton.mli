(** A skeleton index over the RI-tree — the extension proposed in the
    paper's conclusion: "a promising extension is the application of the
    Skeleton Index technique to the RI-tree, because a partial
    materialization of the primary structure can be adapted to the
    expected data distribution."

    The skeleton materialises, per backbone node, how many intervals are
    registered there — a relational table [<name>_skeleton(node, count)]
    kept in sync on every update and cached in memory like the parameter
    dictionary. Intersection queries then skip the index probes of
    backbone nodes known to be empty. On data that occupies only part of
    the data space (the common case for growing temporal databases) this
    removes most single-node probes; on dense data it degrades to the
    plain plan.

    The wrapper is a drop-in for {!Ri_tree}'s query interface and proves
    its answers identical in the test suite. *)

type t

val create : ?name:string -> Relation.Catalog.t -> t
(** Creates the underlying RI-tree and its skeleton table. *)

val of_ri : Ri_tree.t -> Relation.Catalog.t -> t
(** Wrap an existing RI-tree, building the skeleton from its current
    contents (one scan). *)

val ri : t -> Ri_tree.t

val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int

val intersecting_ids : t -> Interval.Ivl.t -> int list
val count_intersecting : t -> Interval.Ivl.t -> int
val stabbing_ids : t -> int -> int list

val materialized_nodes : t -> int
(** Distinct non-empty backbone nodes currently materialised. *)

val probes_saved : t -> Interval.Ivl.t -> int * int
(** [(plain, filtered)] single-node probe counts for this query — the
    measured benefit of the skeleton. *)

val check_invariants : t -> unit
(** RI-tree invariants plus: the skeleton's per-node counts equal the
    actual registrations, in memory and in the persisted table. *)
