(** General topological queries over an RI-tree (Sec. 4.5).

    Beyond plain intersection, the paper notes that all thirteen Allen
    relations are efficiently supported because — unlike the IB+-tree or
    the IST — the RI-tree indexes {e both} interval bounds. The
    strategies used here:

    - [Before]/[After] touch only one bound: a single range scan over the
      node range strictly left (right) of the query, filtered on the
      bound — the total number of entries visited is the answer size plus
      the intersecting intervals on that side;
    - [Meets]/[Met_by] need intervals whose bound {e equals} a query
      bound; every interval containing a value lies on that value's
      backbone path, so [O(h)] exact index probes suffice;
    - the nine remaining relations imply intersection, so the candidate
      set from the intersection plan is fetched and filtered exactly.

    Results are [(interval, id)] pairs of stored intervals [i] such that
    [Allen.holds r i q]. *)

val query :
  Ri_tree.t ->
  Interval.Allen.relation ->
  Interval.Ivl.t ->
  (Interval.Ivl.t * int) list

val query_ids : Ri_tree.t -> Interval.Allen.relation -> Interval.Ivl.t -> int list
