module Ivl = Interval.Ivl

type t = {
  ri : Ri_tree.t;
  table : Relation.Table.t; (* (node, count) *)
  (* node -> (count, rowid of the persisted row) *)
  counts : (int, int * int) Hashtbl.t;
}

let materialize t node delta =
  match Hashtbl.find_opt t.counts node with
  | Some (c, rowid) ->
      let c = c + delta in
      if c < 0 then failwith "Skeleton: negative node count";
      Hashtbl.replace t.counts node (c, rowid);
      ignore (Relation.Table.update_row t.table rowid [| node; c |])
  | None ->
      if delta < 0 then failwith "Skeleton: negative node count";
      let rowid = Relation.Table.insert t.table [| node; delta |] in
      Hashtbl.replace t.counts node (delta, rowid)

let skeleton_table_name name = name ^ "_skeleton"

let create ?(name = "intervals") catalog =
  let ri = Ri_tree.create ~name catalog in
  let table =
    Relation.Catalog.create_table catalog
      ~name:(skeleton_table_name name)
      ~columns:[ "node"; "count" ]
  in
  { ri; table; counts = Hashtbl.create 1024 }

let of_ri ri catalog =
  let name = Ri_tree.name ri in
  let table =
    match
      Relation.Catalog.find_table catalog (skeleton_table_name name)
    with
    | Some tbl -> tbl
    | None ->
        Relation.Catalog.create_table catalog
          ~name:(skeleton_table_name name)
          ~columns:[ "node"; "count" ]
  in
  let t = { ri; table; counts = Hashtbl.create 1024 } in
  (* rebuild from the interval table *)
  ignore (Relation.Table.delete_where table (fun _ -> true));
  Relation.Table.iter (Ri_tree.table ri) (fun _ row ->
      materialize t row.(0) 1);
  t

let ri t = t.ri
let count t = Ri_tree.count t.ri

let insert ?id t ivl =
  let id = Ri_tree.insert ?id t.ri ivl in
  materialize t (Ri_tree.fork_node t.ri ivl) 1;
  id

let delete t ~id ivl =
  let removed = Ri_tree.delete t.ri ~id ivl in
  if removed then materialize t (Ri_tree.fork_node t.ri ivl) (-1);
  removed

let keep t node =
  match Hashtbl.find_opt t.counts node with
  | Some (c, _) -> c > 0
  | None -> false

let intersecting_ids t ivl =
  Ri_tree.intersecting_ids ~node_filter:(keep t) t.ri ivl

let count_intersecting t ivl =
  Ri_tree.count_intersecting ~node_filter:(keep t) t.ri ivl

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let materialized_nodes t =
  Hashtbl.fold (fun _ (c, _) acc -> if c > 0 then acc + 1 else acc) t.counts 0

let probes_saved t ivl =
  ( Ri_tree.probe_count t.ri ivl,
    Ri_tree.probe_count ~node_filter:(keep t) t.ri ivl )

let check_invariants t =
  Ri_tree.check_invariants t.ri;
  let fail fmt = Format.kasprintf failwith fmt in
  (* actual counts from the interval table *)
  let actual = Hashtbl.create 1024 in
  Relation.Table.iter (Ri_tree.table t.ri) (fun _ row ->
      Hashtbl.replace actual row.(0)
        (1 + Option.value ~default:0 (Hashtbl.find_opt actual row.(0))));
  Hashtbl.iter
    (fun node cnt ->
      match Hashtbl.find_opt t.counts node with
      | Some (c, _) when c = cnt -> ()
      | Some (c, _) -> fail "skeleton node %d: count %d, actual %d" node c cnt
      | None -> fail "skeleton misses node %d" node)
    actual;
  Hashtbl.iter
    (fun node (c, _) ->
      let real = Option.value ~default:0 (Hashtbl.find_opt actual node) in
      if c <> real then
        fail "skeleton node %d: count %d, actual %d" node c real)
    t.counts;
  (* the persisted table mirrors the in-memory cache *)
  Relation.Table.iter t.table (fun rowid row ->
      match Hashtbl.find_opt t.counts row.(0) with
      | Some (c, rid) when c = row.(1) && rid = rowid -> ()
      | Some _ | None ->
          fail "skeleton table row for node %d out of sync" row.(0))
