module Ivl = Interval.Ivl

let rows_of tree =
  let acc = ref [] in
  Relation.Table.iter (Ri_tree.table tree) (fun _ row ->
      acc := (row.(1), row.(2), row.(3)) :: !acc);
  !acc

(* Probe the indexed side once per outer row; the optimizer's choice of
   outer is the smaller relation. *)
let index_nested_ids left right =
  let swap = Ri_tree.count left > Ri_tree.count right in
  let outer, inner = if swap then (right, left) else (left, right) in
  let pairs = ref [] in
  List.iter
    (fun (l, u, id) ->
      List.iter
        (fun inner_id ->
          pairs :=
            (if swap then (inner_id, id) else (id, inner_id)) :: !pairs)
        (Ri_tree.intersecting_ids inner (Ivl.make l u)))
    (rows_of outer);
  !pairs

(* Endpoint plane-sweep with lazily expired active sets: intervals in
   lower order; each step pairs the current interval with the other
   side's active set (all intersect: they started no later and have not
   ended). Each active-set traversal either emits a pair or removes an
   expired entry, so the work is O(n log n + output). *)
let sweep_ids left right =
  let tag side (l, u, id) = (l, u, id, side) in
  let events =
    List.sort compare
      (List.map (tag 0) (rows_of left) @ List.map (tag 1) (rows_of right))
  in
  let active = [| ref []; ref [] |] (* per side: (upper, id), unordered *) in
  let pairs = ref [] in
  List.iter
    (fun (l, u, id, side) ->
      let other = 1 - side in
      let survivors = ref [] in
      List.iter
        (fun ((ou, oid) as entry) ->
          if ou >= l then begin
            survivors := entry :: !survivors;
            pairs := (if side = 0 then (id, oid) else (oid, id)) :: !pairs
          end)
        !(active.(other));
      active.(other) := !survivors;
      active.(side) := (u, id) :: !(active.(side)))
    events;
  !pairs

let count_pairs left right = List.length (sweep_ids left right)
