lib/core/temporal_store.mli: Interval Relation Ri_tree
