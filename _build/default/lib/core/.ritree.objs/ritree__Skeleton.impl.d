lib/core/skeleton.ml: Array Format Hashtbl Interval Option Relation Ri_tree
