lib/core/cost_model.ml: Array Btree Float Interval List Relation Ri_tree Storage
