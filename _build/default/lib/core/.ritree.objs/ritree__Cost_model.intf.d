lib/core/cost_model.mli: Interval Ri_tree
