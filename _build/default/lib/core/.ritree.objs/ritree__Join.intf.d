lib/core/join.mli: Ri_tree
