lib/core/skeleton.mli: Interval Relation Ri_tree
