lib/core/backbone.ml: List
