lib/core/temporal_store.ml: Interval List Ri_tree
