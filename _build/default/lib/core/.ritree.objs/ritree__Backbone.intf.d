lib/core/backbone.mli:
