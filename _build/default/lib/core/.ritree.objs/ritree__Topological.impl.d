lib/core/topological.ml: Array Backbone Interval List Relation Ri_tree
