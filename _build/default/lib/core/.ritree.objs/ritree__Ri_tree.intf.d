lib/core/ri_tree.mli: Interval Relation
