lib/core/topological.mli: Interval Ri_tree
