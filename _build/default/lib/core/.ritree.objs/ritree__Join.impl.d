lib/core/join.ml: Array Interval List Relation Ri_tree
