lib/core/ri_tree.ml: Array Backbone Btree Buffer Format Interval List Option Printf Relation
