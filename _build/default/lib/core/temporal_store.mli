(** Valid-time intervals with [now] and [infinity] upper bounds over an
    RI-tree (Sec. 4.6).

    Intervals ending at [infinity] are registered under the reserved fork
    value {!Ri_tree.fork_infinity}; intervals ending at [now] under
    {!Ri_tree.fork_now}. Neither requires any change to the backbone or
    to the SQL plan: at query time the reserved values are simply
    appended to the transient [rightNodes] table — [fork_now] only when
    the query begins in the past ([query lower <= now]) — so the plan's
    lower-bound scans test exactly the right predicate. *)

type t

val create : ?name:string -> Relation.Catalog.t -> t

val ri : t -> Ri_tree.t
(** The underlying RI-tree (finite intervals live there normally). *)

val insert : ?id:int -> t -> Interval.Temporal.t -> int

val intersecting_ids : t -> now:int -> Interval.Ivl.t -> int list
(** Ids of stored valid-time intervals that, evaluated at time [now],
    intersect the concrete query interval. *)

val intersecting :
  t -> now:int -> Interval.Ivl.t -> (Interval.Temporal.t * int) list

val count : t -> int
