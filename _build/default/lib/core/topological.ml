module Ivl = Interval.Ivl
module Allen = Interval.Allen

let fetch_matches t r q it =
  let table = Ri_tree.table t in
  Relation.Iter.fetch table it
  |> Relation.Iter.fold
       (fun acc row ->
         let ivl = Ivl.make row.(1) row.(2) in
         if Allen.holds r ivl q then (ivl, row.(3)) :: acc else acc)
       []
  |> List.rev

(* Every interval with a bound equal to value [x] is registered on the
   backbone path of [x], so O(h) exact probes cover Meets/Met_by. *)
let path_nodes t x =
  let p = Ri_tree.params t in
  match p.Ri_tree.offset with
  | None -> []
  | Some off ->
      let roots =
        { Backbone.left_root = p.Ri_tree.left_root;
          right_root = p.Ri_tree.right_root }
      in
      Backbone.path roots ~min_level:p.Ri_tree.min_level (x - off)

let query t r q =
  let p = Ri_tree.params t in
  match p.Ri_tree.offset with
  | None -> []
  | Some off -> (
      let qlow = Ivl.lower q and qup = Ivl.upper q in
      match r with
      | Allen.Before ->
          (* i.upper < qlow implies node <= i.upper - offset < ql: one
             ordered scan over all nodes strictly left of the query. *)
          let ql = qlow - off in
          let it =
            Relation.Iter.index_range (Ri_tree.upper_index t)
              ~lo:[| min_int; min_int; min_int; min_int |]
              ~hi:[| ql - 1; max_int; max_int; max_int |]
          in
          fetch_matches t r q (Relation.Iter.filter (fun k -> k.(1) < qlow) it)
      | Allen.After ->
          (* i.lower > qup implies node >= i.lower - offset > qu. Stop
             short of the temporal sentinel nodes. *)
          let qu = qup - off in
          let it =
            Relation.Iter.index_range (Ri_tree.lower_index t)
              ~lo:[| qu + 1; min_int; min_int; min_int |]
              ~hi:[| Ri_tree.fork_now - 1; max_int; max_int; max_int |]
          in
          fetch_matches t r q (Relation.Iter.filter (fun k -> k.(1) > qup) it)
      | Allen.Meets ->
          let probes =
            List.map
              (fun w ->
                Relation.Iter.index_range (Ri_tree.upper_index t)
                  ~lo:[| w; qlow; min_int; min_int |]
                  ~hi:[| w; qlow; max_int; max_int |])
              (path_nodes t qlow)
          in
          fetch_matches t r q (Relation.Iter.union_all probes)
      | Allen.Met_by ->
          let probes =
            List.map
              (fun w ->
                Relation.Iter.index_range (Ri_tree.lower_index t)
                  ~lo:[| w; qup; min_int; min_int |]
                  ~hi:[| w; qup; max_int; max_int |])
              (path_nodes t qup)
          in
          fetch_matches t r q (Relation.Iter.union_all probes)
      | Allen.Overlaps | Allen.Finished_by | Allen.Contains | Allen.Starts
      | Allen.Equals | Allen.Started_by | Allen.During | Allen.Finishes
      | Allen.Overlapped_by ->
          (* These imply intersection: filter the intersection candidates
             exactly. *)
          List.filter (fun (ivl, _) -> Allen.holds r ivl q)
            (Ri_tree.intersecting t q))

let query_ids t r q = List.map snd (query t r q)
