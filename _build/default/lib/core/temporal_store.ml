module Ivl = Interval.Ivl
module Temporal = Interval.Temporal

(* Upper-column codes for sentinel rows; the column is never scanned for
   them (only the lower index is probed), so any reserved code works. *)
let code_infinity = max_int
let code_now = max_int - 1

type t = { ri : Ri_tree.t }

let create ?name catalog =
  match name with
  | Some n -> { ri = Ri_tree.create ~name:n catalog }
  | None -> { ri = Ri_tree.create ~name:"valid_time" catalog }

let ri t = t.ri

let insert ?id t (iv : Temporal.t) =
  match iv.Temporal.upper with
  | Temporal.Finite u -> Ri_tree.insert ?id t.ri (Ivl.make iv.Temporal.lower u)
  | Temporal.Infinity ->
      Ri_tree.insert_sentinel_row t.ri ~node:Ri_tree.fork_infinity
        ~lower:iv.Temporal.lower ~upper_code:code_infinity ~id
  | Temporal.Now ->
      Ri_tree.insert_sentinel_row t.ri ~node:Ri_tree.fork_now
        ~lower:iv.Temporal.lower ~upper_code:code_now ~id

let sentinel_hits t ~now q =
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let inf_rows =
    Ri_tree.sentinel_scan t.ri ~node:Ri_tree.fork_infinity ~max_lower:qup
  in
  let now_rows =
    (* fork_now joins rightNodes only when the query begins in the past;
       a now-interval is also only valid once lower <= now. *)
    if qlow <= now then
      Ri_tree.sentinel_scan t.ri ~node:Ri_tree.fork_now
        ~max_lower:(min qup now)
    else []
  in
  (inf_rows, now_rows)

let intersecting t ~now q =
  let finite =
    List.map
      (fun (ivl, id) -> (Temporal.fixed ivl, id))
      (Ri_tree.intersecting t.ri q)
  in
  let inf_rows, now_rows = sentinel_hits t ~now q in
  let of_row upper (lower, _, id) = (Temporal.make lower upper, id) in
  finite
  @ List.map (of_row Temporal.Infinity) inf_rows
  @ List.map (of_row Temporal.Now) now_rows

let intersecting_ids t ~now q =
  let finite = Ri_tree.intersecting_ids t.ri q in
  let inf_rows, now_rows = sentinel_hits t ~now q in
  finite
  @ List.map (fun (_, _, id) -> id) inf_rows
  @ List.map (fun (_, _, id) -> id) now_rows

let count t = Ri_tree.count t.ri
