type t = {
  block_size : int;
  mutable blocks : Bytes.t array;
  mutable allocated : int;
  mutable reads : int;
  mutable writes : int;
}

let create ?(block_size = 2048) () =
  if block_size < 64 then
    invalid_arg
      (Printf.sprintf "Block_device.create: block size %d too small"
         block_size);
  { block_size; blocks = Array.make 64 Bytes.empty; allocated = 0;
    reads = 0; writes = 0 }

let block_size t = t.block_size
let allocated t = t.allocated

let grow t =
  let cap = Array.length t.blocks in
  if t.allocated >= cap then begin
    let blocks = Array.make (2 * cap) Bytes.empty in
    Array.blit t.blocks 0 blocks 0 cap;
    t.blocks <- blocks
  end

let alloc t =
  grow t;
  let id = t.allocated in
  t.blocks.(id) <- Bytes.make t.block_size '\000';
  t.allocated <- id + 1;
  id

let check t id buf op =
  if id < 0 || id >= t.allocated then
    invalid_arg (Printf.sprintf "Block_device.%s: bad block id %d" op id);
  if Bytes.length buf <> t.block_size then
    invalid_arg
      (Printf.sprintf "Block_device.%s: buffer size %d, expected %d" op
         (Bytes.length buf) t.block_size)

let read t id buf =
  check t id buf "read";
  Bytes.blit t.blocks.(id) 0 buf 0 t.block_size;
  t.reads <- t.reads + 1

let write t id buf =
  check t id buf "write";
  Bytes.blit buf 0 t.blocks.(id) 0 t.block_size;
  t.writes <- t.writes + 1

module Stats = struct
  type device = t
  type t = { reads : int; writes : int }

  let total s = s.reads + s.writes
  let get (d : device) = { reads = d.reads; writes = d.writes }

  let reset (d : device) =
    d.reads <- 0;
    d.writes <- 0

  let pp ppf s =
    Format.fprintf ppf "reads=%d writes=%d total=%d" s.reads s.writes
      (total s)
end
