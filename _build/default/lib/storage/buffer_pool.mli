(** LRU buffer pool over a {!Block_device}.

    Models the database block cache of the paper's setup ("the database
    block cache was set to the default value of 200 database blocks with
    a block size of 2 KB"). Pages are pinned while in use; unpinned pages
    are evicted in least-recently-used order, writing dirty pages back to
    the device. All structures above the pool (heap tables, B+-trees)
    perform their page accesses through it, so the device counters report
    exactly the physical I/O the paper measures. *)

type t

val create : ?capacity:int -> Block_device.t -> t
(** [create ~capacity dev] caches up to [capacity] blocks (default 200).
    @raise Invalid_argument if [capacity < 1]. *)

val device : t -> Block_device.t
val block_size : t -> int
val capacity : t -> int

val alloc : t -> int
(** Allocate a fresh page on the device and install it, dirty and
    zero-filled, in the cache. Returns the page id. *)

val pin : t -> int -> Bytes.t
(** [pin t id] returns the in-cache bytes of page [id], faulting it in
    from the device if necessary. The page cannot be evicted until every
    {!pin} is matched by an {!unpin}. Mutating the returned bytes is
    allowed; pass [~dirty:true] to the matching unpin so the mutation
    survives eviction.
    @raise Failure if every frame is pinned (pool exhausted). *)

val unpin : t -> int -> dirty:bool -> unit
(** Release one pin of page [id]. [dirty:true] marks the page for
    write-back on eviction or flush.
    @raise Invalid_argument if the page is not pinned. *)

val with_page : t -> int -> dirty:bool -> (Bytes.t -> 'a) -> 'a
(** [with_page t id ~dirty f] pins, applies [f], and unpins (also on
    exception). *)

val flush : t -> unit
(** Write all dirty pages back to the device; pages stay cached. *)

val clear : t -> unit
(** Flush, then drop every frame: the cache becomes cold.
    @raise Failure if any page is still pinned. *)

(** {2 Durability (write-ahead journal)} *)

val attach_journal : t -> Journal.t -> unit
(** From now on every write-back logs the page's before- and after-image
    to the journal (steal policy with undo information). *)

val journal : t -> Journal.t option

val commit : t -> unit
(** Make the current logical state durable: force-log every dirty page
    followed by a commit marker. Data pages stay cached and dirty (lazy
    write-back). Without an attached journal this degrades to
    {!flush}. *)

val crash : t -> unit
(** Simulate a crash: drop every frame {e without} writing anything
    back. Dirty, uncommitted state is lost; {!Journal.recover} restores
    the device to the last commit.
    @raise Failure if any page is still pinned. *)

val cached : t -> int
(** Number of pages currently resident. *)

(** Cache behaviour counters (logical accesses), distinct from the
    device's physical counters. *)
module Stats : sig
  type pool = t

  type t = {
    logical_reads : int;  (** number of [pin] calls. *)
    hits : int;           (** pins satisfied from the cache. *)
    misses : int;         (** pins requiring a device read. *)
    evictions : int;
  }

  val get : pool -> t
  val reset : pool -> unit
  val pp : Format.formatter -> t -> unit
end
