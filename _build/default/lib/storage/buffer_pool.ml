type frame = {
  page_id : int;
  data : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable last_use : int;
}

type t = {
  dev : Block_device.t;
  capacity : int;
  frames : (int, frame) Hashtbl.t; (* page id -> frame *)
  mutable journal : Journal.t option;
  mutable clock : int;
  mutable logical_reads : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(capacity = 200) dev =
  if capacity < 1 then
    invalid_arg "Buffer_pool.create: capacity must be positive";
  { dev; capacity; frames = Hashtbl.create (2 * capacity); journal = None;
    clock = 0; logical_reads = 0; hits = 0; misses = 0; evictions = 0 }

let attach_journal t j = t.journal <- Some j
let journal t = t.journal

let device t = t.dev
let block_size t = Block_device.block_size t.dev
let capacity t = t.capacity
let cached t = Hashtbl.length t.frames

let touch t frame =
  t.clock <- t.clock + 1;
  frame.last_use <- t.clock

(* Journal the before- and after-image of a page about to be written
   back (steal policy: uncommitted pages may reach the device, and
   recovery undoes them from the before-image). *)
let log_write t frame =
  match t.journal with
  | None -> ()
  | Some j ->
      let before = Bytes.create (Block_device.block_size t.dev) in
      Block_device.read t.dev frame.page_id before;
      Journal.append j
        (Journal.Write
           { page = frame.page_id; before; after = Bytes.copy frame.data })

let write_back t frame =
  if frame.dirty then begin
    log_write t frame;
    Block_device.write t.dev frame.page_id frame.data;
    frame.dirty <- false
  end

(* Evict the least-recently-used unpinned frame to make room. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ f acc ->
        if f.pins > 0 then acc
        else
          match acc with
          | Some best when best.last_use <= f.last_use -> acc
          | _ -> Some f)
      t.frames None
  in
  match victim with
  | None -> failwith "Buffer_pool: all frames pinned, cannot evict"
  | Some f ->
      write_back t f;
      Hashtbl.remove t.frames f.page_id;
      t.evictions <- t.evictions + 1

let install t page_id data dirty =
  if Hashtbl.length t.frames >= t.capacity then evict_one t;
  let frame = { page_id; data; dirty; pins = 1; last_use = 0 } in
  touch t frame;
  Hashtbl.replace t.frames page_id frame;
  frame

let alloc t =
  let id = Block_device.alloc t.dev in
  let frame = install t id (Bytes.make (block_size t) '\000') true in
  frame.pins <- 0;
  id

let pin t page_id =
  t.logical_reads <- t.logical_reads + 1;
  match Hashtbl.find_opt t.frames page_id with
  | Some frame ->
      t.hits <- t.hits + 1;
      frame.pins <- frame.pins + 1;
      touch t frame;
      frame.data
  | None ->
      t.misses <- t.misses + 1;
      let data = Bytes.create (block_size t) in
      Block_device.read t.dev page_id data;
      let frame = install t page_id data false in
      frame.data

let unpin t page_id ~dirty =
  match Hashtbl.find_opt t.frames page_id with
  | Some frame when frame.pins > 0 ->
      frame.pins <- frame.pins - 1;
      if dirty then frame.dirty <- true
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Buffer_pool.unpin: page %d is not pinned" page_id)

let with_page t page_id ~dirty f =
  let data = pin t page_id in
  match f data with
  | v ->
      unpin t page_id ~dirty;
      v
  | exception e ->
      unpin t page_id ~dirty;
      raise e

let flush t = Hashtbl.iter (fun _ f -> write_back t f) t.frames

let clear t =
  Hashtbl.iter
    (fun _ f ->
      if f.pins > 0 then
        failwith
          (Printf.sprintf "Buffer_pool.clear: page %d is still pinned"
             f.page_id);
      write_back t f)
    t.frames;
  Hashtbl.reset t.frames

let commit t =
  match t.journal with
  | None -> flush t
  | Some j ->
      (* Log force, lazy data pages: every dirty page image becomes
         durable, then the commit marker; the pages themselves stay
         cached and dirty. *)
      Hashtbl.iter (fun _ f -> if f.dirty then log_write t f) t.frames;
      Journal.append j Journal.Commit

let crash t =
  Hashtbl.iter
    (fun _ f ->
      if f.pins > 0 then
        failwith
          (Printf.sprintf "Buffer_pool.crash: page %d is still pinned"
             f.page_id))
    t.frames;
  Hashtbl.reset t.frames

module Stats = struct
  type pool = t

  type t = {
    logical_reads : int;
    hits : int;
    misses : int;
    evictions : int;
  }

  let get (p : pool) =
    { logical_reads = p.logical_reads; hits = p.hits; misses = p.misses;
      evictions = p.evictions }

  let reset (p : pool) =
    p.logical_reads <- 0;
    p.hits <- 0;
    p.misses <- 0;
    p.evictions <- 0

  let pp ppf s =
    Format.fprintf ppf "logical=%d hits=%d misses=%d evictions=%d"
      s.logical_reads s.hits s.misses s.evictions
end
