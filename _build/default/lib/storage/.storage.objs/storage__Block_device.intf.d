lib/storage/block_device.mli: Bytes Format
