lib/storage/journal.ml: Array Block_device Bytes Hashtbl List
