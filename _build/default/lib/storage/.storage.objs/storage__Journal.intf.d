lib/storage/journal.mli: Block_device Bytes
