lib/storage/block_device.ml: Array Bytes Format Printf
