lib/storage/buffer_pool.ml: Block_device Bytes Format Hashtbl Journal Printf
