lib/storage/buffer_pool.mli: Block_device Bytes Format Journal
