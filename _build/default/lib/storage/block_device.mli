(** Simulated block device.

    The paper's primary experimental metric is the number of physical
    disk block accesses (Figs. 13, 14). This module stands in for the
    U-SCSI disk of the paper's testbed: an array of fixed-size blocks
    with explicit read/write counters. Every transfer between the buffer
    pool and the device is counted as one physical I/O. *)

type t

val create : ?block_size:int -> unit -> t
(** [create ~block_size ()] makes an empty device. The default block
    size is 2048 bytes — the 2 KB blocks of the paper's Oracle setup.
    @raise Invalid_argument if [block_size < 64]. *)

val block_size : t -> int

val allocated : t -> int
(** Number of blocks allocated so far. Block ids are [0 ..
    allocated - 1]. *)

val alloc : t -> int
(** Allocate a fresh zero-filled block and return its id. Allocation is
    not counted as an I/O; the subsequent write-back is. *)

val read : t -> int -> Bytes.t -> unit
(** [read t id buf] copies block [id] into [buf] and counts one physical
    read. [buf] must be exactly [block_size t] long.
    @raise Invalid_argument on a bad id or buffer size. *)

val write : t -> int -> Bytes.t -> unit
(** [write t id buf] stores [buf] as block [id] and counts one physical
    write. Same size discipline as {!read}. *)

(** Physical I/O counters. *)
module Stats : sig
  type device = t

  type t = { reads : int; writes : int }

  val total : t -> int

  val get : device -> t
  val reset : device -> unit

  val pp : Format.formatter -> t -> unit
end
