module Ivl = Interval.Ivl

type order = D_order | V_order

type t = {
  order : order;
  table : Relation.Table.t;
  index : Relation.Table.Index.t;
  mutable next_id : int;
}

let index_columns = function
  | D_order -> [ "upper"; "lower"; "id" ]
  | V_order -> [ "lower"; "upper"; "id" ]

let create ?(name = "ist") ?(order = D_order) catalog =
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "lower"; "upper"; "id" ]
  in
  let index =
    Relation.Table.create_index table ~name:(name ^ "_idx")
      ~columns:(index_columns order)
  in
  { order; table; index; next_id = 0 }

let bulk_load ?(name = "ist") ?(order = D_order) catalog data =
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "lower"; "upper"; "id" ]
  in
  let next_id = ref 0 in
  Array.iter
    (fun (ivl, id) ->
      if id >= !next_id then next_id := id + 1;
      ignore
        (Relation.Table.insert table [| Ivl.lower ivl; Ivl.upper ivl; id |]))
    data;
  let index =
    Relation.Table.create_index ~bulk:true table ~name:(name ^ "_idx")
      ~columns:(index_columns order)
  in
  { order; table; index; next_id = !next_id }

let order t = t.order

let insert ?id t ivl =
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  ignore (Relation.Table.insert t.table [| Ivl.lower ivl; Ivl.upper ivl; id |]);
  id

let delete t ~id ivl =
  let tree = Relation.Table.Index.tree t.index in
  let k1, k2 =
    match t.order with
    | D_order -> (Ivl.upper ivl, Ivl.lower ivl)
    | V_order -> (Ivl.lower ivl, Ivl.upper ivl)
  in
  let victim =
    Btree.fold_range tree ~lo:[| k1; k2; id; min_int |]
      ~hi:[| k1; k2; id; max_int |]
      (fun acc key -> match acc with Some _ -> acc | None -> Some key.(3))
      None
  in
  match victim with
  | Some rowid -> Relation.Table.delete_row t.table rowid
  | None -> false

let count t = Relation.Table.row_count t.table
let index_entries t = Relation.Table.Index.entry_count t.index

(* Fig. 11: one range scan; the filter on the secondary bound cannot be
   pushed into the scan range, which is the structural weakness the
   paper exposes. *)
let intersection_iter t q =
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  match t.order with
  | D_order ->
      (* upper >= qlow, scanning to the end of the index. *)
      Relation.Iter.filter
        (fun k -> k.(1) <= qup)
        (Relation.Iter.index_range t.index
           ~lo:[| qlow; min_int; min_int; min_int |]
           ~hi:[| max_int; max_int; max_int; max_int |])
  | V_order ->
      Relation.Iter.filter
        (fun k -> k.(1) >= qlow)
        (Relation.Iter.index_range t.index
           ~lo:[| min_int; min_int; min_int; min_int |]
           ~hi:[| qup; max_int; max_int; max_int |])

let intersecting_ids t q =
  Relation.Iter.fold (fun acc k -> k.(2) :: acc) [] (intersection_iter t q)
  |> List.rev

let count_intersecting t q = Relation.Iter.count (intersection_iter t q)
