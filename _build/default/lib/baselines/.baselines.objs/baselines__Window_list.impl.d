lib/baselines/window_list.ml: Array Btree Int Interval List Relation Storage
