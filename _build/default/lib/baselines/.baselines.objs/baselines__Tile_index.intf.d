lib/baselines/tile_index.mli: Interval Relation
