lib/baselines/tile_index.ml: Array Btree Hashtbl Interval List Option Relation
