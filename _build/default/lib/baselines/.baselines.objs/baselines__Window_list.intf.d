lib/baselines/window_list.mli: Interval Relation
