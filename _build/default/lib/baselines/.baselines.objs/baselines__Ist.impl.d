lib/baselines/ist.ml: Array Btree Interval List Relation
