lib/baselines/map21.mli: Interval Relation
