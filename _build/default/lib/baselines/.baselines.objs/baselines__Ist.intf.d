lib/baselines/ist.mli: Interval Relation
