lib/baselines/map21.ml: Array Btree Interval List Relation
