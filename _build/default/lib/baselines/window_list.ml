module Ivl = Interval.Ivl

type t = {
  table : Relation.Table.t; (* (window, lower, upper, id) *)
  index : Relation.Table.Index.t;
  (* Window boundaries live in their own B+-tree, keyed by the negated
     left boundary so that "greatest boundary <= p" is one forward
     probe — locating a window costs real, counted I/O. *)
  boundary_tree : Btree.t;
  window_count : int;
  interval_count : int;
}

let build ?(name = "wlist") ?window_rows catalog data =
  let pool = Relation.Catalog.pool catalog in
  let window_rows =
    match window_rows with
    | Some r -> max 4 r
    | None ->
        (* roughly one heap page of 4-column rows *)
        let bs = Storage.Buffer_pool.block_size pool in
        max 4 ((bs - 24) / 32)
  in
  let endpoints =
    Array.concat [ Array.map Ivl.lower data; Array.map Ivl.upper data ]
  in
  Array.sort Int.compare endpoints;
  let boundaries = ref [] in
  Array.iteri
    (fun i p ->
      if i mod window_rows = 0 then
        match !boundaries with
        | b :: _ when b = p -> ()
        | _ -> boundaries := p :: !boundaries)
    endpoints;
  let boundaries =
    match List.rev !boundaries with [] -> [| 0 |] | l -> Array.of_list l
  in
  let boundary_tree =
    Btree.bulk_load pool ~key_width:2
      (Array.to_seq
         (Array.mapi (fun w b -> [| -b; w |]) boundaries)
       |> List.of_seq |> List.rev |> List.to_seq)
  in
  (* in-memory search only during the build *)
  let window_of_mem p =
    let lo = ref 0 and hi = ref (Array.length boundaries) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if boundaries.(mid) <= p then lo := mid + 1 else hi := mid
    done;
    max 0 (!lo - 1)
  in
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "window"; "lower"; "upper"; "id" ]
  in
  let index =
    Relation.Table.create_index table ~name:(name ^ "_idx")
      ~columns:[ "window"; "lower"; "upper"; "id" ]
  in
  Array.iteri
    (fun id ivl ->
      let w1 = window_of_mem (Ivl.lower ivl) in
      let w2 = window_of_mem (Ivl.upper ivl) in
      for w = w1 to w2 do
        ignore
          (Relation.Table.insert table [| w; Ivl.lower ivl; Ivl.upper ivl; id |])
      done)
    data;
  { table; index; boundary_tree; window_count = Array.length boundaries;
    interval_count = Array.length data }

let window_count t = t.window_count
let count t = t.interval_count

let index_entries t =
  Relation.Table.Index.entry_count t.index + Btree.count t.boundary_tree

(* Greatest boundary <= p, via one probe of the negated-boundary tree. *)
let window_of t p =
  let c =
    Btree.cursor t.boundary_tree
      ~lo:[| -p; min_int |]
      ~hi:[| max_int; max_int |]
  in
  match Btree.next c with Some key -> key.(1) | None -> 0

let scan_window t w q =
  Relation.Iter.filter
    (fun k -> k.(1) <= Ivl.upper q && k.(2) >= Ivl.lower q)
    (Relation.Iter.index_range t.index
       ~lo:[| w; min_int; min_int; min_int; min_int |]
       ~hi:[| w; max_int; max_int; max_int; max_int |])

let intersecting_ids t q =
  let w1 = window_of t (Ivl.lower q) in
  let w2 = window_of t (Ivl.upper q) in
  let scans = List.init (w2 - w1 + 1) (fun i -> scan_window t (w1 + i) q) in
  Relation.Iter.distinct_by (fun k -> k.(3)) (Relation.Iter.union_all scans)
  |> Relation.Iter.fold (fun acc k -> k.(3) :: acc) []
  |> List.rev

let stabbing_ids t p = intersecting_ids t (Ivl.point p)

let insert ?id _ =
  ignore id;
  failwith "Window_list.insert: the Window-List is a static structure"
