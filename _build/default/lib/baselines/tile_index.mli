(** The Tile Index (Oracle8i Spatial linear quadtree) — Sec. 2.3 / 6.1.

    The 1-D hybrid fixed/variable tiling the paper reimplemented for its
    comparison. The domain is partitioned into fixed tiles of
    [2^(20 - level)] values (Oracle's fixed level counts quadtree depth,
    so a higher level means finer tiles). An interval is clipped to every
    fixed tile it overlaps and each clipped range is decomposed into
    maximal dyadic segments — the variable-sized tiles — with one
    relational row per variable tile, clustered by fixed tile. This
    decomposition is the source of the storage redundancy of Fig. 12
    (10.1 rows per interval on D4(n, 2k) at the calibrated level).

    Intersection queries equijoin the query's fixed tiles against the
    index, sequentially scan the variable tiles found there, and
    eliminate the duplicates that redundancy produces.

    The fixed level trades redundancy (fine tiles) against scan overhead
    (coarse tiles hold many foreign variable tiles); it "can only be set
    at index creation time", and the paper calibrates it per distribution
    on a 1,000-interval sample — {!recommended_level} reproduces that
    calibration ("in most cases, the optimum ... was found at the level
    7, 8 or 9"). *)

type t

val create : ?name:string -> level:int -> Relation.Catalog.t -> t
(** Fixed tiles of size [2^(20 - level)]; [level] must be in [0, 20]. *)

val bulk_load :
  ?name:string ->
  level:int ->
  Relation.Catalog.t ->
  (Interval.Ivl.t * int) array ->
  t
(** Build with a bottom-up bulk-loaded decomposition index (the
    clustering regime of the paper's measurements). *)

val level : t -> int
val tile_size : t -> int

val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool

val count : t -> int
(** Number of stored intervals. *)

val index_entries : t -> int
(** Variable-tile rows — [redundancy * count] (the quantity of
    Fig. 12). *)

val redundancy : t -> float
(** Average variable tiles per stored interval. *)

val intersecting_ids : t -> Interval.Ivl.t -> int list
(** Duplicate-free ids of intersecting intervals. *)

val count_intersecting : t -> Interval.Ivl.t -> int

val recommended_level :
  ?candidates:int list ->
  sample:Interval.Ivl.t array ->
  queries:Interval.Ivl.t array ->
  unit ->
  int
(** Pick the fixed level minimising the variable-tile rows scanned by the
    query sample, over [candidates] (default 4..12). *)
