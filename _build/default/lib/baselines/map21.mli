(** MAP21 (Nascimento & Dunham, 1999) — Sec. 2.3.

    Maps an interval to the single number [lower * 2^21 + upper] (the
    paper's decimal shift done in binary; 21 bits cover the domain
    [0, 2^20 - 1] with room for the upper bound) and stores it in a
    single-column B+-tree. Intersection queries exploit the maximum
    stored interval length: only intervals with
    [lower in [qlow - maxlen, qup]] can intersect, so one range scan
    plus a filter answers the query. "Intersection query processing
    still requires O(n/b) I/Os if the database contains many long
    intervals" — the scan window grows with [maxlen]. *)

type t

val create : ?name:string -> Relation.Catalog.t -> t
val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int
val index_entries : t -> int
val max_length : t -> int
(** Largest length ever inserted (not decreased by deletions, as in the
    original static partitioning). *)

val intersecting_ids : t -> Interval.Ivl.t -> int list
val count_intersecting : t -> Interval.Ivl.t -> int

val encode : Interval.Ivl.t -> int
(** The MAP21 key of an interval. *)
