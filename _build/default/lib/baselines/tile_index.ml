module Ivl = Interval.Ivl

(* Oracle's hybrid fixed/variable linear-quadtree tiling, in 1-D.

   The domain [0, 2^20 - 1] is partitioned into fixed tiles of size
   2^(20 - level) (Oracle's SDO_LEVEL counts quadtree depth: higher
   level = finer fixed tiles). An interval is clipped to every fixed
   tile it overlaps, and each clipped range is decomposed into maximal
   dyadic segments — the variable-sized tiles, "a fine-grained
   representation of the covered geometry". One relational row is
   stored per variable tile, clustered by fixed tile, which is exactly
   the source of the redundancy of Fig. 12 (10.1 rows per interval on
   D4 with mean length 2000 at the calibrated level).

   Queries join their fixed tiles against the index and scan the
   variable tiles of each (the paper: "an equijoin on the indexed
   fixed-sized tiles, followed by a sequential scan on the
   corresponding variable-sized tiles"), then eliminate the duplicates
   that redundancy produces. *)

let domain_bits = 20

type t = {
  level : int;
  tile_size : int;
  table : Relation.Table.t; (* one row per variable tile *)
  index : Relation.Table.Index.t; (* (tile, vlo, vhi, id) covering *)
  mutable next_id : int;
  mutable interval_count : int;
}

let create ?(name = "tindex") ~level catalog =
  if level < 0 || level > domain_bits then
    invalid_arg "Tile_index.create: level must be within [0, 20]";
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "tile"; "vlo"; "vhi"; "id" ]
  in
  let index =
    Relation.Table.create_index table ~name:(name ^ "_idx")
      ~columns:[ "tile"; "vlo"; "vhi"; "id" ]
  in
  { level; tile_size = 1 lsl (domain_bits - level); table; index;
    next_id = 0; interval_count = 0 }

let level t = t.level
let tile_size t = t.tile_size

(* Greedy maximal-dyadic decomposition of [a, b] (inclusive): repeatedly
   emit the largest power-of-two-sized, aligned segment starting at a. *)
let dyadic_segments a b emit =
  let a = ref a in
  while !a <= b do
    let align = if !a = 0 then max_int else !a land (- !a) in
    let len = ref 1 in
    while 2 * !len <= align && !a + (2 * !len) - 1 <= b do
      len := 2 * !len
    done;
    emit !a (!a + !len - 1);
    a := !a + !len
  done

let decompose_with ~tile_size ivl emit =
  let ts = tile_size in
  let first = Ivl.lower ivl / ts and last = Ivl.upper ivl / ts in
  for tile = first to last do
    let lo = max (Ivl.lower ivl) (tile * ts) in
    let hi = min (Ivl.upper ivl) (((tile + 1) * ts) - 1) in
    dyadic_segments lo hi (fun vlo vhi -> emit tile vlo vhi)
  done

let bulk_load ?(name = "tindex") ~level catalog data =
  if level < 0 || level > domain_bits then
    invalid_arg "Tile_index.bulk_load: level must be within [0, 20]";
  let table =
    Relation.Catalog.create_table catalog ~name
      ~columns:[ "tile"; "vlo"; "vhi"; "id" ]
  in
  let tile_size = 1 lsl (domain_bits - level) in
  let next_id = ref 0 in
  Array.iter
    (fun (ivl, id) ->
      if id >= !next_id then next_id := id + 1;
      decompose_with ~tile_size ivl (fun tile vlo vhi ->
          ignore (Relation.Table.insert table [| tile; vlo; vhi; id |])))
    data;
  let index =
    Relation.Table.create_index ~bulk:true table ~name:(name ^ "_idx")
      ~columns:[ "tile"; "vlo"; "vhi"; "id" ]
  in
  { level; tile_size; table; index; next_id = !next_id;
    interval_count = Array.length data }

let decompose t ivl emit = decompose_with ~tile_size:t.tile_size ivl emit

let insert ?id t ivl =
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  decompose t ivl (fun tile vlo vhi ->
      ignore (Relation.Table.insert t.table [| tile; vlo; vhi; id |]));
  t.interval_count <- t.interval_count + 1;
  id

let delete t ~id ivl =
  let tree = Relation.Table.Index.tree t.index in
  let removed = ref 0 in
  decompose t ivl (fun tile vlo vhi ->
      let victim =
        Btree.fold_range tree
          ~lo:[| tile; vlo; vhi; id; min_int |]
          ~hi:[| tile; vlo; vhi; id; max_int |]
          (fun acc key -> match acc with Some _ -> acc | None -> Some key.(4))
          None
      in
      match victim with
      | Some rowid ->
          ignore (Relation.Table.delete_row t.table rowid);
          incr removed
      | None -> ())
  ;
  if !removed > 0 then begin
    t.interval_count <- t.interval_count - 1;
    true
  end
  else false

let count t = t.interval_count
let index_entries t = Relation.Table.Index.entry_count t.index

let redundancy t =
  if t.interval_count = 0 then 0.0
  else float_of_int (index_entries t) /. float_of_int t.interval_count

(* Equijoin of the query's fixed tiles against the index, sequential
   scan of the variable tiles, duplicate elimination on id. *)
let intersection_iter t q =
  let ts = t.tile_size in
  let first = Ivl.lower q / ts and last = Ivl.upper q / ts in
  let tiles = List.init (last - first + 1) (fun i -> first + i) in
  let scans =
    List.map
      (fun tile ->
        Relation.Iter.filter
          (fun k -> k.(1) <= Ivl.upper q && k.(2) >= Ivl.lower q)
          (Relation.Iter.index_range t.index
             ~lo:[| tile; min_int; min_int; min_int; min_int |]
             ~hi:[| tile; max_int; max_int; max_int; max_int |]))
      tiles
  in
  Relation.Iter.distinct_by (fun k -> k.(3)) (Relation.Iter.union_all scans)

let intersecting_ids t q =
  Relation.Iter.fold (fun acc k -> k.(3) :: acc) [] (intersection_iter t q)
  |> List.rev

let count_intersecting t q = Relation.Iter.count (intersection_iter t q)

let recommended_level ?(candidates = [ 4; 5; 6; 7; 8; 9; 10; 11; 12 ])
    ~sample ~queries () =
  let cost level =
    let ts = 1 lsl (domain_bits - level) in
    (* Variable-tile rows per fixed tile for the sample. *)
    let per_tile = Hashtbl.create 1024 in
    let bump tile =
      Hashtbl.replace per_tile tile
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_tile tile))
    in
    Array.iter
      (fun ivl ->
        for tile = Ivl.lower ivl / ts to Ivl.upper ivl / ts do
          let lo = max (Ivl.lower ivl) (tile * ts) in
          let hi = min (Ivl.upper ivl) (((tile + 1) * ts) - 1) in
          dyadic_segments lo hi (fun _ _ -> bump tile)
        done)
      sample;
    (* Rows scanned by each query: all rows of all overlapped tiles. *)
    Array.fold_left
      (fun acc q ->
        let rows = ref 0 in
        for tile = Ivl.lower q / ts to Ivl.upper q / ts do
          rows :=
            !rows + Option.value ~default:0 (Hashtbl.find_opt per_tile tile)
        done;
        acc + !rows)
      0 queries
  in
  match candidates with
  | [] -> invalid_arg "Tile_index.recommended_level: no candidates"
  | first :: rest ->
      List.fold_left
        (fun (best, best_cost) lvl ->
          let c = cost lvl in
          if c < best_cost then (lvl, c) else (best, best_cost))
        (first, cost first) rest
      |> fst
