(** A static Window-List (after Ramaswamy 1997) — Sec. 2.3 / 6.1.

    The paper used the Window-List as the static competitor: optimal
    [O(n/b)] space and [O(log_b n + r/b)] stabbing queries over built-in
    B+-trees, but no non-trivial update bounds ("queries on Window-Lists
    produced twice as many I/O operations than on the dynamic RI-tree").

    This implementation bulk-builds the structure from a snapshot:
    window boundaries are chosen every [~window_rows] sorted interval
    endpoints and stored in their own B+-tree (so locating a window costs
    counted I/O), and every interval is registered in each window it
    intersects, clustered by window in a covering composite index. A
    stabbing query locates one window ([O(log_b n)]) and scans its list;
    range queries scan the windows covered by the query and de-duplicate.
    The structure is static: {!insert} raises, mirroring the paper's
    reason for excluding it from the dynamic comparison. *)

type t

val build :
  ?name:string ->
  ?window_rows:int ->
  Relation.Catalog.t ->
  Interval.Ivl.t array ->
  t
(** Build from a snapshot; interval [i] of the array gets id [i].
    [window_rows] controls the endpoint count per window (default: one
    heap page worth of rows). *)

val window_count : t -> int
val count : t -> int
val index_entries : t -> int

val stabbing_ids : t -> int -> int list
val intersecting_ids : t -> Interval.Ivl.t -> int list

val insert : ?id:int -> t -> Interval.Ivl.t -> int
(** @raise Failure always — the Window-List is static. *)
