(** Interval-Spatial Transformation (Goh et al., 1996) — Sec. 2.3.

    The IST encodes intervals by space-filling orderings of their bound
    points; "aside from quantization aspects, the D-ordering is
    equivalent to a composite index on the interval bounds (upper,
    lower), and the V-ordering corresponds to an index on (lower,
    upper)". The paper evaluates the D-order variant: a single composite
    B+-tree and the one-line range query of Fig. 11

    {v
    SELECT id FROM Intervals i
    WHERE i.upper >= :lower AND i.lower <= :upper;
    v}

    No redundancy is produced ([n] index entries), but the scan starts at
    the first entry with [upper >= :lower] and must run to the end of the
    index, so its I/O degenerates linearly with the distance of the query
    from the upper bound of the data space (Fig. 17). *)

type order =
  | D_order  (** composite index on (upper, lower) — the paper's IST *)
  | V_order  (** composite index on (lower, upper) *)

type t

val create : ?name:string -> ?order:order -> Relation.Catalog.t -> t
(** Default order is {!D_order}. *)

val bulk_load :
  ?name:string ->
  ?order:order ->
  Relation.Catalog.t ->
  (Interval.Ivl.t * int) array ->
  t
(** Build with a bottom-up bulk-loaded index — the tightly clustered
    layout whose "good clustering properties" the paper credits for the
    IST's response times ("will deteriorate in a dynamic
    environment"). *)

val order : t -> order
val insert : ?id:int -> t -> Interval.Ivl.t -> int
val delete : t -> id:int -> Interval.Ivl.t -> bool
val count : t -> int
val index_entries : t -> int

val intersecting_ids : t -> Interval.Ivl.t -> int list
val count_intersecting : t -> Interval.Ivl.t -> int
