module Ivl = Interval.Ivl

let shift = 21

let encode ivl =
  if Ivl.lower ivl < 0 || Ivl.upper ivl >= 1 lsl shift then
    invalid_arg "Map21.encode: bounds outside [0, 2^21)";
  (Ivl.lower ivl lsl shift) lor Ivl.upper ivl

type t = {
  table : Relation.Table.t;
  index : Relation.Table.Index.t;
  mutable next_id : int;
  mutable max_length : int;
}

let create ?(name = "map21") catalog =
  let table =
    Relation.Catalog.create_table catalog ~name ~columns:[ "z"; "id" ]
  in
  let index =
    Relation.Table.create_index table ~name:(name ^ "_idx")
      ~columns:[ "z"; "id" ]
  in
  { table; index; next_id = 0; max_length = 0 }

let insert ?id t ivl =
  let id =
    match id with
    | Some i ->
        if i >= t.next_id then t.next_id <- i + 1;
        i
    | None ->
        let i = t.next_id in
        t.next_id <- i + 1;
        i
  in
  if Ivl.length ivl > t.max_length then t.max_length <- Ivl.length ivl;
  ignore (Relation.Table.insert t.table [| encode ivl; id |]);
  id

let delete t ~id ivl =
  let tree = Relation.Table.Index.tree t.index in
  let z = encode ivl in
  let victim =
    Btree.fold_range tree ~lo:[| z; id; min_int |] ~hi:[| z; id; max_int |]
      (fun acc key -> match acc with Some _ -> acc | None -> Some key.(2))
      None
  in
  match victim with
  | Some rowid -> Relation.Table.delete_row t.table rowid
  | None -> false

let count t = Relation.Table.row_count t.table
let index_entries t = Relation.Table.Index.entry_count t.index
let max_length t = t.max_length

let decode z = Ivl.make (z lsr shift) (z land ((1 lsl shift) - 1))

let intersection_iter t q =
  let qlow = Ivl.lower q and qup = Ivl.upper q in
  let lo_lower = max 0 (qlow - t.max_length) in
  Relation.Iter.filter
    (fun k -> Ivl.intersects (decode k.(0)) q)
    (Relation.Iter.index_range t.index
       ~lo:[| lo_lower lsl shift; min_int; min_int |]
       ~hi:[| (qup lsl shift) lor ((1 lsl shift) - 1); max_int; max_int |])

let intersecting_ids t q =
  Relation.Iter.fold (fun acc k -> k.(1) :: acc) [] (intersection_iter t q)
  |> List.rev

let count_intersecting t q = Relation.Iter.count (intersection_iter t q)
