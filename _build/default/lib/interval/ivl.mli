(** Closed integer intervals [lower, upper].

    This is the fundamental datatype of the whole library: the RI-tree of
    Kriegel, Pötke and Seidl (VLDB 2000) indexes exactly these objects.
    Degenerate intervals with [lower = upper] represent points, as in
    Sec. 3.3 of the paper. *)

type t = private { lower : int; upper : int }
(** A closed interval. The invariant [lower <= upper] is enforced by
    {!make}. *)

val make : int -> int -> t
(** [make lower upper] builds the interval [\[lower, upper\]].
    @raise Invalid_argument if [lower > upper]. *)

val of_pair : int * int -> t
(** [of_pair (l, u)] is [make l u]. *)

val point : int -> t
(** [point p] is the degenerate interval [\[p, p\]]. *)

val lower : t -> int
val upper : t -> int

val length : t -> int
(** [length i] is [upper i - lower i]; a point has length [0]. *)

val is_point : t -> bool

val contains : t -> int -> bool
(** [contains i p] tests [lower i <= p <= upper i]. *)

val intersects : t -> t -> bool
(** [intersects a b] is the paper's intersection predicate:
    [lower a <= upper b && lower b <= upper a]. Touching intervals
    (sharing a single point) intersect. *)

val intersection : t -> t -> t option
(** [intersection a b] is the common sub-interval, if any. *)

val hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val subset : t -> t -> bool
(** [subset a b] holds when [a] lies fully inside [b] (not necessarily
    strictly). *)

val shift : t -> int -> t
(** [shift i d] translates both bounds by [d]. *)

val compare : t -> t -> int
(** Lexicographic order on [(lower, upper)]. *)

val equal : t -> t -> bool
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["[l, u]"]. *)

val to_string : t -> string
