lib/interval/period_set.mli: Format Ivl
