lib/interval/period_set.ml: Format Ivl List
