lib/interval/allen.mli: Format Ivl
