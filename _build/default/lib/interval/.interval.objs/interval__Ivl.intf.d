lib/interval/ivl.mli: Format
