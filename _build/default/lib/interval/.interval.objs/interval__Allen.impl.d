lib/interval/allen.ml: Format Ivl List String
