lib/interval/temporal.mli: Format Ivl
