lib/interval/ivl.ml: Format Hashtbl Int Printf
