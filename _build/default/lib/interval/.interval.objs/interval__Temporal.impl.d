lib/interval/temporal.ml: Format Int Ivl Printf
