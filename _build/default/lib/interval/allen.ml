type relation =
  | Before
  | Meets
  | Overlaps
  | Finished_by
  | Contains
  | Starts
  | Equals
  | Started_by
  | During
  | Finishes
  | Overlapped_by
  | Met_by
  | After

let all =
  [
    Before; Meets; Overlaps; Finished_by; Contains; Starts; Equals;
    Started_by; During; Finishes; Overlapped_by; Met_by; After;
  ]

(* Meets requires both operands to be non-degenerate at the touching
   bound; otherwise a point sharing a bound with an interval would
   satisfy both Meets and Starts/Finishes, breaking exclusivity. *)
let holds r a b =
  let al = Ivl.lower a and au = Ivl.upper a in
  let bl = Ivl.lower b and bu = Ivl.upper b in
  match r with
  | Before -> au < bl
  | Meets -> au = bl && al < au && bl < bu
  | Overlaps -> al < bl && bl < au && au < bu
  | Finished_by -> au = bu && al < bl
  | Contains -> al < bl && bu < au
  | Starts -> al = bl && au < bu
  | Equals -> al = bl && au = bu
  | Started_by -> al = bl && bu < au
  | During -> bl < al && au < bu
  | Finishes -> au = bu && bl < al
  | Overlapped_by -> bl < al && al < bu && bu < au
  | Met_by -> bu = al && bl < bu && al < au
  | After -> bu < al

let relate a b =
  match List.find_opt (fun r -> holds r a b) all with
  | Some r -> r
  | None ->
      (* Unreachable: the thirteen relations partition all pairs of
         closed intervals (verified exhaustively in the test suite). *)
      assert false

let inverse = function
  | Before -> After
  | Meets -> Met_by
  | Overlaps -> Overlapped_by
  | Finished_by -> Finishes
  | Contains -> During
  | Starts -> Started_by
  | Equals -> Equals
  | Started_by -> Starts
  | During -> Contains
  | Finishes -> Finished_by
  | Overlapped_by -> Overlaps
  | Met_by -> Meets
  | After -> Before

let implies_intersection = function
  | Before | After -> false
  | Meets | Overlaps | Finished_by | Contains | Starts | Equals | Started_by
  | During | Finishes | Overlapped_by | Met_by ->
      true

let to_string = function
  | Before -> "before"
  | Meets -> "meets"
  | Overlaps -> "overlaps"
  | Finished_by -> "finished-by"
  | Contains -> "contains"
  | Starts -> "starts"
  | Equals -> "equals"
  | Started_by -> "started-by"
  | During -> "during"
  | Finishes -> "finishes"
  | Overlapped_by -> "overlapped-by"
  | Met_by -> "met-by"
  | After -> "after"

let of_string s =
  let s = String.lowercase_ascii s in
  List.find_opt (fun r -> to_string r = s) all

let pp ppf r = Format.pp_print_string ppf (to_string r)
