(** Valid-time intervals with the special upper bounds [now] and
    [infinity] (Sec. 4.6 of the paper).

    A valid-time interval starts at a fixed instant and ends either at a
    fixed instant, at the continuously moving current time ([Now]), or
    never ([Infinity]). The RI-tree stores such intervals under reserved
    fork-node values so that a single SQL query still answers
    intersection queries; this module provides the value-level
    representation and the semantics used by tests and by
    {!Ritree.Temporal_store}. *)

type upper =
  | Finite of int
  | Now        (** upper bound follows the current time. *)
  | Infinity   (** interval never ends. *)

type t = { lower : int; upper : upper }

val make : int -> upper -> t
(** @raise Invalid_argument if [upper] is [Finite u] with [u < lower]. *)

val fixed : Ivl.t -> t
(** Embed an ordinary interval. *)

val resolve : now:int -> t -> Ivl.t option
(** [resolve ~now t] is the concrete interval denoted by [t] at time
    [now]. [Infinity] resolves to an interval ending at [max_int / 4]
    (an effectively unbounded sentinel well above any data-space value).
    A [Now]-ending interval whose start lies in the future ([lower >
    now]) denotes no valid instants yet and resolves to [None]. *)

val intersects : now:int -> t -> Ivl.t -> bool
(** [intersects ~now t q] tests whether [t], evaluated at time [now],
    intersects the concrete query interval [q]. *)

val infinity_sentinel : int
(** The concrete upper bound used to resolve [Infinity]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
