(** Finite unions of closed integer intervals, kept sorted, disjoint and
    coalesced.

    Temporal databases attach such "temporal elements" (period sets) to
    facts [TCG+ 93]: the valid time of a tuple is rarely one interval.
    This module provides the set algebra the examples and tests use on
    top of the interval stores: membership, union, intersection,
    difference, complement, and aggregation-style measures.

    The canonical form — ascending, pairwise disjoint, no two intervals
    adjacent (touching or overlapping intervals are merged) — makes
    structural equality equal set equality, which the property tests
    exploit. *)

type t

val empty : t
val is_empty : t -> bool

val singleton : Ivl.t -> t
val of_list : Ivl.t list -> t
(** Any list; normalised on construction. *)

val to_list : t -> Ivl.t list
(** Canonical form: ascending, disjoint, non-adjacent. *)

val add : Ivl.t -> t -> t
val mem : int -> t -> bool
val intersects : t -> Ivl.t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val complement_within : Ivl.t -> t -> t
(** The part of the universe interval not covered by the set. *)

val cardinal : t -> int
(** Number of covered integer points. *)

val interval_count : t -> int
val hull : t -> Ivl.t option
val equal : t -> t -> bool
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
