(** Allen's thirteen topological relations between intervals.

    Sec. 4.5 of the RI-tree paper notes that "in addition to the
    intersection query predicate, there are 13 more fine-grained temporal
    relationships between intervals" and that all of them are supported
    by the RI-tree. This module defines those relations on closed integer
    intervals and is used both by the query layer
    ({!Ritree.Topological}) and as a specification oracle in tests.

    For non-degenerate intervals the thirteen predicates are mutually
    exclusive and exhaustive (classical Allen algebra). Degenerate
    intervals (points) are handled by requiring, in {!const-Meets} and
    {!const-Met_by}, that both operands be non-degenerate at the touching
    bound; with that convention the partition property extends to all
    pairs of closed intervals, which the test suite verifies
    exhaustively. *)

type relation =
  | Before        (** [a] ends strictly before [b] starts (with a gap). *)
  | Meets         (** [a] ends exactly where [b] starts. *)
  | Overlaps      (** proper partial overlap, [a] first. *)
  | Finished_by   (** [b] finishes [a]: same upper, [a] starts first. *)
  | Contains      (** [b] lies strictly inside [a]. *)
  | Starts        (** same lower, [a] ends first. *)
  | Equals
  | Started_by    (** same lower, [b] ends first. *)
  | During        (** [a] lies strictly inside [b]. *)
  | Finishes      (** same upper, [b] starts first. *)
  | Overlapped_by (** proper partial overlap, [b] first. *)
  | Met_by        (** [b] ends exactly where [a] starts. *)
  | After         (** [a] starts strictly after [b] ends (with a gap). *)

val all : relation list
(** The thirteen relations, in the order of the type definition. *)

val holds : relation -> Ivl.t -> Ivl.t -> bool
(** [holds r a b] tests whether [a r b]. *)

val relate : Ivl.t -> Ivl.t -> relation
(** [relate a b] is the unique relation holding between [a] and [b]. *)

val inverse : relation -> relation
(** [inverse r] is the converse relation: [holds r a b] iff
    [holds (inverse r) b a]. *)

val implies_intersection : relation -> bool
(** True for the eleven relations under which the two closed intervals
    share at least one point — every relation except {!const-Before} and
    {!const-After}. [Meets]/[Met_by] intervals share their touching
    bound because intervals are closed. *)

val to_string : relation -> string
val of_string : string -> relation option
(** Case-insensitive parse of the name as printed by {!to_string}. *)

val pp : Format.formatter -> relation -> unit
