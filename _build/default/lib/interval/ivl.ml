type t = { lower : int; upper : int }

let make lower upper =
  if lower > upper then
    invalid_arg
      (Printf.sprintf "Ivl.make: lower %d exceeds upper %d" lower upper);
  { lower; upper }

let of_pair (l, u) = make l u
let point p = { lower = p; upper = p }
let lower i = i.lower
let upper i = i.upper
let length i = i.upper - i.lower
let is_point i = i.lower = i.upper
let contains i p = i.lower <= p && p <= i.upper
let intersects a b = a.lower <= b.upper && b.lower <= a.upper

let intersection a b =
  let lo = max a.lower b.lower and hi = min a.upper b.upper in
  if lo <= hi then Some { lower = lo; upper = hi } else None

let hull a b = { lower = min a.lower b.lower; upper = max a.upper b.upper }
let subset a b = b.lower <= a.lower && a.upper <= b.upper
let shift i d = { lower = i.lower + d; upper = i.upper + d }

let compare a b =
  let c = Int.compare a.lower b.lower in
  if c <> 0 then c else Int.compare a.upper b.upper

let equal a b = a.lower = b.lower && a.upper = b.upper
let hash i = Hashtbl.hash (i.lower, i.upper)
let pp ppf i = Format.fprintf ppf "[%d, %d]" i.lower i.upper
let to_string i = Format.asprintf "%a" pp i
