type upper = Finite of int | Now | Infinity
type t = { lower : int; upper : upper }

let infinity_sentinel = max_int / 4

let make lower upper =
  (match upper with
  | Finite u when u < lower ->
      invalid_arg
        (Printf.sprintf "Temporal.make: upper %d precedes lower %d" u lower)
  | Finite _ | Now | Infinity -> ());
  { lower; upper }

let fixed i = { lower = Ivl.lower i; upper = Finite (Ivl.upper i) }

let resolve ~now t =
  match t.upper with
  | Finite u -> Some (Ivl.make t.lower u)
  | Infinity -> Some (Ivl.make t.lower infinity_sentinel)
  | Now -> if t.lower <= now then Some (Ivl.make t.lower now) else None

let intersects ~now t q =
  match resolve ~now t with
  | None -> false
  | Some i -> Ivl.intersects i q

let pp ppf t =
  match t.upper with
  | Finite u -> Format.fprintf ppf "[%d, %d]" t.lower u
  | Now -> Format.fprintf ppf "[%d, now]" t.lower
  | Infinity -> Format.fprintf ppf "[%d, inf)" t.lower

let equal a b = a.lower = b.lower && a.upper = b.upper

let upper_rank = function Finite _ -> 0 | Now -> 1 | Infinity -> 2

let compare a b =
  let c = Int.compare a.lower b.lower in
  if c <> 0 then c
  else
    match (a.upper, b.upper) with
    | Finite x, Finite y -> Int.compare x y
    | x, y -> Int.compare (upper_rank x) (upper_rank y)
