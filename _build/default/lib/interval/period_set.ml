type t = Ivl.t list (* ascending, disjoint, non-adjacent *)

let empty = []
let is_empty t = t = []
let singleton i = [ i ]
let to_list t = t

(* Merge a sorted-by-lower list into canonical form. *)
let coalesce sorted =
  let rec go acc = function
    | [] -> List.rev acc
    | i :: rest -> (
        match acc with
        | prev :: tl when Ivl.lower i <= Ivl.upper prev + 1 ->
            let merged =
              Ivl.make (Ivl.lower prev) (max (Ivl.upper prev) (Ivl.upper i))
            in
            go (merged :: tl) rest
        | _ -> go (i :: acc) rest)
  in
  go [] sorted

let of_list l = coalesce (List.sort Ivl.compare l)
let add i t = of_list (i :: t)

let mem p t = List.exists (fun i -> Ivl.contains i p) t
let intersects t q = List.exists (fun i -> Ivl.intersects i q) t

let union a b = coalesce (List.merge Ivl.compare a b)

let inter a b =
  let rec go a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: xs, y :: ys ->
        let acc =
          match Ivl.intersection x y with
          | Some i -> i :: acc
          | None -> acc
        in
        if Ivl.upper x < Ivl.upper y then go xs b acc else go a ys acc
  in
  go a b []

(* Subtract b from a: walk a, carving out the b-intervals. *)
let diff a b =
  let rec carve x b acc =
    (* x is the not-yet-emitted remainder of the current a-interval *)
    match b with
    | [] -> (x :: acc, b)
    | y :: ys ->
        if Ivl.upper y < Ivl.lower x then carve x ys acc
        else if Ivl.lower y > Ivl.upper x then (x :: acc, b)
        else begin
          let acc =
            if Ivl.lower y > Ivl.lower x then
              Ivl.make (Ivl.lower x) (Ivl.lower y - 1) :: acc
            else acc
          in
          if Ivl.upper y >= Ivl.upper x then (acc, b)
          else carve (Ivl.make (Ivl.upper y + 1) (Ivl.upper x)) ys acc
        end
  in
  let rec go a b acc =
    match a with
    | [] -> List.rev acc
    | x :: xs ->
        let acc, b = carve x b acc in
        go xs b acc
  in
  go a b []

let complement_within universe t = diff [ universe ] t

let cardinal t =
  List.fold_left (fun acc i -> acc + Ivl.length i + 1) 0 t

let interval_count t = List.length t

let hull = function
  | [] -> None
  | first :: _ as l ->
      let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> first in
      Some (Ivl.make (Ivl.lower first) (Ivl.upper (last l)))

let equal a b = List.length a = List.length b && List.for_all2 Ivl.equal a b

let subset a b = equal (inter a b) a

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Ivl.pp)
    t
