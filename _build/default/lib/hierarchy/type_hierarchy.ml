module Ivl = Interval.Ivl

type node = {
  id : int;
  interval : Ivl.t;
  mutable cursor : int; (* next free label within the interval *)
}

type t = {
  tree : Ritree.Ri_tree.t;
  by_name : (string, node) Hashtbl.t;
  names : (int, string) Hashtbl.t;
  mutable next_id : int;
}

let root_span = 1 lsl 40

let register t name interval =
  let id = t.next_id in
  t.next_id <- id + 1;
  let node = { id; interval; cursor = Ivl.lower interval } in
  Hashtbl.replace t.by_name name node;
  Hashtbl.replace t.names id name;
  ignore (Ritree.Ri_tree.insert ~id t.tree interval);
  node

let create ?(name = "types") ~root catalog =
  let t =
    { tree = Ritree.Ri_tree.create ~name catalog;
      by_name = Hashtbl.create 64; names = Hashtbl.create 64; next_id = 0 }
  in
  ignore (register t root (Ivl.make 0 root_span));
  t

(* A child receives a quarter of the parent's remaining space (at least
   one label), so later siblings and deeper descendants keep room. *)
let add t ~parent child =
  if Hashtbl.mem t.by_name child then
    invalid_arg (Printf.sprintf "Type_hierarchy.add: %s exists" child);
  match Hashtbl.find_opt t.by_name parent with
  | None ->
      invalid_arg (Printf.sprintf "Type_hierarchy.add: unknown parent %s" parent)
  | Some p ->
      let remaining = Ivl.upper p.interval - p.cursor + 1 in
      if remaining < 1 then
        invalid_arg
          (Printf.sprintf "Type_hierarchy.add: %s's label space is exhausted"
             parent);
      let span = max 1 (remaining / 4) in
      let lo = p.cursor in
      p.cursor <- p.cursor + span;
      ignore (register t child (Ivl.make lo (lo + span - 1)))

let mem t name = Hashtbl.mem t.by_name name
let type_count t = Hashtbl.length t.by_name

let interval_of t name =
  match Hashtbl.find_opt t.by_name name with
  | Some n -> n.interval
  | None -> raise Not_found

let is_subtype t ~sub ~super =
  Ivl.subset (interval_of t sub) (interval_of t super)

let subtypes t name =
  let q = interval_of t name in
  (* every type label range intersecting q: by construction either
     contains q or is contained in it; keep the contained ones *)
  Ritree.Ri_tree.intersecting t.tree q
  |> List.filter_map (fun (ivl, id) ->
         if Ivl.subset ivl q then Some (Hashtbl.find t.names id) else None)
  |> List.sort compare

let supertypes t name =
  let q = interval_of t name in
  Ritree.Ri_tree.stabbing_ids t.tree (Ivl.lower q)
  |> List.filter_map (fun id ->
         let super = Hashtbl.find t.names id in
         if Ivl.subset q (interval_of t super) then Some super else None)
  |> List.sort compare

let common_supertype t a b =
  let ia = interval_of t a and ib = interval_of t b in
  (* ancestors of a containing b's interval; the least is the one with
     the smallest range *)
  let candidates =
    Ritree.Ri_tree.stabbing_ids t.tree (Ivl.lower ia)
    |> List.filter_map (fun id ->
           let name = Hashtbl.find t.names id in
           let ivl = interval_of t name in
           if Ivl.subset ia ivl && Ivl.subset ib ivl then Some (ivl, name)
           else None)
  in
  match
    List.sort
      (fun (x, _) (y, _) -> Int.compare (Ivl.length x) (Ivl.length y))
      candidates
  with
  | (_, name) :: _ -> name
  | [] -> raise Not_found
