(** Interval encoding of type/class hierarchies.

    The paper's introduction lists "hierarchical type systems in
    object-oriented databases" [KRVV 93] among the interval applications:
    give every type the interval spanned by its subtree in the hierarchy
    and subtyping becomes interval containment, so an RI-tree answers
    hierarchy queries through the relational engine.

    Types are labelled dynamically: every node owns an integer range and
    hands each new child a fresh quarter of its remaining space, so
    subtrees can grow without relabelling (a gap-based nested-interval
    scheme). The root owns [\[0, 2^40\]], giving comfortably deep
    hierarchies before the space runs out. *)

type t

val create : ?name:string -> root:string -> Relation.Catalog.t -> t

val add : t -> parent:string -> string -> unit
(** Add a new type under [parent].
    @raise Invalid_argument if the child already exists, the parent is
    unknown, or the parent's label space is exhausted. *)

val mem : t -> string -> bool
val type_count : t -> int

val interval_of : t -> string -> Interval.Ivl.t
(** The type's label range. @raise Not_found *)

val is_subtype : t -> sub:string -> super:string -> bool
(** Reflexive: every type is a subtype of itself. *)

val subtypes : t -> string -> string list
(** All types at or below the given type, via an RI-tree intersection
    query on its label range (sorted). *)

val supertypes : t -> string -> string list
(** The path to the root, computed by a stabbing query on the type's
    label (sorted). *)

val common_supertype : t -> string -> string -> string
(** The least common ancestor. @raise Not_found on unknown types. *)
