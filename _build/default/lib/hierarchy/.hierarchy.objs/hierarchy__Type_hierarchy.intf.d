lib/hierarchy/type_hierarchy.mli: Interval Relation
