lib/hierarchy/type_hierarchy.ml: Hashtbl Int Interval List Printf Ritree
