test/test_backbone.mli:
