test/test_workload.ml: Alcotest Array Float Interval List Printf Workload
