test/test_table.ml: Alcotest Array Btree Relation Storage Workload
