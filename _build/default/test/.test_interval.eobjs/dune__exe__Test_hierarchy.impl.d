test/test_hierarchy.ml: Alcotest Hierarchy List Printf Relation
