test/test_iter.ml: Alcotest Array List Relation
