test/test_cost_model.ml: Alcotest Interval List Printf Relation Ritree Storage Workload
