test/test_recovery.mli:
