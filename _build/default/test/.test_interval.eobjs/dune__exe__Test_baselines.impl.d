test/test_baselines.ml: Alcotest Array Baselines Harness Interval List Memindex Printf Relation Workload
