test/test_hierarchy.mli:
