test/test_backbone.ml: Alcotest List Printf QCheck QCheck_alcotest Ritree Workload
