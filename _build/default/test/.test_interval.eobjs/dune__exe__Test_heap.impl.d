test/test_heap.ml: Alcotest Array Fun List Relation Storage
