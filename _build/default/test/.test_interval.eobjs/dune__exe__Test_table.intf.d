test/test_table.mli:
