test/test_period_set.ml: Alcotest Array Interval List QCheck QCheck_alcotest
