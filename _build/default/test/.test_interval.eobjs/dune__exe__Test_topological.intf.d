test/test_topological.mli:
