test/test_period_set.mli:
