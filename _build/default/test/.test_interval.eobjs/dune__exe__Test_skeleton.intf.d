test/test_skeleton.mli:
