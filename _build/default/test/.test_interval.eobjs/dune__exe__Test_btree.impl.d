test/test_btree.ml: Alcotest Array Btree Fun List Option QCheck QCheck_alcotest Seq Set Storage String Workload
