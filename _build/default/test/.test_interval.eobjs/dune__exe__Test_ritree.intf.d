test/test_ritree.mli:
