test/test_spatial.ml: Alcotest Interval List Printf Relation Spatial Workload
