test/test_harness.ml: Alcotest Array Float Harness Interval List Relation Ritree String
