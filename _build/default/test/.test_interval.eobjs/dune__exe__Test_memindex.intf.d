test/test_memindex.mli:
