test/test_skeleton.ml: Alcotest Interval List Memindex Printf Relation Ritree Workload
