test/test_temporal_store.mli:
