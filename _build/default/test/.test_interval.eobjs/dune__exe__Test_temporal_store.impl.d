test/test_temporal_store.ml: Alcotest Interval List Relation Ritree Workload
