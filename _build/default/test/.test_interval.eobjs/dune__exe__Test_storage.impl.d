test/test_storage.ml: Alcotest Array Bytes Int32 Printf Storage Workload
