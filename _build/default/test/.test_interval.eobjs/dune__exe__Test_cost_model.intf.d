test/test_cost_model.mli:
