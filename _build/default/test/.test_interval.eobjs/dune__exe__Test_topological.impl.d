test/test_topological.ml: Alcotest Hashtbl Interval List Memindex Relation Ritree Workload
