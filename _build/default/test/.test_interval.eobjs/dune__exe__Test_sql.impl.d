test/test_sql.ml: Alcotest List Printf QCheck QCheck_alcotest Relation Sqlfront String Workload
