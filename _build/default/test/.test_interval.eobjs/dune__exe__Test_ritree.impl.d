test/test_ritree.ml: Alcotest Array Interval List Memindex Option Printf Relation Ritree String Workload
