test/test_iter.mli:
