test/test_interval.ml: Alcotest Fun Interval List Printf QCheck QCheck_alcotest String
