test/test_join.ml: Alcotest Interval List Relation Ritree Workload
