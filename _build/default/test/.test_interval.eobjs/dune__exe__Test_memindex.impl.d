test/test_memindex.ml: Alcotest Array Interval List Memindex Relation Ritree Workload
