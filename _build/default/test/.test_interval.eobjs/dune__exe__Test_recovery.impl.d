test/test_recovery.ml: Alcotest Array Bytes Hashtbl Interval List Option Printf Relation Ritree Storage Workload
