test/test_integration.ml: Alcotest Array Baselines Harness Hashtbl Interval List Memindex Option Printf Relation Ritree Sqlfront Workload
