(* Query operators. *)

module Iter = Relation.Iter
module Table = Relation.Table
module Catalog = Relation.Catalog

let check = Alcotest.check
let rows = Alcotest.list (Alcotest.array Alcotest.int)

let test_of_list_and_sinks () =
  let it = Iter.of_list [ [| 1 |]; [| 2 |]; [| 3 |] ] in
  check rows "to_list" [ [| 1 |]; [| 2 |]; [| 3 |] ] (Iter.to_list it);
  check Alcotest.int "count" 2 (Iter.count (Iter.of_list [ [| 1 |]; [| 2 |] ]));
  check Alcotest.int "fold" 6
    (Iter.fold (fun a r -> a + r.(0)) 0 (Iter.of_array [| [| 1 |]; [| 2 |]; [| 3 |] |]));
  check rows "empty" [] (Iter.to_list Iter.empty)

let test_map_filter_project () =
  let it () = Iter.of_list [ [| 1; 10 |]; [| 2; 20 |]; [| 3; 30 |] ] in
  check rows "map" [ [| 2 |]; [| 4 |]; [| 6 |] ]
    (Iter.to_list (Iter.map (fun r -> [| 2 * r.(0) |]) (it ())));
  check rows "filter" [ [| 2; 20 |] ]
    (Iter.to_list (Iter.filter (fun r -> r.(0) = 2) (it ())));
  check rows "project" [ [| 10; 1 |]; [| 20; 2 |]; [| 30; 3 |] ]
    (Iter.to_list (Iter.project [| 1; 0 |] (it ())))

let test_union_all_nested_loop () =
  let a = Iter.of_list [ [| 1 |] ] and b = Iter.of_list [ [| 2 |]; [| 3 |] ] in
  check rows "union_all" [ [| 1 |]; [| 2 |]; [| 3 |] ]
    (Iter.to_list (Iter.union_all [ a; Iter.empty; b ]));
  let nl =
    Iter.nested_loop
      ~outer:(Iter.of_list [ [| 1 |]; [| 2 |] ])
      ~inner:(fun o -> Iter.of_list [ [| o.(0); 0 |]; [| o.(0); 1 |] ])
  in
  check rows "nested loop"
    [ [| 1; 0 |]; [| 1; 1 |]; [| 2; 0 |]; [| 2; 1 |] ]
    (Iter.to_list nl)

let test_distinct_by () =
  let it = Iter.of_list [ [| 1 |]; [| 2 |]; [| 1 |]; [| 3 |]; [| 2 |] ] in
  check rows "distinct" [ [| 1 |]; [| 2 |]; [| 3 |] ]
    (Iter.to_list (Iter.distinct_by (fun r -> r.(0)) it))

let test_index_range_and_fetch () =
  let db = Catalog.create ~block_size:256 () in
  let t = Catalog.create_table db ~name:"t" ~columns:[ "k"; "v" ] in
  let idx = Table.create_index t ~name:"k" ~columns:[ "k" ] in
  for i = 0 to 19 do
    ignore (Table.insert t [| i mod 5; 100 + i |])
  done;
  (* entries (k, rowid) for k = 2 *)
  let entries = Iter.to_list (Iter.index_prefix idx ~prefix:[ 2 ]) in
  check Alcotest.int "4 entries" 4 (List.length entries);
  List.iter (fun e -> check Alcotest.int "key" 2 e.(0)) entries;
  (* fetch resolves rowids to base rows *)
  let base =
    Iter.to_list (Iter.fetch t (Iter.index_prefix idx ~prefix:[ 2 ]))
  in
  List.iter (fun r -> check Alcotest.int "base k" 2 r.(0)) base;
  check Alcotest.int "4 rows" 4 (List.length base);
  (* heap_scan appends the rowid *)
  let scanned = Iter.to_list (Iter.heap_scan t) in
  check Alcotest.int "scan all" 20 (List.length scanned);
  check Alcotest.int "width+1" 3 (Array.length (List.hd scanned))

let test_fetch_skips_dangling () =
  let db = Catalog.create ~block_size:256 () in
  let t = Catalog.create_table db ~name:"t" ~columns:[ "k" ] in
  let rid = Table.insert t [| 1 |] in
  ignore (Table.insert t [| 2 |]);
  ignore (Relation.Heap.delete (Table.heap t) rid);
  let out = Iter.to_list (Iter.fetch t (Iter.of_list [ [| rid |]; [| rid + 1 |] ])) in
  check rows "only live row" [ [| 2 |] ] out

let () =
  Alcotest.run "iter"
    [
      ("operators",
       [ Alcotest.test_case "sources and sinks" `Quick test_of_list_and_sinks;
         Alcotest.test_case "map/filter/project" `Quick
           test_map_filter_project;
         Alcotest.test_case "union_all / nested_loop" `Quick
           test_union_all_nested_loop;
         Alcotest.test_case "distinct_by" `Quick test_distinct_by;
         Alcotest.test_case "index_range + fetch" `Quick
           test_index_range_and_fetch;
         Alcotest.test_case "fetch skips dangling rowids" `Quick
           test_fetch_skips_dangling ]);
    ]
