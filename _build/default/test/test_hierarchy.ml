(* Interval-encoded type hierarchies over the RI-tree. *)

module TH = Hierarchy.Type_hierarchy

let check = Alcotest.check

let build () =
  let db = Relation.Catalog.create () in
  let t = TH.create ~root:"object" db in
  List.iter
    (fun (parent, child) -> TH.add t ~parent child)
    [ ("object", "number"); ("object", "text"); ("number", "int");
      ("number", "float"); ("int", "int32"); ("int", "int64");
      ("text", "varchar"); ("text", "clob") ];
  t

let test_structure () =
  let t = build () in
  check Alcotest.int "count" 9 (TH.type_count t);
  check Alcotest.bool "mem" true (TH.mem t "float");
  check Alcotest.bool "not mem" false (TH.mem t "bool")

let test_is_subtype () =
  let t = build () in
  check Alcotest.bool "int32 <: number" true
    (TH.is_subtype t ~sub:"int32" ~super:"number");
  check Alcotest.bool "int32 <: object" true
    (TH.is_subtype t ~sub:"int32" ~super:"object");
  check Alcotest.bool "reflexive" true (TH.is_subtype t ~sub:"int" ~super:"int");
  check Alcotest.bool "not int <: text" false
    (TH.is_subtype t ~sub:"int" ~super:"text");
  check Alcotest.bool "not super <: sub" false
    (TH.is_subtype t ~sub:"number" ~super:"int")

let test_subtypes_supertypes () =
  let t = build () in
  check (Alcotest.list Alcotest.string) "subtypes of number"
    [ "float"; "int"; "int32"; "int64"; "number" ]
    (TH.subtypes t "number");
  check (Alcotest.list Alcotest.string) "subtypes of a leaf" [ "clob" ]
    (TH.subtypes t "clob");
  check (Alcotest.list Alcotest.string) "supertypes of int32"
    [ "int"; "int32"; "number"; "object" ]
    (TH.supertypes t "int32");
  check (Alcotest.list Alcotest.string) "root's supertypes" [ "object" ]
    (TH.supertypes t "object")

let test_common_supertype () =
  let t = build () in
  check Alcotest.string "lca int32/int64" "int"
    (TH.common_supertype t "int32" "int64");
  check Alcotest.string "lca int32/float" "number"
    (TH.common_supertype t "int32" "float");
  check Alcotest.string "lca int/clob" "object"
    (TH.common_supertype t "int" "clob");
  check Alcotest.string "lca with self" "int"
    (TH.common_supertype t "int" "int");
  check Alcotest.string "lca with ancestor" "number"
    (TH.common_supertype t "int32" "number")

let test_validation () =
  let t = build () in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Type_hierarchy.add: int exists") (fun () ->
      TH.add t ~parent:"object" "int");
  Alcotest.check_raises "unknown parent"
    (Invalid_argument "Type_hierarchy.add: unknown parent ghost") (fun () ->
      TH.add t ~parent:"ghost" "child")

let test_deep_and_wide () =
  let db = Relation.Catalog.create () in
  let t = TH.create ~root:"r" db in
  (* a deep chain *)
  let prev = ref "r" in
  for i = 1 to 15 do
    let name = Printf.sprintf "d%d" i in
    TH.add t ~parent:!prev name;
    prev := name
  done;
  (* a wide fan *)
  for i = 1 to 30 do
    TH.add t ~parent:"r" (Printf.sprintf "w%d" i)
  done;
  check Alcotest.bool "deep chain subtypes" true
    (TH.is_subtype t ~sub:"d15" ~super:"r");
  check Alcotest.int "supertype path length" 16
    (List.length (TH.supertypes t "d15"));
  check Alcotest.int "fan is flat" 1 (List.length (TH.subtypes t "w7"));
  check Alcotest.string "lca across the fan" "r"
    (TH.common_supertype t "w3" "d15")

let () =
  Alcotest.run "hierarchy"
    [
      ("types",
       [ Alcotest.test_case "structure" `Quick test_structure;
         Alcotest.test_case "is_subtype" `Quick test_is_subtype;
         Alcotest.test_case "subtypes/supertypes" `Quick
           test_subtypes_supertypes;
         Alcotest.test_case "common supertype" `Quick test_common_supertype;
         Alcotest.test_case "validation" `Quick test_validation;
         Alcotest.test_case "deep and wide" `Quick test_deep_and_wide ]);
    ]
