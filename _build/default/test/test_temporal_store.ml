(* now/infinity handling of Sec. 4.6. *)

module Ivl = Interval.Ivl
module Temporal = Interval.Temporal
module Store = Ritree.Temporal_store

let check = Alcotest.check
let sorted = List.sort compare

let test_basics () =
  let db = Relation.Catalog.create () in
  let s = Store.create db in
  let a = Store.insert s (Temporal.make 0 (Finite 100)) in
  let b = Store.insert s (Temporal.make 50 Now) in
  let c = Store.insert s (Temporal.make 10 Infinity) in
  check Alcotest.int "count" 3 (Store.count s);
  (* at now = 60: b covers [50,60] *)
  check (Alcotest.list Alcotest.int) "hit all" (sorted [ a; b; c ])
    (sorted (Store.intersecting_ids s ~now:60 (Ivl.make 55 70)));
  (* at now = 40: b not valid in [55,70] yet *)
  check (Alcotest.list Alcotest.int) "b excluded" (sorted [ a; c ])
    (sorted (Store.intersecting_ids s ~now:40 (Ivl.make 55 70)));
  (* infinity reaches arbitrarily far *)
  check (Alcotest.list Alcotest.int) "far future" [ c ]
    (Store.intersecting_ids s ~now:42 (Ivl.make 1_000_000 2_000_000))

let test_now_not_yet_valid () =
  let db = Relation.Catalog.create () in
  let s = Store.create db in
  let x = Store.insert s (Temporal.make 900 Now) in
  check (Alcotest.list Alcotest.int) "not valid before start" []
    (Store.intersecting_ids s ~now:500 (Ivl.make 0 10_000));
  check (Alcotest.list Alcotest.int) "valid after start" [ x ]
    (Store.intersecting_ids s ~now:950 (Ivl.make 0 10_000))

let test_sentinels_do_not_pollute_finite_queries () =
  let db = Relation.Catalog.create () in
  let s = Store.create db in
  let f = Store.insert s (Temporal.make 0 (Finite 10)) in
  let _n = Store.insert s (Temporal.make 5000 Now) in
  let _i = Store.insert s (Temporal.make 5000 Infinity) in
  (* a query left of the sentinels' lower bounds sees only the finite
     interval *)
  check (Alcotest.list Alcotest.int) "only finite" [ f ]
    (sorted (Store.intersecting_ids s ~now:9_000 (Ivl.make 0 100)));
  Ritree.Ri_tree.check_invariants (Store.ri s)

(* Randomized agreement with the Temporal.resolve specification. *)
let test_oracle () =
  let rng = Workload.Prng.create ~seed:77 in
  let db = Relation.Catalog.create () in
  let s = Store.create db in
  let stored = ref [] in
  for i = 0 to 299 do
    let lower = Workload.Prng.int rng 10_000 in
    let upper =
      match Workload.Prng.int rng 3 with
      | 0 -> Temporal.Finite (lower + Workload.Prng.int rng 2_000)
      | 1 -> Temporal.Now
      | _ -> Temporal.Infinity
    in
    let tv = Temporal.make lower upper in
    ignore (Store.insert ~id:i s tv);
    stored := (tv, i) :: !stored
  done;
  for _ = 1 to 200 do
    let now = Workload.Prng.int rng 15_000 in
    let ql = Workload.Prng.int rng 12_000 in
    let q = Ivl.make ql (ql + Workload.Prng.int rng 3_000) in
    let expected =
      List.filter_map
        (fun (tv, id) ->
          if Temporal.intersects ~now tv q then Some id else None)
        !stored
      |> sorted
    in
    let got = sorted (Store.intersecting_ids s ~now q) in
    if got <> expected then
      Alcotest.failf "now=%d %s: %d vs %d" now (Ivl.to_string q)
        (List.length got) (List.length expected)
  done

let test_intersecting_returns_temporal_values () =
  let db = Relation.Catalog.create () in
  let s = Store.create db in
  ignore (Store.insert ~id:1 s (Temporal.make 0 (Finite 10)));
  ignore (Store.insert ~id:2 s (Temporal.make 3 Now));
  ignore (Store.insert ~id:3 s (Temporal.make 5 Infinity));
  let hits = Store.intersecting s ~now:100 (Ivl.make 6 7) in
  check Alcotest.int "three hits" 3 (List.length hits);
  List.iter
    (fun (tv, id) ->
      match (id, tv.Temporal.upper) with
      | 1, Temporal.Finite 10 | 2, Temporal.Now | 3, Temporal.Infinity -> ()
      | _ -> Alcotest.failf "id %d has wrong upper" id)
    hits

let () =
  Alcotest.run "temporal_store"
    [
      ("temporal",
       [ Alcotest.test_case "basics" `Quick test_basics;
         Alcotest.test_case "now before start" `Quick test_now_not_yet_valid;
         Alcotest.test_case "sentinels isolated" `Quick
           test_sentinels_do_not_pollute_finite_queries;
         Alcotest.test_case "randomized oracle" `Quick test_oracle;
         Alcotest.test_case "temporal values round trip" `Quick
           test_intersecting_returns_temporal_values ]);
    ]
