(* Interval algebra: Ivl, Allen relations, Temporal bounds. *)

module Ivl = Interval.Ivl
module Allen = Interval.Allen
module Temporal = Interval.Temporal

let check = Alcotest.check
let ivl = Alcotest.testable Ivl.pp Ivl.equal

(* All intervals over a small domain, points included. *)
let small_domain n =
  List.concat
    (List.init n (fun l ->
         List.filter_map
           (fun u -> if l <= u then Some (Ivl.make l u) else None)
           (List.init n Fun.id)))

let qcheck_ivl ?(bound = 10_000) () =
  QCheck.map
    (fun (a, len) -> Ivl.make a (a + len))
    QCheck.(pair (int_range (-bound) bound) (int_range 0 bound))

(* ---- Ivl basics ---- *)

let test_make_validates () =
  Alcotest.check_raises "lower > upper" (Invalid_argument
    "Ivl.make: lower 3 exceeds upper 2")
    (fun () -> ignore (Ivl.make 3 2));
  check ivl "point" (Ivl.point 5) (Ivl.make 5 5)

let test_accessors () =
  let i = Ivl.make (-3) 7 in
  check Alcotest.int "lower" (-3) (Ivl.lower i);
  check Alcotest.int "upper" 7 (Ivl.upper i);
  check Alcotest.int "length" 10 (Ivl.length i);
  check Alcotest.bool "point?" false (Ivl.is_point i);
  check Alcotest.bool "point yes" true (Ivl.is_point (Ivl.point 0))

let test_contains () =
  let i = Ivl.make 2 5 in
  List.iter
    (fun (p, expect) ->
      check Alcotest.bool (Printf.sprintf "contains %d" p) expect
        (Ivl.contains i p))
    [ (1, false); (2, true); (3, true); (5, true); (6, false) ]

let test_intersection_hull () =
  let a = Ivl.make 0 5 and b = Ivl.make 3 9 and c = Ivl.make 7 8 in
  check (Alcotest.option ivl) "a^b" (Some (Ivl.make 3 5)) (Ivl.intersection a b);
  check (Alcotest.option ivl) "a^c" None (Ivl.intersection a c);
  check ivl "hull" (Ivl.make 0 9) (Ivl.hull a b);
  check Alcotest.bool "subset" true (Ivl.subset (Ivl.make 4 5) a);
  check Alcotest.bool "not subset" false (Ivl.subset b a);
  check ivl "shift" (Ivl.make 10 15) (Ivl.shift a 10)

let test_touching_intersect () =
  (* closed intervals sharing one point intersect *)
  check Alcotest.bool "touch" true
    (Ivl.intersects (Ivl.make 0 5) (Ivl.make 5 9));
  check Alcotest.bool "gap" false
    (Ivl.intersects (Ivl.make 0 5) (Ivl.make 6 9))

let prop_intersects_symmetric =
  QCheck.Test.make ~count:500 ~name:"intersects symmetric"
    (QCheck.pair (qcheck_ivl ()) (qcheck_ivl ()))
    (fun (a, b) -> Ivl.intersects a b = Ivl.intersects b a)

let prop_intersection_sound =
  QCheck.Test.make ~count:500 ~name:"intersection agrees with intersects"
    (QCheck.pair (qcheck_ivl ()) (qcheck_ivl ()))
    (fun (a, b) ->
      match Ivl.intersection a b with
      | Some i ->
          Ivl.intersects a b && Ivl.subset i a && Ivl.subset i b
      | None -> not (Ivl.intersects a b))

let test_compare_order () =
  let sorted =
    List.sort Ivl.compare [ Ivl.make 3 4; Ivl.make 1 9; Ivl.make 1 2 ]
  in
  check (Alcotest.list ivl) "lexicographic"
    [ Ivl.make 1 2; Ivl.make 1 9; Ivl.make 3 4 ]
    sorted

(* ---- Allen relations ---- *)

let test_allen_partition_exhaustive () =
  (* The 13 relations partition all pairs over a small domain — the
     convention for degenerate intervals included. *)
  let all = small_domain 7 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let holding = List.filter (fun r -> Allen.holds r a b) Allen.all in
          if List.length holding <> 1 then
            Alcotest.failf "%s vs %s: %d relations hold (%s)"
              (Ivl.to_string a) (Ivl.to_string b) (List.length holding)
              (String.concat "," (List.map Allen.to_string holding)))
        all)
    all

let test_allen_examples () =
  let r a b = Allen.relate (Ivl.of_pair a) (Ivl.of_pair b) in
  let open Allen in
  check (Alcotest.testable Allen.pp ( = )) "before" Before (r (0, 2) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "meets" Meets (r (0, 4) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "overlaps" Overlaps (r (0, 5) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "finished-by" Finished_by (r (0, 6) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "contains" Contains (r (0, 7) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "starts" Starts (r (4, 5) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "equals" Equals (r (4, 6) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "started-by" Started_by (r (4, 8) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "during" During (r (5, 5) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "finishes" Finishes (r (5, 6) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "overlapped-by" Overlapped_by (r (5, 8) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "met-by" Met_by (r (6, 8) (4, 6));
  check (Alcotest.testable Allen.pp ( = )) "after" After (r (7, 8) (4, 6))

let prop_allen_inverse =
  QCheck.Test.make ~count:1000 ~name:"inverse relation"
    (QCheck.pair (qcheck_ivl ~bound:40 ()) (qcheck_ivl ~bound:40 ()))
    (fun (a, b) ->
      let r = Allen.relate a b in
      Allen.holds (Allen.inverse r) b a)

let prop_allen_intersection =
  QCheck.Test.make ~count:1000
    ~name:"intersects iff relation implies intersection"
    (QCheck.pair (qcheck_ivl ~bound:40 ()) (qcheck_ivl ~bound:40 ()))
    (fun (a, b) ->
      Ivl.intersects a b = Allen.implies_intersection (Allen.relate a b))

let test_allen_string_roundtrip () =
  List.iter
    (fun r ->
      check
        (Alcotest.option (Alcotest.testable Allen.pp ( = )))
        (Allen.to_string r) (Some r)
        (Allen.of_string (Allen.to_string r)))
    Allen.all;
  check
    (Alcotest.option (Alcotest.testable Allen.pp ( = )))
    "unknown" None (Allen.of_string "sideways")

(* ---- Temporal ---- *)

let test_temporal_resolve () =
  let fin = Temporal.make 5 (Finite 10) in
  let now_iv = Temporal.make 5 Now in
  let inf = Temporal.make 5 Infinity in
  check (Alcotest.option ivl) "finite" (Some (Ivl.make 5 10))
    (Temporal.resolve ~now:7 fin);
  check (Alcotest.option ivl) "now" (Some (Ivl.make 5 7))
    (Temporal.resolve ~now:7 now_iv);
  check (Alcotest.option ivl) "now before start" None
    (Temporal.resolve ~now:4 now_iv);
  check (Alcotest.option ivl) "infinity"
    (Some (Ivl.make 5 Temporal.infinity_sentinel))
    (Temporal.resolve ~now:7 inf)

let test_temporal_validates () =
  Alcotest.check_raises "upper < lower"
    (Invalid_argument "Temporal.make: upper 3 precedes lower 5") (fun () ->
      ignore (Temporal.make 5 (Finite 3)))

let test_temporal_intersects () =
  let now_iv = Temporal.make 10 Now in
  check Alcotest.bool "grown" true
    (Temporal.intersects ~now:50 now_iv (Ivl.make 40 60));
  check Alcotest.bool "not yet" false
    (Temporal.intersects ~now:30 now_iv (Ivl.make 40 60));
  check Alcotest.bool "not valid yet" false
    (Temporal.intersects ~now:5 now_iv (Ivl.make 0 100))

let () =
  Alcotest.run "interval"
    [
      ("ivl",
       [ Alcotest.test_case "make validates" `Quick test_make_validates;
         Alcotest.test_case "accessors" `Quick test_accessors;
         Alcotest.test_case "contains" `Quick test_contains;
         Alcotest.test_case "intersection/hull/subset/shift" `Quick
           test_intersection_hull;
         Alcotest.test_case "touching intervals intersect" `Quick
           test_touching_intersect;
         Alcotest.test_case "compare is lexicographic" `Quick
           test_compare_order;
         QCheck_alcotest.to_alcotest prop_intersects_symmetric;
         QCheck_alcotest.to_alcotest prop_intersection_sound ]);
      ("allen",
       [ Alcotest.test_case "13 relations partition all pairs" `Quick
           test_allen_partition_exhaustive;
         Alcotest.test_case "canonical examples" `Quick test_allen_examples;
         Alcotest.test_case "string round-trip" `Quick
           test_allen_string_roundtrip;
         QCheck_alcotest.to_alcotest prop_allen_inverse;
         QCheck_alcotest.to_alcotest prop_allen_intersection ]);
      ("temporal",
       [ Alcotest.test_case "resolve" `Quick test_temporal_resolve;
         Alcotest.test_case "validation" `Quick test_temporal_validates;
         Alcotest.test_case "intersects" `Quick test_temporal_intersects ]);
    ]
