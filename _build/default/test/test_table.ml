(* Tables with automatic index maintenance, and the catalog. *)

module Table = Relation.Table
module Catalog = Relation.Catalog

let check = Alcotest.check

let mk_db () = Catalog.create ~block_size:256 ~cache_blocks:64 ()

let mk_table ?(name = "t") db =
  Catalog.create_table db ~name ~columns:[ "a"; "b"; "c" ]

let test_schema () =
  let db = mk_db () in
  let t = mk_table db in
  check (Alcotest.array Alcotest.string) "columns" [| "a"; "b"; "c" |]
    (Table.columns t);
  check Alcotest.int "column index" 1 (Table.column_index t "b");
  Alcotest.check_raises "unknown column" Not_found (fun () ->
      ignore (Table.column_index t "z"));
  Alcotest.check_raises "duplicate column"
    (Invalid_argument "Table.create: duplicate column x") (fun () ->
      ignore (Catalog.create_table db ~name:"bad" ~columns:[ "x"; "x" ]))

let test_catalog () =
  let db = mk_db () in
  let t = mk_table db in
  check Alcotest.bool "find" true
    (match Catalog.find_table db "t" with Some x -> x == t | None -> false);
  check Alcotest.bool "missing" true (Catalog.find_table db "nope" = None);
  Alcotest.check_raises "duplicate table"
    (Invalid_argument "Catalog.create_table: t exists") (fun () ->
      ignore (mk_table db))

let test_index_maintenance () =
  let db = mk_db () in
  let t = mk_table db in
  let idx = Table.create_index t ~name:"ab" ~columns:[ "a"; "b" ] in
  let rid1 = Table.insert t [| 1; 2; 3 |] in
  let _rid2 = Table.insert t [| 4; 5; 6 |] in
  check Alcotest.int "entries" 2 (Table.Index.entry_count idx);
  Table.check_invariants t;
  ignore (Table.delete_row t rid1);
  check Alcotest.int "entries after delete" 1 (Table.Index.entry_count idx);
  Table.check_invariants t

let test_index_over_existing_rows () =
  let db = mk_db () in
  let t = mk_table db in
  for i = 0 to 99 do
    ignore (Table.insert t [| i; i * 2; i * 3 |])
  done;
  let idx = Table.create_index t ~name:"late" ~columns:[ "b" ] in
  check Alcotest.int "backfilled" 100 (Table.Index.entry_count idx);
  Table.check_invariants t

let test_bulk_index_equals_incremental () =
  let db = mk_db () in
  let t = mk_table db in
  let rng = Workload.Prng.create ~seed:15 in
  for _ = 0 to 499 do
    ignore
      (Table.insert t
         [| Workload.Prng.int rng 100; Workload.Prng.int rng 100; 0 |])
  done;
  let inc = Table.create_index t ~name:"inc" ~columns:[ "a"; "b" ] in
  let blk = Table.create_index ~bulk:true t ~name:"blk" ~columns:[ "a"; "b" ] in
  check Alcotest.int "same entries" (Table.Index.entry_count inc)
    (Table.Index.entry_count blk);
  check Alcotest.bool "same keys" true
    (Btree.to_list (Table.Index.tree inc) = Btree.to_list (Table.Index.tree blk));
  check Alcotest.bool "bulk is more compact" true
    (Btree.page_count (Table.Index.tree blk)
     <= Btree.page_count (Table.Index.tree inc));
  (* the bulk index is maintained by future DML like any other *)
  let rid = Table.insert t [| 7; 7; 7 |] in
  check Alcotest.bool "maintained" true
    (Btree.mem (Table.Index.tree blk) [| 7; 7; rid |]);
  Table.check_invariants t

let test_index_on_lookup () =
  let db = mk_db () in
  let t = mk_table db in
  let _ab = Table.create_index t ~name:"ab" ~columns:[ "a"; "b" ] in
  let _c = Table.create_index t ~name:"c" ~columns:[ "c" ] in
  check Alcotest.bool "prefix a" true (Table.index_on t [ "a" ] <> None);
  check Alcotest.bool "prefix ab" true (Table.index_on t [ "a"; "b" ] <> None);
  check Alcotest.bool "no b-leading" true (Table.index_on t [ "b" ] = None);
  check Alcotest.bool "c" true (Table.index_on t [ "c" ] <> None)

let test_update_row_maintains_indexes () =
  let db = mk_db () in
  let t = mk_table db in
  let idx = Table.create_index t ~name:"a" ~columns:[ "a" ] in
  let rid = Table.insert t [| 1; 0; 0 |] in
  check Alcotest.bool "update" true (Table.update_row t rid [| 42; 0; 0 |]);
  let tree = Table.Index.tree idx in
  check Alcotest.bool "old key gone" false (Btree.mem tree [| 1; rid |]);
  check Alcotest.bool "new key present" true (Btree.mem tree [| 42; rid |]);
  Table.check_invariants t

let test_delete_where () =
  let db = mk_db () in
  let t = mk_table db in
  ignore (Table.create_index t ~name:"a" ~columns:[ "a" ]);
  for i = 0 to 49 do
    ignore (Table.insert t [| i; 0; 0 |])
  done;
  let n = Table.delete_where t (fun r -> r.(0) mod 5 = 0) in
  check Alcotest.int "deleted" 10 n;
  check Alcotest.int "rows" 40 (Table.row_count t);
  Table.check_invariants t

let test_duplicate_rows_ok () =
  (* identical rows are distinct via their rowid in index keys *)
  let db = mk_db () in
  let t = mk_table db in
  let idx = Table.create_index t ~name:"a" ~columns:[ "a" ] in
  let r1 = Table.insert t [| 7; 7; 7 |] in
  let _r2 = Table.insert t [| 7; 7; 7 |] in
  check Alcotest.int "two entries" 2 (Table.Index.entry_count idx);
  ignore (Table.delete_row t r1);
  check Alcotest.int "one left" 1 (Table.Index.entry_count idx);
  Table.check_invariants t

let test_io_counting () =
  let db = Catalog.create ~block_size:256 ~cache_blocks:8 () in
  let t = Catalog.create_table db ~name:"x" ~columns:[ "a" ] in
  for i = 0 to 999 do
    ignore (Table.insert t [| i |])
  done;
  Catalog.flush db;
  Catalog.reset_io_stats db;
  Catalog.drop_cache db;
  let seen = ref 0 in
  Table.iter t (fun _ _ -> incr seen);
  let stats = Catalog.io_stats db in
  check Alcotest.int "all rows" 1000 !seen;
  check Alcotest.bool "cold scan costs reads" true
    (stats.Storage.Block_device.Stats.reads > 10)

let () =
  Alcotest.run "table"
    [
      ("table",
       [ Alcotest.test_case "schema" `Quick test_schema;
         Alcotest.test_case "catalog" `Quick test_catalog;
         Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
         Alcotest.test_case "index over existing rows" `Quick
           test_index_over_existing_rows;
         Alcotest.test_case "bulk index = incremental index" `Quick
           test_bulk_index_equals_incremental;
         Alcotest.test_case "index_on" `Quick test_index_on_lookup;
         Alcotest.test_case "update_row maintains indexes" `Quick
           test_update_row_maintains_indexes;
         Alcotest.test_case "delete_where" `Quick test_delete_where;
         Alcotest.test_case "duplicate rows" `Quick test_duplicate_rows_ok;
         Alcotest.test_case "physical I/O counting" `Quick test_io_counting ]);
    ]
