(* The measurement harness itself: table rendering, CSV escaping, I/O
   accounting. *)

module Tbl = Harness.Tbl
module Measure = Harness.Measure

let check = Alcotest.check

let test_table_render () =
  let t = Tbl.create ~title:"demo" ~columns:[ "name"; "value" ] in
  Tbl.add_row t [ "alpha"; "1" ];
  Tbl.add_row t [ "b"; "22222" ];
  let out = Tbl.render t in
  check Alcotest.string "title" "demo" (Tbl.title t);
  (* header, separator, two rows, title line *)
  check Alcotest.int "lines" 5
    (List.length (String.split_on_char '\n' (String.trim out)));
  (* alignment: every body line has the same width *)
  (match String.split_on_char '\n' (String.trim out) with
  | _title :: header :: sep :: rows ->
      List.iter
        (fun r ->
          check Alcotest.int "aligned" (String.length header)
            (String.length r))
        (sep :: rows)
  | _ -> Alcotest.fail "unexpected shape");
  Alcotest.check_raises "arity"
    (Invalid_argument "Tbl.add_row: 1 cells for 2 columns") (fun () ->
      Tbl.add_row t [ "only-one" ])

let test_csv_escaping () =
  let t = Tbl.create ~title:"x" ~columns:[ "a"; "b" ] in
  Tbl.add_row t [ "plain"; "with,comma" ];
  Tbl.add_row t [ "has\"quote"; "multi\nline" ];
  let csv = Tbl.to_csv t in
  check Alcotest.string "escaped"
    "a,b\nplain,\"with,comma\"\n\"has\"\"quote\",\"multi\nline\"\n" csv

let test_fmt () =
  check Alcotest.string "big" "1234" (Tbl.fmt_f 1234.4);
  check Alcotest.string "mid" "12.3" (Tbl.fmt_f 12.32);
  check Alcotest.string "small" "0.0042" (Tbl.fmt_f 0.00421)

let test_measure_io () =
  let db = Relation.Catalog.create ~cache_blocks:8 () in
  let t = Relation.Catalog.create_table db ~name:"t" ~columns:[ "x" ] in
  for i = 0 to 499 do
    ignore (Relation.Table.insert t [| i |])
  done;
  Relation.Catalog.drop_cache db;
  let n, io =
    Measure.io db (fun () ->
        let c = ref 0 in
        Relation.Table.iter t (fun _ _ -> incr c);
        !c)
  in
  check Alcotest.int "rows" 500 n;
  check Alcotest.bool "cold scan counted" true (io > 0);
  (* warm repeat with a big enough cache is cheaper *)
  let db2 = Relation.Catalog.create ~cache_blocks:500 () in
  let t2 = Relation.Catalog.create_table db2 ~name:"t" ~columns:[ "x" ] in
  for i = 0 to 499 do
    ignore (Relation.Table.insert t2 [| i |])
  done;
  let _, io_warm1 =
    Measure.io db2 (fun () -> Relation.Table.iter t2 (fun _ _ -> ()))
  in
  let _, io_warm2 =
    Measure.io db2 (fun () -> Relation.Table.iter t2 (fun _ _ -> ()))
  in
  ignore io_warm1;
  check Alcotest.int "fully cached rescan" 0 io_warm2

let test_query_batch () =
  let db = Relation.Catalog.create () in
  let tree = Ritree.Ri_tree.create db in
  for i = 0 to 99 do
    ignore (Ritree.Ri_tree.insert tree (Interval.Ivl.make (i * 10) ((i * 10) + 5)))
  done;
  let queries =
    Array.init 10 (fun i -> Interval.Ivl.make (i * 100) ((i * 100) + 50))
  in
  let b =
    Measure.query_batch db
      (fun q -> Ritree.Ri_tree.count_intersecting tree q)
      queries
  in
  check Alcotest.int "queries" 10 b.Measure.queries;
  check Alcotest.bool "results counted" true (b.Measure.total_results > 0);
  check Alcotest.bool "avg consistent" true
    (Float.abs
       ((b.Measure.avg_seconds *. 10.) -. b.Measure.total_seconds)
     < 1e-9)

let () =
  Alcotest.run "harness"
    [
      ("tbl",
       [ Alcotest.test_case "render + alignment" `Quick test_table_render;
         Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
         Alcotest.test_case "float formatting" `Quick test_fmt ]);
      ("measure",
       [ Alcotest.test_case "io accounting" `Quick test_measure_io;
         Alcotest.test_case "query batch" `Quick test_query_batch ]);
    ]
