(* End-to-end integration: every access method, the SQL engine and the
   in-memory oracles answer the same workload identically; physical-I/O
   accounting behaves sanely. *)

module Ivl = Interval.Ivl
module Dist = Workload.Distribution
module Methods = Harness.Methods

let check = Alcotest.check
let sorted = List.sort compare

let test_all_methods_agree () =
  let data = Dist.generate ~seed:71 Dist.D2 ~n:3_000 ~d:1500 in
  let queries = Workload.Query_gen.queries ~seed:72 ~data ~count:40 0.01 in
  let wl = Methods.window_list data in
  let methods =
    [ Methods.ri_tree (); Methods.ist (); Methods.ist ~order:Baselines.Ist.V_order ();
      Methods.tile ~level:8 (); Methods.map21 () ]
  in
  List.iter (fun m -> Methods.load m data) methods;
  let oracle = Memindex.Naive.create () in
  Array.iteri (fun i ivl -> ignore (Memindex.Naive.insert ~id:i oracle ivl)) data;
  Array.iter
    (fun q ->
      let expected = sorted (Memindex.Naive.intersecting_ids oracle q) in
      List.iter
        (fun (m : Methods.t) ->
          let got = sorted (m.query_ids q) in
          if got <> expected then
            Alcotest.failf "%s disagrees on %s (%d vs %d)" m.label
              (Ivl.to_string q) (List.length got) (List.length expected))
        methods;
      let got_wl = sorted (wl.Methods.query_ids q) in
      if got_wl <> expected then
        Alcotest.failf "Window-List disagrees on %s" (Ivl.to_string q))
    queries

let test_sql_agrees_with_library () =
  (* Drive the RI-tree by hand through SQL (Figs. 2/5/9) and compare with
     the native implementation on the same data. *)
  let data = Dist.generate ~seed:73 Dist.D1 ~n:500 ~d:2000 in
  let db = Relation.Catalog.create () in
  let tree = Ritree.Ri_tree.create db in
  Array.iteri (fun i ivl -> ignore (Ritree.Ri_tree.insert ~id:i tree ivl)) data;
  (* the SQL session runs against the very same database/catalog *)
  let session = Sqlfront.Engine.session db in
  let fig9 =
    "SELECT id FROM intervals i, leftNodes lft \
     WHERE i.node BETWEEN lft.min AND lft.max AND i.upper >= :lower \
     UNION ALL \
     SELECT id FROM intervals i, rightNodes rgt \
     WHERE i.node = rgt.node AND i.lower <= :upper"
  in
  let rng = Workload.Prng.create ~seed:74 in
  for _ = 1 to 40 do
    let l = Workload.Prng.int rng Dist.domain_max in
    let q = Ivl.make l (min Dist.domain_max (l + Workload.Prng.int rng 30_000)) in
    (* build the transient node tables exactly like the library does *)
    let p = Ritree.Ri_tree.params tree in
    let off = Option.get p.Ritree.Ri_tree.offset in
    let roots =
      { Ritree.Backbone.left_root = p.Ritree.Ri_tree.left_root;
        right_root = p.Ritree.Ri_tree.right_root }
    in
    let ql = Ivl.lower q - off and qu = Ivl.upper q - off in
    let lefts = ref [ [| ql; qu |] ] and rights = ref [] in
    Ritree.Backbone.collect roots ~min_level:p.Ritree.Ri_tree.min_level ~ql ~qu
      ~left:(fun w -> lefts := [| w; w |] :: !lefts)
      ~right:(fun w -> rights := [| w |] :: !rights);
    Sqlfront.Engine.set_collection session "leftNodes"
      ~columns:[ "min"; "max" ] !lefts;
    Sqlfront.Engine.set_collection session "rightNodes" ~columns:[ "node" ]
      !rights;
    let via_sql =
      Sqlfront.Engine.query session fig9
        ~binds:[ ("lower", Ivl.lower q); ("upper", Ivl.upper q) ]
      |> List.map (fun r -> r.(0))
      |> sorted
    in
    let via_lib = sorted (Ritree.Ri_tree.intersecting_ids tree q) in
    if via_sql <> via_lib then
      Alcotest.failf "SQL %d vs library %d on %s" (List.length via_sql)
        (List.length via_lib) (Ivl.to_string q)
  done

let test_io_scales_with_results () =
  let data = Dist.generate ~seed:75 Dist.D1 ~n:50_000 ~d:2000 in
  let m = Methods.ri_tree () in
  Methods.load m data;
  let small = Workload.Query_gen.queries ~seed:76 ~data ~count:20 0.002 in
  let large = Workload.Query_gen.queries ~seed:76 ~data ~count:20 0.05 in
  let bs = Harness.Measure.query_batch m.Methods.catalog m.Methods.count_query small in
  let bl = Harness.Measure.query_batch m.Methods.catalog m.Methods.count_query large in
  check Alcotest.bool
    (Printf.sprintf "more results, more I/O (%.1f vs %.1f)"
       bs.Harness.Measure.avg_io bl.Harness.Measure.avg_io)
    true
    (bl.Harness.Measure.avg_io > bs.Harness.Measure.avg_io)

let test_temporal_example_end_to_end () =
  (* the temporal store shares a catalog with a plain RI-tree without
     interference *)
  let db = Relation.Catalog.create () in
  let plain = Ritree.Ri_tree.create ~name:"plain" db in
  let store = Ritree.Temporal_store.create ~name:"vt" db in
  ignore (Ritree.Ri_tree.insert ~id:1 plain (Ivl.make 0 10));
  ignore
    (Ritree.Temporal_store.insert ~id:2 store
       (Interval.Temporal.make 5 Interval.Temporal.Infinity));
  check (Alcotest.list Alcotest.int) "plain" [ 1 ]
    (Ritree.Ri_tree.intersecting_ids plain (Ivl.make 4 6));
  check (Alcotest.list Alcotest.int) "temporal" [ 2 ]
    (Ritree.Temporal_store.intersecting_ids store ~now:100 (Ivl.make 4 6))

let test_deletion_workload_consistency () =
  (* heavy churn across table, indexes and the RI-tree at once *)
  let db = Relation.Catalog.create () in
  let tree = Ritree.Ri_tree.create db in
  let rng = Workload.Prng.create ~seed:77 in
  let live = Hashtbl.create 64 in
  for i = 0 to 2_000 do
    if Workload.Prng.int rng 3 = 0 && Hashtbl.length live > 0 then begin
      let victims = Hashtbl.fold (fun id ivl acc -> (id, ivl) :: acc) live [] in
      let id, ivl = List.nth victims (Workload.Prng.int rng (List.length victims)) in
      check Alcotest.bool "delete ok" true (Ritree.Ri_tree.delete tree ~id ivl);
      Hashtbl.remove live id
    end
    else begin
      let l = Workload.Prng.int rng 100_000 in
      let ivl = Ivl.make l (l + Workload.Prng.int rng 5_000) in
      ignore (Ritree.Ri_tree.insert ~id:i tree ivl);
      Hashtbl.replace live i ivl
    end
  done;
  Ritree.Ri_tree.check_invariants tree;
  check Alcotest.int "live count" (Hashtbl.length live) (Ritree.Ri_tree.count tree);
  (* final sweep query *)
  let expected =
    Hashtbl.fold (fun id _ acc -> id :: acc) live [] |> sorted
  in
  check (Alcotest.list Alcotest.int) "all live found" expected
    (sorted (Ritree.Ri_tree.intersecting_ids tree (Ivl.make 0 200_000)))

let () =
  Alcotest.run "integration"
    [
      ("integration",
       [ Alcotest.test_case "all methods agree" `Quick test_all_methods_agree;
         Alcotest.test_case "SQL path = library path" `Quick
           test_sql_agrees_with_library;
         Alcotest.test_case "I/O grows with result size" `Quick
           test_io_scales_with_results;
         Alcotest.test_case "temporal + plain share a catalog" `Quick
           test_temporal_example_end_to_end;
         Alcotest.test_case "churn consistency" `Quick
           test_deletion_workload_consistency ]);
    ]
