(* Competitor access methods: correctness against the brute-force
   oracle plus their structural characteristics from the paper. *)

module Ivl = Interval.Ivl
module Naive = Memindex.Naive

let check = Alcotest.check
let sorted = List.sort compare

let mk_db () = Relation.Catalog.create ()

let dataset ~seed ~n ~range ~len =
  let rng = Workload.Prng.create ~seed in
  Array.init n (fun _ ->
      let l = Workload.Prng.int rng range in
      Ivl.make l (l + Workload.Prng.int rng len))

let queries rng ~count ~range ~len =
  Array.init count (fun _ ->
      let l = Workload.Prng.int rng range in
      Ivl.make l (l + Workload.Prng.int rng len))

let oracle_check ~name ~query data qs =
  let naive = Naive.create () in
  Array.iteri (fun i ivl -> ignore (Naive.insert ~id:i naive ivl)) data;
  Array.iter
    (fun q ->
      let expected = sorted (Naive.intersecting_ids naive q) in
      let got = sorted (query q) in
      if got <> expected then
        Alcotest.failf "%s %s: %d vs %d" name (Ivl.to_string q)
          (List.length got) (List.length expected);
      if List.length got <> List.length (List.sort_uniq compare got) then
        Alcotest.failf "%s returned duplicates" name)
    qs

(* ---- IST ---- *)

let test_ist_orders () =
  let data = dataset ~seed:31 ~n:400 ~range:10_000 ~len:800 in
  let rng = Workload.Prng.create ~seed:32 in
  let qs = queries rng ~count:100 ~range:11_000 ~len:1_500 in
  List.iter
    (fun order ->
      let db = mk_db () in
      let t = Baselines.Ist.create ~order db in
      Array.iteri (fun i ivl -> ignore (Baselines.Ist.insert ~id:i t ivl)) data;
      check Alcotest.int "n entries" (Array.length data)
        (Baselines.Ist.index_entries t);
      oracle_check ~name:"ist" ~query:(Baselines.Ist.intersecting_ids t) data qs)
    [ Baselines.Ist.D_order; Baselines.Ist.V_order ]

let test_ist_delete () =
  let db = mk_db () in
  let t = Baselines.Ist.create db in
  let id = Baselines.Ist.insert t (Ivl.make 5 9) in
  check Alcotest.bool "delete" true (Baselines.Ist.delete t ~id (Ivl.make 5 9));
  check Alcotest.bool "again" false (Baselines.Ist.delete t ~id (Ivl.make 5 9));
  check Alcotest.int "count" 0 (Baselines.Ist.count t)

(* The structural weakness of Sec. 2.3: a D-order scan visits every
   entry with upper >= query lower, so a point query far from the data
   space's upper bound reads almost the whole index. *)
let test_ist_asymmetry () =
  let data = dataset ~seed:33 ~n:2_000 ~range:100_000 ~len:100 in
  let db = mk_db () in
  let t = Baselines.Ist.create db in
  Array.iteri (fun i ivl -> ignore (Baselines.Ist.insert ~id:i t ivl)) data;
  let near = Ivl.point 99_999 and far = Ivl.point 100 in
  Relation.Catalog.drop_cache db;
  let _, io_near =
    Harness.Measure.io db (fun () -> Baselines.Ist.intersecting_ids t near)
  in
  Relation.Catalog.drop_cache db;
  let _, io_far =
    Harness.Measure.io db (fun () -> Baselines.Ist.intersecting_ids t far)
  in
  check Alcotest.bool
    (Printf.sprintf "far (%d) costs more than near (%d)" io_far io_near)
    true
    (io_far > 4 * max 1 io_near)

(* ---- MAP21 ---- *)

let test_map21_oracle () =
  let data = dataset ~seed:34 ~n:400 ~range:20_000 ~len:600 in
  let rng = Workload.Prng.create ~seed:35 in
  let qs = queries rng ~count:100 ~range:22_000 ~len:1_200 in
  let db = mk_db () in
  let t = Baselines.Map21.create db in
  Array.iteri (fun i ivl -> ignore (Baselines.Map21.insert ~id:i t ivl)) data;
  oracle_check ~name:"map21" ~query:(Baselines.Map21.intersecting_ids t) data qs;
  check Alcotest.bool "max length tracked" true
    (Baselines.Map21.max_length t > 0)

let test_map21_encode () =
  let i = Ivl.make 5 9 in
  check Alcotest.int "code" ((5 lsl 21) lor 9) (Baselines.Map21.encode i);
  Alcotest.check_raises "out of domain"
    (Invalid_argument "Map21.encode: bounds outside [0, 2^21)") (fun () ->
      ignore (Baselines.Map21.encode (Ivl.make 0 (1 lsl 21))))

let test_map21_delete () =
  let db = mk_db () in
  let t = Baselines.Map21.create db in
  let id = Baselines.Map21.insert t (Ivl.make 3 7) in
  check Alcotest.bool "delete" true
    (Baselines.Map21.delete t ~id (Ivl.make 3 7));
  check Alcotest.int "count" 0 (Baselines.Map21.count t)

(* ---- Tile index ---- *)

let test_tile_oracle_multiple_levels () =
  let data = dataset ~seed:36 ~n:300 ~range:500_000 ~len:5_000 in
  let rng = Workload.Prng.create ~seed:37 in
  let qs = queries rng ~count:60 ~range:520_000 ~len:10_000 in
  List.iter
    (fun level ->
      let db = mk_db () in
      let t = Baselines.Tile_index.create ~level db in
      Array.iteri
        (fun i ivl -> ignore (Baselines.Tile_index.insert ~id:i t ivl))
        data;
      oracle_check
        ~name:(Printf.sprintf "tile level %d" level)
        ~query:(Baselines.Tile_index.intersecting_ids t)
        data qs;
      check Alcotest.int "interval count" (Array.length data)
        (Baselines.Tile_index.count t))
    [ 0; 5; 8; 12; 16 ]

let test_tile_redundancy_grows_with_level () =
  let data = dataset ~seed:38 ~n:200 ~range:500_000 ~len:4_000 in
  let redundancy level =
    let db = mk_db () in
    let t = Baselines.Tile_index.create ~level db in
    Array.iteri
      (fun i ivl -> ignore (Baselines.Tile_index.insert ~id:i t ivl))
      data;
    Baselines.Tile_index.redundancy t
  in
  let r5 = redundancy 5 and r10 = redundancy 10 and r16 = redundancy 16 in
  check Alcotest.bool
    (Printf.sprintf "monotone: %.1f <= %.1f <= %.1f" r5 r10 r16)
    true
    (r5 <= r10 +. 0.01 && r10 <= r16 +. 0.01)

let test_tile_points_no_redundancy () =
  (* Fig. 16: "the redundancy ... decreases from 10.1 to 1 when the mean
     value of interval duration is reduced ... to 0" *)
  let db = mk_db () in
  let t = Baselines.Tile_index.create ~level:8 db in
  for i = 0 to 99 do
    ignore (Baselines.Tile_index.insert t (Ivl.point (i * 1000)))
  done;
  check (Alcotest.float 0.001) "redundancy 1" 1.0
    (Baselines.Tile_index.redundancy t)

let test_tile_delete () =
  let db = mk_db () in
  let t = Baselines.Tile_index.create ~level:12 db in
  let id = Baselines.Tile_index.insert t (Ivl.make 100 90_000) in
  check Alcotest.bool "entries > 1" true
    (Baselines.Tile_index.index_entries t > 1);
  check Alcotest.bool "delete" true
    (Baselines.Tile_index.delete t ~id (Ivl.make 100 90_000));
  check Alcotest.int "entries gone" 0 (Baselines.Tile_index.index_entries t)

let test_tile_calibration () =
  let data = dataset ~seed:39 ~n:1_000 ~range:1_000_000 ~len:2_000 in
  let rng = Workload.Prng.create ~seed:40 in
  let qs = queries rng ~count:30 ~range:1_000_000 ~len:6_000 in
  let level =
    Baselines.Tile_index.recommended_level ~sample:data ~queries:qs ()
  in
  check Alcotest.bool
    (Printf.sprintf "level %d in candidate range" level)
    true
    (level >= 4 && level <= 12)

(* ---- Window-List ---- *)

let test_window_list_oracle () =
  let data = dataset ~seed:41 ~n:500 ~range:50_000 ~len:2_000 in
  let rng = Workload.Prng.create ~seed:42 in
  let qs = queries rng ~count:80 ~range:52_000 ~len:4_000 in
  let db = mk_db () in
  let t = Baselines.Window_list.build db data in
  oracle_check ~name:"window-list"
    ~query:(Baselines.Window_list.intersecting_ids t)
    data qs;
  (* stabbing *)
  for p = 0 to 50 do
    let q = p * 997 in
    let naive = Naive.create () in
    Array.iteri (fun i ivl -> ignore (Naive.insert ~id:i naive ivl)) data;
    check (Alcotest.list Alcotest.int)
      (Printf.sprintf "stab %d" q)
      (sorted (Naive.stabbing_ids naive q))
      (sorted (Baselines.Window_list.stabbing_ids t q))
  done;
  check Alcotest.bool "several windows" true
    (Baselines.Window_list.window_count t > 1)

let test_window_list_static () =
  let db = mk_db () in
  let t = Baselines.Window_list.build db [| Ivl.make 0 5 |] in
  Alcotest.check_raises "static"
    (Failure "Window_list.insert: the Window-List is a static structure")
    (fun () -> ignore (Baselines.Window_list.insert t (Ivl.make 1 2)))

let () =
  Alcotest.run "baselines"
    [
      ("ist",
       [ Alcotest.test_case "D- and V-order vs oracle" `Quick test_ist_orders;
         Alcotest.test_case "delete" `Quick test_ist_delete;
         Alcotest.test_case "one-bound asymmetry (Fig. 17)" `Quick
           test_ist_asymmetry ]);
      ("map21",
       [ Alcotest.test_case "oracle" `Quick test_map21_oracle;
         Alcotest.test_case "encoding" `Quick test_map21_encode;
         Alcotest.test_case "delete" `Quick test_map21_delete ]);
      ("tile",
       [ Alcotest.test_case "oracle at levels 0/5/8/12/16" `Quick
           test_tile_oracle_multiple_levels;
         Alcotest.test_case "redundancy grows with level" `Quick
           test_tile_redundancy_grows_with_level;
         Alcotest.test_case "points have redundancy 1" `Quick
           test_tile_points_no_redundancy;
         Alcotest.test_case "delete removes all tiles" `Quick
           test_tile_delete;
         Alcotest.test_case "level calibration" `Quick test_tile_calibration ]);
      ("window-list",
       [ Alcotest.test_case "oracle + stabbing" `Quick test_window_list_oracle;
         Alcotest.test_case "static structure" `Quick test_window_list_static ]);
    ]
