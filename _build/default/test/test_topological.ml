(* Topological (Allen-relation) queries of Sec. 4.5, checked against the
   brute-force oracle for every relation. *)

module Ivl = Interval.Ivl
module Allen = Interval.Allen
module Ri = Ritree.Ri_tree
module Topo = Ritree.Topological
module Naive = Memindex.Naive

let check = Alcotest.check
let sorted = List.sort compare

let build ~seed ~n ~range ~len =
  let rng = Workload.Prng.create ~seed in
  let db = Relation.Catalog.create () in
  let t = Ri.create db in
  let naive = Naive.create () in
  for i = 0 to n - 1 do
    let l = Workload.Prng.int rng (2 * range) - range in
    let ivl = Ivl.make l (l + Workload.Prng.int rng len) in
    ignore (Ri.insert ~id:i t ivl);
    ignore (Naive.insert ~id:i naive ivl)
  done;
  (rng, t, naive)

let run_relation_oracle r ~seed ~queries =
  let rng, t, naive = build ~seed ~n:300 ~range:1500 ~len:300 in
  for _ = 1 to queries do
    let ql = Workload.Prng.int rng 4000 - 2000 in
    let q = Ivl.make ql (ql + Workload.Prng.int rng 500) in
    let expected = sorted (Naive.relation_ids naive r q) in
    let got = sorted (Topo.query_ids t r q) in
    if got <> expected then
      Alcotest.failf "%s %s: got %d, expected %d" (Allen.to_string r)
        (Ivl.to_string q) (List.length got) (List.length expected)
  done

let relation_case r =
  Alcotest.test_case (Allen.to_string r) `Quick (fun () ->
      run_relation_oracle r ~seed:(100 + Hashtbl.hash (Allen.to_string r))
        ~queries:60)

let test_point_queries_relations () =
  (* degenerate query intervals *)
  let _, t, naive = build ~seed:7 ~n:200 ~range:500 ~len:100 in
  List.iter
    (fun r ->
      for p = -50 to 50 do
        let q = Ivl.point (p * 13) in
        let expected = sorted (Naive.relation_ids naive r q) in
        let got = sorted (Topo.query_ids t r q) in
        if got <> expected then
          Alcotest.failf "%s point %d differs" (Allen.to_string r) (p * 13)
      done)
    Allen.all

let test_relations_partition_results () =
  (* across all 13 relations, each stored interval appears exactly once
     for a fixed query *)
  let _, t, naive = build ~seed:8 ~n:250 ~range:1000 ~len:300 in
  let q = Ivl.make 100 600 in
  let all_results =
    List.concat_map (fun r -> Topo.query_ids t r q) Allen.all
  in
  check Alcotest.int "every interval classified once"
    (List.length (Naive.to_list naive))
    (List.length all_results);
  check Alcotest.int "no duplicates"
    (List.length all_results)
    (List.length (List.sort_uniq compare all_results))

let test_query_returns_rows () =
  let db = Relation.Catalog.create () in
  let t = Ri.create db in
  ignore (Ri.insert ~id:1 t (Ivl.make 0 10));
  ignore (Ri.insert ~id:2 t (Ivl.make 10 20));
  let pairs = Topo.query t Allen.Meets (Ivl.make 20 30) in
  check Alcotest.int "one meets" 1 (List.length pairs);
  let ivl, id = List.hd pairs in
  check Alcotest.int "id" 2 id;
  check Alcotest.bool "interval" true (Ivl.equal ivl (Ivl.make 10 20))

let test_empty_tree () =
  let db = Relation.Catalog.create () in
  let t = Ri.create db in
  List.iter
    (fun r ->
      check (Alcotest.list Alcotest.int) (Allen.to_string r) []
        (Topo.query_ids t r (Ivl.make 0 10)))
    Allen.all

let () =
  Alcotest.run "topological"
    [
      ("oracle", List.map relation_case Allen.all);
      ("properties",
       [ Alcotest.test_case "point queries, all relations" `Slow
           test_point_queries_relations;
         Alcotest.test_case "relations partition the database" `Quick
           test_relations_partition_results;
         Alcotest.test_case "query returns interval rows" `Quick
           test_query_returns_rows;
         Alcotest.test_case "empty tree" `Quick test_empty_tree ]);
    ]
