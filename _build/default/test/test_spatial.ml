(* Z-order curve and the spatial window-query index. *)

module Z = Spatial.Zcurve
module SI = Spatial.Spatial_index
module Ivl = Interval.Ivl

let check = Alcotest.check

let rect x0 y0 x1 y1 = { Z.x0; y0; x1; y1 }

let rects_intersect a b =
  a.Z.x0 <= b.Z.x1 && b.Z.x0 <= a.Z.x1 && a.Z.y0 <= b.Z.y1 && b.Z.y0 <= a.Z.y1

(* ---- curve ---- *)

let test_encode_decode_roundtrip () =
  let bits = 8 in
  let rng = Workload.Prng.create ~seed:101 in
  for _ = 1 to 500 do
    let x = Workload.Prng.int rng 256 and y = Workload.Prng.int rng 256 in
    let z = Z.encode ~bits x y in
    check (Alcotest.pair Alcotest.int Alcotest.int) "roundtrip" (x, y)
      (Z.decode ~bits z)
  done;
  Alcotest.check_raises "outside grid"
    (Invalid_argument "Zcurve.encode: (256, 0) outside the 256x256 grid")
    (fun () -> ignore (Z.encode ~bits 256 0))

let test_encode_locality () =
  (* within a quadrant, curve values stay within the quadrant's range *)
  let bits = 4 in
  for x = 0 to 7 do
    for y = 0 to 7 do
      check Alcotest.bool "lower-left quadrant = first quarter" true
        (Z.encode ~bits x y < 64)
    done
  done

let brute_cells ~bits r =
  ignore bits;
  let acc = ref [] in
  for x = r.Z.x0 to r.Z.x1 do
    for y = r.Z.y0 to r.Z.y1 do
      acc := Z.encode ~bits x y :: !acc
    done
  done;
  List.sort_uniq compare !acc

let segments_cells segs =
  List.concat_map
    (fun seg -> List.init (Ivl.length seg + 1) (fun i -> Ivl.lower seg + i))
    segs

let test_rect_segments_exact () =
  let bits = 5 in
  let rng = Workload.Prng.create ~seed:102 in
  for _ = 1 to 300 do
    let x0 = Workload.Prng.int rng 32 and y0 = Workload.Prng.int rng 32 in
    let x1 = min 31 (x0 + Workload.Prng.int rng 12) in
    let y1 = min 31 (y0 + Workload.Prng.int rng 12) in
    let r = rect x0 y0 x1 y1 in
    let segs = Z.rect_segments ~bits r in
    (* exact cover *)
    check (Alcotest.list Alcotest.int) "covers exactly the cells"
      (brute_cells ~bits r)
      (List.sort compare (segments_cells segs));
    (* ascending, merged (maximal) *)
    let rec ordered = function
      | a :: (b :: _ as rest) ->
          if Ivl.upper a + 1 >= Ivl.lower b then
            Alcotest.failf "segments not maximal/ordered: %s then %s"
              (Ivl.to_string a) (Ivl.to_string b);
          ordered rest
      | _ -> ()
    in
    ordered segs
  done

let test_full_grid_is_one_segment () =
  let bits = 6 in
  match Z.rect_segments ~bits (rect 0 0 63 63) with
  | [ seg ] ->
      check Alcotest.int "lo" 0 (Ivl.lower seg);
      check Alcotest.int "hi" 4095 (Ivl.upper seg)
  | l -> Alcotest.failf "expected one segment, got %d" (List.length l)

let test_segment_count_reasonable () =
  let bits = 10 in
  let r = rect 100 200 400 300 in
  let segs = Z.rect_segments ~bits r in
  check Alcotest.bool
    (Printf.sprintf "%d segments within bound" (List.length segs))
    true
    (List.length segs <= Z.segment_count_bound ~bits r)

(* ---- spatial index ---- *)

let test_window_queries_vs_oracle () =
  let bits = 7 in
  let side = 1 lsl bits in
  let rng = Workload.Prng.create ~seed:103 in
  let db = Relation.Catalog.create () in
  let idx = SI.create ~bits db in
  let objects = ref [] in
  for i = 0 to 149 do
    let x0 = Workload.Prng.int rng side and y0 = Workload.Prng.int rng side in
    let r =
      rect x0 y0
        (min (side - 1) (x0 + Workload.Prng.int rng 20))
        (min (side - 1) (y0 + Workload.Prng.int rng 20))
    in
    ignore (SI.insert ~id:i idx r);
    objects := (r, i) :: !objects
  done;
  check Alcotest.int "count" 150 (SI.count idx);
  check Alcotest.bool "segments >= objects" true
    (SI.segment_count idx >= 150);
  for _ = 1 to 100 do
    let x0 = Workload.Prng.int rng side and y0 = Workload.Prng.int rng side in
    let w =
      rect x0 y0
        (min (side - 1) (x0 + Workload.Prng.int rng 30))
        (min (side - 1) (y0 + Workload.Prng.int rng 30))
    in
    let expected =
      List.filter_map
        (fun (r, id) -> if rects_intersect r w then Some id else None)
        !objects
      |> List.sort compare
    in
    let got = SI.window_ids idx w in
    if got <> expected then
      Alcotest.failf "window (%d,%d)-(%d,%d): %d vs %d" w.Z.x0 w.Z.y0 w.Z.x1
        w.Z.y1 (List.length got) (List.length expected)
  done

let test_point_queries () =
  let db = Relation.Catalog.create () in
  let idx = SI.create ~bits:6 db in
  let a = SI.insert idx (rect 0 0 10 10) in
  let b = SI.insert idx (rect 5 5 20 20) in
  check (Alcotest.list Alcotest.int) "corner overlap" [ a; b ]
    (SI.point_ids idx 7 7);
  check (Alcotest.list Alcotest.int) "only a" [ a ] (SI.point_ids idx 0 0);
  check (Alcotest.list Alcotest.int) "nobody" [] (SI.point_ids idx 40 40)

let test_delete () =
  let db = Relation.Catalog.create () in
  let idx = SI.create ~bits:6 db in
  let r = rect 3 3 9 12 in
  let id = SI.insert idx r in
  check Alcotest.bool "delete" true (SI.delete idx ~id r);
  check Alcotest.int "gone" 0 (SI.count idx);
  check Alcotest.int "segments gone" 0 (SI.segment_count idx);
  check (Alcotest.list Alcotest.int) "no hits" [] (SI.point_ids idx 5 5)

let () =
  Alcotest.run "spatial"
    [
      ("zcurve",
       [ Alcotest.test_case "encode/decode roundtrip" `Quick
           test_encode_decode_roundtrip;
         Alcotest.test_case "locality" `Quick test_encode_locality;
         Alcotest.test_case "rect decomposition exact + maximal" `Quick
           test_rect_segments_exact;
         Alcotest.test_case "full grid" `Quick test_full_grid_is_one_segment;
         Alcotest.test_case "segment count bound" `Quick
           test_segment_count_reasonable ]);
      ("index",
       [ Alcotest.test_case "window queries vs oracle" `Quick
           test_window_queries_vs_oracle;
         Alcotest.test_case "point queries" `Quick test_point_queries;
         Alcotest.test_case "delete" `Quick test_delete ]);
    ]
