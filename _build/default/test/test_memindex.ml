(* Main-memory structures: interval tree and segment tree vs the naive
   oracle; they also cross-validate each other. *)

module Ivl = Interval.Ivl
module IT = Memindex.Interval_tree
module ST = Memindex.Segment_tree
module Naive = Memindex.Naive

let check = Alcotest.check
let sorted = List.sort compare

let dataset ~seed ~n ~range ~len =
  let rng = Workload.Prng.create ~seed in
  Array.init n (fun _ ->
      let l = 1 + Workload.Prng.int rng range in
      Ivl.make l (l + Workload.Prng.int rng len))

(* ---- interval tree ---- *)

let test_it_basics () =
  let t = IT.create ~lo:0 ~hi:100 in
  let a = IT.insert ~id:1 t (Ivl.make 5 20) in
  let b = IT.insert ~id:2 t (Ivl.make 15 30) in
  check Alcotest.int "ids" 1 a;
  check Alcotest.int "ids" 2 b;
  check Alcotest.int "count" 2 (IT.count t);
  check (Alcotest.list Alcotest.int) "stab 17" [ 1; 2 ]
    (sorted (IT.stabbing_ids t 17));
  check (Alcotest.list Alcotest.int) "stab 3" [] (IT.stabbing_ids t 3);
  check Alcotest.bool "universe" true
    (try
       ignore (IT.insert t (Ivl.make 90 200));
       false
     with Invalid_argument _ -> true)

let test_it_delete () =
  let t = IT.create ~lo:0 ~hi:1000 in
  ignore (IT.insert ~id:1 t (Ivl.make 10 20));
  ignore (IT.insert ~id:2 t (Ivl.make 10 20));
  check Alcotest.bool "delete" true (IT.delete t ~id:1 (Ivl.make 10 20));
  check Alcotest.bool "again" false (IT.delete t ~id:1 (Ivl.make 10 20));
  check (Alcotest.list Alcotest.int) "other remains" [ 2 ]
    (IT.stabbing_ids t 15);
  check Alcotest.int "nodes pruned eventually" 1 (IT.node_count t)

let test_it_oracle () =
  let data = dataset ~seed:51 ~n:500 ~range:50_000 ~len:1_000 in
  let t = IT.create ~lo:0 ~hi:60_000 in
  let naive = Naive.create () in
  Array.iteri
    (fun i ivl ->
      ignore (IT.insert ~id:i t ivl);
      ignore (Naive.insert ~id:i naive ivl))
    data;
  let rng = Workload.Prng.create ~seed:52 in
  for _ = 1 to 200 do
    let l = Workload.Prng.int rng 55_000 in
    let q = Ivl.make l (l + Workload.Prng.int rng 2_000) in
    let expected = sorted (Naive.intersecting_ids naive q) in
    let got = sorted (IT.intersecting_ids t q) in
    if got <> expected then
      Alcotest.failf "interval tree differs on %s" (Ivl.to_string q)
  done

(* ---- segment tree ---- *)

let test_st_oracle () =
  let data = dataset ~seed:53 ~n:400 ~range:40_000 ~len:900 in
  let t = ST.build data in
  let naive = Naive.create () in
  Array.iteri (fun i ivl -> ignore (Naive.insert ~id:i naive ivl)) data;
  check Alcotest.int "count" 400 (ST.count t);
  check Alcotest.bool "redundant entries" true
    (ST.canonical_entries t >= 400);
  let rng = Workload.Prng.create ~seed:54 in
  for _ = 1 to 200 do
    let l = Workload.Prng.int rng 45_000 in
    let q = Ivl.make l (l + Workload.Prng.int rng 2_000) in
    let expected = sorted (Naive.intersecting_ids naive q) in
    let got = ST.intersecting_ids t q in
    if got <> expected then
      Alcotest.failf "segment tree differs on %s" (Ivl.to_string q);
    let p = Workload.Prng.int rng 45_000 in
    let expected = sorted (Naive.stabbing_ids naive p) in
    if ST.stabbing_ids t p <> expected then
      Alcotest.failf "segment tree stab differs at %d" p
  done

let test_st_edges () =
  let t = ST.build [| Ivl.make 10 20; Ivl.make 20 30 |] in
  check (Alcotest.list Alcotest.int) "shared endpoint" [ 0; 1 ]
    (ST.stabbing_ids t 20);
  check (Alcotest.list Alcotest.int) "below all" [] (ST.stabbing_ids t 5);
  check (Alcotest.list Alcotest.int) "above all" [] (ST.stabbing_ids t 35);
  check (Alcotest.list Alcotest.int) "between coords" [ 0 ]
    (ST.stabbing_ids t 15)

(* ---- interval skip list ---- *)

module SL = Memindex.Skip_list

let test_sl_basics () =
  let t = SL.create () in
  let a = SL.insert ~id:1 t (Ivl.make 5 20) in
  let b = SL.insert ~id:2 t (Ivl.make 15 30) in
  check Alcotest.int "ids" 1 a;
  check Alcotest.int "ids" 2 b;
  check Alcotest.int "count" 2 (SL.count t);
  check (Alcotest.list Alcotest.int) "stab 17" [ 1; 2 ] (SL.stabbing_ids t 17);
  check (Alcotest.list Alcotest.int) "stab 3" [] (SL.stabbing_ids t 3);
  SL.check_invariants t

let test_sl_delete () =
  let t = SL.create () in
  ignore (SL.insert ~id:1 t (Ivl.make 10 20));
  ignore (SL.insert ~id:2 t (Ivl.make 10 20));
  check Alcotest.bool "delete" true (SL.delete t ~id:1 (Ivl.make 10 20));
  check Alcotest.bool "again" false (SL.delete t ~id:1 (Ivl.make 10 20));
  check (Alcotest.list Alcotest.int) "other remains" [ 2 ]
    (SL.stabbing_ids t 15);
  SL.check_invariants t

let test_sl_oracle_with_churn () =
  let rng = Workload.Prng.create ~seed:57 in
  let t = SL.create () in
  let naive = Naive.create () in
  let live = ref [] in
  for i = 0 to 1_500 do
    if Workload.Prng.int rng 4 = 0 && !live <> [] then begin
      let ivl, id = List.hd !live in
      live := List.tl !live;
      check Alcotest.bool "delete agrees" (Naive.delete naive ~id ivl)
        (SL.delete t ~id ivl)
    end
    else begin
      let l = Workload.Prng.int rng 30_000 in
      let ivl = Ivl.make l (l + Workload.Prng.int rng 800) in
      ignore (SL.insert ~id:i t ivl);
      ignore (Naive.insert ~id:i naive ivl);
      live := (ivl, i) :: !live
    end
  done;
  SL.check_invariants t;
  check Alcotest.bool "towers formed" true (SL.max_level t >= 2);
  for _ = 1 to 200 do
    let l = Workload.Prng.int rng 32_000 in
    let q = Ivl.make l (l + Workload.Prng.int rng 1_500) in
    let expected = sorted (Naive.intersecting_ids naive q) in
    let got = sorted (SL.intersecting_ids t q) in
    if got <> expected then
      Alcotest.failf "skip list differs on %s" (Ivl.to_string q)
  done

(* ---- cross-validation: three structures, one truth ---- *)

let test_cross_validation () =
  let data = dataset ~seed:55 ~n:300 ~range:8_000 ~len:600 in
  let it = IT.create ~lo:0 ~hi:10_000 in
  Array.iteri (fun i ivl -> ignore (IT.insert ~id:i it ivl)) data;
  let st = ST.build data in
  let db = Relation.Catalog.create () in
  let ri = Ritree.Ri_tree.create db in
  Array.iteri (fun i ivl -> ignore (Ritree.Ri_tree.insert ~id:i ri ivl)) data;
  let rng = Workload.Prng.create ~seed:56 in
  for _ = 1 to 150 do
    let l = Workload.Prng.int rng 9_000 in
    let q = Ivl.make l (l + Workload.Prng.int rng 1_000) in
    let a = sorted (IT.intersecting_ids it q) in
    let b = ST.intersecting_ids st q in
    let c = sorted (Ritree.Ri_tree.intersecting_ids ri q) in
    if a <> b || b <> c then
      Alcotest.failf "structures disagree on %s (%d/%d/%d)" (Ivl.to_string q)
        (List.length a) (List.length b) (List.length c)
  done

let () =
  Alcotest.run "memindex"
    [
      ("interval-tree",
       [ Alcotest.test_case "basics" `Quick test_it_basics;
         Alcotest.test_case "delete" `Quick test_it_delete;
         Alcotest.test_case "oracle" `Quick test_it_oracle ]);
      ("segment-tree",
       [ Alcotest.test_case "oracle" `Quick test_st_oracle;
         Alcotest.test_case "edge cases" `Quick test_st_edges ]);
      ("skip-list",
       [ Alcotest.test_case "basics" `Quick test_sl_basics;
         Alcotest.test_case "delete" `Quick test_sl_delete;
         Alcotest.test_case "oracle with churn" `Quick
           test_sl_oracle_with_churn ]);
      ("cross",
       [ Alcotest.test_case "interval tree = segment tree = RI-tree" `Quick
           test_cross_validation ]);
    ]
